// Command prognosisctl is the thin operator CLI for a running prognosisd:
// every subcommand is a direct call through the typed pkg/client API, so
// scripting against the daemon (CI's daemon-smoke choreography included)
// never hand-rolls the wire format.
//
// Usage:
//
//	prognosisctl [-addr URL] submit <learn|diff|check|regress|monitor> [flags]
//	prognosisctl [-addr URL] status <job-id>
//	prognosisctl [-addr URL] wait <job-id>
//	prognosisctl [-addr URL] cancel <job-id>
//	prognosisctl [-addr URL] events <job-id>
//	prognosisctl [-addr URL] model <job-id> [-side a|b] [-format json|dot]
//	prognosisctl [-addr URL] witness <job-id>
//	prognosisctl [-addr URL] stats | metrics | health
//	prognosisctl [-addr URL] fleet status
//	prognosisctl [-addr URL] fleet campaign -targets a,b [-losses 0,0.02] [-seeds 13,17] [-wait] [flags]
//	prognosisctl [-addr URL] fleet wait <campaign-id>
//
// The fleet verbs talk to a coordinator-mode prognosisd: `fleet status`
// prints the worker table (state, heartbeat age, per-worker cell counts,
// re-queue totals) and the campaign table; `fleet campaign` expands an
// impairment grid across the fleet and prints the accepted campaign
// (with -wait it polls to a terminal state like `wait` does for jobs).
//
// `submit` prints the accepted job's status JSON (its ID on the first
// line for easy capture: `id=$(prognosisctl submit learn -target tcp |
// head -1)`). `wait` polls to a terminal state, prints the final status
// JSON, and exits nonzero unless the job is done. `events` streams the
// job's SSE events one per line as "<kind>\t<payload>". The artifact and
// introspection verbs write the raw bytes to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/learncfg"
	"repro/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "prognosisctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: prognosisctl [-addr URL] <submit|status|wait|cancel|events|model|witness|stats|metrics|health|fleet> ...")
}

func run(args []string) error {
	fs := flag.NewFlagSet("prognosisctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8047", "prognosisd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usage()
	}
	c := client.New(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	verb, rest := fs.Arg(0), fs.Args()[1:]
	switch verb {
	case "submit":
		return submit(ctx, c, rest)
	case "status", "wait", "cancel", "events", "model", "witness":
		if len(rest) == 0 {
			return fmt.Errorf("%s needs a job ID", verb)
		}
		id, rest := rest[0], rest[1:]
		switch verb {
		case "status":
			st, err := c.Job(ctx, id)
			if err != nil {
				return err
			}
			return printJSON(st)
		case "wait":
			st, err := c.Wait(ctx, id, 500*time.Millisecond)
			if err != nil {
				return err
			}
			if err := printJSON(st); err != nil {
				return err
			}
			if st.State != client.StateDone {
				return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
			}
			return nil
		case "cancel":
			was, err := c.Cancel(ctx, id)
			if err != nil {
				return err
			}
			fmt.Printf("cancelled (was %s)\n", was)
			return nil
		case "events":
			return streamEvents(ctx, c, id)
		case "model":
			mf := flag.NewFlagSet("prognosisctl model", flag.ContinueOnError)
			side := mf.String("side", "", "diff job side: a or b")
			format := mf.String("format", "", "artifact format: json (default) or dot")
			if err := mf.Parse(rest); err != nil {
				return err
			}
			raw, err := c.Model(ctx, id, *side, *format)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(raw)
			return err
		case "witness":
			raw, err := c.Witness(ctx, id)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(raw)
			return err
		}
		return nil
	case "stats":
		st, err := c.ServerStats(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "metrics":
		raw, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(raw)
		return err
	case "health":
		if err := c.Healthz(ctx); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "fleet":
		return fleetVerb(ctx, c, rest)
	default:
		return usage()
	}
}

// fleetVerb dispatches the coordinator-facing subcommands.
func fleetVerb(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("fleet needs a verb: status, campaign, or wait")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "status":
		st, err := c.FleetStatus(ctx)
		if err != nil {
			return err
		}
		printFleetStatus(st)
		return nil
	case "campaign":
		return fleetCampaign(ctx, c, rest)
	case "wait":
		if len(rest) == 0 {
			return fmt.Errorf("fleet wait needs a campaign ID")
		}
		st, err := c.WaitFleetCampaign(ctx, rest[0], 500*time.Millisecond)
		if err != nil {
			return err
		}
		if err := printJSON(st); err != nil {
			return err
		}
		if st.State != client.CampaignDone {
			return fmt.Errorf("campaign %s %s: %s", st.ID, st.State, st.Error)
		}
		return nil
	default:
		return fmt.Errorf("unknown fleet verb %q (want status, campaign, or wait)", verb)
	}
}

// fleetCampaign builds a FleetCampaignSpec from grid flags plus the
// shared learncfg flag set and submits it.
func fleetCampaign(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("prognosisctl fleet campaign", flag.ContinueOnError)
	name := fs.String("name", "", "campaign label (empty = derived from the ID)")
	targets := fs.String("targets", "", "comma-separated registry targets to learn")
	losses := fs.String("losses", "", "comma-separated loss rates spanning the impairment grid")
	dups := fs.String("dups", "", "comma-separated duplication rates")
	reorders := fs.String("reorders", "", "comma-separated reorder rates")
	seeds := fs.String("seeds", "", "comma-separated seeds replicating the grid (empty = the -seed flag)")
	wait := fs.Bool("wait", false, "poll the campaign to a terminal state before exiting")
	spec := client.FleetCampaignSpec{Config: learncfg.Default(learncfg.Defaults{})}
	spec.Config.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fleet campaign takes no positional arguments (got %v)", fs.Args())
	}
	spec.Name = *name
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			spec.Targets = append(spec.Targets, t)
		}
	}
	var err error
	if spec.Losses, err = parseFloats(*losses); err != nil {
		return fmt.Errorf("-losses: %w", err)
	}
	if spec.Dups, err = parseFloats(*dups); err != nil {
		return fmt.Errorf("-dups: %w", err)
	}
	if spec.Reorders, err = parseFloats(*reorders); err != nil {
		return fmt.Errorf("-reorders: %w", err)
	}
	if spec.Seeds, err = parseInts(*seeds); err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	st, err := c.SubmitFleetCampaign(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(st.ID)
	if !*wait {
		return printJSON(st)
	}
	if st, err = c.WaitFleetCampaign(ctx, st.ID, 500*time.Millisecond); err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.State != client.CampaignDone {
		return fmt.Errorf("campaign %s %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// printFleetStatus renders the worker and campaign tables.
func printFleetStatus(st client.FleetStatus) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tSTATE\tWEIGHT\tBEAT-AGE\tASSIGNED\tDONE\tREQUEUED")
	for _, w := range st.Workers {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1fs\t%d\t%d\t%d\n",
			w.Name, w.State, w.Weight, w.HeartbeatAge, w.CellsAssigned, w.CellsDone, w.Requeued)
	}
	tw.Flush()
	if len(st.Campaigns) > 0 {
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "CAMPAIGN\tNAME\tSTATE\tCELLS\tDONE\tFAILED\tREQUEUED\tPER-WORKER")
		for _, c := range st.Campaigns {
			var per []string
			for _, w := range st.Workers {
				if n, ok := c.PerWorker[w.Name]; ok {
					per = append(per, fmt.Sprintf("%s=%d", w.Name, n))
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
				c.ID, c.Name, c.State, c.Cells, c.Done, c.Failed, c.Requeued, strings.Join(per, " "))
		}
		tw.Flush()
	}
	fmt.Printf("\nre-queued cells total: %d\n", st.Requeued)
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(csv string) ([]int64, error) {
	var out []int64
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// submit builds a Spec from the kind's constructor plus the shared
// learncfg flag set — the exact flags `prognosis <kind>` takes — and
// posts it.
func submit(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("submit needs a kind: learn, diff, check, regress, or monitor")
	}
	kind, rest := args[0], args[1:]
	fs := flag.NewFlagSet("prognosisctl submit "+kind, flag.ContinueOnError)
	var spec client.Spec
	switch kind {
	case client.KindLearn:
		spec = client.NewLearnSpec("")
	case client.KindCheck:
		spec = client.NewCheckSpec("")
	case client.KindDiff:
		spec = client.NewDiffSpec("", "")
	case client.KindRegress:
		spec = client.NewRegressSpec("")
	case client.KindMonitor:
		spec = client.NewMonitorSpec("")
	default:
		return fmt.Errorf("unknown kind %q (want learn, diff, check, regress, or monitor)", kind)
	}
	switch kind {
	case client.KindLearn, client.KindCheck:
		fs.StringVar(&spec.Target, "target", "", "registry target to learn")
	case client.KindDiff:
		fs.StringVar(&spec.TargetA, "target-a", "", "first target")
		fs.StringVar(&spec.TargetB, "target-b", "", "second target")
	case client.KindRegress, client.KindMonitor:
		fs.StringVar(&spec.Manifest, "manifest", "", "regression manifest path on the daemon host (empty = daemon default)")
		fs.StringVar(&spec.Targets, "targets", "", "comma-separated subset of manifest cells")
	}
	if kind == client.KindCheck {
		fs.StringVar(&spec.Property, "property", "", "extra LTLf property to check")
		fs.IntVar(&spec.Depth, "depth", 0, "LTLf exploration depth (0 = default)")
	}
	fs.IntVar(&spec.Witnesses, "witnesses", 0, "distinguishing traces to collect (0 = default)")
	spec.Config.Register(fs)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("submit takes no positional arguments after the kind (got %v)", fs.Args())
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(st.ID)
	return printJSON(st)
}

func streamEvents(ctx context.Context, c *client.Client, id string) error {
	es, err := c.Events(ctx, id)
	if err != nil {
		return err
	}
	defer es.Close()
	for {
		ev, err := es.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%s\n", ev.Kind, strings.TrimSpace(string(ev.Data)))
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
