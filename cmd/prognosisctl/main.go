// Command prognosisctl is the thin operator CLI for a running prognosisd:
// every subcommand is a direct call through the typed pkg/client API, so
// scripting against the daemon (CI's daemon-smoke choreography included)
// never hand-rolls the wire format.
//
// Usage:
//
//	prognosisctl [-addr URL] submit <learn|diff|check|regress|monitor> [flags]
//	prognosisctl [-addr URL] status <job-id>
//	prognosisctl [-addr URL] wait <job-id>
//	prognosisctl [-addr URL] cancel <job-id>
//	prognosisctl [-addr URL] events <job-id>
//	prognosisctl [-addr URL] model <job-id> [-side a|b] [-format json|dot]
//	prognosisctl [-addr URL] witness <job-id>
//	prognosisctl [-addr URL] stats | metrics | health
//
// `submit` prints the accepted job's status JSON (its ID on the first
// line for easy capture: `id=$(prognosisctl submit learn -target tcp |
// head -1)`). `wait` polls to a terminal state, prints the final status
// JSON, and exits nonzero unless the job is done. `events` streams the
// job's SSE events one per line as "<kind>\t<payload>". The artifact and
// introspection verbs write the raw bytes to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "prognosisctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: prognosisctl [-addr URL] <submit|status|wait|cancel|events|model|witness|stats|metrics|health> ...")
}

func run(args []string) error {
	fs := flag.NewFlagSet("prognosisctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8047", "prognosisd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usage()
	}
	c := client.New(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	verb, rest := fs.Arg(0), fs.Args()[1:]
	switch verb {
	case "submit":
		return submit(ctx, c, rest)
	case "status", "wait", "cancel", "events", "model", "witness":
		if len(rest) == 0 {
			return fmt.Errorf("%s needs a job ID", verb)
		}
		id, rest := rest[0], rest[1:]
		switch verb {
		case "status":
			st, err := c.Job(ctx, id)
			if err != nil {
				return err
			}
			return printJSON(st)
		case "wait":
			st, err := c.Wait(ctx, id, 500*time.Millisecond)
			if err != nil {
				return err
			}
			if err := printJSON(st); err != nil {
				return err
			}
			if st.State != client.StateDone {
				return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
			}
			return nil
		case "cancel":
			was, err := c.Cancel(ctx, id)
			if err != nil {
				return err
			}
			fmt.Printf("cancelled (was %s)\n", was)
			return nil
		case "events":
			return streamEvents(ctx, c, id)
		case "model":
			mf := flag.NewFlagSet("prognosisctl model", flag.ContinueOnError)
			side := mf.String("side", "", "diff job side: a or b")
			format := mf.String("format", "", "artifact format: json (default) or dot")
			if err := mf.Parse(rest); err != nil {
				return err
			}
			raw, err := c.Model(ctx, id, *side, *format)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(raw)
			return err
		case "witness":
			raw, err := c.Witness(ctx, id)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(raw)
			return err
		}
		return nil
	case "stats":
		st, err := c.ServerStats(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "metrics":
		raw, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(raw)
		return err
	case "health":
		if err := c.Healthz(ctx); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		return usage()
	}
}

// submit builds a Spec from the kind's constructor plus the shared
// learncfg flag set — the exact flags `prognosis <kind>` takes — and
// posts it.
func submit(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("submit needs a kind: learn, diff, check, regress, or monitor")
	}
	kind, rest := args[0], args[1:]
	fs := flag.NewFlagSet("prognosisctl submit "+kind, flag.ContinueOnError)
	var spec client.Spec
	switch kind {
	case client.KindLearn:
		spec = client.NewLearnSpec("")
	case client.KindCheck:
		spec = client.NewCheckSpec("")
	case client.KindDiff:
		spec = client.NewDiffSpec("", "")
	case client.KindRegress:
		spec = client.NewRegressSpec("")
	case client.KindMonitor:
		spec = client.NewMonitorSpec("")
	default:
		return fmt.Errorf("unknown kind %q (want learn, diff, check, regress, or monitor)", kind)
	}
	switch kind {
	case client.KindLearn, client.KindCheck:
		fs.StringVar(&spec.Target, "target", "", "registry target to learn")
	case client.KindDiff:
		fs.StringVar(&spec.TargetA, "target-a", "", "first target")
		fs.StringVar(&spec.TargetB, "target-b", "", "second target")
	case client.KindRegress, client.KindMonitor:
		fs.StringVar(&spec.Manifest, "manifest", "", "regression manifest path on the daemon host (empty = daemon default)")
		fs.StringVar(&spec.Targets, "targets", "", "comma-separated subset of manifest cells")
	}
	if kind == client.KindCheck {
		fs.StringVar(&spec.Property, "property", "", "extra LTLf property to check")
		fs.IntVar(&spec.Depth, "depth", 0, "LTLf exploration depth (0 = default)")
	}
	fs.IntVar(&spec.Witnesses, "witnesses", 0, "distinguishing traces to collect (0 = default)")
	spec.Config.Register(fs)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("submit takes no positional arguments after the kind (got %v)", fs.Args())
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(st.ID)
	return printJSON(st)
}

func streamEvents(ctx context.Context, c *client.Client, id string) error {
	es, err := c.Events(ctx, id)
	if err != nil {
		return err
	}
	defer es.Close()
	for {
		ev, err := es.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%s\n", ev.Kind, strings.TrimSpace(string(ev.Data)))
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
