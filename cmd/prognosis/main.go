// Command prognosis is the closed-box protocol analysis tool: it learns
// Mealy-machine models of protocol implementations and analyses them on
// the unified analysis plane.
//
// Subcommands:
//
//	prognosis learn  -target google [-learner ttt|lstar] [-seed N] [-perfect]
//	                 [-conformance D] [-dot model.dot] [-save model.json]
//	                 [-property '<LTLf>'] [-udp] [-no-cache] [-workers N]
//	                 [-rtt D] [-loss P] [-dup P] [-reorder P] [-impair-seed N]
//	                 [-v] [-events out.jsonl]
//	prognosis diff   [options] <targetA> <targetB>
//	prognosis check  -target <name> | -model <file> [options]
//	prognosis export -target <name> | -model <file> [-dot F] [-json F] [-min]
//	prognosis regress [-manifest F] [-store dir] [-targets a,b]
//	                 [-witness-dir dir] [-workers N]
//
// `learn` learns one target and reports model statistics. `diff` learns
// two targets concurrently (by default through a mildly impaired link, so
// loss-recovery divergences surface), prints witness traces plus
// per-state divergence summaries, and replays the first witness against
// both live targets. `check` verifies the builtin model-level property
// set (and optional LTLf formulas), exiting nonzero on violation.
// `export` writes models in the unified DOT/JSON codecs. `regress` is the
// CI model-regression gate: it relearns every target in a manifest —
// warm-started from the persistent query store named by -store, so
// unchanged targets cost a fraction of a cold learn — and diffs each
// against its checked-in golden model, exiting nonzero with the shortest
// distinguishing witness on any behavioural drift (docs/REGRESSION.md).
//
// Targets: every name in the lab registry (tcp, google, google-fixed,
// quiche, mvfst, lossy-retransmit). Ctrl-C cancels a run cleanly
// mid-round. Invoking prognosis with learn-style flags and no subcommand
// (e.g. `prognosis -target tcp`) behaves like `learn`, matching the
// pre-subcommand interface; a bare `prognosis` prints usage. See
// docs/ANALYSIS.md.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stderr))
}
