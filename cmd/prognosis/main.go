// Command prognosis is the closed-box protocol analysis tool: it learns
// Mealy-machine models of protocol implementations and analyses them on
// the unified analysis plane.
//
// Subcommands:
//
//	prognosis learn  -target google [-learner ttt|lstar] [-seed N] [-perfect]
//	                 [-conformance D] [-dot model.dot] [-save model.json]
//	                 [-property '<LTLf>'] [-udp] [-no-cache] [-workers N]
//	                 [-rtt D] [-loss P] [-dup P] [-reorder P] [-impair-seed N]
//	                 [-v] [-events out.jsonl]
//	prognosis diff   [options] <targetA> <targetB>
//	prognosis check  -target <name> | -model <file> [options]
//	prognosis export -target <name> | -model <file> [-dot F] [-json F] [-min]
//	prognosis regress [-manifest F] [-store dir] [-targets a,b]
//	                 [-witness-dir dir] [-workers N]
//	prognosis monitor [-manifest F] [-data dir] [-targets a,b]
//	                 [-interval D] [-workers N]
//
// `learn` learns one target and reports model statistics. `diff` learns
// two targets concurrently (by default through a mildly impaired link, so
// loss-recovery divergences surface), prints witness traces plus
// per-state divergence summaries, and replays the first witness against
// both live targets. `check` verifies the builtin model-level property
// set (and optional LTLf formulas), exiting nonzero on violation.
// `export` writes models in the unified DOT/JSON codecs. `regress` is the
// CI model-regression gate: it relearns every target in a manifest —
// warm-started from the persistent query store named by -store, so
// unchanged targets cost a fraction of a cold learn — and diffs each
// against its checked-in golden model, exiting nonzero with the shortest
// distinguishing witness on any behavioural drift (docs/REGRESSION.md).
// `monitor` runs continuous drift-monitor cycles: every manifest cell is
// warm-relearned, snapshotted with query-log lineage under -data, and
// compared against its previous snapshot, raising a drift alarm only
// when the shortest witness reproduces live (docs/MONITORING.md). With
// -interval it keeps cycling; without, one cycle runs and the command
// exits nonzero if any alarm fired.
//
// Targets: every name in the lab registry (tcp, google, google-fixed,
// quiche, mvfst, lossy-retransmit). Ctrl-C cancels a run cleanly
// mid-round. Invoking prognosis with learn-style flags and no subcommand
// (e.g. `prognosis -target tcp`) behaves like `learn`, matching the
// pre-subcommand interface; a bare `prognosis` prints usage. See
// docs/ANALYSIS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	// The monitor subcommand dispatches here rather than in internal/cli:
	// it drives the server package's monitor subsystem, and server
	// already imports cli (for the shared regress machinery) — the
	// command binary is the one place that can see both sides.
	if len(os.Args) > 1 && os.Args[1] == "monitor" {
		if err := runMonitor(os.Args[2:]); err != nil {
			if err == flag.ErrHelp {
				os.Exit(0)
			}
			fmt.Fprintln(os.Stderr, "prognosis:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(cli.Main(os.Args[1:], os.Stderr))
}

func runMonitor(args []string) error {
	fs := flag.NewFlagSet("prognosis monitor", flag.ContinueOnError)
	manifest := fs.String("manifest", "internal/analysis/testdata/regress.json",
		"regression manifest naming the monitored (target × config) cells")
	data := fs.String("data", "prognosis-monitor",
		"monitor state root: lineage journal, model snapshots, and the shared query store")
	targets := fs.String("targets", "", "comma-separated subset of manifest cells to monitor (default: all)")
	workers := fs.Int("workers", 1, "membership-query concurrency per relearn")
	witnesses := fs.Int("witnesses", 3, "distinguishing traces to collect per drifted cell")
	interval := fs.Duration("interval", 0, "keep cycling at this interval (0 = one cycle, exit nonzero on alarm)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("monitor takes no positional arguments (got %v)", fs.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := server.MonitorOptions{
		Manifest: *manifest, Targets: *targets, DataDir: *data,
		Workers: *workers, Witnesses: *witnesses,
	}
	for {
		sum, report, err := server.RunMonitorCycle(ctx, opt, nil)
		if report != "" {
			fmt.Print(report)
		}
		if err != nil {
			return err
		}
		fmt.Printf("monitor cycle: %d cells, %d live queries, %d alarm(s)\n",
			sum.RegressTargets, sum.Queries, sum.Alarms)
		if *interval <= 0 {
			if sum.Alarms > 0 {
				return fmt.Errorf("%d cell(s) drifted with live-confirmed witnesses: %s",
					sum.Alarms, strings.Join(sum.Drifted, ", "))
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}
