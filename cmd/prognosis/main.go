// Command prognosis learns a Mealy-machine model of a protocol
// implementation in a closed-box fashion and reports model statistics,
// optionally writing the model as Graphviz dot.
//
// Usage:
//
//	prognosis -target google [-learner ttt|lstar] [-seed N] [-perfect]
//	          [-dot model.dot] [-udp] [-no-cache] [-workers N] [-rtt D]
//
// Targets: tcp, google, google-fixed, quiche, mvfst.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/transport"
)

func main() {
	target := flag.String("target", "tcp", "target implementation: tcp, google, google-fixed, quiche, mvfst")
	learner := flag.String("learner", "ttt", "learning algorithm: ttt or lstar")
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	perfect := flag.Bool("perfect", false, "use the ground-truth equivalence oracle (QUIC targets only)")
	dotFile := flag.String("dot", "", "write the learned model as Graphviz dot to this file")
	saveFile := flag.String("save", "", "write the learned model as JSON to this file")
	property := flag.String("property", "", `LTLf property to check on the learned model, e.g. 'G(outHas("CONNECTION_CLOSE") -> G(!outHas("HANDSHAKE_DONE]")))'`)
	depth := flag.Int("depth", 4, "exploration depth for -property")
	udp := flag.Bool("udp", false, "run the session over a UDP loopback socket pair")
	noCache := flag.Bool("no-cache", false, "disable the membership-query cache")
	workers := flag.Int("workers", 1, "membership-query concurrency: fan queries across this many independent SUL instances")
	rtt := flag.Duration("rtt", 0, "emulate a remote target by adding this round-trip to every exchange (e.g. 200us)")
	flag.Parse()

	if err := run(runConfig{
		target: *target, learner: *learner, seed: *seed, perfect: *perfect,
		dotFile: *dotFile, saveFile: *saveFile, property: *property, depth: *depth,
		udp: *udp, noCache: *noCache, workers: *workers, rtt: *rtt,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "prognosis:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	target, learner   string
	seed              int64
	perfect           bool
	dotFile, saveFile string
	property          string
	depth             int
	udp, noCache      bool
	workers           int
	rtt               time.Duration
}

func run(cfg runConfig) error {
	target, learner, seed := cfg.target, cfg.learner, cfg.seed
	perfect, dotFile, udp, noCache := cfg.perfect, cfg.dotFile, cfg.udp, cfg.noCache
	opts := lab.Options{
		Learner: core.LearnerKind(learner), Seed: seed,
		Perfect: perfect, DisableCache: noCache,
		Workers: cfg.workers, RTT: cfg.rtt,
	}
	var res *lab.Result
	var err error
	if udp && target != lab.TargetTCP {
		res, err = learnOverUDP(target, opts)
	} else {
		res, err = lab.Learn(target, opts)
	}
	if err != nil {
		return err
	}
	if res.Nondet != nil {
		fmt.Printf("target %s: learning paused — nondeterminism detected (§5 analysis)\n", target)
		fmt.Printf("  witness query: %v\n", res.Nondet.Word)
		fmt.Printf("  %d distinct responses over %d repetitions:\n", len(res.Nondet.Observed), res.Nondet.Votes)
		for out, n := range res.Nondet.Observed {
			fmt.Printf("    x%-3d %s\n", n, out)
		}
		return nil
	}
	m := res.Model
	fmt.Printf("target %s: learned model with %d states, %d transitions\n",
		target, m.NumStates(), m.NumTransitions())
	fmt.Printf("  live membership queries: %d (%d input symbols, %d cache hits)\n",
		res.Stats.Queries, res.Stats.Symbols, res.Stats.Hits)
	fmt.Printf("  wall time: %v\n", res.Duration)
	fmt.Printf("  traces of length <=10 in model: %d (of %d possible over the alphabet)\n",
		m.CountTraces(10), totalWords(len(m.Inputs()), 10))
	if cfg.saveFile != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.saveFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  model saved to %s\n", cfg.saveFile)
	}
	if cfg.property != "" {
		f, err := analysis.ParseFormula(cfg.property)
		if err != nil {
			return err
		}
		if bad := analysis.CheckLTL(m, f, cfg.depth); bad != nil {
			fmt.Printf("  property VIOLATED; witness trace:\n")
			for i := range bad.Inputs {
				fmt.Printf("    %s / %s\n", bad.Inputs[i], bad.Outputs[i])
			}
		} else {
			fmt.Printf("  property holds on all traces of length %d\n", cfg.depth)
		}
	}
	if dotFile != "" {
		if err := os.WriteFile(dotFile, []byte(m.DOT(target)), 0o644); err != nil {
			return err
		}
		fmt.Printf("  model written to %s\n", dotFile)
	} else {
		fmt.Println()
		fmt.Print(m.String())
	}
	return nil
}

// learnOverUDP hosts the QUIC target on loopback UDP sockets and learns
// across them. With opts.Workers > 1 it opens one socket pair per worker —
// a sharded pool of genuinely independent network endpoints.
func learnOverUDP(target string, opts lab.Options) (*lab.Result, error) {
	profile, err := lab.QUICProfile(target)
	if err != nil {
		return nil, err
	}
	n := opts.Workers
	if n < 1 {
		n = 1
	}
	suls := make([]core.SUL, 0, n)
	for i := 0; i < n; i++ {
		srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: opts.Seed})
		hosted, err := transport.ListenQUIC(transport.Loopback(), srv)
		if err != nil {
			return nil, err
		}
		defer hosted.Close()
		tr := transport.NewQUICClientTransport(hosted.Addr())
		defer tr.Close()
		cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: opts.Seed + 4}, tr)
		var sul core.SUL = &udpSUL{srv: srv, cli: cli}
		if opts.RTT > 0 {
			sul = lab.Remote(sul, opts.RTT)
		}
		suls = append(suls, sul)
	}

	exp := &core.Experiment{
		Alphabet: quicsim.InputAlphabet(), SUL: suls[0], SULs: suls[1:],
		Workers: opts.Workers,
		Learner: opts.Learner, Seed: opts.Seed, DisableCache: opts.DisableCache,
	}
	res := &lab.Result{Target: target, LearnerKind: opts.Learner}
	m, err := exp.Learn()
	res.Stats = exp.Stats
	if err != nil {
		if nd, ok := core.IsNondeterminism(err); ok {
			res.Nondet = nd
			return res, nil
		}
		return nil, err
	}
	res.Model = m
	return res, nil
}

type udpSUL struct {
	srv *quicsim.Server
	cli *reference.QUICClient
}

func (u *udpSUL) Reset() error {
	u.srv.Reset()
	return u.cli.Reset()
}

func (u *udpSUL) Step(in string) (string, error) { return u.cli.Step(in) }

func totalWords(k, maxLen int) uint64 {
	var total, pow uint64 = 0, 1
	for i := 1; i <= maxLen; i++ {
		pow *= uint64(k)
		total += pow
	}
	return total
}
