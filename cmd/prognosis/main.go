// Command prognosis learns a Mealy-machine model of a protocol
// implementation in a closed-box fashion and reports model statistics,
// optionally writing the model as Graphviz dot.
//
// Usage:
//
//	prognosis -target google [-learner ttt|lstar] [-seed N] [-perfect]
//	          [-dot model.dot] [-udp] [-no-cache] [-workers N] [-rtt D]
//	          [-loss P] [-dup P] [-reorder P] [-impair-seed N]
//	          [-v] [-events out.jsonl]
//
// Targets: every name in the lab registry (tcp, google, google-fixed,
// quiche, mvfst, lossy-retransmit). Ctrl-C cancels a run cleanly
// mid-round. -v streams live learning progress to stderr; -events appends
// the typed event stream as JSON lines.
//
// -loss/-dup/-reorder impair every worker's link with the given
// per-datagram fault probabilities (loss applies to each direction); the
// guard then defaults to the adaptive §5 check, whose escalations -v
// reports live. See docs/IMPAIRMENT.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/netem"
)

func main() {
	target := flag.String("target", "tcp", "target implementation: "+strings.Join(lab.Targets(), ", "))
	learner := flag.String("learner", "ttt", "learning algorithm: ttt or lstar")
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	perfect := flag.Bool("perfect", false, "use the ground-truth equivalence oracle (QUIC targets only)")
	dotFile := flag.String("dot", "", "write the learned model as Graphviz dot to this file")
	saveFile := flag.String("save", "", "write the learned model as JSON to this file")
	property := flag.String("property", "", `LTLf property to check on the learned model, e.g. 'G(outHas("CONNECTION_CLOSE") -> G(!outHas("HANDSHAKE_DONE]")))'`)
	depth := flag.Int("depth", 4, "exploration depth for -property")
	udp := flag.Bool("udp", false, "run the session over UDP loopback socket pairs (one per worker)")
	noCache := flag.Bool("no-cache", false, "disable the membership-query cache")
	workers := flag.Int("workers", 1, "membership-query concurrency: fan queries across this many independent SUL instances")
	rtt := flag.Duration("rtt", 0, "emulate a remote target by adding this round-trip to every exchange (e.g. 200us)")
	loss := flag.Float64("loss", 0, "per-datagram loss probability injected in each direction of every worker's link")
	dup := flag.Float64("dup", 0, "per-datagram probability of duplicating a response")
	reorder := flag.Float64("reorder", 0, "per-exchange probability of reordering adjacent response datagrams")
	impairSeed := flag.Int64("impair-seed", 0, "seed for the fault streams (defaults to -seed)")
	verbose := flag.Bool("v", false, "stream live learning progress to stderr")
	eventsFile := flag.String("events", "", "append the typed event stream as JSON lines to this file")
	flag.Parse()

	if err := run(runConfig{
		target: *target, learner: *learner, seed: *seed, perfect: *perfect,
		dotFile: *dotFile, saveFile: *saveFile, property: *property, depth: *depth,
		udp: *udp, noCache: *noCache, workers: *workers, rtt: *rtt,
		loss: *loss, dup: *dup, reorder: *reorder, impairSeed: *impairSeed,
		verbose: *verbose, eventsFile: *eventsFile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "prognosis:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	target, learner    string
	seed               int64
	perfect            bool
	dotFile, saveFile  string
	property           string
	depth              int
	udp, noCache       bool
	workers            int
	rtt                time.Duration
	loss, dup, reorder float64
	impairSeed         int64
	verbose            bool
	eventsFile         string
}

// impairment assembles the netem config of the run's flags (zero when no
// fault flag is set).
func (cfg runConfig) impairment() netem.Config {
	seed := cfg.impairSeed
	if seed == 0 {
		seed = cfg.seed
	}
	return netem.Config{
		LossClient: cfg.loss, LossServer: cfg.loss,
		Duplicate: cfg.dup, Reorder: cfg.reorder,
		Seed: seed,
	}
}

// options assembles the lab functional options for one run.
func (cfg runConfig) options() ([]lab.Option, func(), error) {
	opts := []lab.Option{
		lab.WithSeed(cfg.seed),
		lab.WithLearner(core.LearnerKind(cfg.learner)),
		lab.WithWorkers(cfg.workers),
		lab.WithRTT(cfg.rtt),
	}
	if cfg.perfect {
		opts = append(opts, lab.WithPerfectEquivalence())
	}
	if cfg.noCache {
		opts = append(opts, lab.WithoutCache())
	}
	if cfg.udp {
		// Unsupported combinations (e.g. tcp) are rejected by the target's
		// builder with a clear error rather than silently ignored here.
		opts = append(opts, lab.WithTransport(lab.TransportUDP))
	}
	if impair := cfg.impairment(); impair.Enabled() {
		opts = append(opts, lab.WithImpairment(impair))
	}
	cleanup := func() {}
	var observers []learn.Observer
	if cfg.verbose {
		observers = append(observers, progressObserver{})
	}
	if cfg.eventsFile != "" {
		f, err := os.OpenFile(cfg.eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { f.Close() }
		observers = append(observers, learn.NewJSONLObserver(f))
	}
	if len(observers) > 0 {
		opts = append(opts, lab.WithObserver(learn.MultiObserver(observers...)))
	}
	return opts, cleanup, nil
}

func run(cfg runConfig) error {
	opts, cleanup, err := cfg.options()
	if err != nil {
		return err
	}
	defer cleanup()

	exp, err := lab.NewExperiment(cfg.target, opts...)
	if err != nil {
		return err
	}
	defer exp.Close()

	// Ctrl-C cancels the run mid-round; the context-first API unwinds the
	// pool, cache, and equivalence goroutines before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := exp.Learn(ctx)
	if err != nil {
		return err
	}
	if res.Nondet != nil {
		fmt.Printf("target %s: learning paused — nondeterminism detected (§5 analysis)\n", cfg.target)
		fmt.Printf("  witness query: %v\n", res.Nondet.Word)
		fmt.Printf("  %d distinct responses over %d repetitions:\n", len(res.Nondet.Observed), res.Nondet.Votes)
		for out, n := range res.Nondet.Observed {
			fmt.Printf("    x%-3d %s\n", n, out)
		}
		return nil
	}
	m := res.Model
	fmt.Printf("target %s: learned model with %d states, %d transitions\n",
		cfg.target, m.NumStates(), m.NumTransitions())
	fmt.Printf("  live membership queries: %d (%d input symbols, %d cache hits)\n",
		res.Stats.Queries, res.Stats.Symbols, res.Stats.Hits)
	fmt.Printf("  wall time: %v\n", res.Duration)
	if cfg.impairment().Enabled() {
		fmt.Printf("  impaired link (%s): dropped %d->/%d<- datagrams, %d duplicated, %d reordered\n",
			cfg.impairment().Label(), res.Faults.DroppedClient, res.Faults.DroppedServer,
			res.Faults.Duplicated, res.Faults.Reordered)
		fmt.Printf("  guard: %d flaky queries, %d escalations, %d votes beyond the floor\n",
			res.Guard.RetriedQueries, res.Guard.Escalations, res.Guard.WastedVotes)
	}
	fmt.Printf("  traces of length <=10 in model: %d (of %d possible over the alphabet)\n",
		m.CountTraces(10), automata.TotalWords(len(m.Inputs()), 10))
	if cfg.saveFile != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.saveFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  model saved to %s\n", cfg.saveFile)
	}
	if cfg.property != "" {
		f, err := analysis.ParseFormula(cfg.property)
		if err != nil {
			return err
		}
		if bad := analysis.CheckLTL(m, f, cfg.depth); bad != nil {
			fmt.Printf("  property VIOLATED; witness trace:\n")
			for i := range bad.Inputs {
				fmt.Printf("    %s / %s\n", bad.Inputs[i], bad.Outputs[i])
			}
		} else {
			fmt.Printf("  property holds on all traces of length %d\n", cfg.depth)
		}
	}
	if cfg.dotFile != "" {
		if err := os.WriteFile(cfg.dotFile, []byte(m.DOT(cfg.target)), 0o644); err != nil {
			return err
		}
		fmt.Printf("  model written to %s\n", cfg.dotFile)
	} else {
		fmt.Println()
		fmt.Print(m.String())
	}
	return nil
}

// progressObserver renders the event stream as -v live progress.
type progressObserver struct{}

func (progressObserver) OnEvent(e learn.Event) {
	switch ev := e.(type) {
	case learn.RoundStarted:
		fmt.Fprintf(os.Stderr, "round %d: building hypothesis...\n", ev.Round)
	case learn.HypothesisReady:
		fmt.Fprintf(os.Stderr, "round %d: hypothesis with %d states / %d transitions\n",
			ev.Round, ev.States, ev.Transitions)
	case learn.CounterexampleFound:
		fmt.Fprintf(os.Stderr, "round %d: counterexample %v\n", ev.Round, ev.Word)
	case learn.CacheSnapshot:
		fmt.Fprintf(os.Stderr, "round %d: %d live queries, %d cache hits, %d cached prefixes\n",
			ev.Round, ev.LiveQueries, ev.Hits, ev.Entries)
	case learn.NondeterminismDetected:
		fmt.Fprintf(os.Stderr, "nondeterminism: %d alternatives after %d votes on %v\n",
			ev.Alternatives, ev.Votes, ev.Word)
	case learn.GuardEscalated:
		fmt.Fprintf(os.Stderr, "guard: escalated to %d votes after %d (disagreement %.2f) on %v\n",
			ev.Budget, ev.Votes, ev.EWMA, ev.Word)
	}
}
