// Command experiments regenerates every quantitative result of the paper's
// evaluation (§6, Figs. 3-4, Appendices A-B), printing one block per
// experiment with the paper's reported value next to the measured one.
//
// All learning runs execute up front as one lab.Campaign with bounded
// parallelism (-parallel); the report sections then read from the
// aggregated results, so the slowest learns overlap instead of running
// back to back. Per-run outcomes are isolated: mvfst halting on
// nondeterminism is a result, not a failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/synth"
)

func main() {
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	workers := flag.Int("workers", 1, "membership-query concurrency inside each learning run")
	window := flag.Int("window", 0, "start the adaptive in-flight window at this size (AIMD up to -workers; 0 keeps the fixed limit)")
	parallel := flag.Int("parallel", 0, "how many learning runs execute at once (0 = GOMAXPROCS)")
	impair := flag.String("impair", "", "run the impairment matrix for this target (e.g. google, lossy-retransmit) instead of the paper report")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	if *impair != "" {
		err = runImpairmentGrid(ctx, *impair, *seed, *workers, *window, *parallel)
	} else {
		err = run(ctx, *seed, *workers, *window, *parallel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runImpairmentGrid fans one target across a loss × duplication × reorder
// grid (per-cell isolation) and prints one verdict line per cell: model
// identical to the clean baseline? query inflation? guard effort?
func runImpairmentGrid(ctx context.Context, target string, seed int64, workers, window, parallel int) error {
	cells := lab.ImpairmentGrid(
		[]float64{0, 0.01, 0.05},
		[]float64{0, 0.01},
		[]float64{0, 0.05},
	)
	base := []lab.Option{lab.WithSeed(seed), lab.WithWorkers(workers)}
	if window > 0 {
		base = append(base, lab.WithWindow(learn.WindowConfig{Initial: window}))
	}
	fmt.Printf("Impairment matrix — target %s (%d cells, workers=%d)\n", target, len(cells), workers)
	fmt.Println(strings.Repeat("-", 78))
	m, err := lab.RunImpairmentMatrix(ctx, target, base, cells, parallel, seed+101)
	if err != nil {
		return err
	}
	if m.Baseline.Err != nil {
		return fmt.Errorf("clean baseline: %w", m.Baseline.Err)
	}
	bres := m.Baseline.Result
	if bres.Nondet != nil {
		return fmt.Errorf("clean baseline halted on nondeterminism: %v", bres.Nondet)
	}
	fmt.Printf("  %-28s %d states, %d live queries (baseline)\n",
		"clean", bres.Machine.NumStates(), bres.Stats.Queries)
	for _, v := range m.Cells {
		switch {
		case v.Run.Err != nil:
			fmt.Printf("  %-28s ERROR: %v\n", v.Cell.Name(), v.Run.Err)
		case v.Nondet:
			fmt.Printf("  %-28s nondeterminism after %d votes on %v\n",
				v.Cell.Name(), v.Run.Result.Nondet.Votes, v.Run.Result.Nondet.Word)
		default:
			verdict := "MODEL DIVERGED"
			if v.MatchesBaseline {
				verdict = "model identical"
			}
			fmt.Printf("  %-28s %s, %.1fx queries, %d escalations, %d wasted votes\n",
				v.Cell.Name(), verdict, v.QueryInflation, v.Escalations, v.WastedVotes)
		}
	}
	return nil
}

func header(id, title string) {
	fmt.Printf("\n=== %s — %s ===\n", id, title)
}

func row(label, paper, measured string) {
	fmt.Printf("  %-38s paper: %-28s measured: %s\n", label, paper, measured)
}

func run(ctx context.Context, seed int64, workers, window, parallel int) error {
	fmt.Println("Prognosis reproduction — experiment harness")
	fmt.Println(strings.Repeat("-", 60))

	// Every learning run of the evaluation, as one concurrent campaign.
	std := func(extra ...lab.Option) []lab.Option {
		opts := []lab.Option{lab.WithSeed(seed), lab.WithWorkers(workers)}
		if window > 0 {
			opts = append(opts, lab.WithWindow(learn.WindowConfig{Initial: window}))
		}
		return append(opts, extra...)
	}
	camp := &lab.Campaign{
		Runs: []lab.RunSpec{
			{Name: "tcp", Target: lab.TargetTCP, Options: std()},
			{Name: "google", Target: lab.TargetGoogle, Options: std(lab.WithPerfectEquivalence())},
			{Name: "quiche", Target: lab.TargetQuiche, Options: std(lab.WithPerfectEquivalence())},
			{Name: "mvfst", Target: lab.TargetMvfst, Options: std()},
			{Name: "google-fixed", Target: lab.TargetGoogleFixed, Options: std(lab.WithPerfectEquivalence())},
		},
		Parallelism: parallel,
	}
	results, err := camp.Run(ctx)
	if err != nil {
		return err
	}
	byName := make(map[string]*lab.Result, len(results))
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("campaign run %s: %w", r.Name, r.Err)
		}
		byName[r.Name] = r.Result
	}
	tcp, google, quiche := byName["tcp"], byName["google"], byName["quiche"]
	mvfst, googleFixed := byName["mvfst"], byName["google-fixed"]
	// Only mvfst is expected to halt on the §5 analysis; any other run
	// doing so has no model to report on, so fail with the witness instead
	// of dereferencing a nil model below.
	for _, r := range []*lab.Result{tcp, google, quiche, googleFixed} {
		if r.Nondet != nil {
			return fmt.Errorf("target %s unexpectedly nondeterministic: %v", r.Target, r.Nondet)
		}
	}

	// --- T6.1 / F3b / A1: TCP ---
	header("T6.1", "Learning the TCP stack (§6.1, Appendix A.1)")
	row("model states", "6", fmt.Sprint(tcp.Machine.NumStates()))
	row("model transitions", "42", fmt.Sprint(tcp.Machine.NumTransitions()))
	row("membership queries", "4,726", fmt.Sprintf("%d live (+%d cached)", tcp.Stats.Queries, tcp.Stats.Hits))

	// --- T6.2a/b: QUIC models ---
	header("T6.2", "Learning QUIC implementations (§6.2.2, Appendix A.2-A.3)")
	row("google states/transitions", "12 / 84", fmt.Sprintf("%d / %d", google.Machine.NumStates(), google.Machine.NumTransitions()))
	row("quiche states/transitions", "8 / 56", fmt.Sprintf("%d / %d", quiche.Machine.NumStates(), quiche.Machine.NumTransitions()))
	row("google queries", "24,301", fmt.Sprintf("%d live (+%d cached)", google.Stats.Queries, google.Stats.Hits))
	row("quiche queries", "12,301", fmt.Sprintf("%d live (+%d cached)", quiche.Stats.Queries, quiche.Stats.Hits))
	row("learned 2 of 3 targets", "yes (mvfst fails)", "yes (see I2)")

	// --- T6.2c: trace reduction ---
	header("T6.2c", "Trace-space reduction (§6.2.2)")
	all := automata.TotalWords(7, 10)
	row("words of length <=10 over 7 symbols", "329,554,456", fmt.Sprint(all))
	// The paper reports 1,210 / 1,210+715 traces "to check"; the absolute
	// count depends on the target's machine (ours is the profile spec), so
	// we report the two analogous statistics and check the shape: orders
	// of magnitude below the full space, and google > quiche.
	productive := func(o string) bool { return o != "{}" }
	row("google: checking suite (W-method d=1)", "1,210 traces to check",
		fmt.Sprintf("%d words (+%d productive traces)", analysis.WMethodSuite(google.Machine, 1).Len(),
			google.Machine.CountTracesFiltered(10, productive)))
	row("quiche: checking suite (W-method d=1)", "715 traces to check",
		fmt.Sprintf("%d words (+%d productive traces)", analysis.WMethodSuite(quiche.Machine, 1).Len(),
			quiche.Machine.CountTracesFiltered(10, productive)))

	// --- I1: RFC imprecision ---
	header("I1", "RFC imprecision: model-size divergence (§6.2.3)")
	diff := analysis.Diff(google.Model(), quiche.Model(), 3)
	row("models equivalent", "no (sizes 12 vs 8)", fmt.Sprintf("%v (sizes %d vs %d)", diff.Equivalent, diff.StatesA, diff.StatesB))
	if len(diff.Witnesses) > 0 {
		w := diff.Witnesses[0]
		fmt.Printf("  first divergence after %v:\n    google: %s\n    quiche: %s\n",
			w.Word[:w.FirstDivergence+1], w.OutputsA[w.FirstDivergence], w.OutputsB[w.FirstDivergence])
	}
	// The packet-number-space reset divergence behind the RFC fix.
	word := []string{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto}
	og, _ := google.Machine.Run(word)
	oq, _ := quiche.Machine.Run(word)
	fmt.Printf("  retried INITIAL (PN-space reset): google %s / quiche %s\n", og[1], oq[1])

	// --- I2: mvfst nondeterminism ---
	header("I2", "Nondeterministic connection closure in mvfst (§6.2.4)")
	if mvfst.Nondet == nil {
		row("nondeterminism detected", "yes", "NO — reproduction failed")
	} else {
		row("nondeterminism detected", "yes", "yes")
		rate := measureResetRate(seed)
		row("post-close RESET rate", "82%", fmt.Sprintf("%.0f%%", 100*rate))
		row("back-off before RESET", "none (DoS vector)", "none")
	}

	// --- I3: retry port bug ---
	header("I3", "Inconsistent port on RETRY in the reference client (§6.2.5)")
	good := lab.NewQUIC(quicsim.ProfileGoogle, lab.QUICOptions{Seed: seed, RetryRequired: true})
	bad := lab.NewQUIC(quicsim.ProfileGoogle, lab.QUICOptions{Seed: seed, RetryRequired: true, BuggyRetry: true})
	goodOut := drive(good, quicsim.SymInitialCrypto, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	badOut := drive(bad, quicsim.SymInitialCrypto, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	row("correct client completes handshake", "yes", yesNo(strings.Contains(goodOut[2], "HANDSHAKE_DONE")))
	row("buggy client can establish", "no", yesNo(badOut[1] != "{}" || badOut[2] != "{}"))

	// --- I4 / B1: STREAM_DATA_BLOCKED synthesis ---
	header("I4/B1", "Maximum Stream Data stuck at 0 (§6.2.6, Appendix B.1)")
	for _, tc := range []struct {
		target string
		res    *lab.Result
	}{
		{lab.TargetGoogle, google},
		{lab.TargetGoogleFixed, googleFixed},
	} {
		verdict, err := sdbVerdict(tc.target, tc.res, seed)
		if err != nil {
			return err
		}
		want := "constant 0"
		if tc.target == lab.TargetGoogleFixed {
			want = "tracks limit"
		}
		row(fmt.Sprintf("%s field term", tc.target), want, verdict)
	}

	// --- F3c/F4: TCP register synthesis ---
	header("F3c/F4", "Synthesized TCP handshake registers (Fig. 3(c), Fig. 4)")
	ok, err := tcpRegisterVerdict(tcp, seed)
	if err != nil {
		return err
	}
	row("SYN-ACK ack = client seq + 1", "r = sn+1", yesNo(ok))

	fmt.Println()
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func drive(setup *lab.QUICSetup, word ...string) []string {
	_ = setup.Reset()
	out := make([]string, 0, len(word))
	for _, sym := range word {
		o, err := setup.Client.Step(sym)
		if err != nil {
			o = "ERR"
		}
		out = append(out, o)
	}
	return out
}

// measureResetRate repeats the Issue 2 probe and counts stateless RESETs.
func measureResetRate(seed int64) float64 {
	setup := lab.NewQUIC(quicsim.ProfileMvfst, lab.QUICOptions{Seed: seed})
	const trials = 400
	resets := 0
	for i := 0; i < trials; i++ {
		out := drive(setup, quicsim.SymInitialCrypto, quicsim.SymHandshakeHD, quicsim.SymShortHD)
		if out[2] == "{RESET(?,?)[]}" {
			resets++
		}
	}
	return float64(resets) / trials
}

// sdbVerdict runs the Issue 4 synthesis over an already-learned model and
// classifies the output term.
func sdbVerdict(target string, res *lab.Result, seed int64) (string, error) {
	profile, err := lab.QUICProfile(target)
	if err != nil {
		return "", err
	}
	setup := lab.NewQUIC(profile, lab.QUICOptions{Seed: seed})
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortFC,
			quicsim.SymShortStream, quicsim.SymShortStream, quicsim.SymShortStream},
	}
	var traces []synth.Trace
	for _, w := range words {
		tr, err := lab.CollectSDBTrace(setup, w, lab.BlockedOutputLabel)
		if err != nil {
			return "", err
		}
		traces = append(traces, tr)
	}
	em, err := synth.Synthesize(lab.SDBProblem(res.Machine, traces))
	if err != nil {
		return "", err
	}
	// Probe with a large granted limit; a constant-zero machine predicts 0.
	probe := synth.Trace{
		{Input: quicsim.SymInitialCrypto, InVals: []int64{0}},
		{Input: quicsim.SymHandshakeC, InVals: []int64{0}},
		{Input: quicsim.SymShortStream, InVals: []int64{0}},
		{Input: quicsim.SymShortFC, InVals: []int64{5000}},
		{Input: quicsim.SymShortStream, InVals: []int64{0}},
	}
	pred, _ := em.Run(probe)
	final := pred[len(pred)-1]
	if len(final) == 1 && final[0] == 0 {
		return "constant 0", nil
	}
	return "tracks limit", nil
}

// tcpRegisterVerdict synthesizes the SYN-ACK acknowledgement relationship
// over the campaign's TCP model and validates it on a held-out trace.
func tcpRegisterVerdict(res *lab.Result, seed int64) (bool, error) {
	setup := lab.NewTCP(seed)
	collect := func(word []string) (synth.Trace, error) {
		if err := setup.Reset(); err != nil {
			return nil, err
		}
		setup.Client.ClearTrace()
		for _, sym := range word {
			if _, err := setup.Client.Step(sym); err != nil {
				return nil, err
			}
		}
		return lab.TCPSynthTraces(setup.Client.Trace()), nil
	}
	var traces []synth.Trace
	for _, w := range [][]string{
		{"SYN(?,?,0)", "ACK(?,?,0)"},
		{"SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"},
		{"ACK(?,?,0)", "SYN(?,?,0)"},
	} {
		tr, err := collect(w)
		if err != nil {
			return false, err
		}
		traces = append(traces, tr)
	}
	p := &synth.Problem{
		Machine:        res.Machine,
		NumRegisters:   1,
		NumInputParams: 2,
		OutputParams:   map[string]int{"SYN+ACK(?,?,0)": 1},
		Consts:         []int64{0},
		Positive:       traces,
	}
	em, err := synth.Synthesize(p)
	if err != nil {
		return false, err
	}
	held, err := collect([]string{"SYN(?,?,0)"})
	if err != nil {
		return false, err
	}
	return synth.Verify(em, []synth.Trace{held}) == nil, nil
}
