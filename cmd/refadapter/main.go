// Command refadapter is the reference external adapter: it wraps the
// in-process Google QUIC simulator behind the symbol-over-stdio
// protocol of internal/adapter, so the engine can learn it as a
// closed-box subprocess (`prognosis learn -target adapter -adapter-cmd
// ./refadapter`). With the same seed, the model learned over the
// protocol is byte-identical to the in-process google target's — the
// adapter boundary adds no behaviour, which the adapter-smoke CI job
// asserts with cmp(1).
//
// Flags:
//
//	-seed N         simulator seed (default 13, matching the engine's
//	                default experiment seed)
//	-profile NAME   quicsim profile (google, google-fixed, quiche,
//	                mvfst, lossy-retransmit)
//	-crash-after N  exit(3) after N QUERYs — a deliberate crash knob
//	                for restart-and-replay tests (0 disables)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adapter"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/quicsim"
)

func main() {
	seed := flag.Int64("seed", 13, "simulator seed")
	profile := flag.String("profile", "google", "quicsim profile to wrap")
	crashAfter := flag.Int("crash-after", 0, "exit(3) after this many QUERYs (0 = never)")
	flag.Parse()

	p, err := lab.QUICProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sul core.SUL = lab.NewQUIC(p, lab.QUICOptions{Seed: *seed})
	if *crashAfter > 0 {
		sul = &crashingSUL{inner: sul, after: *crashAfter}
	}
	if err := adapter.Serve(os.Stdin, os.Stdout, quicsim.InputAlphabet(), sul); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// crashingSUL kills the process after a fixed number of steps,
// simulating an implementation that dies mid-learn.
type crashingSUL struct {
	inner core.SUL
	after int
	steps int
}

func (c *crashingSUL) Reset() error { return c.inner.Reset() }

func (c *crashingSUL) Step(in string) (string, error) {
	c.steps++
	if c.steps > c.after {
		fmt.Fprintf(os.Stderr, "refadapter: deliberate crash after %d queries\n", c.after)
		os.Exit(3)
	}
	return c.inner.Step(in)
}
