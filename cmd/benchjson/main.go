// Command benchjson converts `go test -bench` text output into the JSON
// the CI perf-trajectory artifact (BENCH_PR.json) wants: one entry per
// benchmark mapping its name to ns/op and every custom metric the
// benchmark reported (queries, votes, escalations, ...).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run '^$' . | benchjson [-o BENCH_PR.json]
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	results, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
