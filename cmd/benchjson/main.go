// Command benchjson converts `go test -bench` text output into the JSON
// the CI perf-trajectory artifact (BENCH_PR.json) wants — one entry per
// benchmark mapping its name to ns/op and every custom metric the
// benchmark reported (queries, votes, escalations, ...) — and compares
// two such JSON files so CI can gate on perf regressions against the
// previous run on main.
//
// Render (default):
//
//	go test -bench=. -benchtime=1x -run '^$' . | benchjson [-o BENCH_PR.json]
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
//
// Compare:
//
//	benchjson -compare BASELINE.json -in BENCH_PR.json \
//	    -match PooledLearning,LearnUnderLoss -metrics ns/op,queries \
//	    -max-increase 0.30
//
// exits 1 when any selected metric of any matched benchmark grew by more
// than -max-increase relative to the baseline. Benchmarks present on only
// one side are skipped (no baseline to regress against), so adding or
// renaming a benchmark never breaks the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	compare := flag.String("compare", "", "baseline JSON file: compare instead of rendering")
	in := flag.String("in", "", "current-run JSON file for -compare (default: parse bench text from stdin)")
	match := flag.String("match", "", "comma-separated benchmark-name prefixes to compare (default: all)")
	metrics := flag.String("metrics", "ns/op", "comma-separated metrics to compare")
	maxIncrease := flag.Float64("max-increase", 0.30, "largest tolerated relative growth per metric (0.30 = +30%)")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *in, *match, *metrics, *maxIncrease))
	}

	results, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// runCompare loads the baseline and current runs and reports regressions;
// its return value is the process exit code.
func runCompare(baselinePath, inPath, match, metrics string, maxIncrease float64) int {
	baseline, err := loadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	var current *benchparse.File
	if inPath != "" {
		if current, err = loadFile(inPath); err != nil {
			fatal(err)
		}
	} else if current, err = benchparse.Parse(os.Stdin); err != nil {
		fatal(err)
	}
	if len(baseline.Benchmarks) == 0 {
		// An empty or bootstrap baseline (e.g. the first run on a new cache
		// key) gates nothing; say so rather than silently passing.
		fmt.Println("benchjson: empty baseline, nothing to compare against")
		return 0
	}
	regs := benchparse.Compare(baseline, current, splitCSV(match), splitCSV(metrics), maxIncrease)
	if len(regs) == 0 {
		fmt.Printf("benchjson: no regression beyond +%.0f%% across %d baseline benchmarks\n",
			maxIncrease*100, len(baseline.Benchmarks))
		return 0
	}
	for _, r := range regs {
		fmt.Printf("benchjson: REGRESSION %s %s: %.6g -> %.6g (+%.1f%%, limit +%.0f%%)\n",
			r.Name, r.Metric, r.Old, r.New, r.Increase*100, maxIncrease*100)
	}
	return 1
}

func loadFile(path string) (*benchparse.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchparse.File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
