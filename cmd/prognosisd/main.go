// Command prognosisd is the learning-as-a-service daemon: the prognosis
// subcommands (learn, diff, check, regress, monitor) exposed as async
// jobs over an HTTP/JSON API, with a persistent on-disk queue, SSE
// progress streams, artifact downloads, and a Prometheus /metrics
// endpoint. See docs/SERVICE.md for the API and docs/MONITORING.md for
// the metrics plane and drift monitor.
//
// Usage:
//
//	prognosisd -addr :8047 -data /var/lib/prognosisd -parallel 2
//	           [-monitor 10m] [-monitor-manifest F] [-monitor-targets a,b]
//
// With -monitor set, the daemon runs in scheduled monitor mode: it
// submits a monitor job at that interval, warm-relearning every manifest
// cell, appending model snapshots with query-log lineage, and raising
// live-confirmed drift alarms as SSE "drift_alarm" events and
// prognosisd_monitor_* metrics.
//
// On SIGTERM/SIGINT the daemon drains: new submissions are refused,
// running jobs get the drain timeout to finish, and whatever is still
// running is journaled back to pending — the next start resumes it from
// the persistent query store.
//
// Fleet mode (docs/FLEET.md): with -coordinator the daemon additionally
// runs the fleet coordinator — workers register via POST /v1/fleet/join,
// sharded campaigns scatter over the consistent-hash ring, and results
// merge back into one store and checkpoint. With -join URL the daemon
// registers itself as a worker of that coordinator and keeps its lease
// fresh with heartbeats:
//
//	prognosisd -addr :8150 -coordinator -lease 10s
//	prognosisd -addr :8151 -join http://127.0.0.1:8150 -advertise http://127.0.0.1:8151
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/pkg/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "prognosisd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8047", "listen address")
	data := flag.String("data", "prognosisd-data", "data directory: job queue journal, query store, artifacts, monitor lineage")
	parallel := flag.Int("parallel", 1, "jobs run concurrently")
	drain := flag.Duration("drain", 30*time.Second, "how long running jobs get to finish on shutdown before being re-queued")
	monitorEvery := flag.Duration("monitor", 0, "scheduled monitor mode: submit a monitor cycle at this interval (0 = off)")
	monitorManifest := flag.String("monitor-manifest", "", "manifest the scheduled monitor cycles over (default: the regress manifest)")
	monitorTargets := flag.String("monitor-targets", "", "comma-separated subset of manifest cells to monitor (default: all)")
	coordinator := flag.Bool("coordinator", false, "run the fleet coordinator: accept worker registrations and sharded campaigns")
	lease := flag.Duration("lease", 10*time.Second, "coordinator mode: how long a worker stays live without a heartbeat")
	joinURL := flag.String("join", "", "worker mode: register with the fleet coordinator at this URL and heartbeat")
	workerName := flag.String("worker-name", "", "worker mode: stable fleet name (default: the hostname plus listen address)")
	advertise := flag.String("advertise", "", "worker mode: base URL the coordinator reaches this daemon on (default http://<addr>)")
	weight := flag.Int("weight", 1, "worker mode: ring placement weight (share of cells, relative to other workers)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker mode: heartbeat interval (keep well under the coordinator's -lease)")
	flag.Parse()
	logger := log.New(os.Stderr, "prognosisd: ", log.LstdFlags)

	mgr, err := server.NewManager(server.ManagerConfig{
		Dir:          *data,
		Parallel:     *parallel,
		DrainTimeout: *drain,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}

	var srvOpts []server.ServerOption
	var co *fleet.Coordinator
	if *coordinator {
		co, err = fleet.NewCoordinator(fleet.Config{
			Dir:   filepath.Join(*data, "fleet"),
			Lease: *lease,
			Logf:  logger.Printf,
		})
		if err != nil {
			return err
		}
		srvOpts = append(srvOpts, server.WithCoordinator(co))
		logger.Printf("fleet: coordinator mode (lease %v)", *lease)
	}

	// Worker mode: join the coordinator and keep the lease fresh until
	// shutdown. The join loop retries, so worker/coordinator start order
	// does not matter.
	joinCtx, stopJoin := context.WithCancel(context.Background())
	defer stopJoin()
	if *joinURL != "" {
		name := *workerName
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s-%s", host, *addr)
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		info := client.WorkerInfo{Name: name, URL: adv, Weight: *weight}
		go fleet.JoinLoop(joinCtx, *joinURL, info, *heartbeat, logger.Printf)
	}

	// Scheduled monitor mode: one cycle now, then one per tick. Cycles
	// ride the ordinary job queue, so they serialize with submitted work,
	// journal like any job, and stream their events (including
	// drift_alarm) over SSE.
	stopMonitor := make(chan struct{})
	if *monitorEvery > 0 {
		submit := func() {
			spec := client.NewMonitorSpec(*monitorManifest)
			spec.Targets = *monitorTargets
			job, err := mgr.Submit(spec)
			if err != nil {
				logger.Printf("monitor: submit: %v", err)
				return
			}
			logger.Printf("monitor: submitted cycle %s", job.ID)
		}
		go func() {
			t := time.NewTicker(*monitorEvery)
			defer t.Stop()
			submit()
			for {
				select {
				case <-stopMonitor:
					return
				case <-t.C:
					submit()
				}
			}
		}()
		logger.Printf("monitor: scheduled every %v", *monitorEvery)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: server.NewServer(mgr, srvOpts...)}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (data %s, parallel %d)", *addr, *data, *parallel)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		close(stopMonitor)
		if co != nil {
			co.Close()
		}
		mgr.Shutdown(context.Background())
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining (timeout %v)", sig, *drain)
	}
	close(stopMonitor)
	stopJoin()
	if co != nil {
		co.Close()
	}

	// Drain the manager first — while it runs, /v1/healthz reports 503 and
	// Submit refuses — then stop the HTTP listener so in-flight status and
	// SSE requests finish cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	logger.Printf("clean exit")
	return nil
}
