// Command synthesize runs the §4.3 pipeline: learn a model, collect
// concrete traces into the Oracle Table, and synthesize an extended Mealy
// machine with registers explaining a chosen numeric field.
//
// Two experiments are built in:
//
//	-experiment sdb  (default) — the Maximum Stream Data field of
//	  STREAM_DATA_BLOCKED frames (Issue 4 / Appendix B.1). Against the
//	  google target the field synthesizes to the constant 0, exposing the
//	  forgotten placeholder; against google-fixed it tracks the granted
//	  limit through a register.
//	-experiment tcp — the SYN-ACK acknowledgement number of the TCP stack
//	  (Fig. 3(c)): ack = client sequence number + 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/automata"
	"repro/internal/lab"
	"repro/internal/quicsim"
	"repro/internal/synth"
)

func main() {
	experiment := flag.String("experiment", "sdb", "experiment: sdb or tcp")
	target := flag.String("target", "google", "QUIC target for -experiment sdb: google or google-fixed")
	seed := flag.Int64("seed", 29, "seed for all pseudo-randomness")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch *experiment {
	case "sdb":
		err = runSDB(ctx, *target, *seed)
	case "tcp":
		err = runTCP(ctx, *seed)
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthesize:", err)
		os.Exit(1)
	}
}

func runSDB(ctx context.Context, target string, seed int64) error {
	res, err := learnOne(ctx, target, lab.WithSeed(seed), lab.WithPerfectEquivalence())
	if err != nil {
		return err
	}
	profile, err := lab.QUICProfile(target)
	if err != nil {
		return err
	}
	setup := lab.NewQUIC(profile, lab.QUICOptions{Seed: seed})
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortFC,
			quicsim.SymShortStream, quicsim.SymShortStream, quicsim.SymShortStream},
	}
	var traces []synth.Trace
	for _, w := range words {
		tr, err := lab.CollectSDBTrace(setup, w, lab.BlockedOutputLabel)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	em, err := synth.Synthesize(lab.SDBProblem(res.Machine, traces))
	if err != nil {
		return err
	}
	fmt.Printf("synthesized extended machine for %s over the Maximum Stream Data field:\n\n", target)
	printBlockedTerms(em, res.Machine.NumStates())
	fmt.Println()
	fmt.Print(em)
	return nil
}

// printBlockedTerms summarizes the output terms on blocked transitions —
// the one-line verdict the Issue 4 analysis produces.
func printBlockedTerms(em *synth.ExtendedMealy, states int) {
	constantZero := true
	for s := 0; s < states; s++ {
		outs := em.OutputsFor(automata.State(s), quicsim.SymShortStream)
		for _, o := range outs {
			fmt.Printf("  state s%d: Maximum Stream Data = %s\n", s, o)
			if o.String() != "0" {
				constantZero = false
			}
		}
	}
	if constantZero {
		fmt.Println("  VERDICT: the field is the constant 0 — never updated (Issue 4, confirmed by Google developers)")
	} else {
		fmt.Println("  VERDICT: the field tracks connection state (correct behaviour)")
	}
}

func runTCP(ctx context.Context, seed int64) error {
	res, err := learnOne(ctx, lab.TargetTCP, lab.WithSeed(seed))
	if err != nil {
		return err
	}
	setup := lab.NewTCP(seed)
	collect := func(word []string) (synth.Trace, error) {
		if err := setup.Reset(); err != nil {
			return nil, err
		}
		setup.Client.ClearTrace()
		for _, sym := range word {
			if _, err := setup.Client.Step(sym); err != nil {
				return nil, err
			}
		}
		return lab.TCPSynthTraces(setup.Client.Trace()), nil
	}
	var traces []synth.Trace
	for _, w := range [][]string{
		{"SYN(?,?,0)", "ACK(?,?,0)"},
		{"SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"},
		{"ACK(?,?,0)", "SYN(?,?,0)"},
	} {
		tr, err := collect(w)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	p := &synth.Problem{
		Machine:        res.Machine,
		NumRegisters:   1,
		NumInputParams: 2, // (seq, ack)
		OutputParams:   map[string]int{"SYN+ACK(?,?,0)": 1},
		Consts:         []int64{0},
		Positive:       traces,
	}
	em, err := synth.Synthesize(p)
	if err != nil {
		return err
	}
	fmt.Println("synthesized extended machine for the TCP SYN-ACK acknowledgement number:")
	fmt.Println("(expected relationship: ack = client seq + 1, cf. Fig. 3(c))")
	fmt.Println()
	fmt.Print(em)
	return nil
}

// learnOne runs one experiment, treating nondeterminism as fatal (the
// synthesis pipeline needs a learned model).
func learnOne(ctx context.Context, target string, opts ...lab.Option) (*lab.Result, error) {
	res, err := lab.Run(ctx, target, opts...)
	if err != nil {
		return nil, err
	}
	if res.Nondet != nil {
		return nil, fmt.Errorf("target %s is nondeterministic: %v", target, res.Nondet)
	}
	return res, nil
}
