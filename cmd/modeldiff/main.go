// Command modeldiff learns models of two protocol implementations and
// reports whether they are behaviourally equivalent, printing witness
// traces when they are not — the analysis behind the paper's Issue 1
// (§6.2.3), where the model-size gap between Google QUIC and Quiche led to
// an RFC clarification.
//
// Usage:
//
//	modeldiff -a google -b quiche [-witnesses 5] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/lab"
)

func main() {
	a := flag.String("a", "google", "first target")
	b := flag.String("b", "quiche", "second target")
	witnesses := flag.Int("witnesses", 5, "maximum distinguishing traces to print")
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *a, *b, *witnesses, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "modeldiff:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, a, b string, witnesses int, seed int64) error {
	// Both learns are independent: run them as a two-run campaign so the
	// slower target does not serialise behind the faster one.
	camp := &lab.Campaign{Runs: []lab.RunSpec{
		{Name: "a", Target: a, Options: learnOptions(a, seed)},
		{Name: "b", Target: b, Options: learnOptions(b, seed)},
	}}
	results, err := camp.Run(ctx)
	if err != nil {
		return err
	}
	models := make(map[string]*automata.Mealy, 2)
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("target %s: %w", r.Target, r.Err)
		}
		if r.Result.Nondet != nil {
			return fmt.Errorf("target %s is nondeterministic: %v", r.Target, r.Result.Nondet)
		}
		models[r.Name] = r.Result.Model
	}
	report := analysis.Diff(a, models["a"], b, models["b"], witnesses)
	fmt.Print(report.String())
	if !report.Equivalent {
		fmt.Println("\nnote: a difference is not necessarily a bug — QUIC's specification")
		fmt.Println("permits divergent design choices; inspect the witnesses (cf. §6.2.3).")
	}
	return nil
}

// learnOptions mirrors the original tool's behaviour: ground-truth
// equivalence for the targets that have one, the heuristic random-words
// search for the rest.
func learnOptions(target string, seed int64) []lab.Option {
	opts := []lab.Option{lab.WithSeed(seed)}
	if target != lab.TargetTCP && target != lab.TargetMvfst {
		opts = append(opts, lab.WithPerfectEquivalence())
	}
	return opts
}
