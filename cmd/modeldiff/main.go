// Command modeldiff learns models of two protocol implementations and
// reports whether they are behaviourally equivalent, printing witness
// traces when they are not — the analysis behind the paper's Issue 1
// (§6.2.3), where the model-size gap between Google QUIC and Quiche led to
// an RFC clarification.
//
// Usage:
//
//	modeldiff -a google -b quiche [-witnesses 5] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/lab"
)

func main() {
	a := flag.String("a", "google", "first target")
	b := flag.String("b", "quiche", "second target")
	witnesses := flag.Int("witnesses", 5, "maximum distinguishing traces to print")
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	flag.Parse()

	if err := run(*a, *b, *witnesses, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "modeldiff:", err)
		os.Exit(1)
	}
}

func run(a, b string, witnesses int, seed int64) error {
	ra, err := learn(a, seed)
	if err != nil {
		return err
	}
	rb, err := learn(b, seed)
	if err != nil {
		return err
	}
	report := analysis.Diff(a, ra, b, rb, witnesses)
	fmt.Print(report.String())
	if !report.Equivalent {
		fmt.Println("\nnote: a difference is not necessarily a bug — QUIC's specification")
		fmt.Println("permits divergent design choices; inspect the witnesses (cf. §6.2.3).")
	}
	return nil
}

func learn(target string, seed int64) (*automata.Mealy, error) {
	res, err := lab.Learn(target, lab.Options{Seed: seed, Perfect: target != lab.TargetTCP && target != lab.TargetMvfst})
	if err != nil {
		return nil, err
	}
	if res.Nondet != nil {
		return nil, fmt.Errorf("target %s is nondeterministic: %v", target, res.Nondet)
	}
	return res.Model, nil
}
