// Command modeldiff is a thin alias for `prognosis diff` — the analysis
// behind the paper's Issue 1 (§6.2.3), where the model-size gap between
// Google QUIC and Quiche led to an RFC clarification. It learns models of
// two protocol implementations, reports whether they are behaviourally
// equivalent with witness traces and per-state divergence summaries, and
// replays the first witness against both live targets.
//
// Usage:
//
//	modeldiff -a google -b quiche [-witnesses 5] [-seed N]
//
// Further `prognosis diff` flags (see `prognosis diff -h`) pass through
// after a `--` terminator, e.g. `modeldiff -a google -b quiche -- -loss 0`.
// The default 2% learning-link loss that surfaces loss-recovery
// divergences such as lossy-retransmit's applies here too.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cli"
)

func main() {
	a := flag.String("a", "google", "first target")
	b := flag.String("b", "quiche", "second target")
	witnesses := flag.Int("witnesses", 5, "maximum distinguishing traces to print")
	seed := flag.Int64("seed", 13, "seed for all pseudo-randomness")
	flag.Parse()
	args := []string{
		"-witnesses", strconv.Itoa(*witnesses),
		"-seed", strconv.FormatInt(*seed, 10),
	}
	args = append(args, flag.Args()...) // flags after `--` pass through to prognosis diff
	args = append(args, *a, *b)
	if err := cli.Diff(args); err != nil {
		fmt.Fprintln(os.Stderr, "modeldiff:", err)
		os.Exit(1)
	}
}
