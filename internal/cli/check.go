package cli

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lab"
	"repro/internal/learncfg"
)

// Check implements `prognosis check`: run the builtin model-level property
// set (plus an optional LTLf formula) against a model — learned live from
// a registry target, or loaded from a saved DOT/JSON file. It returns an
// error (exit code 1) when any property is violated, so CI can gate on it.
func Check(args []string) error {
	fs := flag.NewFlagSet("prognosis check", flag.ContinueOnError)
	target := fs.String("target", "", "learn this registry target and check the learned model: "+strings.Join(lab.Targets(), ", "))
	modelFile := fs.String("model", "", "check a model loaded from this DOT or JSON file instead of learning")
	property := fs.String("property", "", "additional LTLf property to check (see `prognosis learn -h`)")
	depth := fs.Int("depth", 4, "exploration depth for -property")
	var lf learnFlags
	lf.register(fs, learncfg.Defaults{Conformance: 2})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("check takes no positional arguments (got %v)", fs.Args())
	}

	model, err := resolveModel(*target, *modelFile, &lf)
	if err != nil {
		return err
	}
	fmt.Printf("checking %s (%d states, %d transitions) against %d builtin properties\n",
		model.Name, model.States(), model.Transitions(), len(analysis.Builtins()))
	results := analysis.CheckAll(model)
	violations := 0
	for _, r := range results {
		if r.OK() {
			fmt.Printf("  PASS %s — %s\n", r.Property.Name(), r.Property.Describe())
			continue
		}
		violations++
		fmt.Printf("  FAIL %s — %s\n", r.Property.Name(), r.Violation.Detail)
		fmt.Print(indent(r.Violation.Witness.String()))
	}
	if *property != "" {
		f, err := analysis.ParseFormula(*property)
		if err != nil {
			return err
		}
		if bad := analysis.CheckLTL(model.Mealy(), f, *depth); bad != nil {
			violations++
			fmt.Printf("  FAIL %s\n", *property)
			w := analysis.Witness{Word: bad.Inputs, Outputs: bad.Outputs}
			fmt.Print(indent(w.String()))
		} else {
			fmt.Printf("  PASS %s (all traces of length %d)\n", *property, *depth)
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d propert%s violated", violations, pluralY(violations))
	}
	fmt.Println("all properties hold")
	return nil
}

// resolveModel produces the model a subcommand analyses: loaded from a
// file, or learned live from a registry target.
func resolveModel(target, modelFile string, lf *learnFlags) (*analysis.Model, error) {
	switch {
	case target != "" && modelFile != "":
		return nil, fmt.Errorf("pass -target or -model, not both")
	case modelFile != "":
		return analysis.LoadModel(modelFile)
	case target != "":
		ctx, stop := signalContext()
		defer stop()
		exp, res, err := learnModel(ctx, target, lf)
		if err != nil {
			return nil, err
		}
		defer exp.Close()
		return res.Model(), nil
	default:
		return nil, fmt.Errorf("need -target <name> or -model <file>")
	}
}

func indent(s string) string {
	return "  " + strings.TrimSuffix(strings.ReplaceAll(s, "\n", "\n  "), "  ")
}

func pluralY(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
