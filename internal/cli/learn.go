package cli

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/lab"
	"repro/internal/learncfg"
	"repro/internal/metrics"
)

// Learn implements `prognosis learn`: learn one target's model and report
// statistics, optionally exporting the model and checking an LTLf
// property. A nondeterminism halt is a reported outcome here, not an
// error — detecting it is the §5 analysis.
func Learn(args []string) error {
	fs := flag.NewFlagSet("prognosis learn", flag.ContinueOnError)
	target := fs.String("target", "tcp", "target implementation: "+strings.Join(lab.Targets(), ", "))
	dotFile := fs.String("dot", "", "write the learned model as Graphviz dot to this file")
	saveFile := fs.String("save", "", "write the learned model as JSON to this file")
	property := fs.String("property", "", `LTLf property to check on the learned model, e.g. 'G(outHas("CONNECTION_CLOSE") -> G(!outHas("HANDSHAKE_DONE]")))'`)
	depth := fs.Int("depth", 4, "exploration depth for -property")
	metricsFile := fs.String("metrics", "",
		"write the process metrics registry (Prometheus text format) to this file after the run")
	var lf learnFlags
	lf.register(fs, learncfg.Defaults{})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("learn takes no positional arguments (got %v)", fs.Args())
	}

	opts, cleanup, err := lf.options()
	if err != nil {
		return err
	}
	defer cleanup()
	exp, err := lab.NewExperiment(*target, opts...)
	if err != nil {
		return err
	}
	defer exp.Close()

	ctx, stop := signalContext()
	defer stop()
	res, err := exp.Learn(ctx)
	if err != nil {
		return err
	}
	if *metricsFile != "" {
		var buf bytes.Buffer
		if err := metrics.Default().WriteText(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(*metricsFile, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if res.Nondet != nil {
		fmt.Printf("target %s: learning paused — nondeterminism detected (§5 analysis)\n", *target)
		fmt.Printf("  witness query: %v\n", res.Nondet.Word)
		fmt.Printf("  %d distinct responses over %d repetitions:\n", len(res.Nondet.Observed), res.Nondet.Votes)
		for out, n := range res.Nondet.Observed {
			fmt.Printf("    x%-3d %s\n", n, out)
		}
		return nil
	}
	m := res.Machine
	fmt.Printf("target %s: learned model with %d states, %d transitions\n",
		*target, m.NumStates(), m.NumTransitions())
	rm := res.Metrics()
	fmt.Printf("  live membership queries: %d (%d input symbols, %d cache hits)\n",
		rm.Learner.Queries, rm.Learner.Symbols, rm.Learner.Hits)
	fmt.Printf("  wall time: %v\n", rm.Duration)
	if w := rm.Window; w != nil {
		fmt.Printf("  window: %d in flight at finish (bounds %d..%d), %d acquisitions, %d cuts over %d losses, srtt %v\n",
			w.Size, w.Min, w.Max, w.Acquired, w.Decreases, w.Losses, w.SRTT)
	}
	if impair := lf.impairment(); impair.Enabled() {
		fmt.Printf("  impaired link (%s): dropped %d->/%d<- datagrams, %d duplicated, %d reordered\n",
			impair.Label(), rm.Faults.DroppedClient, rm.Faults.DroppedServer,
			rm.Faults.Duplicated, rm.Faults.Reordered)
		fmt.Printf("  guard: %d flaky queries, %d escalations, %d votes beyond the floor\n",
			rm.Guard.RetriedQueries, rm.Guard.Escalations, rm.Guard.WastedVotes)
	}
	fmt.Printf("  traces of length <=10 in model: %d (of %d possible over the alphabet)\n",
		m.CountTraces(10), automata.TotalWords(len(m.Inputs()), 10))
	model := res.Model()
	if *saveFile != "" {
		if err := model.Save(*saveFile); err != nil {
			return err
		}
		fmt.Printf("  model saved to %s\n", *saveFile)
	}
	if *property != "" {
		f, err := analysis.ParseFormula(*property)
		if err != nil {
			return err
		}
		if bad := analysis.CheckLTL(m, f, *depth); bad != nil {
			fmt.Printf("  property VIOLATED; witness trace:\n")
			for i := range bad.Inputs {
				fmt.Printf("    %s / %s\n", bad.Inputs[i], bad.Outputs[i])
			}
		} else {
			fmt.Printf("  property holds on all traces of length %d\n", *depth)
		}
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(model.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  model written to %s\n", *dotFile)
	} else {
		fmt.Println()
		fmt.Print(m.String())
	}
	return nil
}
