package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/learncfg"
)

// Regress implements `prognosis regress`: relearn a manifest of targets —
// warm-started from a persistent query store when -store is given — and
// gate each against its checked-in golden model. Any behavioural drift
// fails the gate (exit code 1) with the shortest distinguishing witness,
// which is also written (alongside the freshly learned model) under
// -witness-dir for CI to upload. A target whose golden outcome is the §5
// nondeterminism halt (expect "nondet") drifts by *learning a model*
// instead.
func Regress(args []string) error {
	fs := flag.NewFlagSet("prognosis regress", flag.ContinueOnError)
	manifest := fs.String("manifest", "internal/analysis/testdata/regress.json",
		"regression manifest: targets, goldens, and per-target learning configuration")
	storeDir := fs.String("store", "",
		"persistent query-store directory: warm-start every relearn from it and keep it fresh (empty = cold)")
	targetsCSV := fs.String("targets", "", "comma-separated subset of manifest targets to check (default: all)")
	witnessDir := fs.String("witness-dir", "", "write per-target drift witnesses and learned models here")
	workers := fs.Int("workers", 1, "membership-query concurrency per relearn")
	witnesses := fs.Int("witnesses", 3, "distinguishing traces to collect per drifted target")
	verbose := fs.Bool("v", false, "stream live learning progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("regress takes no positional arguments (got %v)", fs.Args())
	}

	m, err := LoadRegressManifest(*manifest)
	if err != nil {
		return err
	}
	if missing, unknown := m.CoverageGap(); len(missing) > 0 || len(unknown) > 0 {
		// The gate still runs — a partial manifest is useful locally — but
		// the drift from the registry is spelled out, not just counted.
		if len(missing) > 0 {
			fmt.Printf("regress: manifest missing registry target(s): %s\n", strings.Join(missing, ", "))
		}
		if len(unknown) > 0 {
			fmt.Printf("regress: manifest entries naming no registry target: %s\n", strings.Join(unknown, ", "))
		}
	}
	selected, err := m.Filter(*targetsCSV)
	if err != nil {
		return err
	}
	if *witnessDir != "" {
		if err := os.MkdirAll(*witnessDir, 0o755); err != nil {
			return err
		}
	}
	var obs learn.Observer
	if *verbose {
		obs = progressObserver{}
	}

	ctx, stop := signalContext()
	defer stop()
	var drifted []string
	var totalLive int64
	for _, rt := range selected {
		out, err := RegressOne(ctx, rt, m.Dir, *storeDir, *workers, *witnesses, obs)
		totalLive += out.LiveQueries
		if err != nil {
			return fmt.Errorf("target %s: %w", rt.Name, err)
		}
		if out.Drift == "" {
			fmt.Printf("regress %s: OK — %d live queries\n", rt.Name, out.LiveQueries)
			continue
		}
		drifted = append(drifted, rt.Name)
		fmt.Printf("regress %s: DRIFT — %d live queries\n%s", rt.Name, out.LiveQueries, indent(out.Drift))
		if *witnessDir != "" {
			path := filepath.Join(*witnessDir, rt.Name+".witness.txt")
			if err := os.WriteFile(path, []byte(out.Drift), 0o644); err != nil {
				return err
			}
			fmt.Printf("  witness written to %s\n", path)
			if out.Learned != nil {
				// The drifted model itself, for offline diffing against the
				// golden without relearning.
				if err := out.Learned.Save(filepath.Join(*witnessDir, rt.Name+".learned.json")); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("regress total: %d live queries across %d targets, %d drifted\n",
		totalLive, len(selected), len(drifted))
	if len(drifted) > 0 {
		return fmt.Errorf("%d target(s) drifted from golden: %s", len(drifted), strings.Join(drifted, ", "))
	}
	return nil
}

// RegressOutcome is the structured result of one manifest-target
// regression: how much live traffic the relearn cost, a non-empty drift
// rendering when the gate must fail, and the freshly learned model (nil
// when the run halted on nondeterminism). The prognosisd regress jobs
// consume it directly; the CLI renders it.
type RegressOutcome struct {
	LiveQueries int64
	Drift       string
	Learned     *analysis.Model
}

// RegressOne relearns one manifest target — through the shared learncfg
// option path, warm-started from storeDir when non-empty — and compares
// the outcome to its golden. obs, when non-nil, receives the relearn's
// typed event stream.
func RegressOne(ctx context.Context, rt RegressTarget, manifestDir, storeDir string,
	workers, witnesses int, obs learn.Observer) (RegressOutcome, error) {
	cfg := learncfg.Config{
		Learner: "ttt", Seed: rt.Seed, Conformance: rt.Conformance,
		Loss: rt.Loss, Duplicate: rt.Duplicate, Reorder: rt.Reorder,
		Warmup: rt.Warmup, Workers: workers, Store: storeDir,
	}
	opts, err := cfg.Options()
	if err != nil {
		return RegressOutcome{}, err
	}
	if obs != nil {
		opts = append(opts, lab.WithObserver(obs))
	}
	exp, err := lab.NewExperiment(rt.Name, opts...)
	if err != nil {
		return RegressOutcome{}, err
	}
	defer exp.Close()
	res, err := exp.Learn(ctx)
	if err != nil {
		return RegressOutcome{}, err
	}
	out := RegressOutcome{LiveQueries: res.Stats.Queries}

	if rt.Expect == expectNondet {
		if res.Nondet != nil {
			return out, nil // the golden outcome: §5 still detects it
		}
		out.Drift = fmt.Sprintf(
			"expected the §5 nondeterminism halt, but a deterministic %d-state model was learned\n",
			res.Machine.NumStates())
		out.Learned = res.Model()
		return out, nil
	}
	if res.Nondet != nil {
		out.Drift = fmt.Sprintf("target became nondeterministic: %v\n", res.Nondet)
		return out, nil
	}
	golden, err := analysis.LoadModel(filepath.Join(manifestDir, rt.Golden))
	if err != nil {
		return out, err
	}
	out.Learned = res.Model()
	drift, err := analysis.CompareGolden(out.Learned, golden, witnesses)
	if err != nil {
		return out, err
	}
	if drift != nil {
		out.Drift = drift.String()
	}
	return out, nil
}

// expectNondet is the manifest outcome for targets whose golden behaviour
// is the §5 nondeterminism halt rather than a model.
const expectNondet = "nondet"

// RegressTarget is one manifest entry: the registry target, its golden
// (path relative to the manifest; empty when Expect is "nondet"), and the
// learning configuration that reproduces the golden.
type RegressTarget struct {
	Name        string  `json:"name"`
	Golden      string  `json:"golden,omitempty"`
	Expect      string  `json:"expect,omitempty"` // "" (model) or "nondet"
	Seed        int64   `json:"seed,omitempty"`
	Conformance int     `json:"conformance,omitempty"`
	Loss        float64 `json:"loss,omitempty"`
	Duplicate   float64 `json:"dup,omitempty"`
	Reorder     float64 `json:"reorder,omitempty"`
	Warmup      int     `json:"warmup,omitempty"`
}

// RegressManifest is a loaded regression manifest. Dir is the directory
// the manifest was read from; golden paths resolve relative to it.
type RegressManifest struct {
	Version int             `json:"version"`
	Targets []RegressTarget `json:"targets"`
	Dir     string          `json:"-"`
}

// LoadRegressManifest reads and validates a regression manifest.
func LoadRegressManifest(path string) (*RegressManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m RegressManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported manifest version %d", path, m.Version)
	}
	if len(m.Targets) == 0 {
		return nil, fmt.Errorf("%s: manifest names no targets", path)
	}
	for _, rt := range m.Targets {
		switch {
		case rt.Name == "":
			return nil, fmt.Errorf("%s: manifest entry without a target name", path)
		case rt.Expect == expectNondet && rt.Golden != "":
			return nil, fmt.Errorf("%s: %s expects nondeterminism and names a golden", path, rt.Name)
		case rt.Expect != expectNondet && rt.Expect != "":
			return nil, fmt.Errorf("%s: %s has unknown expectation %q", path, rt.Name, rt.Expect)
		case rt.Expect == "" && rt.Golden == "":
			return nil, fmt.Errorf("%s: %s names no golden model", path, rt.Name)
		}
	}
	m.Dir = filepath.Dir(path)
	return &m, nil
}

// Filter restricts the manifest to the requested comma-separated targets
// (all of them for an empty filter).
func (m *RegressManifest) Filter(csv string) ([]RegressTarget, error) {
	if csv == "" {
		return m.Targets, nil
	}
	byName := make(map[string]RegressTarget, len(m.Targets))
	for _, rt := range m.Targets {
		byName[rt.Name] = rt
	}
	var out []RegressTarget
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		rt, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("target %q not in manifest (have: %s)", name, m.names())
		}
		out = append(out, rt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-targets selected nothing")
	}
	return out, nil
}

// CoverageGap compares the manifest against the lab target registry and
// returns the in-process registry targets the manifest misses plus the
// manifest entries naming no registry target. External targets (such as
// "adapter") are exempt from coverage: their behaviour is whatever command
// they wrap, so no fixed golden can stand for them.
func (m *RegressManifest) CoverageGap() (missing, unknown []string) {
	inManifest := make(map[string]bool, len(m.Targets))
	known := map[string]bool{}
	for _, t := range lab.Targets() {
		if !lab.External(t) {
			known[t] = true
		}
	}
	for _, rt := range m.Targets {
		inManifest[rt.Name] = true
		if !known[rt.Name] {
			unknown = append(unknown, rt.Name)
		}
	}
	for _, t := range lab.Targets() {
		if known[t] && !inManifest[t] {
			missing = append(missing, t)
		}
	}
	return missing, unknown
}

func (m *RegressManifest) names() string {
	names := make([]string, len(m.Targets))
	for i, rt := range m.Targets {
		names[i] = rt.Name
	}
	return strings.Join(names, ", ")
}
