package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

const (
	goldenGoogle = "../analysis/testdata/google.json"
	goldenLossy  = "../analysis/testdata/lossy-retransmit.json"
)

func TestCheckCleanModelFile(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenGoogle})
	})
	if err != nil {
		t.Fatalf("clean google flagged: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all properties hold") || strings.Contains(out, "FAIL") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCheckFlagsLossyModelFile(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenLossy})
	})
	if err == nil {
		t.Fatalf("violations not reported as an error:\n%s", out)
	}
	if !strings.Contains(err.Error(), "2 properties violated") {
		t.Fatalf("err = %v", err)
	}
	for _, want := range []string{"FAIL close-is-terminal", "PASS", "CONNECTION_CLOSE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckExtraLTLProperty(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenGoogle,
			"-property", `G(!outHas("CONNECTION_CLOSE"))`, "-depth", "3"})
	})
	if err == nil || !strings.Contains(out, "FAIL G(") {
		t.Fatalf("false LTL property not flagged (err=%v):\n%s", err, out)
	}
}

func TestCheckArgumentValidation(t *testing.T) {
	if _, err := capture(t, func() error { return Check(nil) }); err == nil {
		t.Fatal("missing -target/-model accepted")
	}
	if _, err := capture(t, func() error {
		return Check([]string{"-target", "google", "-model", goldenGoogle})
	}); err == nil {
		t.Fatal("both -target and -model accepted")
	}
}

func TestExportMinimizedFromModelFile(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "m.dot")
	jsonPath := filepath.Join(dir, "m.json")
	out, err := capture(t, func() error {
		return Export([]string{"-model", goldenGoogle, "-min", "-dot", dot, "-json", jsonPath})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	orig, err := analysis.LoadModel(goldenGoogle)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{dot, jsonPath} {
		m, err := analysis.LoadModel(path)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := m.Equivalent(orig); !eq {
			t.Fatalf("%s: exported model diverged on %v", path, ce)
		}
	}
}

func TestExportDOTToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return Export([]string{"-model", goldenLossy})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "digraph") {
		t.Fatalf("stdout export is not dot:\n%.80s", out)
	}
}

// TestDiffEndToEnd is the acceptance workflow: `prognosis diff google
// lossy-retransmit` learns both targets through the default lossy link,
// emits a witness word, and replays it against both live targets,
// reproducing the divergent outputs on the wire. (-conformance 0 keeps the
// test fast; the divergence — doubled flights — shows on every state.)
func TestDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return Diff([]string{"-conformance", "0", "-witnesses", "2", "-seed", "13",
			"-export", dir, "google", "lossy-retransmit"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"NOT equivalent",
		"witness 1",
		"replaying witness",
		"CONFIRMED: live outputs diverge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, file := range []string{"google.json", "google.dot", "lossy-retransmit.json", "lossy-retransmit.dot"} {
		if _, err := analysis.LoadModel(filepath.Join(dir, file)); err != nil {
			t.Fatalf("export %s: %v", file, err)
		}
	}
}

func TestDiffNeedsTwoTargets(t *testing.T) {
	if _, err := capture(t, func() error { return Diff([]string{"google"}) }); err == nil {
		t.Fatal("one target accepted")
	}
}

func TestMainDispatch(t *testing.T) {
	var errBuf bytes.Buffer
	if code := Main([]string{"bogus-subcommand"}, &errBuf); code != 2 {
		t.Fatalf("unknown subcommand exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown subcommand") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
	errBuf.Reset()
	if code := Main([]string{"help"}, &errBuf); code != 0 {
		t.Fatalf("help exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "prognosis learn") {
		t.Fatalf("usage missing subcommands: %s", errBuf.String())
	}
	if code := Main(nil, &errBuf); code != 2 {
		t.Fatal("empty invocation must fail with usage")
	}
}
