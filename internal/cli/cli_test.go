package cli

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

const (
	goldenGoogle = "../analysis/testdata/google.json"
	goldenLossy  = "../analysis/testdata/lossy-retransmit.json"
)

func TestCheckCleanModelFile(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenGoogle})
	})
	if err != nil {
		t.Fatalf("clean google flagged: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all properties hold") || strings.Contains(out, "FAIL") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCheckFlagsLossyModelFile(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenLossy})
	})
	if err == nil {
		t.Fatalf("violations not reported as an error:\n%s", out)
	}
	if !strings.Contains(err.Error(), "2 properties violated") {
		t.Fatalf("err = %v", err)
	}
	for _, want := range []string{"FAIL close-is-terminal", "PASS", "CONNECTION_CLOSE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckExtraLTLProperty(t *testing.T) {
	out, err := capture(t, func() error {
		return Check([]string{"-model", goldenGoogle,
			"-property", `G(!outHas("CONNECTION_CLOSE"))`, "-depth", "3"})
	})
	if err == nil || !strings.Contains(out, "FAIL G(") {
		t.Fatalf("false LTL property not flagged (err=%v):\n%s", err, out)
	}
}

func TestCheckArgumentValidation(t *testing.T) {
	if _, err := capture(t, func() error { return Check(nil) }); err == nil {
		t.Fatal("missing -target/-model accepted")
	}
	if _, err := capture(t, func() error {
		return Check([]string{"-target", "google", "-model", goldenGoogle})
	}); err == nil {
		t.Fatal("both -target and -model accepted")
	}
}

func TestExportMinimizedFromModelFile(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "m.dot")
	jsonPath := filepath.Join(dir, "m.json")
	out, err := capture(t, func() error {
		return Export([]string{"-model", goldenGoogle, "-min", "-dot", dot, "-json", jsonPath})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	orig, err := analysis.LoadModel(goldenGoogle)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{dot, jsonPath} {
		m, err := analysis.LoadModel(path)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := m.Equivalent(orig); !eq {
			t.Fatalf("%s: exported model diverged on %v", path, ce)
		}
	}
}

func TestExportDOTToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return Export([]string{"-model", goldenLossy})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "digraph") {
		t.Fatalf("stdout export is not dot:\n%.80s", out)
	}
}

// TestDiffEndToEnd is the acceptance workflow: `prognosis diff google
// lossy-retransmit` learns both targets through the default lossy link,
// emits a witness word, and replays it against both live targets,
// reproducing the divergent outputs on the wire. (-conformance 0 keeps the
// test fast; the divergence — doubled flights — shows on every state.)
func TestDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return Diff([]string{"-conformance", "0", "-witnesses", "2", "-seed", "13",
			"-export", dir, "google", "lossy-retransmit"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"NOT equivalent",
		"witness 1",
		"replaying witness",
		"CONFIRMED: live outputs diverge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, file := range []string{"google.json", "google.dot", "lossy-retransmit.json", "lossy-retransmit.dot"} {
		if _, err := analysis.LoadModel(filepath.Join(dir, file)); err != nil {
			t.Fatalf("export %s: %v", file, err)
		}
	}
}

func TestDiffNeedsTwoTargets(t *testing.T) {
	if _, err := capture(t, func() error { return Diff([]string{"google"}) }); err == nil {
		t.Fatal("one target accepted")
	}
}

// writeManifest writes a regress manifest with the given entries into dir.
func writeManifest(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "regress.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegressUnchangedTargetPasses(t *testing.T) {
	dir := t.TempDir()
	golden, err := analysis.LoadModel("../analysis/testdata/tcp.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Save(filepath.Join(dir, "tcp.json")); err != nil {
		t.Fatal(err)
	}
	manifest := writeManifest(t, dir,
		`{"version":1,"targets":[{"name":"tcp","golden":"tcp.json","seed":13,"conformance":2}]}`)
	out, err := capture(t, func() error { return Regress([]string{"-manifest", manifest}) })
	if err != nil {
		t.Fatalf("unchanged target drifted: %v\n%s", err, out)
	}
	if !strings.Contains(out, "regress tcp: OK") || !strings.Contains(out, "0 drifted") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestRegressMutatedTargetFailsWithWitness is the gate's purpose: a target
// whose behaviour no longer matches its golden must fail the run with a
// non-empty shortest witness, written to -witness-dir for CI to upload.
func TestRegressMutatedTargetFailsWithWitness(t *testing.T) {
	dir := t.TempDir()
	golden, err := analysis.LoadModel("../analysis/testdata/tcp.json")
	if err != nil {
		t.Fatal(err)
	}
	// The "old version" golden: same shape, one transition output mutated —
	// as if the implementation changed behaviour since the golden was cut.
	mutated := golden.Mealy().Clone()
	s := mutated.Initial()
	to, _, ok := mutated.Step(s, mutated.Inputs()[0])
	if !ok {
		t.Fatal("golden has no transition on first input")
	}
	mutated.SetTransition(s, mutated.Inputs()[0], to, "MUTATED-OUTPUT")
	if err := analysis.NewModel("tcp", mutated).Save(filepath.Join(dir, "tcp.json")); err != nil {
		t.Fatal(err)
	}
	manifest := writeManifest(t, dir,
		`{"version":1,"targets":[{"name":"tcp","golden":"tcp.json","seed":13,"conformance":2}]}`)
	witnessDir := filepath.Join(dir, "witnesses")
	out, err := capture(t, func() error {
		return Regress([]string{"-manifest", manifest, "-witness-dir", witnessDir})
	})
	if err == nil || !strings.Contains(err.Error(), "drifted from golden: tcp") {
		t.Fatalf("mutated target passed the gate (err=%v):\n%s", err, out)
	}
	if !strings.Contains(out, "DRIFT") || !strings.Contains(out, "shortest witness") {
		t.Fatalf("output:\n%s", out)
	}
	witness, err := os.ReadFile(filepath.Join(witnessDir, "tcp.witness.txt"))
	if err != nil || len(witness) == 0 {
		t.Fatalf("no witness artifact: %v", err)
	}
	if !strings.Contains(string(witness), "MUTATED-OUTPUT") {
		t.Fatalf("witness does not show the divergence:\n%s", witness)
	}
	if _, err := analysis.LoadModel(filepath.Join(witnessDir, "tcp.learned.json")); err != nil {
		t.Fatalf("learned-model artifact unreadable: %v", err)
	}
}

func TestRegressExpectNondet(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir,
		`{"version":1,"targets":[{"name":"mvfst","expect":"nondet","seed":13}]}`)
	out, err := capture(t, func() error { return Regress([]string{"-manifest", manifest}) })
	if err != nil {
		t.Fatalf("mvfst nondeterminism not treated as the golden outcome: %v\n%s", err, out)
	}
	if !strings.Contains(out, "regress mvfst: OK") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestRegressWarmStoreCutsLiveQueries: a second regress run sharing the
// -store directory must relearn warm and issue fewer live queries.
func TestRegressWarmStoreCutsLiveQueries(t *testing.T) {
	dir := t.TempDir()
	golden, err := analysis.LoadModel("../analysis/testdata/tcp.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Save(filepath.Join(dir, "tcp.json")); err != nil {
		t.Fatal(err)
	}
	manifest := writeManifest(t, dir,
		`{"version":1,"targets":[{"name":"tcp","golden":"tcp.json","seed":13,"conformance":2}]}`)
	store := filepath.Join(dir, "store")
	queries := func(out string) int {
		var n, targets, drifted int
		if _, err := fmt.Sscanf(out[strings.LastIndex(out, "regress total:"):],
			"regress total: %d live queries across %d targets, %d drifted", &n, &targets, &drifted); err != nil {
			t.Fatalf("unparseable total (%v):\n%s", err, out)
		}
		return n
	}
	coldOut, err := capture(t, func() error { return Regress([]string{"-manifest", manifest, "-store", store}) })
	if err != nil {
		t.Fatal(err)
	}
	warmOut, err := capture(t, func() error { return Regress([]string{"-manifest", manifest, "-store", store}) })
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := queries(coldOut), queries(warmOut)
	if warm >= cold {
		t.Fatalf("warm regress (%d live queries) not cheaper than cold (%d)", warm, cold)
	}
}

func TestRegressManifestValidation(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"no-targets":        `{"version":1,"targets":[]}`,
		"bad-version":       `{"version":9,"targets":[{"name":"tcp","golden":"x.json"}]}`,
		"nameless":          `{"version":1,"targets":[{"golden":"x.json"}]}`,
		"goldenless":        `{"version":1,"targets":[{"name":"tcp"}]}`,
		"nondet-and-golden": `{"version":1,"targets":[{"name":"mvfst","expect":"nondet","golden":"x.json"}]}`,
		"bad-expect":        `{"version":1,"targets":[{"name":"tcp","expect":"maybe"}]}`,
	} {
		manifest := writeManifest(t, t.TempDir(), body)
		if _, err := capture(t, func() error { return Regress([]string{"-manifest", manifest}) }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// -targets must reject names outside the manifest.
	manifest := writeManifest(t, dir,
		`{"version":1,"targets":[{"name":"tcp","golden":"tcp.json"}]}`)
	if _, err := capture(t, func() error {
		return Regress([]string{"-manifest", manifest, "-targets", "nope"})
	}); err == nil || !strings.Contains(err.Error(), "not in manifest") {
		t.Errorf("unknown -targets selection accepted: %v", err)
	}
}

// TestRegressManifestCoversAllRegistryTargets keeps the checked-in
// manifest honest: every registered in-process target must appear in it (a
// new target without a regression entry would silently escape the CI
// gate). External targets are exempt — their behaviour is the wrapped
// command's, so no fixed golden can cover them.
func TestRegressManifestCoversAllRegistryTargets(t *testing.T) {
	m, err := LoadRegressManifest("../analysis/testdata/regress.json")
	if err != nil {
		t.Fatal(err)
	}
	missing, unknown := m.CoverageGap()
	if len(missing) > 0 {
		t.Errorf("registry target(s) missing from the regression manifest: %s\n"+
			"add an entry (with a checked-in golden, or expect \"nondet\") for each to internal/analysis/testdata/regress.json",
			strings.Join(missing, ", "))
	}
	if len(unknown) > 0 {
		t.Errorf("manifest entr(ies) naming no registry target: %s\n"+
			"remove them from internal/analysis/testdata/regress.json or register the target",
			strings.Join(unknown, ", "))
	}
}

func TestMainDispatch(t *testing.T) {
	var errBuf bytes.Buffer
	if code := Main([]string{"bogus-subcommand"}, &errBuf); code != 2 {
		t.Fatalf("unknown subcommand exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown subcommand") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
	errBuf.Reset()
	if code := Main([]string{"help"}, &errBuf); code != 0 {
		t.Fatalf("help exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "prognosis learn") {
		t.Fatalf("usage missing subcommands: %s", errBuf.String())
	}
	if code := Main(nil, &errBuf); code != 2 {
		t.Fatal("empty invocation must fail with usage")
	}
}
