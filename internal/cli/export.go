package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/learncfg"
)

// Export implements `prognosis export`: write a model — learned live or
// loaded from a file — in the unified codecs. With no output flag the
// Graphviz dot rendering goes to stdout. -min exports the minimized model
// (language-equivalent, canonical state numbering).
func Export(args []string) error {
	fs := flag.NewFlagSet("prognosis export", flag.ContinueOnError)
	target := fs.String("target", "", "learn this registry target and export the learned model")
	modelFile := fs.String("model", "", "export a model loaded from this DOT or JSON file instead of learning")
	dotFile := fs.String("dot", "", "write Graphviz dot to this file")
	jsonFile := fs.String("json", "", "write JSON to this file")
	minimize := fs.Bool("min", false, "minimize before exporting")
	var lf learnFlags
	lf.register(fs, learncfg.Defaults{})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("export takes no positional arguments (got %v)", fs.Args())
	}

	model, err := resolveModel(*target, *modelFile, &lf)
	if err != nil {
		return err
	}
	if *minimize {
		model = model.Minimize()
	}
	if *dotFile == "" && *jsonFile == "" {
		fmt.Print(model.DOT())
		return nil
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(model.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotFile)
	}
	if *jsonFile != "" {
		data, err := model.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonFile)
	}
	return nil
}
