// Package cli implements the prognosis subcommands — learn, diff, check,
// export, regress — over the unified analysis plane. cmd/prognosis
// dispatches to them; cmd/modeldiff is a thin alias for `prognosis diff`.
// Every
// subcommand owns its flag set, installs Ctrl-C cancellation, and speaks
// the same learning options, so `learn`'s flags work unchanged on `diff`,
// `check`, and `export`.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/netem"
)

// Main dispatches a prognosis invocation: the first argument selects the
// subcommand, and — for compatibility with the pre-subcommand tool — an
// invocation that starts with a flag runs `learn`. It returns the process
// exit code.
func Main(args []string, stderr io.Writer) int {
	if len(args) == 0 {
		Usage(stderr)
		return 2
	}
	var err error
	switch cmd := args[0]; cmd {
	case "learn":
		err = Learn(args[1:])
	case "diff":
		err = Diff(args[1:])
	case "check":
		err = Check(args[1:])
	case "export":
		err = Export(args[1:])
	case "regress":
		err = Regress(args[1:])
	case "help", "-h", "-help", "--help":
		Usage(stderr)
		return 0
	default:
		if len(cmd) > 0 && cmd[0] == '-' {
			err = Learn(args) // legacy flag-form invocation
			break
		}
		fmt.Fprintf(stderr, "prognosis: unknown subcommand %q\n\n", cmd)
		Usage(stderr)
		return 2
	}
	if err == flag.ErrHelp {
		return 0
	}
	if err != nil {
		fmt.Fprintln(stderr, "prognosis:", err)
		return 1
	}
	return 0
}

// Usage prints the subcommand overview.
func Usage(w io.Writer) {
	fmt.Fprint(w, `prognosis — closed-box protocol analysis (learn, then analyse, the model)

Usage:

  prognosis learn  -target <name> [options]       learn a model, report statistics
  prognosis diff   [options] <targetA> <targetB>  learn both, diff, replay the witness live
  prognosis check  -target <name> | -model <file> check model-level properties
  prognosis export -target <name> | -model <file> write the model in the unified codecs
  prognosis regress [-manifest F] [-store dir]    relearn manifest targets (warm), gate on goldens

Run any subcommand with -h for its options. Invoking prognosis with
learn-style flags and no subcommand (e.g. 'prognosis -target tcp')
behaves like 'learn', matching the pre-subcommand interface; a bare
'prognosis' prints this usage.
`)
}

// signalContext returns a context cancelled by Ctrl-C.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// learnFlags is the shared learning configuration every subcommand
// understands.
type learnFlags struct {
	learner            string
	seed               int64
	perfect            bool
	conformance        int
	udp                bool
	noCache            bool
	workers            int
	window             int
	rtt                time.Duration
	loss, dup, reorder float64
	impairSeed         int64
	warmup             int
	verbose            bool
	eventsFile         string
}

// register declares the shared flags on fs. conformance and the fault
// rates get per-subcommand defaults (diff mildly impairs its links by
// default; learn does not).
func (f *learnFlags) register(fs *flag.FlagSet, defaultConformance int, defaultLoss float64, defaultWorkers int) {
	fs.StringVar(&f.learner, "learner", "ttt", "learning algorithm: ttt or lstar")
	fs.Int64Var(&f.seed, "seed", 13, "seed for all pseudo-randomness")
	fs.BoolVar(&f.perfect, "perfect", false, "use the ground-truth equivalence oracle (QUIC targets only)")
	fs.IntVar(&f.conformance, "conformance", defaultConformance,
		"strengthen the equivalence search with a Wp-method pass of this depth over the live target (0 disables)")
	fs.BoolVar(&f.udp, "udp", false, "run the session over UDP loopback socket pairs (one per worker)")
	fs.BoolVar(&f.noCache, "no-cache", false, "disable the membership-query cache")
	fs.IntVar(&f.workers, "workers", defaultWorkers, "membership-query concurrency: fan queries across this many independent SUL instances")
	fs.IntVar(&f.window, "window", 0,
		"start the adaptive in-flight window at this size (AIMD between 1 and -workers; 0 keeps the fixed worker-count limit)")
	fs.DurationVar(&f.rtt, "rtt", 0, "emulate a remote target by adding this round-trip to every exchange (e.g. 200us)")
	fs.Float64Var(&f.loss, "loss", defaultLoss, "per-datagram loss probability injected in each direction of every worker's link")
	fs.Float64Var(&f.dup, "dup", 0, "per-datagram probability of duplicating a response")
	fs.Float64Var(&f.reorder, "reorder", 0, "per-exchange probability of reordering adjacent response datagrams")
	fs.Int64Var(&f.impairSeed, "impair-seed", 0, "seed for the fault streams (defaults to -seed)")
	fs.IntVar(&f.warmup, "warmup", 100,
		"random words driven through each replica before an impaired learn, letting cross-connection state (loss statistics, degraded modes) settle; applied only when a fault flag is set")
	fs.BoolVar(&f.verbose, "v", false, "stream live learning progress to stderr")
	fs.StringVar(&f.eventsFile, "events", "", "append the typed event stream as JSON lines to this file")
}

// impairment assembles the netem config of the fault flags (zero when no
// fault flag is set).
func (f *learnFlags) impairment() netem.Config {
	seed := f.impairSeed
	if seed == 0 {
		seed = f.seed
	}
	return netem.Config{
		LossClient: f.loss, LossServer: f.loss,
		Duplicate: f.dup, Reorder: f.reorder,
		Seed: seed,
	}
}

// options assembles the lab functional options; the returned cleanup
// closes the events file, if any.
func (f *learnFlags) options() ([]lab.Option, func(), error) {
	opts := []lab.Option{
		lab.WithSeed(f.seed),
		lab.WithLearner(core.LearnerKind(f.learner)),
		lab.WithWorkers(f.workers),
		lab.WithRTT(f.rtt),
		lab.WithConformance(f.conformance),
	}
	if f.window > 0 {
		opts = append(opts, lab.WithWindow(learn.WindowConfig{Initial: f.window}))
	}
	if f.perfect {
		opts = append(opts, lab.WithPerfectEquivalence())
	}
	if f.noCache {
		opts = append(opts, lab.WithoutCache())
	}
	if f.udp {
		// Unsupported combinations (e.g. tcp) are rejected by the target's
		// builder with a clear error rather than silently ignored here.
		opts = append(opts, lab.WithTransport(lab.TransportUDP))
	}
	if impair := f.impairment(); impair.Enabled() {
		opts = append(opts, lab.WithImpairment(impair))
		if f.warmup > 0 {
			opts = append(opts, lab.WithWarmup(f.warmup))
		}
	}
	cleanup := func() {}
	var observers []learn.Observer
	if f.verbose {
		observers = append(observers, progressObserver{})
	}
	if f.eventsFile != "" {
		file, err := os.OpenFile(f.eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { file.Close() }
		observers = append(observers, learn.NewJSONLObserver(file))
	}
	if len(observers) > 0 {
		opts = append(opts, lab.WithObserver(learn.MultiObserver(observers...)))
	}
	return opts, cleanup, nil
}

// learnModel builds and learns one experiment, keeping it open so callers
// can replay witnesses against the live target. Callers must Close the
// returned experiment. Nondeterminism halts are returned as errors here:
// every subcommand that calls this needs a model to analyse.
func learnModel(ctx context.Context, target string, f *learnFlags) (*lab.Experiment, *lab.Result, error) {
	opts, cleanup, err := f.options()
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()
	exp, err := lab.NewExperiment(target, opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := exp.Learn(ctx)
	if err != nil {
		exp.Close()
		return nil, nil, err
	}
	if res.Nondet != nil {
		exp.Close()
		return nil, nil, fmt.Errorf("target %s is nondeterministic: %v", target, res.Nondet)
	}
	return exp, res, nil
}

// progressObserver renders the event stream as -v live progress.
type progressObserver struct{}

func (progressObserver) OnEvent(e learn.Event) {
	switch ev := e.(type) {
	case learn.RoundStarted:
		fmt.Fprintf(os.Stderr, "round %d: building hypothesis...\n", ev.Round)
	case learn.HypothesisReady:
		fmt.Fprintf(os.Stderr, "round %d: hypothesis with %d states / %d transitions\n",
			ev.Round, ev.States, ev.Transitions)
	case learn.CounterexampleFound:
		fmt.Fprintf(os.Stderr, "round %d: counterexample %v\n", ev.Round, ev.Word)
	case learn.CacheSnapshot:
		fmt.Fprintf(os.Stderr, "round %d: %d live queries, %d cache hits, %d cached prefixes\n",
			ev.Round, ev.LiveQueries, ev.Hits, ev.Entries)
	case learn.NondeterminismDetected:
		fmt.Fprintf(os.Stderr, "nondeterminism: %d alternatives after %d votes on %v\n",
			ev.Alternatives, ev.Votes, ev.Word)
	case learn.GuardEscalated:
		fmt.Fprintf(os.Stderr, "guard: escalated to %d votes after %d (disagreement %.2f) on %v\n",
			ev.Budget, ev.Votes, ev.EWMA, ev.Word)
	case learn.WindowResized:
		fmt.Fprintf(os.Stderr, "window: %d -> %d in flight (srtt %v)\n", ev.From, ev.To, ev.SRTT)
	}
}
