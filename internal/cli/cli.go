// Package cli implements the prognosis subcommands — learn, diff, check,
// export, regress — over the unified analysis plane. cmd/prognosis
// dispatches to them. Every subcommand owns its flag set, installs
// Ctrl-C cancellation, and speaks the same learning options (the shared
// learncfg.Config, which prognosisd job bodies also resolve through), so
// `learn`'s flags work unchanged on `diff`, `check`, and `export`.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/learncfg"
	"repro/internal/netem"
)

// Main dispatches a prognosis invocation: the first argument selects the
// subcommand, and — for compatibility with the pre-subcommand tool — an
// invocation that starts with a flag runs `learn`. It returns the process
// exit code.
func Main(args []string, stderr io.Writer) int {
	if len(args) == 0 {
		Usage(stderr)
		return 2
	}
	var err error
	switch cmd := args[0]; cmd {
	case "learn":
		err = Learn(args[1:])
	case "diff":
		err = Diff(args[1:])
	case "check":
		err = Check(args[1:])
	case "export":
		err = Export(args[1:])
	case "regress":
		err = Regress(args[1:])
	case "help", "-h", "-help", "--help":
		Usage(stderr)
		return 0
	default:
		if len(cmd) > 0 && cmd[0] == '-' {
			err = Learn(args) // legacy flag-form invocation
			break
		}
		fmt.Fprintf(stderr, "prognosis: unknown subcommand %q\n\n", cmd)
		Usage(stderr)
		return 2
	}
	if err == flag.ErrHelp {
		return 0
	}
	if err != nil {
		fmt.Fprintln(stderr, "prognosis:", err)
		return 1
	}
	return 0
}

// Usage prints the subcommand overview.
func Usage(w io.Writer) {
	fmt.Fprint(w, `prognosis — closed-box protocol analysis (learn, then analyse, the model)

Usage:

  prognosis learn  -target <name> [options]       learn a model, report statistics
  prognosis diff   [options] <targetA> <targetB>  learn both, diff, replay the witness live
  prognosis check  -target <name> | -model <file> check model-level properties
  prognosis export -target <name> | -model <file> write the model in the unified codecs
  prognosis regress [-manifest F] [-store dir]    relearn manifest targets (warm), gate on goldens

Run any subcommand with -h for its options. Invoking prognosis with
learn-style flags and no subcommand (e.g. 'prognosis -target tcp')
behaves like 'learn', matching the pre-subcommand interface; a bare
'prognosis' prints this usage.
`)
}

// signalContext returns a context cancelled by Ctrl-C.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// learnFlags is the shared learning configuration every subcommand
// understands: the declarative learncfg.Config (the same struct a
// prognosisd job body unmarshals into, so CLI and API resolve through
// one code path) plus the CLI-only output knobs.
type learnFlags struct {
	learncfg.Config
	verbose    bool
	eventsFile string
}

// register declares the shared flags on fs. The defaults are
// per-subcommand (diff mildly impairs its links by default; learn does
// not) and flow through learncfg.Default, the same baseline the daemon
// applies to job bodies.
func (f *learnFlags) register(fs *flag.FlagSet, d learncfg.Defaults) {
	f.Config = learncfg.Default(d)
	f.Config.Register(fs)
	fs.BoolVar(&f.verbose, "v", false, "stream live learning progress to stderr")
	fs.StringVar(&f.eventsFile, "events", "", "append the typed event stream as JSON lines to this file")
}

// impairment assembles the netem config of the fault flags (zero when no
// fault flag is set).
func (f *learnFlags) impairment() netem.Config { return f.Config.Impairment() }

// options assembles the lab functional options through the shared
// learncfg builder and appends the CLI-only observers; the returned
// cleanup closes the events file, if any.
func (f *learnFlags) options() ([]lab.Option, func(), error) {
	opts, err := f.Config.Options()
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() {}
	var observers []learn.Observer
	if f.verbose {
		observers = append(observers, progressObserver{})
	}
	if f.eventsFile != "" {
		file, err := os.OpenFile(f.eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { file.Close() }
		observers = append(observers, learn.NewJSONLObserver(file))
	}
	if len(observers) > 0 {
		opts = append(opts, lab.WithObserver(learn.MultiObserver(observers...)))
	}
	return opts, cleanup, nil
}

// learnModel builds and learns one experiment, keeping it open so callers
// can replay witnesses against the live target. Callers must Close the
// returned experiment. Nondeterminism halts are returned as errors here:
// every subcommand that calls this needs a model to analyse.
func learnModel(ctx context.Context, target string, f *learnFlags) (*lab.Experiment, *lab.Result, error) {
	opts, cleanup, err := f.options()
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()
	exp, err := lab.NewExperiment(target, opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := exp.Learn(ctx)
	if err != nil {
		exp.Close()
		return nil, nil, err
	}
	if res.Nondet != nil {
		exp.Close()
		return nil, nil, fmt.Errorf("target %s is nondeterministic: %v", target, res.Nondet)
	}
	return exp, res, nil
}

// progressObserver renders the event stream as -v live progress.
type progressObserver struct{}

func (progressObserver) OnEvent(e learn.Event) {
	switch ev := e.(type) {
	case learn.RoundStarted:
		fmt.Fprintf(os.Stderr, "round %d: building hypothesis...\n", ev.Round)
	case learn.HypothesisReady:
		fmt.Fprintf(os.Stderr, "round %d: hypothesis with %d states / %d transitions\n",
			ev.Round, ev.States, ev.Transitions)
	case learn.CounterexampleFound:
		fmt.Fprintf(os.Stderr, "round %d: counterexample %v\n", ev.Round, ev.Word)
	case learn.CacheSnapshot:
		fmt.Fprintf(os.Stderr, "round %d: %d live queries, %d cache hits, %d cached prefixes\n",
			ev.Round, ev.LiveQueries, ev.Hits, ev.Entries)
	case learn.NondeterminismDetected:
		fmt.Fprintf(os.Stderr, "nondeterminism: %d alternatives after %d votes on %v\n",
			ev.Alternatives, ev.Votes, ev.Word)
	case learn.GuardEscalated:
		fmt.Fprintf(os.Stderr, "guard: escalated to %d votes after %d (disagreement %.2f) on %v\n",
			ev.Budget, ev.Votes, ev.EWMA, ev.Word)
	case learn.WindowResized:
		fmt.Fprintf(os.Stderr, "window: %d -> %d in flight (srtt %v)\n", ev.From, ev.To, ev.SRTT)
	}
}
