package cli

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/lab"
	"repro/internal/learncfg"
)

// Diff implements `prognosis diff A B`: learn both targets concurrently,
// diff the models (witnesses + per-state divergence summaries), and replay
// the first witness against both still-live targets to confirm the
// divergence on the wire.
//
// By default each target is learned through a mildly impaired link (2%
// symmetric datagram loss) with a Wp-method conformance pass: behavioural
// differences between implementations often hide behind loss recovery —
// the lossy-retransmit target is clean-link-identical to google — and the
// adaptive §5 guard keeps honest targets' learned models exact under that
// much loss (verified by the impairment campaign tests). Pass -loss 0 for
// a strictly clean-link diff.
func Diff(args []string) error {
	fs := flag.NewFlagSet("prognosis diff", flag.ContinueOnError)
	witnesses := fs.Int("witnesses", 5, "maximum distinguishing traces to print")
	replay := fs.Bool("replay", true, "replay the first witness against both live targets")
	votes := fs.Int("votes", 5, "replays per target when confirming a witness (majority per step)")
	exportDir := fs.String("export", "", "directory to write both learned models as DOT + JSON")
	var lf learnFlags
	lf.register(fs, learncfg.Defaults{Conformance: 2, Loss: 0.02, Workers: 4})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two targets, e.g. `prognosis diff google lossy-retransmit` (got %v)", fs.Args())
	}
	targetA, targetB := fs.Arg(0), fs.Arg(1)

	ctx, stop := signalContext()
	defer stop()

	// Learn both sides concurrently; keep the experiments open so witness
	// replay drives the same live replicas the models were learned from
	// (the lossy-retransmit degradation, for example, lives in the replica
	// state the learning run built up).
	type side struct {
		exp *lab.Experiment
		res *lab.Result
		err error
	}
	sides := make([]side, 2)
	var wg sync.WaitGroup
	for i, target := range []string{targetA, targetB} {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			flags := lf // per-goroutine copy; options build per-run observers
			if flags.eventsFile != "" {
				// The two learns run concurrently: give each its own event
				// stream instead of interleaving unattributable JSON lines
				// in one file.
				flags.eventsFile = perTargetPath(flags.eventsFile, target)
			}
			exp, res, err := learnModel(ctx, target, &flags)
			if err != nil {
				err = fmt.Errorf("target %s: %w", target, err)
			}
			sides[i] = side{exp: exp, res: res, err: err}
		}(i, target)
	}
	wg.Wait()
	for _, s := range sides {
		if s.exp != nil {
			defer s.exp.Close()
		}
	}
	for _, s := range sides {
		if s.err != nil {
			return s.err
		}
	}

	modelA, modelB := sides[0].res.Model(), sides[1].res.Model()
	if targetA == targetB {
		// Same target twice: disambiguate the report names.
		modelA.Name, modelB.Name = targetA+"#1", targetB+"#2"
	}
	report := analysis.Diff(modelA, modelB, *witnesses)
	fmt.Print(report.String())

	if *exportDir != "" {
		for _, m := range []*analysis.Model{modelA, modelB} {
			for _, ext := range []string{".json", ".dot"} {
				path := filepath.Join(*exportDir, m.Name+ext)
				if err := m.Save(path); err != nil {
					return err
				}
				fmt.Printf("exported %s\n", path)
			}
		}
	}

	if report.Equivalent {
		return nil
	}
	fmt.Println("\nnote: a difference is not necessarily a bug — QUIC's specification")
	fmt.Println("permits divergent design choices; inspect the witnesses (cf. §6.2.3).")
	if !*replay || len(report.Witnesses) == 0 {
		return nil
	}
	return replayWitness(ctx, report, sides[0].exp, sides[1].exp, *votes)
}

// perTargetPath derives "events.google.jsonl" from "events.jsonl".
func perTargetPath(path, target string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + target + ext
}

// replayWitness confirms the first (shortest) witness on the wire.
func replayWitness(ctx context.Context, report *analysis.DiffReport, expA, expB *lab.Experiment, votes int) error {
	w := report.Witnesses[0]
	fmt.Printf("\nreplaying witness %v against both live targets (%d votes each):\n", w.Word, votes)
	confirmed, err := analysis.ConfirmWitness(ctx, w, expA.Oracle(), expB.Oracle(), votes)
	if err != nil {
		return err
	}
	for i := range w.Word {
		fmt.Printf("  step %d: %s\n    %s live: %s\n    %s live: %s\n",
			i+1, w.Word[i], report.NameA, confirmed.LiveA[i], report.NameB, confirmed.LiveB[i])
	}
	switch {
	case confirmed.Diverged && confirmed.MatchesModels:
		fmt.Printf("  CONFIRMED: live outputs diverge at step %d, exactly as the models predict\n", confirmed.At+1)
	case confirmed.Diverged:
		fmt.Printf("  CONFIRMED: live outputs diverge at step %d (outputs differ from the models' predictions — flaky link?)\n", confirmed.At+1)
	default:
		fmt.Println("  NOT REPRODUCED: live outputs agree — the model-level divergence did not show on the wire")
	}
	return nil
}
