package netem

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/reference"
)

// bg is the default context for tests that never cancel.
var bg = context.Background()

// lossySUL builds a QUIC SUL whose transport injects faults.
func lossySUL(profile quicsim.Profile, cfg Config) (core.SUL, *Link) {
	srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: 7})
	link := New(reference.ServerTransport(srv), cfg)
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, link)
	return &sul{srv: srv, cli: cli}, link
}

type sul struct {
	srv *quicsim.Server
	cli *reference.QUICClient
}

func (s *sul) Reset() error {
	s.srv.Reset()
	return s.cli.Reset()
}

func (s *sul) Step(in string) (string, error) { return s.cli.Step(in) }

func TestCleanLinkIsTransparent(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileQuiche, Config{Seed: 1})
	out, err := core.Oracle(s).Query(bg, []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := quicsim.GroundTruth(quicsim.ProfileQuiche).Run(
		[]string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("step %d: %q vs %q", i, out[i], want[i])
		}
	}
	if link.DroppedClient+link.DroppedServer+link.Duplicated != 0 {
		t.Fatal("clean link injected faults")
	}
}

// TestLossCausesObservableNondeterminism: with 30% response loss the same
// query produces different answers across runs, which the guard reports.
func TestLossCausesObservableNondeterminism(t *testing.T) {
	s, _ := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.3, Seed: 2})
	guarded := core.Guard(core.Oracle(s), core.GuardConfig{MinVotes: 3, MaxVotes: 12, Certainty: 0.95})
	_, err := guarded.Query(bg, []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream})
	if _, ok := core.IsNondeterminism(err); !ok {
		t.Fatalf("expected nondeterminism under heavy loss, got %v", err)
	}
}

// TestGuardOutvotesRareLoss: with very light loss the majority answer wins
// and learning-style queries still succeed (§5's environmental-glitch
// scenario).
func TestGuardOutvotesRareLoss(t *testing.T) {
	s, _ := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.01, Seed: 3})
	guarded := core.Guard(core.Oracle(s), core.GuardConfig{MinVotes: 3, MaxVotes: 60, Certainty: 0.8})
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC}
	want, _ := quicsim.GroundTruth(quicsim.ProfileQuiche).Run(word)
	for i := 0; i < 10; i++ {
		out, err := guarded.Query(bg, word)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("majority answer corrupted at step %d: %q", j, out[j])
			}
		}
	}
}

// TestDuplicationIsHarmlessForAbstraction: duplicated response datagrams
// change the abstract output (the duplicate packet is observed), which is
// exactly the retransmission-induced nondeterminism §3.2's record-keeping
// exists to surface.
func TestDuplicationChangesAbstraction(t *testing.T) {
	clean, _ := lossySUL(quicsim.ProfileQuiche, Config{Seed: 4})
	dup, link := lossySUL(quicsim.ProfileQuiche, Config{Duplicate: 1.0, Seed: 4})
	word := []string{quicsim.SymInitialCrypto}
	a, err := core.Oracle(clean).Query(bg, word)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Oracle(dup).Query(bg, word)
	if err != nil {
		t.Fatal(err)
	}
	if link.Duplicated == 0 {
		t.Fatal("no duplication happened")
	}
	if a[0] == b[0] {
		t.Fatalf("duplicate delivery should be visible in the abstraction: %q", b[0])
	}
}

// TestLearningSucceedsOverFlakyLink: end-to-end, the guard lets the full
// learning pipeline succeed over a link with rare faults.
func TestLearningSucceedsOverFlakyLink(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.002, Seed: 5})
	exp := &core.Experiment{
		Alphabet:    quicsim.InputAlphabet(),
		SUL:         s,
		Guard:       core.GuardConfig{MinVotes: 3, MaxVotes: 80, Certainty: 0.75},
		Equivalence: &learn.ModelOracle{Model: quicsim.GroundTruth(quicsim.ProfileQuiche)},
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatalf("learning failed over flaky link (dropped %d): %v", link.DroppedServer, err)
	}
	if m.NumStates() != 8 {
		t.Fatalf("learned %d states, want 8", m.NumStates())
	}
	if link.DroppedServer == 0 {
		t.Log("note: no datagrams were dropped this run")
	}
}

// TestReorderingCounter exercises the reorder path.
func TestReorderingCounter(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileGoogle, Config{Reorder: 1.0, Seed: 6})
	if _, err := core.Oracle(s).Query(bg, []string{quicsim.SymInitialCrypto}); err != nil {
		t.Fatal(err)
	}
	if link.Reordered == 0 {
		t.Fatal("flight of 4 datagrams should have been reordered")
	}
}
