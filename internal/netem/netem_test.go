package netem

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/testutil"
)

// bg is the default context for tests that never cancel.
var bg = context.Background()

// lossySUL builds a QUIC SUL whose transport injects faults, on the shared
// test fixture.
func lossySUL(profile quicsim.Profile, cfg Config) (core.SUL, *Link) {
	var link *Link
	pair := testutil.NewQUICPair(profile, func(tr reference.Transport) reference.Transport {
		link = New(tr, cfg)
		return link
	})
	return pair, link
}

func TestCleanLinkIsTransparent(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileQuiche, Config{Seed: 1})
	out, err := core.Oracle(s).Query(bg, []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := quicsim.GroundTruth(quicsim.ProfileQuiche).Run(
		[]string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("step %d: %q vs %q", i, out[i], want[i])
		}
	}
	st := link.Stats()
	if st.DroppedClient+st.DroppedServer+st.Duplicated != 0 {
		t.Fatal("clean link injected faults")
	}
}

// TestLossCausesObservableNondeterminism: with 30% response loss the same
// query produces different answers across runs, which the guard reports.
func TestLossCausesObservableNondeterminism(t *testing.T) {
	s, _ := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.3, Seed: 2})
	guarded := core.Guard(core.Oracle(s), core.GuardConfig{MinVotes: 3, MaxVotes: 12, Certainty: 0.95})
	_, err := guarded.Query(bg, []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream})
	if _, ok := core.IsNondeterminism(err); !ok {
		t.Fatalf("expected nondeterminism under heavy loss, got %v", err)
	}
}

// TestGuardOutvotesRareLoss: with very light loss the majority answer wins
// and learning-style queries still succeed (§5's environmental-glitch
// scenario).
func TestGuardOutvotesRareLoss(t *testing.T) {
	s, _ := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.01, Seed: 3})
	guarded := core.Guard(core.Oracle(s), core.GuardConfig{MinVotes: 3, MaxVotes: 60, Certainty: 0.8})
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC}
	want, _ := quicsim.GroundTruth(quicsim.ProfileQuiche).Run(word)
	for i := 0; i < 10; i++ {
		out, err := guarded.Query(bg, word)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("majority answer corrupted at step %d: %q", j, out[j])
			}
		}
	}
}

// TestDuplicationIsHarmlessForAbstraction: duplicated response datagrams
// change the abstract output (the duplicate packet is observed), which is
// exactly the retransmission-induced nondeterminism §3.2's record-keeping
// exists to surface.
func TestDuplicationChangesAbstraction(t *testing.T) {
	clean, _ := lossySUL(quicsim.ProfileQuiche, Config{Seed: 4})
	dup, link := lossySUL(quicsim.ProfileQuiche, Config{Duplicate: 1.0, Seed: 4})
	word := []string{quicsim.SymInitialCrypto}
	a, err := core.Oracle(clean).Query(bg, word)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Oracle(dup).Query(bg, word)
	if err != nil {
		t.Fatal(err)
	}
	if link.Stats().Duplicated == 0 {
		t.Fatal("no duplication happened")
	}
	if a[0] == b[0] {
		t.Fatalf("duplicate delivery should be visible in the abstraction: %q", b[0])
	}
}

// TestLearningSucceedsOverFlakyLink: end-to-end, the guard lets the full
// learning pipeline succeed over a link with rare faults.
func TestLearningSucceedsOverFlakyLink(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileQuiche, Config{LossServer: 0.002, Seed: 5})
	exp := &core.Experiment{
		Alphabet:    quicsim.InputAlphabet(),
		SUL:         s,
		Guard:       core.GuardConfig{MinVotes: 3, MaxVotes: 80, Certainty: 0.75},
		Equivalence: &learn.ModelOracle{Model: quicsim.GroundTruth(quicsim.ProfileQuiche)},
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatalf("learning failed over flaky link (dropped %d): %v", link.Stats().DroppedServer, err)
	}
	if m.NumStates() != 8 {
		t.Fatalf("learned %d states, want 8", m.NumStates())
	}
	if link.Stats().DroppedServer == 0 {
		t.Log("note: no datagrams were dropped this run")
	}
}

// TestReorderingCounter exercises the reorder path.
func TestReorderingCounter(t *testing.T) {
	s, link := lossySUL(quicsim.ProfileGoogle, Config{Reorder: 1.0, Seed: 6})
	if _, err := core.Oracle(s).Query(bg, []string{quicsim.SymInitialCrypto}); err != nil {
		t.Fatal(err)
	}
	if link.Stats().Reordered == 0 {
		t.Fatal("flight of 4 datagrams should have been reordered")
	}
}

// countingTransport records how many datagrams flowed through.
type countingTransport struct{ n int }

func (c *countingTransport) Send(src string, d []byte) [][]byte {
	c.n++
	return [][]byte{d, d, d}
}

// TestPerDirectionStreamsIndependent: client-side loss must not change
// which server->client datagrams are dropped. Each surviving response
// consumes server-direction coins in order, so the drop pattern *by
// response ordinal* is a pure function of the seed — toggling client loss
// only removes whole exchanges, it never shifts the server coin stream.
// (With the old single shared stream, every client coin shifted all later
// server decisions.)
func TestPerDirectionStreamsIndependent(t *testing.T) {
	dropOrdinals := func(cfg Config) []int {
		link := New(&countingTransport{}, cfg)
		var pattern []int
		for i := 0; i < 400; i++ {
			before := link.Stats()
			link.Send("src", []byte{byte(i)})
			after := link.Stats()
			for d := before.DroppedServer; d < after.DroppedServer; d++ {
				pattern = append(pattern, after.SentServer)
			}
		}
		return pattern
	}
	base := Config{LossServer: 0.2, Seed: 42}
	withClient := base
	withClient.LossClient = 0.5
	a, b := dropOrdinals(base), dropOrdinals(withClient)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("loss patterns empty; rates too low for the sample size")
	}
	// Run b sees fewer responses (half its requests are eaten), so compare
	// the prefix both runs observed.
	n := len(b)
	if len(a) < n {
		n = len(a)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("server drop pattern shifted by client loss at %d: ordinal %d vs %d", i, a[i], b[i])
		}
	}
}

// TestForWorkerStreamsDiffer: per-worker configs derive distinct fault
// streams from the same base seed, and the derivation is stable.
func TestForWorkerStreamsDiffer(t *testing.T) {
	base := Config{LossServer: 0.2, Seed: 9}
	if base.ForWorker(0).Seed == base.ForWorker(1).Seed {
		t.Fatal("workers 0 and 1 share a fault stream")
	}
	if base.ForWorker(3).Seed != base.ForWorker(3).Seed {
		t.Fatal("ForWorker is not deterministic")
	}
	if base.ForWorker(0).LossServer != base.LossServer {
		t.Fatal("ForWorker changed the fault rates")
	}
}

// TestConfigEnabledAndLabel covers the option-plumbing helpers.
func TestConfigEnabledAndLabel(t *testing.T) {
	if (Config{Seed: 3}).Enabled() {
		t.Fatal("zero-rate config reports enabled")
	}
	if !(Config{Duplicate: 0.01}).Enabled() {
		t.Fatal("duplication config reports disabled")
	}
	got := Config{LossClient: 0.05, LossServer: 0.05, Duplicate: 0.01}.Label()
	if got != "loss=5%,dup=1%,reorder=0%" {
		t.Fatalf("label = %q", got)
	}
	asym := Config{LossClient: 0.01, LossServer: 0.05}.Label()
	if asym != "loss=1%/5%,dup=0%,reorder=0%" {
		t.Fatalf("asymmetric label = %q", asym)
	}
}
