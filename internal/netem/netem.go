// Package netem emulates adverse network conditions — datagram loss,
// duplication, and reordering — around a reference.Transport. §5 of the
// paper motivates the nondeterminism check precisely with such
// environmental effects ("latency and packet loss could cause
// non-determinism to be observed"); this package lets the test suite and
// benchmarks inject those effects deterministically and verify that the
// voting guard outvotes transient glitches while still flagging genuinely
// nondeterministic implementations.
package netem

import (
	"math/rand"
	"sync"

	"repro/internal/reference"
)

// Config sets per-datagram fault probabilities, applied independently to
// each direction. All probabilities are in [0, 1].
type Config struct {
	// LossClient drops client->server datagrams.
	LossClient float64
	// LossServer drops server->client datagrams.
	LossServer float64
	// Duplicate re-delivers a server->client datagram immediately.
	Duplicate float64
	// Reorder swaps adjacent server->client datagrams of one exchange.
	Reorder float64
	// Seed drives the fault coin flips.
	Seed int64
}

// Link wraps a transport with emulated network faults. It is safe for
// concurrent use.
type Link struct {
	mu    sync.Mutex
	cfg   Config
	inner reference.Transport
	rng   *rand.Rand

	// Counters for test assertions and reports.
	SentClient, DroppedClient int
	SentServer, DroppedServer int
	Duplicated, Reordered     int
}

// New wraps inner with fault injection.
func New(inner reference.Transport, cfg Config) *Link {
	return &Link{cfg: cfg, inner: inner, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Send implements reference.Transport.
func (l *Link) Send(src string, datagram []byte) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.SentClient++
	if l.rng.Float64() < l.cfg.LossClient {
		l.DroppedClient++
		return nil // the request never arrives; no response can exist
	}
	responses := l.inner.Send(src, datagram)
	var out [][]byte
	for _, r := range responses {
		l.SentServer++
		if l.rng.Float64() < l.cfg.LossServer {
			l.DroppedServer++
			continue
		}
		out = append(out, r)
		if l.rng.Float64() < l.cfg.Duplicate {
			l.Duplicated++
			out = append(out, append([]byte(nil), r...))
		}
	}
	if len(out) > 1 && l.rng.Float64() < l.cfg.Reorder {
		i := l.rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
		l.Reordered++
	}
	return out
}
