// Package netem emulates adverse network conditions — datagram loss,
// duplication, and reordering — around a reference.Transport. §5 of the
// paper motivates the nondeterminism check precisely with such
// environmental effects ("latency and packet loss could cause
// non-determinism to be observed"); this package lets experiments, the
// test suite, and benchmarks inject those effects deterministically and
// verify that the voting guard outvotes transient glitches while still
// flagging genuinely nondeterministic implementations.
package netem

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/reference"
)

// Config sets per-datagram fault probabilities, applied independently to
// each direction. All probabilities are in [0, 1].
type Config struct {
	// LossClient drops client->server datagrams.
	LossClient float64
	// LossServer drops server->client datagrams.
	LossServer float64
	// Duplicate re-delivers a server->client datagram immediately.
	Duplicate float64
	// Reorder swaps adjacent server->client datagrams of one exchange.
	Reorder float64
	// Seed drives the fault coin flips. Each direction draws from its own
	// stream derived from this seed, so client-side faults never perturb
	// the server-side fault pattern (and vice versa).
	Seed int64
}

// Enabled reports whether the config injects any fault at all. A disabled
// config needs no Link.
func (c Config) Enabled() bool {
	return c.LossClient > 0 || c.LossServer > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// ForWorker derives the per-worker variant of the config: identical fault
// rates, an independent fault stream. Pooled experiments wrap every
// worker's transport in its own Link seeded this way, so the fault pattern
// each replica observes depends only on (Seed, worker index) — never on
// how the scheduler interleaves the workers' queries.
func (c Config) ForWorker(worker int) Config {
	c.Seed = mix(c.Seed, int64(worker))
	return c
}

// Label renders the fault rates compactly ("loss=5%,dup=1%,reorder=0%"),
// for run names and reports. Asymmetric loss is shown per direction.
func (c Config) Label() string {
	loss := fmt.Sprintf("loss=%g%%", c.LossClient*100)
	if c.LossServer != c.LossClient {
		loss = fmt.Sprintf("loss=%g%%/%g%%", c.LossClient*100, c.LossServer*100)
	}
	return fmt.Sprintf("%s,dup=%g%%,reorder=%g%%", loss, c.Duplicate*100, c.Reorder*100)
}

// mix is a splitmix64 round over the seed and stream index, spreading
// adjacent worker indices across the whole seed space.
func mix(seed, stream int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Stats is a consistent snapshot of a Link's fault counters.
type Stats struct {
	SentClient, DroppedClient int
	SentServer, DroppedServer int
	Duplicated, Reordered     int
}

// Add accumulates other into s (for aggregating per-worker links).
func (s *Stats) Add(other Stats) {
	s.SentClient += other.SentClient
	s.DroppedClient += other.DroppedClient
	s.SentServer += other.SentServer
	s.DroppedServer += other.DroppedServer
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
}

// Link wraps a transport with emulated network faults. It is safe for
// concurrent use.
type Link struct {
	mu    sync.Mutex
	cfg   Config
	inner reference.Transport

	// Independent per-direction fault streams: a client-side drop must not
	// shift which server-side coin the next response draws, or the fault
	// pattern would depend on the exact interleaving of bidirectional
	// traffic instead of only on the seed.
	clientRNG *rand.Rand
	serverRNG *rand.Rand

	stats Stats
}

// New wraps inner with fault injection.
func New(inner reference.Transport, cfg Config) *Link {
	return &Link{
		cfg:       cfg,
		inner:     inner,
		clientRNG: rand.New(rand.NewSource(mix(cfg.Seed, 0x0C11E47))),
		serverRNG: rand.New(rand.NewSource(mix(cfg.Seed, 0x5E7FE7))),
	}
}

// Stats returns a consistent snapshot of the fault counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Send implements reference.Transport.
func (l *Link) Send(src string, datagram []byte) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.SentClient++
	metricSentClient.Inc()
	if l.clientRNG.Float64() < l.cfg.LossClient {
		l.stats.DroppedClient++
		metricDroppedClient.Inc()
		return nil // the request never arrives; no response can exist
	}
	responses := l.inner.Send(src, datagram)
	var out [][]byte
	for _, r := range responses {
		l.stats.SentServer++
		metricSentServer.Inc()
		if l.serverRNG.Float64() < l.cfg.LossServer {
			l.stats.DroppedServer++
			metricDroppedServer.Inc()
			continue
		}
		out = append(out, r)
		if l.serverRNG.Float64() < l.cfg.Duplicate {
			l.stats.Duplicated++
			metricDuplicated.Inc()
			out = append(out, append([]byte(nil), r...))
		}
	}
	if len(out) > 1 && l.serverRNG.Float64() < l.cfg.Reorder {
		i := l.serverRNG.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
		l.stats.Reordered++
		metricReordered.Inc()
	}
	return out
}
