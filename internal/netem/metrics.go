package netem

import "repro/internal/metrics"

// Process-wide fault-injection metric families, labelled by direction
// (client = request datagrams, server = response datagrams). Per-link
// totals stay available through Link.Stats / lab.Result.Metrics.
var (
	metricSentClient = metrics.Default().CounterWith("prognosis_netem_datagrams_total",
		"Datagrams offered to impaired links.", []string{"dir"}, []string{"client"})
	metricSentServer = metrics.Default().CounterWith("prognosis_netem_datagrams_total",
		"Datagrams offered to impaired links.", []string{"dir"}, []string{"server"})
	metricDroppedClient = metrics.Default().CounterWith("prognosis_netem_dropped_total",
		"Datagrams dropped by impaired links.", []string{"dir"}, []string{"client"})
	metricDroppedServer = metrics.Default().CounterWith("prognosis_netem_dropped_total",
		"Datagrams dropped by impaired links.", []string{"dir"}, []string{"server"})
	metricDuplicated = metrics.Default().Counter("prognosis_netem_duplicated_total",
		"Response datagrams duplicated by impaired links.")
	metricReordered = metrics.Default().Counter("prognosis_netem_reordered_total",
		"Response-pair reorders performed by impaired links.")
)
