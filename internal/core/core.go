// Package core is the Prognosis framework of §2: it wires a System Under
// Learning (a protocol implementation behind an instrumented reference-
// implementation adapter) to the learning module, guards queries against
// nondeterminism (§5), maintains the Oracle Table used for model synthesis
// (§4.3), and exposes the experiment driver used by the command-line tools
// and benchmarks.
//
// The experiment API is context-first: Experiment.Learn takes a
// context.Context, and cancelling it aborts the run mid-round — the pool
// workers, the cache's in-flight waiters, the voting guard, and the
// equivalence search all exit promptly without leaking goroutines.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/automata"
	"repro/internal/learn"
)

// SUL is the System Under Learning: a protocol implementation reachable
// through an Adapter that talks abstract symbols. Step sends one abstract
// input and returns the abstract output; Reset returns both the adapter
// and the implementation to their initial states (Adapter property 3).
type SUL interface {
	Reset() error
	Step(input string) (output string, err error)
}

// Oracle adapts an SUL to the learning module's membership-query interface:
// each query resets the system and replays the word symbol by symbol,
// checking for cancellation between symbols so that aborting a run never
// waits for a long word to finish.
func Oracle(s SUL) learn.Oracle {
	return learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Reset(); err != nil {
			return nil, fmt.Errorf("core: reset: %w", err)
		}
		out := make([]string, 0, len(word))
		for _, in := range word {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := s.Step(in)
			if err != nil {
				return nil, fmt.Errorf("core: step %q: %w", in, err)
			}
			out = append(out, o)
		}
		return out, nil
	})
}

// NondeterminismError reports that repeated executions of the same query
// produced conflicting outputs that never reached the certainty threshold.
// Per §5 this is itself a powerful analysis: Issue 2 (the mvfst stateless
// RESET bug) was discovered exactly this way.
type NondeterminismError struct {
	Word     []string
	Observed map[string]int // distinct output words -> occurrence count
	Votes    int
}

// Error implements error.
func (e *NondeterminismError) Error() string {
	var alts []string
	for out, n := range e.Observed {
		alts = append(alts, fmt.Sprintf("%q x%d", out, n))
	}
	sort.Strings(alts)
	return fmt.Sprintf("core: nondeterministic response to %v after %d votes: %s",
		e.Word, e.Votes, strings.Join(alts, ", "))
}

// IsNondeterminism reports whether err wraps a NondeterminismError and
// returns it.
func IsNondeterminism(err error) (*NondeterminismError, bool) {
	var nd *NondeterminismError
	if errors.As(err, &nd) {
		return nd, true
	}
	return nil, false
}

// GuardConfig tunes the nondeterminism check of §5.
type GuardConfig struct {
	// MinVotes executions are always performed. If they all agree the
	// answer is accepted immediately.
	MinVotes int
	// MaxVotes bounds the retries after a disagreement.
	MaxVotes int
	// Certainty is the fraction of agreeing executions required to accept
	// a majority answer after a disagreement (e.g. 0.9).
	Certainty float64

	// Adaptive enables learning under adverse networks: the per-query vote
	// budget starts at MinVotes and escalates with the observed
	// disagreement rate (an EWMA over past queries), and disagreeing
	// executions are resolved by positional consensus — each output
	// position is accepted once enough executions that agree with the
	// already-accepted prefix also agree on it. No answer can reach a
	// whole-word Certainty threshold on a link whose per-datagram faults
	// corrupt a large fraction of executions, but per-position the clean
	// outcome stays strongly modal however long the word is. See
	// docs/IMPAIRMENT.md for the algorithm and its trade-offs.
	Adaptive bool
	// EWMAAlpha smooths the disagreement-rate estimate (adaptive mode
	// only; default 0.15). Larger values react faster to a link going bad
	// and recover faster on a clean streak.
	EWMAAlpha float64
	// ModeVotes and ModeLead parameterize the positional acceptance rule:
	// a position is accepted once its modal output holds at least
	// ModeVotes votes (default 7) and at least ModeLead times the
	// runner-up's count (default 3) among prefix-consistent executions.
	// Link noise gives the wrong outcomes at any one position only a
	// small probability each, so the true output builds this lead
	// quickly, while a genuine coin flip (e.g. a 50/50 RESET) never does.
	ModeVotes int
	ModeLead  int
	// PriorDisagreement seeds the EWMA before the first query. A run that
	// expects an impaired link starts pessimistic (0.5) so the earliest
	// queries — which seed the cache everything later builds on — are
	// already sampled generously; on a clean link the prior decays to
	// MinVotes-cheap behaviour within a couple dozen queries.
	PriorDisagreement float64
}

// DefaultGuard mirrors the paper's setup: cheap when the system is
// deterministic, insistent when it is not.
func DefaultGuard() GuardConfig {
	return GuardConfig{MinVotes: 2, MaxVotes: 20, Certainty: 0.9}
}

// DefaultAdaptiveGuard is the guard for learning through an impaired link:
// it starts as cheap as DefaultGuard and pays votes only where the link
// actually bites. MaxVotes is sized so that long words keep enough
// prefix-consistent executions to reach positional consensus at several
// percent datagram loss.
func DefaultAdaptiveGuard() GuardConfig {
	return GuardConfig{
		MinVotes: 2, MaxVotes: 160, Certainty: 0.9,
		Adaptive: true, EWMAAlpha: 0.15, ModeVotes: 7, ModeLead: 3,
		PriorDisagreement: 0.5,
	}
}

// GuardStats are cumulative voting-cost counters, updated atomically by
// every oracle a Guardian wraps. Read them with Snapshot.
type GuardStats struct {
	// Votes counts every SUL execution the guard performed.
	Votes int64
	// Escalations counts vote-budget raises (each also emitted as a
	// learn.GuardEscalated event).
	Escalations int64
	// RetriedQueries counts queries that saw at least one disagreement.
	RetriedQueries int64
	// WastedVotes counts votes beyond the MinVotes floor — the price of
	// the link's flakiness (a clean link wastes none).
	WastedVotes int64
}

// Snapshot returns a consistent copy safe to read while queries are in
// flight.
func (s *GuardStats) Snapshot() GuardStats {
	return GuardStats{
		Votes:          atomic.LoadInt64(&s.Votes),
		Escalations:    atomic.LoadInt64(&s.Escalations),
		RetriedQueries: atomic.LoadInt64(&s.RetriedQueries),
		WastedVotes:    atomic.LoadInt64(&s.WastedVotes),
	}
}

// Guardian applies the §5 nondeterminism check to any number of oracle
// shards, sharing one adaptive state (disagreement EWMA, stats) across all
// of them: a pooled experiment has one link quality, not one per worker.
// Wrap as many shard oracles as needed; all methods are safe for
// concurrent use.
type Guardian struct {
	cfg   GuardConfig
	stats *GuardStats
	obs   learn.Observer

	mu   sync.Mutex
	ewma float64 // observed disagreement rate across recent queries
}

// NewGuardian validates cfg (filling adaptive defaults) and returns a
// Guardian. stats may be nil (counters are then kept internally); obs may
// be nil (escalation events are then dropped).
func NewGuardian(cfg GuardConfig, stats *GuardStats, obs learn.Observer) *Guardian {
	if cfg.MinVotes < 1 {
		cfg.MinVotes = 1
	}
	if cfg.MaxVotes < cfg.MinVotes {
		cfg.MaxVotes = cfg.MinVotes
	}
	if cfg.Adaptive {
		if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
			cfg.EWMAAlpha = 0.15
		}
		if cfg.ModeVotes <= 0 {
			cfg.ModeVotes = 7
		}
		if cfg.ModeLead <= 0 {
			cfg.ModeLead = 3
		}
	}
	if stats == nil {
		stats = &GuardStats{}
	}
	ewma := 0.0
	if cfg.Adaptive {
		ewma = cfg.PriorDisagreement
	}
	return &Guardian{cfg: cfg, stats: stats, obs: obs, ewma: ewma}
}

// Disagreement returns the current EWMA of the per-query disagreement
// rate.
func (g *Guardian) Disagreement() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ewma
}

// StartBudget returns the vote budget a disagreeing query begins with:
// enough for positional consensus on a typical word (ModeVotes-scaled,
// growing with the disagreement rate), while queries the link hits harder
// — long words keep fewer prefix-consistent executions — escalate past it
// step by step toward MaxVotes, emitting a learn.GuardEscalated event at
// every raise. Non-adaptive guards always budget MaxVotes (the fixed
// retry bound of §5).
func (g *Guardian) StartBudget() int {
	if !g.cfg.Adaptive {
		return g.cfg.MaxVotes
	}
	budget := g.cfg.ModeVotes + int(g.Disagreement()*2*float64(g.cfg.ModeVotes)+0.5)
	if min := g.InitialVotes() + 2; budget < min {
		budget = min
	}
	if budget > g.cfg.MaxVotes {
		budget = g.cfg.MaxVotes
	}
	return budget
}

// InitialVotes returns how many executions the next query samples before a
// unanimous answer is accepted: MinVotes on a clean link, growing toward
// ModeVotes as the disagreement EWMA climbs. This is the other half of
// adaptivity — on a badly impaired link, two executions can agree by
// suffering the *same* fault (two lost copies of the same response look
// identical), so unanimity among MinVotes is only trustworthy when
// disagreements are rare.
func (g *Guardian) InitialVotes() int {
	if !g.cfg.Adaptive {
		return g.cfg.MinVotes
	}
	n := g.cfg.MinVotes
	if span := float64(g.cfg.ModeVotes - g.cfg.MinVotes); span > 0 {
		n += int(g.Disagreement()*span + 0.5)
		if n > g.cfg.ModeVotes {
			n = g.cfg.ModeVotes
		}
	}
	return n
}

// observe folds one finished query into the shared disagreement EWMA.
func (g *Guardian) observe(flaky bool) {
	x := 0.0
	if flaky {
		x = 1.0
	}
	g.mu.Lock()
	g.ewma += g.cfg.EWMAAlpha * (x - g.ewma)
	g.mu.Unlock()
}

// Wrap returns an oracle applying the guard to o. Each query is executed
// MinVotes times; unanimity is accepted immediately. On disagreement the
// fixed guard keeps re-executing up to MaxVotes and accepts a whole-word
// answer only at Certainty; the adaptive guard resolves the word by
// positional consensus within an escalating vote budget. Either way an
// unresolved query fails with a *NondeterminismError.
//
// The vote tally is derived from the observed executions, so a vote that
// errors mid-retry can never leave the tally inconsistent: failed
// executions simply are not votes. Underlying query errors are wrapped
// with the query word (and errors.Is/As still see through the wrapping),
// so a failure deep in a retry loop stays diagnosable.
func (g *Guardian) Wrap(o learn.Oracle) learn.Oracle {
	return learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		if g.cfg.Adaptive {
			return g.adaptiveQuery(ctx, o, word)
		}
		return g.fixedQuery(ctx, o, word)
	})
}

// fixedQuery is the paper's §5 check: whole-word majority at Certainty.
func (g *Guardian) fixedQuery(ctx context.Context, o learn.Oracle, word []string) ([]string, error) {
	cfg := g.cfg
	counts := make(map[string]int)
	first := make(map[string][]string)
	votes := 0
	ask := func() error {
		out, err := o.Query(ctx, word)
		if err != nil {
			return fmt.Errorf("core: guard query %v after %d votes: %w", word, votes, err)
		}
		votes++
		g.stats.addVotes(1)
		key := strings.Join(out, "\x1e")
		counts[key]++
		if _, ok := first[key]; !ok {
			first[key] = out
		}
		return nil
	}
	accept := func(key string) []string {
		g.stats.addWasted(int64(votes - cfg.MinVotes))
		return first[key]
	}
	for i := 0; i < cfg.MinVotes; i++ {
		if err := ask(); err != nil {
			return nil, err
		}
	}
	if len(counts) == 1 {
		g.observe(false)
		for k := range counts {
			return accept(k), nil
		}
	}
	g.stats.addRetried(1)
	g.observe(true)
	for votes < cfg.MaxVotes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ask(); err != nil {
			return nil, err
		}
		for k, n := range counts {
			if float64(n) >= cfg.Certainty*float64(votes) && votes >= cfg.MinVotes+2 {
				return accept(k), nil
			}
		}
	}
	g.stats.addWasted(int64(votes - cfg.MinVotes))
	return nil, &NondeterminismError{Word: word, Observed: counts, Votes: votes}
}

// adaptiveQuery resolves a disagreeing query by positional consensus: the
// answer is built one output position at a time, and a position is
// accepted once its modal output holds ModeVotes votes with a ModeLead
// lead among the executions that agree with the already-accepted prefix.
// Per position the clean outcome stays strongly modal regardless of word
// length — the property whole-word majorities lose on long words, where
// the fully-clean execution can be a minority even though every
// alternative is rarer still. The vote budget starts from the
// disagreement EWMA and escalates (emitting learn.GuardEscalated) while
// the query stays unresolved.
func (g *Guardian) adaptiveQuery(ctx context.Context, o learn.Oracle, word []string) ([]string, error) {
	cfg := g.cfg
	var execs [][]string
	votes := 0
	cast := func() error {
		out, err := o.Query(ctx, word)
		if err != nil {
			return fmt.Errorf("core: guard query %v after %d votes: %w", word, votes, err)
		}
		votes++
		g.stats.addVotes(1)
		execs = append(execs, out)
		return nil
	}
	initial := g.InitialVotes()
	for i := 0; i < initial; i++ {
		if err := cast(); err != nil {
			return nil, err
		}
	}
	unanimous := true
	for _, e := range execs[1:] {
		if !slices.Equal(e, execs[0]) {
			unanimous = false
			break
		}
	}
	if unanimous {
		g.observe(false)
		g.stats.addWasted(int64(votes - cfg.MinVotes))
		return execs[0], nil
	}
	g.stats.addRetried(1)
	g.observe(true)
	budget := g.StartBudget()
	// alive[j]: execs[j] agrees with every accepted position so far, and
	// therefore gets a vote on the next one.
	alive := make([]bool, len(execs))
	for j := range alive {
		alive[j] = true
	}
	accepted := make([]string, 0, len(word))
	for pos := range word {
		for {
			counts := make(map[string]int)
			for j, e := range execs {
				if alive[j] {
					counts[e[pos]]++
				}
			}
			mode, haveMode, runner := "", false, 0
			for out, n := range counts {
				if !haveMode || n > counts[mode] {
					if haveMode && counts[mode] > runner {
						runner = counts[mode]
					}
					mode, haveMode = out, true
					continue
				}
				if n > runner {
					runner = n
				}
			}
			if counts[mode] >= cfg.ModeVotes && counts[mode] >= cfg.ModeLead*runner {
				accepted = append(accepted, mode)
				for j, e := range execs {
					alive[j] = alive[j] && e[pos] == mode
				}
				break
			}
			if votes >= budget {
				if budget >= cfg.MaxVotes {
					g.stats.addWasted(int64(votes - cfg.MinVotes))
					whole := make(map[string]int, len(execs))
					for _, e := range execs {
						whole[strings.Join(e, "\x1e")]++
					}
					return nil, &NondeterminismError{Word: word, Observed: whole, Votes: votes}
				}
				// Escalate: double the budget (at least 4 more votes) up to
				// the hard ceiling, and tell observers the link is biting.
				budget *= 2
				if budget < votes+4 {
					budget = votes + 4
				}
				if budget > cfg.MaxVotes {
					budget = cfg.MaxVotes
				}
				g.stats.addEscalations(1)
				if g.obs != nil {
					g.obs.OnEvent(learn.GuardEscalated{
						Word: word, Votes: votes, Budget: budget, EWMA: g.Disagreement(),
					})
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := cast(); err != nil {
				return nil, err
			}
			// The fresh execution votes only where it agrees with the
			// consensus built so far.
			alive = append(alive, slices.Equal(execs[len(execs)-1][:pos], accepted[:pos]))
		}
	}
	g.stats.addWasted(int64(votes - cfg.MinVotes))
	return accepted, nil
}

// maxCacheRepairs bounds how many times one Learn call may repair the
// cache and restart its learner before giving up: repairs are cheap (the
// warm cache answers everything untainted), but an implementation that
// keeps producing contradictions is genuinely unlearnable and must fail
// rather than spin.
const maxCacheRepairs = 3

// revalidatedEq wraps an equivalence oracle with the cache-poisoning
// breaker: a counterexample identical to the previous round's means the
// learner made no progress on it. After the guard, the likeliest cause is
// a wrongly accepted answer sitting in the cache (which would otherwise
// loop the MAT rounds forever), so the word is re-voted live and the
// cached path overwritten before the learner retries it. A counterexample
// that still makes no progress after repeated repairs is escalated as an
// InconsistencyError, which Experiment.Learn handles with a wider repair
// and a learner restart.
type revalidatedEq struct {
	inner   learn.EquivalenceOracle
	cache   *learn.CachedOracle
	last    string
	repeats int
}

// FindCounterexample implements learn.EquivalenceOracle.
func (r *revalidatedEq) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	ce, err := r.inner.FindCounterexample(ctx, hyp)
	if err != nil || ce == nil {
		r.last, r.repeats = "", 0
		return ce, err
	}
	key := strings.Join(ce, "\x1f")
	if key != r.last {
		r.last, r.repeats = key, 0
		return ce, nil
	}
	r.repeats++
	if r.repeats > maxCacheRepairs {
		return nil, &learn.InconsistencyError{
			CE: ce, Words: [][]string{ce},
			Reason: "counterexample made no progress despite repeated cache repairs",
		}
	}
	if _, err := r.cache.Refresh(ctx, ce); err != nil {
		return nil, err
	}
	return ce, nil
}

// Guard wraps a single oracle with the nondeterminism check — the one-shot
// form of NewGuardian(cfg, nil, nil).Wrap(o) for callers that need no
// shared stats or escalation events.
func Guard(o learn.Oracle, cfg GuardConfig) learn.Oracle {
	return NewGuardian(cfg, nil, nil).Wrap(o)
}

// LearnerKind selects the learning algorithm.
type LearnerKind string

// Available learners.
const (
	LearnerLStar LearnerKind = "lstar"
	LearnerTTT   LearnerKind = "ttt" // discrimination-tree learner
)

// Experiment wires an SUL to the learning module. Zero-value fields get
// sensible defaults from Learn.
type Experiment struct {
	Alphabet []string
	SUL      SUL
	// SULs optionally provides additional behaviourally identical replicas
	// of SUL, each with its own reset state. Together with Workers > 1 they
	// form the sharded pool the concurrent query engine fans batches
	// across. SUL itself is always shard 0; SULs are shards 1..n.
	SULs    []SUL
	Workers int
	Learner LearnerKind
	// Equivalence is the equivalence oracle; when nil a random-words
	// oracle over the guarded SUL with the given seed is used (partitioned
	// across Workers goroutines in concurrent mode).
	Equivalence learn.EquivalenceOracle
	// Conformance > 0 strengthens the default equivalence search (it is
	// ignored when Equivalence is set): after the cheap random-words pass,
	// a Wp-method suite of this depth runs against the guarded SUL, which
	// is guaranteed to expose any residual fault adding at most Conformance
	// extra states. Unlike a ground-truth oracle it needs no specification,
	// so it works for closed-box targets and for targets whose behaviour
	// only an impaired link reveals.
	Conformance int
	Guard       GuardConfig
	Seed        int64
	// DisableCache turns off the prefix-tree query cache (for ablation).
	DisableCache bool
	// Warm, when set, seeds the learner from this previously learned
	// hypothesis (L* rebuilds its observation table from the old access
	// words and characterizing set; the discrimination-tree learner starts
	// from a tree rebuilt from the old model), so relearning re-derives
	// the structure through the — typically store-warmed — cache instead
	// of rediscovering it query by query. The warm structures carry only
	// questions, never answers: a hypothesis that no longer matches the
	// system merely biases which queries are asked first.
	Warm *automata.Mealy
	// Store, when set, persists the run's membership answers: the cache is
	// pre-seeded from the store's query log before the first query, every
	// accepted live answer is appended during the run, and a successful
	// learn seals and snapshots the final model for the next run's warm
	// start (learn.Store, learn.CachedOracle.UseStore). Ignored when
	// DisableCache is set — the store is the cache's persistent half.
	Store *learn.Store
	// Window, when set, puts a congestion-window-style adaptive limit on
	// the queries in flight across the pool (workers > 1 only): additive
	// increase on clean completions, multiplicative decrease on guard
	// escalations and timeouts. A zero Max defaults to the worker count.
	// The fixed worker-count limit still caps it — the window can only
	// tighten concurrency, never exceed the shards.
	Window *learn.WindowConfig
	// Observer, when set, receives the typed event stream of the run:
	// RoundStarted / HypothesisReady / CounterexampleFound from the
	// learner, CacheSnapshot once per hypothesis (only while the cache is
	// enabled — a DisableCache run has no cache to snapshot), and
	// NondeterminismDetected when the §5 guard halts the run.
	Observer learn.Observer

	// Stats is populated during Learn: Queries/Symbols count live SUL
	// traffic, Hits counts cache hits.
	Stats learn.Stats
	// GuardStats is populated during Learn with the voting guard's
	// cumulative cost counters (read with Snapshot while running).
	GuardStats GuardStats
	// WindowStats is populated during Learn with the adaptive window's
	// counters when Window is set (zero value otherwise).
	WindowStats learn.WindowStats
}

// Learn runs the full MAT loop and returns the learned model. Cancelling
// ctx aborts the run within one query round and returns ctx.Err().
func (e *Experiment) Learn(ctx context.Context) (*automata.Mealy, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.SUL == nil || len(e.Alphabet) == 0 {
		return nil, errors.New("core: experiment needs an SUL and an alphabet")
	}
	guard := e.Guard
	if guard == (GuardConfig{}) {
		guard = DefaultGuard()
	}
	workers := e.Workers
	if workers > 1+len(e.SULs) {
		workers = 1 + len(e.SULs)
	}
	// The adaptive in-flight window, when configured, sits in front of the
	// pool's free list and is fed by the guard: every GuardEscalated event
	// is a loss signal that cuts the window multiplicatively. It only
	// makes sense with a pool (workers > 1) — a single shard has nothing
	// to throttle.
	var win *learn.Window
	guardObs := e.Observer
	if e.Window != nil && workers > 1 {
		wcfg := *e.Window
		if wcfg.Max == 0 {
			wcfg.Max = workers
		}
		win = learn.NewWindow(wcfg, e.Observer)
		guardObs = learn.MultiObserver(e.Observer, learn.ObserverFunc(func(ev learn.Event) {
			if _, ok := ev.(learn.GuardEscalated); ok {
				win.OnLoss()
			}
		}))
		defer func() { e.WindowStats = win.Stats() }()
	}
	// One Guardian serves every shard: the voting policy adapts to the
	// link's observed quality, which is a property of the experiment, not
	// of any single replica.
	guardian := NewGuardian(guard, &e.GuardStats, guardObs)
	var oracle learn.Oracle
	if workers > 1 {
		// Concurrent mode: one guarded, counted oracle chain per SUL
		// replica, pooled behind the batch dispatcher. The counter is per
		// shard (each drives exactly one SUL); the stats and the guard
		// state are shared and updated atomically.
		shards := make([]learn.Oracle, 0, workers)
		for _, s := range append([]SUL{e.SUL}, e.SULs...)[:workers] {
			shards = append(shards, guardian.Wrap(learn.Counting(Oracle(s), &e.Stats)))
		}
		pool := learn.NewPool(shards...)
		if win != nil {
			pool.UseWindow(win)
		}
		oracle = pool
	} else {
		oracle = guardian.Wrap(learn.Counting(Oracle(e.SUL), &e.Stats))
	}
	obs := e.Observer
	var cached *learn.CachedOracle
	if !e.DisableCache {
		cached = learn.NewCache(oracle, &e.Stats)
		if e.Store != nil {
			cached.UseStore(e.Store)
		}
		oracle = cached
		if obs != nil {
			// Every hypothesis is a natural synchronisation point: piggyback
			// a cache/traffic snapshot on it so observers can watch live
			// query costs without polling.
			inner := obs
			obs = learn.ObserverFunc(func(ev learn.Event) {
				inner.OnEvent(ev)
				if h, ok := ev.(learn.HypothesisReady); ok {
					inner.OnEvent(learn.CacheSnapshot{
						Round:       h.Round,
						Entries:     cached.Size(),
						LiveQueries: atomic.LoadInt64(&e.Stats.Queries),
						Symbols:     atomic.LoadInt64(&e.Stats.Symbols),
						Hits:        atomic.LoadInt64(&e.Stats.Hits),
					})
				}
			})
		}
	}
	eq := e.Equivalence
	if eq == nil {
		rw := learn.NewRandomWordsOracle(oracle, e.Alphabet, e.Seed+1)
		if workers > 1 {
			rw.Workers = workers
		}
		eq = rw
		if e.Conformance > 0 {
			eq = learn.ChainOracle{rw, &learn.WpMethodOracle{
				Oracle: oracle, Inputs: e.Alphabet, Depth: e.Conformance, Workers: workers,
			}}
		}
	}
	if cached != nil {
		// A counterexample the learner makes no progress on would loop the
		// MAT rounds forever; with a cache in front of a voting guard, the
		// likeliest cause is a wrongly accepted (and therefore permanently
		// cached) answer. Re-vote and repair rather than spin.
		eq = &revalidatedEq{inner: eq, cache: cached}
	}
	runLearner := func() (*automata.Mealy, error) {
		switch e.Learner {
		case LearnerLStar:
			l := learn.NewLStar(oracle, e.Alphabet)
			l.Observer = obs
			l.Warm = e.Warm
			return l.Learn(ctx, eq)
		case LearnerTTT, "":
			d := learn.NewDTLearner(oracle, e.Alphabet)
			d.Observer = obs
			d.Warm = e.Warm
			return d.Learn(ctx, eq)
		default:
			return nil, fmt.Errorf("core: unknown learner %q", e.Learner)
		}
	}
	var model *automata.Mealy
	var err error
	for attempt := 0; ; attempt++ {
		model, err = runLearner()
		var inc *learn.InconsistencyError
		if err == nil || cached == nil || attempt >= maxCacheRepairs || !errors.As(err, &inc) {
			break
		}
		// The learner proved its observations contradict every
		// deterministic machine. Two causes exist: a wrongly accepted
		// answer poisoned the cache (the guard makes that rare, the cache
		// makes it permanent), or the target's behaviour genuinely
		// shifted mid-run (state leaking across resets, as the
		// lossy-retransmit profile does under loss). Re-vote the
		// implicated words and restart — the warm cache answers
		// everything untainted for free; on the last attempt drop the
		// whole cache, which converges whenever the current behaviour is
		// stable, whatever stale entries remain elsewhere.
		if attempt == maxCacheRepairs-1 {
			cached.Clear()
			continue
		}
		for _, w := range inc.Words {
			if _, rerr := cached.Refresh(ctx, w); rerr != nil {
				return nil, rerr
			}
		}
	}
	if err != nil {
		if nd, ok := IsNondeterminism(err); ok && obs != nil {
			obs.OnEvent(learn.NondeterminismDetected{
				Word: nd.Word, Alternatives: len(nd.Observed), Votes: nd.Votes,
			})
		}
		return nil, err
	}
	if e.Store != nil && cached != nil {
		// Best-effort: the store is an accelerator, so neither a seal nor a
		// snapshot failure may turn a successful learn into an error — the
		// next run is merely colder. The seal logs every word a warm
		// rebuild of this model will ask (answered from the cache, or from
		// the model for the few combinations never asked live), which is
		// what makes an unchanged target's relearn free of live membership
		// queries.
		_ = cached.SealWarm(ctx, model, e.Alphabet, e.Learner == LearnerLStar)
		// Snapshot the canonical (minimized, BFS-numbered) form: equivalent
		// machines share one canonical form, so the snapshot's bytes are
		// stable across relearns of an unchanged target no matter which
		// tree or table shape produced them.
		_ = e.Store.SaveModel(model.Minimize())
	}
	return model, nil
}
