// Package core is the Prognosis framework of §2: it wires a System Under
// Learning (a protocol implementation behind an instrumented reference-
// implementation adapter) to the learning module, guards queries against
// nondeterminism (§5), maintains the Oracle Table used for model synthesis
// (§4.3), and exposes the experiment driver used by the command-line tools
// and benchmarks.
//
// The experiment API is context-first: Experiment.Learn takes a
// context.Context, and cancelling it aborts the run mid-round — the pool
// workers, the cache's in-flight waiters, the voting guard, and the
// equivalence search all exit promptly without leaking goroutines.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/automata"
	"repro/internal/learn"
)

// SUL is the System Under Learning: a protocol implementation reachable
// through an Adapter that talks abstract symbols. Step sends one abstract
// input and returns the abstract output; Reset returns both the adapter
// and the implementation to their initial states (Adapter property 3).
type SUL interface {
	Reset() error
	Step(input string) (output string, err error)
}

// Oracle adapts an SUL to the learning module's membership-query interface:
// each query resets the system and replays the word symbol by symbol,
// checking for cancellation between symbols so that aborting a run never
// waits for a long word to finish.
func Oracle(s SUL) learn.Oracle {
	return learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Reset(); err != nil {
			return nil, fmt.Errorf("core: reset: %w", err)
		}
		out := make([]string, 0, len(word))
		for _, in := range word {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := s.Step(in)
			if err != nil {
				return nil, fmt.Errorf("core: step %q: %w", in, err)
			}
			out = append(out, o)
		}
		return out, nil
	})
}

// NondeterminismError reports that repeated executions of the same query
// produced conflicting outputs that never reached the certainty threshold.
// Per §5 this is itself a powerful analysis: Issue 2 (the mvfst stateless
// RESET bug) was discovered exactly this way.
type NondeterminismError struct {
	Word     []string
	Observed map[string]int // distinct output words -> occurrence count
	Votes    int
}

// Error implements error.
func (e *NondeterminismError) Error() string {
	var alts []string
	for out, n := range e.Observed {
		alts = append(alts, fmt.Sprintf("%q x%d", out, n))
	}
	sort.Strings(alts)
	return fmt.Sprintf("core: nondeterministic response to %v after %d votes: %s",
		e.Word, e.Votes, strings.Join(alts, ", "))
}

// IsNondeterminism reports whether err wraps a NondeterminismError and
// returns it.
func IsNondeterminism(err error) (*NondeterminismError, bool) {
	var nd *NondeterminismError
	if errors.As(err, &nd) {
		return nd, true
	}
	return nil, false
}

// GuardConfig tunes the nondeterminism check of §5.
type GuardConfig struct {
	// MinVotes executions are always performed. If they all agree the
	// answer is accepted immediately.
	MinVotes int
	// MaxVotes bounds the retries after a disagreement.
	MaxVotes int
	// Certainty is the fraction of agreeing executions required to accept
	// a majority answer after a disagreement (e.g. 0.9).
	Certainty float64
}

// DefaultGuard mirrors the paper's setup: cheap when the system is
// deterministic, insistent when it is not.
func DefaultGuard() GuardConfig {
	return GuardConfig{MinVotes: 2, MaxVotes: 20, Certainty: 0.9}
}

// Guard wraps an oracle with the nondeterminism check. Each query is
// executed MinVotes times; on disagreement it keeps re-executing up to
// MaxVotes and accepts the majority answer only if it reaches Certainty,
// otherwise it fails with a *NondeterminismError.
//
// The vote tally is derived from the observed-output counts, so a vote
// that errors mid-retry can never leave the tally inconsistent with the
// counts: failed executions simply are not votes. Underlying query errors
// are wrapped with the query word (and errors.Is/As still see through the
// wrapping), so a failure deep in a retry loop stays diagnosable.
func Guard(o learn.Oracle, cfg GuardConfig) learn.Oracle {
	if cfg.MinVotes < 1 {
		cfg.MinVotes = 1
	}
	if cfg.MaxVotes < cfg.MinVotes {
		cfg.MaxVotes = cfg.MinVotes
	}
	return learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		counts := make(map[string]int)
		first := make(map[string][]string)
		votes := func() int {
			n := 0
			for _, c := range counts {
				n += c
			}
			return n
		}
		ask := func() (string, error) {
			out, err := o.Query(ctx, word)
			if err != nil {
				// The failed execution is not a vote: counts are untouched,
				// so the tally stays consistent however far the retry loop
				// got. Wrap with the word for diagnosability.
				return "", fmt.Errorf("core: guard query %v after %d votes: %w", word, votes(), err)
			}
			key := strings.Join(out, "\x1e")
			counts[key]++
			if _, ok := first[key]; !ok {
				first[key] = out
			}
			return key, nil
		}
		for i := 0; i < cfg.MinVotes; i++ {
			if _, err := ask(); err != nil {
				return nil, err
			}
		}
		if len(counts) == 1 {
			for k := range counts {
				return first[k], nil
			}
		}
		for votes() < cfg.MaxVotes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if _, err := ask(); err != nil {
				return nil, err
			}
			v := votes()
			for k, n := range counts {
				if float64(n) >= cfg.Certainty*float64(v) && v >= cfg.MinVotes+2 {
					return first[k], nil
				}
			}
		}
		return nil, &NondeterminismError{Word: word, Observed: counts, Votes: votes()}
	})
}

// LearnerKind selects the learning algorithm.
type LearnerKind string

// Available learners.
const (
	LearnerLStar LearnerKind = "lstar"
	LearnerTTT   LearnerKind = "ttt" // discrimination-tree learner
)

// Experiment wires an SUL to the learning module. Zero-value fields get
// sensible defaults from Learn.
type Experiment struct {
	Alphabet []string
	SUL      SUL
	// SULs optionally provides additional behaviourally identical replicas
	// of SUL, each with its own reset state. Together with Workers > 1 they
	// form the sharded pool the concurrent query engine fans batches
	// across. SUL itself is always shard 0; SULs are shards 1..n.
	SULs    []SUL
	Workers int
	Learner LearnerKind
	// Equivalence is the equivalence oracle; when nil a random-words
	// oracle over the guarded SUL with the given seed is used (partitioned
	// across Workers goroutines in concurrent mode).
	Equivalence learn.EquivalenceOracle
	Guard       GuardConfig
	Seed        int64
	// DisableCache turns off the prefix-tree query cache (for ablation).
	DisableCache bool
	// Observer, when set, receives the typed event stream of the run:
	// RoundStarted / HypothesisReady / CounterexampleFound from the
	// learner, CacheSnapshot once per hypothesis (only while the cache is
	// enabled — a DisableCache run has no cache to snapshot), and
	// NondeterminismDetected when the §5 guard halts the run.
	Observer learn.Observer

	// Stats is populated during Learn: Queries/Symbols count live SUL
	// traffic, Hits counts cache hits.
	Stats learn.Stats
}

// Learn runs the full MAT loop and returns the learned model. Cancelling
// ctx aborts the run within one query round and returns ctx.Err().
func (e *Experiment) Learn(ctx context.Context) (*automata.Mealy, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.SUL == nil || len(e.Alphabet) == 0 {
		return nil, errors.New("core: experiment needs an SUL and an alphabet")
	}
	guard := e.Guard
	if guard == (GuardConfig{}) {
		guard = DefaultGuard()
	}
	workers := e.Workers
	if workers > 1+len(e.SULs) {
		workers = 1 + len(e.SULs)
	}
	var oracle learn.Oracle
	if workers > 1 {
		// Concurrent mode: one guarded, counted oracle chain per SUL
		// replica, pooled behind the batch dispatcher. The guard and the
		// counter are per shard (each drives exactly one SUL); the stats
		// are shared and updated atomically.
		shards := make([]learn.Oracle, 0, workers)
		for _, s := range append([]SUL{e.SUL}, e.SULs...)[:workers] {
			shards = append(shards, Guard(learn.Counting(Oracle(s), &e.Stats), guard))
		}
		oracle = learn.NewPool(shards...)
	} else {
		oracle = Guard(learn.Counting(Oracle(e.SUL), &e.Stats), guard)
	}
	obs := e.Observer
	if !e.DisableCache {
		cached := learn.NewCache(oracle, &e.Stats)
		oracle = cached
		if obs != nil {
			// Every hypothesis is a natural synchronisation point: piggyback
			// a cache/traffic snapshot on it so observers can watch live
			// query costs without polling.
			inner := obs
			obs = learn.ObserverFunc(func(ev learn.Event) {
				inner.OnEvent(ev)
				if h, ok := ev.(learn.HypothesisReady); ok {
					inner.OnEvent(learn.CacheSnapshot{
						Round:       h.Round,
						Entries:     cached.Size(),
						LiveQueries: atomic.LoadInt64(&e.Stats.Queries),
						Symbols:     atomic.LoadInt64(&e.Stats.Symbols),
						Hits:        atomic.LoadInt64(&e.Stats.Hits),
					})
				}
			})
		}
	}
	eq := e.Equivalence
	if eq == nil {
		rw := learn.NewRandomWordsOracle(oracle, e.Alphabet, e.Seed+1)
		if workers > 1 {
			rw.Workers = workers
		}
		eq = rw
	}
	var model *automata.Mealy
	var err error
	switch e.Learner {
	case LearnerLStar:
		l := learn.NewLStar(oracle, e.Alphabet)
		l.Observer = obs
		model, err = l.Learn(ctx, eq)
	case LearnerTTT, "":
		d := learn.NewDTLearner(oracle, e.Alphabet)
		d.Observer = obs
		model, err = d.Learn(ctx, eq)
	default:
		return nil, fmt.Errorf("core: unknown learner %q", e.Learner)
	}
	if err != nil {
		if nd, ok := IsNondeterminism(err); ok && obs != nil {
			obs.OnEvent(learn.NondeterminismDetected{
				Word: nd.Word, Alternatives: len(nd.Observed), Votes: nd.Votes,
			})
		}
		return nil, err
	}
	return model, nil
}
