package core

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Process-wide guard metric families. Every Guardian — across all
// concurrent experiments in the process — feeds the same counters, so a
// prognosisd scrape sees fleet-wide voting cost; per-run cost stays
// available through GuardStats snapshots (lab.Result.Metrics).
var (
	metricGuardVotes = metrics.Default().Counter("prognosis_guard_votes_total",
		"SUL executions performed by the §5 voting guard.")
	metricGuardEscalations = metrics.Default().Counter("prognosis_guard_escalations_total",
		"Vote-budget escalations (each also emitted as a guard_escalated event).")
	metricGuardRetried = metrics.Default().Counter("prognosis_guard_retried_queries_total",
		"Queries that saw at least one disagreeing execution.")
	metricGuardWasted = metrics.Default().Counter("prognosis_guard_wasted_votes_total",
		"Votes spent beyond the MinVotes floor — the price of link flakiness.")
)

// The addX helpers below are the single update path for guard cost
// counters: one atomic add into the per-guardian snapshot struct, one
// into the process-wide metrics plane.

func (s *GuardStats) addVotes(n int64) {
	atomic.AddInt64(&s.Votes, n)
	metricGuardVotes.Add(n)
}

func (s *GuardStats) addEscalations(n int64) {
	atomic.AddInt64(&s.Escalations, n)
	metricGuardEscalations.Add(n)
}

func (s *GuardStats) addRetried(n int64) {
	atomic.AddInt64(&s.RetriedQueries, n)
	metricGuardRetried.Add(n)
}

func (s *GuardStats) addWasted(n int64) {
	atomic.AddInt64(&s.WastedVotes, n)
	metricGuardWasted.Add(n)
}
