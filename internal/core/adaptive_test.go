package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/learn"
)

// scriptedOracle answers each query by calling script with the running
// execution count for that word.
type scriptedOracle struct {
	mu     sync.Mutex
	calls  map[string]int
	script func(word []string, nth int) []string
}

func newScripted(script func(word []string, nth int) []string) *scriptedOracle {
	return &scriptedOracle{calls: map[string]int{}, script: script}
}

func (s *scriptedOracle) Query(ctx context.Context, word []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	k := strings.Join(word, " ")
	n := s.calls[k]
	s.calls[k]++
	s.mu.Unlock()
	return s.script(word, n), nil
}

// echo answers every symbol with itself — a deterministic target.
func echo(word []string, _ int) []string {
	return append([]string(nil), word...)
}

func TestAdaptiveGuardCheapWhenClean(t *testing.T) {
	cfg := DefaultAdaptiveGuard()
	cfg.PriorDisagreement = 0 // a link known clean
	var stats GuardStats
	g := NewGuardian(cfg, &stats, nil)
	oracle := g.Wrap(newScripted(echo))
	word := []string{"a", "b", "c"}
	out, err := oracle.Query(context.Background(), word)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(out, " ") != "a b c" {
		t.Fatalf("out = %v", out)
	}
	if got := stats.Snapshot(); got.Votes != int64(cfg.MinVotes) || got.WastedVotes != 0 || got.Escalations != 0 {
		t.Fatalf("clean query cost more than the floor: %+v", got)
	}
}

// TestAdaptiveGuardEscalatesOnDisagreement: injected flakiness must raise
// the vote budget, emit GuardEscalated events, and still resolve to the
// majority answer.
func TestAdaptiveGuardEscalatesOnDisagreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 30% of executions corrupt the final output symbol, each with a
	// different fault pattern — aggressive but outvotable link noise.
	// (A single 30%-likely alternative would rightly read as genuine
	// nondeterminism: it never falls ModeLead behind the clean answer.)
	flaky := newScripted(func(word []string, _ int) []string {
		out := echo(word, 0)
		if rng.Float64() < 0.3 {
			out[len(out)-1] = fmt.Sprintf("corrupt-%d", rng.Intn(6))
		}
		return out
	})
	cfg := DefaultAdaptiveGuard()
	cfg.PriorDisagreement = 0
	var stats GuardStats
	var events []learn.GuardEscalated
	g := NewGuardian(cfg, &stats, learn.ObserverFunc(func(e learn.Event) {
		if ge, ok := e.(learn.GuardEscalated); ok {
			events = append(events, ge)
		}
	}))
	oracle := g.Wrap(flaky)
	word := []string{"a", "b"}
	for i := 0; i < 40; i++ {
		out, err := oracle.Query(context.Background(), word)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if out[1] != "b" {
			t.Fatalf("query %d: corruption won the vote: %v", i, out)
		}
	}
	st := stats.Snapshot()
	if st.RetriedQueries == 0 || st.WastedVotes == 0 {
		t.Fatalf("no flakiness recorded: %+v", st)
	}
	if len(events) == 0 || st.Escalations != int64(len(events)) {
		t.Fatalf("escalations %d inconsistent with %d events", st.Escalations, len(events))
	}
	for _, ev := range events {
		if ev.Budget > cfg.MaxVotes || ev.Budget <= ev.Votes {
			t.Fatalf("bad escalation event: %+v", ev)
		}
	}
	if g.Disagreement() == 0 {
		t.Fatal("disagreement EWMA never moved")
	}
}

// TestAdaptiveGuardDecaysOnCleanStreak: after the link heals, the EWMA —
// and with it the per-query sampling — must fall back to the MinVotes
// floor.
func TestAdaptiveGuardDecaysOnCleanStreak(t *testing.T) {
	cfg := DefaultAdaptiveGuard()
	var stats GuardStats
	g := NewGuardian(cfg, &stats, nil)
	if g.InitialVotes() <= cfg.MinVotes {
		t.Fatalf("pessimistic prior ignored: initial votes %d", g.InitialVotes())
	}
	oracle := g.Wrap(newScripted(echo))
	for i := 0; i < 60; i++ {
		if _, err := oracle.Query(context.Background(), []string{"a"}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Disagreement() > 0.01 {
		t.Fatalf("EWMA did not decay on a clean streak: %f", g.Disagreement())
	}
	if g.InitialVotes() != cfg.MinVotes {
		t.Fatalf("initial votes %d did not return to the floor %d", g.InitialVotes(), cfg.MinVotes)
	}
}

// TestAdaptiveGuardNeverExceedsMaxVotes: a genuine coin flip must end in
// NondeterminismError within the MaxVotes ceiling, never beyond it.
func TestAdaptiveGuardNeverExceedsMaxVotes(t *testing.T) {
	coin := newScripted(func(word []string, nth int) []string {
		out := echo(word, 0)
		if nth%2 == 1 { // strict alternation: no answer can ever lead 3x
			out[0] = "heads"
		}
		return out
	})
	cfg := DefaultAdaptiveGuard()
	cfg.MaxVotes = 24
	var stats GuardStats
	g := NewGuardian(cfg, &stats, nil)
	_, err := g.Wrap(coin).Query(context.Background(), []string{"a"})
	nd, ok := IsNondeterminism(err)
	if !ok {
		t.Fatalf("want nondeterminism, got %v", err)
	}
	if nd.Votes > cfg.MaxVotes {
		t.Fatalf("guard cast %d votes, ceiling %d", nd.Votes, cfg.MaxVotes)
	}
	if st := stats.Snapshot(); st.Votes != int64(nd.Votes) {
		t.Fatalf("stats votes %d != error votes %d", st.Votes, nd.Votes)
	}
}

// TestAdaptiveGuardPositionalConsensus: corrupting a *middle* symbol must
// not poison later positions — executions disagreeing with the accepted
// prefix lose their vote, and the reconstructed answer is the clean one.
func TestAdaptiveGuardPositionalConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	flaky := newScripted(func(word []string, _ int) []string {
		out := echo(word, 0)
		if rng.Float64() < 0.35 {
			i := rng.Intn(len(out))
			// A mid-word fault corrupts the rest of the execution, the way
			// a lost datagram desynchronises a real connection suffix.
			for ; i < len(out); i++ {
				out[i] = "noise"
			}
		}
		return out
	})
	cfg := DefaultAdaptiveGuard()
	g := NewGuardian(cfg, nil, nil)
	oracle := g.Wrap(flaky)
	word := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 25; i++ {
		out, err := oracle.Query(context.Background(), word)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if strings.Join(out, " ") != "a b c d e f" {
			t.Fatalf("query %d: consensus corrupted: %v", i, out)
		}
	}
}

// TestGuardianSharedAcrossShards: one Guardian wrapping several shard
// oracles shares its EWMA — disagreements seen by one shard raise the
// sampling of all.
func TestGuardianSharedAcrossShards(t *testing.T) {
	cfg := DefaultAdaptiveGuard()
	cfg.PriorDisagreement = 0
	g := NewGuardian(cfg, nil, nil)
	nth := 0
	flakyOnce := g.Wrap(newScripted(func(word []string, n int) []string {
		out := echo(word, 0)
		nth++
		if nth == 2 {
			out[0] = "corrupt"
		}
		return out
	}))
	clean := g.Wrap(newScripted(echo))
	if _, err := flakyOnce.Query(context.Background(), []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if g.Disagreement() == 0 {
		t.Fatal("shard 0's disagreement not recorded")
	}
	if g.InitialVotes() <= cfg.MinVotes {
		t.Fatal("shard 1 does not see the raised sampling")
	}
	if _, err := clean.Query(context.Background(), []string{"b"}); err != nil {
		t.Fatal(err)
	}
}
