package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
	"repro/internal/tcpwire"
)

// bg is the default context for tests that never cancel.
var bg = context.Background()

// quicSUL builds the standard QUIC learning setup against an in-process
// server.
func quicSUL(profile quicsim.Profile) SUL {
	srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: 7})
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, reference.ServerTransport(srv))
	return &resetBoth{cli: cli, srv: srv}
}

// resetBoth resets the reference client and the implementation together
// (Adapter property 3 spans both sides).
type resetBoth struct {
	cli *reference.QUICClient
	srv *quicsim.Server
}

func (r *resetBoth) Reset() error {
	r.srv.Reset()
	return r.cli.Reset()
}

func (r *resetBoth) Step(in string) (string, error) { return r.cli.Step(in) }

// TestLearnGoogleQUIC is the flagship integration test: active learning
// over the real packet path recovers exactly the 12-state, 84-transition
// model the paper reports for Google QUIC.
func TestLearnGoogleQUIC(t *testing.T) {
	exp := &Experiment{
		Alphabet:    quicsim.InputAlphabet(),
		SUL:         quicSUL(quicsim.ProfileGoogle),
		Learner:     LearnerTTT,
		Equivalence: &learn.ModelOracle{Model: quicsim.GroundTruth(quicsim.ProfileGoogle)},
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 12 || m.NumTransitions() != 84 {
		t.Fatalf("learned %d states / %d transitions, want 12/84", m.NumStates(), m.NumTransitions())
	}
	if eq, ce := quicsim.GroundTruth(quicsim.ProfileGoogle).Equivalent(m); !eq {
		t.Fatalf("learned model differs from spec on %v", ce)
	}
	t.Logf("google: %d live queries, %d symbols, %d cache hits",
		exp.Stats.Queries, exp.Stats.Symbols, exp.Stats.Hits)
}

// TestLearnQuiche recovers the 8-state, 56-transition Quiche model.
func TestLearnQuiche(t *testing.T) {
	exp := &Experiment{
		Alphabet:    quicsim.InputAlphabet(),
		SUL:         quicSUL(quicsim.ProfileQuiche),
		Learner:     LearnerTTT,
		Equivalence: &learn.ModelOracle{Model: quicsim.GroundTruth(quicsim.ProfileQuiche)},
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 8 || m.NumTransitions() != 56 {
		t.Fatalf("learned %d states / %d transitions, want 8/56", m.NumStates(), m.NumTransitions())
	}
	t.Logf("quiche: %d live queries, %d symbols", exp.Stats.Queries, exp.Stats.Symbols)
}

// TestLearnQuicheWithRandomEquivalence drops the omniscient oracle and uses
// the heuristic random-words oracle the paper actually runs with.
func TestLearnQuicheWithRandomEquivalence(t *testing.T) {
	exp := &Experiment{
		Alphabet: quicsim.InputAlphabet(),
		SUL:      quicSUL(quicsim.ProfileQuiche),
		Learner:  LearnerTTT,
		Seed:     3,
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := quicsim.GroundTruth(quicsim.ProfileQuiche).Equivalent(m); !eq {
		t.Fatalf("learned model differs from spec on %v", ce)
	}
}

// TestLearnMvfstDetectsNondeterminism reproduces §6.2.4: learning mvfst
// fails with a nondeterminism report on a post-close probe ("Prognosis
// could learn models for two of the three implementations").
func TestLearnMvfstDetectsNondeterminism(t *testing.T) {
	exp := &Experiment{
		Alphabet: quicsim.InputAlphabet(),
		SUL:      quicSUL(quicsim.ProfileMvfst),
		Learner:  LearnerTTT,
		Seed:     5,
	}
	_, err := exp.Learn(bg)
	if err == nil {
		t.Fatal("expected nondeterminism to abort learning")
	}
	nd, ok := IsNondeterminism(err)
	if !ok {
		t.Fatalf("unexpected error kind: %v", err)
	}
	if len(nd.Observed) < 2 {
		t.Fatalf("nondeterminism report lists %d alternatives", len(nd.Observed))
	}
	// The witness word must include the Issue 2 trigger sequence.
	var sawTrigger bool
	for _, sym := range nd.Word {
		if sym == quicsim.SymHandshakeHD || sym == quicsim.SymShortHD ||
			sym == quicsim.SymInitialHD || sym == quicsim.SymInitialCrypto {
			sawTrigger = true
		}
	}
	if !sawTrigger {
		t.Fatalf("nondeterminism witness %v does not exercise the close path", nd.Word)
	}
	t.Logf("nondeterminism witness: %v", nd)
}

// tcpSUL builds the standard TCP learning setup.
func tcpSUL() SUL {
	srv := tcpsim.NewServer(tcpsim.Config{Port: 44344, Seed: 5, StrictAckCheck: true})
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	tr := reference.TCPTransportFunc(func(raw []byte) [][]byte {
		seg, err := tcpwire.Decode(raw, src, dst)
		if err != nil {
			return nil
		}
		var out [][]byte
		for _, resp := range srv.Handle(seg) {
			out = append(out, resp.Encode(dst, src))
		}
		return out
	})
	cli := reference.NewTCPClient(reference.TCPClientConfig{Seed: 3, DstPort: 44344, SrcAddr: src, DstAddr: dst}, tr)
	return &tcpBoth{cli: cli, srv: srv}
}

type tcpBoth struct {
	cli *reference.TCPClient
	srv *tcpsim.Server
}

func (r *tcpBoth) Reset() error {
	r.srv.Reset()
	return r.cli.Reset()
}

func (r *tcpBoth) Step(in string) (string, error) { return r.cli.Step(in) }

// TestLearnTCPFull reproduces §6.1: the TCP stack's model over the
// seven-symbol alphabet has 6 states and 42 transitions.
func TestLearnTCPFull(t *testing.T) {
	exp := &Experiment{
		Alphabet: reference.TCPAlphabet(),
		SUL:      tcpSUL(),
		Learner:  LearnerTTT,
		Seed:     9,
	}
	m, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 6 || m.NumTransitions() != 42 {
		t.Fatalf("learned %d states / %d transitions, want 6/42\n%s", m.NumStates(), m.NumTransitions(), m)
	}
	t.Logf("tcp: %d live queries, %d symbols (paper: 4,726 queries)", exp.Stats.Queries, exp.Stats.Symbols)

	// Cross-check with L* on the same system.
	exp2 := &Experiment{Alphabet: reference.TCPAlphabet(), SUL: tcpSUL(), Learner: LearnerLStar, Seed: 9}
	m2, err := exp2.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := m.Equivalent(m2); !eq {
		t.Fatalf("lstar and ttt disagree on %v", ce)
	}
}

// TestGuardAcceptsDeterministic: a deterministic oracle passes through the
// guard with minimal overhead.
func TestGuardAcceptsDeterministic(t *testing.T) {
	var st learn.Stats
	base := learn.Counting(learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		out := make([]string, len(w))
		for i := range out {
			out[i] = "ok"
		}
		return out, nil
	}), &st)
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 10, Certainty: 0.9})
	out, err := g.Query(bg, []string{"a", "b"})
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if st.Queries != 2 {
		t.Fatalf("deterministic query used %d votes, want 2", st.Queries)
	}
}

// TestGuardFlagsCoinFlip: a 50/50 answer can never reach 90% certainty.
func TestGuardFlagsCoinFlip(t *testing.T) {
	i := 0
	base := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		i++
		if i%2 == 0 {
			return []string{"heads"}, nil
		}
		return []string{"tails"}, nil
	})
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 12, Certainty: 0.9})
	_, err := g.Query(bg, []string{"flip"})
	nd, ok := IsNondeterminism(err)
	if !ok {
		t.Fatalf("expected nondeterminism, got %v", err)
	}
	if nd.Votes != 12 {
		t.Fatalf("votes = %d, want 12 (MaxVotes)", nd.Votes)
	}
}

// TestGuardAcceptsRareGlitch: a transient 1-in-N environmental glitch (the
// packet-loss scenario §5 describes) is outvoted and the majority answer
// is returned.
func TestGuardAcceptsRareGlitch(t *testing.T) {
	i := 0
	base := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		i++
		if i == 2 {
			return []string{"glitch"}, nil
		}
		return []string{"steady"}, nil
	})
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 40, Certainty: 0.9})
	out, err := g.Query(bg, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "steady" {
		t.Fatalf("majority answer = %q", out[0])
	}
}

// TestGuardVotesConsistentWithObserved pins the §5 bookkeeping invariant:
// the reported vote total is derived from the observed-output counts, so
// the two can never disagree — however the retry loop ends.
func TestGuardVotesConsistentWithObserved(t *testing.T) {
	i := 0
	base := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		i++
		return []string{fmt.Sprintf("answer-%d", i%3)}, nil // 3-way disagreement
	})
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 9, Certainty: 0.9})
	_, err := g.Query(bg, []string{"w"})
	nd, ok := IsNondeterminism(err)
	if !ok {
		t.Fatalf("expected nondeterminism, got %v", err)
	}
	sum := 0
	for _, n := range nd.Observed {
		sum += n
	}
	if sum != nd.Votes {
		t.Fatalf("votes (%d) inconsistent with observed counts (sum %d)", nd.Votes, sum)
	}
}

// TestGuardWrapsRetryError: a vote that errors after partial retries must
// surface the underlying error (errors.Is still sees it) wrapped with the
// query word, and must not be misreported as nondeterminism.
func TestGuardWrapsRetryError(t *testing.T) {
	boom := errors.New("connection torn down")
	i := 0
	base := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		i++
		switch {
		case i <= 2:
			// Disagree on the first two votes to force the retry loop.
			return []string{fmt.Sprintf("v%d", i)}, nil
		default:
			return nil, boom
		}
	})
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 20, Certainty: 0.9})
	_, err := g.Query(bg, []string{"SYN", "ACK"})
	if err == nil {
		t.Fatal("retry error swallowed")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("underlying error not preserved: %v", err)
	}
	if _, ok := IsNondeterminism(err); ok {
		t.Fatalf("query failure misreported as nondeterminism: %v", err)
	}
	if !strings.Contains(err.Error(), "SYN") || !strings.Contains(err.Error(), "ACK") {
		t.Fatalf("error does not name the query word: %v", err)
	}
}

// TestGuardHonorsCancel: cancelling the context stops the vote loop with
// ctx.Err().
func TestGuardHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	i := 0
	base := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		i++
		if i == 3 {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("v%d", i%2)}, nil // keep disagreeing
	})
	g := Guard(base, GuardConfig{MinVotes: 2, MaxVotes: 100, Certainty: 0.99})
	_, err := g.Query(ctx, []string{"x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("guard error = %v, want context.Canceled", err)
	}
	if i > 4 {
		t.Fatalf("guard kept voting after cancellation: %d executions", i)
	}
}

// TestOracleResetsPerQuery: each membership query must observe a fresh
// system.
func TestOracleResetsPerQuery(t *testing.T) {
	resets := 0
	s := &fakeSUL{
		reset: func() error { resets++; return nil },
		step:  func(in string) (string, error) { return "out", nil },
	}
	o := Oracle(s)
	for i := 0; i < 3; i++ {
		if _, err := o.Query(bg, []string{"a"}); err != nil {
			t.Fatal(err)
		}
	}
	if resets != 3 {
		t.Fatalf("resets = %d, want 3", resets)
	}
}

func TestOracleStepErrorPropagates(t *testing.T) {
	s := &fakeSUL{
		reset: func() error { return nil },
		step:  func(in string) (string, error) { return "", errors.New("boom") },
	}
	if _, err := Oracle(s).Query(bg, []string{"a"}); err == nil {
		t.Fatal("step error swallowed")
	}
}

func TestExperimentValidation(t *testing.T) {
	if _, err := (&Experiment{}).Learn(bg); err == nil {
		t.Fatal("empty experiment accepted")
	}
	exp := &Experiment{Alphabet: []string{"a"}, SUL: &fakeSUL{
		reset: func() error { return nil },
		step:  func(string) (string, error) { return "o", nil },
	}, Learner: "bogus"}
	if _, err := exp.Learn(bg); err == nil {
		t.Fatal("bogus learner accepted")
	}
}

// TestExperimentObserverEvents: the experiment-level observer sees the
// learner's round events plus per-round cache snapshots, and a
// nondeterministic run ends with NondeterminismDetected.
func TestExperimentObserverEvents(t *testing.T) {
	var events []learn.Event
	exp := &Experiment{
		Alphabet: quicsim.InputAlphabet(),
		SUL:      quicSUL(quicsim.ProfileQuiche),
		Equivalence: &learn.ModelOracle{
			Model: quicsim.GroundTruth(quicsim.ProfileQuiche),
		},
		Observer: learn.ObserverFunc(func(e learn.Event) { events = append(events, e) }),
	}
	if _, err := exp.Learn(bg); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind()]++
	}
	if kinds["round_started"] == 0 || kinds["hypothesis_ready"] == 0 {
		t.Fatalf("missing round events: %v", kinds)
	}
	if kinds["cache_snapshot"] != kinds["hypothesis_ready"] {
		t.Fatalf("want one cache snapshot per hypothesis, got %v", kinds)
	}

	// A nondeterministic target ends with NondeterminismDetected.
	events = nil
	nd := &Experiment{
		Alphabet: quicsim.InputAlphabet(),
		SUL:      quicSUL(quicsim.ProfileMvfst),
		Seed:     5,
		Observer: learn.ObserverFunc(func(e learn.Event) { events = append(events, e) }),
	}
	if _, err := nd.Learn(bg); err == nil {
		t.Fatal("expected mvfst nondeterminism")
	}
	last := events[len(events)-1]
	det, ok := last.(learn.NondeterminismDetected)
	if !ok {
		t.Fatalf("final event is %T, want NondeterminismDetected", last)
	}
	if det.Alternatives < 2 || det.Votes == 0 || len(det.Word) == 0 {
		t.Fatalf("empty nondeterminism report: %+v", det)
	}
}

// TestCacheAblation verifies the cache reduces live queries on a real
// learning run (the ablation DESIGN.md calls out).
func TestCacheAblation(t *testing.T) {
	with := &Experiment{Alphabet: reference.TCPAlphabet(), SUL: tcpSUL(), Seed: 9}
	if _, err := with.Learn(bg); err != nil {
		t.Fatal(err)
	}
	without := &Experiment{Alphabet: reference.TCPAlphabet(), SUL: tcpSUL(), Seed: 9, DisableCache: true}
	if _, err := without.Learn(bg); err != nil {
		t.Fatal(err)
	}
	if with.Stats.Queries >= without.Stats.Queries {
		t.Fatalf("cache did not help: %d (with) vs %d (without)", with.Stats.Queries, without.Stats.Queries)
	}
	t.Logf("live queries: with cache %d, without %d", with.Stats.Queries, without.Stats.Queries)
}

type fakeSUL struct {
	reset func() error
	step  func(string) (string, error)
}

func (f *fakeSUL) Reset() error                   { return f.reset() }
func (f *fakeSUL) Step(in string) (string, error) { return f.step(in) }

// Benchmark-ish sanity: learning Google twice yields identical models
// (full determinism of the pipeline).
func TestLearningIsReproducible(t *testing.T) {
	learnOnce := func() (states, transitions int, err error) {
		exp := &Experiment{
			Alphabet: quicsim.InputAlphabet(),
			SUL:      quicSUL(quicsim.ProfileGoogle),
			Seed:     21,
		}
		m, err := exp.Learn(bg)
		if err != nil {
			return 0, 0, err
		}
		return m.NumStates(), m.NumTransitions(), nil
	}
	s1, t1, err := learnOnce()
	if err != nil {
		t.Fatal(err)
	}
	s2, t2, err := learnOnce()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || t1 != t2 {
		t.Fatalf("non-reproducible: %d/%d vs %d/%d", s1, t1, s2, t2)
	}
	if s1 != 12 {
		t.Logf("note: random equivalence oracle found %d of 12 states", s1)
	}
}
