// Package jsonlog implements the crash-tolerant, versioned JSONL log file
// shared by the persistent query store (internal/learn) and the campaign
// checkpoint (internal/lab): a header line naming the format and version,
// followed by one JSON record per line. Appends are single complete-line
// writes; recovery keeps the longest valid prefix and truncates the rest,
// so a writer killed mid-append costs at most the line in flight.
package jsonlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
)

// header is the first line of every log.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// Recover scans an opened log file: it validates the header (format must
// match and the version must not exceed maxVersion) and feeds every
// complete, newline-terminated line after it to accept, which returns
// false to reject an undecodable record. Scanning stops at the first
// rejected or unterminated line — a line missing its trailing newline is
// a crashed append even when its bytes happen to parse, and accepting it
// would make the next append glue two records onto one line — and the
// invalid tail is truncated away, leaving the file positioned at the end
// of the valid prefix, ready for appends.
//
// headerOK=false means the file was empty, foreign, or from a future
// version: nothing was read and the caller should Reset it.
func Recover(f *os.File, format string, maxVersion int, accept func(line []byte) bool) (headerOK bool, err error) {
	if _, err := f.Seek(0, 0); err != nil {
		return false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	line, rerr := r.ReadBytes('\n')
	var hdr header
	if rerr != nil || json.Unmarshal(line, &hdr) != nil ||
		hdr.Format != format || hdr.Version > maxVersion {
		return false, nil
	}
	good := int64(len(line))
	for {
		line, rerr = r.ReadBytes('\n')
		if rerr != nil || !bytes.HasSuffix(line, []byte{'\n'}) || !accept(line) {
			break
		}
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		return true, err
	}
	_, err = f.Seek(good, 0)
	return true, err
}

// Reset empties the file down to a fresh header.
func Reset(f *os.File, format string, version int) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	b, _ := json.Marshal(header{Format: format, Version: version})
	_, err := f.Write(append(b, '\n'))
	return err
}

// Marshal renders one record as a complete log line (with the trailing
// newline), so callers can issue it as a single Write.
func Marshal(record any) ([]byte, error) {
	b, err := json.Marshal(record)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
