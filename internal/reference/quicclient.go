// Package reference implements the instrumented reference implementations
// that serve as the paper's concretization oracles (§3.2): a QUIC client in
// the role of QUIC-Tracker and a TCP client in the role of the Scapy-based
// mapper. Both enforce the five Adapter properties:
//
//  1. no unrequested packets reach the target (reactive packets such as
//     ACKs are queued and folded into later requested symbols),
//  2. concrete packets match the requested abstract symbols,
//  3. both endpoints reset on request,
//  4. every exchange is recorded with its abstract and concrete forms for
//     the Oracle Table, and
//  5. responses are abstracted back to the learner's alphabet.
package reference

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/quiccrypto"
	"repro/internal/quicsim"
	"repro/internal/quicwire"
)

// Transport delivers one client datagram to the target implementation and
// returns the datagrams the target sends back. Implementations exist for
// in-memory servers and UDP sockets.
type Transport interface {
	Send(src string, datagram []byte) [][]byte
}

// TransportFunc adapts a function to Transport.
type TransportFunc func(src string, datagram []byte) [][]byte

// Send implements Transport.
func (f TransportFunc) Send(src string, datagram []byte) [][]byte { return f(src, datagram) }

// ServerTransport wraps an in-process quicsim.Server as a Transport.
func ServerTransport(s *quicsim.Server) Transport {
	return TransportFunc(func(src string, datagram []byte) [][]byte {
		return s.HandleDatagram(src, datagram)
	})
}

// ConcretePacket is the concrete-alphabet symbol recorded in the Oracle
// Table: the structured form of one QUIC packet.
type ConcretePacket struct {
	Type         string           `json:"type"`
	PacketNumber uint64           `json:"packetNumber"`
	Frames       []quicwire.Frame `json:"frames"`
}

// Exchange is one abstract I/O step together with its concrete packets,
// the raw material of the Oracle Table (Adapter property 4).
type Exchange struct {
	AbstractIn  string
	AbstractOut string
	ConcreteIn  []ConcretePacket
	ConcreteOut []ConcretePacket
}

// QUICClientConfig parameterizes the reference client.
type QUICClientConfig struct {
	Seed int64
	// RetryFromNewPort reproduces Issue 3: after receiving a Retry the
	// client reopens its socket on a fresh port, so the token it returns
	// no longer matches its source address.
	RetryFromNewPort bool
	// BasePort is the client's first source port.
	BasePort int
}

// QUICClient is the instrumented QUIC reference client. It is not safe for
// concurrent use; the learning loop is sequential.
type QUICClient struct {
	cfg   QUICClientConfig
	tr    Transport
	seq   int // connection attempt counter, drives fresh CIDs
	port  int
	trace []Exchange

	dcid, scid   []byte
	clientRandom []byte
	serverRandom []byte
	retryToken   []byte
	keys         [3]struct{ send, recv *quiccrypto.Keys }
	placeholder  [3]struct{ send *quiccrypto.Keys }
	sendPN       [3]uint64
	largestRecv  [3]uint64
	ackQueue     [3]bool // queued reactive ACKs per space (property 1)
	fcRaises     int
	streamSent   uint64
	reqCount     int
}

// NewQUICClient returns a client speaking to the given transport.
func NewQUICClient(cfg QUICClientConfig, tr Transport) *QUICClient {
	if cfg.BasePort == 0 {
		cfg.BasePort = 40000
	}
	c := &QUICClient{cfg: cfg, tr: tr}
	c.Reset()
	return c
}

// src returns the client's current source address.
func (c *QUICClient) src() string { return fmt.Sprintf("10.0.0.2:%d", c.port) }

// Reset implements Adapter property (3): a fresh connection with fresh CIDs
// and cleared crypto state. The per-reset values are derived from the seed
// and attempt counter so runs are reproducible.
func (c *QUICClient) Reset() error {
	c.seq++
	c.port = c.cfg.BasePort
	c.dcid = clientSeedBytes(c.cfg.Seed, c.seq, "dcid", quicsim.CIDLen)
	c.scid = clientSeedBytes(c.cfg.Seed, c.seq, "scid", quicsim.CIDLen)
	c.clientRandom = clientSeedBytes(c.cfg.Seed, c.seq, "client-random", 32)
	c.serverRandom = nil
	c.retryToken = nil
	c.keys = [3]struct{ send, recv *quiccrypto.Keys }{}
	c.placeholder = [3]struct{ send *quiccrypto.Keys }{}
	c.sendPN = [3]uint64{}
	c.largestRecv = [3]uint64{}
	c.ackQueue = [3]bool{}
	c.fcRaises = 0
	c.streamSent = 0
	c.reqCount = 0
	clientSecret, serverSecret := quiccrypto.InitialSecrets(c.dcid)
	c.keys[0].send = mustKeys(clientSecret)
	c.keys[0].recv = mustKeys(serverSecret)
	return nil
}

// Trace returns the recorded exchanges since construction (property 4).
func (c *QUICClient) Trace() []Exchange { return c.trace }

// ClearTrace discards recorded exchanges.
func (c *QUICClient) ClearTrace() { c.trace = nil }

func clientSeedBytes(seed int64, attempt int, label string, n int) []byte {
	mac := hmac.New(sha256.New, []byte(label))
	fmt.Fprintf(mac, "client/%d/%d", seed, attempt)
	out := mac.Sum(nil)
	for len(out) < n {
		mac.Reset()
		mac.Write(out)
		out = mac.Sum(out)
	}
	return out[:n]
}

func mustKeys(secret []byte) *quiccrypto.Keys {
	k, err := quiccrypto.NewKeys(secret)
	if err != nil {
		panic(fmt.Sprintf("reference: key derivation: %v", err))
	}
	return k
}

// Step sends the concrete packet for one abstract input symbol and returns
// the abstract output symbol (property 5). Unknown symbols are an error:
// the adapter's alphabet is fixed up front.
func (c *QUICClient) Step(abstract string) (string, error) {
	pt, badver, frames, err := parseAbstract(abstract)
	if err != nil {
		return "", err
	}
	space, ok := spaceFor(pt)
	if !ok {
		return "", fmt.Errorf("reference: cannot send packet type %v", pt)
	}
	concIn, datagram := c.buildPacket(pt, badver, space, frames)
	responses := c.tr.Send(c.src(), datagram)
	absOut, concOut := c.processResponses(responses)
	c.trace = append(c.trace, Exchange{
		AbstractIn: abstract, AbstractOut: absOut,
		ConcreteIn: []ConcretePacket{concIn}, ConcreteOut: concOut,
	})
	return absOut, nil
}

// parseAbstract splits "TYPE(?,?)[F1,F2]" into packet type and frame names.
// The badver flag marks INITIAL_BADVER symbols: an Initial-shaped long
// header that must be sent with a grease version to probe the target's
// version-negotiation handling.
func parseAbstract(s string) (pt quicwire.PacketType, badver bool, frames []string, err error) {
	open := strings.Index(s, "(")
	lb := strings.Index(s, "[")
	if open < 0 || lb < 0 || !strings.HasSuffix(s, "]") {
		return 0, false, nil, fmt.Errorf("reference: malformed abstract symbol %q", s)
	}
	switch s[:open] {
	case "INITIAL":
		pt = quicwire.PacketInitial
	case "INITIAL_BADVER":
		pt, badver = quicwire.PacketInitial, true
	case "HANDSHAKE":
		pt = quicwire.PacketHandshake
	case "SHORT":
		pt = quicwire.PacketShort
	case "0RTT":
		pt = quicwire.PacketZeroRTT
	default:
		return 0, false, nil, fmt.Errorf("reference: unknown packet type in %q", s)
	}
	inner := s[lb+1 : len(s)-1]
	if inner == "" {
		return pt, badver, nil, nil
	}
	return pt, badver, strings.Split(inner, ","), nil
}

func spaceFor(pt quicwire.PacketType) (int, bool) {
	switch pt {
	case quicwire.PacketInitial:
		return 0, true
	case quicwire.PacketHandshake:
		return 1, true
	case quicwire.PacketShort:
		return 2, true
	}
	return 0, false
}

// sendKeys returns usable sealing keys for a space. When the real keys are
// not yet derivable (e.g. the learner asks for a HANDSHAKE packet before
// any server hello was seen) the client seals under placeholder keys: the
// packet is well-formed on the wire and the target drops it, which is
// exactly the observable behaviour the model should record.
func (c *QUICClient) sendKeys(space int) *quiccrypto.Keys {
	if k := c.keys[space].send; k != nil {
		return k
	}
	if c.placeholder[space].send == nil {
		secret := clientSeedBytes(c.cfg.Seed, c.seq, fmt.Sprintf("placeholder-%d", space), 32)
		c.placeholder[space].send = mustKeys(secret)
	}
	return c.placeholder[space].send
}

// buildPacket constructs the concrete packet for the abstract symbol,
// consuming any queued reactive ACK for the space (property 1).
func (c *QUICClient) buildPacket(pt quicwire.PacketType, badver bool, space int, frameNames []string) (ConcretePacket, []byte) {
	pn := c.sendPN[space]
	c.sendPN[space]++
	var frames []quicwire.Frame
	for _, name := range frameNames {
		frames = append(frames, c.buildFrame(space, name))
	}
	c.ackQueue[space] = false // any queued ACK is folded in or superseded

	var payload []byte
	for _, f := range frames {
		payload = quicwire.AppendFrame(payload, f)
	}
	for len(payload) < 20 {
		payload = append(payload, 0) // PADDING up to the HP sample size
	}
	keys := c.sendKeys(space)
	var buf []byte
	var pnOffset int
	sealedLen := len(payload) + keys.Overhead()
	if pt == quicwire.PacketShort {
		buf, pnOffset = quicwire.AppendShortHeader(nil, c.serverCID(), pn)
	} else {
		var token []byte
		if pt == quicwire.PacketInitial {
			token = c.retryToken
		}
		version := uint32(quicwire.Version1)
		if badver {
			version = quicwire.VersionGrease
		}
		buf, pnOffset = quicwire.AppendLongHeaderVersion(nil, pt, version, c.serverCID(), c.scid, token, pn, sealedLen)
	}
	ad := append([]byte(nil), buf...)
	buf = append(buf, keys.Seal(payload, pn, ad)...)
	if err := keys.ProtectHeader(buf, pnOffset); err != nil {
		panic(fmt.Sprintf("reference: header protection: %v", err))
	}
	typeName := pt.String()
	if badver {
		typeName = "INITIAL_BADVER"
	}
	conc := ConcretePacket{Type: typeName, PacketNumber: pn, Frames: frames}
	return conc, buf
}

// serverCID returns the DCID to address the server by: its SCID once known,
// otherwise the client's chosen initial DCID.
func (c *QUICClient) serverCID() []byte {
	return c.dcid
}

// buildFrame constructs a concrete frame for an abstract frame name using
// the client's live connection state.
func (c *QUICClient) buildFrame(space int, name string) quicwire.Frame {
	switch name {
	case "ACK":
		largest := c.largestRecv[space]
		return quicwire.Frame{Type: quicwire.FrameAck, AckLargest: largest, AckRange: largest}
	case "CRYPTO":
		if space == 0 {
			return quicwire.Frame{Type: quicwire.FrameCrypto, Offset: 0,
				Data: append([]byte("CLIENT_HELLO:"), c.clientRandom...)}
		}
		return quicwire.Frame{Type: quicwire.FrameCrypto, Offset: 0,
			Data: append([]byte("FINISHED:"), c.clientRandom[:16]...)}
	case "HANDSHAKE_DONE":
		return quicwire.Frame{Type: quicwire.FrameHandshakeDone}
	case "MAX_DATA":
		return quicwire.Frame{Type: quicwire.FrameMaxData,
			Limit: uint64(10 * quicsim.Chunk * (1 + c.fcRaises))}
	case "MAX_STREAM_DATA":
		c.fcRaises++
		return quicwire.Frame{Type: quicwire.FrameMaxStreamData, StreamID: 0,
			Limit: uint64(quicsim.Chunk * (1 + c.fcRaises))}
	case "STREAM":
		c.reqCount++
		data := []byte(fmt.Sprintf("GET /page-%d", c.reqCount))
		f := quicwire.Frame{Type: quicwire.FrameStream, StreamID: 0,
			Offset: c.streamSent, Data: data}
		c.streamSent += uint64(len(data))
		return f
	case "PING":
		return quicwire.Frame{Type: quicwire.FramePing}
	default:
		panic(fmt.Sprintf("reference: no constructor for abstract frame %q", name))
	}
}

// processResponses abstracts the server's datagrams (property 5), updating
// client connection state along the way.
func (c *QUICClient) processResponses(datagrams [][]byte) (string, []ConcretePacket) {
	var labels []string
	var conc []ConcretePacket
	for _, dgram := range datagrams {
		rest := dgram
		for len(rest) > 0 {
			label, cp, consumed := c.processPacket(rest)
			if consumed <= 0 {
				break
			}
			rest = rest[consumed:]
			if label != "" {
				labels = append(labels, label)
				conc = append(conc, cp)
			}
		}
	}
	return "{" + strings.Join(labels, ",") + "}", conc
}

// processPacket handles one server packet, returning its abstract label,
// concrete form, and the number of bytes consumed from the datagram.
func (c *QUICClient) processPacket(data []byte) (string, ConcretePacket, int) {
	hdr, err := quicwire.ParseHeader(data, quicsim.CIDLen)
	if err != nil {
		// Not parseable as a QUIC packet: check for a stateless reset
		// (random-looking short-header datagram). Consume everything.
		if c.looksLikeReset(data) {
			return "RESET(?,?)[]", ConcretePacket{Type: "RESET"}, len(data)
		}
		return "", ConcretePacket{}, len(data)
	}
	switch hdr.Type {
	case quicwire.PacketRetry:
		// Token is everything except the 16-byte integrity tag.
		if len(hdr.Token) > 16 {
			c.retryToken = append([]byte(nil), hdr.Token[:len(hdr.Token)-16]...)
		}
		if c.cfg.RetryFromNewPort {
			// Issue 3: reopen the socket on a new port before retrying.
			c.port++
		}
		return "RETRY(?,?)[]", ConcretePacket{Type: "RETRY"}, hdr.PayloadEnd
	case quicwire.PacketVersionNegotiation:
		return "VERSION_NEGOTIATION(?,?)[]", ConcretePacket{Type: "VERSION_NEGOTIATION"}, hdr.PayloadEnd
	}
	space, ok := spaceFor(hdr.Type)
	if !ok {
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	keys := c.keys[space].recv
	if keys == nil {
		// Undecryptable: could be a stateless reset disguised as a short
		// packet (they are indistinguishable by design, RFC 9000 §10.3).
		if hdr.Type == quicwire.PacketShort && c.looksLikeReset(data) {
			return "RESET(?,?)[]", ConcretePacket{Type: "RESET"}, len(data)
		}
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	buf := append([]byte(nil), data[:hdr.PayloadEnd]...)
	if err := keys.UnprotectHeader(buf, hdr.PNOffset); err != nil {
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	pn, err := quicwire.DecodePacketNumber(buf, hdr.PNOffset)
	if err != nil {
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	payload, err := keys.Open(buf[hdr.PNOffset+4:hdr.PayloadEnd], pn, buf[:hdr.PNOffset+4])
	if err != nil {
		if hdr.Type == quicwire.PacketShort && c.looksLikeReset(data) {
			return "RESET(?,?)[]", ConcretePacket{Type: "RESET"}, len(data)
		}
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	frames, err := quicwire.ParseFrames(payload)
	if err != nil {
		return "", ConcretePacket{}, hdr.PayloadEnd
	}
	if pn > c.largestRecv[space] {
		c.largestRecv[space] = pn
	}
	c.ackQueue[space] = true // a reactive ACK is now queued (property 1)
	c.applyFrames(space, frames)
	label := fmt.Sprintf("%s(?,?)[%s]", hdr.Type, quicwire.FrameNames(frames))
	return label, ConcretePacket{Type: hdr.Type.String(), PacketNumber: pn, Frames: frames}, hdr.PayloadEnd
}

// looksLikeReset applies the reference implementation's stateless-reset
// heuristic: a short-header-shaped datagram exactly the size the peer's
// resets use whose payload cannot be decrypted.
func (c *QUICClient) looksLikeReset(data []byte) bool {
	return len(data) == 40 && data[0]&0xC0 == 0x40
}

// applyFrames folds server frames into client state.
func (c *QUICClient) applyFrames(space int, frames []quicwire.Frame) {
	for _, f := range frames {
		if f.Type == quicwire.FrameCrypto && space == 0 && c.serverRandom == nil {
			const prefix = "SERVER_HELLO:"
			if len(f.Data) > len(prefix) && string(f.Data[:len(prefix)]) == prefix {
				c.serverRandom = append([]byte(nil), f.Data[len(prefix):]...)
				c.deriveSessionKeys()
			}
		}
	}
}

// deriveSessionKeys mirrors the server's simplified TLS schedule.
func (c *QUICClient) deriveSessionKeys() {
	hc, hs := quiccrypto.HandshakeSecrets(append([]byte("CLIENT_HELLO:"), c.clientRandom...), c.serverRandom)
	ac, as := quiccrypto.AppSecrets(append([]byte("CLIENT_HELLO:"), c.clientRandom...), c.serverRandom)
	c.keys[1].send = mustKeys(hc)
	c.keys[1].recv = mustKeys(hs)
	c.keys[2].send = mustKeys(ac)
	c.keys[2].recv = mustKeys(as)
}
