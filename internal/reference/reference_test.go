package reference_test

import (
	"strings"
	"testing"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
	"repro/internal/tcpwire"
	"repro/internal/testutil"
)

// newQUICPair wires a client to an in-process server via the shared
// fixture.
func newQUICPair(t *testing.T, profile quicsim.Profile) (*reference.QUICClient, *quicsim.Server) {
	t.Helper()
	p := testutil.NewQUICPair(profile, nil)
	return p.Client, p.Server
}

// run sends a word of abstract symbols, resetting first.
func run(t *testing.T, cli *reference.QUICClient, srv *quicsim.Server, word ...string) []string {
	t.Helper()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	srv.Reset()
	out := make([]string, 0, len(word))
	for _, sym := range word {
		o, err := cli.Step(sym)
		if err != nil {
			t.Fatalf("step %q: %v", sym, err)
		}
		out = append(out, o)
	}
	return out
}

// TestQUICWirePathMatchesGroundTruth drives the real packet path (encode,
// HKDF/AES-GCM protection, header protection, parsing) end to end and
// checks the abstract I/O equals the profile's specification machine.
func TestQUICWirePathMatchesGroundTruth(t *testing.T) {
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream, quicsim.SymShortStream,
			quicsim.SymShortFC, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialHD, quicsim.SymInitialCrypto, quicsim.SymHandshakeC},
		{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeHD, quicsim.SymHandshakeC},
		{quicsim.SymHandshakeC, quicsim.SymShortStream, quicsim.SymInitialCrypto},
		{quicsim.SymInitialCrypto, quicsim.SymShortStream, quicsim.SymHandshakeC, quicsim.SymShortFC},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortHD, quicsim.SymShortStream},
	}
	for _, profile := range []quicsim.Profile{quicsim.ProfileGoogle, quicsim.ProfileQuiche} {
		truth := quicsim.GroundTruth(profile)
		cli, srv := newQUICPair(t, profile)
		for _, word := range words {
			want, ok := truth.Run(word)
			if !ok {
				t.Fatalf("%v: ground truth has no run for %v", profile, word)
			}
			got := run(t, cli, srv, word...)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: word %v step %d:\n got %q\nwant %q", profile, word, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQUICHandshakeCompletes sanity-checks the happy path output labels.
func TestQUICHandshakeCompletes(t *testing.T) {
	cli, srv := newQUICPair(t, quicsim.ProfileGoogle)
	out := run(t, cli, srv, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	if !strings.Contains(out[0], "INITIAL(?,?)[ACK,CRYPTO]") ||
		!strings.Contains(out[0], "HANDSHAKE(?,?)[CRYPTO]") ||
		!strings.Contains(out[0], "SHORT(?,?)[STREAM]") {
		t.Fatalf("flight = %q", out[0])
	}
	if out[1] != "{SHORT(?,?)[CRYPTO],SHORT(?,?)[HANDSHAKE_DONE]}" {
		t.Fatalf("done flight = %q", out[1])
	}
}

// TestQUICDeterministicAcrossResets: the same query yields the same answer
// after reset — the property the whole learning stack depends on.
func TestQUICDeterministicAcrossResets(t *testing.T) {
	cli, srv := newQUICPair(t, quicsim.ProfileGoogle)
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream, quicsim.SymShortFC}
	a := run(t, cli, srv, word...)
	b := run(t, cli, srv, word...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs across resets: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestMvfstNondeterministicReset reproduces Issue 2: after the close, the
// same probe sometimes draws a stateless RESET and sometimes silence.
func TestMvfstNondeterministicReset(t *testing.T) {
	cli, srv := newQUICPair(t, quicsim.ProfileMvfst)
	resets, silent := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		out := run(t, cli, srv,
			quicsim.SymInitialCrypto, quicsim.SymHandshakeHD, quicsim.SymShortHD)
		switch out[2] {
		case "{RESET(?,?)[]}":
			resets++
		case "{}":
			silent++
		default:
			t.Fatalf("unexpected post-close response %q", out[2])
		}
	}
	if resets == 0 || silent == 0 {
		t.Fatalf("no nondeterminism observed: resets=%d silent=%d", resets, silent)
	}
	rate := float64(resets) / float64(trials)
	if rate < 0.70 || rate > 0.92 {
		t.Fatalf("reset rate %.2f outside the expected ~0.82 band", rate)
	}
}

// TestRetryAddressValidation covers Issue 3 end to end: a correct client
// completes the retry dance; the buggy client (new port per retry) can
// never establish a connection.
func TestRetryAddressValidation(t *testing.T) {
	srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileGoogle, Seed: 7, RetryRequired: true})
	good := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, reference.ServerTransport(srv))

	out := run(t, good, srv, quicsim.SymInitialCrypto, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	if out[0] != "{RETRY(?,?)[]}" {
		t.Fatalf("first initial should draw a Retry, got %q", out[0])
	}
	if !strings.Contains(out[1], "INITIAL(?,?)[ACK,CRYPTO]") {
		t.Fatalf("validated retry should yield the flight, got %q", out[1])
	}
	if out[2] != "{SHORT(?,?)[CRYPTO],SHORT(?,?)[HANDSHAKE_DONE]}" {
		t.Fatalf("handshake should complete after retry, got %q", out[2])
	}

	bad := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11, RetryFromNewPort: true}, reference.ServerTransport(srv))
	out = run(t, bad, srv, quicsim.SymInitialCrypto, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	if out[0] != "{RETRY(?,?)[]}" {
		t.Fatalf("first initial should draw a Retry, got %q", out[0])
	}
	if out[1] != "{}" {
		t.Fatalf("token from the wrong port must be dropped, got %q", out[1])
	}
	if out[2] != "{}" {
		t.Fatalf("handshake must be impossible for the buggy client, got %q", out[2])
	}
}

// TestIssue4StreamDataBlockedField checks the synthesis experiment's raw
// signal: Google's STREAM_DATA_BLOCKED carries Maximum Stream Data 0; the
// fixed profile carries the real limit.
func TestIssue4StreamDataBlockedField(t *testing.T) {
	for _, c := range []struct {
		profile quicsim.Profile
		want    uint64
	}{
		{quicsim.ProfileGoogle, 0},
		{quicsim.ProfileGoogleFixed, quicsim.Chunk},
	} {
		cli, srv := newQUICPair(t, c.profile)
		cli.ClearTrace()
		run(t, cli, srv,
			quicsim.SymInitialCrypto, quicsim.SymHandshakeC,
			quicsim.SymShortStream, quicsim.SymShortStream)
		var found bool
		for _, ex := range cli.Trace() {
			for _, cp := range ex.ConcreteOut {
				for _, f := range cp.Frames {
					if f.Type.String() == "STREAM_DATA_BLOCKED" {
						found = true
						if f.Limit != c.want {
							t.Fatalf("%v: Maximum Stream Data = %d, want %d", c.profile, f.Limit, c.want)
						}
					}
				}
			}
		}
		if !found {
			t.Fatalf("%v: no STREAM_DATA_BLOCKED observed", c.profile)
		}
	}
}

// TestOracleTableRecordsConcretePackets checks Adapter property (4).
func TestOracleTableRecordsConcretePackets(t *testing.T) {
	cli, srv := newQUICPair(t, quicsim.ProfileGoogle)
	cli.ClearTrace()
	run(t, cli, srv, quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	trace := cli.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace length %d, want 2", len(trace))
	}
	if trace[0].AbstractIn != quicsim.SymInitialCrypto {
		t.Fatalf("abstract in = %q", trace[0].AbstractIn)
	}
	if len(trace[0].ConcreteIn) != 1 || len(trace[0].ConcreteIn[0].Frames) == 0 {
		t.Fatal("concrete input not recorded")
	}
	if len(trace[0].ConcreteOut) != 4 {
		t.Fatalf("flight should record 4 concrete packets, got %d", len(trace[0].ConcreteOut))
	}
	// Server packet numbers are recoverable for synthesis.
	if trace[0].ConcreteOut[0].PacketNumber != 0 {
		t.Fatalf("first server initial pn = %d, want 0", trace[0].ConcreteOut[0].PacketNumber)
	}
}

// TestPlaceholderKeysPacketsDropped: symbols whose keys are underivable
// still produce well-formed packets that the server drops.
func TestPlaceholderKeysPacketsDropped(t *testing.T) {
	cli, srv := newQUICPair(t, quicsim.ProfileGoogle)
	out := run(t, cli, srv, quicsim.SymHandshakeC, quicsim.SymShortStream)
	if out[0] != "{}" || out[1] != "{}" {
		t.Fatalf("pre-connection packets must be dropped, got %v", out)
	}
}

// --- TCP reference client ---

func newTCPPair(t *testing.T) (*reference.TCPClient, *tcpsim.Server) {
	t.Helper()
	srv := tcpsim.NewServer(tcpsim.Config{Port: 44344, Seed: 5, StrictAckCheck: true})
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	tr := reference.TCPTransportFunc(func(raw []byte) [][]byte {
		seg, err := tcpwire.Decode(raw, src, dst)
		if err != nil {
			t.Fatalf("server received corrupt segment: %v", err)
		}
		var out [][]byte
		for _, resp := range srv.Handle(seg) {
			out = append(out, resp.Encode(dst, src))
		}
		return out
	})
	cli := reference.NewTCPClient(reference.TCPClientConfig{Seed: 3, DstPort: 44344, SrcAddr: src, DstAddr: dst}, tr)
	return cli, srv
}

func runTCP(t *testing.T, cli *reference.TCPClient, srv *tcpsim.Server, word ...string) []string {
	t.Helper()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	srv.Reset()
	out := make([]string, 0, len(word))
	for _, sym := range word {
		o, err := cli.Step(sym)
		if err != nil {
			t.Fatalf("step %q: %v", sym, err)
		}
		out = append(out, o)
	}
	return out
}

func TestTCPHandshakeThroughWire(t *testing.T) {
	cli, srv := newTCPPair(t)
	out := runTCP(t, cli, srv, "SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)")
	want := []string{"SYN+ACK(?,?,0)", "NIL", "ACK(?,?,0)"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("step %d = %q, want %q (full: %v)", i, out[i], want[i], out)
		}
	}
	if srv.State().String() != "ESTABLISHED" {
		t.Fatalf("server state %v", srv.State())
	}
}

func TestTCPFullCloseSequence(t *testing.T) {
	cli, srv := newTCPPair(t)
	out := runTCP(t, cli, srv,
		"SYN(?,?,0)", "ACK(?,?,0)", "ACK+FIN(?,?,0)", "ACK(?,?,0)", "ACK(?,?,0)", "SYN(?,?,0)")
	want := []string{"SYN+ACK(?,?,0)", "NIL", "ACK(?,?,0)", "ACK+FIN(?,?,0)", "NIL", "ACK+RST(?,?,0)"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("step %d = %q, want %q (full: %v)", i, out[i], want[i], out)
		}
	}
}

func TestTCPSymbolParsing(t *testing.T) {
	flags, n, err := reference.ParseTCPSymbol("ACK+PSH(?,?,1)")
	if err != nil || flags != tcpwire.ACK|tcpwire.PSH || n != 1 {
		t.Fatalf("parse: %v %d %v", flags, n, err)
	}
	if _, _, err := reference.ParseTCPSymbol("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := reference.ParseTCPSymbol("XYZ(?,?,0)"); err == nil {
		t.Fatal("unknown flags accepted")
	}
	for _, sym := range reference.TCPAlphabet() {
		if _, _, err := reference.ParseTCPSymbol(sym); err != nil {
			t.Fatalf("alphabet symbol %q does not parse: %v", sym, err)
		}
	}
}

func TestTCPOracleTableRecordsNumbers(t *testing.T) {
	cli, srv := newTCPPair(t)
	cli.ClearTrace()
	runTCP(t, cli, srv, "SYN(?,?,0)", "ACK(?,?,0)")
	trace := cli.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace length %d", len(trace))
	}
	synAck := trace[0].ConcreteOut
	if len(synAck) != 1 {
		t.Fatal("no SYN-ACK recorded")
	}
	// The final ACK must acknowledge the server's ISS+1 — the register
	// relationship (r = sn+1) that Fig. 3(c) synthesizes.
	if trace[1].ConcreteIn.AckNumber != synAck[0].SeqNumber+1 {
		t.Fatalf("ack %d does not track server seq %d", trace[1].ConcreteIn.AckNumber, synAck[0].SeqNumber)
	}
}

func TestTCPDeterministicAcrossResets(t *testing.T) {
	cli, srv := newTCPPair(t)
	a := runTCP(t, cli, srv, "SYN(?,?,0)", "ACK(?,?,0)", "ACK+FIN(?,?,0)")
	b := runTCP(t, cli, srv, "SYN(?,?,0)", "ACK(?,?,0)", "ACK+FIN(?,?,0)")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
