package reference

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/tcpwire"
)

// TCPTransport delivers one encoded TCP segment to the target and returns
// the encoded response segments.
type TCPTransport interface {
	Send(segment []byte) [][]byte
}

// TCPTransportFunc adapts a function to TCPTransport.
type TCPTransportFunc func(segment []byte) [][]byte

// Send implements TCPTransport.
func (f TCPTransportFunc) Send(segment []byte) [][]byte { return f(segment) }

// TCPExchange is one abstract TCP I/O step with its concrete segments, as
// recorded for the Oracle Table.
type TCPExchange struct {
	AbstractIn  string
	AbstractOut string
	ConcreteIn  tcpwire.Segment
	ConcreteOut []tcpwire.Segment
}

// TCPClientConfig parameterizes the TCP reference client.
type TCPClientConfig struct {
	Seed       int64
	SrcPort    uint16
	DstPort    uint16
	SrcAddr    [4]byte
	DstAddr    [4]byte
	PayloadLen int // payload bytes for symbols with payload length 1
}

// TCPClient is the instrumented TCP reference client: the ~300-line
// replacement for the 2,700-line hand-written mapper of prior work (§3.2).
// It keeps live sequence/acknowledgement state so concretization is just
// "fill in the current numbers".
type TCPClient struct {
	cfg   TCPClientConfig
	tr    TCPTransport
	rng   *rand.Rand
	iss   uint32 // this attempt's initial sequence number
	seq   uint32 // send point: lowest sequence number the peer has not acked
	ack   uint32 // next expected peer sequence number (our ACK field)
	trace []TCPExchange
}

// NewTCPClient returns a client speaking to the given transport.
func NewTCPClient(cfg TCPClientConfig, tr TCPTransport) *TCPClient {
	if cfg.SrcPort == 0 {
		cfg.SrcPort = 40965
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 44344
	}
	if cfg.PayloadLen == 0 {
		cfg.PayloadLen = 1
	}
	if cfg.SrcAddr == ([4]byte{}) {
		cfg.SrcAddr = [4]byte{10, 0, 0, 2}
	}
	if cfg.DstAddr == ([4]byte{}) {
		cfg.DstAddr = [4]byte{10, 0, 0, 1}
	}
	c := &TCPClient{cfg: cfg, tr: tr}
	c.Reset()
	return c
}

// Reset starts a fresh connection attempt with a fresh (seeded) initial
// sequence number.
func (c *TCPClient) Reset() error {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.cfg.Seed))
	}
	c.iss = c.rng.Uint32()
	c.seq = c.iss
	c.ack = 0
	return nil
}

// Trace returns recorded exchanges.
func (c *TCPClient) Trace() []TCPExchange { return c.trace }

// ClearTrace discards recorded exchanges.
func (c *TCPClient) ClearTrace() { c.trace = nil }

// Step sends the concrete segment for one abstract symbol such as
// "SYN(?,?,0)" or "ACK+PSH(?,?,1)" — optionally carrying modifiers like
// "SYN(?,?,0)[SACKOK]" — and returns the abstracted response.
func (c *TCPClient) Step(abstract string) (string, error) {
	base, mods, err := splitTCPMods(abstract)
	if err != nil {
		return "", err
	}
	flags, payloadLen, err := ParseTCPSymbol(base)
	if err != nil {
		return "", err
	}
	seg := tcpwire.Segment{
		SourcePort:      c.cfg.SrcPort,
		DestinationPort: c.cfg.DstPort,
		SeqNumber:       c.seq,
		AckNumber:       c.ack,
		Flags:           flags,
		Window:          65535,
	}
	if payloadLen > 0 {
		seg.Payload = make([]byte, payloadLen)
		for i := range seg.Payload {
			seg.Payload[i] = 'd'
		}
	}
	if mods.sackOK {
		seg.SACKPermitted = true
		seg.WindowScale = clientWindowScale
	}
	if mods.ooo {
		// Out-of-order probe: the payload lands a gap ahead of the send
		// point, which stays put — like a retransmission timer, we keep
		// resending from the lowest unacknowledged byte.
		seg.SeqNumber = c.seq + tcpOOOGap
	}

	responses := c.tr.Send(seg.Encode(c.cfg.SrcAddr, c.cfg.DstAddr))
	absOut := "NIL"
	var concOut []tcpwire.Segment
	for _, raw := range responses {
		out, err := tcpwire.Decode(raw, c.cfg.DstAddr, c.cfg.SrcAddr)
		if err != nil {
			continue // corrupted response: not abstractable
		}
		concOut = append(concOut, out)
		// Track the peer's sequence progression for our next ACK field.
		adv := uint32(len(out.Payload))
		if out.Flags&tcpwire.SYN != 0 || out.Flags&tcpwire.FIN != 0 {
			adv++
		}
		if adv > 0 {
			c.ack = out.SeqNumber + adv
		}
		// Advance-on-ACK: the send point moves only when the peer
		// acknowledges new data (real TCP's snd_una), so probes the peer
		// discards — data before the handshake, duplicate SYNs — never
		// burn sequence space and the client can never outrun the peer's
		// in-order point. RSTs are excluded: their ACK field echoes the
		// offending segment, not the connection's receive state.
		if out.Flags&tcpwire.ACK != 0 && out.Flags&tcpwire.RST == 0 &&
			tcpSeqAfter(out.AckNumber, c.seq) {
			c.seq = out.AckNumber
		}
		absOut = out.Abstract()
	}
	c.trace = append(c.trace, TCPExchange{
		AbstractIn: abstract, AbstractOut: absOut,
		ConcreteIn: seg, ConcreteOut: concOut,
	})
	return absOut, nil
}

// clientWindowScale is the shift the client offers in [SACKOK] SYNs, and
// tcpOOOGap is how far ahead of the in-order point an [OOO] probe lands.
const (
	clientWindowScale = 8
	tcpOOOGap         = 1000
)

// tcpSeqAfter reports whether sequence number a is after b in 32-bit
// serial-number arithmetic.
func tcpSeqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// tcpMods are the option modifiers a TCP abstract symbol may carry in a
// trailing bracket.
type tcpMods struct {
	sackOK bool // SYN offers SACK-permitted plus window scaling
	ooo    bool // data probe is sent out of order (sequence gap)
}

// splitTCPMods splits "FLAGS(?,?,len)[MOD,...]" into the base symbol and
// its modifiers; symbols without a bracket suffix pass through untouched.
func splitTCPMods(s string) (string, tcpMods, error) {
	var m tcpMods
	if !strings.HasSuffix(s, "]") {
		return s, m, nil
	}
	idx := strings.LastIndex(s, "[")
	if idx < 0 {
		return "", m, fmt.Errorf("reference: malformed TCP symbol %q", s)
	}
	for _, part := range strings.Split(s[idx+1:len(s)-1], ",") {
		switch part {
		case "SACKOK":
			m.sackOK = true
		case "OOO":
			m.ooo = true
		default:
			return "", m, fmt.Errorf("reference: unknown TCP symbol modifier %q in %q", part, s)
		}
	}
	return s[:idx], m, nil
}

// ParseTCPSymbol parses the paper's TCP abstract notation "FLAGS(?,?,len)".
// Modifier suffixes are accepted and ignored; Step interprets them.
func ParseTCPSymbol(s string) (tcpwire.Flags, int, error) {
	s, _, err := splitTCPMods(s)
	if err != nil {
		return 0, 0, err
	}
	open := -1
	for i, r := range s {
		if r == '(' {
			open = i
			break
		}
	}
	if open < 0 || len(s) < open+7 || s[len(s)-1] != ')' {
		return 0, 0, fmt.Errorf("reference: malformed TCP symbol %q", s)
	}
	flags, err := tcpwire.ParseFlags(s[:open])
	if err != nil {
		return 0, 0, err
	}
	var payloadLen int
	if _, err := fmt.Sscanf(s[open:], "(?,?,%d)", &payloadLen); err != nil {
		return 0, 0, fmt.Errorf("reference: malformed TCP symbol %q: %v", s, err)
	}
	return flags, payloadLen, nil
}

// TCPAlphabet returns the seven-symbol abstract input alphabet of §6.1.
func TCPAlphabet() []string {
	return []string{
		"SYN(?,?,0)", "SYN+ACK(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)",
		"ACK+FIN(?,?,0)", "RST(?,?,0)", "ACK+RST(?,?,0)",
	}
}

// TCPSACKAlphabet returns the tcp-sack target's nine-symbol alphabet: the
// base seven plus a SACK-negotiating SYN and an out-of-order data probe.
func TCPSACKAlphabet() []string {
	return append(TCPAlphabet(), "SYN(?,?,0)[SACKOK]", "ACK+PSH(?,?,1)[OOO]")
}
