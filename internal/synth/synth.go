// Package synth implements §4.3 of the paper: synthesis of extended Mealy
// machines — learned Mealy machines enriched with integer registers whose
// update and output terms are recovered from the concrete traces cached in
// the Oracle Table.
//
// The paper encodes the search as SMT constraints solved by Z3. The
// constraint system is a finite-domain selection problem (each unknown term
// is one of a small list: a register, a register plus one, an input
// parameter, an input parameter plus one, or a constant) plus equalities
// over concrete trace values, so this package solves exactly the same
// system with a backtracking finite-domain solver with forward checking
// (see DESIGN.md, substitutions).
package synth

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/automata"
)

// TermKind enumerates the term grammar of §4.3.
type TermKind int

// Term kinds.
const (
	// Reg evaluates to register Index (post-update for outputs, pre-update
	// for updates).
	Reg TermKind = iota
	// RegPlusOne evaluates to register Index + 1.
	RegPlusOne
	// Input evaluates to input parameter Index of the current step.
	Input
	// InputPlusOne evaluates to input parameter Index + 1.
	InputPlusOne
	// Const evaluates to Value.
	Const
)

// Term is one candidate expression for an unknown.
type Term struct {
	Kind  TermKind
	Index int
	Value int64
}

// String renders the term with the paper's naming: registers r0, r1, ...;
// input parameters p0, p1, ...
func (t Term) String() string {
	switch t.Kind {
	case Reg:
		return fmt.Sprintf("r%d", t.Index)
	case RegPlusOne:
		return fmt.Sprintf("r%d+1", t.Index)
	case Input:
		return fmt.Sprintf("p%d", t.Index)
	case InputPlusOne:
		return fmt.Sprintf("p%d+1", t.Index)
	default:
		return fmt.Sprintf("%d", t.Value)
	}
}

// eval computes the term value given pre-state registers and input params.
func (t Term) eval(regs, in []int64) (int64, bool) {
	switch t.Kind {
	case Reg, RegPlusOne:
		if t.Index >= len(regs) {
			return 0, false
		}
		v := regs[t.Index]
		if t.Kind == RegPlusOne {
			v++
		}
		return v, true
	case Input, InputPlusOne:
		if t.Index >= len(in) {
			return 0, false
		}
		v := in[t.Index]
		if t.Kind == InputPlusOne {
			v++
		}
		return v, true
	default:
		return t.Value, true
	}
}

// Step is one element of a concrete trace: the abstract input symbol (which
// selects the machine transition), its numeric input parameters, and the
// observed numeric output parameters.
type Step struct {
	Input   string
	InVals  []int64
	OutVals []int64
}

// Trace is a concrete run of the system from its initial state.
type Trace []Step

// Problem is a synthesis instance.
type Problem struct {
	// Machine is the learned Mealy machine providing the control skeleton.
	Machine *automata.Mealy
	// NumRegisters is the number of registers to synthesize over.
	NumRegisters int
	// NumInputParams is the number of numeric parameters each input symbol
	// carries (e.g. 2 for TCP: sequence and acknowledgement numbers).
	NumInputParams int
	// OutputParams maps each abstract output symbol to the number of
	// numeric parameters the synthesized output terms must explain.
	// Symbols not present have no output unknowns.
	OutputParams map[string]int
	// InitRegs are the initial register values (defaults to zeros).
	InitRegs []int64
	// Consts are candidate constant terms (e.g. 0).
	Consts []int64
	// Positive are traces the synthesized machine must reproduce.
	Positive []Trace
	// Negative are traces the machine must NOT reproduce (added by the
	// refinement loop when random testing finds a discrepancy).
	Negative []Trace
}

// transKey identifies a transition of the skeleton.
type transKey struct {
	state automata.State
	input string
}

// ExtendedMealy is the synthesis result: per-transition register update and
// output terms over the control skeleton.
type ExtendedMealy struct {
	Machine  *automata.Mealy
	NumRegs  int
	InitRegs []int64
	Updates  map[transKey][]Term // one term per register
	Outputs  map[transKey][]Term // one term per output parameter
	problem  *Problem
}

// UpdatesFor returns the update terms of transition (s, input), nil if the
// transition carries none.
func (e *ExtendedMealy) UpdatesFor(s automata.State, input string) []Term {
	return e.Updates[transKey{s, input}]
}

// OutputsFor returns the output terms of transition (s, input).
func (e *ExtendedMealy) OutputsFor(s automata.State, input string) []Term {
	return e.Outputs[transKey{s, input}]
}

// DOT renders the extended machine through the shared automata exporter,
// in the style of the paper's Appendix B.1: every edge carries the abstract
// input/output pair plus its register-update and output-parameter
// annotations as one extra label line, e.g. "r0=p0 | o0=r0".
func (e *ExtendedMealy) DOT(name string) string {
	return e.Machine.DOTStyled(name, automata.DOTStyle{
		EdgeAnnotation: func(s automata.State, in, _ string) []string {
			k := transKey{s, in}
			var ann []string
			for i, u := range e.Updates[k] {
				ann = append(ann, fmt.Sprintf("r%d=%s", i, u))
			}
			for i, o := range e.Outputs[k] {
				ann = append(ann, fmt.Sprintf("o%d=%s", i, o))
			}
			if len(ann) == 0 {
				return nil
			}
			return []string{strings.Join(ann, " | ")}
		},
	})
}

// Run executes a trace's inputs through the extended machine and returns
// the predicted output parameter vectors, one per step.
func (e *ExtendedMealy) Run(tr Trace) ([][]int64, bool) {
	regs := append([]int64(nil), e.InitRegs...)
	state := e.Machine.Initial()
	var out [][]int64
	for _, step := range tr {
		next, _, ok := e.Machine.Step(state, step.Input)
		if !ok {
			return out, false
		}
		k := transKey{state, step.Input}
		newRegs := append([]int64(nil), regs...)
		for i, u := range e.Updates[k] {
			v, ok := u.eval(regs, step.InVals)
			if !ok {
				return out, false
			}
			newRegs[i] = v
		}
		regs = newRegs
		var vals []int64
		for _, o := range e.Outputs[k] {
			v, ok := o.eval(regs, step.InVals) // outputs see post-update registers
			if !ok {
				return out, false
			}
			vals = append(vals, v)
		}
		out = append(out, vals)
		state = next
	}
	return out, true
}

// String renders the machine in the style of Fig. 4 (right).
func (e *ExtendedMealy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ExtendedMealy(regs=%d, init=%v)\n", e.NumRegs, e.InitRegs)
	for s := 0; s < e.Machine.NumStates(); s++ {
		for _, in := range e.Machine.Inputs() {
			to, out, ok := e.Machine.Step(automata.State(s), in)
			if !ok {
				continue
			}
			k := transKey{automata.State(s), in}
			var ann []string
			for i, u := range e.Updates[k] {
				ann = append(ann, fmt.Sprintf("r%d=%s", i, u))
			}
			for i, o := range e.Outputs[k] {
				ann = append(ann, fmt.Sprintf("o%d=%s", i, o))
			}
			fmt.Fprintf(&b, "  s%d --%s/%s [%s]--> s%d\n", s, in, out, strings.Join(ann, ", "), to)
		}
	}
	return b.String()
}

// ErrUnsatisfiable is returned when no assignment of terms explains the
// traces.
var ErrUnsatisfiable = errors.New("synth: no term assignment satisfies the traces")

// slot is one unknown: either an update (reg >= 0) or an output param.
type slot struct {
	key    transKey
	reg    int // register index for updates, -1 for outputs
	outIdx int // output parameter index, -1 for updates
}

// Synthesize solves the problem and returns an extended machine consistent
// with all positive traces and inconsistent with every negative trace.
func Synthesize(p *Problem) (*ExtendedMealy, error) {
	if p.Machine == nil {
		return nil, errors.New("synth: problem needs a machine")
	}
	init := p.InitRegs
	if init == nil {
		init = make([]int64, p.NumRegisters)
	}
	if len(init) != p.NumRegisters {
		return nil, fmt.Errorf("synth: %d initial values for %d registers", len(init), p.NumRegisters)
	}

	// Collect unknown slots for transitions actually exercised by traces,
	// in first-use order so forward checking prunes early.
	slots, keyOrder := collectSlots(p)
	updateDomain, outputDomain := domains(p)

	asn := &assignment{
		updates: make(map[transKey][]Term, len(keyOrder)),
		outputs: make(map[transKey][]Term, len(keyOrder)),
	}
	for _, k := range keyOrder {
		asn.updates[k] = make([]Term, p.NumRegisters)
		asn.outputs[k] = make([]Term, outputArity(p, k))
		for i := range asn.updates[k] {
			asn.updates[k][i] = Term{Kind: Reg, Index: i} // placeholder
		}
	}
	lastSlot := make(map[transKey]int, len(keyOrder))
	for i, sl := range slots {
		lastSlot[sl.key] = i
	}
	solver := &solver{p: p, init: init, slots: slots, asn: asn, lastSlot: lastSlot,
		updateDomain: updateDomain, outputDomain: outputDomain}
	if !solver.solve(0) {
		return nil, ErrUnsatisfiable
	}
	return &ExtendedMealy{
		Machine: p.Machine, NumRegs: p.NumRegisters, InitRegs: init,
		Updates: asn.updates, Outputs: asn.outputs, problem: p,
	}, nil
}

// outputArity returns the number of output parameters for transition k.
func outputArity(p *Problem, k transKey) int {
	_, out, ok := p.Machine.Step(k.state, k.input)
	if !ok {
		return 0
	}
	return p.OutputParams[out]
}

// collectSlots walks all traces and gathers unknowns in first-use order.
func collectSlots(p *Problem) ([]slot, []transKey) {
	var slots []slot
	var order []transKey
	seen := make(map[transKey]bool)
	addKey := func(k transKey) {
		if seen[k] {
			return
		}
		seen[k] = true
		order = append(order, k)
		for r := 0; r < p.NumRegisters; r++ {
			slots = append(slots, slot{key: k, reg: r, outIdx: -1})
		}
		for o := 0; o < outputArity(p, k); o++ {
			slots = append(slots, slot{key: k, reg: -1, outIdx: o})
		}
	}
	walk := func(tr Trace) {
		state := p.Machine.Initial()
		for _, step := range tr {
			next, _, ok := p.Machine.Step(state, step.Input)
			if !ok {
				return
			}
			addKey(transKey{state, step.Input})
			state = next
		}
	}
	for _, tr := range p.Positive {
		walk(tr)
	}
	for _, tr := range p.Negative {
		walk(tr)
	}
	return slots, order
}

// domains builds the candidate term lists. Update terms try registers
// first (state usually persists); output terms try constants first, so a
// field that is genuinely constant is reported as such — the Issue 4
// analysis depends on the constant explanation winning over coincidental
// matches with zero-valued inputs.
func domains(p *Problem) (updates, outputs []Term) {
	for r := 0; r < p.NumRegisters; r++ {
		updates = append(updates, Term{Kind: Reg, Index: r}, Term{Kind: RegPlusOne, Index: r})
	}
	for i := 0; i < p.NumInputParams; i++ {
		updates = append(updates, Term{Kind: Input, Index: i}, Term{Kind: InputPlusOne, Index: i})
	}
	for _, c := range p.Consts {
		updates = append(updates, Term{Kind: Const, Value: c})
	}
	for _, c := range p.Consts {
		outputs = append(outputs, Term{Kind: Const, Value: c})
	}
	for r := 0; r < p.NumRegisters; r++ {
		outputs = append(outputs, Term{Kind: Reg, Index: r}, Term{Kind: RegPlusOne, Index: r})
	}
	for i := 0; i < p.NumInputParams; i++ {
		outputs = append(outputs, Term{Kind: Input, Index: i}, Term{Kind: InputPlusOne, Index: i})
	}
	return updates, outputs
}

type assignment struct {
	updates map[transKey][]Term
	outputs map[transKey][]Term
}

type solver struct {
	p            *Problem
	init         []int64
	slots        []slot
	asn          *assignment
	lastSlot     map[transKey]int // index of each key's final slot
	updateDomain []Term
	outputDomain []Term
}

// solve assigns slots[idx:] by depth-first search with forward checking.
func (s *solver) solve(idx int) bool {
	if idx == len(s.slots) {
		return s.consistent(len(s.slots))
	}
	sl := s.slots[idx]
	domain := s.updateDomain
	if sl.reg < 0 {
		domain = s.outputDomain
	}
	for _, t := range domain {
		if sl.reg >= 0 {
			s.asn.updates[sl.key][sl.reg] = t
		} else {
			s.asn.outputs[sl.key][sl.outIdx] = t
		}
		if s.consistent(idx+1) && s.solve(idx+1) {
			return true
		}
	}
	// Restore a neutral placeholder for updates so later simulation of
	// unassigned slots stays well-defined.
	if sl.reg >= 0 {
		s.asn.updates[sl.key][sl.reg] = Term{Kind: Reg, Index: sl.reg}
	}
	return false
}

// consistent simulates all traces using the slots assigned so far (the
// first `assigned` slots). Positive traces must match observed outputs on
// every step whose unknowns are all assigned; a trace is only checked up to
// the first step that uses an unassigned slot. Negative traces must differ
// somewhere once fully assigned.
func (s *solver) consistent(assigned int) bool {
	done := func(k transKey) bool {
		last, ok := s.lastSlot[k]
		return ok && last < assigned
	}
	for _, tr := range s.p.Positive {
		ok, _ := s.checkTrace(tr, done)
		if !ok {
			return false
		}
	}
	if assigned == len(s.slots) {
		for _, tr := range s.p.Negative {
			matched, complete := s.checkTrace(tr, done)
			if matched && complete {
				return false // the machine must not reproduce a negative trace
			}
		}
	}
	return true
}

// checkTrace simulates tr; it returns ok=false if an assigned output term
// contradicts an observed value. complete reports whether every step was
// fully checked (no unassigned transitions encountered).
func (s *solver) checkTrace(tr Trace, done func(transKey) bool) (ok, complete bool) {
	regs := append([]int64(nil), s.init...)
	state := s.p.Machine.Initial()
	for _, step := range tr {
		next, _, has := s.p.Machine.Step(state, step.Input)
		if !has {
			return true, false
		}
		k := transKey{state, step.Input}
		if !done(k) {
			return true, false // cannot check further: later regs unknown
		}
		newRegs := append([]int64(nil), regs...)
		for i, u := range s.asn.updates[k] {
			v, evalOK := u.eval(regs, step.InVals)
			if !evalOK {
				return false, false
			}
			newRegs[i] = v
		}
		regs = newRegs
		outs := s.asn.outputs[k]
		if len(outs) > 0 {
			if len(step.OutVals) < len(outs) {
				return false, false
			}
			for i, o := range outs {
				v, evalOK := o.eval(regs, step.InVals)
				if !evalOK || v != step.OutVals[i] {
					return false, false
				}
			}
		}
		state = next
	}
	return true, true
}
