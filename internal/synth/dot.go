package synth

import (
	"fmt"
	"strings"

	"repro/internal/automata"
)

// DOT renders the extended machine in Graphviz dot, in the style of the
// paper's Appendix B.1: every edge carries the abstract input/output pair
// plus its register-update and output-parameter annotations, e.g.
// "r0=p0 | o0=r0".
func (e *ExtendedMealy) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  __start [shape=none, label=\"\"];\n")
	fmt.Fprintf(&b, "  __start -> s%d;\n", e.Machine.Initial())
	for s := 0; s < e.Machine.NumStates(); s++ {
		fmt.Fprintf(&b, "  s%d [label=\"s%d\"];\n", s, s)
	}
	for s := 0; s < e.Machine.NumStates(); s++ {
		for _, in := range e.Machine.Inputs() {
			to, out, ok := e.Machine.Step(automata.State(s), in)
			if !ok {
				continue
			}
			k := transKey{automata.State(s), in}
			var ann []string
			for i, u := range e.Updates[k] {
				ann = append(ann, fmt.Sprintf("r%d=%s", i, u))
			}
			for i, o := range e.Outputs[k] {
				ann = append(ann, fmt.Sprintf("o%d=%s", i, o))
			}
			label := fmt.Sprintf("%s / %s", in, out)
			if len(ann) > 0 {
				label += "\\n" + strings.Join(ann, " | ")
			}
			label = strings.ReplaceAll(label, "\"", "\\\"")
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s\"];\n", s, to, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
