package synth

import (
	"errors"
	"fmt"
)

// Mismatch describes a step where the synthesized machine's prediction
// disagrees with an observed trace.
type Mismatch struct {
	Trace     Trace
	StepIndex int
	Predicted []int64
	Observed  []int64
}

// Verify checks the extended machine against traces, returning the first
// mismatch found (nil if all traces are reproduced). This is the random
// equivalence testing of §4.3: synthesized register patterns are validated
// on traces not used during solving.
func Verify(em *ExtendedMealy, traces []Trace) *Mismatch {
	for _, tr := range traces {
		pred, _ := em.Run(tr)
		for i := range pred {
			if i >= len(tr) {
				break
			}
			obs := tr[i].OutVals
			if len(pred[i]) == 0 {
				continue
			}
			if len(obs) < len(pred[i]) {
				return &Mismatch{Trace: tr, StepIndex: i, Predicted: pred[i], Observed: obs}
			}
			for j := range pred[i] {
				if pred[i][j] != obs[j] {
					return &Mismatch{Trace: tr, StepIndex: i, Predicted: pred[i], Observed: obs}
				}
			}
		}
	}
	return nil
}

// ErrNoConvergence is returned when refinement exhausts its round budget.
var ErrNoConvergence = errors.New("synth: refinement did not converge")

// Refine runs the synthesize–test loop of §4.3: synthesize from the current
// trace set, test against fresh traces from gen, and on a mismatch add the
// offending trace as a positive example (and the wrong prediction as a
// negative example) before re-solving. gen is called with the round number
// and should return a fresh concrete trace from the system under learning.
func Refine(p *Problem, gen func(round int) (Trace, error), tests, maxRounds int) (*ExtendedMealy, error) {
	for round := 0; round < maxRounds; round++ {
		em, err := Synthesize(p)
		if err != nil {
			return nil, fmt.Errorf("synth: round %d: %w", round, err)
		}
		var fresh []Trace
		for i := 0; i < tests; i++ {
			tr, err := gen(round*tests + i)
			if err != nil {
				return nil, err
			}
			fresh = append(fresh, tr)
		}
		mm := Verify(em, fresh)
		if mm == nil {
			return em, nil
		}
		p.Positive = append(p.Positive, mm.Trace)
		// The wrong prediction becomes a negative example: the same inputs
		// must not yield the predicted outputs.
		neg := make(Trace, len(mm.Trace))
		copy(neg, mm.Trace)
		pred, _ := em.Run(mm.Trace)
		for i := range neg {
			if i < len(pred) && len(pred[i]) > 0 {
				neg[i].OutVals = pred[i]
			}
		}
		p.Negative = append(p.Negative, neg)
	}
	return nil, ErrNoConvergence
}
