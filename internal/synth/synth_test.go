package synth

import (
	"strings"
	"testing"

	"repro/internal/automata"
)

// figure4Machine builds the two-state skeleton of Fig. 4: s0 with a SYN
// self-loop... actually s0 --ACK--> s0, s0 --SYN--> s1, s1 --SYN--> s1.
func figure4Machine() *automata.Mealy {
	m := automata.NewMealy([]string{"ACK", "SYN"})
	s0 := m.Initial()
	s1 := m.AddState()
	m.SetTransition(s0, "ACK", s0, "NIL")
	m.SetTransition(s0, "SYN", s1, "ACK_OUT")
	m.SetTransition(s1, "SYN", s1, "NIL")
	m.SetTransition(s1, "ACK", s1, "NIL")
	return m
}

// TestSynthesizeFigure4 reproduces the paper's running example: from
// concrete traces, recover register terms that explain the SYN/ACK output
// parameters. The paper's trace [(ACK(0,3,0)/NIL), (SYN(2,5,0)/ACK(4,5,0))]
// admits the solution where a register tracks an input and the output acks
// it.
func TestSynthesizeFigure4(t *testing.T) {
	p := &Problem{
		Machine:        figure4Machine(),
		NumRegisters:   1,
		NumInputParams: 2, // sn, an
		OutputParams:   map[string]int{"ACK_OUT": 2},
		Consts:         []int64{0},
		Positive: []Trace{
			{
				{Input: "ACK", InVals: []int64{0, 3}},
				{Input: "SYN", InVals: []int64{2, 5}, OutVals: []int64{3, 5}},
			},
			{
				{Input: "ACK", InVals: []int64{10, 3}},
				{Input: "SYN", InVals: []int64{7, 9}, OutVals: []int64{8, 9}},
			},
			{
				{Input: "SYN", InVals: []int64{20, 41}, OutVals: []int64{21, 41}},
			},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	// The SYN transition's outputs must be explainable as sn+1 and an (in
	// whatever encoding the solver chose); verify semantically on held-out
	// traces.
	held := []Trace{
		{
			{Input: "ACK", InVals: []int64{1, 1}},
			{Input: "SYN", InVals: []int64{100, 200}, OutVals: []int64{101, 200}},
		},
	}
	if mm := Verify(em, held); mm != nil {
		t.Fatalf("synthesized machine wrong on held-out trace: %+v\n%s", mm, em)
	}
}

// TestSynthesizeTCPHandshakeRegisters mirrors Fig. 3(c): the SYN-ACK's
// acknowledgement number is the client's sequence number plus one.
func TestSynthesizeTCPHandshakeRegisters(t *testing.T) {
	m := automata.NewMealy([]string{"SYN", "ACK"})
	s0 := m.Initial()
	s1 := m.AddState()
	s2 := m.AddState()
	m.SetTransition(s0, "SYN", s1, "SYN+ACK")
	m.SetTransition(s1, "ACK", s2, "NIL")
	m.SetTransition(s2, "ACK", s2, "NIL")
	m.SetTransition(s0, "ACK", s0, "RST")
	m.SetTransition(s1, "SYN", s1, "NIL")
	m.SetTransition(s2, "SYN", s2, "NIL")

	// Traces: (seq, ack) inputs; SYN+ACK outputs carry (serverSeq, ack).
	// Server ISS is 1000 in these traces; ack = clientSeq+1.
	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 2,
		OutputParams:   map[string]int{"SYN+ACK": 1}, // just the ack field
		Consts:         []int64{0},
		Positive: []Trace{
			{{Input: "SYN", InVals: []int64{48108, 0}, OutVals: []int64{48109}}},
			{{Input: "SYN", InVals: []int64{77, 0}, OutVals: []int64{78}}},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	outs := em.OutputsFor(s0, "SYN")
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	// The ack must be sn+1 — either directly or via a register that was
	// just set to sn (or sn+1). Check semantically.
	pred, _ := em.Run(Trace{{Input: "SYN", InVals: []int64{500, 0}}})
	if pred[0][0] != 501 {
		t.Fatalf("predicted ack %d for seq 500, want 501", pred[0][0])
	}
}

// TestSynthesizeDetectsConstantZero is the heart of Issue 4 (§6.2.6): when
// the observed field is always zero, the only consistent term is the
// constant 0 — exposing the placeholder bug.
func TestSynthesizeDetectsConstantZero(t *testing.T) {
	m := automata.NewMealy([]string{"DATA", "FC"})
	s0 := m.Initial()
	m.SetTransition(s0, "DATA", s0, "BLOCKED")
	m.SetTransition(s0, "FC", s0, "ACKED")

	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1, // the MAX_STREAM_DATA limit on FC inputs
		OutputParams:   map[string]int{"BLOCKED": 1},
		Consts:         []int64{0},
		Positive: []Trace{
			{
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{0}},
				{Input: "FC", InVals: []int64{200}},
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{0}},
				{Input: "FC", InVals: []int64{300}},
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{0}},
			},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	out := em.OutputsFor(s0, "DATA")[0]
	if out.Kind != Const || out.Value != 0 {
		// A register stuck at zero is an equivalent explanation only if it
		// never tracks the raised limits; rule it out semantically.
		pred, _ := em.Run(Trace{
			{Input: "FC", InVals: []int64{700}},
			{Input: "DATA", InVals: []int64{0}},
		})
		if pred[1][0] != 0 {
			t.Fatalf("machine does not pin the field to zero: %s", em)
		}
	}
}

// TestSynthesizeTracksLimit is Issue 4's control: with the fixed
// implementation the field follows the granted limit, and the synthesized
// term must track it through a register.
func TestSynthesizeTracksLimit(t *testing.T) {
	m := automata.NewMealy([]string{"DATA", "FC"})
	s0 := m.Initial()
	m.SetTransition(s0, "DATA", s0, "BLOCKED")
	m.SetTransition(s0, "FC", s0, "ACKED")

	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{"BLOCKED": 1},
		InitRegs:       []int64{100},
		Consts:         []int64{0},
		Positive: []Trace{
			{
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{100}},
				{Input: "FC", InVals: []int64{200}},
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{200}},
				{Input: "FC", InVals: []int64{300}},
				{Input: "DATA", InVals: []int64{0}, OutVals: []int64{300}},
			},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	pred, ok := em.Run(Trace{
		{Input: "FC", InVals: []int64{5000}},
		{Input: "DATA", InVals: []int64{0}},
	})
	if !ok || pred[1][0] != 5000 {
		t.Fatalf("field does not track the limit: pred=%v\n%s", pred, em)
	}
}

// TestUnsatisfiable: contradictory observations must be rejected.
func TestUnsatisfiable(t *testing.T) {
	m := automata.NewMealy([]string{"A"})
	m.SetTransition(m.Initial(), "A", m.Initial(), "OUT")
	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{"OUT": 1},
		Consts:         []int64{0},
		Positive: []Trace{
			// Same transition, same input value, different outputs: no
			// deterministic term can explain both.
			{{Input: "A", InVals: []int64{5}, OutVals: []int64{1}}},
			{{Input: "A", InVals: []int64{5}, OutVals: []int64{2}}},
		},
	}
	if _, err := Synthesize(p); err == nil {
		t.Fatal("contradictory traces accepted")
	}
}

// TestNegativeExampleRejectsDegenerateSolution: negative traces prune
// otherwise-consistent assignments.
func TestNegativeExampleRejectsDegenerateSolution(t *testing.T) {
	m := automata.NewMealy([]string{"A"})
	m.SetTransition(m.Initial(), "A", m.Initial(), "OUT")
	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{"OUT": 1},
		Consts:         []int64{7},
		Positive: []Trace{
			{{Input: "A", InVals: []int64{7}, OutVals: []int64{7}}},
		},
		// Input 9 must not produce 7: kills the Const(7) and forces the
		// input-tracking explanation.
		Negative: []Trace{
			{{Input: "A", InVals: []int64{9}, OutVals: []int64{7}}},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := em.Run(Trace{{Input: "A", InVals: []int64{42}}})
	if pred[0][0] != 42 {
		t.Fatalf("expected input-tracking solution, got %v\n%s", pred, em)
	}
}

// TestRegisterChainAcrossSteps: a value observed now can only be explained
// by a register set two steps earlier.
func TestRegisterChainAcrossSteps(t *testing.T) {
	m := automata.NewMealy([]string{"SET", "NOP", "GET"})
	s0 := m.Initial()
	s1 := m.AddState()
	s2 := m.AddState()
	m.SetTransition(s0, "SET", s1, "NIL")
	m.SetTransition(s1, "NOP", s2, "NIL")
	m.SetTransition(s2, "GET", s2, "VAL")

	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{"VAL": 1},
		Consts:         []int64{0},
		Positive: []Trace{
			{
				{Input: "SET", InVals: []int64{33}},
				{Input: "NOP", InVals: []int64{0}},
				{Input: "GET", InVals: []int64{0}, OutVals: []int64{33}},
			},
			{
				{Input: "SET", InVals: []int64{81}},
				{Input: "NOP", InVals: []int64{5}},
				{Input: "GET", InVals: []int64{1}, OutVals: []int64{81}},
			},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := em.Run(Trace{
		{Input: "SET", InVals: []int64{123}},
		{Input: "NOP", InVals: []int64{9}},
		{Input: "GET", InVals: []int64{2}},
	})
	if pred[2][0] != 123 {
		t.Fatalf("register chain broken: %v\n%s", pred, em)
	}
}

// TestRefineConvergesWithMoreTraces: refinement adds traces until the
// register pattern generalizes (§4.3's restart-with-larger-T loop).
func TestRefineConvergesWithMoreTraces(t *testing.T) {
	m := automata.NewMealy([]string{"A"})
	m.SetTransition(m.Initial(), "A", m.Initial(), "OUT")

	// Ground truth: output = input + 1. The initial trace (input 0 ->
	// output 1) is also explained by Const(1) or RegPlusOne over the zero
	// register; refinement must discard those.
	gen := func(round int) (Trace, error) {
		v := int64(10 + round*3)
		return Trace{{Input: "A", InVals: []int64{v}, OutVals: []int64{v + 1}}}, nil
	}
	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{"OUT": 1},
		Consts:         []int64{1},
		Positive: []Trace{
			{{Input: "A", InVals: []int64{0}, OutVals: []int64{1}}},
		},
	}
	em, err := Refine(p, gen, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := em.Run(Trace{{Input: "A", InVals: []int64{1000}}})
	if pred[0][0] != 1001 {
		t.Fatalf("refined machine wrong: %v\n%s", pred, em)
	}
}

func TestTermStringAndEval(t *testing.T) {
	regs := []int64{10, 20}
	in := []int64{5}
	cases := []struct {
		term Term
		str  string
		val  int64
	}{
		{Term{Kind: Reg, Index: 1}, "r1", 20},
		{Term{Kind: RegPlusOne, Index: 0}, "r0+1", 11},
		{Term{Kind: Input, Index: 0}, "p0", 5},
		{Term{Kind: InputPlusOne, Index: 0}, "p0+1", 6},
		{Term{Kind: Const, Value: -3}, "-3", -3},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		v, ok := c.term.eval(regs, in)
		if !ok || v != c.val {
			t.Errorf("eval(%s) = %d,%v, want %d", c.str, v, ok, c.val)
		}
	}
	if _, ok := (Term{Kind: Reg, Index: 9}).eval(regs, in); ok {
		t.Error("out-of-range register evaluated")
	}
	if _, ok := (Term{Kind: Input, Index: 9}).eval(regs, in); ok {
		t.Error("out-of-range input evaluated")
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := Synthesize(&Problem{}); err == nil {
		t.Fatal("nil machine accepted")
	}
	m := automata.NewMealy([]string{"A"})
	m.SetTransition(m.Initial(), "A", m.Initial(), "O")
	if _, err := Synthesize(&Problem{Machine: m, NumRegisters: 2, InitRegs: []int64{1}}); err == nil {
		t.Fatal("mismatched initial registers accepted")
	}
}

func TestExtendedMealyDOT(t *testing.T) {
	m := figure4Machine()
	p := &Problem{
		Machine:        m,
		NumRegisters:   1,
		NumInputParams: 2,
		OutputParams:   map[string]int{"ACK_OUT": 2},
		Consts:         []int64{0},
		Positive: []Trace{
			{{Input: "SYN", InVals: []int64{20, 41}, OutVals: []int64{21, 41}}},
		},
	}
	em, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	dot := em.DOT("fig4")
	for _, want := range []string{"digraph \"fig4\"", "s0 -> s1", "o0=", "r0="} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
