package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/quicsim"
)

func TestCompareGoldenEquivalent(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	clone := NewModel("golden", quicsim.GroundTruth(quicsim.ProfileGoogle))
	drift, err := CompareGolden(g, clone, 3)
	if err != nil {
		t.Fatal(err)
	}
	if drift != nil {
		t.Fatalf("equivalent models reported as drift: %v", drift)
	}
}

func TestCompareGoldenDrift(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	q := NewModel("quiche", quicsim.GroundTruth(quicsim.ProfileQuiche))
	drift, err := CompareGolden(g, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if drift == nil {
		t.Fatal("google vs quiche must drift")
	}
	if drift.Witness == nil || len(drift.Witness.Word) == 0 {
		t.Fatal("drift carries no witness")
	}
	// The pre-extracted witness is the report's shortest.
	for _, w := range drift.Report.Witnesses {
		if len(w.Word) < len(drift.Witness.Word) {
			t.Fatalf("witness %v shorter than the extracted one %v", w.Word, drift.Witness.Word)
		}
	}
	text := drift.String()
	for _, want := range []string{"drifted from golden", "shortest witness", "learned:", "golden:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestCompareGoldenAlphabetMismatch(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	foreign := automata.NewMealy([]string{"X"})
	foreign.SetTransition(foreign.Initial(), "X", foreign.Initial(), "Y")
	if _, err := CompareGolden(g, NewModel("foreign", foreign), 1); err == nil {
		t.Fatal("alphabet mismatch not rejected")
	}
}

// TestGoldenModelsAllTargets pins what the extended golden set is: every
// deterministic registry target has a golden, and the QUIC goldens match
// their simulator ground truths (tcp has no ground-truth model; its shape
// is pinned instead).
func TestGoldenModelsAllTargets(t *testing.T) {
	for _, tc := range []struct {
		file    string
		profile quicsim.Profile
	}{
		{"google", quicsim.ProfileGoogle},
		{"google-fixed", quicsim.ProfileGoogleFixed},
		{"quiche", quicsim.ProfileQuiche},
	} {
		m, err := LoadModel(filepath.Join("testdata", tc.file+".json"))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		truth := NewModel("truth", quicsim.GroundTruth(tc.profile))
		if eq, ce := m.Equivalent(truth); !eq {
			t.Fatalf("golden %s differs from ground truth on %v", tc.file, ce)
		}
	}
	tcp, err := LoadModel(filepath.Join("testdata", "tcp.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tcp.States() != 6 || tcp.Transitions() != 42 {
		t.Fatalf("golden tcp has %d states / %d transitions, want 6/42 (§6.1)",
			tcp.States(), tcp.Transitions())
	}
	// lossy-retransmit's golden is pinned by TestGoldenModelsShape: it must
	// differ from clean google by exactly the doubled-flight behaviour.
}
