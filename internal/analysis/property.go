package analysis

import (
	"fmt"
	"strings"

	"repro/internal/automata"
	"repro/internal/quicsim"
)

// Property is a model-level requirement checked exhaustively against a
// learned model: where internal/props checks one recorded packet trace, a
// Property explores every behaviour of the model and returns a shortest
// concrete witness when the model can violate it. Absence of a violation is
// a guarantee about the model (and, to the extent the model is faithful,
// about the implementation — the paper's §5 workflow replays witnesses
// against the live target to confirm).
type Property interface {
	Name() string
	// Describe states the requirement in one sentence.
	Describe() string
	// Check returns a shortest violation witness, or nil when the model
	// satisfies the property.
	Check(m *Model) *PropertyViolation
}

// PropertyViolation is a failed property with its witness trace.
type PropertyViolation struct {
	Property string
	Witness  Witness
	// Detail explains what the final step did wrong.
	Detail string
}

// Error renders the violation.
func (v *PropertyViolation) Error() string {
	last := ""
	if n := len(v.Witness.Word); n > 0 {
		last = fmt.Sprintf(" at step %d (%s / %s)", n, v.Witness.Word[n-1], v.Witness.Outputs[n-1])
	}
	return fmt.Sprintf("analysis: %s violated%s: %s", v.Property, last, v.Detail)
}

// MonitorProperty is a safety property given as a finite monitor automaton
// over the model's I/O steps: Step consumes one (input, output) pair in
// monitor state s and returns the next monitor state, or ok=false to flag a
// violation. Check explores the product of the model and the monitor
// breadth-first, so the returned witness is a shortest violating word.
// Monitor states are small ints managed by the property; Step must keep
// them within a finite set for the product to terminate.
type MonitorProperty struct {
	PropName string
	Info     string
	Start    int
	Step     func(state int, input, output string) (next int, ok bool)
	// Detail renders the violation message for the failing step (optional).
	Detail func(input, output string) string
}

// Name implements Property.
func (p *MonitorProperty) Name() string { return p.PropName }

// Describe implements Property.
func (p *MonitorProperty) Describe() string { return p.Info }

// Check implements Property.
func (p *MonitorProperty) Check(m *Model) *PropertyViolation {
	mealy := m.Mealy()
	type pair struct {
		ms automata.State
		ps int
	}
	type node struct {
		p    pair
		word []string
		outs []string
	}
	start := pair{mealy.Initial(), p.Start}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range mealy.Inputs() {
			ms, out, ok := mealy.Step(cur.p.ms, in)
			if !ok {
				continue
			}
			word := append(append([]string(nil), cur.word...), in)
			outs := append(append([]string(nil), cur.outs...), out)
			ps, accept := p.Step(cur.p.ps, in, out)
			if !accept {
				detail := "monitor rejected"
				if p.Detail != nil {
					detail = p.Detail(in, out)
				}
				return &PropertyViolation{
					Property: p.PropName,
					Witness:  Witness{Word: word, Outputs: outs},
					Detail:   detail,
				}
			}
			np := pair{ms, ps}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word, outs: outs})
			}
		}
	}
	return nil
}

// PropertyResult is one property's outcome in a CheckAll run.
type PropertyResult struct {
	Property  Property
	Violation *PropertyViolation
}

// OK reports whether the property held.
func (r PropertyResult) OK() bool { return r.Violation == nil }

// CheckAll checks every property against the model (Builtins() when none
// are given), returning one result per property in order.
func CheckAll(m *Model, props ...Property) []PropertyResult {
	if len(props) == 0 {
		props = Builtins()
	}
	results := make([]PropertyResult, 0, len(props))
	for _, p := range props {
		results = append(results, PropertyResult{Property: p, Violation: p.Check(m)})
	}
	return results
}

// Violations filters a CheckAll run down to the failures.
func Violations(results []PropertyResult) []*PropertyViolation {
	var out []*PropertyViolation
	for _, r := range results {
		if r.Violation != nil {
			out = append(out, r.Violation)
		}
	}
	return out
}

// Silent is the abstract output symbol for "the implementation sent
// nothing" in the paper's QUIC alphabet.
const Silent = "{}"

// packetCount counts the packets in an abstract output symbol like
// "{SHORT(?,?)[ACK,STREAM],SHORT(?,?)[ACK,STREAM]}" — each packet carries
// exactly one [...] frame list.
func packetCount(output string) int { return strings.Count(output, "[") }

// Builtins returns the built-in model-level property set, the Φ input of
// Fig. 1 lifted from packet traces to learned models. Every builtin is
// vacuously satisfied by models whose vocabulary the property does not
// mention (the TCP model has no CONNECTION_CLOSE output, for example), so
// the whole set is checked against every target.
func Builtins() []Property {
	return []Property{
		CloseIsTerminal(),
		OutputRequiresInput("HANDSHAKE_DONE requires a handshake",
			"HANDSHAKE_DONE", quicsim.SymHandshakeC),
		OutputRequiresInput("STREAM_DATA_BLOCKED requires stream data",
			"STREAM_DATA_BLOCKED", quicsim.SymShortStream),
		AtMostOncePerFlight("HANDSHAKE_DONE"),
		// quic-vn: a server must only fall back to Version Negotiation when
		// the client actually probed with an unknown version (RFC 9000 §6).
		OutputRequiresInput("VERSION_NEGOTIATION requires a bad-version probe",
			"VERSION_NEGOTIATION", quicsim.SymInitialBadVer),
		// quic targets with address validation: a Retry can only answer an
		// Initial (it is the admission step of a new connection).
		OutputRequiresInput("RETRY requires an Initial",
			"RETRY", quicsim.SymInitialCrypto, quicsim.SymInitialHD),
		// tcp-sack: SACK blocks report out-of-order data, so they require a
		// prior out-of-order probe ("[SACK]" is the block option alone; the
		// negotiation echo renders as "[SACKOK,WS]" and does not match).
		OutputRequiresInput("SACK blocks require out-of-order data",
			"[SACK]", "ACK+PSH(?,?,1)[OOO]"),
		// tcp-sack: the SYN+ACK echoes SACK-permitted only when the client
		// SYN offered it.
		OutputRequiresInput("SACK negotiation requires a SACK-permitted SYN",
			"[SACKOK", "SYN(?,?,0)[SACKOK]"),
	}
}

// CloseIsTerminal is the model-level close discipline of RFC 9000 §10.2:
// once the model has emitted an output containing CONNECTION_CLOSE, every
// later response is either silence or a single packet that itself carries
// CONNECTION_CLOSE (one close retransmission per probe). The
// lossy-retransmit target's degraded mode — every flight sent twice —
// violates exactly this: its closed states answer probes with doubled
// CONNECTION_CLOSE packets.
func CloseIsTerminal() Property {
	const (
		open = iota
		closing
	)
	return &MonitorProperty{
		PropName: "close-is-terminal",
		Info:     "after CONNECTION_CLOSE: silence or a single CONNECTION_CLOSE packet per probe",
		Start:    open,
		Step: func(s int, _, out string) (int, bool) {
			closeOut := strings.Contains(out, "CONNECTION_CLOSE")
			if s == closing && out != Silent {
				if !closeOut || packetCount(out) != 1 {
					return s, false
				}
			}
			if closeOut {
				return closing, true
			}
			return s, true
		},
		Detail: func(_, out string) string {
			if !strings.Contains(out, "CONNECTION_CLOSE") {
				return fmt.Sprintf("post-close response %s carries no CONNECTION_CLOSE", out)
			}
			return fmt.Sprintf("post-close response %s is %d packets, want 1", out, packetCount(out))
		},
	}
}

// OutputRequiresInput requires that any output containing outFrag is only
// emitted at or after a step whose input is one of inputs — "output X
// implies prior input Y". Models whose alphabet lacks every required input
// satisfy it vacuously unless they emit the fragment anyway (which is then
// a genuine violation).
func OutputRequiresInput(name, outFrag string, inputs ...string) Property {
	const (
		waiting = iota
		enabled
	)
	inputSet := map[string]bool{}
	for _, in := range inputs {
		inputSet[in] = true
	}
	return &MonitorProperty{
		PropName: name,
		Info:     fmt.Sprintf("an output containing %q requires a prior %v input", outFrag, inputs),
		Start:    waiting,
		Step: func(s int, in, out string) (int, bool) {
			if inputSet[in] {
				s = enabled
			}
			if s == waiting && strings.Contains(out, outFrag) {
				return s, false
			}
			return s, true
		},
		Detail: func(in, out string) string {
			return fmt.Sprintf("%s emitted on input %s before any of %v", outFrag, in, inputs)
		},
	}
}

// AtMostOncePerFlight requires that no single response flight contains the
// fragment more than once — the retransmission-bug detector: a server that
// "recovers" by double-sending emits flights with duplicated
// HANDSHAKE_DONE packets.
func AtMostOncePerFlight(frag string) Property {
	return &MonitorProperty{
		PropName: fmt.Sprintf("%s at most once per flight", frag),
		Info:     fmt.Sprintf("no response flight carries %q more than once", frag),
		Start:    0,
		Step: func(s int, _, out string) (int, bool) {
			return s, strings.Count(out, frag) <= 1
		},
		Detail: func(_, out string) string {
			return fmt.Sprintf("flight %s carries %s %d times", out, frag, strings.Count(out, frag))
		},
	}
}
