package analysis

import (
	"fmt"
	"strings"

	"repro/internal/automata"
)

// DiffReport describes how two models relate, computed by one product
// construction: witnesses are the shortest distinguishing input words (the
// "concrete example traces that show the difference" of §5), and Divergent
// summarises, per reachable joint state, which inputs the models disagree
// on — the "in which state do these two implementations diverge?" view.
type DiffReport struct {
	NameA, NameB     string
	StatesA, StatesB int
	TransA, TransB   int
	Equivalent       bool
	// Witnesses are distinguishing input words with both models' outputs,
	// shortest first.
	Witnesses []DiffWitness
	// Divergent lists every reachable joint state at which at least one
	// input produces different outputs, in BFS (shortest-access) order.
	Divergent []JointDivergence
}

// DiffWitness is one distinguishing trace.
type DiffWitness struct {
	Word            []string
	OutputsA        []string
	OutputsB        []string
	FirstDivergence int
}

// JointDivergence is the per-state summary of one diverging joint state of
// the product automaton.
type JointDivergence struct {
	StateA, StateB automata.State
	// Access is a shortest input word reaching the joint state from the
	// initial states.
	Access []string
	// Inputs are the input symbols on which the two models' outputs (or
	// transition definedness) differ at this joint state.
	Inputs []string
}

// Diff compares two models over the same alphabet by exploring the full
// product automaton, collecting up to maxWitnesses distinguishing traces
// (shortest first; 0 collects none) and a per-joint-state divergence
// summary. Exploration continues through diverging transitions as long as
// both sides stay defined, so divergences deeper than the first are
// summarised too.
func Diff(a, b *Model, maxWitnesses int) *DiffReport {
	ma, mb := a.Mealy(), b.Mealy()
	r := &DiffReport{
		NameA: a.Name, NameB: b.Name,
		StatesA: ma.NumStates(), StatesB: mb.NumStates(),
		TransA: ma.NumTransitions(), TransB: mb.NumTransitions(),
	}
	type pair struct{ a, b automata.State }
	type node struct {
		p    pair
		word []string
	}
	addWitness := func(word []string) {
		if len(r.Witnesses) >= maxWitnesses {
			return
		}
		oa, _ := ma.Run(word)
		ob, _ := mb.Run(word)
		div := firstDivergence(oa, ob)
		if div < 0 {
			return
		}
		r.Witnesses = append(r.Witnesses, DiffWitness{
			Word: word, OutputsA: oa, OutputsB: ob, FirstDivergence: div,
		})
	}
	start := pair{ma.Initial(), mb.Initial()}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var diverging []string
		for _, in := range ma.Inputs() {
			ta, oa, oka := ma.Step(cur.p.a, in)
			tb, ob, okb := mb.Step(cur.p.b, in)
			word := append(append([]string(nil), cur.word...), in)
			if oka != okb || (oka && oa != ob) {
				diverging = append(diverging, in)
				addWitness(word)
			}
			if !oka || !okb {
				continue
			}
			np := pair{ta, tb}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word})
			}
		}
		if len(diverging) > 0 {
			r.Divergent = append(r.Divergent, JointDivergence{
				StateA: cur.p.a, StateB: cur.p.b,
				Access: cur.word, Inputs: diverging,
			})
		}
	}
	r.Equivalent = len(r.Divergent) == 0
	return r
}

func firstDivergence(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// String renders the report for a terminal, mirroring the role of the
// paper's model visualizations when explaining anomalies to developers.
func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model diff: %s (%d states, %d transitions) vs %s (%d states, %d transitions)\n",
		r.NameA, r.StatesA, r.TransA, r.NameB, r.StatesB, r.TransB)
	if r.Equivalent {
		b.WriteString("  models are equivalent\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  models are NOT equivalent (%d diverging joint states, %d witness traces)\n",
		len(r.Divergent), len(r.Witnesses))
	for _, d := range r.Divergent {
		fmt.Fprintf(&b, "  at (%s s%d, %s s%d) after %v: diverges on %s\n",
			r.NameA, d.StateA, r.NameB, d.StateB, d.Access, strings.Join(d.Inputs, ", "))
	}
	for i, w := range r.Witnesses {
		fmt.Fprintf(&b, "  witness %d (diverges at step %d):\n", i+1, w.FirstDivergence+1)
		for j, in := range w.Word {
			oa, ob := "-", "-"
			if j < len(w.OutputsA) {
				oa = w.OutputsA[j]
			}
			if j < len(w.OutputsB) {
				ob = w.OutputsB[j]
			}
			marker := " "
			if j == w.FirstDivergence {
				marker = "*"
			}
			fmt.Fprintf(&b, "   %s step %d: %s\n        %s: %s\n        %s: %s\n", marker, j+1, in, r.NameA, oa, r.NameB, ob)
		}
	}
	return b.String()
}

// CheckSafety runs a safety monitor DFA over all reachable joint states of
// the model and returns a shortest input word whose outputs drive the
// monitor into a bad state, or nil if the model satisfies the property.
// The monitor reads the model's output symbols. The Property API
// (property.go) is the higher-level interface over the same exploration.
func CheckSafety(m *automata.Mealy, monitor *automata.DFA) []string {
	type pair struct {
		ms automata.State
		ds automata.State
	}
	type node struct {
		p    pair
		word []string
	}
	start := pair{m.Initial(), monitor.Initial()}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range m.Inputs() {
			ms, out, ok := m.Step(cur.p.ms, in)
			if !ok {
				continue
			}
			word := append(append([]string(nil), cur.word...), in)
			ds, ok := monitor.Step(cur.p.ds, out)
			if !ok || monitor.Bad(ds) {
				return word
			}
			np := pair{ms, ds}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word})
			}
		}
	}
	return nil
}
