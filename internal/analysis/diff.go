// Package analysis implements the Prognosis Analysis Module of §5: model
// equivalence checking with counterexample traces (the Issue 1 workflow),
// temporal-property checking over learned models (LTLf and safety
// monitors), model-based test generation, and report rendering for
// communicating findings — the paper's visualizations — in textual form.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/automata"
)

// DiffReport describes how two learned models relate.
type DiffReport struct {
	NameA, NameB     string
	StatesA, StatesB int
	TransA, TransB   int
	Equivalent       bool
	// Witnesses are distinguishing input words with both models' outputs,
	// the "concrete example traces that show the difference" of §5.
	Witnesses []DiffWitness
}

// DiffWitness is one distinguishing trace.
type DiffWitness struct {
	Word            []string
	OutputsA        []string
	OutputsB        []string
	FirstDivergence int
}

// Diff compares two models over the same alphabet, collecting up to
// maxWitnesses distinguishing traces. The first witness is a shortest one;
// further witnesses are gathered by locally mutating explored prefixes.
func Diff(nameA string, a *automata.Mealy, nameB string, b *automata.Mealy, maxWitnesses int) *DiffReport {
	r := &DiffReport{
		NameA: nameA, NameB: nameB,
		StatesA: a.NumStates(), StatesB: b.NumStates(),
		TransA: a.NumTransitions(), TransB: b.NumTransitions(),
	}
	eq, ce := a.Equivalent(b)
	r.Equivalent = eq
	if eq {
		return r
	}
	seen := map[string]bool{}
	add := func(word []string) {
		if len(r.Witnesses) >= maxWitnesses {
			return
		}
		key := strings.Join(word, "\x1f")
		if seen[key] {
			return
		}
		oa, _ := a.Run(word)
		ob, _ := b.Run(word)
		div := firstDivergence(oa, ob)
		if div < 0 {
			return // not actually distinguishing
		}
		seen[key] = true
		r.Witnesses = append(r.Witnesses, DiffWitness{
			Word: append([]string(nil), word...), OutputsA: oa, OutputsB: ob, FirstDivergence: div,
		})
	}
	add(ce)
	// Derive further witnesses: extend each access word of A by each input
	// and keep those on which the machines diverge.
	access := a.AccessSequences()
	for _, acc := range access {
		for _, in := range a.Inputs() {
			add(append(append([]string(nil), acc...), in))
		}
	}
	return r
}

func firstDivergence(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// String renders the report for a terminal, mirroring the role of the
// paper's model visualizations when explaining anomalies to developers.
func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model diff: %s (%d states, %d transitions) vs %s (%d states, %d transitions)\n",
		r.NameA, r.StatesA, r.TransA, r.NameB, r.StatesB, r.TransB)
	if r.Equivalent {
		b.WriteString("  models are equivalent\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  models are NOT equivalent (%d witness traces)\n", len(r.Witnesses))
	for i, w := range r.Witnesses {
		fmt.Fprintf(&b, "  witness %d (diverges at step %d):\n", i+1, w.FirstDivergence+1)
		for j, in := range w.Word {
			oa, ob := "-", "-"
			if j < len(w.OutputsA) {
				oa = w.OutputsA[j]
			}
			if j < len(w.OutputsB) {
				ob = w.OutputsB[j]
			}
			marker := " "
			if j == w.FirstDivergence {
				marker = "*"
			}
			fmt.Fprintf(&b, "   %s step %d: %s\n        %s: %s\n        %s: %s\n", marker, j+1, in, r.NameA, oa, r.NameB, ob)
		}
	}
	return b.String()
}

// CheckSafety runs a safety monitor DFA over all reachable joint states of
// the model and returns a shortest input word whose outputs drive the
// monitor into a bad state, or nil if the model satisfies the property.
// The monitor reads the model's output symbols.
func CheckSafety(m *automata.Mealy, monitor *automata.DFA) []string {
	type pair struct {
		ms automata.State
		ds automata.State
	}
	type node struct {
		p    pair
		word []string
	}
	start := pair{m.Initial(), monitor.Initial()}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range m.Inputs() {
			ms, out, ok := m.Step(cur.p.ms, in)
			if !ok {
				continue
			}
			word := append(append([]string(nil), cur.word...), in)
			ds, ok := monitor.Step(cur.p.ds, out)
			if !ok || monitor.Bad(ds) {
				return word
			}
			np := pair{ms, ds}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word})
			}
		}
	}
	return nil
}
