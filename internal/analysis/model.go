package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/automata"
)

// Model is a learned behaviour model under analysis: a named Mealy machine
// with the decision procedures of the analysis plane hanging off it —
// minimization, language equivalence, diffing, reachability and invariant
// queries, property checking, and the unified DOT/JSON codecs. It is the
// one type the rest of the stack exchanges: lab.Result.Model() produces
// one, every prognosis subcommand consumes one.
type Model struct {
	// Name labels the model in reports (typically the registry target it
	// was learned from, or the file it was loaded from).
	Name string

	m *automata.Mealy
}

// NewModel wraps a Mealy machine for analysis. The machine is shared, not
// copied; analyses never mutate it.
func NewModel(name string, m *automata.Mealy) *Model {
	if m == nil {
		return nil
	}
	return &Model{Name: name, m: m}
}

// Mealy returns the underlying machine.
func (m *Model) Mealy() *automata.Mealy { return m.m }

// States returns the number of states.
func (m *Model) States() int { return m.m.NumStates() }

// Transitions returns the number of defined transitions.
func (m *Model) Transitions() int { return m.m.NumTransitions() }

// Inputs returns the input alphabet.
func (m *Model) Inputs() []string { return m.m.Inputs() }

// Run feeds word to the model and returns the output word; ok is false when
// the model has no run for it.
func (m *Model) Run(word []string) ([]string, bool) { return m.m.Run(word) }

// Minimize returns the minimal model with the same behaviour (reachable
// part, canonical BFS state numbering). Minimized models are language-
// equivalent to their originals — property-tested in model_test.go.
func (m *Model) Minimize() *Model {
	return &Model{Name: m.Name, m: m.m.Minimize()}
}

// Equivalent checks language equivalence with another model over the same
// alphabet, returning a shortest distinguishing input word when they
// differ.
func (m *Model) Equivalent(other *Model) (bool, []string) {
	return m.m.Equivalent(other.m)
}

// DOT renders the model in the unified Graphviz codec (automata.ParseDOT
// reads it back).
func (m *Model) DOT() string { return m.m.DOT(m.Name) }

// JSON renders the model in the unified JSON codec.
func (m *Model) JSON() ([]byte, error) { return json.MarshalIndent(m.m, "", "  ") }

// Save writes the model to path in the codec chosen by extension: ".dot"
// for Graphviz, anything else for JSON.
func (m *Model) Save(path string) error {
	var data []byte
	if strings.EqualFold(filepath.Ext(path), ".dot") {
		data = []byte(m.DOT())
	} else {
		var err error
		if data, err = m.JSON(); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model saved in either unified codec (JSON or dot,
// sniffed from the content). The model is named after the file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := automata.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return NewModel(name, m), nil
}

// Step is one transition of a model, as reachability and invariant queries
// see it.
type Step struct {
	From   automata.State
	Input  string
	Output string
	To     automata.State
}

// Witness is a concrete trace of the model produced by a query: the input
// word from the initial state and the outputs along it. The final step is
// the one the query selected (the violating transition, the matching
// output, ...).
type Witness struct {
	Word    []string
	Outputs []string
}

// String renders the witness one step per line.
func (w *Witness) String() string {
	var b strings.Builder
	for i := range w.Word {
		fmt.Fprintf(&b, "  step %d: %s / %s\n", i+1, w.Word[i], w.Outputs[i])
	}
	return b.String()
}

// CheckInvariant checks a transition invariant over every reachable
// transition of the model and returns a shortest witness ending in a
// violating transition, or nil when the invariant holds. This is the
// model-level analogue of a packet-trace property: instead of one recorded
// trace, every behaviour of the learned model is checked.
func (m *Model) CheckInvariant(inv func(Step) bool) *Witness {
	return m.search(func(s Step) bool { return !inv(s) })
}

// FindOutput returns a shortest witness whose final output satisfies pred —
// the basic reachability query ("can the model ever emit X, and how?").
// It returns nil when no reachable transition's output matches.
func (m *Model) FindOutput(pred func(output string) bool) *Witness {
	return m.search(func(s Step) bool { return pred(s.Output) })
}

// ReachState returns a shortest input word driving the model into state s,
// or nil (with ok=false) when s is unreachable.
func (m *Model) ReachState(s automata.State) ([]string, bool) {
	acc, ok := m.m.AccessSequences()[s]
	return acc, ok
}

// Outputs returns the set of output symbols on transitions reachable from
// the initial state, in first-reached (BFS) order.
func (m *Model) Outputs() []string {
	var outs []string
	seen := map[string]bool{}
	for _, s := range m.m.Reachable() {
		for _, in := range m.m.Inputs() {
			if _, out, ok := m.m.Step(s, in); ok && !seen[out] {
				seen[out] = true
				outs = append(outs, out)
			}
		}
	}
	return outs
}

// search BFS-explores the model from the initial state and returns a
// shortest witness whose final transition satisfies hit.
func (m *Model) search(hit func(Step) bool) *Witness {
	type node struct {
		s    automata.State
		word []string
		outs []string
	}
	seen := map[automata.State]bool{m.m.Initial(): true}
	queue := []node{{s: m.m.Initial()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range m.m.Inputs() {
			to, out, ok := m.m.Step(cur.s, in)
			if !ok {
				continue
			}
			step := Step{From: cur.s, Input: in, Output: out, To: to}
			if hit(step) {
				return &Witness{
					Word:    append(append([]string(nil), cur.word...), in),
					Outputs: append(append([]string(nil), cur.outs...), out),
				}
			}
			if !seen[to] {
				seen[to] = true
				queue = append(queue, node{
					s:    to,
					word: append(append([]string(nil), cur.word...), in),
					outs: append(append([]string(nil), cur.outs...), out),
				})
			}
		}
	}
	return nil
}
