package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/learn"
)

// TestSuite is a set of input words derived from a learned model, used for
// model-based testing (§5: "improving testing via model-based test
// generation"). Each word carries the model's expected outputs.
type TestSuite struct {
	Words    [][]string
	Expected [][]string
}

// Len returns the number of test cases.
func (s *TestSuite) Len() int { return len(s.Words) }

// TransitionCoverageSuite generates one test word per transition of the
// model: the state's access sequence followed by the transition input. The
// suite exercises every transition at least once.
func TransitionCoverageSuite(m *automata.Mealy) *TestSuite {
	s := &TestSuite{}
	access := m.AccessSequences()
	for state, acc := range access {
		for _, in := range m.Inputs() {
			if _, _, ok := m.Step(state, in); !ok {
				continue
			}
			word := append(append([]string(nil), acc...), in)
			exp, ok := m.Run(word)
			if !ok {
				continue
			}
			s.Words = append(s.Words, word)
			s.Expected = append(s.Expected, exp)
		}
	}
	return s
}

// WMethodSuite generates Chow's W-method test suite with the given extra
// depth: access · middle · characterizing-word for all combinations. It
// subsumes transition coverage and detects any fault that does not add
// more than depth extra states.
func WMethodSuite(m *automata.Mealy, depth int) *TestSuite {
	s := &TestSuite{}
	access := m.AccessSequences()
	wset := m.CharacterizingSet()
	if len(wset) == 0 {
		wset = [][]string{{}}
	}
	middles := [][]string{{}}
	frontier := [][]string{{}}
	for d := 0; d < depth; d++ {
		var next [][]string
		for _, mid := range frontier {
			for _, in := range m.Inputs() {
				next = append(next, append(append([]string(nil), mid...), in))
			}
		}
		middles = append(middles, next...)
		frontier = next
	}
	// Iterate states in numeric order: access is a map, and ranging over
	// it directly randomises which duplicate word survives the dedup below,
	// making the suite size vary run to run.
	states := make([]automata.State, 0, len(access))
	for st := range access {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	seen := map[string]bool{}
	for _, st := range states {
		acc := access[st]
		for _, mid := range middles {
			for _, w := range wset {
				word := make([]string, 0, len(acc)+len(mid)+len(w))
				word = append(word, acc...)
				word = append(word, mid...)
				word = append(word, w...)
				if len(word) == 0 {
					continue
				}
				key := strings.Join(word, "\x1f")
				if seen[key] {
					continue
				}
				seen[key] = true
				exp, ok := m.Run(word)
				if !ok {
					continue
				}
				s.Words = append(s.Words, word)
				s.Expected = append(s.Expected, exp)
			}
		}
	}
	return s
}

// Failure is one test-case failure against a live system.
type Failure struct {
	Word     []string
	Expected []string
	Actual   []string
}

// String renders the failure.
func (f Failure) String() string {
	return fmt.Sprintf("word %v:\n  expected %v\n  actual   %v", f.Word, f.Expected, f.Actual)
}

// RunSuite executes the suite against a live oracle and collects failures —
// the model-based testing loop the paper uses to confirm model-level bugs
// in the implementation (§2: Prognosis creates concrete traces to check
// whether the bug is real or a false positive to refine the model with).
// Cancelling ctx aborts the run with the failures collected so far.
func RunSuite(ctx context.Context, s *TestSuite, o learn.Oracle, maxFailures int) ([]Failure, error) {
	var fails []Failure
	for i, word := range s.Words {
		if err := ctx.Err(); err != nil {
			return fails, err
		}
		got, err := o.Query(ctx, word)
		if err != nil {
			return fails, err
		}
		match := len(got) >= len(s.Expected[i])
		if match {
			for j := range s.Expected[i] {
				if got[j] != s.Expected[i][j] {
					match = false
					break
				}
			}
		}
		if !match {
			fails = append(fails, Failure{Word: word, Expected: s.Expected[i], Actual: got})
			if maxFailures > 0 && len(fails) >= maxFailures {
				return fails, nil
			}
		}
	}
	return fails, nil
}
