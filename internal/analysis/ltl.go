package analysis

import (
	"fmt"
	"strings"

	"repro/internal/automata"
)

// Formula is an LTLf (linear temporal logic over finite traces) formula
// evaluated over a model's I/O traces. Atoms inspect the input or output
// symbol at the current step. The checker explores the model's traces
// exhaustively up to a bound, so a reported violation is a real trace of
// the model; absence of a violation is a bounded guarantee (§5: for richer
// models the problem is undecidable and the paper, like us, falls back on
// bounded/randomized checking).
type Formula interface {
	// Holds evaluates the formula at position i of the trace.
	Holds(tr IOTrace, i int) bool
	String() string
}

// IOTrace is a finite input/output trace of a Mealy machine.
type IOTrace struct {
	Inputs  []string
	Outputs []string
}

// Len returns the trace length.
func (t IOTrace) Len() int { return len(t.Inputs) }

// --- Formula constructors ---

type atom struct {
	kind string // "in", "out", "outHas", "true"
	arg  string
}

// In matches steps whose input symbol equals sym.
func In(sym string) Formula { return atom{kind: "in", arg: sym} }

// Out matches steps whose output symbol equals sym.
func Out(sym string) Formula { return atom{kind: "out", arg: sym} }

// OutHas matches steps whose output symbol contains the substring frag
// (handy for set-valued QUIC outputs such as "{...CONNECTION_CLOSE...}").
func OutHas(frag string) Formula { return atom{kind: "outHas", arg: frag} }

// True matches every step.
func True() Formula { return atom{kind: "true"} }

func (a atom) Holds(tr IOTrace, i int) bool {
	if i >= tr.Len() {
		return false
	}
	switch a.kind {
	case "in":
		return tr.Inputs[i] == a.arg
	case "out":
		return tr.Outputs[i] == a.arg
	case "outHas":
		return strings.Contains(tr.Outputs[i], a.arg)
	default:
		return true
	}
}

func (a atom) String() string {
	switch a.kind {
	case "in":
		return fmt.Sprintf("in(%q)", a.arg)
	case "out":
		return fmt.Sprintf("out(%q)", a.arg)
	case "outHas":
		return fmt.Sprintf("outHas(%q)", a.arg)
	default:
		return "true"
	}
}

type unary struct {
	op  string
	sub Formula
}

// Not negates a formula.
func Not(f Formula) Formula { return unary{"!", f} }

// Next holds if f holds at the next step (strong next: a next step must
// exist).
func Next(f Formula) Formula { return unary{"X", f} }

// WeakNext holds if f holds at the next step or the trace ends here (the
// finite-trace dual of Next; use it for safety properties so the final step
// is not a spurious violation).
func WeakNext(f Formula) Formula { return unary{"WX", f} }

// Globally holds if f holds at every remaining step.
func Globally(f Formula) Formula { return unary{"G", f} }

// Eventually holds if f holds at some remaining step.
func Eventually(f Formula) Formula { return unary{"F", f} }

func (u unary) Holds(tr IOTrace, i int) bool {
	switch u.op {
	case "!":
		return !u.sub.Holds(tr, i)
	case "X":
		return i+1 < tr.Len() && u.sub.Holds(tr, i+1)
	case "WX":
		return i+1 >= tr.Len() || u.sub.Holds(tr, i+1)
	case "G":
		for j := i; j < tr.Len(); j++ {
			if !u.sub.Holds(tr, j) {
				return false
			}
		}
		return true
	default: // F
		for j := i; j < tr.Len(); j++ {
			if u.sub.Holds(tr, j) {
				return true
			}
		}
		return false
	}
}

func (u unary) String() string { return u.op + "(" + u.sub.String() + ")" }

type binary struct {
	op   string
	l, r Formula
}

// And conjoins formulas.
func And(l, r Formula) Formula { return binary{"&", l, r} }

// Or disjoins formulas.
func Or(l, r Formula) Formula { return binary{"|", l, r} }

// Implies is material implication.
func Implies(l, r Formula) Formula { return binary{"->", l, r} }

// Until holds if r eventually holds and l holds at every step before.
func Until(l, r Formula) Formula { return binary{"U", l, r} }

func (b binary) Holds(tr IOTrace, i int) bool {
	switch b.op {
	case "&":
		return b.l.Holds(tr, i) && b.r.Holds(tr, i)
	case "|":
		return b.l.Holds(tr, i) || b.r.Holds(tr, i)
	case "->":
		return !b.l.Holds(tr, i) || b.r.Holds(tr, i)
	default: // U
		for j := i; j < tr.Len(); j++ {
			if b.r.Holds(tr, j) {
				return true
			}
			if !b.l.Holds(tr, j) {
				return false
			}
		}
		return false
	}
}

func (b binary) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}

// CheckLTL exhaustively checks the formula on every trace of the model of
// length exactly depth (prefixes are covered by shorter formulas' runs; for
// safety formulas a violation on a prefix extends to all completions). It
// returns a violating trace, or nil when all traces up to the bound
// satisfy the formula.
func CheckLTL(m *automata.Mealy, f Formula, depth int) *IOTrace {
	var walk func(s automata.State, tr IOTrace) *IOTrace
	walk = func(s automata.State, tr IOTrace) *IOTrace {
		if tr.Len() == depth {
			if !f.Holds(tr, 0) {
				bad := IOTrace{
					Inputs:  append([]string(nil), tr.Inputs...),
					Outputs: append([]string(nil), tr.Outputs...),
				}
				return &bad
			}
			return nil
		}
		for _, in := range m.Inputs() {
			next, out, ok := m.Step(s, in)
			if !ok {
				continue
			}
			tr.Inputs = append(tr.Inputs, in)
			tr.Outputs = append(tr.Outputs, out)
			if bad := walk(next, tr); bad != nil {
				return bad
			}
			tr.Inputs = tr.Inputs[:len(tr.Inputs)-1]
			tr.Outputs = tr.Outputs[:len(tr.Outputs)-1]
		}
		return nil
	}
	return walk(m.Initial(), IOTrace{})
}
