package analysis

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/automata"
	"repro/internal/quicsim"
)

// TestGoldenCodecRoundTrip pins the unified DOT/JSON codecs against
// checked-in learned models: the clean google model and the
// lossy-retransmit model learned through a 2%-loss link (the degraded
// double-send behaviour). Loading either codec must reproduce the other
// byte for byte.
func TestGoldenCodecRoundTrip(t *testing.T) {
	for _, name := range []string{"google", "lossy-retransmit"} {
		jsonPath := filepath.Join("testdata", name+".json")
		dotPath := filepath.Join("testdata", name+".dot")
		fromJSON, err := LoadModel(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		fromDOT, err := LoadModel(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := fromJSON.Equivalent(fromDOT); !eq {
			t.Fatalf("%s: codecs disagree on %v", name, ce)
		}
		wantDOT, err := os.ReadFile(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		if got := fromJSON.DOT(); got != string(wantDOT) {
			t.Errorf("%s: JSON->DOT export drifted from golden", name)
		}
		wantJSON, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fromDOT.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJSON) {
			t.Errorf("%s: DOT->JSON export drifted from golden", name)
		}
	}
}

// TestGoldenModelsShape pins what the goldens are: google is the clean
// 12-state model; lossy-retransmit is NOT equivalent to it (the doubled
// flights learned under loss) despite sharing the clean-link ground truth.
func TestGoldenModelsShape(t *testing.T) {
	google, err := LoadModel(filepath.Join("testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := google.Equivalent(NewModel("truth", quicsim.GroundTruth(quicsim.ProfileGoogle))); !eq {
		t.Fatalf("golden google differs from ground truth on %v", ce)
	}
	lossy, err := LoadModel(filepath.Join("testdata", "lossy-retransmit.json"))
	if err != nil {
		t.Fatal(err)
	}
	r := Diff(google, lossy, 3)
	if r.Equivalent {
		t.Fatal("degraded lossy-retransmit model must differ from clean google")
	}
	if len(r.Witnesses[0].Word) != 1 {
		t.Fatalf("shortest witness %v, want the single doubled handshake flight", r.Witnesses[0].Word)
	}
}

func TestModelSaveLoad(t *testing.T) {
	dir := t.TempDir()
	m := NewModel("truth", quicsim.GroundTruth(quicsim.ProfileQuiche))
	for _, file := range []string{"m.json", "m.dot"} {
		path := filepath.Join(dir, file)
		if err := m.Save(path); err != nil {
			t.Fatal(err)
		}
		back, err := LoadModel(path)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := m.Equivalent(back); !eq {
			t.Fatalf("%s round trip diverged on %v", file, ce)
		}
		if back.Name != "m" {
			t.Fatalf("loaded name %q, want %q", back.Name, "m")
		}
	}
	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestMinimizePropertyEquivalence is the acceptance property: minimized
// models are language-equivalent to their originals, minimal (no two
// distinct states equivalent), and never larger.
func TestMinimizePropertyEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 1
		m := NewModel("random", randomTotalMealy(r, n))
		min := m.Minimize()
		if eq, _ := m.Equivalent(min); !eq {
			return false
		}
		if min.States() > m.States() {
			return false
		}
		// Minimality: all state pairs of the quotient are distinguishable.
		mm := min.Mealy()
		for a := 0; a < mm.NumStates(); a++ {
			for b := a + 1; b < mm.NumStates(); b++ {
				if !distinguishable(mm, automata.State(a), automata.State(b)) {
					return false
				}
			}
		}
		// Idempotence.
		again := min.Minimize()
		return again.States() == min.States()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// distinguishable reports whether some word separates a and b (bounded by
// the product construction, so exact for total machines).
func distinguishable(m *automata.Mealy, a, b automata.State) bool {
	type pair struct{ x, y automata.State }
	seen := map[pair]bool{{a, b}: true}
	queue := []pair{{a, b}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, in := range m.Inputs() {
			tx, ox, okx := m.Step(p.x, in)
			ty, oy, oky := m.Step(p.y, in)
			if okx != oky || (okx && ox != oy) {
				return true
			}
			if !okx {
				continue
			}
			np := pair{tx, ty}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return false
}

func randomTotalMealy(r *rand.Rand, states int) *automata.Mealy {
	inputs := []string{"a", "b", "c"}
	outputs := []string{"0", "1"}
	m := automata.NewMealy(inputs)
	for m.NumStates() < states {
		m.AddState()
	}
	for s := 0; s < states; s++ {
		for _, in := range inputs {
			m.SetTransition(automata.State(s), in, automata.State(r.Intn(states)), outputs[r.Intn(len(outputs))])
		}
	}
	return m
}

func TestMinimizeGoldenGoogleAlreadyMinimal(t *testing.T) {
	google, err := LoadModel(filepath.Join("testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	min := google.Minimize()
	if min.States() != google.States() {
		t.Fatalf("learned google minimized %d -> %d states; learning should already be minimal",
			google.States(), min.States())
	}
	if eq, ce := min.Equivalent(google); !eq {
		t.Fatalf("minimize changed behaviour on %v", ce)
	}
}

func TestCheckInvariantAndFindOutput(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	// Reachability: the Issue 4 frame is emittable, with a shortest witness.
	w := g.FindOutput(func(out string) bool { return strings.Contains(out, "STREAM_DATA_BLOCKED") })
	if w == nil {
		t.Fatal("STREAM_DATA_BLOCKED unreachable in the google model")
	}
	if !strings.Contains(w.Outputs[len(w.Outputs)-1], "STREAM_DATA_BLOCKED") {
		t.Fatalf("witness final output wrong: %v", w.Outputs)
	}
	if out, ok := g.Run(w.Word); !ok || strings.Join(out, ",") != strings.Join(w.Outputs, ",") {
		t.Fatalf("witness does not replay on the model: %v", w)
	}
	// Quiche never announces blocking (its side of Issue 4).
	q := NewModel("quiche", quicsim.GroundTruth(quicsim.ProfileQuiche))
	if w := q.FindOutput(func(out string) bool { return strings.Contains(out, "STREAM_DATA_BLOCKED") }); w != nil {
		t.Fatalf("quiche unexpectedly emits STREAM_DATA_BLOCKED: %v", w)
	}
	// Invariant: every google output flight has at most 4 packets — false,
	// and the witness must end at a violating transition.
	w = g.CheckInvariant(func(s Step) bool { return strings.Count(s.Output, "[") <= 3 })
	if w == nil {
		t.Fatal("expected the 4-packet server flight to violate")
	}
	if strings.Count(w.Outputs[len(w.Outputs)-1], "[") <= 3 {
		t.Fatalf("witness final output does not violate: %v", w.Outputs)
	}
	// A true invariant returns nil.
	if w := g.CheckInvariant(func(s Step) bool { return true }); w != nil {
		t.Fatalf("trivial invariant violated: %v", w)
	}
	if len(g.Outputs()) == 0 || g.Outputs()[0] == "" {
		t.Fatalf("Outputs() broken: %v", g.Outputs())
	}
}
