package analysis

import (
	"strings"
	"testing"

	"repro/internal/quicsim"
)

func TestMatrixCrossDiff(t *testing.T) {
	google := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	fixed := NewModel("google-fixed", quicsim.GroundTruth(quicsim.ProfileGoogleFixed))
	quiche := NewModel("quiche", quicsim.GroundTruth(quicsim.ProfileQuiche))
	x := NewMatrix([]*Model{google, fixed, quiche}, 2)

	if r := x.Report(0, 1); r == nil || !r.Equivalent {
		// google-fixed differs only in the STREAM_DATA_BLOCKED limit field,
		// which the abstract alphabet does not expose.
		t.Fatalf("google vs google-fixed: %+v", r)
	}
	if r := x.Report(0, 2); r == nil || r.Equivalent {
		t.Fatal("google vs quiche must differ")
	}
	if a, b := x.Report(2, 0), x.Report(0, 2); a != b {
		t.Fatal("matrix not symmetric")
	}
	if x.Report(1, 1) != nil {
		t.Fatal("diagonal must be nil")
	}
	text := x.String()
	for _, want := range []string{"google", "quiche", "="} {
		if !strings.Contains(text, want) {
			t.Fatalf("matrix rendering missing %q:\n%s", want, text)
		}
	}
}
