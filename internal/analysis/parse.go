package analysis

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseFormula parses the textual LTLf syntax accepted by the tools'
// -property flags:
//
//	atom    := in("sym") | out("sym") | outHas("frag") | true | false
//	unary   := ! f | X f | WX f | G f | F f
//	binary  := f & g | f "|" g | f -> g | f U g
//
// Operator precedence (loosest to tightest): ->, U, |, &, unary.
// Parentheses group as usual. Example:
//
//	G( outHas("CONNECTION_CLOSE") -> G(!outHas("HANDSHAKE_DONE]")) )
func ParseFormula(src string) (Formula, error) {
	p := &parser{src: src}
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("analysis: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return f, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// eat consumes tok if present (must be followed by a non-identifier char
// for word tokens).
func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return false
	}
	end := p.pos + len(tok)
	if isWord(tok) && end < len(p.src) && isIdentChar(p.src[end]) {
		return false
	}
	p.pos = end
	return true
}

func isWord(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return len(s) > 0
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) parseImplies() (Formula, error) {
	l, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	if p.eat("->") {
		r, err := p.parseImplies() // right associative
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) parseUntil() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.eat("U") {
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		l = Until(l, r)
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		// Avoid eating the arrow of "->"; '|' is unambiguous.
		if p.peek() == '|' {
			p.pos++
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = Or(l, r)
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.eat("&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	p.skipSpace()
	switch {
	case p.eat("!"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case p.eat("WX"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return WeakNext(f), nil
	case p.eat("X"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Next(f), nil
	case p.eat("G"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Globally(f), nil
	case p.eat("F"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Eventually(f), nil
	case p.eat("("):
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, fmt.Errorf("analysis: missing ')' at %d", p.pos)
		}
		return f, nil
	case p.eat("true"):
		return True(), nil
	case p.eat("false"):
		return Not(True()), nil
	case p.eat("outHas"):
		arg, err := p.parseStringArg()
		if err != nil {
			return nil, err
		}
		return OutHas(arg), nil
	case p.eat("out"):
		arg, err := p.parseStringArg()
		if err != nil {
			return nil, err
		}
		return Out(arg), nil
	case p.eat("in"):
		arg, err := p.parseStringArg()
		if err != nil {
			return nil, err
		}
		return In(arg), nil
	default:
		return nil, fmt.Errorf("analysis: unexpected input at %d: %q", p.pos, rest(p.src, p.pos))
	}
}

// parseStringArg parses ("...") with no escapes (symbols never contain
// quotes).
func (p *parser) parseStringArg() (string, error) {
	if !p.eat("(") {
		return "", fmt.Errorf("analysis: expected '(' at %d", p.pos)
	}
	p.skipSpace()
	if p.peek() != '"' {
		return "", fmt.Errorf("analysis: expected '\"' at %d", p.pos)
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '"')
	if end < 0 {
		return "", fmt.Errorf("analysis: unterminated string at %d", p.pos)
	}
	arg := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	if !p.eat(")") {
		return "", fmt.Errorf("analysis: expected ')' at %d", p.pos)
	}
	return arg, nil
}

func rest(s string, pos int) string {
	if pos >= len(s) {
		return "<end>"
	}
	if len(s)-pos > 20 {
		return s[pos:pos+20] + "..."
	}
	return s[pos:]
}
