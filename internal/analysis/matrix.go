package analysis

import (
	"fmt"
	"strings"
)

// Matrix is a cross-run diff: every pair of models from a campaign (or any
// model collection) compared by one product construction each. Pairs[i][j]
// holds the report for Models[i] vs Models[j] with i < j; the matrix is
// symmetric, so the lower triangle and diagonal are nil.
type Matrix struct {
	Models []*Model
	Pairs  [][]*DiffReport
}

// NewMatrix cross-compares the models, collecting up to maxWitnesses
// distinguishing traces per pair.
func NewMatrix(models []*Model, maxWitnesses int) *Matrix {
	x := &Matrix{Models: models, Pairs: make([][]*DiffReport, len(models))}
	for i := range models {
		x.Pairs[i] = make([]*DiffReport, len(models))
		for j := i + 1; j < len(models); j++ {
			x.Pairs[i][j] = Diff(models[i], models[j], maxWitnesses)
		}
	}
	return x
}

// Report returns the diff for models i and j in either order (nil for
// i == j).
func (x *Matrix) Report(i, j int) *DiffReport {
	if i == j {
		return nil
	}
	if i > j {
		i, j = j, i
	}
	return x.Pairs[i][j]
}

// String renders the matrix as a grid: "=" for equivalent pairs, the
// number of diverging joint states otherwise.
func (x *Matrix) String() string {
	var b strings.Builder
	width := 8
	for _, m := range x.Models {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, m := range x.Models {
		fmt.Fprintf(&b, "%-*s", width+2, m.Name)
	}
	b.WriteString("\n")
	for i, m := range x.Models {
		fmt.Fprintf(&b, "%-*s", width+2, m.Name)
		for j := range x.Models {
			cell := "."
			if r := x.Report(i, j); r != nil {
				if r.Equivalent {
					cell = "="
				} else {
					cell = fmt.Sprintf("%d!", len(r.Divergent))
				}
			}
			fmt.Fprintf(&b, "%-*s", width+2, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
