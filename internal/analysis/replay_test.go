package analysis

import (
	"context"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/learn"
	"repro/internal/quicsim"
)

// flakyOracle corrupts every third execution's outputs — a stand-in for a
// lossy replay link.
func flakyOracle(m learn.Oracle) learn.Oracle {
	var calls int64
	return learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		out, err := m.Query(ctx, word)
		if err != nil {
			return nil, err
		}
		if atomic.AddInt64(&calls, 1)%3 == 0 {
			corrupted := append([]string(nil), out...)
			corrupted[len(corrupted)-1] = "{CORRUPTED}"
			return corrupted, nil
		}
		return out, nil
	})
}

func TestReplayMajorityOutvotesFlakiness(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC}
	want, _ := g.Run(word)
	got, err := Replay(context.Background(), flakyOracle(learn.MealyOracle(g)), word, 5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("majority replay %v, want %v", got, want)
	}
}

func TestReplayShortOutputRejected(t *testing.T) {
	short := learn.OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		return []string{"only-one"}, nil
	})
	if _, err := Replay(context.Background(), short, []string{"a", "b"}, 1); err == nil {
		t.Fatal("short output accepted")
	}
}

// TestConfirmWitnessOnGoldens replays the google-vs-lossy witness against
// "live" oracles backed by the two golden models: the divergence must
// reproduce and match both models' predictions.
func TestConfirmWitnessOnGoldens(t *testing.T) {
	google, err := LoadModel(filepath.Join("testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := LoadModel(filepath.Join("testdata", "lossy-retransmit.json"))
	if err != nil {
		t.Fatal(err)
	}
	report := Diff(google, lossy, 1)
	if report.Equivalent {
		t.Fatal("goldens must differ")
	}
	w := report.Witnesses[0]
	confirmed, err := ConfirmWitness(context.Background(), w,
		flakyOracle(learn.MealyOracle(google.Mealy())),
		flakyOracle(learn.MealyOracle(lossy.Mealy())), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !confirmed.Diverged {
		t.Fatal("witness did not reproduce")
	}
	if confirmed.At != w.FirstDivergence {
		t.Fatalf("diverged at %d, model predicted %d", confirmed.At, w.FirstDivergence)
	}
	if !confirmed.MatchesModels {
		t.Fatalf("live outputs drifted from models: %v / %v", confirmed.LiveA, confirmed.LiveB)
	}
}

func TestConfirmWitnessAgreement(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	w := DiffWitness{Word: []string{quicsim.SymInitialCrypto}}
	confirmed, err := ConfirmWitness(context.Background(), w,
		learn.MealyOracle(g), learn.MealyOracle(g.Clone()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if confirmed.Diverged || confirmed.At != -1 {
		t.Fatalf("identical systems reported divergent: %+v", confirmed)
	}
}
