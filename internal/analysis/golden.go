package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the golden-model side of the regression workflow
// (`prognosis regress`, docs/REGRESSION.md): a freshly learned model is
// compared against a checked-in golden, and any behavioural drift is
// reported with the shortest concrete witness — the trace a developer
// replays to see the two implementations answer differently.

// GoldenDrift reports that a learned model diverged from its golden: the
// full diff and the shortest distinguishing witness, pre-extracted because
// the regression gate's one job is to print it.
type GoldenDrift struct {
	Report  *DiffReport
	Witness *DiffWitness // shortest distinguishing trace (nil only if maxWitnesses was 0)
}

// String renders the drift for a gate log: the headline and the shortest
// witness.
func (d *GoldenDrift) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s drifted from golden %s: %d diverging joint states\n",
		d.Report.NameA, d.Report.NameB, len(d.Report.Divergent))
	if w := d.Witness; w != nil {
		fmt.Fprintf(&b, "shortest witness (diverges at step %d):\n", w.FirstDivergence+1)
		for i, in := range w.Word {
			marker := " "
			if i == w.FirstDivergence {
				marker = "*"
			}
			fmt.Fprintf(&b, " %s step %d: %s\n     learned: %s\n     golden:  %s\n",
				marker, i+1, in, w.OutputsA[i], w.OutputsB[i])
		}
	}
	return b.String()
}

// CompareGolden diffs a learned model against its golden and returns nil
// when they are behaviourally equivalent, or the drift (with up to
// maxWitnesses shortest distinguishing traces) when they are not. Models
// over different input alphabets cannot have drifted — they are different
// experiments — so that is an error, not a drift.
func CompareGolden(learned, golden *Model, maxWitnesses int) (*GoldenDrift, error) {
	if learned == nil || golden == nil {
		return nil, fmt.Errorf("analysis: CompareGolden needs two models")
	}
	if !sameInputs(learned.Inputs(), golden.Inputs()) {
		return nil, fmt.Errorf("analysis: %s and golden %s speak different alphabets (%v vs %v)",
			learned.Name, golden.Name, learned.Inputs(), golden.Inputs())
	}
	r := Diff(learned, golden, maxWitnesses)
	if r.Equivalent {
		return nil, nil
	}
	d := &GoldenDrift{Report: r}
	if len(r.Witnesses) > 0 {
		d.Witness = &r.Witnesses[0]
	}
	return d, nil
}

// sameInputs compares alphabets as sets (symbol order is local to each
// machine).
func sameInputs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
