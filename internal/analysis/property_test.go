package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/quicsim"
)

// TestBuiltinsHoldOnCleanGoldens: the clean google golden satisfies the
// whole builtin property set.
func TestBuiltinsHoldOnGoldenGoogle(t *testing.T) {
	google, err := LoadModel(filepath.Join("testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range CheckAll(google) {
		if !r.OK() {
			t.Errorf("%s violated on clean google: %v", r.Property.Name(), r.Violation)
		}
	}
}

// TestBuiltinsFlagLossyRetransmit: the degraded lossy-retransmit golden —
// learned through a lossy link — violates exactly the two
// retransmission-bug properties, with witnesses that replay on the model.
func TestBuiltinsFlagLossyRetransmit(t *testing.T) {
	lossy, err := LoadModel(filepath.Join("testdata", "lossy-retransmit.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{ // property name -> expect violation
		CloseIsTerminal().Name():                     true,
		AtMostOncePerFlight("HANDSHAKE_DONE").Name(): true,
	}
	results := CheckAll(lossy)
	if len(Violations(results)) != 2 {
		t.Fatalf("want exactly 2 violations, got %d", len(Violations(results)))
	}
	for _, r := range results {
		if want[r.Property.Name()] == r.OK() {
			t.Errorf("%s: ok=%v, want violation=%v", r.Property.Name(), r.OK(), want[r.Property.Name()])
		}
		if v := r.Violation; v != nil {
			out, ok := lossy.Run(v.Witness.Word)
			if !ok || strings.Join(out, ",") != strings.Join(v.Witness.Outputs, ",") {
				t.Errorf("%s: witness %v does not replay on the model", r.Property.Name(), v.Witness.Word)
			}
			if !strings.Contains(v.Error(), r.Property.Name()) {
				t.Errorf("violation rendering broken: %s", v.Error())
			}
		}
	}
	// The close violation is specifically the doubled close retransmission.
	v := Violations(results)[0]
	final := v.Witness.Outputs[len(v.Witness.Outputs)-1]
	if strings.Count(final, "CONNECTION_CLOSE") != 2 {
		t.Fatalf("close witness output %q is not the doubled close", final)
	}
}

// TestBuiltinsOnAllGroundTruths: every builtin holds on every profile's
// specification machine (including the mvfst skeleton), and holds
// vacuously on a machine with a disjoint vocabulary.
func TestBuiltinsOnAllGroundTruths(t *testing.T) {
	for _, p := range []quicsim.Profile{
		quicsim.ProfileGoogle, quicsim.ProfileGoogleFixed,
		quicsim.ProfileQuiche, quicsim.ProfileMvfst, quicsim.ProfileLossyRetransmit,
	} {
		m := NewModel(p.String(), quicsim.GroundTruth(p))
		for _, r := range CheckAll(m) {
			if !r.OK() {
				t.Errorf("%s: %s violated on the specification: %v", p, r.Property.Name(), r.Violation)
			}
		}
	}
	tcp := automata.NewMealy([]string{"SYN"})
	tcp.SetTransition(0, "SYN", 0, "SYN+ACK")
	for _, r := range CheckAll(NewModel("mini-tcp", tcp)) {
		if !r.OK() {
			t.Errorf("%s not vacuous on a non-QUIC vocabulary: %v", r.Property.Name(), r.Violation)
		}
	}
}

// TestOutputRequiresInputViolation: a machine that emits the fragment
// before the enabling input is caught with a shortest witness.
func TestOutputRequiresInputViolation(t *testing.T) {
	m := automata.NewMealy([]string{"go", "other"})
	s1 := m.AddState()
	m.SetTransition(0, "other", s1, "{}")
	m.SetTransition(0, "go", s1, "{}")
	m.SetTransition(s1, "other", s1, "{X}") // X before any "go" via other,other
	m.SetTransition(s1, "go", s1, "{X}")    // enabling input on the same step is fine
	p := OutputRequiresInput("x-needs-go", "X", "go")
	v := p.Check(NewModel("m", m))
	if v == nil {
		t.Fatal("expected a violation")
	}
	if strings.Join(v.Witness.Word, ",") != "other,other" {
		t.Fatalf("witness %v, want the shortest [other other]", v.Witness.Word)
	}
	// Same-step enabling: a machine whose X only follows "go" passes.
	ok := automata.NewMealy([]string{"go", "other"})
	s1 = ok.AddState()
	ok.SetTransition(0, "other", 0, "{}")
	ok.SetTransition(0, "go", s1, "{X}")
	ok.SetTransition(s1, "other", s1, "{X}")
	ok.SetTransition(s1, "go", s1, "{X}")
	if v := p.Check(NewModel("ok", ok)); v != nil {
		t.Fatalf("same-step enabling flagged: %v", v)
	}
}

// TestCloseIsTerminalCatchesNonCloseChatter: the other violation mode —
// a non-close response after closing.
func TestCloseIsTerminalCatchesNonCloseChatter(t *testing.T) {
	m := automata.NewMealy([]string{"a"})
	s1 := m.AddState()
	s2 := m.AddState()
	m.SetTransition(0, "a", s1, "{SHORT(?,?)[CONNECTION_CLOSE]}")
	m.SetTransition(s1, "a", s2, "{SHORT(?,?)[ACK,STREAM]}")
	m.SetTransition(s2, "a", s2, "{}")
	v := CloseIsTerminal().Check(NewModel("chatty", m))
	if v == nil {
		t.Fatal("post-close data not flagged")
	}
	if !strings.Contains(v.Detail, "no CONNECTION_CLOSE") {
		t.Fatalf("detail %q", v.Detail)
	}
}

func TestCheckAllDefaultsToBuiltins(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	if got, want := len(CheckAll(g)), len(Builtins()); got != want {
		t.Fatalf("CheckAll ran %d properties, want %d", got, want)
	}
}
