package analysis

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/learn"
)

// Replay executes an input word against a live oracle votes times and
// returns the per-position modal output word — the on-the-wire
// confirmation step of the paper's workflow: a model-level finding (a diff
// witness, a property violation) is replayed against the implementation to
// check it is real. Voting makes replays trustworthy over impaired links:
// a dropped datagram corrupts one execution, not the per-position mode.
// votes < 1 is treated as 1.
func Replay(ctx context.Context, o learn.Oracle, word []string, votes int) ([]string, error) {
	if votes < 1 {
		votes = 1
	}
	execs := make([][]string, 0, votes)
	for i := 0; i < votes; i++ {
		out, err := o.Query(ctx, word)
		if err != nil {
			return nil, fmt.Errorf("analysis: replay %v: %w", word, err)
		}
		if len(out) < len(word) {
			return nil, fmt.Errorf("analysis: replay %v: short output (%d of %d)", word, len(out), len(word))
		}
		execs = append(execs, out[:len(word)])
	}
	final := make([]string, len(word))
	for pos := range word {
		counts := map[string]int{}
		for _, e := range execs {
			counts[e[pos]]++
		}
		best, bestN := "", -1
		for out, n := range counts {
			// Ties break deterministically toward the smaller symbol.
			if n > bestN || (n == bestN && out < best) {
				best, bestN = out, n
			}
		}
		final[pos] = best
	}
	return final, nil
}

// ReplayedWitness is the outcome of confirming one diff witness against
// two live targets.
type ReplayedWitness struct {
	Witness DiffWitness
	LiveA   []string
	LiveB   []string
	// Diverged reports whether the live targets produced different outputs
	// on the witness word — the model-level divergence reproduced on the
	// wire.
	Diverged bool
	// At is the first diverging position (-1 when the live runs agree).
	At int
	// MatchesModels reports whether each live run also agreed with its own
	// model's prediction.
	MatchesModels bool
}

// ConfirmWitness replays a diff witness against both live targets (votes
// executions each, majority per position) and reports whether the
// divergence the models predict shows up on the wire.
func ConfirmWitness(ctx context.Context, w DiffWitness, oracleA, oracleB learn.Oracle, votes int) (*ReplayedWitness, error) {
	liveA, err := Replay(ctx, oracleA, w.Word, votes)
	if err != nil {
		return nil, err
	}
	liveB, err := Replay(ctx, oracleB, w.Word, votes)
	if err != nil {
		return nil, err
	}
	at := firstDivergence(liveA, liveB)
	return &ReplayedWitness{
		Witness: w, LiveA: liveA, LiveB: liveB,
		Diverged: at >= 0, At: at,
		MatchesModels: join(liveA) == join(w.OutputsA) && join(liveB) == join(w.OutputsB),
	}, nil
}

func join(w []string) string { return strings.Join(w, "\x1e") }
