package analysis

import (
	"testing"

	"repro/internal/quicsim"
)

func TestParseFormulaBasics(t *testing.T) {
	tr := IOTrace{Inputs: []string{"a", "b"}, Outputs: []string{"x", "y"}}
	cases := []struct {
		src  string
		want bool
	}{
		{`in("a")`, true},
		{`out("x")`, true},
		{`outHas("y")`, false},
		{`true`, true},
		{`false`, false},
		{`!in("b")`, true},
		{`X in("b")`, true},
		{`WX in("b")`, true},
		{`G true`, true},
		{`F out("y")`, true},
		{`in("a") & out("x")`, true},
		{`in("b") | out("x")`, true},
		{`in("b") -> false`, true},
		{`in("a") -> out("x")`, true},
		{`!out("y") U in("b")`, true},
		{`G(in("a") -> X out("y"))`, true},
		{`(in("a") & out("x")) -> F outHas("y")`, true},
	}
	for _, c := range cases {
		f, err := ParseFormula(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := f.Holds(tr, 0); got != c.want {
			t.Errorf("%q = %v, want %v (parsed %s)", c.src, got, c.want, f)
		}
	}
}

func TestParseFormulaPrecedence(t *testing.T) {
	// "a & b -> c" must parse as (a & b) -> c.
	f, err := ParseFormula(`in("a") & in("nope") -> out("nothing")`)
	if err != nil {
		t.Fatal(err)
	}
	tr := IOTrace{Inputs: []string{"a"}, Outputs: []string{"x"}}
	// (true & false) -> false == true.
	if !f.Holds(tr, 0) {
		t.Fatalf("precedence wrong: %s", f)
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, src := range []string{
		``, `G`, `in(`, `in("a"`, `in("a") &`, `bogus("x")`,
		`(in("a")`, `in("a") extra`, `out("unterminated`,
	} {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestParsedFormulaOnQUICModel(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	f, err := ParseFormula(`G( outHas("CONNECTION_CLOSE") -> G(!outHas("HANDSHAKE_DONE]")) )`)
	if err != nil {
		t.Fatal(err)
	}
	if bad := CheckLTL(g, f, 4); bad != nil {
		t.Fatalf("property should hold: %v", bad.Inputs)
	}
	f2, err := ParseFormula(`G(!outHas("STREAM_DATA_BLOCKED"))`)
	if err != nil {
		t.Fatal(err)
	}
	bad := CheckLTL(g, f2, 4)
	if bad == nil {
		t.Fatal("expected a witness: google does emit STREAM_DATA_BLOCKED")
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		`G(in("a") -> X out("b"))`,
		`(in("a") U out("b")) | !true`,
		`F (outHas("x") & WX in("y"))`,
	}
	for _, src := range srcs {
		f, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		// The String rendering must itself re-parse to a formula.
		if _, err := ParseFormula(f.String()); err != nil {
			t.Fatalf("re-parse %q (from %q): %v", f.String(), src, err)
		}
	}
}
