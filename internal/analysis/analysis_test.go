package analysis

import (
	"context"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/learn"
	"repro/internal/quicsim"
)

func TestDiffGoogleQuiche(t *testing.T) {
	g := NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	q := NewModel("quiche", quicsim.GroundTruth(quicsim.ProfileQuiche))
	r := Diff(g, q, 5)
	if r.Equivalent {
		t.Fatal("google and quiche must differ")
	}
	if r.StatesA != 12 || r.StatesB != 8 {
		t.Fatalf("state counts %d/%d, want 12/8", r.StatesA, r.StatesB)
	}
	if len(r.Witnesses) == 0 {
		t.Fatal("no witnesses collected")
	}
	for _, w := range r.Witnesses {
		if w.FirstDivergence < 0 || w.FirstDivergence >= len(w.Word) {
			t.Fatalf("bad divergence index %d for %v", w.FirstDivergence, w.Word)
		}
		if w.OutputsA[w.FirstDivergence] == w.OutputsB[w.FirstDivergence] {
			t.Fatalf("witness %v does not diverge at claimed step", w.Word)
		}
	}
	// The first witness is a shortest one: no later witness may be shorter.
	for _, w := range r.Witnesses[1:] {
		if len(w.Word) < len(r.Witnesses[0].Word) {
			t.Fatalf("witness %v shorter than first %v", w.Word, r.Witnesses[0].Word)
		}
	}
	if len(r.Divergent) == 0 {
		t.Fatal("no per-state divergence summaries")
	}
	for _, d := range r.Divergent {
		if len(d.Inputs) == 0 {
			t.Fatalf("joint state (%d,%d) summarised with no diverging inputs", d.StateA, d.StateB)
		}
		// The access word must actually reach the named joint state.
		sa, okA := g.Mealy().StateAfter(d.Access)
		sb, okB := q.Mealy().StateAfter(d.Access)
		if !okA || !okB || sa != d.StateA || sb != d.StateB {
			t.Fatalf("access %v does not reach (%d,%d)", d.Access, d.StateA, d.StateB)
		}
	}
	text := r.String()
	for _, want := range []string{"NOT equivalent", "witness 1", "diverging joint states"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, text)
		}
	}
}

func TestDiffEquivalentModels(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	r := Diff(NewModel("a", g), NewModel("b", g.Clone()), 3)
	if !r.Equivalent || len(r.Witnesses) != 0 || len(r.Divergent) != 0 {
		t.Fatalf("identical models reported different: %+v", r)
	}
	if !strings.Contains(r.String(), "equivalent") {
		t.Fatal("report rendering broken")
	}
}

// TestCheckSafetyFindsHandshakeDoneViolation: property "the server never
// answers a client HANDSHAKE_DONE with silence once established" — checked
// against a model where it fails, producing a concrete witness word.
func TestCheckSafetyOnQUICModel(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	// Monitor for the deliberately strict property "once closed, the
	// server stays silent". Google retransmits CONNECTION_CLOSE on further
	// probes, so a witness exists — exactly the kind of
	// specification-tightening observation §6.2.3 describes.
	d := automata.NewDFA()
	closed := d.AddState(false)
	bad := d.AddState(true)
	d.SetTransition(0, automata.Wildcard, 0)
	d.SetTransition(closed, "{}", closed)
	d.SetTransition(closed, automata.Wildcard, bad)
	// Any output mentioning CONNECTION_CLOSE arms the monitor. Explicit
	// edges beat the wildcard, so enumerate the model's actual labels.
	for s := 0; s < g.NumStates(); s++ {
		for _, in := range g.Inputs() {
			_, out, ok := g.Step(automata.State(s), in)
			if !ok {
				continue
			}
			if strings.Contains(out, "CONNECTION_CLOSE") {
				d.SetTransition(0, out, closed)
			}
		}
	}
	word := CheckSafety(g, d)
	if word == nil {
		t.Fatal("expected a violation witness (google retransmits CONNECTION_CLOSE)")
	}
	outs, _ := g.Run(word)
	sawClose := false
	for _, o := range outs {
		if strings.Contains(o, "CONNECTION_CLOSE") {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatalf("witness %v does not exercise a close", word)
	}
}

func TestCheckSafetyHoldsOnCleanProperty(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileQuiche)
	// Property: the server never sends RESET (quiche's model has none).
	d := automata.NewDFA()
	bad := d.AddState(true)
	d.SetTransition(0, automata.Wildcard, 0)
	d.SetTransition(0, "{RESET(?,?)[]}", bad)
	if word := CheckSafety(g, d); word != nil {
		t.Fatalf("unexpected violation %v", word)
	}
}

func TestLTLOperators(t *testing.T) {
	tr := IOTrace{
		Inputs:  []string{"a", "b", "c"},
		Outputs: []string{"x", "y", "z"},
	}
	cases := []struct {
		f    Formula
		want bool
	}{
		{In("a"), true},
		{In("b"), false},
		{Out("x"), true},
		{OutHas("y"), false},
		{Next(In("b")), true},
		{Next(Next(Next(In("d")))), false}, // strong next beyond trace end
		{Globally(Not(Out("w"))), true},
		{Eventually(Out("z")), true},
		{Eventually(Out("w")), false},
		{And(In("a"), Out("x")), true},
		{Or(In("b"), Out("x")), true},
		{Implies(In("b"), Out("w")), true}, // vacuous
		{Until(Not(Out("z")), In("c")), true},
		{Until(In("a"), In("c")), false}, // l fails at step 1 before r holds
		{Globally(Implies(In("b"), Next(In("c")))), true},
	}
	for _, c := range cases {
		if got := c.f.Holds(tr, 0); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestCheckLTLOnQUIC: "a connection close is permanent": once an output
// contains CONNECTION_CLOSE, the server never completes a handshake again.
func TestCheckLTLOnQUIC(t *testing.T) {
	g := quicsim.GroundTruth(quicsim.ProfileGoogle)
	closed := OutHas("CONNECTION_CLOSE")
	handshakeDone := OutHas("HANDSHAKE_DONE]") // the HD flight after close would violate
	f := Globally(Implies(closed, Globally(Not(handshakeDone))))
	if bad := CheckLTL(g, f, 4); bad != nil {
		t.Fatalf("close is not permanent: %v / %v", bad.Inputs, bad.Outputs)
	}
	// A deliberately false property yields a concrete witness.
	never := Globally(Not(OutHas("CONNECTION_CLOSE")))
	bad := CheckLTL(g, never, 3)
	if bad == nil {
		t.Fatal("expected a witness for the false property")
	}
	found := false
	for _, o := range bad.Outputs {
		if strings.Contains(o, "CONNECTION_CLOSE") {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness does not violate: %v", bad.Outputs)
	}
}

func TestTransitionCoverageSuite(t *testing.T) {
	q := quicsim.GroundTruth(quicsim.ProfileQuiche)
	s := TransitionCoverageSuite(q)
	if s.Len() != q.NumTransitions() {
		t.Fatalf("suite has %d cases, want %d (one per transition)", s.Len(), q.NumTransitions())
	}
	// All expected outputs must agree with the model.
	for i, w := range s.Words {
		exp, ok := q.Run(w)
		if !ok || strings.Join(exp, ",") != strings.Join(s.Expected[i], ",") {
			t.Fatalf("case %d inconsistent with model", i)
		}
	}
}

func TestWMethodSuiteDetectsMutation(t *testing.T) {
	q := quicsim.GroundTruth(quicsim.ProfileQuiche)
	suite := WMethodSuite(q, 1)
	if suite.Len() == 0 {
		t.Fatal("empty suite")
	}
	// Run against the correct system: no failures.
	fails, err := RunSuite(context.Background(), suite, learn.MealyOracle(q), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("false positives: %v", fails)
	}
	// Mutate one transition's output: the suite must catch it.
	mut := q.Clone()
	mut.SetTransition(2, quicsim.SymShortStream, 5, "{MUTANT}")
	fails, err = RunSuite(context.Background(), suite, learn.MealyOracle(mut), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Fatal("W-method suite missed an output mutation")
	}
	if !strings.Contains(fails[0].String(), "expected") {
		t.Fatal("failure rendering broken")
	}
}

func TestRunSuiteReportsActualOutputs(t *testing.T) {
	m := automata.NewMealy([]string{"a"})
	m.SetTransition(0, "a", 0, "ok")
	suite := TransitionCoverageSuite(m)
	bad := learn.OracleFunc(func(ctx context.Context, w []string) ([]string, error) {
		out := make([]string, len(w))
		for i := range out {
			out[i] = "wrong"
		}
		return out, nil
	})
	fails, err := RunSuite(context.Background(), suite, bad, 0)
	if err != nil || len(fails) != 1 {
		t.Fatalf("fails=%v err=%v", fails, err)
	}
	if fails[0].Actual[0] != "wrong" {
		t.Fatalf("actual = %v", fails[0].Actual)
	}
}
