package automata

import "fmt"

// DFA is a deterministic finite automaton over string symbols, used by the
// analysis module as a safety monitor: a run that reaches a rejecting (bad)
// state witnesses a property violation. Transitions may be declared with the
// wildcard symbol "*" which matches any symbol without an explicit edge.
type DFA struct {
	initial   State
	trans     []map[string]State
	wildcards []State // per-state default transition, Invalid if none
	bad       []bool
}

// Wildcard matches any symbol without an explicit transition.
const Wildcard = "*"

// NewDFA returns a DFA with a single non-bad initial state 0.
func NewDFA() *DFA {
	d := &DFA{}
	d.AddState(false)
	return d
}

// AddState adds a state, marking it bad (rejecting) if bad is true.
func (d *DFA) AddState(bad bool) State {
	d.trans = append(d.trans, make(map[string]State))
	d.wildcards = append(d.wildcards, Invalid)
	d.bad = append(d.bad, bad)
	return State(len(d.trans) - 1)
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.trans) }

// Initial returns the initial state.
func (d *DFA) Initial() State { return d.initial }

// Bad reports whether s is a rejecting state.
func (d *DFA) Bad(s State) bool { return int(s) < len(d.bad) && d.bad[s] }

// SetTransition defines an edge. Use the Wildcard symbol for a default edge.
func (d *DFA) SetTransition(from State, symbol string, to State) {
	if int(from) >= len(d.trans) || int(to) >= len(d.trans) {
		panic(fmt.Sprintf("automata: DFA state out of range: %d -> %d", from, to))
	}
	if symbol == Wildcard {
		d.wildcards[from] = to
		return
	}
	d.trans[from][symbol] = to
}

// Step returns the successor of from on symbol, consulting the wildcard edge
// when no explicit edge exists. ok is false if neither is defined.
func (d *DFA) Step(from State, symbol string) (State, bool) {
	if int(from) >= len(d.trans) {
		return Invalid, false
	}
	if t, ok := d.trans[from][symbol]; ok {
		return t, true
	}
	if w := d.wildcards[from]; w != Invalid {
		return w, true
	}
	return Invalid, false
}

// Accepts runs the word and reports whether the run stays out of bad states.
// An undefined transition is treated as a violation (monitors must be total
// by construction; holes indicate a specification error the caller should
// surface rather than mask).
func (d *DFA) Accepts(word []string) bool {
	s := d.initial
	if d.bad[s] {
		return false
	}
	for _, sym := range word {
		t, ok := d.Step(s, sym)
		if !ok {
			return false
		}
		if d.bad[t] {
			return false
		}
		s = t
	}
	return true
}
