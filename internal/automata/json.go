package automata

import (
	"encoding/json"
	"fmt"
)

// mealyJSON is the serialized form of a Mealy machine: a portable record of
// a learned model, so analyses can run on saved models without re-learning
// (the tools' -save/-load flags).
type mealyJSON struct {
	Inputs      []string     `json:"inputs"`
	States      int          `json:"states"`
	Initial     State        `json:"initial"`
	Transitions []transition `json:"transitions"`
}

type transition struct {
	From   State  `json:"from"`
	Input  string `json:"input"`
	To     State  `json:"to"`
	Output string `json:"output"`
}

// MarshalJSON implements json.Marshaler.
func (m *Mealy) MarshalJSON() ([]byte, error) {
	out := mealyJSON{
		Inputs:  m.inputs,
		States:  m.NumStates(),
		Initial: m.initial,
	}
	for s := range m.trans {
		for i, in := range m.inputs {
			if m.trans[s][i] == Invalid {
				continue
			}
			out.Transitions = append(out.Transitions, transition{
				From: State(s), Input: in, To: m.trans[s][i], Output: m.out[s][i],
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Mealy) UnmarshalJSON(data []byte) error {
	var in mealyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.States < 1 {
		return fmt.Errorf("automata: machine needs at least one state, got %d", in.States)
	}
	if int(in.Initial) < 0 || int(in.Initial) >= in.States {
		return fmt.Errorf("automata: initial state %d out of range", in.Initial)
	}
	n := NewMealy(in.Inputs)
	for n.NumStates() < in.States {
		n.AddState()
	}
	n.SetInitial(in.Initial)
	for _, t := range in.Transitions {
		if int(t.From) >= in.States || int(t.To) >= in.States || t.From < 0 || t.To < 0 {
			return fmt.Errorf("automata: transition %v out of range", t)
		}
		if _, ok := n.inputIdx[t.Input]; !ok {
			return fmt.Errorf("automata: transition input %q not in alphabet", t.Input)
		}
		n.SetTransition(t.From, t.Input, t.To, t.Output)
	}
	*m = *n
	return nil
}
