package automata

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DOTStyle customises the shared Graphviz exporter. The zero value renders
// the plain style of the models in the paper's appendix (states s0..sN,
// edges labelled "input / output"). All escaping happens inside the
// exporter, so style hooks return raw text.
type DOTStyle struct {
	// StateLabel overrides the node label for a state (default "sN").
	StateLabel func(s State) string
	// EdgeAnnotation returns extra label lines rendered under one
	// transition's "input / output" line — synth uses it for the
	// register-update and output-parameter terms of Appendix B.1.
	// Annotation lines must not contain the " / " separator, which is
	// reserved for transition lines (ParseDOT relies on it).
	EdgeAnnotation func(from State, input, output string) []string
}

// DOT renders the machine in Graphviz dot syntax in the default style.
// Parallel edges with identical endpoints are merged onto one edge with a
// multi-line label to keep large models readable. The output is the
// canonical model-interchange format of the analysis plane: ParseDOT reads
// it back (round-trip guarantee, see dotparse.go).
func (m *Mealy) DOT(name string) string { return m.DOTStyled(name, DOTStyle{}) }

// DOTStyled is DOT with a styling hook.
func (m *Mealy) DOTStyled(name string, style DOTStyle) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"Helvetica\"];\n")
	// The alphabet comment makes the export self-describing: ParseDOT
	// recovers the exact input order even for inputs no edge uses.
	if alpha, err := json.Marshal(m.inputs); err == nil {
		fmt.Fprintf(&b, "  /* alphabet: %s */\n", alpha)
	}
	fmt.Fprintf(&b, "  __start [shape=none, label=\"\"];\n")
	fmt.Fprintf(&b, "  __start -> s%d;\n", m.initial)
	for s := 0; s < m.NumStates(); s++ {
		label := fmt.Sprintf("s%d", s)
		if style.StateLabel != nil {
			label = style.StateLabel(State(s))
		}
		fmt.Fprintf(&b, "  s%d [label=\"%s\"];\n", s, escapeDOT(label))
	}
	type edge struct{ from, to State }
	labels := make(map[edge][]string)
	var edges []edge
	for s := 0; s < m.NumStates(); s++ {
		for i, in := range m.inputs {
			t := m.trans[s][i]
			if t == Invalid {
				continue
			}
			e := edge{State(s), t}
			if _, ok := labels[e]; !ok {
				edges = append(edges, e)
			}
			lines := []string{fmt.Sprintf("%s / %s", in, m.out[s][i])}
			if style.EdgeAnnotation != nil {
				lines = append(lines, style.EdgeAnnotation(State(s), in, m.out[s][i])...)
			}
			labels[e] = append(labels[e], lines...)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		label := escapeDOT(strings.Join(labels[e], "\n"))
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s\"];\n", e.from, e.to, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// escapeDOT escapes a label for a double-quoted dot string: backslashes and
// quotes are escaped, newlines become the dot line-break escape.
func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// unescapeDOT inverts escapeDOT.
func unescapeDOT(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
