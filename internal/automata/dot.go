package automata

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the machine in Graphviz dot syntax, matching the visual style
// of the models in the paper's appendix (states s0..sN, edges labelled
// "input/output"). Parallel edges with identical endpoints are merged onto
// one edge with a multi-line label to keep large models readable.
func (m *Mealy) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  __start [shape=none, label=\"\"];\n")
	fmt.Fprintf(&b, "  __start -> s%d;\n", m.initial)
	for s := 0; s < m.NumStates(); s++ {
		fmt.Fprintf(&b, "  s%d [label=\"s%d\"];\n", s, s)
	}
	type edge struct{ from, to State }
	labels := make(map[edge][]string)
	var edges []edge
	for s := 0; s < m.NumStates(); s++ {
		for i, in := range m.inputs {
			t := m.trans[s][i]
			if t == Invalid {
				continue
			}
			e := edge{State(s), t}
			if _, ok := labels[e]; !ok {
				edges = append(edges, e)
			}
			labels[e] = append(labels[e], fmt.Sprintf("%s / %s", in, m.out[s][i]))
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		label := strings.Join(labels[e], "\\n")
		label = strings.ReplaceAll(label, "\"", "\\\"")
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s\"];\n", e.from, e.to, label)
	}
	b.WriteString("}\n")
	return b.String()
}
