package automata

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDOTRoundTrip(t *testing.T) {
	m := handshake()
	dot := m.DOT("handshake")
	back, err := ParseDOT([]byte(dot))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := m.Equivalent(back); !eq {
		t.Fatalf("round trip changed behaviour on %v", ce)
	}
	if back.NumStates() != m.NumStates() || back.Initial() != m.Initial() {
		t.Fatalf("shape changed: %d states initial %d", back.NumStates(), back.Initial())
	}
	// The alphabet comment makes the second export byte-identical.
	if again := back.DOT("handshake"); again != dot {
		t.Fatalf("re-export not stable:\n%s\nvs\n%s", again, dot)
	}
}

func TestDOTPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		m := randomMealy(r, n, []string{"a", "b"}, []string{"0", "1"})
		back, err := ParseDOT([]byte(m.DOT("m")))
		if err != nil {
			return false
		}
		eq, _ := m.Equivalent(back)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTEscaping(t *testing.T) {
	m := NewMealy([]string{`in"quote`})
	m.SetTransition(0, `in"quote`, 0, `out"q`)
	dot := m.DOT(`na"me`)
	back, err := ParseDOT([]byte(dot))
	if err != nil {
		t.Fatal(err)
	}
	if _, out, ok := back.Step(0, `in"quote`); !ok || out != `out"q` {
		t.Fatalf("escaped symbols mangled: %q ok=%v", out, ok)
	}
}

func TestDOTStyledAnnotationsAreSkippedByParser(t *testing.T) {
	m := handshake()
	dot := m.DOTStyled("ext", DOTStyle{
		StateLabel: func(s State) string { return "Q" },
		EdgeAnnotation: func(from State, in, out string) []string {
			return []string{"r0=p0+1 | o0=r0"}
		},
	})
	if !strings.Contains(dot, "r0=p0+1") {
		t.Fatalf("annotation missing:\n%s", dot)
	}
	back, err := ParseDOT([]byte(dot))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := m.Equivalent(back); !eq {
		t.Fatalf("styled export does not parse back to the base machine (ce %v)", ce)
	}
}

func TestDOTWithoutAlphabetComment(t *testing.T) {
	m := handshake()
	var lines []string
	for _, l := range strings.Split(m.DOT("h"), "\n") {
		if !strings.Contains(l, "alphabet:") {
			lines = append(lines, l)
		}
	}
	back, err := ParseDOT([]byte(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := m.Equivalent(back); !eq {
		t.Fatalf("comment-free parse diverged on %v", ce)
	}
}

func TestParseDOTRejectsMalformed(t *testing.T) {
	cases := []string{
		"digraph \"x\" {\n  s0 -> s1 [label=\"a / b\"];\n}\n",          // no __start
		"digraph \"x\" {\n  __start -> s0;\n  s0 -> s1 [label=\"oops]", // unterminated label
		"digraph \"x\" {\n  /* alphabet: notjson */\n  __start -> s0;\n}\n",
	}
	for _, c := range cases {
		if _, err := ParseDOT([]byte(c)); err == nil {
			t.Errorf("accepted malformed dot:\n%s", c)
		}
	}
}

func TestDecodeSniffsFormats(t *testing.T) {
	m := handshake()
	fromDot, err := Decode([]byte(m.DOT("h")))
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, back := range []*Mealy{fromDot, fromJSON} {
		if eq, ce := m.Equivalent(back); !eq {
			t.Fatalf("decode changed behaviour on %v", ce)
		}
	}
	if _, err := Decode([]byte("???")); err == nil {
		t.Fatal("garbage accepted")
	}
}
