package automata

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	m := handshake()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Mealy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if eq, ce := m.Equivalent(&back); !eq {
		t.Fatalf("round trip changed behaviour on %v", ce)
	}
	if back.NumStates() != m.NumStates() || back.Initial() != m.Initial() {
		t.Fatalf("shape changed: %d/%d states", back.NumStates(), m.NumStates())
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"inputs":["a"],"states":0,"initial":0}`,
		`{"inputs":["a"],"states":2,"initial":5}`,
		`{"inputs":["a"],"states":2,"initial":0,"transitions":[{"from":0,"input":"zz","to":1,"output":"x"}]}`,
		`{"inputs":["a"],"states":2,"initial":0,"transitions":[{"from":0,"input":"a","to":9,"output":"x"}]}`,
		`not json`,
	}
	for _, c := range cases {
		var m Mealy
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestJSONPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		m := randomMealy(r, n, []string{"a", "b"}, []string{"0", "1"})
		data, err := json.Marshal(m)
		if err != nil {
			return false
		}
		var back Mealy
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		eq, _ := m.Equivalent(&back)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONPartialMachine(t *testing.T) {
	m := NewMealy([]string{"a", "b"})
	s1 := m.AddState()
	m.SetTransition(0, "a", s1, "x")
	data, _ := json.Marshal(m)
	var back Mealy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumTransitions() != 1 {
		t.Fatalf("transitions = %d, want 1", back.NumTransitions())
	}
	if _, _, ok := back.Step(0, "b"); ok {
		t.Fatal("undefined transition materialized")
	}
}
