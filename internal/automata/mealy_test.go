package automata

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// handshake builds the TCP 3-way handshake fragment of Fig. 3(b):
// s0 --SYN/SYN+ACK--> s1 --ACK/NIL--> s2, with self-loops elsewhere.
func handshake() *Mealy {
	m := NewMealy([]string{"SYN", "ACK"})
	s0 := m.Initial()
	s1 := m.AddState()
	s2 := m.AddState()
	m.SetTransition(s0, "SYN", s1, "SYN+ACK")
	m.SetTransition(s0, "ACK", s0, "RST")
	m.SetTransition(s1, "SYN", s1, "NIL")
	m.SetTransition(s1, "ACK", s2, "NIL")
	m.SetTransition(s2, "SYN", s2, "ACK") // challenge ACK once established
	m.SetTransition(s2, "ACK", s2, "NIL")
	return m
}

func TestMealyRun(t *testing.T) {
	m := handshake()
	out, ok := m.Run([]string{"SYN", "ACK"})
	if !ok {
		t.Fatal("run incomplete")
	}
	want := []string{"SYN+ACK", "NIL"}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestMealyRunUndefined(t *testing.T) {
	m := NewMealy([]string{"a"})
	if _, ok := m.Run([]string{"a"}); ok {
		t.Fatal("expected undefined transition")
	}
	if _, ok := m.Run([]string{"zzz"}); ok {
		t.Fatal("expected unknown input to fail")
	}
}

func TestMealyStepUnknownInput(t *testing.T) {
	m := handshake()
	if _, _, ok := m.Step(m.Initial(), "nope"); ok {
		t.Fatal("unknown input must not step")
	}
}

func TestTotalAndReachable(t *testing.T) {
	m := handshake()
	if !m.Total() {
		t.Fatal("handshake machine should be total")
	}
	if got := len(m.Reachable()); got != 3 {
		t.Fatalf("reachable = %d, want 3", got)
	}
	unreachable := m.AddState()
	m.SetTransition(unreachable, "SYN", unreachable, "x")
	if got := len(m.Reachable()); got != 3 {
		t.Fatalf("reachable after adding orphan = %d, want 3", got)
	}
	trimmed := m.TrimReachable()
	if trimmed.NumStates() != 3 {
		t.Fatalf("trimmed states = %d, want 3", trimmed.NumStates())
	}
}

func TestMinimizeMergesEquivalentStates(t *testing.T) {
	// Build a machine with two copies of the absorbing state.
	m := NewMealy([]string{"a"})
	s0 := m.Initial()
	s1 := m.AddState()
	s2 := m.AddState()
	m.SetTransition(s0, "a", s1, "x")
	m.SetTransition(s1, "a", s2, "y")
	m.SetTransition(s2, "a", s1, "x") // s0 and s2 behave identically
	min := m.Minimize()
	if min.NumStates() != 2 {
		t.Fatalf("minimized states = %d, want 2", min.NumStates())
	}
	eq, ce := m.Equivalent(min)
	if !eq {
		t.Fatalf("minimized machine not equivalent, ce=%v", ce)
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	m := handshake().Minimize()
	again := m.Minimize()
	if m.NumStates() != again.NumStates() {
		t.Fatalf("minimize not idempotent: %d vs %d", m.NumStates(), again.NumStates())
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := handshake()
	b := handshake()
	// Change one deep output in b.
	b.SetTransition(2, "ACK", 2, "RST")
	eq, ce := a.Equivalent(b)
	if eq {
		t.Fatal("machines should differ")
	}
	oa, _ := a.Run(ce)
	ob, _ := b.Run(ce)
	if reflect.DeepEqual(oa, ob) {
		t.Fatalf("counterexample %v does not distinguish: %v vs %v", ce, oa, ob)
	}
	// Shortest counterexample for this machine pair has length 3.
	if len(ce) != 3 {
		t.Fatalf("counterexample length = %d, want 3 (%v)", len(ce), ce)
	}
}

func TestEquivalentSelf(t *testing.T) {
	a := handshake()
	if eq, ce := a.Equivalent(a.Clone()); !eq {
		t.Fatalf("machine not equivalent to its clone, ce=%v", ce)
	}
}

func TestAccessSequences(t *testing.T) {
	m := handshake()
	acc := m.AccessSequences()
	if len(acc) != 3 {
		t.Fatalf("access sequences for %d states, want 3", len(acc))
	}
	for s, word := range acc {
		got, ok := m.StateAfter(word)
		if !ok || got != s {
			t.Fatalf("access sequence %v leads to %d, want %d", word, got, s)
		}
	}
	if len(acc[2]) != 2 {
		t.Fatalf("access to s2 has length %d, want 2", len(acc[2]))
	}
}

func TestCharacterizingSet(t *testing.T) {
	m := handshake()
	w := m.CharacterizingSet()
	if len(w) == 0 {
		t.Fatal("empty characterizing set for 3-state machine")
	}
	// Every pair of distinct states must be separated by some word in W.
	for a := 0; a < m.NumStates(); a++ {
		for b := a + 1; b < m.NumStates(); b++ {
			sep := false
			for _, word := range w {
				oa, _ := m.RunFrom(State(a), word)
				ob, _ := m.RunFrom(State(b), word)
				if strings.Join(oa, ",") != strings.Join(ob, ",") {
					sep = true
					break
				}
			}
			if !sep {
				t.Fatalf("states %d and %d not separated by W=%v", a, b, w)
			}
		}
	}
}

func TestCountTracesTotalMachine(t *testing.T) {
	// A total machine over k inputs has sum k^i traces of length 1..n.
	m := handshake()
	got := m.CountTraces(10)
	var want uint64
	pow := uint64(1)
	for i := 1; i <= 10; i++ {
		pow *= 2
		want += pow
	}
	if got != want {
		t.Fatalf("CountTraces = %d, want %d", got, want)
	}
}

func TestCountTracesPaperAlphabet(t *testing.T) {
	// §6.2.2: 7-symbol alphabet has 329,554,456 traces of length up to 10.
	inputs := make([]string, 7)
	for i := range inputs {
		inputs[i] = string(rune('a' + i))
	}
	m := NewMealy(inputs)
	for _, in := range inputs {
		m.SetTransition(0, in, 0, "o")
	}
	if got := m.CountTraces(10); got != 329554456 {
		t.Fatalf("CountTraces(10) over 7 symbols = %d, want 329554456", got)
	}
}

func TestCountTracesPartial(t *testing.T) {
	m := NewMealy([]string{"a", "b"})
	s1 := m.AddState()
	m.SetTransition(0, "a", s1, "x")
	m.SetTransition(s1, "b", 0, "y")
	// Words: a (1), ab (1), aba (1), ... exactly one per length.
	if got := m.CountTraces(5); got != 5 {
		t.Fatalf("CountTraces = %d, want 5", got)
	}
}

func TestDOTOutput(t *testing.T) {
	dot := handshake().DOT("tcp")
	for _, want := range []string{"digraph \"tcp\"", "s0 -> s1", "SYN / SYN+ACK", "rankdir=LR"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := handshake()
	b := a.Clone()
	b.SetTransition(0, "SYN", 0, "CHANGED")
	if _, out, _ := a.Step(0, "SYN"); out == "CHANGED" {
		t.Fatal("clone shares storage with original")
	}
}

// randomMealy builds a random total machine for property tests.
func randomMealy(rng *rand.Rand, states int, inputs []string, outputs []string) *Mealy {
	m := NewMealy(inputs)
	for m.NumStates() < states {
		m.AddState()
	}
	for s := 0; s < states; s++ {
		for _, in := range inputs {
			// Bias transitions toward lower states so most states are reachable.
			to := State(rng.Intn(states))
			m.SetTransition(State(s), in, to, outputs[rng.Intn(len(outputs))])
		}
	}
	return m
}

func TestPropertyMinimizePreservesBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := []string{"a", "b", "c"}
	outputs := []string{"0", "1"}
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		m := randomMealy(r, n, inputs, outputs)
		min := m.Minimize()
		if min.NumStates() > len(m.Reachable()) {
			return false
		}
		eq, _ := m.Equivalent(min)
		return eq
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEquivalenceIsReflexiveAndFindsMutations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMealy(r, 5, []string{"a", "b"}, []string{"0", "1", "2"})
		if eq, _ := m.Equivalent(m); !eq {
			return false
		}
		// Mutate one reachable transition's output to a fresh symbol.
		mut := m.Clone()
		reach := mut.Reachable()
		s := reach[r.Intn(len(reach))]
		in := mut.Inputs()[r.Intn(2)]
		to, _, _ := mut.Step(s, in)
		mut.SetTransition(s, in, to, "MUTANT")
		eq, ce := m.Equivalent(mut)
		if eq {
			return false
		}
		oa, _ := m.Run(ce)
		ob, _ := mut.Run(ce)
		return !reflect.DeepEqual(oa, ob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDFASafetyMonitor(t *testing.T) {
	// Property: output CONNECTION_CLOSE must never be followed by STREAM.
	d := NewDFA()
	closed := d.AddState(false)
	bad := d.AddState(true)
	d.SetTransition(0, "CONNECTION_CLOSE", closed)
	d.SetTransition(0, Wildcard, 0)
	d.SetTransition(closed, "STREAM", bad)
	d.SetTransition(closed, Wildcard, closed)

	if !d.Accepts([]string{"ACK", "CONNECTION_CLOSE", "ACK"}) {
		t.Fatal("benign trace rejected")
	}
	if d.Accepts([]string{"CONNECTION_CLOSE", "STREAM"}) {
		t.Fatal("violating trace accepted")
	}
}

func TestDFAUndefinedIsViolation(t *testing.T) {
	d := NewDFA()
	if d.Accepts([]string{"anything"}) {
		t.Fatal("monitor hole must count as violation")
	}
}
