package automata

import "testing"

func TestTotalWords(t *testing.T) {
	cases := []struct {
		k, maxLen int
		want      uint64
	}{
		{2, 1, 2},
		{2, 3, 14},         // 2 + 4 + 8
		{7, 10, 329554456}, // the §6.2.2 trace space
		{3, 0, 0},
	}
	for _, c := range cases {
		if got := TotalWords(c.k, c.maxLen); got != c.want {
			t.Errorf("TotalWords(%d, %d) = %d, want %d", c.k, c.maxLen, got, c.want)
		}
	}
	// A total machine's CountTraces equals TotalWords over its alphabet.
	m := NewMealy([]string{"a", "b"})
	m.SetTransition(m.Initial(), "a", m.Initial(), "x")
	m.SetTransition(m.Initial(), "b", m.Initial(), "y")
	if got, want := m.CountTraces(5), TotalWords(2, 5); got != want {
		t.Errorf("CountTraces(5) = %d, TotalWords(2,5) = %d", got, want)
	}
}
