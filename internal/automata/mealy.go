// Package automata provides finite-state machines used throughout Prognosis:
// deterministic Mealy machines (the model class learned from protocol
// implementations), specification DFAs used as safety monitors, and the
// decision procedures the analysis module relies on (minimization,
// equivalence with counterexample, trace counting, characterizing sets).
package automata

import (
	"fmt"
	"sort"
	"strings"
)

// State identifies a state in a Mealy machine. States are dense indices
// starting at 0; the zero value is the conventional initial state of a
// machine built with NewMealy.
type State int

// Invalid is returned by lookups that fail to resolve a state.
const Invalid State = -1

// Mealy is a deterministic Mealy machine: a finite automaton that emits one
// output symbol for every input symbol it consumes. Inputs and outputs are
// strings (abstract alphabet symbols such as "SYN(?,?,0)" or
// "INITIAL(?,?)[CRYPTO]").
//
// The zero value is not useful; construct machines with NewMealy and
// populate them with AddState and SetTransition.
type Mealy struct {
	inputs  []string
	initial State

	// trans[s][i] and out[s][i] index by state and input position.
	trans [][]State
	out   [][]string

	inputIdx map[string]int
}

// NewMealy returns an empty machine over the given input alphabet with a
// single initial state 0 and no transitions defined.
func NewMealy(inputs []string) *Mealy {
	m := &Mealy{
		inputs:   append([]string(nil), inputs...),
		inputIdx: make(map[string]int, len(inputs)),
	}
	for i, in := range m.inputs {
		m.inputIdx[in] = i
	}
	m.AddState()
	return m
}

// Inputs returns the input alphabet in declaration order. The returned slice
// must not be modified.
func (m *Mealy) Inputs() []string { return m.inputs }

// Initial returns the initial state.
func (m *Mealy) Initial() State { return m.initial }

// SetInitial changes the initial state.
func (m *Mealy) SetInitial(s State) { m.initial = s }

// NumStates returns the number of states.
func (m *Mealy) NumStates() int { return len(m.trans) }

// NumTransitions returns the number of defined transitions.
func (m *Mealy) NumTransitions() int {
	n := 0
	for _, row := range m.trans {
		for _, t := range row {
			if t != Invalid {
				n++
			}
		}
	}
	return n
}

// AddState adds a fresh state with no outgoing transitions and returns it.
func (m *Mealy) AddState() State {
	row := make([]State, len(m.inputs))
	for i := range row {
		row[i] = Invalid
	}
	m.trans = append(m.trans, row)
	m.out = append(m.out, make([]string, len(m.inputs)))
	return State(len(m.trans) - 1)
}

// SetTransition defines the transition and output for (from, input).
// It panics if the input is not in the alphabet or a state is out of range,
// since that is always a programming error in the caller.
func (m *Mealy) SetTransition(from State, input string, to State, output string) {
	i, ok := m.inputIdx[input]
	if !ok {
		panic(fmt.Sprintf("automata: input %q not in alphabet", input))
	}
	if int(from) >= len(m.trans) || int(to) >= len(m.trans) || from < 0 || to < 0 {
		panic(fmt.Sprintf("automata: state out of range: %d -> %d (have %d)", from, to, len(m.trans)))
	}
	m.trans[from][i] = to
	m.out[from][i] = output
}

// Step returns the successor state and output for (from, input).
// ok is false if the transition is undefined or the input unknown.
func (m *Mealy) Step(from State, input string) (to State, output string, ok bool) {
	i, found := m.inputIdx[input]
	if !found || int(from) >= len(m.trans) || from < 0 {
		return Invalid, "", false
	}
	to = m.trans[from][i]
	if to == Invalid {
		return Invalid, "", false
	}
	return to, m.out[from][i], true
}

// Run feeds word to the machine from the initial state and returns the
// output word. ok is false if any transition along the way is undefined.
func (m *Mealy) Run(word []string) (outputs []string, ok bool) {
	return m.RunFrom(m.initial, word)
}

// RunFrom is Run starting at an arbitrary state.
func (m *Mealy) RunFrom(s State, word []string) (outputs []string, ok bool) {
	outputs = make([]string, 0, len(word))
	for _, in := range word {
		next, out, ok := m.Step(s, in)
		if !ok {
			return outputs, false
		}
		outputs = append(outputs, out)
		s = next
	}
	return outputs, true
}

// StateAfter returns the state reached from the initial state on word.
func (m *Mealy) StateAfter(word []string) (State, bool) {
	s := m.initial
	for _, in := range word {
		next, _, ok := m.Step(s, in)
		if !ok {
			return Invalid, false
		}
		s = next
	}
	return s, true
}

// Total reports whether every state defines a transition for every input.
func (m *Mealy) Total() bool {
	for _, row := range m.trans {
		for _, t := range row {
			if t == Invalid {
				return false
			}
		}
	}
	return true
}

// Reachable returns the set of states reachable from the initial state.
func (m *Mealy) Reachable() []State {
	seen := make([]bool, len(m.trans))
	var order []State
	stack := []State{m.initial}
	seen[m.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, s)
		for _, t := range m.trans[s] {
			if t != Invalid && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// TrimReachable returns a copy of m containing only states reachable from
// the initial state, renumbered in BFS order (so the initial state is 0 and
// state numbering is canonical for comparison and display).
func (m *Mealy) TrimReachable() *Mealy {
	renum := make(map[State]State)
	order := []State{m.initial}
	renum[m.initial] = 0
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for i := range m.inputs {
			t := m.trans[s][i]
			if t == Invalid {
				continue
			}
			if _, ok := renum[t]; !ok {
				renum[t] = State(len(order))
				order = append(order, t)
			}
		}
	}
	n := NewMealy(m.inputs)
	for len(n.trans) < len(order) {
		n.AddState()
	}
	for _, s := range order {
		for i, in := range m.inputs {
			t := m.trans[s][i]
			if t == Invalid {
				continue
			}
			n.SetTransition(renum[s], in, renum[t], m.out[s][i])
		}
	}
	return n
}

// Minimize returns the minimal machine equivalent to m (restricted to
// reachable states), computed by Hopcroft-style partition refinement over
// output signatures. m must be total on its reachable part.
func (m *Mealy) Minimize() *Mealy {
	r := m.TrimReachable()
	n := r.NumStates()
	if n == 0 {
		return r
	}
	// Initial partition: group states by their output row.
	sig := make(map[string][]State)
	for s := 0; s < n; s++ {
		key := strings.Join(r.out[s], "\x00")
		sig[key] = append(sig[key], State(s))
	}
	block := make([]int, n) // state -> block id
	var blocks [][]State
	for _, states := range sig {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			block[s] = id
		}
	}
	// Refine until stable.
	for changed := true; changed; {
		changed = false
		var next [][]State
		nextBlock := make([]int, n)
		for _, b := range blocks {
			// Split b by successor block vector.
			groups := make(map[string][]State)
			for _, s := range b {
				var key strings.Builder
				for i := range r.inputs {
					fmt.Fprintf(&key, "%d,", block[r.trans[s][i]])
				}
				groups[key.String()] = append(groups[key.String()], s)
			}
			if len(groups) > 1 {
				changed = true
			}
			for _, g := range groups {
				id := len(next)
				next = append(next, g)
				for _, s := range g {
					nextBlock[s] = id
				}
			}
		}
		blocks, block = next, nextBlock
	}
	// Build quotient. Renumber so the initial block is 0 via TrimReachable.
	q := NewMealy(r.inputs)
	for len(q.trans) < len(blocks) {
		q.AddState()
	}
	q.SetInitial(State(block[r.initial]))
	for s := 0; s < n; s++ {
		for i, in := range r.inputs {
			t := r.trans[s][i]
			if t == Invalid {
				continue
			}
			q.SetTransition(State(block[s]), in, State(block[t]), r.out[s][i])
		}
	}
	return q.TrimReachable()
}

// Equivalent checks language equivalence of m and other (which must share
// the input alphabet, in any order). If the machines differ it returns a
// shortest distinguishing input word; otherwise ce is nil.
//
// Both machines must be total on their reachable parts; an undefined
// transition on one side counts as a difference.
func (m *Mealy) Equivalent(other *Mealy) (equal bool, ce []string) {
	type pair struct{ a, b State }
	type node struct {
		p    pair
		word []string
	}
	start := pair{m.initial, other.initial}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range m.inputs {
			ta, oa, oka := m.Step(cur.p.a, in)
			tb, ob, okb := other.Step(cur.p.b, in)
			word := append(append([]string(nil), cur.word...), in)
			if oka != okb || (oka && oa != ob) {
				return false, word
			}
			if !oka {
				continue
			}
			np := pair{ta, tb}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word})
			}
		}
	}
	return true, nil
}

// AccessSequences returns, for every reachable state, a shortest input word
// leading from the initial state to it (BFS order).
func (m *Mealy) AccessSequences() map[State][]string {
	acc := map[State][]string{m.initial: {}}
	queue := []State{m.initial}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for i, in := range m.inputs {
			t := m.trans[s][i]
			if t == Invalid {
				continue
			}
			if _, ok := acc[t]; !ok {
				acc[t] = append(append([]string(nil), acc[s]...), in)
				queue = append(queue, t)
			}
		}
	}
	return acc
}

// CharacterizingSet returns a set W of input words such that any two
// distinct states of the (assumed minimal, total) machine produce different
// output words on at least one member of W. Used by the W-method
// equivalence oracle and model-based test generation.
func (m *Mealy) CharacterizingSet() [][]string {
	n := m.NumStates()
	if n <= 1 {
		if len(m.inputs) > 0 {
			return [][]string{{m.inputs[0]}}
		}
		return nil
	}
	var w [][]string
	distinguished := func(a, b State) bool {
		for _, word := range w {
			oa, _ := m.RunFrom(a, word)
			ob, _ := m.RunFrom(b, word)
			if strings.Join(oa, "\x00") != strings.Join(ob, "\x00") {
				return true
			}
		}
		return false
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if distinguished(State(a), State(b)) {
				continue
			}
			word := m.distinguishingWord(State(a), State(b))
			if word != nil {
				w = append(w, word)
			}
		}
	}
	return w
}

// distinguishingWord returns a shortest word on which states a and b emit
// different outputs, or nil if they are equivalent.
func (m *Mealy) distinguishingWord(a, b State) []string {
	type pair struct{ x, y State }
	type node struct {
		p    pair
		word []string
	}
	start := pair{a, b}
	seen := map[pair]bool{start: true}
	queue := []node{{p: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, in := range m.inputs {
			tx, ox, okx := m.Step(cur.p.x, in)
			ty, oy, oky := m.Step(cur.p.y, in)
			word := append(append([]string(nil), cur.word...), in)
			if okx != oky || (okx && ox != oy) {
				return word
			}
			if !okx {
				continue
			}
			np := pair{tx, ty}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, word: word})
			}
		}
	}
	return nil
}

// TotalWords returns the number of distinct input words of length
// 1..maxLen over an alphabet of k symbols: sum over i of k^i. It is the
// denominator of the trace-reduction statistic of §6.2.2 — the full word
// space a learned model (CountTraces) cuts down. The result overflows
// uint64 silently for very large k^maxLen; the paper's 7-symbol,
// length-10 space (329,554,456) is nowhere near the limit.
func TotalWords(k, maxLen int) uint64 {
	var total, pow uint64 = 0, 1
	for i := 1; i <= maxLen; i++ {
		pow *= uint64(k)
		total += pow
	}
	return total
}

// CountTraces returns the number of distinct input words of length 1..maxLen
// that have defined runs in the machine. For a total machine over k inputs
// this is sum over i of k^i; for a partial machine it counts only words the
// model accepts, which is the trace-reduction statistic reported in §6.2.2
// of the paper.
func (m *Mealy) CountTraces(maxLen int) uint64 {
	// counts[s] = number of live words of the current length ending in s.
	counts := make([]uint64, m.NumStates())
	counts[m.initial] = 1
	var total uint64
	for l := 1; l <= maxLen; l++ {
		next := make([]uint64, m.NumStates())
		for s, c := range counts {
			if c == 0 {
				continue
			}
			for i := range m.inputs {
				t := m.trans[s][i]
				if t == Invalid {
					continue
				}
				next[t] += c
			}
		}
		counts = next
		for _, c := range counts {
			total += c
		}
	}
	return total
}

// CountTracesFiltered is CountTraces restricted to words whose every step's
// output satisfies keep. With keep rejecting the empty output "{}" this
// counts the model's productive traces — input words the implementation
// actually reacts to, the trace-reduction statistic of §6.2.2 (words
// containing a silently-dropped packet explore no new behaviour and need
// not be checked).
func (m *Mealy) CountTracesFiltered(maxLen int, keep func(output string) bool) uint64 {
	counts := make([]uint64, m.NumStates())
	counts[m.initial] = 1
	var total uint64
	for l := 1; l <= maxLen; l++ {
		next := make([]uint64, m.NumStates())
		for s, c := range counts {
			if c == 0 {
				continue
			}
			for i := range m.inputs {
				t := m.trans[s][i]
				if t == Invalid || !keep(m.out[s][i]) {
					continue
				}
				next[t] += c
			}
		}
		counts = next
		for _, c := range counts {
			total += c
		}
	}
	return total
}

// String returns a compact human-readable listing of the machine.
func (m *Mealy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mealy(states=%d, inputs=%d, initial=s%d)\n", m.NumStates(), len(m.inputs), m.initial)
	for s := range m.trans {
		for i, in := range m.inputs {
			if m.trans[s][i] == Invalid {
				continue
			}
			fmt.Fprintf(&b, "  s%d --%s/%s--> s%d\n", s, in, m.out[s][i], m.trans[s][i])
		}
	}
	return b.String()
}

// Clone returns a deep copy of m.
func (m *Mealy) Clone() *Mealy {
	n := NewMealy(m.inputs)
	for len(n.trans) < len(m.trans) {
		n.AddState()
	}
	n.initial = m.initial
	for s := range m.trans {
		copy(n.trans[s], m.trans[s])
		copy(n.out[s], m.out[s])
	}
	return n
}
