package automata

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ParseDOT reads a Mealy machine from the Graphviz dot dialect DOT/DOTStyled
// emit: `sN` state nodes, an `__start -> sN` initial marker, and edges whose
// label lines are "input / output" transitions (one line per merged parallel
// edge). Style annotation lines — any label line without the " / "
// separator — are skipped, so styled exports (e.g. synth's register
// machines) parse back to their underlying Mealy machine.
//
// The exporter writes the input alphabet as an `/* alphabet: [...] */`
// comment; when present it is restored exactly (order included), making
// ParseDOT(m.DOT(name)) behaviourally equivalent to m with the identical
// alphabet. Without the comment the alphabet is recovered from the edges in
// first-appearance order, which still round-trips every machine whose
// inputs all appear on some edge.
func ParseDOT(data []byte) (*Mealy, error) {
	type rawEdge struct {
		from, to int
		lines    []string
	}
	var (
		inputs   []string
		haveAlph bool
		initial  = -1
		maxState = -1
		edges    []rawEdge
	)
	seen := map[string]bool{}
	note := func(in string) {
		if !haveAlph && !seen[in] {
			seen[in] = true
			inputs = append(inputs, in)
		}
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "/* alphabet:"):
			body := strings.TrimSuffix(strings.TrimPrefix(line, "/* alphabet:"), "*/")
			if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &inputs); err != nil {
				return nil, fmt.Errorf("automata: line %d: bad alphabet comment: %w", ln+1, err)
			}
			haveAlph = true
		case strings.HasPrefix(line, "__start ->"):
			s, err := parseStateID(strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "__start ->")), ";"))
			if err != nil {
				return nil, fmt.Errorf("automata: line %d: %w", ln+1, err)
			}
			initial = s
			if s > maxState {
				maxState = s
			}
		case strings.Contains(line, "->"):
			parts := strings.SplitN(line, "->", 2)
			from, err := parseStateID(strings.TrimSpace(parts[0]))
			if err != nil {
				continue // not a state edge (e.g. styled extras)
			}
			rest := strings.TrimSpace(parts[1])
			brk := strings.IndexByte(rest, '[')
			if brk < 0 {
				continue
			}
			to, err := parseStateID(strings.TrimSpace(rest[:brk]))
			if err != nil {
				return nil, fmt.Errorf("automata: line %d: %w", ln+1, err)
			}
			label, err := extractLabel(rest[brk:])
			if err != nil {
				return nil, fmt.Errorf("automata: line %d: %w", ln+1, err)
			}
			if from > maxState {
				maxState = from
			}
			if to > maxState {
				maxState = to
			}
			edges = append(edges, rawEdge{from: from, to: to, lines: strings.Split(label, "\n")})
		case strings.HasPrefix(line, "s") && strings.Contains(line, "["):
			if s, err := parseStateID(line[:strings.IndexByte(line, '[')]); err == nil && s > maxState {
				maxState = s
			}
		}
	}
	if initial < 0 {
		return nil, fmt.Errorf("automata: dot input has no __start marker")
	}
	// First pass collects the alphabet when no comment declared it.
	for _, e := range edges {
		for _, l := range e.lines {
			if in, _, ok := splitTransitionLine(l); ok {
				note(in)
			}
		}
	}
	m := NewMealy(inputs)
	for m.NumStates() <= maxState {
		m.AddState()
	}
	m.SetInitial(State(initial))
	for _, e := range edges {
		for _, l := range e.lines {
			in, out, ok := splitTransitionLine(l)
			if !ok {
				continue // style annotation line
			}
			if _, found := m.inputIdx[in]; !found {
				return nil, fmt.Errorf("automata: edge input %q not in declared alphabet", in)
			}
			m.SetTransition(State(e.from), in, State(e.to), out)
		}
	}
	return m, nil
}

// splitTransitionLine splits one "input / output" label line; annotation
// lines (no separator) report ok=false.
func splitTransitionLine(l string) (in, out string, ok bool) {
	i := strings.Index(l, " / ")
	if i < 0 {
		return "", "", false
	}
	return l[:i], l[i+3:], true
}

// parseStateID parses an "sN" node identifier.
func parseStateID(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "s") {
		return 0, fmt.Errorf("not a state id: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("not a state id: %q", s)
	}
	return n, nil
}

// extractLabel pulls the unescaped label string out of an attribute list
// like `[label="..."];`.
func extractLabel(attrs string) (string, error) {
	i := strings.Index(attrs, `label="`)
	if i < 0 {
		return "", fmt.Errorf("edge without label in %q", attrs)
	}
	rest := attrs[i+len(`label="`):]
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '\\':
			j++ // skip the escaped character
		case '"':
			return unescapeDOT(rest[:j]), nil
		}
	}
	return "", fmt.Errorf("unterminated label in %q", attrs)
}

// Decode reads a model in either unified codec: JSON (the -save format) or
// Graphviz dot (the -dot format), sniffed from the first non-space byte.
func Decode(data []byte) (*Mealy, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var m Mealy
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, err
		}
		return &m, nil
	}
	if strings.HasPrefix(trimmed, "digraph") {
		return ParseDOT(data)
	}
	return nil, fmt.Errorf("automata: unrecognised model format (want JSON or dot)")
}
