// Package quiccrypto implements QUIC packet protection: HKDF key derivation
// (RFC 5869 via HMAC-SHA256), the QUIC v1 initial-secret schedule (RFC 9001
// §5.2), AES-128-GCM payload protection with packet-number nonces, and
// AES-based header protection (RFC 9001 §5.4).
//
// The TLS layer is simplified (see DESIGN.md): instead of a full TLS 1.3
// handshake, CRYPTO frames carry toy hello messages whose random values
// seed the handshake and 1-RTT secrets. The derivation, AEAD, and header
// protection code paths are the real algorithms.
package quiccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// initialSalt is the QUIC v1 initial salt (RFC 9001 §5.2).
var initialSalt = []byte{
	0x38, 0x76, 0x2c, 0xf7, 0xf5, 0x59, 0x34, 0xb3, 0x4d, 0x17,
	0x9a, 0xe6, 0xa4, 0xc8, 0x0c, 0xad, 0xcc, 0xbb, 0x7f, 0x0a,
}

// HKDFExtract implements HKDF-Extract with SHA-256.
func HKDFExtract(salt, ikm []byte) []byte {
	h := hmac.New(sha256.New, salt)
	h.Write(ikm)
	return h.Sum(nil)
}

// HKDFExpand implements HKDF-Expand with SHA-256.
func HKDFExpand(prk, info []byte, length int) []byte {
	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(prev)
		h.Write(info)
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// HKDFExpandLabel implements the TLS 1.3 HkdfLabel expansion used by QUIC.
func HKDFExpandLabel(secret []byte, label string, length int) []byte {
	full := "tls13 " + label
	info := make([]byte, 0, 4+len(full))
	info = binary.BigEndian.AppendUint16(info, uint16(length))
	info = append(info, byte(len(full)))
	info = append(info, full...)
	info = append(info, 0) // empty context
	return HKDFExpand(secret, info, length)
}

// Keys holds one direction's packet protection material.
type Keys struct {
	aead cipher.AEAD
	iv   []byte
	hp   []byte // header protection key
}

// NewKeys derives AEAD and header-protection keys from a traffic secret
// (RFC 9001 §5.1: the "quic key", "quic iv", "quic hp" labels).
func NewKeys(secret []byte) (*Keys, error) {
	key := HKDFExpandLabel(secret, "quic key", 16)
	iv := HKDFExpandLabel(secret, "quic iv", 12)
	hp := HKDFExpandLabel(secret, "quic hp", 16)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Keys{aead: aead, iv: iv, hp: hp}, nil
}

// InitialSecrets derives the client and server initial traffic secrets from
// the client's first destination connection ID (RFC 9001 §5.2).
func InitialSecrets(dcid []byte) (client, server []byte) {
	initial := HKDFExtract(initialSalt, dcid)
	client = HKDFExpandLabel(initial, "client in", 32)
	server = HKDFExpandLabel(initial, "server in", 32)
	return client, server
}

// nonce computes the per-packet AEAD nonce: IV XOR packet number.
func (k *Keys) nonce(pn uint64) []byte {
	n := make([]byte, 12)
	copy(n, k.iv)
	for i := 0; i < 8; i++ {
		n[11-i] ^= byte(pn >> (8 * i))
	}
	return n
}

// Overhead returns the AEAD tag length added to sealed payloads.
func (k *Keys) Overhead() int { return k.aead.Overhead() }

// Seal encrypts payload with the packet number and associated data (the
// packet header through the packet number field).
func (k *Keys) Seal(payload []byte, pn uint64, ad []byte) []byte {
	return k.aead.Seal(nil, k.nonce(pn), payload, ad)
}

// ErrDecrypt is returned when packet protection removal fails.
var ErrDecrypt = errors.New("quiccrypto: payload authentication failed")

// Open decrypts a sealed payload.
func (k *Keys) Open(sealed []byte, pn uint64, ad []byte) ([]byte, error) {
	out, err := k.aead.Open(nil, k.nonce(pn), sealed, ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return out, nil
}

// headerProtectionMask computes the 5-byte header protection mask from a
// 16-byte ciphertext sample (AES-ECB of the sample under the hp key).
func (k *Keys) headerProtectionMask(sample []byte) ([]byte, error) {
	if len(sample) < 16 {
		return nil, fmt.Errorf("quiccrypto: header protection sample too short (%d)", len(sample))
	}
	block, err := aes.NewCipher(k.hp)
	if err != nil {
		return nil, err
	}
	mask := make([]byte, 16)
	block.Encrypt(mask, sample[:16])
	return mask[:5], nil
}

// pnLen is the fixed packet number length used on the wire (quicwire emits
// the 4-byte maximum encoding).
const pnLen = 4

// ProtectHeader applies header protection in place: packet[pnOffset:] must
// start with the 4-byte packet number followed by the sealed payload, from
// which the sample is taken (RFC 9001 §5.4.2: sample begins 4 bytes past
// the start of the packet number).
func (k *Keys) ProtectHeader(packet []byte, pnOffset int) error {
	sampleStart := pnOffset + 4
	if sampleStart+16 > len(packet) {
		return fmt.Errorf("quiccrypto: packet too short for header protection sample")
	}
	mask, err := k.headerProtectionMask(packet[sampleStart:])
	if err != nil {
		return err
	}
	if packet[0]&0x80 != 0 {
		packet[0] ^= mask[0] & 0x0F
	} else {
		packet[0] ^= mask[0] & 0x1F
	}
	for i := 0; i < pnLen; i++ {
		packet[pnOffset+i] ^= mask[1+i]
	}
	return nil
}

// UnprotectHeader removes header protection in place. It relies on this
// implementation's fixed 4-byte packet number encoding: the sample position
// is independent of the (protected) packet number length bits.
func (k *Keys) UnprotectHeader(packet []byte, pnOffset int) error {
	return k.ProtectHeader(packet, pnOffset) // XOR is symmetric
}

// HandshakeSecrets derives per-direction handshake traffic secrets from the
// client and server hello randoms (the simplified TLS layer's stand-in for
// the TLS 1.3 handshake secret; see the package comment).
func HandshakeSecrets(clientRandom, serverRandom []byte) (client, server []byte) {
	master := HKDFExtract(clientRandom, serverRandom)
	client = HKDFExpandLabel(master, "c hs traffic", 32)
	server = HKDFExpandLabel(master, "s hs traffic", 32)
	return client, server
}

// AppSecrets derives per-direction 1-RTT application traffic secrets.
func AppSecrets(clientRandom, serverRandom []byte) (client, server []byte) {
	master := HKDFExtract(clientRandom, serverRandom)
	client = HKDFExpandLabel(master, "c ap traffic", 32)
	server = HKDFExpandLabel(master, "s ap traffic", 32)
	return client, server
}

// ResetToken derives the 16-byte stateless reset token for a connection ID
// under a static endpoint key (RFC 9000 §10.3.2 recommends a keyed
// pseudorandom function of the CID).
func ResetToken(staticKey, cid []byte) [16]byte {
	h := hmac.New(sha256.New, staticKey)
	h.Write(cid)
	var token [16]byte
	copy(token[:], h.Sum(nil))
	return token
}

// RetryTag computes the Retry pseudo-integrity tag binding a retry token to
// the original DCID (a keyed MAC standing in for the AES-GCM retry tag of
// RFC 9001 §5.8; same binding role, simpler construction).
func RetryTag(staticKey, odcid, token []byte) [16]byte {
	h := hmac.New(sha256.New, staticKey)
	h.Write([]byte{byte(len(odcid))})
	h.Write(odcid)
	h.Write(token)
	var tag [16]byte
	copy(tag[:], h.Sum(nil))
	return tag
}
