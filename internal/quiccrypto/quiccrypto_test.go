package quiccrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestInitialSecretsRFC9001 checks the derivation against the published
// test vectors of RFC 9001 Appendix A.1.
func TestInitialSecretsRFC9001(t *testing.T) {
	dcid := unhex(t, "8394c8f03e515708")
	client, server := InitialSecrets(dcid)
	wantClient := unhex(t, "c00cf151ca5be075ed0ebfb5c80323c42d6b7db67881289af4008f1f6c357aea")
	wantServer := unhex(t, "3c199828fd139efd216c155ad844cc81fb82fa8d7446fa7d78be803acdda951b")
	if !bytes.Equal(client, wantClient) {
		t.Fatalf("client initial secret = %x", client)
	}
	if !bytes.Equal(server, wantServer) {
		t.Fatalf("server initial secret = %x", server)
	}
}

// TestClientInitialKeysRFC9001 checks key/iv/hp expansion against RFC 9001
// Appendix A.1.
func TestClientInitialKeysRFC9001(t *testing.T) {
	client, _ := InitialSecrets(unhex(t, "8394c8f03e515708"))
	key := HKDFExpandLabel(client, "quic key", 16)
	iv := HKDFExpandLabel(client, "quic iv", 12)
	hp := HKDFExpandLabel(client, "quic hp", 16)
	if got := hex.EncodeToString(key); got != "1f369613dd76d5467730efcbe3b1a22d" {
		t.Fatalf("quic key = %s", got)
	}
	if got := hex.EncodeToString(iv); got != "fa044b2f42a3fd3b46fb255c" {
		t.Fatalf("quic iv = %s", got)
	}
	if got := hex.EncodeToString(hp); got != "9f50449e04a0e810283a1e9933adedd2" {
		t.Fatalf("quic hp = %s", got)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	client, server := InitialSecrets([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	ck, err := NewKeys(client)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewKeys(server)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("crypto frame bytes")
	ad := []byte("header")
	sealed := ck.Seal(payload, 7, ad)
	if len(sealed) != len(payload)+ck.Overhead() {
		t.Fatalf("sealed length %d", len(sealed))
	}
	opened, err := ck.Open(sealed, 7, ad)
	if err != nil || !bytes.Equal(opened, payload) {
		t.Fatalf("open: %v %q", err, opened)
	}
	// Wrong packet number, AD, or keys must fail.
	if _, err := ck.Open(sealed, 8, ad); err == nil {
		t.Fatal("wrong pn accepted")
	}
	if _, err := ck.Open(sealed, 7, []byte("other")); err == nil {
		t.Fatal("wrong AD accepted")
	}
	if _, err := sk.Open(sealed, 7, ad); err == nil {
		t.Fatal("wrong direction keys accepted")
	}
}

func TestNonceVariesWithPacketNumber(t *testing.T) {
	client, _ := InitialSecrets([]byte{9})
	k, _ := NewKeys(client)
	if bytes.Equal(k.nonce(1), k.nonce(2)) {
		t.Fatal("nonces must differ per packet number")
	}
	if len(k.nonce(0)) != 12 {
		t.Fatal("nonce must be 12 bytes")
	}
}

func TestHeaderProtectionRoundTrip(t *testing.T) {
	client, _ := InitialSecrets([]byte{0xAB, 0xCD})
	k, _ := NewKeys(client)
	packet := make([]byte, 64)
	for i := range packet {
		packet[i] = byte(i)
	}
	packet[0] = 0xC3 // long header
	orig := append([]byte(nil), packet...)
	pnOffset := 18
	if err := k.ProtectHeader(packet, pnOffset); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(packet, orig) {
		t.Fatal("protection changed nothing")
	}
	// Only the first byte's low nibble and the pn bytes may change.
	if packet[0]&0xF0 != orig[0]&0xF0 {
		t.Fatal("protection touched invariant header bits")
	}
	for i := 1; i < pnOffset; i++ {
		if packet[i] != orig[i] {
			t.Fatalf("protection touched header byte %d", i)
		}
	}
	if err := k.UnprotectHeader(packet, pnOffset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packet, orig) {
		t.Fatal("unprotect did not restore packet")
	}
}

func TestHeaderProtectionShortSample(t *testing.T) {
	client, _ := InitialSecrets([]byte{1})
	k, _ := NewKeys(client)
	if err := k.ProtectHeader(make([]byte, 10), 2); err == nil {
		t.Fatal("short sample must error")
	}
}

func TestHandshakeAndAppSecretsDistinct(t *testing.T) {
	cr := []byte("client-random-0123456789abcdef")
	sr := []byte("server-random-0123456789abcdef")
	hc, hs := HandshakeSecrets(cr, sr)
	ac, as := AppSecrets(cr, sr)
	secrets := [][]byte{hc, hs, ac, as}
	for i := range secrets {
		for j := i + 1; j < len(secrets); j++ {
			if bytes.Equal(secrets[i], secrets[j]) {
				t.Fatalf("secrets %d and %d collide", i, j)
			}
		}
	}
	// Deterministic for fixed inputs.
	hc2, _ := HandshakeSecrets(cr, sr)
	if !bytes.Equal(hc, hc2) {
		t.Fatal("handshake secret not deterministic")
	}
}

func TestResetTokenDeterministicPerCID(t *testing.T) {
	key := []byte("static-key")
	a := ResetToken(key, []byte{1, 2, 3})
	b := ResetToken(key, []byte{1, 2, 3})
	c := ResetToken(key, []byte{4, 5, 6})
	if a != b {
		t.Fatal("token not deterministic")
	}
	if a == c {
		t.Fatal("token does not depend on CID")
	}
	d := ResetToken([]byte("other-key"), []byte{1, 2, 3})
	if a == d {
		t.Fatal("token does not depend on key")
	}
}

func TestRetryTagBindsTokenAndODCID(t *testing.T) {
	key := []byte("k")
	base := RetryTag(key, []byte("odcid"), []byte("token"))
	if base == RetryTag(key, []byte("other"), []byte("token")) {
		t.Fatal("tag ignores ODCID")
	}
	if base == RetryTag(key, []byte("odcid"), []byte("forged")) {
		t.Fatal("tag ignores token")
	}
}

func TestHKDFExpandLength(t *testing.T) {
	prk := HKDFExtract(nil, []byte("ikm"))
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		if got := len(HKDFExpand(prk, []byte("info"), n)); got != n {
			t.Fatalf("HKDFExpand length %d, want %d", got, n)
		}
	}
}
