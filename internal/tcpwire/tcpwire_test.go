package tcpwire

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"
)

var (
	srcAddr = [4]byte{10, 0, 0, 1}
	dstAddr = [4]byte{10, 0, 0, 2}
)

func TestFlagsString(t *testing.T) {
	cases := map[Flags]string{
		0:               "NIL",
		SYN:             "SYN",
		SYN | ACK:       "SYN+ACK",
		ACK | PSH:       "ACK+PSH",
		FIN | ACK:       "ACK+FIN",
		RST:             "RST",
		ACK | RST:       "ACK+RST",
		SYN | ACK | FIN: "SYN+ACK+FIN",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Flags(%b).String() = %q, want %q", f, got, want)
		}
	}
}

func TestParseFlagsRoundTrip(t *testing.T) {
	for f := Flags(0); f < 64; f++ {
		got, err := ParseFlags(f.String())
		if err != nil {
			t.Fatalf("ParseFlags(%q): %v", f.String(), err)
		}
		if got != f {
			t.Fatalf("round trip %b -> %q -> %b", f, f.String(), got)
		}
	}
	if _, err := ParseFlags("SYN+BOGUS"); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestSegmentEncodeDecode(t *testing.T) {
	s := Segment{
		SourcePort:      40965,
		DestinationPort: 44344,
		SeqNumber:       48108,
		AckNumber:       7,
		Flags:           SYN | ACK,
		Window:          8192,
		Payload:         []byte("hello"),
	}
	buf := s.Encode(srcAddr, dstAddr)
	got, err := Decode(buf, srcAddr, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got.SourcePort != s.SourcePort || got.SeqNumber != s.SeqNumber ||
		got.Flags != s.Flags || !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := Segment{Flags: SYN, SeqNumber: 1}
	buf := s.Encode(srcAddr, dstAddr)
	buf[4] ^= 0xFF // corrupt seq number
	if _, err := Decode(buf, srcAddr, dstAddr); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsShort(t *testing.T) {
	if _, err := Decode(make([]byte, 10), srcAddr, dstAddr); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestDecodeRejectsBadOffset(t *testing.T) {
	s := Segment{Flags: ACK}
	buf := s.Encode(srcAddr, dstAddr)
	buf[12] = 3 << 4 // offset 12 < 20
	// Recompute checksum so the offset error is what surfaces.
	buf[16], buf[17] = 0, 0
	sum := checksum(buf, srcAddr, dstAddr)
	buf[16], buf[17] = byte(sum>>8), byte(sum)
	if _, err := Decode(buf, srcAddr, dstAddr); err != ErrBadOffset {
		t.Fatalf("err = %v, want ErrBadOffset", err)
	}
}

func TestDecodeWrongPseudoHeader(t *testing.T) {
	s := Segment{Flags: SYN}
	buf := s.Encode(srcAddr, dstAddr)
	if _, err := Decode(buf, srcAddr, [4]byte{1, 2, 3, 4}); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum (wrong addresses)", err)
	}
}

func TestSegmentJSONRoundTrip(t *testing.T) {
	s := Segment{SourcePort: 1, DestinationPort: 2, SeqNumber: 3, AckNumber: 4,
		Flags: ACK | PSH, Window: 5, Payload: []byte{0xAA}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"flags":"ACK+PSH"`)) {
		t.Fatalf("JSON missing symbolic flags: %s", data)
	}
	var back Segment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Flags != s.Flags || back.SeqNumber != s.SeqNumber || !bytes.Equal(back.Payload, s.Payload) {
		t.Fatalf("JSON round trip mismatch: %+v vs %+v", back, s)
	}
}

func TestAbstractNotation(t *testing.T) {
	s := Segment{Flags: ACK | PSH, Payload: []byte{1}}
	if got := s.Abstract(); got != "ACK+PSH(?,?,1)" {
		t.Fatalf("Abstract = %q", got)
	}
	s2 := Segment{Flags: SYN}
	if got := s2.Abstract(); got != "SYN(?,?,0)" {
		t.Fatalf("Abstract = %q", got)
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		s := Segment{
			SourcePort: sp, DestinationPort: dp,
			SeqNumber: seq, AckNumber: ack,
			Flags: Flags(flags & 0x3F), Window: window,
			Payload: payload,
		}
		got, err := Decode(s.Encode(srcAddr, dstAddr), srcAddr, dstAddr)
		if err != nil {
			return false
		}
		return got.SourcePort == s.SourcePort && got.DestinationPort == s.DestinationPort &&
			got.SeqNumber == s.SeqNumber && got.AckNumber == s.AckNumber &&
			got.Flags == s.Flags && got.Window == s.Window &&
			bytes.Equal(got.Payload, s.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
