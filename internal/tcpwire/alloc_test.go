package tcpwire

import "testing"

var allocSrc = [4]byte{10, 0, 0, 1}
var allocDst = [4]byte{10, 0, 0, 2}

// TestEncodeAllocs pins the steady-state segment encode at zero
// allocations: AppendEncode into a buffer with capacity reuses it,
// including the in-place checksum patch.
func TestEncodeAllocs(t *testing.T) {
	seg := Segment{
		SourcePort:      40000,
		DestinationPort: 8080,
		SeqNumber:       1000,
		AckNumber:       2000,
		Flags:           PSH | ACK,
		Window:          8192,
		Payload:         make([]byte, 512),
	}
	buf := make([]byte, 0, 1024)
	if avg := testing.AllocsPerRun(200, func() {
		buf = seg.AppendEncode(buf[:0], allocSrc, allocDst)
	}); avg != 0 {
		t.Fatalf("AppendEncode steady state allocates %.1f allocs/op, want 0", avg)
	}
}

// TestDecodeAllocs pins the steady-state segment decode at zero
// allocations: DecodeInto aliases the payload and the checksum
// verification materialises no pseudo-header buffer.
func TestDecodeAllocs(t *testing.T) {
	data := Segment{
		SourcePort: 8080, DestinationPort: 40000,
		SeqNumber: 7, AckNumber: 8, Flags: ACK, Window: 4096,
		Payload: make([]byte, 512),
	}.Encode(allocSrc, allocDst)
	var seg Segment
	if avg := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(&seg, data, allocSrc, allocDst); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeInto steady state allocates %.1f allocs/op, want 0", avg)
	}
}
