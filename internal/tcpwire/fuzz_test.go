package tcpwire

import (
	"reflect"
	"testing"
)

// fuzzSrc/fuzzDst are the pseudo-header addresses used for every fuzz
// exchange; the checksum binds segments to an address pair, so the fuzzer
// and the seeds must agree on one.
var (
	fuzzSrc = [4]byte{127, 0, 0, 1}
	fuzzDst = [4]byte{127, 0, 0, 2}
)

// goldenSegments mirrors the handshake and data transfer the TCP harness
// actually drives: SYN, SYN+ACK, ACK, payload-carrying PSH+ACK, FIN+ACK,
// RST — the segment shapes of Example 3.2.
func goldenSegments() []Segment {
	return []Segment{
		{SourcePort: 40000, DestinationPort: 8080, SeqNumber: 100, Flags: SYN, Window: 8192},
		{SourcePort: 8080, DestinationPort: 40000, SeqNumber: 300, AckNumber: 101, Flags: SYN | ACK, Window: 8192},
		{SourcePort: 40000, DestinationPort: 8080, SeqNumber: 101, AckNumber: 301, Flags: ACK, Window: 8192},
		{SourcePort: 40000, DestinationPort: 8080, SeqNumber: 101, AckNumber: 301, Flags: PSH | ACK, Window: 8192, Payload: []byte("GET / HTTP/1.0\r\n\r\n")},
		{SourcePort: 8080, DestinationPort: 40000, SeqNumber: 301, AckNumber: 119, Flags: FIN | ACK, Window: 4096, UrgentPointer: 7},
		{SourcePort: 40000, DestinationPort: 8080, SeqNumber: 119, Flags: RST},
	}
}

// FuzzDecodeEncode: Decode must never panic, and any wire bytes it accepts
// must survive a re-encode/re-decode round trip with an identical segment.
// Byte identity is not expected — decoding drops unknown TCP options and
// re-encoding lays the known ones out canonically — but the logical
// segment must be stable.
func FuzzDecodeEncode(f *testing.F) {
	for _, s := range goldenSegments() {
		f.Add(s.Encode(fuzzSrc, fuzzDst))
	}
	f.Add([]byte{})
	f.Add(make([]byte, headerLen-1)) // one byte short of a header
	bad := goldenSegments()[0].Encode(fuzzSrc, fuzzDst)
	bad[16] ^= 0xff // corrupt the checksum
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := Decode(data, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		enc := seg.Encode(fuzzSrc, fuzzDst)
		again, err := Decode(enc, fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded segment does not decode: %v\nsegment: %+v", err, seg)
		}
		if !reflect.DeepEqual(seg, again) {
			t.Fatalf("round trip changed segment:\n first: %+v\nsecond: %+v", seg, again)
		}
		// The zero-alloc aliasing path must agree with the copying path.
		var aliased Segment
		if err := DecodeInto(&aliased, data, fuzzSrc, fuzzDst); err != nil {
			t.Fatalf("DecodeInto rejected what Decode accepted: %v", err)
		}
		if !reflect.DeepEqual(seg, aliased) {
			t.Fatalf("aliasing decode diverged:\n  copy: %+v\n alias: %+v", seg, aliased)
		}
	})
}
