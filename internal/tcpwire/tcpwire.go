// Package tcpwire implements the TCP native alphabet: binary segment
// encoding and decoding (RFC 793 header layout, Internet checksum over the
// IPv4 pseudo-header) plus the structured concrete-symbol form of Example
// 3.2 in the paper. Segments are the unit exchanged between the TCP
// reference client and the TCP system under learning.
package tcpwire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Flags is the TCP flag byte.
type Flags uint8

// TCP control flags.
const (
	FIN Flags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

var flagNames = []struct {
	f    Flags
	name string
}{
	{SYN, "SYN"}, {ACK, "ACK"}, {FIN, "FIN"}, {RST, "RST"}, {PSH, "PSH"}, {URG, "URG"},
}

// String renders flags in the paper's notation, e.g. "SYN+ACK" or "NIL".
func (f Flags) String() string {
	if f == 0 {
		return "NIL"
	}
	var parts []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "+")
}

// ParseFlags parses the paper's notation back to a flag set. "NIL" and the
// empty string parse to zero flags.
func ParseFlags(s string) (Flags, error) {
	if s == "" || s == "NIL" {
		return 0, nil
	}
	var f Flags
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "SYN":
			f |= SYN
		case "ACK":
			f |= ACK
		case "FIN":
			f |= FIN
		case "RST":
			f |= RST
		case "PSH":
			f |= PSH
		case "URG":
			f |= URG
		default:
			return 0, fmt.Errorf("tcpwire: unknown flag %q", part)
		}
	}
	return f, nil
}

// SACKBlock is one selective-acknowledgement block (RFC 2018): the
// half-open sequence range [Left, Right) the receiver holds out of order.
type SACKBlock struct {
	Left  uint32 `json:"left"`
	Right uint32 `json:"right"`
}

// MaxSACKBlocks is the most SACK blocks one segment carries (the RFC 2018
// option-space limit). Decoding drops blocks beyond it.
const MaxSACKBlocks = 4

// Segment is the concrete alphabet symbol for TCP: a structured view of one
// segment, mirroring the JSON object of Example 3.2. The option fields
// cover the three options the SACK-capable stack negotiates; a zero
// WindowScale means "no window-scale option" (the sim never negotiates a
// shift of zero, so the encoding is unambiguous).
type Segment struct {
	SourcePort      uint16      `json:"sourcePort"`
	DestinationPort uint16      `json:"destinationPort"`
	SeqNumber       uint32      `json:"seqNumber"`
	AckNumber       uint32      `json:"ackNumber"`
	Flags           Flags       `json:"-"`
	Window          uint16      `json:"window"`
	UrgentPointer   uint16      `json:"urgentPointer"`
	Payload         []byte      `json:"payload,omitempty"`
	SACKPermitted   bool        `json:"sackPermitted,omitempty"`
	WindowScale     uint8       `json:"windowScale,omitempty"`
	SACK            []SACKBlock `json:"sack,omitempty"`
}

// MarshalJSON emits the concrete-symbol JSON form with symbolic flags.
func (s Segment) MarshalJSON() ([]byte, error) {
	type alias Segment
	return json.Marshal(struct {
		alias
		Flags string `json:"flags"`
	}{alias(s), s.Flags.String()})
}

// UnmarshalJSON parses the concrete-symbol JSON form.
func (s *Segment) UnmarshalJSON(data []byte) error {
	type alias Segment
	var aux struct {
		alias
		Flags string `json:"flags"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	f, err := ParseFlags(aux.Flags)
	if err != nil {
		return err
	}
	*s = Segment(aux.alias)
	s.Flags = f
	return nil
}

// headerLen is the fixed TCP header size before options.
const headerLen = 20

// TCP option kinds (RFC 793 §3.1, RFC 1323, RFC 2018).
const (
	optEnd           = 0
	optNOP           = 1
	optWindowScale   = 3
	optSACKPermitted = 4
	optSACK          = 5
)

// Decode errors.
var (
	ErrTooShort    = errors.New("tcpwire: segment shorter than header")
	ErrBadOffset   = errors.New("tcpwire: data offset out of range")
	ErrBadChecksum = errors.New("tcpwire: checksum mismatch")
	ErrBadOption   = errors.New("tcpwire: malformed TCP option")
)

// Encode serializes the segment to wire format. src and dst are the IPv4
// addresses used in the checksum pseudo-header.
func (s Segment) Encode(src, dst [4]byte) []byte {
	return s.AppendEncode(nil, src, dst)
}

// AppendEncode serializes the segment onto b and returns the extended
// slice. It appends in place (capacity in b is reused), so steady-state
// encoding into a preallocated buffer performs no allocations.
func (s Segment) AppendEncode(b []byte, src, dst [4]byte) []byte {
	optLen := s.optionsLen()
	start := len(b)
	w := wire.WriterFor(b)
	w.Uint16(s.SourcePort)
	w.Uint16(s.DestinationPort)
	w.Uint32(s.SeqNumber)
	w.Uint32(s.AckNumber)
	w.Byte(byte(headerLen+optLen) / 4 << 4) // data offset in 32-bit words
	w.Byte(byte(s.Flags))
	w.Uint16(s.Window)
	w.Uint16(0) // checksum placeholder
	w.Uint16(s.UrgentPointer)
	s.appendOptions(&w, optLen)
	w.Write(s.Payload)
	buf := w.Bytes()
	sum := checksum(buf[start:], src, dst)
	buf[start+16] = byte(sum >> 8)
	buf[start+17] = byte(sum)
	return buf
}

// optionsLen returns the padded (multiple-of-four) byte length of the
// segment's options in the canonical order appendOptions emits.
func (s Segment) optionsLen() int {
	n := 0
	if s.SACKPermitted {
		n += 2
	}
	if s.WindowScale != 0 {
		n += 3
	}
	if len(s.SACK) > 0 {
		blocks := min(len(s.SACK), MaxSACKBlocks)
		n += 2 + 8*blocks
	}
	return (n + 3) &^ 3
}

// appendOptions writes the options in canonical order — SACK-permitted,
// window scale, SACK blocks — NOP-padded to the 32-bit boundary.
func (s Segment) appendOptions(w *wire.Writer, optLen int) {
	written := 0
	if s.SACKPermitted {
		w.Byte(optSACKPermitted)
		w.Byte(2)
		written += 2
	}
	if s.WindowScale != 0 {
		w.Byte(optWindowScale)
		w.Byte(3)
		w.Byte(s.WindowScale)
		written += 3
	}
	if len(s.SACK) > 0 {
		blocks := min(len(s.SACK), MaxSACKBlocks)
		w.Byte(optSACK)
		w.Byte(byte(2 + 8*blocks))
		for _, blk := range s.SACK[:blocks] {
			w.Uint32(blk.Left)
			w.Uint32(blk.Right)
		}
		written += 2 + 8*blocks
	}
	for ; written < optLen; written++ {
		w.Byte(optNOP)
	}
}

// Decode parses a wire-format segment and verifies its checksum against the
// pseudo-header for src and dst. The returned segment's payload is a copy,
// safe to retain after data is reused.
func Decode(data []byte, src, dst [4]byte) (Segment, error) {
	var s Segment
	if err := DecodeInto(&s, data, src, dst); err != nil {
		return Segment{}, err
	}
	if len(s.Payload) > 0 {
		s.Payload = append([]byte(nil), s.Payload...)
	}
	return s, nil
}

// DecodeInto is the minimal-allocation decode path: it parses into *s,
// whose Payload aliases data instead of copying it. Optionless segments —
// the learning hot path — decode with zero allocations; only a SACK
// option allocates (its block slice). Callers that retain the segment —
// or reuse data — must copy the payload themselves.
func DecodeInto(s *Segment, data []byte, src, dst [4]byte) error {
	if len(data) < headerLen {
		return ErrTooShort
	}
	r := wire.NewReader(data)
	*s = Segment{}
	s.SourcePort = r.Uint16()
	s.DestinationPort = r.Uint16()
	s.SeqNumber = r.Uint32()
	s.AckNumber = r.Uint32()
	offsetByte := r.Byte()
	s.Flags = Flags(r.Byte())
	s.Window = r.Uint16()
	r.Uint16() // checksum, verified over the whole buffer below
	s.UrgentPointer = r.Uint16()
	offset := int(offsetByte>>4) * 4
	if offset < headerLen || offset > len(data) {
		*s = Segment{}
		return ErrBadOffset
	}
	if offset > headerLen {
		if err := s.parseOptions(data[headerLen:offset]); err != nil {
			*s = Segment{}
			return err
		}
	}
	if payload := data[offset:]; len(payload) > 0 {
		s.Payload = payload
	}
	if checksum(data, src, dst) != 0 {
		*s = Segment{}
		return ErrBadChecksum
	}
	return r.Err()
}

// parseOptions walks the option bytes between the fixed header and the
// payload. Unknown kinds are skipped by their length byte; structurally
// broken options (bad lengths, truncation) are ErrBadOption.
func (s *Segment) parseOptions(opts []byte) error {
	for i := 0; i < len(opts); {
		kind := opts[i]
		switch kind {
		case optEnd:
			return nil
		case optNOP:
			i++
			continue
		}
		if i+1 >= len(opts) {
			return ErrBadOption
		}
		length := int(opts[i+1])
		if length < 2 || i+length > len(opts) {
			return ErrBadOption
		}
		body := opts[i+2 : i+length]
		switch kind {
		case optSACKPermitted:
			if length != 2 {
				return ErrBadOption
			}
			s.SACKPermitted = true
		case optWindowScale:
			if length != 3 {
				return ErrBadOption
			}
			s.WindowScale = body[0]
		case optSACK:
			if (length-2)%8 != 0 {
				return ErrBadOption
			}
			for b := 0; b+8 <= len(body) && len(s.SACK) < MaxSACKBlocks; b += 8 {
				s.SACK = append(s.SACK, SACKBlock{
					Left:  uint32(body[b])<<24 | uint32(body[b+1])<<16 | uint32(body[b+2])<<8 | uint32(body[b+3]),
					Right: uint32(body[b+4])<<24 | uint32(body[b+5])<<16 | uint32(body[b+6])<<8 | uint32(body[b+7]),
				})
			}
		}
		i += length
	}
	return nil
}

// checksum computes the TCP checksum including the IPv4 pseudo-header.
// When the segment's own checksum field is filled in, the result is zero
// for a valid segment. The pseudo-header words are folded in directly
// instead of materialising a concatenated buffer, keeping the hot path
// allocation-free; the result is identical to wire.Checksum over
// src ∥ dst ∥ {0, 6, len} ∥ segment (the pseudo-header is an even 12
// bytes, so the odd-byte rule never straddles the boundary).
func checksum(segment []byte, src, dst [4]byte) uint16 {
	sum := uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += 6 // zero byte + TCP protocol number
	sum += uint32(uint16(len(segment)))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(segment[i])<<8 | uint32(segment[i+1])
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// String renders the segment compactly for logs and diffs.
func (s Segment) String() string {
	return fmt.Sprintf("%s(seq=%d,ack=%d,len=%d)", s.Flags, s.SeqNumber, s.AckNumber, len(s.Payload))
}

// Abstract renders the segment in the paper's abstract-alphabet notation,
// e.g. "ACK+PSH(?,?,1)": flags, elided seq/ack, and payload length.
// Segments carrying options append a bracketed option summary
// ("SYN+ACK(?,?,0)[SACKOK,WS]") so option negotiation is observable in
// the learned alphabet; optionless segments render exactly as before.
func (s Segment) Abstract() string {
	base := fmt.Sprintf("%s(?,?,%d)", s.Flags, len(s.Payload))
	var opts []string
	if s.SACKPermitted {
		opts = append(opts, "SACKOK")
	}
	if s.WindowScale != 0 {
		opts = append(opts, "WS")
	}
	if len(s.SACK) > 0 {
		opts = append(opts, "SACK")
	}
	if len(opts) == 0 {
		return base
	}
	return base + "[" + strings.Join(opts, ",") + "]"
}
