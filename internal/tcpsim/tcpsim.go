// Package tcpsim implements the TCP system under learning: a userspace TCP
// server endpoint processing real wire-format segments with sequence- and
// acknowledgement-number arithmetic.
//
// The endpoint stands in for the Ubuntu 20.04 kernel stack analyzed in
// §6.1 of the paper (see DESIGN.md, substitutions). Its observable
// behaviour over the paper's seven-symbol abstract alphabet is a six-state,
// 42-transition Mealy machine, matching the size the paper reports for the
// kernel stack. The connection lifecycle is: LISTEN → SYN_RCVD →
// ESTABLISHED → CLOSE_WAIT → LAST_ACK → CLOSED, where the server
// application closes its end after the client's FIN (the passive-close path
// of RFC 793 §3.5), and a closed one-shot server answers further traffic
// with RST.
package tcpsim

import (
	"math/rand"
	"sync"

	"repro/internal/tcpwire"
)

// connState enumerates the endpoint's connection states.
type connState int

// Connection states (passive-open lifecycle).
const (
	StateListen connState = iota
	StateSynRcvd
	StateEstablished
	StateCloseWait
	StateLastAck
	StateClosed
)

var stateNames = map[connState]string{
	StateListen:      "LISTEN",
	StateSynRcvd:     "SYN_RCVD",
	StateEstablished: "ESTABLISHED",
	StateCloseWait:   "CLOSE_WAIT",
	StateLastAck:     "LAST_ACK",
	StateClosed:      "CLOSED",
}

func (s connState) String() string { return stateNames[s] }

// Config parameterizes the server.
type Config struct {
	// Port is the server's listening port; segments to other ports are
	// answered with RST as if the port were closed.
	Port uint16
	// Seed drives initial sequence number generation. The same seed yields
	// the same ISS series across resets, keeping learning deterministic.
	Seed int64
	// Window advertised in outgoing segments.
	Window uint16
	// StrictAckCheck, when true, validates acknowledgement numbers in
	// SYN_RCVD and resets the connection on a bad ACK (RFC 793 behaviour).
	StrictAckCheck bool
	// SACK enables RFC 2018 selective acknowledgements and RFC 1323
	// window scaling: the server negotiates both on SYNs that offer them,
	// and a SACK-negotiated connection becomes sequence-aware — in-order
	// data advances rcvNxt, one out-of-order block is buffered and
	// advertised in SACK blocks on duplicate ACKs until the gap fills.
	// Connections whose SYN carries no SACK-permitted option keep the
	// plain blind-ACK behaviour.
	SACK bool
}

// serverWindowScale is the shift the server advertises when window
// scaling is negotiated.
const serverWindowScale = 7

// Server is a single-connection passive TCP endpoint. It is safe for
// concurrent use; each Handle call is processed atomically.
type Server struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	state  connState
	iss    uint32 // our initial send sequence number
	sndNxt uint32 // next sequence number we will send
	rcvNxt uint32 // next sequence number we expect

	// SACK-negotiation state (Config.SACK connections only).
	sackOK bool              // this connection negotiated SACK
	wsOK   bool              // this connection negotiated window scaling
	ooo    tcpwire.SACKBlock // the single buffered out-of-order block
	hasOOO bool
}

// NewServer returns a listening server.
func NewServer(cfg Config) *Server {
	if cfg.Window == 0 {
		cfg.Window = 65535
	}
	s := &Server{cfg: cfg}
	s.Reset()
	return s
}

// Reset returns the endpoint to LISTEN with a fresh initial sequence
// number, implementing Adapter property (3) of §3.2.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	s.state = StateListen
	s.iss = s.rng.Uint32()
	s.sndNxt = s.iss
	s.rcvNxt = 0
	s.sackOK = false
	s.wsOK = false
	s.hasOOO = false
	s.ooo = tcpwire.SACKBlock{}
}

// State returns the current connection state (for tests and diagnostics).
func (s *Server) State() connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Handle processes one incoming segment and returns the server's responses
// (zero or one segment for this endpoint). The input segment must already
// be decoded; transports deal in wire bytes.
func (s *Server) Handle(in tcpwire.Segment) []tcpwire.Segment {
	s.mu.Lock()
	defer s.mu.Unlock()

	if in.DestinationPort != s.cfg.Port {
		// Closed port: RST unless the probe is itself a RST (RFC 793 §3.4).
		if in.Flags&tcpwire.RST != 0 {
			return nil
		}
		return []tcpwire.Segment{s.rstFor(in)}
	}

	switch s.state {
	case StateListen:
		return s.handleListen(in)
	case StateSynRcvd:
		return s.handleSynRcvd(in)
	case StateEstablished:
		return s.handleEstablished(in)
	case StateCloseWait:
		return s.handleCloseWait(in)
	case StateLastAck:
		return s.handleLastAck(in)
	default: // StateClosed
		return s.handleClosed(in)
	}
}

// reply builds an outgoing segment with the connection's current numbers.
func (s *Server) reply(to tcpwire.Segment, flags tcpwire.Flags, payload []byte) tcpwire.Segment {
	return tcpwire.Segment{
		SourcePort:      s.cfg.Port,
		DestinationPort: to.SourcePort,
		SeqNumber:       s.sndNxt,
		AckNumber:       s.rcvNxt,
		Flags:           flags,
		Window:          s.cfg.Window,
		Payload:         payload,
	}
}

// rstFor builds the RST mandated for a segment arriving at a closed
// endpoint: if the offender has ACK set, the RST carries that ACK number as
// its sequence; otherwise it acks the offender's data.
func (s *Server) rstFor(in tcpwire.Segment) tcpwire.Segment {
	out := tcpwire.Segment{
		SourcePort:      s.cfg.Port,
		DestinationPort: in.SourcePort,
		Flags:           tcpwire.RST,
	}
	if in.Flags&tcpwire.ACK != 0 {
		out.SeqNumber = in.AckNumber
	} else {
		out.Flags |= tcpwire.ACK
		out.AckNumber = in.SeqNumber + uint32(len(in.Payload))
		if in.Flags&tcpwire.SYN != 0 {
			out.AckNumber++
		}
	}
	return out
}

func (s *Server) handleListen(in tcpwire.Segment) []tcpwire.Segment {
	switch {
	case in.Flags&tcpwire.RST != 0:
		return nil // RSTs to LISTEN are ignored
	case in.Flags == tcpwire.SYN:
		s.rcvNxt = in.SeqNumber + 1
		s.sackOK = s.cfg.SACK && in.SACKPermitted
		s.wsOK = s.cfg.SACK && in.WindowScale != 0
		s.hasOOO = false
		out := s.synAck(in)
		s.sndNxt++ // SYN consumes one sequence number
		s.state = StateSynRcvd
		return []tcpwire.Segment{out}
	default:
		// Anything else to a listening socket draws a RST.
		return []tcpwire.Segment{s.rstFor(in)}
	}
}

func (s *Server) handleSynRcvd(in tcpwire.Segment) []tcpwire.Segment {
	switch {
	case in.Flags&tcpwire.RST != 0:
		s.state = StateListen
		return nil
	case in.Flags&tcpwire.SYN != 0 && in.Flags&tcpwire.ACK != 0:
		// SYN+ACK in SYN_RCVD is invalid for a passive opener.
		s.state = StateListen
		return []tcpwire.Segment{s.rstFor(in)}
	case in.Flags&tcpwire.SYN != 0:
		// Retransmitted SYN: retransmit our SYN-ACK (with the options the
		// original negotiation settled on).
		out := s.synAck(in)
		out.SeqNumber = s.sndNxt - 1 // reuse the original ISS
		return []tcpwire.Segment{out}
	case in.Flags&tcpwire.ACK != 0:
		if s.cfg.StrictAckCheck && in.AckNumber != s.sndNxt {
			s.state = StateListen
			return []tcpwire.Segment{s.rstFor(in)}
		}
		if in.Flags&tcpwire.FIN != 0 {
			// Handshake-completing ACK carrying FIN: connection opens and
			// immediately half-closes; we ack the FIN.
			s.rcvNxt = in.SeqNumber + uint32(len(in.Payload)) + 1
			s.state = StateCloseWait
			return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
		}
		s.rcvNxt += uint32(len(in.Payload))
		s.state = StateEstablished
		if len(in.Payload) > 0 {
			return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
		}
		return nil
	default:
		return nil
	}
}

func (s *Server) handleEstablished(in tcpwire.Segment) []tcpwire.Segment {
	switch {
	case in.Flags&tcpwire.RST != 0:
		s.state = StateClosed
		return nil
	case in.Flags&tcpwire.SYN != 0:
		// SYN (or SYN+ACK) on a synchronized connection: challenge ACK.
		return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
	case in.Flags&tcpwire.FIN != 0:
		s.rcvNxt = in.SeqNumber + uint32(len(in.Payload)) + 1
		s.hasOOO = false
		s.state = StateCloseWait
		return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
	case in.Flags&tcpwire.ACK != 0:
		if s.sackOK {
			return s.absorbData(in)
		}
		s.rcvNxt += uint32(len(in.Payload))
		if len(in.Payload) > 0 {
			return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
		}
		return nil
	default:
		return nil
	}
}

// synAck builds the SYN+ACK reply carrying the options this connection
// negotiated.
func (s *Server) synAck(in tcpwire.Segment) tcpwire.Segment {
	out := s.reply(in, tcpwire.SYN|tcpwire.ACK, nil)
	out.SACKPermitted = s.sackOK
	if s.wsOK {
		out.WindowScale = serverWindowScale
	}
	return out
}

// seqAfter reports whether sequence number a is after b in 32-bit
// serial-number arithmetic.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// absorbData is the sequence-aware receive path of a SACK-negotiated
// connection: in-order data advances rcvNxt (and drains the buffered
// block when the gap fills), out-of-order data is buffered — one block,
// merged when segments touch — and every data segment draws an ACK that
// advertises the outstanding block in its SACK option.
func (s *Server) absorbData(in tcpwire.Segment) []tcpwire.Segment {
	n := uint32(len(in.Payload))
	if n == 0 {
		return nil // pure ACK: nothing to acknowledge back
	}
	switch {
	case in.SeqNumber == s.rcvNxt:
		s.rcvNxt += n
		if s.hasOOO && !seqAfter(s.ooo.Left, s.rcvNxt) {
			if seqAfter(s.ooo.Right, s.rcvNxt) {
				s.rcvNxt = s.ooo.Right
			}
			s.hasOOO = false
		}
	case seqAfter(in.SeqNumber, s.rcvNxt):
		blk := tcpwire.SACKBlock{Left: in.SeqNumber, Right: in.SeqNumber + n}
		switch {
		case !s.hasOOO:
			s.ooo, s.hasOOO = blk, true
		case !seqAfter(blk.Left, s.ooo.Right) && !seqAfter(s.ooo.Left, blk.Right):
			// Touching or overlapping the buffered block: merge.
			if seqAfter(s.ooo.Left, blk.Left) {
				s.ooo.Left = blk.Left
			}
			if seqAfter(blk.Right, s.ooo.Right) {
				s.ooo.Right = blk.Right
			}
		}
		// A second disjoint block exceeds the single-block buffer and is
		// dropped — the dup-ACK below still reports what is held.
	default:
		// Old duplicate: dup-ACK re-asserts rcvNxt.
	}
	out := s.reply(in, tcpwire.ACK, nil)
	if s.hasOOO {
		out.SACK = []tcpwire.SACKBlock{s.ooo}
	}
	return []tcpwire.Segment{out}
}

// handleCloseWait models the server application closing its end promptly
// after the client's FIN: the next client segment triggers our FIN.
func (s *Server) handleCloseWait(in tcpwire.Segment) []tcpwire.Segment {
	switch {
	case in.Flags&tcpwire.RST != 0:
		s.state = StateClosed
		return nil
	case in.Flags&tcpwire.SYN != 0:
		return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
	case in.Flags&tcpwire.FIN != 0:
		// Duplicate FIN: ack it and send our own FIN.
		out := s.reply(in, tcpwire.FIN|tcpwire.ACK, nil)
		s.sndNxt++
		s.state = StateLastAck
		return []tcpwire.Segment{out}
	default:
		out := s.reply(in, tcpwire.FIN|tcpwire.ACK, nil)
		s.sndNxt++
		s.state = StateLastAck
		return []tcpwire.Segment{out}
	}
}

func (s *Server) handleLastAck(in tcpwire.Segment) []tcpwire.Segment {
	switch {
	case in.Flags&tcpwire.RST != 0:
		s.state = StateClosed
		return nil
	case in.Flags&tcpwire.SYN != 0:
		return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
	case in.Flags&tcpwire.FIN != 0:
		// Still waiting for the ack of our FIN; ack the duplicate.
		return []tcpwire.Segment{s.reply(in, tcpwire.ACK, nil)}
	case in.Flags&tcpwire.ACK != 0:
		s.state = StateClosed
		return nil
	default:
		return nil
	}
}

// handleClosed models the one-shot server after its connection has ended:
// the listener is gone, so anything but a RST draws a RST.
func (s *Server) handleClosed(in tcpwire.Segment) []tcpwire.Segment {
	if in.Flags&tcpwire.RST != 0 {
		return nil
	}
	return []tcpwire.Segment{s.rstFor(in)}
}
