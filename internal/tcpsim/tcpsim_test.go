package tcpsim

import (
	"testing"

	"repro/internal/tcpwire"
)

const port = 44344

func newServer() *Server {
	return NewServer(Config{Port: port, Seed: 1, StrictAckCheck: true})
}

// client is a minimal test peer tracking sequence numbers.
type client struct {
	seq, ack uint32
	s        *Server
	t        *testing.T
}

func (c *client) send(flags tcpwire.Flags, payload []byte) []tcpwire.Segment {
	seg := tcpwire.Segment{
		SourcePort:      40000,
		DestinationPort: port,
		SeqNumber:       c.seq,
		AckNumber:       c.ack,
		Flags:           flags,
		Payload:         payload,
	}
	out := c.s.Handle(seg)
	c.seq += uint32(len(payload))
	if flags&tcpwire.SYN != 0 || flags&tcpwire.FIN != 0 {
		c.seq++
	}
	for _, o := range out {
		adv := uint32(len(o.Payload))
		if o.Flags&tcpwire.SYN != 0 || o.Flags&tcpwire.FIN != 0 {
			adv++
		}
		if adv > 0 {
			c.ack = o.SeqNumber + adv
		}
	}
	return out
}

func (c *client) expect(t *testing.T, got []tcpwire.Segment, want string) {
	t.Helper()
	if want == "NIL" {
		if len(got) != 0 {
			t.Fatalf("expected no reply, got %v", got)
		}
		return
	}
	if len(got) != 1 {
		t.Fatalf("expected one reply %q, got %v", want, got)
	}
	if got[0].Flags.String() != want {
		t.Fatalf("reply = %s, want %s", got[0].Flags, want)
	}
}

func TestThreeWayHandshake(t *testing.T) {
	s := newServer()
	c := &client{seq: 1000, s: s, t: t}
	c.expect(t, c.send(tcpwire.SYN, nil), "SYN+ACK")
	if s.State() != StateSynRcvd {
		t.Fatalf("state = %v, want SYN_RCVD", s.State())
	}
	c.expect(t, c.send(tcpwire.ACK, nil), "NIL")
	if s.State() != StateEstablished {
		t.Fatalf("state = %v, want ESTABLISHED", s.State())
	}
}

func TestSynAckNumbers(t *testing.T) {
	s := newServer()
	c := &client{seq: 48108, s: s, t: t}
	out := c.send(tcpwire.SYN, nil)
	if len(out) != 1 {
		t.Fatal("no SYN-ACK")
	}
	if out[0].AckNumber != 48109 {
		t.Fatalf("SYN-ACK acks %d, want 48109", out[0].AckNumber)
	}
}

func TestDataTransferAcked(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.send(tcpwire.ACK, nil)
	out := c.send(tcpwire.ACK|tcpwire.PSH, []byte("x"))
	c.expect(t, out, "ACK")
	if out[0].AckNumber != 3 { // seq 1 consumed by SYN, then 1 data byte
		t.Fatalf("data ack = %d, want 3", out[0].AckNumber)
	}
}

func TestPassiveClose(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.send(tcpwire.ACK, nil)
	c.expect(t, c.send(tcpwire.FIN|tcpwire.ACK, nil), "ACK")
	if s.State() != StateCloseWait {
		t.Fatalf("state = %v, want CLOSE_WAIT", s.State())
	}
	c.expect(t, c.send(tcpwire.ACK, nil), "ACK+FIN")
	if s.State() != StateLastAck {
		t.Fatalf("state = %v, want LAST_ACK", s.State())
	}
	c.expect(t, c.send(tcpwire.ACK, nil), "NIL")
	if s.State() != StateClosed {
		t.Fatalf("state = %v, want CLOSED", s.State())
	}
	// After close, the one-shot server RSTs new traffic.
	c.expect(t, c.send(tcpwire.SYN, nil), "ACK+RST")
}

func TestRstTearsDown(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.send(tcpwire.ACK, nil)
	c.expect(t, c.send(tcpwire.RST, nil), "NIL")
	if s.State() != StateClosed {
		t.Fatalf("state = %v, want CLOSED", s.State())
	}
}

func TestRstInSynRcvdReturnsToListen(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.expect(t, c.send(tcpwire.RST|tcpwire.ACK, nil), "NIL")
	if s.State() != StateListen {
		t.Fatalf("state = %v, want LISTEN", s.State())
	}
}

func TestChallengeAckOnSynInEstablished(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.send(tcpwire.ACK, nil)
	c.expect(t, c.send(tcpwire.SYN, nil), "ACK")
	if s.State() != StateEstablished {
		t.Fatal("challenge ACK must not change state")
	}
}

func TestListenRejectsStrays(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	for _, f := range []tcpwire.Flags{tcpwire.ACK, tcpwire.ACK | tcpwire.PSH,
		tcpwire.FIN | tcpwire.ACK, tcpwire.SYN | tcpwire.ACK} {
		s.Reset()
		c.seq, c.ack = 1, 0
		out := c.send(f, nil)
		if len(out) != 1 || out[0].Flags&tcpwire.RST == 0 {
			t.Fatalf("flags %v: want RST, got %v", f, out)
		}
	}
	s.Reset()
	c.expect(t, c.send(tcpwire.RST, nil), "NIL")
}

func TestStrictAckCheckResets(t *testing.T) {
	s := newServer()
	seg := tcpwire.Segment{SourcePort: 40000, DestinationPort: port, SeqNumber: 1, Flags: tcpwire.SYN}
	s.Handle(seg)
	bad := tcpwire.Segment{SourcePort: 40000, DestinationPort: port, SeqNumber: 2,
		AckNumber: 0xBAD, Flags: tcpwire.ACK}
	out := s.Handle(bad)
	if len(out) != 1 || out[0].Flags&tcpwire.RST == 0 {
		t.Fatalf("bad ACK in SYN_RCVD must RST, got %v", out)
	}
	if s.State() != StateListen {
		t.Fatalf("state = %v, want LISTEN", s.State())
	}
}

func TestWrongPortGetsRst(t *testing.T) {
	s := newServer()
	seg := tcpwire.Segment{SourcePort: 40000, DestinationPort: port + 1, SeqNumber: 5, Flags: tcpwire.SYN}
	out := s.Handle(seg)
	if len(out) != 1 || out[0].Flags&tcpwire.RST == 0 {
		t.Fatalf("want RST for closed port, got %v", out)
	}
	if out[0].AckNumber != 6 {
		t.Fatalf("RST ack = %d, want 6 (SYN consumes one)", out[0].AckNumber)
	}
}

func TestResetRestoresDeterminism(t *testing.T) {
	s := newServer()
	first := s.Handle(tcpwire.Segment{SourcePort: 1, DestinationPort: port, SeqNumber: 9, Flags: tcpwire.SYN})
	s.Reset()
	second := s.Handle(tcpwire.Segment{SourcePort: 1, DestinationPort: port, SeqNumber: 9, Flags: tcpwire.SYN})
	if first[0].SeqNumber != second[0].SeqNumber {
		t.Fatalf("ISS differs across resets: %d vs %d", first[0].SeqNumber, second[0].SeqNumber)
	}
}

func TestSynRetransmitRepeatsSynAck(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	first := c.send(tcpwire.SYN, nil)
	// Retransmit the same SYN.
	again := s.Handle(tcpwire.Segment{SourcePort: 40000, DestinationPort: port, SeqNumber: 1, Flags: tcpwire.SYN})
	if len(again) != 1 || again[0].Flags != tcpwire.SYN|tcpwire.ACK {
		t.Fatalf("retransmit reply = %v", again)
	}
	if again[0].SeqNumber != first[0].SeqNumber {
		t.Fatalf("retransmitted SYN-ACK reuses ISS: %d vs %d", again[0].SeqNumber, first[0].SeqNumber)
	}
}

func TestFinInSynRcvd(t *testing.T) {
	s := newServer()
	c := &client{seq: 1, s: s, t: t}
	c.send(tcpwire.SYN, nil)
	c.expect(t, c.send(tcpwire.FIN|tcpwire.ACK, nil), "ACK")
	if s.State() != StateCloseWait {
		t.Fatalf("state = %v, want CLOSE_WAIT", s.State())
	}
}
