package testutil

import (
	"repro/internal/quicsim"
	"repro/internal/reference"
)

// TransportWrap decorates the client→server transport of a wired QUIC
// pair — e.g. with a netem.Link — before the reference client attaches.
type TransportWrap func(reference.Transport) reference.Transport

// QUICPair wires a quicsim server to an instrumented reference client:
// the standard fixture shared by the reference, netem, and lab test
// suites (previously hand-rolled separately in each). It satisfies
// core.SUL.
type QUICPair struct {
	Server *quicsim.Server
	Client *reference.QUICClient
}

// NewQUICPair builds the pair with the test suites' conventional seeds
// (server 7, client 11), threading the transport through wrap when
// non-nil.
func NewQUICPair(profile quicsim.Profile, wrap TransportWrap) *QUICPair {
	srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: 7})
	var tr reference.Transport = reference.ServerTransport(srv)
	if wrap != nil {
		tr = wrap(tr)
	}
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)
	return &QUICPair{Server: srv, Client: cli}
}

// Reset implements core.SUL: both endpoints return to their initial
// states.
func (p *QUICPair) Reset() error {
	p.Server.Reset()
	return p.Client.Reset()
}

// Step implements core.SUL.
func (p *QUICPair) Step(in string) (string, error) { return p.Client.Step(in) }
