// Package testutil holds small helpers shared across this repo's test
// suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitForGoroutines polls until the goroutine count drops back to at most
// base (plus a small tolerance for runtime background goroutines), failing
// the test with a full stack dump if it never does — a dependency-free
// goleak-style check.
func WaitForGoroutines(tb testing.TB, base int) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	tb.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}
