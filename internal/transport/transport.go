// Package transport hosts the simulated protocol endpoints on real UDP
// sockets and provides matching client transports, so Prognosis can learn
// over an actual network path (loopback or otherwise) instead of in-process
// function calls. TCP segments are carried in UDP datagrams — the userspace
// stack plays the role the kernel plays in the paper's testbed.
package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
	"repro/internal/tcpwire"
)

// maxDatagram is the receive buffer size, comfortably above any packet the
// simulators emit.
const maxDatagram = 4096

// quiet is how long client transports wait for further response datagrams
// after the last one (the simulators answer synchronously, so loopback
// responses arrive promptly or not at all).
const quiet = 30 * time.Millisecond

// QUICServer hosts a quicsim server on a UDP socket.
type QUICServer struct {
	conn *net.UDPConn
	srv  *quicsim.Server
	wg   sync.WaitGroup
}

// ListenQUIC binds addr (e.g. "127.0.0.1:0") and serves the QUIC simulator
// on it. Close stops the server.
func ListenQUIC(addr string, srv *quicsim.Server) (*QUICServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &QUICServer{conn: conn, srv: srv}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *QUICServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops serving.
func (s *QUICServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *QUICServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, src, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		dgram := append([]byte(nil), buf[:n]...)
		for _, out := range s.srv.HandleDatagram(src.String(), dgram) {
			if _, err := s.conn.WriteToUDP(out, src); err != nil {
				return
			}
		}
	}
}

// QUICClientTransport is a reference.Transport over UDP. It honours the
// client's source-address changes (the Issue 3 bug) by rebinding its local
// socket whenever the src string changes.
type QUICClientTransport struct {
	server  string
	mu      sync.Mutex
	conn    *net.UDPConn
	lastSrc string
}

// NewQUICClientTransport returns a transport that dials the given server
// address per datagram exchange.
func NewQUICClientTransport(server string) *QUICClientTransport {
	return &QUICClientTransport{server: server}
}

// Send implements reference.Transport.
func (t *QUICClientTransport) Send(src string, datagram []byte) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil || src != t.lastSrc {
		if t.conn != nil {
			t.conn.Close()
		}
		ra, err := net.ResolveUDPAddr("udp", t.server)
		if err != nil {
			return nil
		}
		conn, err := net.DialUDP("udp", nil, ra) // fresh ephemeral port
		if err != nil {
			return nil
		}
		t.conn = conn
		t.lastSrc = src
	}
	if _, err := t.conn.Write(datagram); err != nil {
		return nil
	}
	var out [][]byte
	buf := make([]byte, maxDatagram)
	for {
		t.conn.SetReadDeadline(time.Now().Add(quiet))
		n, err := t.conn.Read(buf)
		if err != nil {
			break
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
	return out
}

// Close releases the client socket.
func (t *QUICClientTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		return t.conn.Close()
	}
	return nil
}

// TCPServer hosts a tcpsim server on a UDP socket, carrying binary TCP
// segments in datagrams.
type TCPServer struct {
	conn     *net.UDPConn
	srv      *tcpsim.Server
	src, dst [4]byte
	wg       sync.WaitGroup
}

// ListenTCP binds addr and serves the TCP simulator. src and dst are the
// pseudo-header addresses used for checksums (client's and server's).
func ListenTCP(addr string, srv *tcpsim.Server, src, dst [4]byte) (*TCPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{conn: conn, srv: srv, src: src, dst: dst}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops serving.
func (s *TCPServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		seg, err := tcpwire.Decode(buf[:n], s.src, s.dst)
		if err != nil {
			continue // corrupt segment: drop, like a NIC would
		}
		for _, resp := range s.srv.Handle(seg) {
			if _, err := s.conn.WriteToUDP(resp.Encode(s.dst, s.src), from); err != nil {
				return
			}
		}
	}
}

// NewTCPClientTransport returns a reference.TCPTransport over UDP.
func NewTCPClientTransport(server string) (reference.TCPTransport, func() error, error) {
	ra, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, nil, err
	}
	tr := reference.TCPTransportFunc(func(segment []byte) [][]byte {
		if _, err := conn.Write(segment); err != nil {
			return nil
		}
		var out [][]byte
		buf := make([]byte, maxDatagram)
		for {
			conn.SetReadDeadline(time.Now().Add(quiet))
			n, err := conn.Read(buf)
			if err != nil {
				break
			}
			out = append(out, append([]byte(nil), buf[:n]...))
		}
		return out
	})
	return tr, conn.Close, nil
}

// Loopback returns a loopback listen address with an ephemeral port.
func Loopback() string { return fmt.Sprintf("127.0.0.1:0") }
