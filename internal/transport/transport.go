// Package transport hosts the simulated protocol endpoints on real UDP
// sockets and provides matching client transports, so Prognosis can learn
// over an actual network path (loopback or otherwise) instead of in-process
// function calls. TCP segments are carried in UDP datagrams — the userspace
// stack plays the role the kernel plays in the paper's testbed.
//
// Two path modes exist. PathBatched (the default) moves datagrams through a
// BatchConn — recvmmsg/sendmmsg where available — with preallocated message
// rings and RTT-adaptive response deadlines. PathLegacy preserves the
// original one-syscall-per-datagram loops with the fixed 30ms quiet window,
// and serves as the baseline arm for BenchmarkUDPQueriesPerSec.
package transport

import (
	"net"
	"sync"
	"time"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
	"repro/internal/tcpwire"
)

// maxDatagram is the receive buffer size, comfortably above any packet the
// simulators emit.
const maxDatagram = 4096

// quiet is how long legacy client transports wait for further response
// datagrams after the last one (the simulators answer synchronously, so
// loopback responses arrive promptly or not at all). The batched path uses
// it as the ceiling — and the cold-start value — for its adaptive waits.
const quiet = 30 * time.Millisecond

// batchSize is the message-ring depth for batched reads and writes.
const batchSize = 32

// PathMode selects between the batched and the legacy UDP hot path.
type PathMode int

const (
	// PathBatched moves datagrams in batches with adaptive deadlines.
	PathBatched PathMode = iota
	// PathLegacy is the original per-packet path with fixed waits.
	PathLegacy
)

// srttTracker keeps a smoothed estimate of the time from sending a request
// datagram to the first response datagram, and derives the two waits the
// client path needs: how long to believe a response is still coming, and
// how long a silence means the burst is over. Both are clamped so a cold
// or noisy estimate degrades to the legacy 30ms behaviour, never below
// floors that absorb scheduler jitter.
type srttTracker struct {
	srtt time.Duration
}

// observe folds a new time-to-first-response sample in (EWMA, gain 1/4).
func (s *srttTracker) observe(d time.Duration) {
	if s.srtt == 0 {
		s.srtt = d
		return
	}
	s.srtt += (d - s.srtt) / 4
}

// firstWait is the deadline for the first response datagram of an exchange.
func (s *srttTracker) firstWait() time.Duration {
	return clampWait(16*s.srtt, 5*time.Millisecond)
}

// quietWait is the silence that ends an exchange once data has arrived.
func (s *srttTracker) quietWait() time.Duration {
	return clampWait(8*s.srtt, time.Millisecond)
}

func clampWait(d, floor time.Duration) time.Duration {
	if d <= 0 || d > quiet {
		return quiet
	}
	if d < floor {
		return floor
	}
	return d
}

// QUICServer hosts a quicsim server on a UDP socket.
type QUICServer struct {
	conn *net.UDPConn
	srv  *quicsim.Server
	mode PathMode
	wg   sync.WaitGroup
}

// ListenQUIC binds addr (e.g. "127.0.0.1:0") and serves the QUIC simulator
// on it over the batched path. Close stops the server.
func ListenQUIC(addr string, srv *quicsim.Server) (*QUICServer, error) {
	return ListenQUICMode(addr, srv, PathBatched)
}

// ListenQUICMode is ListenQUIC with an explicit path mode.
func ListenQUICMode(addr string, srv *quicsim.Server, mode PathMode) (*QUICServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &QUICServer{conn: conn, srv: srv, mode: mode}
	s.wg.Add(1)
	if mode == PathLegacy {
		go s.loopLegacy()
	} else {
		go s.loopBatched()
	}
	return s, nil
}

// Addr returns the bound address.
func (s *QUICServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops serving.
func (s *QUICServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *QUICServer) loopLegacy() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, src, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		dgram := append([]byte(nil), buf[:n]...)
		for _, out := range s.srv.HandleDatagram(src.String(), dgram) {
			if _, err := s.conn.WriteToUDP(out, src); err != nil {
				return
			}
		}
	}
}

func (s *QUICServer) loopBatched() {
	defer s.wg.Done()
	bconn := NewBatchConn(s.conn)
	rms := make([]Message, batchSize)
	for i := range rms {
		rms[i].Buf = make([]byte, maxDatagram)
	}
	wms := make([]Message, 0, batchSize)
	for {
		n, err := bconn.ReadBatch(rms)
		if err != nil {
			return
		}
		wms = wms[:0]
		for i := 0; i < n; i++ {
			// HandleDatagram copies anything it retains, so the ring
			// buffer goes in uncopied; its response buffers are fresh
			// and stay valid through the write batch.
			for _, out := range s.srv.HandleDatagram(rms[i].Addr.String(), rms[i].Buf[:rms[i].N]) {
				wms = append(wms, Message{Buf: out, N: len(out), Addr: rms[i].Addr})
			}
		}
		if len(wms) > 0 {
			if _, err := bconn.WriteBatch(wms); err != nil {
				return
			}
		}
	}
}

// QUICClientTransport is a reference.Transport over UDP. It honours the
// client's source-address changes (the Issue 3 bug) by rebinding its local
// socket whenever the src string changes.
type QUICClientTransport struct {
	server  string
	mode    PathMode
	mu      sync.Mutex
	conn    *net.UDPConn
	bconn   BatchConn
	lastSrc string
	rtt     srttTracker
	rms     []Message
}

// NewQUICClientTransport returns a batched-path transport that dials the
// given server address per datagram exchange.
func NewQUICClientTransport(server string) *QUICClientTransport {
	return NewQUICClientTransportMode(server, PathBatched)
}

// NewQUICClientTransportMode is NewQUICClientTransport with an explicit
// path mode.
func NewQUICClientTransportMode(server string, mode PathMode) *QUICClientTransport {
	return &QUICClientTransport{server: server, mode: mode}
}

// rebind ensures a socket bound for src, dialling a fresh ephemeral port
// when the claimed source changes. Callers hold t.mu.
func (t *QUICClientTransport) rebind(src string) bool {
	if t.conn != nil && src == t.lastSrc {
		return true
	}
	if t.conn != nil {
		t.conn.Close()
	}
	t.conn, t.bconn = nil, nil
	ra, err := net.ResolveUDPAddr("udp", t.server)
	if err != nil {
		return false
	}
	conn, err := net.DialUDP("udp", nil, ra) // fresh ephemeral port
	if err != nil {
		return false
	}
	t.conn = conn
	if t.mode == PathBatched {
		t.bconn = NewBatchConn(conn)
		if t.rms == nil {
			t.rms = make([]Message, batchSize)
			for i := range t.rms {
				t.rms[i].Buf = make([]byte, maxDatagram)
			}
		}
	}
	t.lastSrc = src
	return true
}

// Send implements reference.Transport.
func (t *QUICClientTransport) Send(src string, datagram []byte) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.rebind(src) {
		return nil
	}
	if t.mode == PathLegacy {
		return t.sendLegacy(datagram)
	}
	return t.sendBatched(datagram)
}

func (t *QUICClientTransport) sendLegacy(datagram []byte) [][]byte {
	if _, err := t.conn.Write(datagram); err != nil {
		return nil
	}
	var out [][]byte
	buf := make([]byte, maxDatagram)
	for {
		t.conn.SetReadDeadline(time.Now().Add(quiet))
		n, err := t.conn.Read(buf)
		if err != nil {
			break
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
	return out
}

func (t *QUICClientTransport) sendBatched(datagram []byte) [][]byte {
	t.bconn.TryReadBatch(t.rms) // drop stale datagrams from a prior exchange
	start := time.Now()
	if _, err := t.conn.Write(datagram); err != nil {
		return nil
	}
	var out [][]byte
	wait := t.rtt.firstWait()
	for {
		t.conn.SetReadDeadline(time.Now().Add(wait))
		n, err := t.bconn.ReadBatch(t.rms)
		if err != nil {
			break
		}
		if out == nil {
			t.rtt.observe(time.Since(start))
		}
		for i := 0; i < n; i++ {
			out = append(out, append([]byte(nil), t.rms[i].Buf[:t.rms[i].N]...))
		}
		wait = t.rtt.quietWait()
	}
	return out
}

// Close releases the client socket.
func (t *QUICClientTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		return t.conn.Close()
	}
	return nil
}

// TCPServer hosts a tcpsim server on a UDP socket, carrying binary TCP
// segments in datagrams.
type TCPServer struct {
	conn     *net.UDPConn
	srv      *tcpsim.Server
	src, dst [4]byte
	mode     PathMode
	wg       sync.WaitGroup
}

// ListenTCP binds addr and serves the TCP simulator over the batched path.
// src and dst are the pseudo-header addresses used for checksums (client's
// and server's).
func ListenTCP(addr string, srv *tcpsim.Server, src, dst [4]byte) (*TCPServer, error) {
	return ListenTCPMode(addr, srv, src, dst, PathBatched)
}

// ListenTCPMode is ListenTCP with an explicit path mode.
func ListenTCPMode(addr string, srv *tcpsim.Server, src, dst [4]byte, mode PathMode) (*TCPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{conn: conn, srv: srv, src: src, dst: dst, mode: mode}
	s.wg.Add(1)
	if mode == PathLegacy {
		go s.loopLegacy()
	} else {
		go s.loopBatched()
	}
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops serving.
func (s *TCPServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) loopLegacy() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		seg, err := tcpwire.Decode(buf[:n], s.src, s.dst)
		if err != nil {
			continue // corrupt segment: drop, like a NIC would
		}
		for _, resp := range s.srv.Handle(seg) {
			if _, err := s.conn.WriteToUDP(resp.Encode(s.dst, s.src), from); err != nil {
				return
			}
		}
	}
}

func (s *TCPServer) loopBatched() {
	defer s.wg.Done()
	bconn := NewBatchConn(s.conn)
	rms := make([]Message, batchSize)
	for i := range rms {
		rms[i].Buf = make([]byte, maxDatagram)
	}
	// Responses are encoded into stable per-slot buffers: each slot is
	// appended into at its own fixed backing, so earlier messages never
	// move when later ones encode (a shared arena would invalidate them
	// on growth).
	var wslots [][]byte
	wms := make([]Message, 0, batchSize)
	var seg tcpwire.Segment
	for {
		n, err := bconn.ReadBatch(rms)
		if err != nil {
			return
		}
		wms = wms[:0]
		used := 0
		for i := 0; i < n; i++ {
			// The aliasing decode is safe here: tcpsim.Handle receives
			// the segment by value and never retains the payload slice.
			if err := tcpwire.DecodeInto(&seg, rms[i].Buf[:rms[i].N], s.src, s.dst); err != nil {
				continue // corrupt segment: drop, like a NIC would
			}
			for _, resp := range s.srv.Handle(seg) {
				if used == len(wslots) {
					wslots = append(wslots, make([]byte, 0, maxDatagram))
				}
				wslots[used] = resp.AppendEncode(wslots[used][:0], s.dst, s.src)
				wms = append(wms, Message{Buf: wslots[used], N: len(wslots[used]), Addr: rms[i].Addr})
				used++
			}
		}
		if len(wms) > 0 {
			if _, err := bconn.WriteBatch(wms); err != nil {
				return
			}
		}
	}
}

// NewTCPClientTransport returns a batched-path reference.TCPTransport over
// UDP.
func NewTCPClientTransport(server string) (reference.TCPTransport, func() error, error) {
	return NewTCPClientTransportMode(server, PathBatched)
}

// NewTCPClientTransportMode is NewTCPClientTransport with an explicit path
// mode.
func NewTCPClientTransportMode(server string, mode PathMode) (reference.TCPTransport, func() error, error) {
	ra, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, nil, err
	}
	if mode == PathLegacy {
		tr := reference.TCPTransportFunc(func(segment []byte) [][]byte {
			if _, err := conn.Write(segment); err != nil {
				return nil
			}
			var out [][]byte
			buf := make([]byte, maxDatagram)
			for {
				conn.SetReadDeadline(time.Now().Add(quiet))
				n, err := conn.Read(buf)
				if err != nil {
					break
				}
				out = append(out, append([]byte(nil), buf[:n]...))
			}
			return out
		})
		return tr, conn.Close, nil
	}
	var (
		mu    sync.Mutex
		rtt   srttTracker
		bconn = NewBatchConn(conn)
		rms   = make([]Message, batchSize)
	)
	for i := range rms {
		rms[i].Buf = make([]byte, maxDatagram)
	}
	tr := reference.TCPTransportFunc(func(segment []byte) [][]byte {
		mu.Lock()
		defer mu.Unlock()
		bconn.TryReadBatch(rms) // drop stale datagrams from a prior exchange
		start := time.Now()
		if _, err := conn.Write(segment); err != nil {
			return nil
		}
		var out [][]byte
		wait := rtt.firstWait()
		for {
			conn.SetReadDeadline(time.Now().Add(wait))
			n, err := bconn.ReadBatch(rms)
			if err != nil {
				break
			}
			if out == nil {
				rtt.observe(time.Since(start))
			}
			for i := 0; i < n; i++ {
				out = append(out, append([]byte(nil), rms[i].Buf[:rms[i].N]...))
			}
			wait = rtt.quietWait()
		}
		return out
	})
	return tr, conn.Close, nil
}

// Loopback returns a loopback listen address with an ephemeral port.
func Loopback() string { return "127.0.0.1:0" }
