package transport

import (
	"testing"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
)

// TestQUICOverUDPLoopback drives the QUIC handshake over a real UDP socket
// pair and checks the abstract outputs match the in-memory path.
func TestQUICOverUDPLoopback(t *testing.T) {
	srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileGoogle, Seed: 7})
	hosted, err := ListenQUIC(Loopback(), srv)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()

	tr := NewQUICClientTransport(hosted.Addr())
	defer tr.Close()
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)

	srv.Reset()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	out1, err := cli.Step(quicsim.SymInitialCrypto)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := cli.Step(quicsim.SymHandshakeC)
	if err != nil {
		t.Fatal(err)
	}
	truth := quicsim.GroundTruth(quicsim.ProfileGoogle)
	want, _ := truth.Run([]string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	if out1 != want[0] || out2 != want[1] {
		t.Fatalf("UDP path diverges:\n got %q / %q\nwant %q / %q", out1, out2, want[0], want[1])
	}
}

// TestLearnQuicheOverUDP runs a complete learning session across UDP.
func TestLearnQuicheOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP learning session is slow in -short mode")
	}
	srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileQuiche, Seed: 7})
	hosted, err := ListenQUIC(Loopback(), srv)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()
	tr := NewQUICClientTransport(hosted.Addr())
	defer tr.Close()

	// Wire the reference client straight to the hosted server over the UDP
	// transport (the same seeds lab's UDP builder uses).
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)
	sul := &udpSUL{cli: cli, hosted: srv}
	out, err := runWord(sul, []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := quicsim.GroundTruth(quicsim.ProfileQuiche).Run(
		[]string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream})
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("step %d: got %q want %q", i, out[i], want[i])
		}
	}
}

type udpSUL struct {
	cli    *reference.QUICClient
	hosted *quicsim.Server
}

func (u *udpSUL) Reset() error {
	u.hosted.Reset()
	return u.cli.Reset()
}

func (u *udpSUL) Step(in string) (string, error) { return u.cli.Step(in) }

func runWord(s interface {
	Reset() error
	Step(string) (string, error)
}, word []string) ([]string, error) {
	if err := s.Reset(); err != nil {
		return nil, err
	}
	var out []string
	for _, in := range word {
		o, err := s.Step(in)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// TestTCPOverUDPLoopback exchanges checksummed TCP segments over UDP.
func TestTCPOverUDPLoopback(t *testing.T) {
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	srv := tcpsim.NewServer(tcpsim.Config{Port: 44344, Seed: 5})
	hosted, err := ListenTCP(Loopback(), srv, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()

	tr, closer, err := NewTCPClientTransport(hosted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	cli := reference.NewTCPClient(reference.TCPClientConfig{
		Seed: 3, DstPort: 44344, SrcAddr: src, DstAddr: dst,
	}, tr)

	srv.Reset()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	out, err := cli.Step("SYN(?,?,0)")
	if err != nil {
		t.Fatal(err)
	}
	if out != "SYN+ACK(?,?,0)" {
		t.Fatalf("SYN over UDP got %q", out)
	}
	out, err = cli.Step("ACK(?,?,0)")
	if err != nil || out != "NIL" {
		t.Fatalf("ACK over UDP got %q, %v", out, err)
	}
}

// TestQUICClientTransportRebindsOnSourceChange covers the Issue 3
// mechanism: a changed source string forces a fresh local socket.
func TestQUICClientTransportRebindsOnSourceChange(t *testing.T) {
	srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileGoogle, Seed: 7, RetryRequired: true})
	hosted, err := ListenQUIC(Loopback(), srv)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()
	tr := NewQUICClientTransport(hosted.Addr())
	defer tr.Close()

	// The buggy client changes its claimed source after a Retry; the real
	// token is bound to the actual UDP source address, so the server keeps
	// dropping the retried initials and the handshake never completes.
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11, RetryFromNewPort: true}, tr)
	srv.Reset()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	out1, _ := cli.Step(quicsim.SymInitialCrypto)
	if out1 != "{RETRY(?,?)[]}" {
		t.Fatalf("first initial got %q", out1)
	}
	out2, _ := cli.Step(quicsim.SymInitialCrypto)
	if out2 != "{}" {
		t.Fatalf("retried initial from new port should be dropped, got %q", out2)
	}
}
