package transport

import "repro/internal/metrics"

// Process-wide transport metric families. Instrumentation lives in a
// decorator around the platform BatchConn (see NewBatchConn), so the
// recvmmsg/sendmmsg hot loops and the portable fallback stay untouched
// and the read path stays alloc-free — recording is a handful of atomic
// adds on counters resolved once at init.
var (
	metricReadBatches = metrics.Default().CounterWith("prognosis_transport_batches_total",
		"Batch operations that moved at least one datagram.", []string{"dir"}, []string{"read"})
	metricWriteBatches = metrics.Default().CounterWith("prognosis_transport_batches_total",
		"Batch operations that moved at least one datagram.", []string{"dir"}, []string{"write"})
	metricReadMessages = metrics.Default().CounterWith("prognosis_transport_messages_total",
		"Datagrams moved through batch operations.", []string{"dir"}, []string{"read"})
	metricWriteMessages = metrics.Default().CounterWith("prognosis_transport_messages_total",
		"Datagrams moved through batch operations.", []string{"dir"}, []string{"write"})
	metricSyscallsSaved = metrics.Default().Counter("prognosis_transport_syscalls_saved_total",
		"Syscalls avoided by multi-message batching (messages beyond the first in each recvmmsg/sendmmsg).")
	metricBatchSize = metrics.Default().Histogram("prognosis_transport_batch_size",
		"Datagrams per non-empty batch operation.", []float64{1, 2, 4, 8, 16, 32})
)

// measuredConn decorates a BatchConn with metrics-plane accounting.
type measuredConn struct {
	inner BatchConn
}

func (m *measuredConn) Batched() bool { return m.inner.Batched() }

func (m *measuredConn) record(read bool, n int) {
	if n <= 0 {
		return
	}
	if read {
		metricReadBatches.Inc()
		metricReadMessages.Add(int64(n))
	} else {
		metricWriteBatches.Inc()
		metricWriteMessages.Add(int64(n))
	}
	if m.inner.Batched() && n > 1 {
		// One multi-message syscall moved n datagrams; the per-packet
		// path would have paid n.
		metricSyscallsSaved.Add(int64(n - 1))
	}
	metricBatchSize.Observe(float64(n))
}

func (m *measuredConn) ReadBatch(ms []Message) (int, error) {
	n, err := m.inner.ReadBatch(ms)
	m.record(true, n)
	return n, err
}

func (m *measuredConn) TryReadBatch(ms []Message) (int, error) {
	n, err := m.inner.TryReadBatch(ms)
	m.record(true, n)
	return n, err
}

func (m *measuredConn) WriteBatch(ms []Message) (int, error) {
	n, err := m.inner.WriteBatch(ms)
	m.record(false, n)
	return n, err
}
