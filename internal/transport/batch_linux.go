//go:build linux && amd64

package transport

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// sysSENDMMSG is the sendmmsg syscall number on linux/amd64. The frozen
// stdlib syscall table predates sendmmsg (recvmmsg made it in, sendmmsg
// did not), so the number is spelled out here.
const sysSENDMMSG = 307

// mmsghdr mirrors struct mmsghdr on linux/amd64: a msghdr plus the
// per-message byte count the kernel fills in, padded to 8-byte alignment.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// v4InV6Prefix is the IPv4-in-IPv6 mapped-address prefix; net.IP.String
// prints such addresses in dotted-quad form, matching what the plain net
// read path reports.
var v4InV6Prefix = [12]byte{10: 0xff, 11: 0xff}

// mmsgConn implements BatchConn with recvmmsg/sendmmsg over the socket's
// RawConn, so one syscall moves a whole burst of datagrams. Reads and
// writes keep separate scratch state and may run concurrently; each
// direction serialises its own callers.
type mmsgConn struct {
	conn      *net.UDPConn
	rc        syscall.RawConn
	connected bool

	rmu    sync.Mutex
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames [][syscall.SizeofSockaddrAny]byte

	wmu    sync.Mutex
	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames [][syscall.SizeofSockaddrAny]byte
}

func newBatchImpl(conn *net.UDPConn, connected bool) BatchConn {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &simpleConn{conn: conn, connected: connected}
	}
	return &mmsgConn{conn: conn, rc: rc, connected: connected}
}

func (c *mmsgConn) Batched() bool { return true }

func (c *mmsgConn) ReadBatch(ms []Message) (int, error)    { return c.readBatch(ms, false) }
func (c *mmsgConn) TryReadBatch(ms []Message) (int, error) { return c.readBatch(ms, true) }

func (c *mmsgConn) readBatch(ms []Message, dontwait bool) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rhdrs) < len(ms) {
		c.rhdrs = append(c.rhdrs, mmsghdr{})
		c.riovs = append(c.riovs, syscall.Iovec{})
		c.rnames = append(c.rnames, [syscall.SizeofSockaddrAny]byte{})
	}
	for i := range ms {
		c.riovs[i].Base = &ms[i].Buf[0]
		c.riovs[i].Len = uint64(len(ms[i].Buf))
		h := &c.rhdrs[i].Hdr
		h.Name = &c.rnames[i][0]
		h.Namelen = syscall.SizeofSockaddrAny
		h.Iov = &c.riovs[i]
		h.Iovlen = 1
		c.rhdrs[i].Len = 0
	}
	var count int
	var opErr error
	err := c.rc.Read(func(fd uintptr) bool {
		for {
			// MSG_DONTWAIT always: on EAGAIN we either report "empty"
			// (try mode) or park on the runtime poller, which honours
			// the read deadline set on the net.UDPConn.
			r, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(len(ms)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				count = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				if dontwait {
					count = 0
					return true
				}
				return false
			default:
				opErr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < count; i++ {
		ms[i].N = int(c.rhdrs[i].Len)
		fillAddr(&ms[i], &c.rnames[i])
	}
	return count, nil
}

// fillAddr decodes the raw sockaddr into m.Addr, reusing the existing
// UDPAddr and its 16-byte IP backing so steady-state reads do not allocate.
func fillAddr(m *Message, raw *[syscall.SizeofSockaddrAny]byte) {
	family := uint16(raw[0]) | uint16(raw[1])<<8
	if m.Addr == nil || cap(m.Addr.IP) < 16 {
		m.Addr = &net.UDPAddr{IP: make(net.IP, 16)}
	}
	a := m.Addr
	a.Zone = ""
	a.Port = int(raw[2])<<8 | int(raw[3])
	a.IP = a.IP[:16]
	switch family {
	case syscall.AF_INET:
		copy(a.IP, v4InV6Prefix[:])
		copy(a.IP[12:16], raw[4:8])
	case syscall.AF_INET6:
		copy(a.IP, raw[8:24])
	default:
		m.Addr = nil
	}
}

// putAddr encodes a into the raw sockaddr buffer, returning the sockaddr
// length (0 means "no address": connected-socket send).
func putAddr(raw *[syscall.SizeofSockaddrAny]byte, a *net.UDPAddr) uint32 {
	if a == nil {
		return 0
	}
	if ip4 := a.IP.To4(); ip4 != nil {
		raw[0], raw[1] = byte(syscall.AF_INET), 0
		raw[2], raw[3] = byte(a.Port>>8), byte(a.Port)
		copy(raw[4:8], ip4)
		return syscall.SizeofSockaddrInet4
	}
	if ip16 := a.IP.To16(); ip16 != nil {
		raw[0], raw[1] = byte(syscall.AF_INET6), 0
		raw[2], raw[3] = byte(a.Port>>8), byte(a.Port)
		for i := 4; i < 8; i++ {
			raw[i] = 0 // flowinfo
		}
		copy(raw[8:24], ip16)
		return syscall.SizeofSockaddrInet6
	}
	return 0
}

func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for len(c.whdrs) < len(ms) {
		c.whdrs = append(c.whdrs, mmsghdr{})
		c.wiovs = append(c.wiovs, syscall.Iovec{})
		c.wnames = append(c.wnames, [syscall.SizeofSockaddrAny]byte{})
	}
	for i := range ms {
		c.wiovs[i].Base = &ms[i].Buf[0]
		c.wiovs[i].Len = uint64(ms[i].N)
		h := &c.whdrs[i].Hdr
		h.Name = nil
		h.Namelen = 0
		if !c.connected {
			if nl := putAddr(&c.wnames[i], ms[i].Addr); nl != 0 {
				h.Name = &c.wnames[i][0]
				h.Namelen = nl
			}
		}
		h.Iov = &c.wiovs[i]
		h.Iovlen = 1
	}
	sent := 0
	var opErr error
	err := c.rc.Write(func(fd uintptr) bool {
		for sent < len(ms) {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&c.whdrs[sent])), uintptr(len(ms)-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				sent += int(r)
			case syscall.EINTR:
			case syscall.EAGAIN:
				return false
			default:
				opErr = errno
				return true
			}
		}
		return true
	})
	if err != nil {
		return sent, err
	}
	return sent, opErr
}
