//go:build !(linux && amd64)

package transport

import "net"

// newBatchImpl falls back to one-datagram-per-syscall on platforms without
// a wired-up recvmmsg/sendmmsg implementation.
func newBatchImpl(conn *net.UDPConn, connected bool) BatchConn {
	return &simpleConn{conn: conn, connected: connected}
}
