package transport

import (
	"net"
	"time"
)

// Message is one datagram slot in a batched send or receive. Buf is the
// backing buffer (the caller allocates it once and reuses it across calls),
// N is the number of valid bytes, and Addr is the peer address — filled in
// on receive, used as the destination on send (ignored on connected
// sockets). Batch implementations reuse the Addr value across calls, so
// callers that retain an address past the next ReadBatch must copy it.
type Message struct {
	Buf  []byte
	N    int
	Addr *net.UDPAddr
}

// BatchConn sends and receives UDP datagrams in batches. On linux/amd64 it
// is backed by recvmmsg/sendmmsg — one syscall moves a whole burst — and
// everywhere else by a plain-syscall fallback with the same contract, so
// callers never branch on platform.
type BatchConn interface {
	// ReadBatch fills up to len(ms) messages, blocking (honouring the
	// socket's read deadline) until at least one datagram arrives. It
	// returns the number of messages filled.
	ReadBatch(ms []Message) (int, error)
	// TryReadBatch is like ReadBatch but does not wait for data: it
	// returns 0, nil when nothing is queued. Used to drain stale
	// datagrams before a fresh exchange. It may disturb the socket's
	// read deadline; callers should set their deadline afterwards.
	TryReadBatch(ms []Message) (int, error)
	// WriteBatch sends ms[i].Buf[:ms[i].N] for every message, returning
	// the number sent. Connected sockets ignore Addr.
	WriteBatch(ms []Message) (int, error)
	// Batched reports whether multi-message syscalls are in use (false
	// means the one-datagram-per-syscall fallback).
	Batched() bool
}

// NewBatchConn wraps conn in the best BatchConn available on this
// platform. Connected sockets (DialUDP) send without addresses; unconnected
// ones (ListenUDP) use Message.Addr.
func NewBatchConn(conn *net.UDPConn) BatchConn {
	return &measuredConn{inner: newBatchImpl(conn, conn.RemoteAddr() != nil)}
}

// tryPoll is how long the fallback's TryReadBatch waits for queued data.
// The net package offers no non-blocking read, so "try" is approximated by
// a short deadline; an expired deadline would skip the read entirely.
const tryPoll = 200 * time.Microsecond

// simpleConn is the plain-syscall fallback: one datagram per Read/Write
// call through the portable net API.
type simpleConn struct {
	conn      *net.UDPConn
	connected bool
}

func (c *simpleConn) Batched() bool { return false }

func (c *simpleConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := c.conn.ReadFromUDP(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N, ms[0].Addr = n, addr
	return 1, nil
}

func (c *simpleConn) TryReadBatch(ms []Message) (int, error) {
	count := 0
	for count < len(ms) {
		c.conn.SetReadDeadline(time.Now().Add(tryPoll))
		n, addr, err := c.conn.ReadFromUDP(ms[count].Buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return count, nil
			}
			return count, err
		}
		ms[count].N, ms[count].Addr = n, addr
		count++
	}
	return count, nil
}

func (c *simpleConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		var err error
		if c.connected || ms[i].Addr == nil {
			_, err = c.conn.Write(ms[i].Buf[:ms[i].N])
		} else {
			_, err = c.conn.WriteToUDP(ms[i].Buf[:ms[i].N], ms[i].Addr)
		}
		if err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
