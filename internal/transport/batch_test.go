package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/tcpsim"
)

func udpPair(t *testing.T) (srv *net.UDPConn, cli *net.UDPConn) {
	t.Helper()
	srvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	cliConn, err := net.DialUDP("udp", nil, srvConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		srvConn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srvConn.Close(); cliConn.Close() })
	return srvConn, cliConn
}

func ring(n int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = make([]byte, maxDatagram)
	}
	return ms
}

// TestBatchConnRoundTrip pushes a burst client→server and echoes it back,
// exercising WriteBatch on both connected and unconnected sockets and the
// address plumbing of ReadBatch.
func TestBatchConnRoundTrip(t *testing.T) {
	srvConn, cliConn := udpPair(t)
	srv, cli := NewBatchConn(srvConn), NewBatchConn(cliConn)

	const burst = 10
	wms := make([]Message, burst)
	for i := range wms {
		wms[i].Buf = []byte(fmt.Sprintf("dgram-%02d", i))
		wms[i].N = len(wms[i].Buf)
	}
	if n, err := cli.WriteBatch(wms); err != nil || n != burst {
		t.Fatalf("client WriteBatch = %d, %v", n, err)
	}

	rms := ring(burst)
	got := 0
	srvConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got < burst {
		n, err := srv.ReadBatch(rms[got:])
		if err != nil {
			t.Fatalf("server ReadBatch after %d: %v", got, err)
		}
		for i := got; i < got+n; i++ {
			if rms[i].Addr == nil {
				t.Fatalf("message %d has no source address", i)
			}
			want := fmt.Sprintf("dgram-%02d", i)
			if string(rms[i].Buf[:rms[i].N]) != want {
				t.Fatalf("message %d = %q, want %q", i, rms[i].Buf[:rms[i].N], want)
			}
		}
		got += n
	}

	// Echo back through the unconnected socket using the captured addrs.
	for i := 0; i < burst; i++ {
		rms[i].Buf = rms[i].Buf[:rms[i].N]
	}
	if n, err := srv.WriteBatch(rms[:burst]); err != nil || n != burst {
		t.Fatalf("server WriteBatch = %d, %v", n, err)
	}
	back := ring(burst)
	got = 0
	cliConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got < burst {
		n, err := cli.ReadBatch(back[got:])
		if err != nil {
			t.Fatalf("client ReadBatch after %d: %v", got, err)
		}
		got += n
	}
	for i := 0; i < burst; i++ {
		want := fmt.Sprintf("dgram-%02d", i)
		if string(back[i].Buf[:back[i].N]) != want {
			t.Fatalf("echo %d = %q, want %q", i, back[i].Buf[:back[i].N], want)
		}
	}
}

// TestBatchConnTryReadEmpty checks the drain path reports an empty queue
// without blocking for long.
func TestBatchConnTryReadEmpty(t *testing.T) {
	srvConn, _ := udpPair(t)
	srv := NewBatchConn(srvConn)
	start := time.Now()
	n, err := srv.TryReadBatch(ring(4))
	if err != nil || n != 0 {
		t.Fatalf("TryReadBatch on empty socket = %d, %v", n, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("TryReadBatch blocked for %v", d)
	}
}

// TestBatchConnDeadline checks a blocking ReadBatch honours the socket
// read deadline.
func TestBatchConnDeadline(t *testing.T) {
	srvConn, _ := udpPair(t)
	srv := NewBatchConn(srvConn)
	srvConn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, err := srv.ReadBatch(ring(1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("ReadBatch past deadline = %v, want timeout", err)
	}
}

// TestQUICOverUDPLegacyPath runs the handshake over the preserved
// per-packet path, which serves as the benchmark baseline.
func TestQUICOverUDPLegacyPath(t *testing.T) {
	srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileGoogle, Seed: 7})
	hosted, err := ListenQUICMode(Loopback(), srv, PathLegacy)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()
	tr := NewQUICClientTransportMode(hosted.Addr(), PathLegacy)
	defer tr.Close()
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)

	srv.Reset()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	out1, err := cli.Step(quicsim.SymInitialCrypto)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := cli.Step(quicsim.SymHandshakeC)
	if err != nil {
		t.Fatal(err)
	}
	truth := quicsim.GroundTruth(quicsim.ProfileGoogle)
	want, _ := truth.Run([]string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC})
	if out1 != want[0] || out2 != want[1] {
		t.Fatalf("legacy UDP path diverges:\n got %q / %q\nwant %q / %q", out1, out2, want[0], want[1])
	}
}

// TestTCPOverUDPLegacyPath exchanges segments over the per-packet path.
func TestTCPOverUDPLegacyPath(t *testing.T) {
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	srv := tcpsim.NewServer(tcpsim.Config{Port: 44344, Seed: 5})
	hosted, err := ListenTCPMode(Loopback(), srv, src, dst, PathLegacy)
	if err != nil {
		t.Fatal(err)
	}
	defer hosted.Close()
	tr, closer, err := NewTCPClientTransportMode(hosted.Addr(), PathLegacy)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	cli := reference.NewTCPClient(reference.TCPClientConfig{
		Seed: 3, DstPort: 44344, SrcAddr: src, DstAddr: dst,
	}, tr)

	srv.Reset()
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	out, err := cli.Step("SYN(?,?,0)")
	if err != nil || out != "SYN+ACK(?,?,0)" {
		t.Fatalf("SYN over legacy UDP got %q, %v", out, err)
	}
}

// TestSrttTrackerWaits pins the adaptive-wait clamps: cold start falls back
// to the legacy quiet window, fast loopback samples hit the floors, and the
// ceiling never exceeds quiet.
func TestSrttTrackerWaits(t *testing.T) {
	var s srttTracker
	if s.firstWait() != quiet || s.quietWait() != quiet {
		t.Fatalf("cold tracker waits = %v/%v, want %v", s.firstWait(), s.quietWait(), quiet)
	}
	s.observe(100 * time.Microsecond)
	if got := s.firstWait(); got != 5*time.Millisecond {
		t.Fatalf("firstWait after 100µs sample = %v, want 5ms floor", got)
	}
	if got := s.quietWait(); got != time.Millisecond {
		t.Fatalf("quietWait after 100µs sample = %v, want 1ms floor", got)
	}
	for i := 0; i < 64; i++ {
		s.observe(time.Second) // pathological samples must not exceed the ceiling
	}
	if s.firstWait() != quiet || s.quietWait() != quiet {
		t.Fatalf("waits after huge samples = %v/%v, want %v ceiling", s.firstWait(), s.quietWait(), quiet)
	}
	s = srttTracker{}
	s.observe(1 * time.Millisecond)
	if got := s.firstWait(); got != 16*time.Millisecond {
		t.Fatalf("firstWait after 1ms sample = %v, want 16ms", got)
	}
	if got := s.quietWait(); got != 8*time.Millisecond {
		t.Fatalf("quietWait after 1ms sample = %v, want 8ms", got)
	}
}
