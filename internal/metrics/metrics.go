// Package metrics is the unified metrics plane: a lightweight registry
// of counters, gauges, and histograms with atomic hot-path updates and
// Prometheus text exposition. It replaces the scattered per-subsystem
// snapshot structs as the scrapeable observability surface — the learn
// pool, the voting guard, the batched transport, the netem links, and
// the prognosisd job manager all publish into the process-wide Default
// registry, and `GET /metrics` on prognosisd renders it in the
// Prometheus text format (docs/MONITORING.md lists every family).
//
// The package is dependency-free by design (it sits below learn, core,
// transport, and netem in the import graph) and the hot-path cost of an
// update is one atomic add — cheap enough for the membership-query inner
// loop, which already pays several atomic counter updates per query.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative adds are clamped to keep the
// counter monotonic, since a decreasing counter breaks every rate()
// computed over it).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; contended gauges are not a
// hot-path concern here).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets, with a running
// sum and count, matching the Prometheus histogram exposition
// (`_bucket{le=...}`, `_sum`, `_count`). Observations are lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, sorted ascending; +Inf is implicit
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// family is one registered metric family: a name, help text, a kind,
// and its children keyed by rendered label pairs.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   []float64
	// fn, when non-nil, is sampled at exposition time instead of reading
	// a stored child (gauge-func families only, no labels).
	fn func() float64
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every built-in subsystem
// publishes into, served by prognosisd's GET /metrics.
func Default() *Registry { return defaultRegistry }

// lookup returns the named family, creating it on first use. A name
// re-registered with a different kind or label set panics: that is a
// programming error (two subsystems fighting over one family name), not
// a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, labels: labels,
			counters: map[string]*Counter{},
			gauges:   map[string]*Gauge{},
			hists:    map[string]*Histogram{},
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %s re-registered as %s/%v (was %s/%v)",
			name, kind, labels, f.kind, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("metrics: %s re-registered with labels %v (was %v)",
				name, labels, f.labels))
		}
	}
	return f
}

// labelKey renders a label-value list into the exposition form
// `{k="v",...}` used both as the child map key and verbatim in output.
func labelKey(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter returns the unlabelled counter of the named family, creating
// the family on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil, nil)
}

// CounterWith returns the counter child of the named family for the
// given label values (labels declare the family's label names; every
// call must pass the same names).
func (r *Registry) CounterWith(name, help string, labels, values []string) *Counter {
	f := r.lookup(name, help, KindCounter, labels)
	key := labelKey(labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[key]
	if !ok {
		c = &Counter{}
		f.counters[key] = c
	}
	return c
}

// Gauge returns the unlabelled gauge of the named family.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil, nil)
}

// GaugeWith returns the gauge child for the given label values.
func (r *Registry) GaugeWith(name, help string, labels, values []string) *Gauge {
	f := r.lookup(name, help, KindGauge, labels)
	key := labelKey(labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gauges[key]
	if !ok {
		g = &Gauge{}
		f.gauges[key] = g
	}
	return g
}

// GaugeFunc registers a gauge family whose value is sampled by fn at
// exposition time — the bridge for subsystems that already maintain
// their own atomic counters. Re-registering replaces fn (the newest
// sampler wins, so a restarted subsystem re-binds cleanly).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram returns the unlabelled histogram of the named family with
// the given bucket upper bounds (+Inf implicit; bounds are fixed at
// first registration).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, nil, nil, bounds)
}

// HistogramWith returns the histogram child of the named family for the
// given label values. Every child shares the family's bucket bounds
// (fixed at first registration); exposition renders `le` as the last
// label inside each child's brace set, per the Prometheus text format.
func (r *Registry) HistogramWith(name, help string, labels, values []string, bounds []float64) *Histogram {
	f := r.lookup(name, help, KindHistogram, labels)
	key := labelKey(labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bounds == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		f.bounds = b
	}
	h, ok := f.hists[key]
	if !ok {
		h = newHistogram(f.bounds)
		f.hists[key] = h
	}
	return h
}

// histKey splices the le label into a child's rendered label key:
// `{worker="w1"}` + le 0.5 → `{worker="w1",le="0.5"}`, and the
// unlabelled key "" → `{le="0.5"}`.
func histKey(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), families and children sorted by name so the
// output is stable scrape to scrape.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		lines := make([]string, 0, len(f.counters)+len(f.gauges)+8)
		switch f.kind {
		case KindCounter:
			for key, c := range f.counters {
				lines = append(lines, fmt.Sprintf("%s%s %d", f.name, key, c.Value()))
			}
		case KindGauge:
			if f.fn != nil {
				lines = append(lines, fmt.Sprintf("%s %s", f.name, formatFloat(f.fn())))
			}
			for key, g := range f.gauges {
				lines = append(lines, fmt.Sprintf("%s%s %s", f.name, key, formatFloat(g.Value())))
			}
		case KindHistogram:
			keys := make([]string, 0, len(f.hists))
			for key := range f.hists {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				h := f.hists[key]
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name, histKey(key, formatFloat(bound)), cum))
				}
				cum += h.inf.Load()
				lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name, histKey(key, "+Inf"), cum))
				lines = append(lines, fmt.Sprintf("%s_sum%s %s", f.name, key, formatFloat(h.Sum())))
				lines = append(lines, fmt.Sprintf("%s_count%s %d", f.name, key, h.Count()))
			}
		}
		f.mu.Unlock()
		if f.kind != KindHistogram {
			sort.Strings(lines)
		}
		for _, line := range lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
