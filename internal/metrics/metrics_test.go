package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	c.Inc()
	c.Add(4)
	c.Add(-3) // clamped: counters stay monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.CounterWith("test_jobs_total", "jobs by state", []string{"state"}, []string{"done"}).Add(2)
	r.CounterWith("test_jobs_total", "jobs by state", []string{"state"}, []string{"failed"}).Inc()
	g := r.Gauge("test_depth", "queue depth")
	g.Set(3)
	g.Inc()
	g.Dec()
	r.GaugeFunc("test_sampled", "sampled at scrape", func() float64 { return 42.5 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total operations",
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		`test_jobs_total{state="done"} 2`,
		`test_jobs_total{state="failed"} 1`,
		"# TYPE test_depth gauge",
		"test_depth 3",
		"test_sampled 42.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render sorted, so scrapes are byte-stable.
	var b2 strings.Builder
	r.WriteText(&b2)
	if out != b2.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_batch_size", "messages per batch", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 1, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`test_batch_size_bucket{le="1"} 2`,
		`test_batch_size_bucket{le="2"} 2`,
		`test_batch_size_bucket{le="4"} 3`,
		`test_batch_size_bucket{le="8"} 4`,
		`test_batch_size_bucket{le="+Inf"} 5`,
		"test_batch_size_sum 110",
		"test_batch_size_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramWith: labeled histogram children render with le spliced
// into each child's label braces, share the family's bounds, and stay
// independent per label value.
func TestHistogramWith(t *testing.T) {
	r := NewRegistry()
	labels := []string{"worker"}
	h1 := r.HistogramWith("test_beat_age", "heartbeat age", labels, []string{"w1"}, []float64{0.5, 2})
	h2 := r.HistogramWith("test_beat_age", "heartbeat age", labels, []string{"w2"}, []float64{0.5, 2})
	if h1 == h2 {
		t.Fatal("distinct label values share a child")
	}
	if again := r.HistogramWith("test_beat_age", "heartbeat age", labels, []string{"w1"}, nil); again != h1 {
		t.Fatal("same label value returned a new child")
	}
	h1.Observe(0.1)
	h1.Observe(1)
	h2.Observe(10)
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`test_beat_age_bucket{worker="w1",le="0.5"} 1`,
		`test_beat_age_bucket{worker="w1",le="2"} 2`,
		`test_beat_age_bucket{worker="w1",le="+Inf"} 2`,
		`test_beat_age_count{worker="w1"} 2`,
		`test_beat_age_bucket{worker="w2",le="2"} 0`,
		`test_beat_age_bucket{worker="w2",le="+Inf"} 1`,
		`test_beat_age_sum{worker="w2"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdates hammers one family from many goroutines; run
// with -race this is the hot-path safety contract.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "hot path")
	h := r.Histogram("test_hot_obs", "hot observations", []float64{10, 100})
	g := r.Gauge("test_hot_gauge", "hot gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 200))
				g.Add(1)
				// Same-name lookups from the hot path must return the same child.
				if r.Counter("test_hot_total", "hot path") != c {
					t.Error("lookup returned a different counter")
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_served_total", "served").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(b.String(), "test_served_total 1") {
		t.Fatalf("handler output:\n%s", b.String())
	}
}

func TestMismatchedReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_kind_clash", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_kind_clash", "now a gauge")
}
