package quicwire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTripAll(t *testing.T) {
	frames := []Frame{
		{Type: FramePing},
		{Type: FrameHandshakeDone},
		{Type: FrameAck, AckLargest: 9, AckDelay: 3, AckRange: 2},
		{Type: FrameResetStream, StreamID: 4, ErrorCode: 7, FinalSize: 100},
		{Type: FrameStopSending, StreamID: 8, ErrorCode: 2},
		{Type: FrameCrypto, Offset: 10, Data: []byte("hello")},
		{Type: FrameNewToken, Token: []byte{1, 2, 3}},
		{Type: FrameStream, StreamID: 0, Offset: 5, Data: []byte("data"), Fin: true},
		{Type: FrameStream, StreamID: 4, Offset: 0, Data: []byte("x")},
		{Type: FrameMaxData, Limit: 65536},
		{Type: FrameMaxStreamData, StreamID: 4, Limit: 1024},
		{Type: FrameMaxStreams, Limit: 100},
		{Type: FrameDataBlocked, Limit: 500},
		{Type: FrameStreamDataBlocked, StreamID: 4, Limit: 0},
		{Type: FrameStreamsBlocked, Limit: 1},
		{Type: FrameNewConnectionID, SeqNumber: 1, RetirePrior: 0,
			ConnectionID: []byte{9, 9, 9, 9}, ResetToken: [16]byte{1}},
		{Type: FrameRetireConnectionID, SeqNumber: 3},
		{Type: FramePathChallenge, PathData: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FramePathResponse, PathData: [8]byte{8, 7, 6, 5, 4, 3, 2, 1}},
		{Type: FrameConnectionClose, ErrorCode: 0x0a, CloseFrame: 0x1e, ReasonPhrase: "protocol violation"},
		{Type: FrameConnectionClose, ErrorCode: 1, AppClose: true, ReasonPhrase: "bye"},
	}
	for _, f := range frames {
		buf := AppendFrame(nil, f)
		got, err := ParseFrames(buf)
		if err != nil {
			t.Fatalf("%v: %v", f.Type, err)
		}
		if len(got) != 1 {
			t.Fatalf("%v: parsed %d frames", f.Type, len(got))
		}
		if !reflect.DeepEqual(got[0], f) {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", f.Type, got[0], f)
		}
	}
}

func TestParseFramesSequence(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, Frame{Type: FrameAck, AckLargest: 3})
	buf = append(buf, 0, 0, 0) // PADDING frames
	buf = AppendFrame(buf, Frame{Type: FrameCrypto, Data: []byte("ch")})
	frames, err := ParseFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || frames[0].Type != FrameAck || frames[1].Type != FrameCrypto {
		t.Fatalf("frames = %v", frames)
	}
}

func TestParseFramesTruncated(t *testing.T) {
	buf := AppendFrame(nil, Frame{Type: FrameCrypto, Data: []byte("hello")})
	if _, err := ParseFrames(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestParseFramesUnknownType(t *testing.T) {
	if _, err := ParseFrames([]byte{0x3f}); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}

func TestFrameNames(t *testing.T) {
	frames := []Frame{
		{Type: FrameStream}, {Type: FrameAck}, {Type: FrameStream}, {Type: FrameMaxData},
	}
	if got := FrameNames(frames); got != "ACK,MAX_DATA,STREAM" {
		t.Fatalf("FrameNames = %q", got)
	}
	if got := FrameNames(nil); got != "" {
		t.Fatalf("FrameNames(nil) = %q", got)
	}
}

func TestLongHeaderRoundTrip(t *testing.T) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12}
	body := make([]byte, 32) // sealed payload incl. tag
	buf, pnOffset := AppendLongHeader(nil, PacketInitial, dcid, scid, []byte("tok"), 42, len(body))
	buf = append(buf, body...)
	h, err := ParseHeader(buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != PacketInitial || !bytes.Equal(h.DCID, dcid) || !bytes.Equal(h.SCID, scid) {
		t.Fatalf("header = %+v", h)
	}
	if !bytes.Equal(h.Token, []byte("tok")) {
		t.Fatalf("token = %q", h.Token)
	}
	if h.PNOffset != pnOffset {
		t.Fatalf("pnOffset = %d, want %d", h.PNOffset, pnOffset)
	}
	if h.PayloadEnd != len(buf) {
		t.Fatalf("payloadEnd = %d, want %d", h.PayloadEnd, len(buf))
	}
	pn, err := DecodePacketNumber(buf, h.PNOffset)
	if err != nil || pn != 42 {
		t.Fatalf("pn = %d, %v", pn, err)
	}
}

func TestHandshakeHeaderNoToken(t *testing.T) {
	buf, _ := AppendLongHeader(nil, PacketHandshake, []byte{1}, []byte{2}, nil, 7, 20)
	buf = append(buf, make([]byte, 20)...)
	h, err := ParseHeader(buf, 1)
	if err != nil || h.Type != PacketHandshake {
		t.Fatalf("h=%+v err=%v", h, err)
	}
	if len(h.Token) != 0 {
		t.Fatal("handshake packets carry no token")
	}
}

func TestShortHeaderRoundTrip(t *testing.T) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	buf, pnOffset := AppendShortHeader(nil, dcid, 1234)
	buf = append(buf, make([]byte, 24)...)
	h, err := ParseHeader(buf, len(dcid))
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != PacketShort || !bytes.Equal(h.DCID, dcid) {
		t.Fatalf("header = %+v", h)
	}
	pn, err := DecodePacketNumber(buf, pnOffset)
	if err != nil || pn != 1234 {
		t.Fatalf("pn = %d, %v", pn, err)
	}
}

func TestCoalescedDatagram(t *testing.T) {
	buf, _ := AppendLongHeader(nil, PacketInitial, []byte{1}, []byte{2}, nil, 0, 20)
	buf = append(buf, make([]byte, 20)...)
	firstEnd := len(buf)
	buf, _ = AppendLongHeader(buf, PacketHandshake, []byte{1}, []byte{2}, nil, 0, 24)
	buf = append(buf, make([]byte, 24)...)

	h1, err := ParseHeader(buf, 1)
	if err != nil || h1.Type != PacketInitial {
		t.Fatalf("h1=%+v err=%v", h1, err)
	}
	if h1.PayloadEnd != firstEnd {
		t.Fatalf("first packet end = %d, want %d", h1.PayloadEnd, firstEnd)
	}
	h2, err := ParseHeader(buf[h1.PayloadEnd:], 1)
	if err != nil || h2.Type != PacketHandshake {
		t.Fatalf("h2=%+v err=%v", h2, err)
	}
}

func TestRetryHeader(t *testing.T) {
	buf := AppendRetry(nil, []byte{1, 2}, []byte{3, 4}, []byte("retry-token-and-tag"))
	h, err := ParseHeader(buf, 2)
	if err != nil || h.Type != PacketRetry {
		t.Fatalf("h=%+v err=%v", h, err)
	}
	if string(h.Token) != "retry-token-and-tag" {
		t.Fatalf("token = %q", h.Token)
	}
}

func TestVersionNegotiationHeader(t *testing.T) {
	buf := AppendVersionNegotiation(nil, []byte{1}, []byte{2}, []uint32{Version1, 0xff00001d})
	h, err := ParseHeader(buf, 1)
	if err != nil || h.Type != PacketVersionNegotiation {
		t.Fatalf("h=%+v err=%v", h, err)
	}
	if len(h.Token) != 8 {
		t.Fatalf("version list length = %d", len(h.Token))
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader(nil, 8); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := ParseHeader([]byte{0x40, 1, 2}, 8); err == nil {
		t.Fatal("short short-header accepted")
	}
	bad := []byte{0xC0, 0xde, 0xad, 0xbe, 0xef, 0} // unknown version, zero CIDs
	if _, err := ParseHeader(append(bad, 0), 8); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestPropertyStreamFrameRoundTrip(t *testing.T) {
	f := func(id uint32, off uint32, data []byte, fin bool) bool {
		fr := Frame{Type: FrameStream, StreamID: uint64(id), Offset: uint64(off), Data: data, Fin: fin}
		got, err := ParseFrames(AppendFrame(nil, fr))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.StreamID == fr.StreamID && g.Offset == fr.Offset &&
			g.Fin == fr.Fin && bytes.Equal(g.Data, fr.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
