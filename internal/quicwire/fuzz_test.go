package quicwire

import (
	"bytes"
	"reflect"
	"testing"
)

// goldenPayloads builds frame payloads shaped like the golden model's
// handshake traffic — the CRYPTO/ACK/STREAM mixes the learning queries
// actually put on the wire — to seed the fuzz corpora.
func goldenPayloads() [][]byte {
	clientHello := bytes.Repeat([]byte{0xc1}, 32)
	var payloads [][]byte

	// Initial flight: CRYPTO carrying the client random, padded.
	p := AppendFrame(nil, Frame{Type: FrameCrypto, Data: clientHello})
	p = append(p, make([]byte, 16)...) // PADDING run
	payloads = append(payloads, p)

	// Handshake flight: ACK + CRYPTO at an offset.
	p = AppendFrame(nil, Frame{Type: FrameAck, AckLargest: 3, AckDelay: 25, AckRange: 3})
	p = AppendFrame(p, Frame{Type: FrameCrypto, Offset: 123, Data: []byte("finished")})
	payloads = append(payloads, p)

	// 1-RTT flight: STREAM with FIN, flow control, HANDSHAKE_DONE.
	p = AppendFrame(nil, Frame{Type: FrameStream, StreamID: 0, Offset: 64, Data: []byte("GET /\r\n"), Fin: true})
	p = AppendFrame(p, Frame{Type: FrameMaxStreamData, StreamID: 0, Limit: 1 << 20})
	p = AppendFrame(p, Frame{Type: FrameMaxData, Limit: 1 << 21})
	p = AppendFrame(p, Frame{Type: FrameHandshakeDone})
	payloads = append(payloads, p)

	// Migration / teardown shapes.
	p = AppendFrame(nil, Frame{Type: FrameNewConnectionID, SeqNumber: 1, ConnectionID: []byte{1, 2, 3, 4, 5, 6, 7, 8}, ResetToken: [16]byte{9: 0xaa}})
	p = AppendFrame(p, Frame{Type: FramePathChallenge, PathData: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}})
	p = AppendFrame(p, Frame{Type: FrameConnectionClose, ErrorCode: 0x0a, CloseFrame: 0x06, ReasonPhrase: "tls"})
	payloads = append(payloads, p)

	p = AppendFrame(nil, Frame{Type: FrameNewToken, Token: bytes.Repeat([]byte{0x7f}, 24)})
	p = AppendFrame(p, Frame{Type: FrameResetStream, StreamID: 4, ErrorCode: 1, FinalSize: 99})
	p = AppendFrame(p, Frame{Type: FrameStopSending, StreamID: 4, ErrorCode: 1})
	p = AppendFrame(p, Frame{Type: FrameRetireConnectionID, SeqNumber: 0})
	payloads = append(payloads, p)
	return payloads
}

// FuzzDecodeEncode: ParseFrames must never panic, and any payload it
// accepts must survive a re-encode/re-parse round trip with identical
// logical frames (byte identity is not expected — PADDING drops, ACK ECN
// variants canonicalise).
func FuzzDecodeEncode(f *testing.F) {
	for _, p := range goldenPayloads() {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00})                            // truncated ACK
	f.Add([]byte{0x18, 0x00, 0x00, 0xff})                // NEW_CONNECTION_ID with absurd CID length
	f.Add([]byte{0x06, 0x00, 0xc0, 0, 0, 0, 0, 0, 0, 0}) // CRYPTO with 2^56-scale length
	f.Fuzz(func(t *testing.T, payload []byte) {
		frames, err := ParseFrames(payload)
		if err != nil {
			return
		}
		var enc []byte
		for _, fr := range frames {
			enc = AppendFrame(enc, fr)
		}
		again, err := ParseFrames(enc)
		if err != nil {
			t.Fatalf("re-encoded payload does not parse: %v\nframes: %+v", err, frames)
		}
		if len(frames) == 0 {
			frames = nil // payload of pure PADDING parses to an empty list
		}
		if !reflect.DeepEqual(frames, again) {
			t.Fatalf("round trip changed frames:\n first: %+v\nsecond: %+v", frames, again)
		}
		// The aliasing path must agree with the copying path.
		aliased, err := ParseFramesAppend(nil, payload)
		if err != nil {
			t.Fatalf("aliasing parse rejected what copying parse accepted: %v", err)
		}
		if !reflect.DeepEqual(frames, aliased) {
			t.Fatalf("aliasing parse diverged:\n  copy: %+v\n alias: %+v", frames, aliased)
		}
	})
}

// FuzzParseHeader: header parsing must never panic and must return
// internally consistent bounds on whatever it accepts.
func FuzzParseHeader(f *testing.F) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	long, _ := AppendLongHeader(nil, PacketInitial, dcid, scid, nil, 0, 32)
	f.Add(append(long, make([]byte, 36)...), 8)
	short, _ := AppendShortHeader(nil, dcid, 7)
	f.Add(append(short, make([]byte, 24)...), 8)
	f.Add(AppendRetry(nil, dcid, scid, []byte("token")), 8)
	f.Add(AppendVersionNegotiation(nil, dcid, scid, []uint32{Version1}), 8)
	f.Add([]byte{0x80}, 0)
	f.Fuzz(func(t *testing.T, data []byte, cidLen int) {
		if cidLen < 0 || cidLen > 20 {
			cidLen = cidLen & 0xf
		}
		hdr, err := ParseHeader(data, cidLen)
		if err != nil {
			return
		}
		if hdr.PayloadEnd < 0 || hdr.PayloadEnd > len(data) {
			t.Fatalf("PayloadEnd %d outside data of %d bytes", hdr.PayloadEnd, len(data))
		}
		if hdr.PNOffset < 0 || hdr.PNOffset > hdr.PayloadEnd {
			t.Fatalf("PNOffset %d outside packet of %d bytes", hdr.PNOffset, hdr.PayloadEnd)
		}
	})
}
