package quicwire

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// PacketType identifies one of the seven QUIC packet types of §6.2.1.
type PacketType int

// The seven packet types.
const (
	PacketInitial PacketType = iota
	PacketZeroRTT
	PacketHandshake
	PacketRetry
	PacketVersionNegotiation
	PacketShort
	PacketStatelessReset
)

var packetNames = map[PacketType]string{
	PacketInitial:            "INITIAL",
	PacketZeroRTT:            "0RTT",
	PacketHandshake:          "HANDSHAKE",
	PacketRetry:              "RETRY",
	PacketVersionNegotiation: "VERSION_NEGOTIATION",
	PacketShort:              "SHORT",
	PacketStatelessReset:     "RESET",
}

// String returns the packet type's name as used in abstract symbols.
func (t PacketType) String() string {
	if n, ok := packetNames[t]; ok {
		return n
	}
	return fmt.Sprintf("PACKET_%d", int(t))
}

// Version1 is the QUIC v1 version number.
const Version1 = 0x00000001

// VersionGrease is a reserved version of the 0x?a?a?a?a forcing pattern
// (RFC 9000 §15): no endpoint speaks it, so sending it in a long header
// is the canonical way to elicit a Version Negotiation packet.
const VersionGrease = 0x1a2a3a4a

// pnLen is the fixed packet-number encoding length this implementation
// emits (the maximum allowed, so reconstruction is trivial for the packet
// number volumes a learning session produces).
const pnLen = 4

// Header is the parsed plaintext part of a QUIC packet.
type Header struct {
	Type    PacketType
	Version uint32
	DCID    []byte
	SCID    []byte
	Token   []byte // Initial only

	// PNOffset is the index of the packet number within the packet bytes;
	// the AEAD associated data is the header through the packet number.
	PNOffset int
	// PayloadEnd is the index one past the protected payload (long headers
	// carry an explicit length; short headers extend to the datagram end).
	PayloadEnd int
	// FirstByte is the (unprotected) first byte, needed for header
	// protection.
	FirstByte byte
}

// Parse errors.
var (
	ErrShortPacket   = errors.New("quicwire: packet too short")
	ErrBadVersion    = errors.New("quicwire: unsupported version")
	ErrBadPacketType = errors.New("quicwire: malformed packet header")
)

// AppendLongHeader appends a long header for the given packet type and
// returns the extended buffer plus the packet-number offset. bodyLen is the
// length of the protected payload including the AEAD tag; the header's
// Length field covers pnLen+bodyLen.
func AppendLongHeader(b []byte, t PacketType, dcid, scid, token []byte, pn uint64, bodyLen int) (out []byte, pnOffset int) {
	return AppendLongHeaderVersion(b, t, Version1, dcid, scid, token, pn, bodyLen)
}

// AppendLongHeaderVersion is AppendLongHeader with an explicit version
// field. Non-v1 versions produce syntactically well-formed headers that a
// v1 receiver must reject (or answer with Version Negotiation) — the
// client uses this with VersionGrease to probe version handling.
func AppendLongHeaderVersion(b []byte, t PacketType, version uint32, dcid, scid, token []byte, pn uint64, bodyLen int) (out []byte, pnOffset int) {
	var typeBits byte
	switch t {
	case PacketInitial:
		typeBits = 0
	case PacketZeroRTT:
		typeBits = 1
	case PacketHandshake:
		typeBits = 2
	default:
		panic(fmt.Sprintf("quicwire: %v is not a numbered long packet type", t))
	}
	w := wire.WriterFor(b)
	w.Byte(0xC0 | typeBits<<4 | (pnLen - 1))
	w.Uint32(version)
	w.Byte(byte(len(dcid)))
	w.Write(dcid)
	w.Byte(byte(len(scid)))
	w.Write(scid)
	if t == PacketInitial {
		w.Varint(uint64(len(token)))
		w.Write(token)
	}
	w.Varint(uint64(pnLen + bodyLen))
	pnOffset = w.Len()
	w.Uint32(uint32(pn))
	return w.Bytes(), pnOffset
}

// AppendShortHeader appends a 1-RTT short header.
func AppendShortHeader(b []byte, dcid []byte, pn uint64) (out []byte, pnOffset int) {
	w := wire.WriterFor(b)
	w.Byte(0x40 | (pnLen - 1))
	w.Write(dcid)
	pnOffset = w.Len()
	w.Uint32(uint32(pn))
	return w.Bytes(), pnOffset
}

// AppendRetry appends a Retry packet (no packet number or payload
// protection; the integrity tag is the caller's responsibility and is
// simply appended after the token by higher layers).
func AppendRetry(b []byte, dcid, scid, token []byte) []byte {
	w := wire.WriterFor(b)
	w.Byte(0xC0 | 3<<4)
	w.Uint32(Version1)
	w.Byte(byte(len(dcid)))
	w.Write(dcid)
	w.Byte(byte(len(scid)))
	w.Write(scid)
	w.Write(token)
	return w.Bytes()
}

// AppendVersionNegotiation appends a Version Negotiation packet advertising
// the given versions.
func AppendVersionNegotiation(b []byte, dcid, scid []byte, versions []uint32) []byte {
	w := wire.WriterFor(b)
	w.Byte(0x80)
	w.Uint32(0)
	w.Byte(byte(len(dcid)))
	w.Write(dcid)
	w.Byte(byte(len(scid)))
	w.Write(scid)
	for _, v := range versions {
		w.Uint32(v)
	}
	return w.Bytes()
}

// ParseHeader parses the next packet header from data (which may contain a
// coalesced datagram; the caller slices data[hdr.PayloadEnd:] for the next
// packet). shortCIDLen is the connection-ID length the endpoint uses for
// short headers. For Retry packets Token holds the retry token plus
// integrity tag; for Version Negotiation Token holds the raw version list.
func ParseHeader(data []byte, shortCIDLen int) (Header, error) {
	if len(data) < 1 {
		return Header{}, ErrShortPacket
	}
	first := data[0]
	if first&0x80 == 0 {
		// Short header.
		if len(data) < 1+shortCIDLen+pnLen {
			return Header{}, ErrShortPacket
		}
		return Header{
			Type:       PacketShort,
			DCID:       data[1 : 1+shortCIDLen],
			PNOffset:   1 + shortCIDLen,
			PayloadEnd: len(data),
			FirstByte:  first,
		}, nil
	}
	r := wire.NewReader(data)
	r.Byte()
	version := r.Uint32()
	dcid := r.Bytes(int(r.Byte()))
	scid := r.Bytes(int(r.Byte()))
	if r.Err() != nil {
		return Header{}, ErrShortPacket
	}
	if version == 0 {
		return Header{
			Type: PacketVersionNegotiation, Version: version,
			DCID: dcid, SCID: scid,
			Token:      data[r.Offset():],
			PayloadEnd: len(data),
			FirstByte:  first,
		}, nil
	}
	if version != Version1 {
		return Header{}, ErrBadVersion
	}
	h := Header{Version: version, DCID: dcid, SCID: scid, FirstByte: first}
	switch (first >> 4) & 3 {
	case 0:
		h.Type = PacketInitial
		n := r.Varint()
		h.Token = r.Bytes(int(n))
	case 1:
		h.Type = PacketZeroRTT
	case 2:
		h.Type = PacketHandshake
	case 3:
		h.Type = PacketRetry
		h.Token = data[r.Offset():]
		h.PayloadEnd = len(data)
		if r.Err() != nil {
			return Header{}, ErrShortPacket
		}
		return h, nil
	}
	length := r.Varint()
	if r.Err() != nil {
		return Header{}, ErrShortPacket
	}
	h.PNOffset = r.Offset()
	end := h.PNOffset + int(length)
	if end > len(data) || length < pnLen {
		return Header{}, ErrShortPacket
	}
	h.PayloadEnd = end
	return h, nil
}

// LongHeaderCIDs extracts the version and connection IDs from a long
// header without judging the version — the invariant prefix of RFC 8999
// that every QUIC version shares. A server answering an unknown version
// with Version Negotiation parses only this much (ParseHeader has already
// rejected the packet with ErrBadVersion and kept nothing).
func LongHeaderCIDs(data []byte) (version uint32, dcid, scid []byte, err error) {
	if !IsLongHeader(data) {
		return 0, nil, nil, ErrBadPacketType
	}
	r := wire.NewReader(data)
	r.Byte()
	version = r.Uint32()
	dcid = r.Bytes(int(r.Byte()))
	scid = r.Bytes(int(r.Byte()))
	if r.Err() != nil {
		return 0, nil, nil, ErrShortPacket
	}
	return version, dcid, scid, nil
}

// DecodePacketNumber extracts the fixed-width packet number at PNOffset.
// Callers must have removed header protection first.
func DecodePacketNumber(data []byte, pnOffset int) (uint64, error) {
	if pnOffset+pnLen > len(data) {
		return 0, ErrShortPacket
	}
	v := uint64(data[pnOffset])<<24 | uint64(data[pnOffset+1])<<16 |
		uint64(data[pnOffset+2])<<8 | uint64(data[pnOffset+3])
	return v, nil
}

// IsLongHeader reports whether the datagram byte stream starts with a long
// header packet.
func IsLongHeader(data []byte) bool {
	return len(data) > 0 && data[0]&0x80 != 0
}
