package quicwire

import "testing"

// TestEncodeAllocs pins the steady-state encode hot path at zero
// allocations: frame and header appends into a buffer with capacity must
// reuse it, never grow or copy.
func TestEncodeAllocs(t *testing.T) {
	frames := []Frame{
		{Type: FrameAck, AckLargest: 9, AckDelay: 40, AckRange: 9},
		{Type: FrameCrypto, Offset: 64, Data: make([]byte, 128)},
		{Type: FrameStream, StreamID: 0, Offset: 256, Data: make([]byte, 64), Fin: true},
		{Type: FrameHandshakeDone},
	}
	buf := make([]byte, 0, 2048)
	if avg := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		for _, fr := range frames {
			buf = AppendFrame(buf, fr)
		}
	}); avg != 0 {
		t.Fatalf("AppendFrame steady state allocates %.1f allocs/op, want 0", avg)
	}

	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	hdr := make([]byte, 0, 2048)
	if avg := testing.AllocsPerRun(200, func() {
		hdr = hdr[:0]
		hdr, _ = AppendLongHeader(hdr, PacketInitial, dcid, dcid, nil, 7, len(buf))
		hdr, _ = AppendShortHeader(hdr, dcid, 8)
	}); avg != 0 {
		t.Fatalf("header append steady state allocates %.1f allocs/op, want 0", avg)
	}
}

// TestDecodeAllocs pins the steady-state decode hot path at zero
// allocations: ParseFramesAppend with a reused frame slice must alias the
// payload rather than copy, and ParseHeader takes no heap at all.
func TestDecodeAllocs(t *testing.T) {
	var payload []byte
	payload = AppendFrame(payload, Frame{Type: FrameAck, AckLargest: 3, AckDelay: 25, AckRange: 3})
	payload = AppendFrame(payload, Frame{Type: FrameCrypto, Offset: 0, Data: make([]byte, 96)})
	payload = AppendFrame(payload, Frame{Type: FrameStream, StreamID: 4, Data: make([]byte, 48), Fin: true})

	scratch := make([]Frame, 0, 8)
	if avg := testing.AllocsPerRun(200, func() {
		frames, err := ParseFramesAppend(scratch[:0], payload)
		if err != nil || len(frames) != 3 {
			t.Fatalf("parse: %v (%d frames)", err, len(frames))
		}
		scratch = frames[:0]
	}); avg != 0 {
		t.Fatalf("ParseFramesAppend steady state allocates %.1f allocs/op, want 0", avg)
	}

	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	pkt, _ := AppendShortHeader(make([]byte, 0, 64), dcid, 77)
	pkt = append(pkt, payload...)
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := ParseHeader(pkt, len(dcid)); err != nil {
			t.Fatalf("parse header: %v", err)
		}
	}); avg != 0 {
		t.Fatalf("ParseHeader allocates %.1f allocs/op, want 0", avg)
	}
}
