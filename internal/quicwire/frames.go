// Package quicwire implements the QUIC native alphabet: variable-length
// integer framing, long and short packet headers, the seven packet types
// and twenty frame types of the paper's §6.2.1, encoding/decoding, and
// datagram coalescing. Packet payload protection lives in quiccrypto.
package quicwire

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/wire"
)

// FrameType identifies a QUIC frame (RFC 9000 §19 wire values).
type FrameType uint64

// The twenty QUIC frame types.
const (
	FramePadding            FrameType = 0x00
	FramePing               FrameType = 0x01
	FrameAck                FrameType = 0x02
	FrameResetStream        FrameType = 0x04
	FrameStopSending        FrameType = 0x05
	FrameCrypto             FrameType = 0x06
	FrameNewToken           FrameType = 0x07
	FrameStream             FrameType = 0x08 // base type; 0x08-0x0f with OFF/LEN/FIN bits
	FrameMaxData            FrameType = 0x10
	FrameMaxStreamData      FrameType = 0x11
	FrameMaxStreams         FrameType = 0x12
	FrameDataBlocked        FrameType = 0x14
	FrameStreamDataBlocked  FrameType = 0x15
	FrameStreamsBlocked     FrameType = 0x16
	FrameNewConnectionID    FrameType = 0x18
	FrameRetireConnectionID FrameType = 0x19
	FramePathChallenge      FrameType = 0x1a
	FramePathResponse       FrameType = 0x1b
	FrameConnectionClose    FrameType = 0x1c
	FrameHandshakeDone      FrameType = 0x1e
)

var frameNames = map[FrameType]string{
	FramePadding:            "PADDING",
	FramePing:               "PING",
	FrameAck:                "ACK",
	FrameResetStream:        "RESET_STREAM",
	FrameStopSending:        "STOP_SENDING",
	FrameCrypto:             "CRYPTO",
	FrameNewToken:           "NEW_TOKEN",
	FrameStream:             "STREAM",
	FrameMaxData:            "MAX_DATA",
	FrameMaxStreamData:      "MAX_STREAM_DATA",
	FrameMaxStreams:         "MAX_STREAMS",
	FrameDataBlocked:        "DATA_BLOCKED",
	FrameStreamDataBlocked:  "STREAM_DATA_BLOCKED",
	FrameStreamsBlocked:     "STREAMS_BLOCKED",
	FrameNewConnectionID:    "NEW_CONNECTION_ID",
	FrameRetireConnectionID: "RETIRE_CONNECTION_ID",
	FramePathChallenge:      "PATH_CHALLENGE",
	FramePathResponse:       "PATH_RESPONSE",
	FrameConnectionClose:    "CONNECTION_CLOSE",
	FrameHandshakeDone:      "HANDSHAKE_DONE",
}

// String returns the frame type's specification name.
func (t FrameType) String() string {
	if n, ok := frameNames[t]; ok {
		return n
	}
	return fmt.Sprintf("FRAME_%#x", uint64(t))
}

// Frame is one QUIC frame. Fields are interpreted per Type; unused fields
// are zero. This flat representation keeps encode/decode and the adapter's
// abstraction function simple.
type Frame struct {
	Type FrameType

	// Ack fields.
	AckLargest uint64
	AckDelay   uint64
	AckRange   uint64 // first (only) range length

	// Crypto and Stream fields.
	Offset   uint64
	Data     []byte
	StreamID uint64
	Fin      bool

	// Flow control and limit fields (MAX_DATA, MAX_STREAM_DATA, MAX_STREAMS,
	// DATA_BLOCKED, STREAM_DATA_BLOCKED, STREAMS_BLOCKED, RESET_STREAM,
	// STOP_SENDING).
	Limit     uint64
	ErrorCode uint64
	FinalSize uint64

	// NEW_CONNECTION_ID / RETIRE_CONNECTION_ID fields.
	SeqNumber    uint64
	RetirePrior  uint64
	ConnectionID []byte
	ResetToken   [16]byte

	// PATH_CHALLENGE / PATH_RESPONSE payload.
	PathData [8]byte

	// NEW_TOKEN / CONNECTION_CLOSE auxiliary data.
	Token        []byte
	ReasonPhrase string
	CloseFrame   uint64 // frame type that triggered a transport close
	AppClose     bool   // 0x1d application close variant
}

// Decode errors.
var (
	ErrTruncatedFrame = errors.New("quicwire: truncated frame")
	ErrUnknownFrame   = errors.New("quicwire: unknown frame type")
)

// AppendFrame serializes f onto b. It appends in place (capacity in b is
// reused), so steady-state encoding into a preallocated buffer performs no
// allocations.
func AppendFrame(b []byte, f Frame) []byte {
	w := wire.WriterFor(b)
	switch f.Type {
	case FramePadding, FramePing, FrameHandshakeDone:
		w.Varint(uint64(f.Type))
	case FrameAck:
		w.Varint(uint64(FrameAck))
		w.Varint(f.AckLargest)
		w.Varint(f.AckDelay)
		w.Varint(0) // additional range count
		w.Varint(f.AckRange)
	case FrameResetStream:
		w.Varint(uint64(FrameResetStream))
		w.Varint(f.StreamID)
		w.Varint(f.ErrorCode)
		w.Varint(f.FinalSize)
	case FrameStopSending:
		w.Varint(uint64(FrameStopSending))
		w.Varint(f.StreamID)
		w.Varint(f.ErrorCode)
	case FrameCrypto:
		w.Varint(uint64(FrameCrypto))
		w.Varint(f.Offset)
		w.Varint(uint64(len(f.Data)))
		w.Write(f.Data)
	case FrameNewToken:
		w.Varint(uint64(FrameNewToken))
		w.Varint(uint64(len(f.Token)))
		w.Write(f.Token)
	case FrameStream:
		// Always emit OFF and LEN bits; FIN as flagged.
		t := uint64(FrameStream) | 0x04 | 0x02
		if f.Fin {
			t |= 0x01
		}
		w.Varint(t)
		w.Varint(f.StreamID)
		w.Varint(f.Offset)
		w.Varint(uint64(len(f.Data)))
		w.Write(f.Data)
	case FrameMaxData:
		w.Varint(uint64(FrameMaxData))
		w.Varint(f.Limit)
	case FrameMaxStreamData:
		w.Varint(uint64(FrameMaxStreamData))
		w.Varint(f.StreamID)
		w.Varint(f.Limit)
	case FrameMaxStreams, FrameStreamsBlocked:
		w.Varint(uint64(f.Type))
		w.Varint(f.Limit)
	case FrameDataBlocked:
		w.Varint(uint64(FrameDataBlocked))
		w.Varint(f.Limit)
	case FrameStreamDataBlocked:
		w.Varint(uint64(FrameStreamDataBlocked))
		w.Varint(f.StreamID)
		w.Varint(f.Limit)
	case FrameNewConnectionID:
		w.Varint(uint64(FrameNewConnectionID))
		w.Varint(f.SeqNumber)
		w.Varint(f.RetirePrior)
		w.Byte(byte(len(f.ConnectionID)))
		w.Write(f.ConnectionID)
		w.Write(f.ResetToken[:])
	case FrameRetireConnectionID:
		w.Varint(uint64(FrameRetireConnectionID))
		w.Varint(f.SeqNumber)
	case FramePathChallenge, FramePathResponse:
		w.Varint(uint64(f.Type))
		w.Write(f.PathData[:])
	case FrameConnectionClose:
		t := uint64(FrameConnectionClose)
		if f.AppClose {
			t = 0x1d
		}
		w.Varint(t)
		w.Varint(f.ErrorCode)
		if !f.AppClose {
			w.Varint(f.CloseFrame)
		}
		w.Varint(uint64(len(f.ReasonPhrase)))
		w.Write([]byte(f.ReasonPhrase))
	default:
		panic(fmt.Sprintf("quicwire: cannot encode frame type %v", f.Type))
	}
	return w.Bytes()
}

// ParseFrames decodes all frames in a packet payload. Byte fields of the
// returned frames (Data, Token, ConnectionID) are copies, safe to retain
// after the payload buffer is reused.
func ParseFrames(payload []byte) ([]Frame, error) {
	return parseFrames(nil, payload, false)
}

// ParseFramesAppend is the zero-allocation decode path: parsed frames are
// appended to dst (pass dst[:0] to reuse its capacity), and byte fields of
// the returned frames alias payload instead of copying it. Callers that
// retain a frame — or reuse the payload buffer — past the next decode must
// copy; steady-state decoding with a reused dst and payload performs no
// allocations.
func ParseFramesAppend(dst []Frame, payload []byte) ([]Frame, error) {
	return parseFrames(dst, payload, true)
}

func parseFrames(dst []Frame, payload []byte, alias bool) ([]Frame, error) {
	r := wire.NewReader(payload)
	frames := dst
	for r.Len() > 0 {
		f, err := parseFrame(r, alias)
		if err != nil {
			return nil, err
		}
		// PADDING is structural filler; drop it from the logical frame list
		// but keep everything else, duplicates included.
		if f.Type != FramePadding {
			frames = append(frames, f)
		}
	}
	return frames, nil
}

// keep returns b aliased or copied per the alias flag, preserving the
// nil-for-empty convention of the copying path.
func keep(b []byte, alias bool) []byte {
	if len(b) == 0 {
		return nil
	}
	if alias {
		return b
	}
	return append([]byte(nil), b...)
}

func parseFrame(r *wire.Reader, alias bool) (Frame, error) {
	t := r.Varint()
	if r.Err() != nil {
		return Frame{}, ErrTruncatedFrame
	}
	var f Frame
	switch {
	case t == uint64(FramePadding), t == uint64(FramePing), t == uint64(FrameHandshakeDone):
		f.Type = FrameType(t)
	case t == uint64(FrameAck) || t == 0x03:
		f.Type = FrameAck
		f.AckLargest = r.Varint()
		f.AckDelay = r.Varint()
		count := r.Varint()
		f.AckRange = r.Varint()
		// Skip extra ranges, stopping at the first reader error: count is
		// attacker-controlled and may be far larger than the payload could
		// ever hold, so looping the declared count on an exhausted reader
		// would spin for ~2^62 no-op iterations.
		for i := uint64(0); i < count && r.Err() == nil; i++ {
			r.Varint()
			r.Varint()
		}
		if t == 0x03 { // ECN counts
			r.Varint()
			r.Varint()
			r.Varint()
		}
	case t == uint64(FrameResetStream):
		f.Type = FrameResetStream
		f.StreamID = r.Varint()
		f.ErrorCode = r.Varint()
		f.FinalSize = r.Varint()
	case t == uint64(FrameStopSending):
		f.Type = FrameStopSending
		f.StreamID = r.Varint()
		f.ErrorCode = r.Varint()
	case t == uint64(FrameCrypto):
		f.Type = FrameCrypto
		f.Offset = r.Varint()
		n := r.Varint()
		f.Data = keep(r.Bytes(int(n)), alias)
	case t == uint64(FrameNewToken):
		f.Type = FrameNewToken
		n := r.Varint()
		f.Token = keep(r.Bytes(int(n)), alias)
	case t >= 0x08 && t <= 0x0f: // STREAM with OFF/LEN/FIN bits
		f.Type = FrameStream
		f.Fin = t&0x01 != 0
		f.StreamID = r.Varint()
		if t&0x04 != 0 {
			f.Offset = r.Varint()
		}
		if t&0x02 != 0 {
			n := r.Varint()
			f.Data = keep(r.Bytes(int(n)), alias)
		} else {
			f.Data = keep(r.Rest(), alias)
		}
	case t == uint64(FrameMaxData):
		f.Type = FrameMaxData
		f.Limit = r.Varint()
	case t == uint64(FrameMaxStreamData):
		f.Type = FrameMaxStreamData
		f.StreamID = r.Varint()
		f.Limit = r.Varint()
	case t == uint64(FrameMaxStreams) || t == 0x13:
		f.Type = FrameMaxStreams
		f.Limit = r.Varint()
	case t == uint64(FrameDataBlocked):
		f.Type = FrameDataBlocked
		f.Limit = r.Varint()
	case t == uint64(FrameStreamDataBlocked):
		f.Type = FrameStreamDataBlocked
		f.StreamID = r.Varint()
		f.Limit = r.Varint()
	case t == uint64(FrameStreamsBlocked) || t == 0x17:
		f.Type = FrameStreamsBlocked
		f.Limit = r.Varint()
	case t == uint64(FrameNewConnectionID):
		f.Type = FrameNewConnectionID
		f.SeqNumber = r.Varint()
		f.RetirePrior = r.Varint()
		n := int(r.Byte())
		f.ConnectionID = keep(r.Bytes(n), alias)
		copy(f.ResetToken[:], r.Bytes(16))
	case t == uint64(FrameRetireConnectionID):
		f.Type = FrameRetireConnectionID
		f.SeqNumber = r.Varint()
	case t == uint64(FramePathChallenge), t == uint64(FramePathResponse):
		f.Type = FrameType(t)
		copy(f.PathData[:], r.Bytes(8))
	case t == uint64(FrameConnectionClose) || t == 0x1d:
		f.Type = FrameConnectionClose
		f.AppClose = t == 0x1d
		f.ErrorCode = r.Varint()
		if !f.AppClose {
			f.CloseFrame = r.Varint()
		}
		n := r.Varint()
		f.ReasonPhrase = string(r.Bytes(int(n)))
	default:
		return Frame{}, fmt.Errorf("%w: %#x", ErrUnknownFrame, t)
	}
	if r.Err() != nil {
		return Frame{}, ErrTruncatedFrame
	}
	return f, nil
}

// FrameNames returns the sorted, de-duplicated frame-type names of a frame
// list in the paper's bracket notation order (e.g. "ACK,CRYPTO"). ACK sorts
// first to mirror the paper's symbols; remaining names sort alphabetically.
func FrameNames(frames []Frame) string {
	seen := make(map[string]bool)
	var names []string
	for _, f := range frames {
		n := f.Type.String()
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i] == "ACK" {
			return true
		}
		if names[j] == "ACK" {
			return false
		}
		return names[i] < names[j]
	})
	return strings.Join(names, ",")
}
