package wire

import (
	"bytes"
	"testing"
)

// FuzzVarintRoundTrip: every in-range value must encode and decode back to
// itself with a canonical length.
func FuzzVarintRoundTrip(f *testing.F) {
	for _, v := range []uint64{0, 1, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, MaxVarint} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		v &= MaxVarint
		enc := AppendVarint(nil, v)
		if got := VarintLen(v); got != len(enc) {
			t.Fatalf("VarintLen(%d) = %d, encoded %d bytes", v, got, len(enc))
		}
		dec, n, err := ReadVarint(enc)
		if err != nil {
			t.Fatalf("ReadVarint rejected own encoding of %d: %v", v, err)
		}
		if dec != v || n != len(enc) {
			t.Fatalf("round trip of %d: got %d over %d of %d bytes", v, dec, n, len(enc))
		}
	})
}

// FuzzReaderWalk: a Reader over arbitrary bytes must never panic, never
// read past the end, keep Offset+Len an invariant, and — once the sticky
// error is set — stop advancing and return only zero values.
func FuzzReaderWalk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(AppendVarint(AppendVarint(nil, 300), MaxVarint))
	f.Add(bytes.Repeat([]byte{0xee}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		if r.Len() != len(data) {
			t.Fatalf("fresh reader Len = %d, want %d", r.Len(), len(data))
		}
		for step := 0; step < len(data)+8; step++ {
			before := r.Offset()
			erred := r.Err() != nil
			var zero bool
			switch step % 5 {
			case 0:
				zero = r.Byte() == 0
			case 1:
				zero = r.Uint16() == 0
			case 2:
				zero = r.Uint32() == 0
			case 3:
				zero = r.Varint() == 0
			case 4:
				zero = r.Bytes(step%3) == nil || step%3 == 0
			}
			after := r.Offset()
			if after < before || after > len(data) {
				t.Fatalf("step %d: offset moved %d -> %d over %d bytes", step, before, after, len(data))
			}
			if r.Offset()+r.Len() != len(data) {
				t.Fatalf("step %d: Offset %d + Len %d != %d", step, r.Offset(), r.Len(), len(data))
			}
			if erred {
				if after != before {
					t.Fatalf("step %d: errored reader advanced %d -> %d", step, before, after)
				}
				if !zero {
					t.Fatalf("step %d: errored reader returned a non-zero value", step)
				}
			}
		}
		// A negative count is always rejected without moving the cursor.
		off := r.Offset()
		if b := r.Bytes(-1); b != nil || r.Err() == nil || r.Offset() != off {
			t.Fatalf("Bytes(-1) = %v, err %v, offset %d -> %d", b, r.Err(), off, r.Offset())
		}
	})
}
