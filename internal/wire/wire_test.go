package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
	}{
		{0, 1}, {37, 1}, {63, 1},
		{64, 2}, {15293, 2}, {16383, 2},
		{16384, 4}, {494878333, 4}, {1<<30 - 1, 4},
		{1 << 30, 8}, {151288809941952652, 8}, {MaxVarint, 8},
	}
	for _, c := range cases {
		b := AppendVarint(nil, c.v)
		if len(b) != c.size {
			t.Fatalf("varint(%d) encoded in %d bytes, want %d", c.v, len(b), c.size)
		}
		if got := VarintLen(c.v); got != c.size {
			t.Fatalf("VarintLen(%d) = %d, want %d", c.v, got, c.size)
		}
		v, n, err := ReadVarint(b)
		if err != nil || n != c.size || v != c.v {
			t.Fatalf("ReadVarint(%x) = %d,%d,%v; want %d,%d,nil", b, v, n, err, c.v, c.size)
		}
	}
}

func TestVarintRFC9000Vectors(t *testing.T) {
	// Appendix A.1 of RFC 9000.
	vectors := map[uint64][]byte{
		151288809941952652: {0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c},
		494878333:          {0x9d, 0x7f, 0x3e, 0x7d},
		15293:              {0x7b, 0xbd},
		37:                 {0x25},
	}
	for v, want := range vectors {
		if got := AppendVarint(nil, v); !bytes.Equal(got, want) {
			t.Fatalf("varint(%d) = %x, want %x", v, got, want)
		}
	}
}

func TestVarintPropertyRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		v := raw & MaxVarint
		got, n, err := ReadVarint(AppendVarint(nil, v))
		return err == nil && got == v && n == VarintLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintShortBuffer(t *testing.T) {
	if _, _, err := ReadVarint(nil); err == nil {
		t.Fatal("empty buffer must error")
	}
	if _, _, err := ReadVarint([]byte{0xC0}); err == nil {
		t.Fatal("truncated 8-byte varint must error")
	}
}

func TestVarintPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AppendVarint(nil, MaxVarint+1)
}

func TestReaderWriterRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(0xAB)
	w.Uint16(0x1234)
	w.Uint32(0xDEADBEEF)
	w.Varint(16384)
	w.Write([]byte("payload"))

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xAB {
		t.Fatalf("Byte = %x", got)
	}
	if got := r.Uint16(); got != 0x1234 {
		t.Fatalf("Uint16 = %x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Varint(); got != 16384 {
		t.Fatalf("Varint = %d", got)
	}
	if got := string(r.Bytes(7)); got != "payload" {
		t.Fatalf("Bytes = %q", got)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v len=%d", r.Err(), r.Len())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Uint32() // short
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if r.Byte() != 0 {
		t.Fatal("reads after error must return zero")
	}
	if r.Rest() != nil {
		t.Fatal("Rest after error must be nil")
	}
}

func TestReaderNegativeCount(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if r.Bytes(-1) != nil || r.Err() == nil {
		t.Fatal("negative count must error")
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %04x, want 220d", got)
	}
	// Odd length handled.
	_ = Checksum([]byte{0x01, 0x02, 0x03})
	// A buffer with its own checksum folded in verifies to zero.
	withSum := append(append([]byte(nil), data...), 0x22, 0x0d)
	if got := Checksum(withSum); got != 0 {
		t.Fatalf("verification checksum = %04x, want 0", got)
	}
}
