// Package wire provides shared binary encoding helpers for the protocol
// substrates: QUIC-style variable-length integers (RFC 9000 §16), bounds-
// checked byte readers and writers, and the Internet checksum used by TCP.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Varint encoding errors.
var (
	ErrVarintRange = errors.New("wire: value out of varint range")
	ErrShortBuffer = errors.New("wire: short buffer")
)

// MaxVarint is the largest value representable as a QUIC varint (2^62 - 1).
const MaxVarint = (1 << 62) - 1

// AppendVarint appends v in QUIC variable-length encoding and returns the
// extended slice. It panics if v exceeds MaxVarint, which is always a
// programming error (protocol fields are range-checked at parse time).
func AppendVarint(b []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(b, byte(v))
	case v < 1<<14:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v < 1<<30:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= MaxVarint:
		return append(b, byte(v>>56)|0xC0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(fmt.Sprintf("wire: varint value %d out of range", v))
	}
}

// VarintLen returns the number of bytes AppendVarint would use for v.
func VarintLen(v uint64) int {
	switch {
	case v < 1<<6:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<30:
		return 4
	default:
		return 8
	}
}

// ReadVarint decodes a varint from the front of b, returning the value and
// the number of bytes consumed.
func ReadVarint(b []byte) (v uint64, n int, err error) {
	if len(b) == 0 {
		return 0, 0, ErrShortBuffer
	}
	n = 1 << (b[0] >> 6)
	if len(b) < n {
		return 0, 0, ErrShortBuffer
	}
	v = uint64(b[0] & 0x3F)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, n, nil
}

// Reader is a bounds-checked cursor over a byte slice. The first decode
// error sticks: all subsequent reads fail fast, so parse code can defer a
// single error check to the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The caller must not mutate b while the
// Reader is in use.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Varint reads a QUIC varint.
func (r *Reader) Varint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n, err := ReadVarint(r.buf[r.off:])
	if err != nil {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bytes reads exactly n bytes. The returned slice aliases the underlying
// buffer; callers that retain it must copy.
func (r *Reader) Bytes(n int) []byte {
	if n < 0 || r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Rest consumes and returns all unread bytes.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Writer accumulates big-endian binary data. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// WriterFor returns a Writer that appends to b in place, following Go's
// append semantics: existing capacity in b is reused, so encode paths that
// pass a preallocated buffer run without per-call allocations. The zero
// Writer plus Write(b) copies b instead — hot paths should use WriterFor.
func WriterFor(b []byte) Writer { return Writer{buf: b} }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uint16 appends a big-endian uint16.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint32 appends a big-endian uint32.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Varint appends a QUIC varint.
func (w *Writer) Varint(v uint64) { w.buf = AppendVarint(w.buf, v) }

// Write appends raw bytes.
func (w *Writer) Write(b []byte) { w.buf = append(w.buf, b...) }

// Checksum computes the 16-bit Internet checksum (RFC 1071) over data,
// as used in the TCP header.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
