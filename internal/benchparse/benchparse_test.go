package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLearnTCPFull-8   	      12	  95123456 ns/op	      4726 queries
BenchmarkLearnUnderLoss/loss=5%/workers=4         	       1	 334802372 ns/op	        21.00 escalations	      2613 queries	      2613 votes	      2219 wasted-votes
BenchmarkWirePath 	   10000	    105000 ns/op
PASS
ok  	repro	1.827s
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Env["goos"] != "linux" || f.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", f.Env)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	tcp := f.Benchmarks[0]
	if tcp.Name != "LearnTCPFull" {
		t.Fatalf("cpu suffix not stripped: %q", tcp.Name)
	}
	if tcp.Iterations != 12 || tcp.Metrics["ns/op"] != 95123456 || tcp.Metrics["queries"] != 4726 {
		t.Fatalf("tcp result mangled: %+v", tcp)
	}
	loss := f.Benchmarks[1]
	if loss.Name != "LearnUnderLoss/loss=5%/workers=4" {
		t.Fatalf("sub-benchmark name mangled: %q", loss.Name)
	}
	if loss.Metrics["escalations"] != 21 || loss.Metrics["wasted-votes"] != 2219 {
		t.Fatalf("custom metrics mangled: %+v", loss.Metrics)
	}
	if f.Benchmarks[2].Metrics["ns/op"] != 105000 {
		t.Fatalf("plain result mangled: %+v", f.Benchmarks[2])
	}
}

// bench builds a one-line File for comparison tests.
func bench(name string, metrics map[string]float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &File{Benchmarks: []Result{
		bench("PooledLearning/workers=4", map[string]float64{"ns/op": 100, "queries": 4000}),
		bench("LearnUnderLoss/loss=5%/workers=4", map[string]float64{"ns/op": 200, "queries": 9000}),
		bench("WirePath", map[string]float64{"ns/op": 50}),
	}}
	cur := &File{Benchmarks: []Result{
		bench("PooledLearning/workers=4", map[string]float64{"ns/op": 140, "queries": 4000}),          // +40% ns/op
		bench("LearnUnderLoss/loss=5%/workers=4", map[string]float64{"ns/op": 210, "queries": 12000}), // +33% queries
		bench("WirePath", map[string]float64{"ns/op": 500}),                                           // outside -match: ignored
		bench("BrandNew", map[string]float64{"ns/op": 1}),                                             // no baseline: ignored
	}}
	regs := Compare(old, cur, []string{"PooledLearning", "LearnUnderLoss"}, []string{"ns/op", "queries"}, 0.30)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	if regs[0].Name != "PooledLearning/workers=4" || regs[0].Metric != "ns/op" {
		t.Fatalf("first regression wrong: %+v", regs[0])
	}
	if regs[1].Name != "LearnUnderLoss/loss=5%/workers=4" || regs[1].Metric != "queries" {
		t.Fatalf("second regression wrong: %+v", regs[1])
	}
	if regs[1].Increase < 0.33 || regs[1].Increase > 0.34 {
		t.Fatalf("increase = %v, want ~0.333", regs[1].Increase)
	}
}

func TestCompareWithinToleranceAndImprovements(t *testing.T) {
	old := &File{Benchmarks: []Result{
		bench("PooledLearning", map[string]float64{"ns/op": 100}),
		bench("LearnUnderLoss", map[string]float64{"ns/op": 100}),
	}}
	cur := &File{Benchmarks: []Result{
		bench("PooledLearning", map[string]float64{"ns/op": 129}), // +29%: within tolerance
		bench("LearnUnderLoss", map[string]float64{"ns/op": 10}),  // 10x faster: never a regression
	}}
	if regs := Compare(old, cur, nil, nil, 0.30); len(regs) != 0 {
		t.Fatalf("tolerated changes flagged: %+v", regs)
	}
}

func TestCompareDefaultsAndMissingMetrics(t *testing.T) {
	old := &File{Benchmarks: []Result{
		bench("A", map[string]float64{"ns/op": 100, "queries": 10}),
		bench("B", map[string]float64{"queries": 10}), // no ns/op on either side
	}}
	cur := &File{Benchmarks: []Result{
		bench("A", map[string]float64{"ns/op": 200}), // queries disappeared: skipped
		bench("B", map[string]float64{"queries": 100}),
	}}
	// Default metric list is ns/op only, default prefix list matches all.
	regs := Compare(old, cur, nil, nil, 0.30)
	if len(regs) != 1 || regs[0].Name != "A" || regs[0].Metric != "ns/op" {
		t.Fatalf("default comparison wrong: %+v", regs)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkBroken FAIL\nrandom text\n--- FAIL: TestX\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", f.Benchmarks)
	}
	if f.Env != nil {
		t.Fatalf("no env lines, got %v", f.Env)
	}
}
