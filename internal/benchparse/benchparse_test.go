package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLearnTCPFull-8   	      12	  95123456 ns/op	      4726 queries
BenchmarkLearnUnderLoss/loss=5%/workers=4         	       1	 334802372 ns/op	        21.00 escalations	      2613 queries	      2613 votes	      2219 wasted-votes
BenchmarkWirePath 	   10000	    105000 ns/op
PASS
ok  	repro	1.827s
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Env["goos"] != "linux" || f.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", f.Env)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	tcp := f.Benchmarks[0]
	if tcp.Name != "LearnTCPFull" {
		t.Fatalf("cpu suffix not stripped: %q", tcp.Name)
	}
	if tcp.Iterations != 12 || tcp.Metrics["ns/op"] != 95123456 || tcp.Metrics["queries"] != 4726 {
		t.Fatalf("tcp result mangled: %+v", tcp)
	}
	loss := f.Benchmarks[1]
	if loss.Name != "LearnUnderLoss/loss=5%/workers=4" {
		t.Fatalf("sub-benchmark name mangled: %q", loss.Name)
	}
	if loss.Metrics["escalations"] != 21 || loss.Metrics["wasted-votes"] != 2219 {
		t.Fatalf("custom metrics mangled: %+v", loss.Metrics)
	}
	if f.Benchmarks[2].Metrics["ns/op"] != 105000 {
		t.Fatalf("plain result mangled: %+v", f.Benchmarks[2])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkBroken FAIL\nrandom text\n--- FAIL: TestX\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", f.Benchmarks)
	}
	if f.Env != nil {
		t.Fatalf("no env lines, got %v", f.Env)
	}
}
