// Package benchparse parses `go test -bench` text output into structured
// results, so CI can track the perf trajectory (cmd/benchjson) and tests
// can assert on benchmark numbers without scraping text themselves.
package benchparse

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (the -cpu suffix stripped), the
// iteration count, and every reported metric keyed by unit — "ns/op"
// always, plus whatever the benchmark added with ReportMetric.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the parsed stream: the environment header lines Go prints
// (goos/goarch/pkg/cpu) and the benchmarks in input order.
type File struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// cpuSuffix is the trailing "-N" GOMAXPROCS tag on benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads a `go test -bench` stream, ignoring everything that is not
// a benchmark result or an environment header.
func Parse(r io.Reader) (*File, error) {
	f := &File{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				f.Benchmarks = append(f.Benchmarks, res)
			}
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				f.Env[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Env) == 0 {
		f.Env = nil
	}
	return f, nil
}

// parseLine parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false // e.g. "BenchmarkX ... FAIL" or other noise
	}
	res := Result{
		Name:       cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
