// Package benchparse parses `go test -bench` text output into structured
// results, so CI can track the perf trajectory (cmd/benchjson) and tests
// can assert on benchmark numbers without scraping text themselves.
package benchparse

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (the -cpu suffix stripped), the
// iteration count, and every reported metric keyed by unit — "ns/op"
// always, plus whatever the benchmark added with ReportMetric.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the parsed stream: the environment header lines Go prints
// (goos/goarch/pkg/cpu) and the benchmarks in input order.
type File struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// cpuSuffix is the trailing "-N" GOMAXPROCS tag on benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads a `go test -bench` stream, ignoring everything that is not
// a benchmark result or an environment header.
func Parse(r io.Reader) (*File, error) {
	f := &File{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				f.Benchmarks = append(f.Benchmarks, res)
			}
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				f.Env[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Env) == 0 {
		f.Env = nil
	}
	return f, nil
}

// Regression is one benchmark metric that got worse beyond the allowed
// ratio between two parsed runs.
type Regression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Increase is the relative growth (New/Old - 1); 0.42 means +42%.
	Increase float64 `json:"increase"`
}

// Compare matches benchmarks of two parsed runs by name and reports every
// selected metric that increased by more than maxIncrease (0.30 = +30% —
// all tracked metrics are costs, so bigger is always worse). Only
// benchmarks whose name starts with one of the prefixes are compared (an
// empty prefix list compares all), and only the named metrics (an empty
// list compares ns/op). Benchmarks or metrics present on only one side
// are skipped: a renamed or new benchmark has no baseline to regress
// against.
func Compare(base, cur *File, prefixes, metrics []string, maxIncrease float64) []Regression {
	if len(metrics) == 0 {
		metrics = []string{"ns/op"}
	}
	selected := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var regs []Regression
	for _, b := range cur.Benchmarks {
		if !selected(b.Name) {
			continue
		}
		prev, ok := baseline[b.Name]
		if !ok {
			continue
		}
		for _, metric := range metrics {
			ov, ook := prev.Metrics[metric]
			nv, nok := b.Metrics[metric]
			if !ook || !nok || ov <= 0 {
				continue
			}
			if inc := nv/ov - 1; inc > maxIncrease {
				regs = append(regs, Regression{
					Name: b.Name, Metric: metric, Old: ov, New: nv, Increase: inc,
				})
			}
		}
	}
	return regs
}

// parseLine parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false // e.g. "BenchmarkX ... FAIL" or other noise
	}
	res := Result{
		Name:       cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
