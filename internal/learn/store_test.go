package learn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/automata"
)

// learnWithStore runs one DT learn of truth through a counting, cached,
// store-attached oracle and returns the learned model plus the live query
// count. warm is the hypothesis to warm-start from (nil = cold). seal
// completes the log for the next warm start, as core.Experiment.Learn does
// after success.
func learnWithStore(t *testing.T, truth *automata.Mealy, dir, key string, warm *automata.Mealy) (*automata.Mealy, int64) {
	t.Helper()
	st, err := OpenStore(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var stats Stats
	cached := NewCache(Counting(MealyOracle(truth), &stats), &stats)
	cached.UseStore(st)
	d := NewDTLearner(cached, truth.Inputs())
	d.Warm = warm
	model, err := d.Learn(bg, &ModelOracle{Model: truth})
	if err != nil {
		t.Fatal(err)
	}
	if err := cached.SealWarm(bg, model, truth.Inputs(), false); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if err := st.SaveModel(model.Minimize()); err != nil {
		t.Fatal(err)
	}
	return model, atomic.LoadInt64(&stats.Queries)
}

// TestStoreWarmRelearnZeroLiveQueries is the round-trip contract: a cold
// learn populates the store; reopening it and relearning the unchanged
// target warm issues zero live membership queries and reproduces the model
// byte for byte (canonical form), because the perfect equivalence oracle
// adds no live traffic and everything the warm rebuild asks was sealed.
func TestStoreWarmRelearnZeroLiveQueries(t *testing.T) {
	truth := tcpModel()
	dir := t.TempDir()
	cold, coldQ, warmModel := func() (*automata.Mealy, int64, *automata.Mealy) {
		m, q := learnWithStore(t, truth, dir, "tcp", nil)
		st, err := OpenStore(dir, "tcp")
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		w, err := st.LoadModel()
		if err != nil || w == nil {
			t.Fatalf("no model snapshot after cold learn: %v", err)
		}
		return m, q, w
	}()
	if coldQ == 0 {
		t.Fatal("cold learn issued no live queries")
	}
	relearned, warmQ := learnWithStore(t, truth, dir, "tcp", warmModel)
	if warmQ != 0 {
		t.Fatalf("warm relearn of an unchanged target issued %d live queries, want 0", warmQ)
	}
	if eq, ce := cold.Equivalent(relearned); !eq {
		t.Fatalf("warm relearn diverged on %v", ce)
	}
	a, _ := json.Marshal(cold.Minimize())
	b, _ := json.Marshal(relearned.Minimize())
	if string(a) != string(b) {
		t.Fatalf("warm relearn not byte-identical:\n%s\n%s", a, b)
	}
}

// TestStoreWarmRelearnChangedTarget: warm state from one machine must not
// leak into the model of a changed one — the learner resumes from the old
// structure but every divergent answer is re-derived live.
func TestStoreWarmRelearnChangedTarget(t *testing.T) {
	truth := tcpModel()
	dir := t.TempDir()
	learnWithStore(t, truth, dir, "tcp", nil)

	// The "new version": one output changed deep in the machine.
	changed := truth.Clone()
	s, ok := changed.StateAfter([]string{"SYN", "ACK"})
	if !ok {
		t.Fatal("bad test machine")
	}
	to, _, _ := changed.Step(s, "FIN")
	changed.SetTransition(s, "FIN", to, "FIN+ACK")

	st, err := OpenStore(dir, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	warm, err := st.LoadModel()
	if err != nil || warm == nil {
		t.Fatal("missing snapshot")
	}
	var stats Stats
	cached := NewCache(Counting(MealyOracle(changed), &stats), &stats)
	cached.UseStore(st)
	// The stale log disagrees with the changed target exactly on the
	// changed cell; relearning must repair it through the live oracle. As
	// in core.Experiment.Learn, a counterexample the learner stops making
	// progress on is re-voted live (Refresh) — without that repair the
	// stale cache would loop the MAT rounds forever.
	eq := &refreshingEq{inner: &ModelOracle{Model: changed}, cached: cached}
	var model *automata.Mealy
	repaired := 0
	for attempt := 0; ; attempt++ {
		d := NewDTLearner(cached, changed.Inputs())
		d.Warm = warm
		model, err = d.Learn(bg, eq)
		var inc *InconsistencyError
		if err == nil || attempt >= 3 || !errors.As(err, &inc) {
			break
		}
		// Mirror core.Experiment.Learn: refresh the implicated words and
		// restart the learner against the repaired cache.
		for _, w := range inc.Words {
			repaired++
			if _, rerr := cached.Refresh(bg, w); rerr != nil {
				t.Fatal(rerr)
			}
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if eq2, ce := changed.Equivalent(model); !eq2 {
		t.Fatalf("stale warm state leaked into the relearned model (diverges on %v)", ce)
	}
	if eq.refreshes == 0 && repaired == 0 {
		t.Fatal("relearn never hit the stale log; test is vacuous")
	}
}

// refreshingEq is the test-local analogue of core's revalidated
// equivalence oracle: a repeated counterexample is repaired in the cache
// (and so in the attached store) before being handed back.
type refreshingEq struct {
	inner     EquivalenceOracle
	cached    *CachedOracle
	last      string
	refreshes int
}

func (r *refreshingEq) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	ce, err := r.inner.FindCounterexample(ctx, hyp)
	if err != nil || ce == nil {
		return ce, err
	}
	if k := strings.Join(ce, "\x1f"); k == r.last {
		r.refreshes++
		if _, err := r.cached.Refresh(ctx, ce); err != nil {
			return nil, err
		}
	} else {
		r.last = k
	}
	return ce, nil
}

// TestStoreRecoversTruncatedAndCorruptedLog: a crash mid-append (partial
// final line) or plain corruption must cost only the bad tail — every
// complete entry before it survives and new appends continue cleanly.
func TestStoreRecoversTruncatedAndCorruptedLog(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		mangle
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-7] }},
		{"garbage-tail", func(b []byte) []byte { return append(b, []byte("{\"in\": [\"SY")...) }},
		{"binary-junk", func(b []byte) []byte { return append(b, 0xFF, 0x00, 0x17) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			key := "log-" + tc.name
			st, err := OpenStore(dir, key)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				word := []string{"a", fmt.Sprint(i)}
				if err := st.Append(word, []string{"x", "y"}); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key+".log")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err = OpenStore(dir, key)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer st.Close()
			want := 10
			if tc.name == "truncated" {
				want = 9 // the mangled final line is discarded
			}
			if got := st.Entries(); got != want {
				t.Fatalf("%d entries survived, want %d", got, want)
			}
			// The store must keep working after recovery, and a clean
			// reopen must see the repaired log plus the new entry.
			if err := st.Append([]string{"fresh"}, []string{"z"}); err != nil {
				t.Fatal(err)
			}
			st.Close()
			st, err = OpenStore(dir, key)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if got := st.Entries(); got != want+1 {
				t.Fatalf("%d entries after repair+append, want %d", got, want+1)
			}
		})
	}
}

type mangle func([]byte) []byte

// TestStoreDiscardsUnterminatedFinalLine: a final line that parses but
// lacks its trailing newline is a crashed append — accepting it would
// make the next append glue two records onto one line, losing both (and
// everything after) on the load after that.
func TestStoreDiscardsUnterminatedFinalLine(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, "unterm")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append([]string{"a", fmt.Sprint(i)}, []string{"x", "y"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "unterm.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strip only the final newline: the last record still parses as JSON.
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = OpenStore(dir, "unterm")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Entries(); got != 4 {
		t.Fatalf("%d entries survived, want 4 (unterminated final record discarded)", got)
	}
	// Appending after recovery must yield a log whose next load sees
	// exactly the surviving entries plus the new one — no glued lines.
	if err := st.Append([]string{"fresh"}, []string{"z"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st, err = OpenStore(dir, "unterm")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Entries(); got != 5 {
		t.Fatalf("%d entries after repair+append, want 5", got)
	}
}

// TestOpenStoreSharesInstance: two opens of the same key in one process
// must share one refcounted Store — separate handles would append at
// overlapping offsets and truncate each other's live writes on load.
func TestOpenStoreSharesInstance(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenStore(dir, "shared")
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStore(dir, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key opened twice produced two instances")
	}
	if err := a.Append([]string{"w"}, []string{"o"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // b still holds the store open
		t.Fatal(err)
	}
	if err := b.Append([]string{"w2"}, []string{"o2"}); err != nil {
		t.Fatalf("append after sibling close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, "shared")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st == a {
		t.Fatal("fully closed store was not evicted from the registry")
	}
	if got := st.Entries(); got != 2 {
		t.Fatalf("reloaded %d entries, want 2", got)
	}
}

// TestStoreRejectsForeignHeader: a file that is not a v<=current query log
// is discarded rather than misread.
func TestStoreRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.log")
	future := fmt.Sprintf("{\"format\":%q,\"version\":%d}\n{\"in\":[\"a\"],\"out\":[\"x\"]}\n",
		storeFormat, storeVersion+1)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Entries() != 0 {
		t.Fatalf("entries from a future-version log were read: %d", st.Entries())
	}
}

// TestStoreConcurrentAppend exercises the append path from many goroutines
// under -race: every line must land complete, and a reload must see every
// entry.
func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, "conc")
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				word := []string{fmt.Sprintf("w%d", w), fmt.Sprint(i)}
				if err := st.Append(word, []string{"o1", "o2"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = OpenStore(dir, "conc")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Entries(); got != writers*perWriter {
		t.Fatalf("reloaded %d entries, want %d", got, writers*perWriter)
	}
}

// TestStoreConcurrentQueriesPersist drives a store-attached cache from
// concurrent batch queries (the pooled-learner shape) under -race and
// checks the persisted log answers a fresh cache.
func TestStoreConcurrentQueriesPersist(t *testing.T) {
	truth := tcpModel()
	dir := t.TempDir()
	st, err := OpenStore(dir, "pool")
	if err != nil {
		t.Fatal(err)
	}
	cached := NewCache(MealyOracle(truth), nil)
	cached.UseStore(st)
	rng := rand.New(rand.NewSource(11))
	var words [][]string
	for i := 0; i < 120; i++ {
		w := make([]string, 1+rng.Intn(6))
		for j := range w {
			w[j] = truth.Inputs()[rng.Intn(len(truth.Inputs()))]
		}
		words = append(words, w)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := cached.QueryBatch(bg, words[g*20:(g+1)*20]); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = OpenStore(dir, "pool")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var live Stats
	fresh := NewCache(Counting(MealyOracle(truth), &live), nil)
	fresh.UseStore(st)
	for _, w := range words {
		out, err := fresh.Query(bg, w)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := truth.Run(w)
		if strings.Join(out, ",") != strings.Join(want, ",") {
			t.Fatalf("reloaded answer for %v = %v, want %v", w, out, want)
		}
	}
	if atomic.LoadInt64(&live.Queries) != 0 {
		t.Fatalf("%d live queries against a fully persisted word set", live.Queries)
	}
}

// lossyLink wraps an oracle in a seeded lossy link at the answer level:
// with probability loss per query, the final response symbol is replaced
// by the empty flight "{}" — the observable shape of the link eating the
// response datagram. Deterministic in the seed, like netem's fault
// streams.
type lossyLink struct {
	mu    sync.Mutex
	inner Oracle
	rng   *rand.Rand
	loss  float64
}

func newLossyLink(inner Oracle, loss float64, seed int64) *lossyLink {
	return &lossyLink{inner: inner, rng: rand.New(rand.NewSource(seed)), loss: loss}
}

func (l *lossyLink) Query(ctx context.Context, word []string) ([]string, error) {
	out, err := l.inner.Query(ctx, word)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	drop := l.rng.Float64() < l.loss
	l.mu.Unlock()
	if drop && len(out) > 0 {
		out = append([]string(nil), out...)
		out[len(out)-1] = "{}"
	}
	return out, nil
}

// TestStorePoisonedVoteDoesNotSurviveRepair is the regression test for the
// persistent half of the cache-poison repair: an answer corrupted by a
// seeded lossy link that made it past the guard is written to the store;
// Refresh must overwrite it both in the cache and in the log, and Clear
// must reset the log — otherwise the poison is resurrected by the next
// warm run's preload.
func TestStorePoisonedVoteDoesNotSurviveRepair(t *testing.T) {
	truth := tcpModel()
	word := []string{"SYN", "ACK", "FIN"}
	clean, _ := truth.Run(word)
	dir := t.TempDir()

	// A 100%-loss first query deterministically poisons the word's cached
	// and persisted answer; the link then goes clean (seeded stream: the
	// first draw decides).
	st, err := OpenStore(dir, "poison")
	if err != nil {
		t.Fatal(err)
	}
	link := newLossyLink(MealyOracle(truth), 1, 42)
	cached := NewCache(link, nil)
	cached.UseStore(st)
	poisoned, err := cached.Query(bg, word)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(poisoned, ",") == strings.Join(clean, ",") {
		t.Fatal("link did not poison the answer; test is vacuous")
	}
	link.loss = 0 // the link recovers; future votes are clean

	// Without repair, the poison would now be permanent in cache and log.
	// Refresh re-votes live and must fix both.
	if _, err := cached.Refresh(bg, word); err != nil {
		t.Fatal(err)
	}
	if out, ok := cached.cache.lookup(word); !ok || strings.Join(out, ",") != strings.Join(clean, ",") {
		t.Fatalf("cache after Refresh = %v, want %v", out, clean)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The next warm run preloads the log: the repaired answer must win.
	st, err = OpenStore(dir, "poison")
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(MealyOracle(truth), nil)
	fresh.UseStore(st)
	if out, ok := fresh.cache.lookup(word); !ok || strings.Join(out, ",") != strings.Join(clean, ",") {
		t.Fatalf("poisoned vote survived into the warm run: %v (want %v)", out, clean)
	}

	// Clear is the repair of last resort: it must take the log with it.
	fresh.Clear()
	if got := st.Entries(); got != 0 {
		t.Fatalf("store kept %d entries across Clear", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = OpenStore(dir, "poison")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Entries(); got != 0 {
		t.Fatalf("cleared log resurrected %d entries on reload", got)
	}
}

// TestWarmLearnersMatchColdModels: warm-started learners (both kinds) must
// learn the exact target model, whether the warm hypothesis is the target
// itself, an unrelated machine over the same alphabet, or over a different
// alphabet (ignored).
func TestWarmLearnersMatchColdModels(t *testing.T) {
	truth := tcpModel()
	other := automata.NewMealy(truth.Inputs())
	other.SetTransition(other.Initial(), "SYN", other.Initial(), "WAT")
	other.SetTransition(other.Initial(), "ACK", other.Initial(), "WAT")
	other.SetTransition(other.Initial(), "FIN", other.Initial(), "WAT")
	foreign := automata.NewMealy([]string{"X"})
	foreign.SetTransition(foreign.Initial(), "X", foreign.Initial(), "Y")
	for _, warm := range []*automata.Mealy{nil, truth, other, foreign} {
		for _, kind := range []string{"lstar", "ttt"} {
			var model *automata.Mealy
			var err error
			if kind == "lstar" {
				l := NewLStar(MealyOracle(truth), truth.Inputs())
				l.Warm = warm
				model, err = l.Learn(bg, &ModelOracle{Model: truth})
			} else {
				d := NewDTLearner(MealyOracle(truth), truth.Inputs())
				d.Warm = warm
				model, err = d.Learn(bg, &ModelOracle{Model: truth})
			}
			if err != nil {
				t.Fatalf("%s warm=%v: %v", kind, warm != nil, err)
			}
			if eq, ce := truth.Equivalent(model); !eq {
				t.Fatalf("%s: warm-started learn diverged on %v", kind, ce)
			}
		}
	}
}
