package learn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// poolOver builds a pool of n independent oracles over the same model.
func poolOver(n int, mk func() Oracle) *Pool {
	shards := make([]Oracle, n)
	for i := range shards {
		shards[i] = mk()
	}
	return NewPool(shards...)
}

func TestPoolQueryBatchMatchesSequential(t *testing.T) {
	truth := tcpModel()
	pool := poolOver(4, func() Oracle { return MealyOracle(truth) })
	rng := rand.New(rand.NewSource(11))
	words := make([][]string, 200)
	for i := range words {
		w := make([]string, 1+rng.Intn(8))
		for j := range w {
			w[j] = truth.Inputs()[rng.Intn(len(truth.Inputs()))]
		}
		words[i] = w
	}
	outs, err := pool.QueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		want, _ := truth.Run(w)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("word %v: batch answer %v, want %v", w, outs[i], want)
		}
	}
}

func TestPoolQueryBatchPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var calls int64
	pool := poolOver(3, func() Oracle {
		return OracleFunc(func(word []string) ([]string, error) {
			if atomic.AddInt64(&calls, 1) > 5 {
				return nil, boom
			}
			return make([]string, len(word)), nil
		})
	})
	words := make([][]string, 50)
	for i := range words {
		words[i] = []string{"a"}
	}
	if _, err := pool.QueryBatch(context.Background(), words); !errors.Is(err, boom) {
		t.Fatalf("batch error = %v, want %v", err, boom)
	}
}

// TestPooledLearnersMatchSequential is the end-to-end determinism check:
// both learners recover the exact same model through a 4-shard pool with a
// concurrent cache as they do through a plain sequential oracle.
func TestPooledLearnersMatchSequential(t *testing.T) {
	truth := tcpModel()
	for _, name := range []string{"lstar", "dtree"} {
		t.Run(name, func(t *testing.T) {
			var st Stats
			pool := poolOver(4, func() Oracle { return Counting(MealyOracle(truth), &st) })
			cached := NewCache(pool, &st)
			l := learners(cached, truth.Inputs())[name]
			hyp, err := l.Learn(&ModelOracle{Model: truth})
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := truth.Equivalent(hyp); !eq {
				t.Fatalf("pooled %s learned a wrong model (differs on %v)", name, ce)
			}
			if hyp.NumStates() != truth.NumStates() {
				t.Fatalf("pooled %s learned %d states, want %d", name, hyp.NumStates(), truth.NumStates())
			}
		})
	}
}

// TestCachedOracleDedupsInflight checks that concurrent duplicate queries
// share one execution: a slow inner oracle must see each distinct word
// exactly once.
func TestCachedOracleDedupsInflight(t *testing.T) {
	truth := tcpModel()
	var live int64
	started := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	inner := OracleFunc(func(word []string) ([]string, error) {
		atomic.AddInt64(&live, 1)
		once.Do(func() { close(started) })
		<-gate // hold the first asker while the duplicates arrive
		out, _ := truth.Run(word)
		return out, nil
	})
	cached := NewCache(inner, nil)
	word := []string{"SYN", "ACK"}
	want, _ := truth.Run(word)

	const askers = 8
	var wg sync.WaitGroup
	results := make([][]string, askers)
	errs := make([]error, askers)
	ask := func(i int) {
		defer wg.Done()
		results[i], errs[i] = cached.Query(word)
	}
	wg.Add(1)
	go ask(0)
	// Once the first asker is inside the inner oracle, its in-flight entry
	// is registered and stays until the gate opens: every later asker
	// either waits on it or (arriving after completion) hits the cache.
	<-started
	for i := 1; i < askers; i++ {
		wg.Add(1)
		go ask(i)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < askers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("asker %d got %v, want %v", i, results[i], want)
		}
	}
	if live != 1 {
		t.Fatalf("inner oracle saw %d executions of one word, want 1", live)
	}
}

// TestCachedOracleBatchDedup checks dedup inside one batch: duplicate
// words in a QueryBatch reach the inner oracle once.
func TestCachedOracleBatchDedup(t *testing.T) {
	truth := tcpModel()
	var st Stats
	cached := NewCache(Counting(MealyOracle(truth), &st), &st)
	words := [][]string{
		{"SYN"}, {"SYN"}, {"SYN", "ACK"}, {"SYN"}, {"SYN", "ACK"},
	}
	outs, err := cached.QueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 {
		t.Fatalf("inner oracle saw %d queries for 2 distinct words", st.Queries)
	}
	for i, w := range words {
		want, _ := truth.Run(w)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("word %v: got %v, want %v", w, outs[i], want)
		}
	}
}

// TestCacheConcurrentUse hammers one CachedOracle from many goroutines
// (run with -race); every answer must match the model and the stats must
// balance: hits + live queries == total asks.
func TestCacheConcurrentUse(t *testing.T) {
	truth := tcpModel()
	var st Stats
	cached := NewCache(Counting(MealyOracle(truth), &st), &st)
	inputs := truth.Inputs()

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				w := make([]string, 1+rng.Intn(6))
				for j := range w {
					w[j] = inputs[rng.Intn(len(inputs))]
				}
				out, err := cached.Query(w)
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := truth.Run(w)
				if !reflect.DeepEqual(out, want) {
					t.Errorf("word %v: got %v, want %v", w, out, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Hits+st.Queries != goroutines*perG {
		t.Fatalf("hits(%d) + live(%d) != asks(%d)", st.Hits, st.Queries, goroutines*perG)
	}
}

// TestCountingConcurrentUse checks the Stats counters under concurrent
// update (run with -race).
func TestCountingConcurrentUse(t *testing.T) {
	var st Stats
	o := Counting(OracleFunc(func(word []string) ([]string, error) {
		return make([]string, len(word)), nil
	}), &st)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := o.Query([]string{"a", "b", "c"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st.Queries != goroutines*perG {
		t.Fatalf("queries = %d, want %d", st.Queries, goroutines*perG)
	}
	if st.Symbols != goroutines*perG*3 {
		t.Fatalf("symbols = %d, want %d", st.Symbols, goroutines*perG*3)
	}
}

// TestQueryShortOutputContract pins the ErrIncompleteOutput contract on
// both the single-query and the batch paths: short answers are rejected
// with an error satisfying errors.Is, and overlong answers are truncated
// to one output per input.
func TestQueryShortOutputContract(t *testing.T) {
	short := OracleFunc(func(word []string) ([]string, error) {
		return []string{"x"}, nil
	})
	if _, err := query(short, []string{"a", "b"}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("query error = %v, want ErrIncompleteOutput", err)
	}
	if _, err := queryAll(short, [][]string{{"a", "b"}}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("queryAll error = %v, want ErrIncompleteOutput", err)
	}
	cached := NewCache(short, nil)
	if _, err := cached.QueryBatch(context.Background(), [][]string{{"a", "b"}}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("QueryBatch error = %v, want ErrIncompleteOutput", err)
	}

	long := OracleFunc(func(word []string) ([]string, error) {
		out := make([]string, len(word)+3)
		for i := range out {
			out[i] = fmt.Sprint(i)
		}
		return out, nil
	})
	out, err := query(long, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("overlong answer not truncated: %v", out)
	}
}

// TestParallelRandomWordsMatchesSequential: with the same seed, the
// parallel random-words search must return the same (earliest) first
// counterexample the sequential search finds.
func TestParallelRandomWordsMatchesSequential(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(2, "FIN", 3, "WRONG")

	seq := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	ceSeq, err := seq.FindCounterexample(hyp)
	if err != nil {
		t.Fatal(err)
	}
	par := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	par.Workers = 4
	cePar, err := par.FindCounterexample(hyp)
	if err != nil {
		t.Fatal(err)
	}
	if ceSeq == nil || cePar == nil {
		t.Fatalf("missed the injected difference: seq=%v par=%v", ceSeq, cePar)
	}
	if !reflect.DeepEqual(ceSeq, cePar) {
		t.Fatalf("parallel ce %v differs from sequential %v", cePar, ceSeq)
	}
}

// TestParallelWpMatchesSequential: the partitioned Wp search returns the
// same counterexample as the sequential walk of the same suite, and both
// prove equivalence on a correct hypothesis.
func TestParallelWpMatchesSequential(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(3, "FIN", 0, "WRONG")

	seq := &WpMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1}
	par := &WpMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1, Workers: 4}

	ceSeq, err := seq.FindCounterexample(hyp)
	if err != nil {
		t.Fatal(err)
	}
	cePar, err := par.FindCounterexample(hyp)
	if err != nil {
		t.Fatal(err)
	}
	if ceSeq == nil || cePar == nil {
		t.Fatalf("Wp missed the injected fault: seq=%v par=%v", ceSeq, cePar)
	}
	if !reflect.DeepEqual(ceSeq, cePar) {
		t.Fatalf("parallel Wp ce %v differs from sequential %v", cePar, ceSeq)
	}
	if ce, err := par.FindCounterexample(truth.Clone()); err != nil || ce != nil {
		t.Fatalf("parallel Wp on a correct hypothesis: ce=%v err=%v", ce, err)
	}
}

// TestPoolWithGuardedShards drives the full concurrent oracle chain — a
// pool of counted shards behind the shared cache — through a learner and
// checks the stats balance.
func TestPoolStatsBalance(t *testing.T) {
	truth := tcpModel()
	var st Stats
	pool := poolOver(4, func() Oracle { return Counting(MealyOracle(truth), &st) })
	cached := NewCache(pool, &st)
	if _, err := NewDTLearner(cached, truth.Inputs()).Learn(&ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 || st.Hits == 0 {
		t.Fatalf("expected both live queries and cache hits, got %d/%d", st.Queries, st.Hits)
	}
}
