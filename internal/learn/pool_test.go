package learn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// poolOver builds a pool of n independent oracles over the same model.
func poolOver(n int, mk func() Oracle) *Pool {
	shards := make([]Oracle, n)
	for i := range shards {
		shards[i] = mk()
	}
	return NewPool(shards...)
}

func TestPoolQueryBatchMatchesSequential(t *testing.T) {
	truth := tcpModel()
	pool := poolOver(4, func() Oracle { return MealyOracle(truth) })
	rng := rand.New(rand.NewSource(11))
	words := make([][]string, 200)
	for i := range words {
		w := make([]string, 1+rng.Intn(8))
		for j := range w {
			w[j] = truth.Inputs()[rng.Intn(len(truth.Inputs()))]
		}
		words[i] = w
	}
	outs, err := pool.QueryBatch(bg, words)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		want, _ := truth.Run(w)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("word %v: batch answer %v, want %v", w, outs[i], want)
		}
	}
}

func TestPoolQueryBatchPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var calls int64
	pool := poolOver(3, func() Oracle {
		return OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
			if atomic.AddInt64(&calls, 1) > 5 {
				return nil, boom
			}
			return make([]string, len(word)), nil
		})
	})
	words := make([][]string, 50)
	for i := range words {
		words[i] = []string{"a"}
	}
	if _, err := pool.QueryBatch(bg, words); !errors.Is(err, boom) {
		t.Fatalf("batch error = %v, want %v", err, boom)
	}
}

// TestPooledLearnersMatchSequential is the end-to-end determinism check:
// both learners recover the exact same model through a 4-shard pool with a
// concurrent cache as they do through a plain sequential oracle.
func TestPooledLearnersMatchSequential(t *testing.T) {
	truth := tcpModel()
	for _, name := range []string{"lstar", "dtree"} {
		t.Run(name, func(t *testing.T) {
			var st Stats
			pool := poolOver(4, func() Oracle { return Counting(MealyOracle(truth), &st) })
			cached := NewCache(pool, &st)
			l := learners(cached, truth.Inputs())[name]
			hyp, err := l.Learn(bg, &ModelOracle{Model: truth})
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := truth.Equivalent(hyp); !eq {
				t.Fatalf("pooled %s learned a wrong model (differs on %v)", name, ce)
			}
			if hyp.NumStates() != truth.NumStates() {
				t.Fatalf("pooled %s learned %d states, want %d", name, hyp.NumStates(), truth.NumStates())
			}
		})
	}
}

// TestCachedOracleDedupsInflight checks that concurrent duplicate queries
// share one execution: a slow inner oracle must see each distinct word
// exactly once.
func TestCachedOracleDedupsInflight(t *testing.T) {
	truth := tcpModel()
	var live int64
	started := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	inner := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		atomic.AddInt64(&live, 1)
		once.Do(func() { close(started) })
		<-gate // hold the first asker while the duplicates arrive
		out, _ := truth.Run(word)
		return out, nil
	})
	cached := NewCache(inner, nil)
	word := []string{"SYN", "ACK"}
	want, _ := truth.Run(word)

	const askers = 8
	var wg sync.WaitGroup
	results := make([][]string, askers)
	errs := make([]error, askers)
	ask := func(i int) {
		defer wg.Done()
		results[i], errs[i] = cached.Query(bg, word)
	}
	wg.Add(1)
	go ask(0)
	// Once the first asker is inside the inner oracle, its in-flight entry
	// is registered and stays until the gate opens: every later asker
	// either waits on it or (arriving after completion) hits the cache.
	<-started
	for i := 1; i < askers; i++ {
		wg.Add(1)
		go ask(i)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < askers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("asker %d got %v, want %v", i, results[i], want)
		}
	}
	if live != 1 {
		t.Fatalf("inner oracle saw %d executions of one word, want 1", live)
	}
}

// TestCachedOracleBatchDedup checks dedup inside one batch: duplicate
// words in a QueryBatch reach the inner oracle once.
func TestCachedOracleBatchDedup(t *testing.T) {
	truth := tcpModel()
	var st Stats
	cached := NewCache(Counting(MealyOracle(truth), &st), &st)
	words := [][]string{
		{"SYN"}, {"SYN"}, {"SYN", "ACK"}, {"SYN"}, {"SYN", "ACK"},
	}
	outs, err := cached.QueryBatch(bg, words)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 {
		t.Fatalf("inner oracle saw %d queries for 2 distinct words", st.Queries)
	}
	for i, w := range words {
		want, _ := truth.Run(w)
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("word %v: got %v, want %v", w, outs[i], want)
		}
	}
}

// TestCacheConcurrentUse hammers one CachedOracle from many goroutines
// (run with -race); every answer must match the model and the stats must
// balance: hits + live queries == total asks.
func TestCacheConcurrentUse(t *testing.T) {
	truth := tcpModel()
	var st Stats
	cached := NewCache(Counting(MealyOracle(truth), &st), &st)
	inputs := truth.Inputs()

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				w := make([]string, 1+rng.Intn(6))
				for j := range w {
					w[j] = inputs[rng.Intn(len(inputs))]
				}
				out, err := cached.Query(bg, w)
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := truth.Run(w)
				if !reflect.DeepEqual(out, want) {
					t.Errorf("word %v: got %v, want %v", w, out, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Hits+st.Queries != goroutines*perG {
		t.Fatalf("hits(%d) + live(%d) != asks(%d)", st.Hits, st.Queries, goroutines*perG)
	}
}

// TestCountingConcurrentUse checks the Stats counters under concurrent
// update (run with -race).
func TestCountingConcurrentUse(t *testing.T) {
	var st Stats
	o := Counting(OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		return make([]string, len(word)), nil
	}), &st)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := o.Query(bg, []string{"a", "b", "c"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st.Queries != goroutines*perG {
		t.Fatalf("queries = %d, want %d", st.Queries, goroutines*perG)
	}
	if st.Symbols != goroutines*perG*3 {
		t.Fatalf("symbols = %d, want %d", st.Symbols, goroutines*perG*3)
	}
}

// TestQueryShortOutputContract pins the ErrIncompleteOutput contract on
// both the single-query and the batch paths: short answers are rejected
// with an error satisfying errors.Is, and overlong answers are truncated
// to one output per input.
func TestQueryShortOutputContract(t *testing.T) {
	short := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		return []string{"x"}, nil
	})
	if _, err := query(bg, short, []string{"a", "b"}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("query error = %v, want ErrIncompleteOutput", err)
	}
	if _, err := queryAll(bg, short, [][]string{{"a", "b"}}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("queryAll error = %v, want ErrIncompleteOutput", err)
	}
	cached := NewCache(short, nil)
	if _, err := cached.QueryBatch(bg, [][]string{{"a", "b"}}); !errors.Is(err, ErrIncompleteOutput) {
		t.Fatalf("QueryBatch error = %v, want ErrIncompleteOutput", err)
	}

	long := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		out := make([]string, len(word)+3)
		for i := range out {
			out[i] = fmt.Sprint(i)
		}
		return out, nil
	})
	out, err := query(bg, long, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("overlong answer not truncated: %v", out)
	}
}

// TestParallelRandomWordsMatchesSequential: with the same seed, the
// parallel random-words search must return the same (earliest) first
// counterexample the sequential search finds.
func TestParallelRandomWordsMatchesSequential(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(2, "FIN", 3, "WRONG")

	seq := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	ceSeq, err := seq.FindCounterexample(bg, hyp)
	if err != nil {
		t.Fatal(err)
	}
	par := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	par.Workers = 4
	cePar, err := par.FindCounterexample(bg, hyp)
	if err != nil {
		t.Fatal(err)
	}
	if ceSeq == nil || cePar == nil {
		t.Fatalf("missed the injected difference: seq=%v par=%v", ceSeq, cePar)
	}
	if !reflect.DeepEqual(ceSeq, cePar) {
		t.Fatalf("parallel ce %v differs from sequential %v", cePar, ceSeq)
	}
}

// TestParallelWpMatchesSequential: the partitioned Wp search returns the
// same counterexample as the sequential walk of the same suite, and both
// prove equivalence on a correct hypothesis.
func TestParallelWpMatchesSequential(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(3, "FIN", 0, "WRONG")

	seq := &WpMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1}
	par := &WpMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1, Workers: 4}

	ceSeq, err := seq.FindCounterexample(bg, hyp)
	if err != nil {
		t.Fatal(err)
	}
	cePar, err := par.FindCounterexample(bg, hyp)
	if err != nil {
		t.Fatal(err)
	}
	if ceSeq == nil || cePar == nil {
		t.Fatalf("Wp missed the injected fault: seq=%v par=%v", ceSeq, cePar)
	}
	if !reflect.DeepEqual(ceSeq, cePar) {
		t.Fatalf("parallel Wp ce %v differs from sequential %v", cePar, ceSeq)
	}
	if ce, err := par.FindCounterexample(bg, truth.Clone()); err != nil || ce != nil {
		t.Fatalf("parallel Wp on a correct hypothesis: ce=%v err=%v", ce, err)
	}
}

// TestPoolWithGuardedShards drives the full concurrent oracle chain — a
// pool of counted shards behind the shared cache — through a learner and
// checks the stats balance.
func TestPoolStatsBalance(t *testing.T) {
	truth := tcpModel()
	var st Stats
	pool := poolOver(4, func() Oracle { return Counting(MealyOracle(truth), &st) })
	cached := NewCache(pool, &st)
	if _, err := NewDTLearner(cached, truth.Inputs()).Learn(bg, &ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 || st.Hits == 0 {
		t.Fatalf("expected both live queries and cache hits, got %d/%d", st.Queries, st.Hits)
	}
}

// --- context cancellation and goroutine hygiene -------------------------

// slowOracle answers correctly but takes delay per query, observing ctx.
func slowOracle(truth interface {
	Run([]string) ([]string, bool)
}, delay time.Duration) Oracle {
	return OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		out, ok := truth.Run(word)
		if !ok {
			return nil, fmt.Errorf("no run for %v", word)
		}
		return out, nil
	})
}

// TestPoolQueryBatchHonorsCancel: cancelling the batch context aborts the
// dispatch promptly and all pool workers exit.
func TestPoolQueryBatchHonorsCancel(t *testing.T) {
	truth := tcpModel()
	base := runtime.NumGoroutine()
	pool := poolOver(4, func() Oracle { return slowOracle(truth, 2*time.Millisecond) })
	words := make([][]string, 500)
	for i := range words {
		words[i] = []string{"SYN", "ACK"}[:1+i%2]
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := pool.QueryBatch(ctx, words)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestLearnReturnsCtxErrPromptly: cancelling mid-Learn surfaces ctx.Err()
// within one query round for both learners.
func TestLearnReturnsCtxErrPromptly(t *testing.T) {
	truth := tcpModel()
	for name, mk := range map[string]func(Oracle) learner{
		"lstar": func(o Oracle) learner { return NewLStar(o, truth.Inputs()) },
		"dtree": func(o Oracle) learner { return NewDTLearner(o, truth.Inputs()) },
	} {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(bg)
			queries := int64(0)
			o := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
				if atomic.AddInt64(&queries, 1) == 10 {
					cancel() // cancel from inside the run, mid-round
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				out, _ := truth.Run(word)
				return out, nil
			})
			_, err := mk(o).Learn(ctx, &ModelOracle{Model: truth})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Learn error = %v, want context.Canceled", err)
			}
			asked := atomic.LoadInt64(&queries)
			if asked > 12 {
				t.Fatalf("learner kept querying after cancellation: %d queries", asked)
			}
		})
	}
}

// TestCancelledPooledLearnLeaksNoGoroutines is the end-to-end hygiene
// check: cancel a pooled learning run (pool workers + concurrent cache +
// partitioned equivalence search) mid-flight, confirm Learn returns
// ctx.Err() quickly, and verify every goroutine the run spawned has exited.
func TestCancelledPooledLearnLeaksNoGoroutines(t *testing.T) {
	truth := tcpModel()
	base := runtime.NumGoroutine()

	var st Stats
	pool := poolOver(4, func() Oracle {
		return Counting(slowOracle(truth, time.Millisecond), &st)
	})
	cached := NewCache(pool, &st)
	eq := NewRandomWordsOracle(cached, truth.Inputs(), 3)
	eq.Workers = 4

	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewDTLearner(cached, truth.Inputs()).Learn(ctx, eq)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Learn error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled pooled learn took %v to return", elapsed)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestFindFirstCECancelledReportsError: a cancelled equivalence search must
// report the cancellation, never a silent "no counterexample".
func TestFindFirstCECancelledReportsError(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(3, "FIN", 0, "WRONG") // late-suite fault
	ctx, cancel := context.WithCancel(bg)
	cancel()
	eq := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	eq.Workers = 4
	ce, err := eq.FindCounterexample(ctx, hyp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned ce=%v err=%v, want context.Canceled", ce, err)
	}
}

// TestCacheWaiterSurvivesLeaderCancel: a leader that dies of its *own*
// cancelled context must not poison waiters with live contexts — they
// retry the word themselves and succeed.
func TestCacheWaiterSurvivesLeaderCancel(t *testing.T) {
	truth := tcpModel()
	leaderIn := make(chan struct{})
	var calls int64
	inner := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		if atomic.AddInt64(&calls, 1) == 1 {
			close(leaderIn)
			<-ctx.Done() // the leader's query dies with its context
			return nil, ctx.Err()
		}
		out, _ := truth.Run(word)
		return out, nil
	})
	cached := NewCache(inner, nil)
	word := []string{"SYN", "ACK"}
	want, _ := truth.Run(word)

	leaderCtx, cancelLeader := context.WithCancel(bg)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := cached.Query(leaderCtx, word)
		leaderDone <- err
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		out, err := cached.Query(bg, word)
		if err != nil {
			t.Errorf("waiter failed after leader cancellation: %v", err)
			return
		}
		if !reflect.DeepEqual(out, want) {
			t.Errorf("waiter got %v, want %v", out, want)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter park on the in-flight entry
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never recovered from the leader's cancellation")
	}
}

// TestCacheWaiterHonorsCancel: a goroutine waiting on another asker's
// in-flight query must give up with ctx.Err() when its context dies first.
func TestCacheWaiterHonorsCancel(t *testing.T) {
	truth := tcpModel()
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	inner := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		once.Do(func() { close(started) })
		<-gate
		out, _ := truth.Run(word)
		return out, nil
	})
	cached := NewCache(inner, nil)
	word := []string{"SYN"}

	go cached.Query(bg, word) //nolint:errcheck // leader; released via gate below
	<-started

	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := cached.Query(ctx, word)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter park on the in-flight entry
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stayed blocked behind the in-flight query")
	}
	close(gate) // release the leader
}
