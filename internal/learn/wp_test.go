package learn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/automata"
)

func TestWpMethodProvesEquivalence(t *testing.T) {
	truth := tcpModel()
	eqo := &WpMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1}
	if ce, err := eqo.FindCounterexample(bg, truth.Clone()); err != nil || ce != nil {
		t.Fatalf("ce=%v err=%v", ce, err)
	}
}

func TestWpMethodFindsMutations(t *testing.T) {
	truth := tcpModel()
	for s := 0; s < truth.NumStates(); s++ {
		for _, in := range truth.Inputs() {
			mut := truth.Clone()
			to, _, _ := mut.Step(automata.State(s), in)
			mut.SetTransition(automata.State(s), in, to, "MUTANT")
			// The mutated machine plays the SUL; the hypothesis is truth.
			eqo := &WpMethodOracle{Oracle: MealyOracle(mut), Inputs: truth.Inputs(), Depth: 1}
			ce, err := eqo.FindCounterexample(bg, truth)
			if err != nil {
				t.Fatal(err)
			}
			if ce == nil {
				// Only acceptable if the mutation is unreachable.
				if eq, _ := truth.Equivalent(mut); !eq {
					t.Fatalf("Wp-method missed output mutation at s%d/%s", s, in)
				}
			}
		}
	}
}

func TestWpMethodUsableAsLearningOracle(t *testing.T) {
	truth := tcpModel()
	o := MealyOracle(truth)
	// Depth must cover the state-count gap between intermediate hypotheses
	// (as small as 1 state) and the 4-state target.
	eqo := &WpMethodOracle{Oracle: o, Inputs: truth.Inputs(), Depth: 3}
	hyp, err := NewDTLearner(o, truth.Inputs()).Learn(bg, eqo)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := truth.Equivalent(hyp); !eq {
		t.Fatalf("learned model differs on %v", ce)
	}
}

// Property: on random machines, the Wp-method agrees with the W-method on
// whether a mutant is detectable (both complete at the same depth bound).
func TestPropertyWpAgreesWithW(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		truth := randomTotalMealy(r, 4, []string{"a", "b"}, []string{"0", "1"}).Minimize()
		mut := truth.Clone()
		reach := mut.Reachable()
		s := reach[r.Intn(len(reach))]
		in := mut.Inputs()[r.Intn(2)]
		to, _, _ := mut.Step(s, in)
		mut.SetTransition(s, in, to, "MUT")
		wp := &WpMethodOracle{Oracle: MealyOracle(mut), Inputs: truth.Inputs(), Depth: 1}
		w := &WMethodOracle{Oracle: MealyOracle(mut), Inputs: truth.Inputs(), Depth: 1}
		ceWp, err1 := wp.FindCounterexample(bg, truth)
		ceW, err2 := w.FindCounterexample(bg, truth)
		if err1 != nil || err2 != nil {
			return false
		}
		return (ceWp == nil) == (ceW == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIdentificationSetsSeparateAllStates validates the W_i construction.
func TestIdentificationSetsSeparateAllStates(t *testing.T) {
	m := tcpModel()
	wset := m.CharacterizingSet()
	ids := identificationSets(m, wset)
	for s := 0; s < m.NumStates(); s++ {
		for o := 0; o < m.NumStates(); o++ {
			if s == o {
				continue
			}
			separated := false
			for _, word := range ids[automata.State(s)] {
				a, _ := m.RunFrom(automata.State(s), word)
				b, _ := m.RunFrom(automata.State(o), word)
				if join(a) != join(b) {
					separated = true
					break
				}
			}
			if !separated {
				t.Fatalf("W_%d does not separate state %d from %d", s, s, o)
			}
		}
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + "\x1f"
	}
	return out
}
