package learn

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
)

// This file implements warm-started learning: both learners can rebuild
// their internal structures from a previously learned hypothesis, so
// relearning an unchanged target re-derives the old model from cached
// answers and pays live queries only for the equivalence pass — and a
// changed target starts refining from the first divergent cell instead of
// from a single-state hypothesis. The warm structures carry no answers,
// only *questions*: every cell and signature is still (re)asked through
// the oracle, so a stale hypothesis can bias which queries are asked but
// never what the learner believes about the system.

// compatibleAlphabet reports whether a warm hypothesis over warmInputs can
// seed a learner over inputs (same symbol set; order may differ, as it is
// local to each machine).
func compatibleAlphabet(inputs, warmInputs []string) bool {
	if len(inputs) != len(warmInputs) {
		return false
	}
	set := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		set[in] = true
	}
	for _, in := range warmInputs {
		if !set[in] {
			return false
		}
	}
	return true
}

// sortedAccess returns prev's access sequences ordered by (length, lex) —
// deterministic, with the empty word (the initial state) first. BFS access
// sequences are prefix-closed: each state's sequence extends its BFS
// parent's by one symbol.
func sortedAccess(prev *automata.Mealy) [][]string {
	acc := prev.AccessSequences()
	out := make([][]string, 0, len(acc))
	for _, a := range acc {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], "\x1f") < strings.Join(out[j], "\x1f")
	})
	return out
}

// seedWarm initialises the L* observation table from a previous
// hypothesis: S gets one access word per old state (prefix-closed by
// construction), E gets the old characterizing set on top of the
// single-symbol base. Filling the seeded table re-asks every cell through
// the oracle — against a store-warmed cache those are all hits when the
// target is unchanged, and the table is closed with the old state set
// after round one.
func (l *LStar) seedWarm(prev *automata.Mealy) {
	if prev == nil || !compatibleAlphabet(l.inputs, prev.Inputs()) {
		return
	}
	l.prefixes = sortedAccess(prev)
	have := make(map[string]bool, len(l.suffixes))
	for _, s := range l.suffixes {
		have[key(s)] = true
	}
	for _, w := range prev.CharacterizingSet() {
		if len(w) == 0 || have[key(w)] {
			continue
		}
		have[key(w)] = true
		l.suffixes = append(l.suffixes, append([]string(nil), w...))
	}
}

// warmTree rebuilds a discrimination tree equivalent to prev without any
// oracle traffic: states are split recursively by the suffixes of prev's
// characterizing set, with each inner node's child signatures computed by
// running prev itself. Sifting a leaf's access word through the resulting
// tree asks the live oracle exactly the access·discriminator words whose
// answers the seal pass logged (store.go), so an unchanged target
// reconstructs its old hypothesis entirely from cache.
func warmTree(prev *automata.Mealy) *dtNode {
	access := prev.AccessSequences()
	states := make([]automata.State, 0, len(access))
	for s := range access {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	wset := prev.CharacterizingSet()
	var split func(group []automata.State, wIdx int) *dtNode
	split = func(group []automata.State, wIdx int) *dtNode {
		if len(group) == 1 {
			return &dtNode{access: append([]string(nil), access[group[0]]...)}
		}
		for ; wIdx < len(wset); wIdx++ {
			w := wset[wIdx]
			if len(w) == 0 {
				continue
			}
			parts := make(map[string][]automata.State)
			order := make([]string, 0, 2)
			for _, s := range group {
				out, ok := prev.RunFrom(s, w)
				if !ok {
					// A partial machine can leave a state undefined on w;
					// give those states their own signature class.
					out = []string{}
				}
				sig := strings.Join(out, "\x1f")
				if _, seen := parts[sig]; !seen {
					order = append(order, sig)
				}
				parts[sig] = append(parts[sig], s)
			}
			if len(parts) < 2 {
				continue // w does not split this group; try the next suffix
			}
			n := &dtNode{suffix: append([]string(nil), w...), children: make(map[string]*dtNode, len(parts))}
			for _, sig := range order {
				n.children[sig] = split(parts[sig], wIdx+1)
			}
			return n
		}
		// The characterizing set failed to separate the group — possible
		// only for a non-minimal warm hypothesis. Collapse to one leaf; the
		// MAT loop re-discovers the distinction if the system still has it.
		return &dtNode{access: append([]string(nil), access[group[0]]...)}
	}
	return split(states, 0)
}

// seedWarm replaces the single-leaf start tree with one rebuilt from a
// previous hypothesis (no-op when prev is nil or speaks another alphabet).
func (d *DTLearner) seedWarm(prev *automata.Mealy) {
	if prev == nil || !compatibleAlphabet(d.inputs, prev.Inputs()) {
		return
	}
	d.root = warmTree(prev)
}

// maxSealQueries bounds the seal simulation below. The warm rebuild of an
// n-state hypothesis asks O(n·|Σ|·|W|) words; real targets stay orders of
// magnitude under this, so hitting the bound means the cache contradicts
// the model badly enough that sealing would chase a moving fixpoint.
const maxSealQueries = 1 << 18

// SealWarm completes the attached store for a future warm start from
// model: it simulates the warm relearn (same learner kind, same alphabet)
// against an oracle that answers from the cache where an answer exists and
// from the model everywhere else, logging every model-answered word. After
// a successful seal, a warm run against an unchanged target finds every
// word its rebuild asks — table cells, tree signatures, transition outputs
// — already in the log and issues zero live membership queries; only the
// equivalence search still speaks to the system. Model-derived entries are
// exactly as trustworthy as the hypothesis itself, and a changed target
// invalidates them through the same refresh/repair path as any stale
// entry. Sealing is a no-op without an attached store, and errors leave
// the store merely less warm, never wrong.
func (c *CachedOracle) SealWarm(ctx context.Context, model *automata.Mealy, inputs []string, lstar bool) error {
	if c.store == nil || model == nil {
		return nil
	}
	asked := 0
	sealed := make(map[string][]string)
	oracle := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if out, ok := c.cache.lookup(word); ok {
			return out, nil
		}
		k := strings.Join(word, "\x1f")
		if out, ok := sealed[k]; ok {
			return out, nil
		}
		if asked++; asked > maxSealQueries {
			return nil, fmt.Errorf("learn: seal budget of %d queries exhausted", maxSealQueries)
		}
		out, ok := model.Run(word)
		if !ok {
			return nil, fmt.Errorf("learn: sealed model has no run for %v", word)
		}
		sealed[k] = out
		_ = c.store.Append(word, out)
		return out, nil
	})
	eq := &ModelOracle{Model: model}
	if lstar {
		l := NewLStar(oracle, inputs)
		l.Warm = model
		_, err := l.Learn(ctx, eq)
		return err
	}
	d := NewDTLearner(oracle, inputs)
	d.Warm = model
	_, err := d.Learn(ctx, eq)
	return err
}
