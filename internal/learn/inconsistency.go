package learn

import (
	"fmt"
	"strings"
)

// InconsistencyError reports that counterexample analysis observed answers
// that no single deterministic machine could have produced. Against a
// deterministic target behind a voting guard, the overwhelmingly likely
// cause is a wrongly accepted — and therefore cached — answer: the guard
// makes per-query mistakes extremely rare, but a cache makes any mistake
// permanent. Words lists the queries involved in the contradiction (the
// counterexample included), so a driver can re-vote exactly those,
// overwrite the poisoned entries, and restart the learner instead of
// failing the run; see core.Experiment.Learn.
type InconsistencyError struct {
	CE     []string
	Words  [][]string
	Reason string
}

// Error implements error.
func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("learn: inconsistent observations on counterexample [%s]: %s",
		strings.Join(e.CE, " "), e.Reason)
}
