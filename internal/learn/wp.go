package learn

import (
	"context"
	"sort"
	"strings"

	"repro/internal/automata"
)

// WpMethodOracle implements the Wp-method (Fujiwara et al.), the partial-W
// refinement of Chow's W-method: the first phase tests state identification
// with the full characterizing set W, while the second (transition) phase
// only uses each target state's identification set W_i ⊆ W. It gives the
// same fault-detection guarantee as the W-method with substantially fewer
// tests — the difference is measured in the benchmark harness.
type WpMethodOracle struct {
	Oracle Oracle
	Inputs []string
	Depth  int
	// Workers > 1 partitions the test suite across that many goroutines
	// with first-counterexample cancellation. The suite order is fixed, and
	// the earliest failing word always wins, so the returned counterexample
	// is the same one the sequential search finds.
	Workers int
}

// Suite materialises the full Wp test suite for a hypothesis, in the order
// the sequential search checks it. The suite is O(|Q|·|Σ|^Depth·|W|)
// words, fine at this repo's hypothesis sizes and shallow depths; a
// streaming generator would be worth it before pointing large Depth at a
// big machine. Phase 1 is state cover × W; phase 2 is
// transition cover × middle words × W_target. The transition cover itself
// contributes one symbol of depth, so middles extend only to Depth-1:
// WpMethodOracle{Depth: d} and WMethodOracle{Depth: d} detect the same
// fault class (up to d extra states).
func (w *WpMethodOracle) Suite(hyp *automata.Mealy) [][]string {
	access := hyp.AccessSequences()
	wset := hyp.CharacterizingSet()
	if len(wset) == 0 {
		wset = [][]string{{}}
	}
	idSets := identificationSets(hyp, wset)

	// Iterate states in numeric order so the suite — and therefore the
	// counterexample the search returns — is reproducible run to run
	// (access is a map; ranging over it directly would randomise the
	// order).
	states := make([]automata.State, 0, len(access))
	for s := range access {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })

	var suite [][]string
	// Phase 1: state cover × W.
	for _, s := range states {
		acc := access[s]
		for _, suf := range wset {
			word := concat(acc, nil, suf)
			if len(word) == 0 {
				continue
			}
			suite = append(suite, word)
		}
	}

	// Phase 2: transition cover × middle words × W_target.
	middles := [][]string{{}}
	frontier := [][]string{{}}
	for d := 0; d < w.Depth-1; d++ {
		var next [][]string
		for _, mid := range frontier {
			for _, in := range w.Inputs {
				next = append(next, append(append([]string(nil), mid...), in))
			}
		}
		middles = append(middles, next...)
		frontier = next
	}
	for _, state := range states {
		acc := access[state]
		for _, in := range w.Inputs {
			if _, _, ok := hyp.Step(state, in); !ok {
				continue
			}
			base := append(append([]string(nil), acc...), in)
			for _, mid := range middles {
				prefix := concat(base, mid, nil)
				target, ok := hyp.StateAfter(prefix)
				if !ok {
					continue
				}
				for _, suf := range idSets[target] {
					suite = append(suite, concat(prefix, nil, suf))
				}
			}
		}
	}
	return suite
}

// FindCounterexample implements EquivalenceOracle.
func (w *WpMethodOracle) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	suite := w.Suite(hyp)
	if w.Workers > 1 {
		return findFirstCE(ctx, w.Oracle, hyp, suite, w.Workers, nil)
	}
	for _, word := range suite {
		if ce, err := checkWord(ctx, w.Oracle, hyp, word); err != nil || ce != nil {
			return ce, err
		}
	}
	return nil, nil
}

// identificationSets computes, per state, a minimal subset of W that
// distinguishes it from every other state.
func identificationSets(m *automata.Mealy, wset [][]string) map[automata.State][][]string {
	out := make(map[automata.State][][]string, m.NumStates())
	n := m.NumStates()
	response := func(s automata.State, word []string) string {
		o, _ := m.RunFrom(s, word)
		return strings.Join(o, "\x1f")
	}
	for s := 0; s < n; s++ {
		var set [][]string
		remaining := make(map[automata.State]bool)
		for o := 0; o < n; o++ {
			if o != s {
				remaining[automata.State(o)] = true
			}
		}
		for _, word := range wset {
			if len(remaining) == 0 {
				break
			}
			mine := response(automata.State(s), word)
			separated := false
			for o := range remaining {
				if response(o, word) != mine {
					delete(remaining, o)
					separated = true
				}
			}
			if separated {
				set = append(set, word)
			}
		}
		if len(set) == 0 {
			// A state needing no distinguishing suffix (e.g. the only
			// state) still needs the transition word itself checked.
			set = [][]string{{}}
		}
		out[automata.State(s)] = set
	}
	return out
}

func concat(a, b, c []string) []string {
	out := make([]string, 0, len(a)+len(b)+len(c))
	out = append(out, a...)
	out = append(out, b...)
	out = append(out, c...)
	return out
}
