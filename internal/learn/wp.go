package learn

import (
	"strings"

	"repro/internal/automata"
)

// WpMethodOracle implements the Wp-method (Fujiwara et al.), the partial-W
// refinement of Chow's W-method: the first phase tests state identification
// with the full characterizing set W, while the second (transition) phase
// only uses each target state's identification set W_i ⊆ W. It gives the
// same fault-detection guarantee as the W-method with substantially fewer
// tests — the difference is measured in the benchmark harness.
type WpMethodOracle struct {
	Oracle Oracle
	Inputs []string
	Depth  int
}

// FindCounterexample implements EquivalenceOracle.
func (w *WpMethodOracle) FindCounterexample(hyp *automata.Mealy) ([]string, error) {
	access := hyp.AccessSequences()
	wset := hyp.CharacterizingSet()
	if len(wset) == 0 {
		wset = [][]string{{}}
	}
	idSets := identificationSets(hyp, wset)

	// Phase 1: state cover × W.
	for _, acc := range access {
		for _, suf := range wset {
			word := concat(acc, nil, suf)
			if len(word) == 0 {
				continue
			}
			if ce, err := checkWord(w.Oracle, hyp, word); err != nil || ce != nil {
				return ce, err
			}
		}
	}

	// Phase 2: transition cover × middle words × W_target. The transition
	// cover itself contributes one symbol of depth, so middles extend only
	// to Depth-1: WpMethodOracle{Depth: d} and WMethodOracle{Depth: d}
	// detect the same fault class (up to d extra states).
	middles := [][]string{{}}
	frontier := [][]string{{}}
	for d := 0; d < w.Depth-1; d++ {
		var next [][]string
		for _, mid := range frontier {
			for _, in := range w.Inputs {
				next = append(next, append(append([]string(nil), mid...), in))
			}
		}
		middles = append(middles, next...)
		frontier = next
	}
	for state, acc := range access {
		for _, in := range w.Inputs {
			if _, _, ok := hyp.Step(state, in); !ok {
				continue
			}
			base := append(append([]string(nil), acc...), in)
			for _, mid := range middles {
				prefix := concat(base, mid, nil)
				target, ok := hyp.StateAfter(prefix)
				if !ok {
					continue
				}
				for _, suf := range idSets[target] {
					word := concat(prefix, nil, suf)
					if ce, err := checkWord(w.Oracle, hyp, word); err != nil || ce != nil {
						return ce, err
					}
				}
			}
		}
	}
	return nil, nil
}

// identificationSets computes, per state, a minimal subset of W that
// distinguishes it from every other state.
func identificationSets(m *automata.Mealy, wset [][]string) map[automata.State][][]string {
	out := make(map[automata.State][][]string, m.NumStates())
	n := m.NumStates()
	response := func(s automata.State, word []string) string {
		o, _ := m.RunFrom(s, word)
		return strings.Join(o, "\x1f")
	}
	for s := 0; s < n; s++ {
		var set [][]string
		remaining := make(map[automata.State]bool)
		for o := 0; o < n; o++ {
			if o != s {
				remaining[automata.State(o)] = true
			}
		}
		for _, word := range wset {
			if len(remaining) == 0 {
				break
			}
			mine := response(automata.State(s), word)
			separated := false
			for o := range remaining {
				if response(o, word) != mine {
					delete(remaining, o)
					separated = true
				}
			}
			if separated {
				set = append(set, word)
			}
		}
		if len(set) == 0 {
			// A state needing no distinguishing suffix (e.g. the only
			// state) still needs the transition word itself checked.
			set = [][]string{{}}
		}
		out[automata.State(s)] = set
	}
	return out
}

func concat(a, b, c []string) []string {
	out := make([]string, 0, len(a)+len(b)+len(c))
	out = append(out, a...)
	out = append(out, b...)
	out = append(out, c...)
	return out
}
