// Package learn implements active automata learning in the Minimally
// Adequate Teacher framework: membership/equivalence oracles, a prefix-tree
// query cache, the classic L* observation-table learner, a discrimination-
// tree learner with Rivest–Schapire counterexample analysis (the TTT-style
// algorithm the paper uses via LearnLib), and heuristic equivalence oracles
// (random words and the W-method).
//
// The whole query plane is context-first: every membership query and every
// equivalence search takes a context.Context, and cancelling it aborts the
// run mid-round — pool workers, in-flight cache waiters, and partitioned
// equivalence searches all observe the same cancellation signal and exit
// without leaking goroutines.
package learn

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/automata"
)

// Oracle answers membership queries: given an input word it returns the
// output word the system under learning produces from its reset state.
// Implementations must reset the system before each query and should return
// promptly (with ctx.Err()) once ctx is cancelled.
type Oracle interface {
	Query(ctx context.Context, word []string) ([]string, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ctx context.Context, word []string) ([]string, error)

// Query implements Oracle.
func (f OracleFunc) Query(ctx context.Context, word []string) ([]string, error) {
	return f(ctx, word)
}

// EquivalenceOracle searches for an input word on which the hypothesis and
// the system under learning disagree. A nil counterexample with nil error
// means no disagreement was found (the heuristic guarantee of §4.1: absence
// of a counterexample does not prove equivalence). Cancelling ctx aborts
// the search with ctx.Err().
type EquivalenceOracle interface {
	FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error)
}

// ErrIncompleteOutput is returned when an oracle produces fewer output
// symbols than input symbols, which violates the Mealy query contract.
var ErrIncompleteOutput = errors.New("learn: oracle returned short output word")

// Stats counts oracle traffic. All fields are safe for concurrent update.
type Stats struct {
	Queries int64 // membership queries issued to the underlying oracle
	Symbols int64 // total input symbols across those queries
	Hits    int64 // queries answered from cache without touching the oracle
}

// Counting wraps an oracle and counts queries and symbols in st (and in
// the process-wide metrics plane).
func Counting(o Oracle, st *Stats) Oracle {
	return OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		atomic.AddInt64(&st.Queries, 1)
		atomic.AddInt64(&st.Symbols, int64(len(word)))
		metricQueries.Inc()
		metricSymbols.Add(int64(len(word)))
		return o.Query(ctx, word)
	})
}

// MealyOracle returns an oracle backed by a Mealy machine, used to test
// learners without a live protocol endpoint and by the analysis module for
// model-based test generation. Querying a word with an undefined transition
// returns an error.
func MealyOracle(m *automata.Mealy) Oracle {
	return OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		out, ok := m.Run(word)
		if !ok {
			return nil, fmt.Errorf("learn: model has no run for %v", word)
		}
		return out, nil
	})
}

// query is a helper that checks for cancellation and enforces the
// output-length contract.
func query(ctx context.Context, o Oracle, word []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := o.Query(ctx, word)
	if err != nil {
		return nil, err
	}
	return conform(word, out)
}

// conform checks the Mealy output-length contract for one answer: at least
// one output symbol per input symbol, truncated to exactly one per input.
func conform(word, out []string) ([]string, error) {
	if len(out) < len(word) {
		return nil, fmt.Errorf("%w: %d inputs, %d outputs", ErrIncompleteOutput, len(word), len(out))
	}
	return out[:len(word)], nil
}
