package learn

import "repro/internal/metrics"

// Process-wide learn-pool metric families (see docs/MONITORING.md). The
// per-run Stats/WindowStats snapshots stay the per-experiment view;
// these counters aggregate across every experiment in the process, which
// is what a scrape of a long-running prognosisd wants: fleet totals,
// rates derived server-side by Prometheus.
var (
	metricQueries = metrics.Default().Counter("prognosis_learn_queries_total",
		"Live membership queries issued to systems under learning.")
	metricSymbols = metrics.Default().Counter("prognosis_learn_symbols_total",
		"Input symbols across live membership queries.")
	metricCacheHits = metrics.Default().Counter("prognosis_learn_cache_hits_total",
		"Membership queries answered from the prefix-tree cache without touching the wire.")
	metricWindowSize = metrics.Default().Gauge("prognosis_learn_window_size",
		"Current adaptive in-flight window size (last window to resize).")
	metricWindowDecreases = metrics.Default().Counter("prognosis_learn_window_decreases_total",
		"Multiplicative decreases applied by adaptive in-flight windows.")
)
