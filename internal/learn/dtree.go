package learn

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
)

// DTLearner is a discrimination-tree learner in the style of TTT /
// Kearns–Vazirani with Rivest–Schapire counterexample analysis. Compared to
// L*, it stores one discriminator per tree node instead of a full
// observation table and decomposes counterexamples by binary search, which
// keeps both the number and the length of membership queries small — the
// property that makes the paper's QUIC experiments feasible.
type DTLearner struct {
	oracle Oracle
	inputs []string
	root   *dtNode

	// Observer, when set, receives RoundStarted / HypothesisReady /
	// CounterexampleFound events as the MAT loop progresses.
	Observer Observer

	// Warm, when set, starts the MAT loop from a discrimination tree
	// rebuilt from this previously learned hypothesis instead of the
	// single-leaf tree — see warm.go. Ignored when the hypothesis speaks a
	// different alphabet.
	Warm *automata.Mealy

	// access maps each hypothesis state to the access sequence of its tree
	// leaf. Counterexample analysis must use these canonical sequences (not
	// arbitrary shortest paths in the hypothesis): transition targets and
	// outputs were defined by queries on leaf accesses, and the
	// Rivest–Schapire argument is only sound relative to them.
	access map[automata.State][]string
}

// dtNode is either an inner node (suffix != nil) with children keyed by the
// output signature of the discriminator, or a leaf holding a state's access
// sequence.
type dtNode struct {
	suffix   []string // discriminator; nil for leaves
	children map[string]*dtNode
	access   []string // leaf only
	state    automata.State
}

func (n *dtNode) leaf() bool { return n.suffix == nil }

// NewDTLearner returns a discrimination-tree learner over the alphabet.
func NewDTLearner(o Oracle, inputs []string) *DTLearner {
	return &DTLearner{oracle: o, inputs: inputs}
}

// Learn runs the MAT loop to a stable hypothesis, or returns ctx.Err() as
// soon as the context is cancelled mid-round.
func (d *DTLearner) Learn(ctx context.Context, eq EquivalenceOracle) (*automata.Mealy, error) {
	d.root = &dtNode{access: []string{}} // single-leaf tree: one state
	d.seedWarm(d.Warm)
	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		notify(d.Observer, RoundStarted{Round: round})
		hyp, err := d.hypothesis(ctx)
		if err != nil {
			return nil, err
		}
		notify(d.Observer, HypothesisReady{
			Round: round, States: hyp.NumStates(), Transitions: hyp.NumTransitions(),
		})
		ce, err := eq.FindCounterexample(ctx, hyp)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			return hyp, nil
		}
		notify(d.Observer, CounterexampleFound{Round: round, Word: ce})
		if err := d.processCounterexample(ctx, hyp, ce); err != nil {
			return nil, err
		}
	}
}

// signature returns the output word of the oracle on prefix·suffix,
// restricted to the suffix positions, joined as a map key.
func (d *DTLearner) signature(ctx context.Context, prefix, suffix []string) (string, error) {
	word := append(append([]string(nil), prefix...), suffix...)
	out, err := query(ctx, d.oracle, word)
	if err != nil {
		return "", err
	}
	return strings.Join(out[len(prefix):], "\x1f"), nil
}

// sift descends the tree with the given access word, creating a new leaf if
// an unseen signature is encountered. It returns the leaf and whether it
// was newly created.
func (d *DTLearner) sift(ctx context.Context, word []string) (*dtNode, bool, error) {
	n := d.root
	for !n.leaf() {
		sig, err := d.signature(ctx, word, n.suffix)
		if err != nil {
			return nil, false, err
		}
		child, ok := n.children[sig]
		if !ok {
			leaf := &dtNode{access: append([]string(nil), word...)}
			n.children[sig] = leaf
			return leaf, true, nil
		}
		n = child
	}
	return n, false, nil
}

// siftAll descends many words through the tree in lock step: each round
// batches the signature queries of every word still at an inner node, so a
// pooled oracle answers a whole tree level at once instead of one
// signature at a time. It returns the leaf each word lands on and whether
// any new leaf was created along the way.
func (d *DTLearner) siftAll(ctx context.Context, words [][]string) ([]*dtNode, bool, error) {
	nodes := make([]*dtNode, len(words))
	for i := range nodes {
		nodes[i] = d.root
	}
	created := false
	for {
		var idxs []int
		var qs [][]string
		for i, n := range nodes {
			if !n.leaf() {
				idxs = append(idxs, i)
				qs = append(qs, concat(words[i], n.suffix, nil))
			}
		}
		if len(idxs) == 0 {
			return nodes, created, nil
		}
		outs, err := queryAll(ctx, d.oracle, qs)
		if err != nil {
			return nil, false, err
		}
		for j, i := range idxs {
			n := nodes[i]
			sig := strings.Join(outs[j][len(words[i]):], "\x1f")
			child, ok := n.children[sig]
			if !ok {
				child = &dtNode{access: append([]string(nil), words[i]...)}
				n.children[sig] = child
				created = true
			}
			nodes[i] = child
		}
	}
}

// leaves collects all leaves of the tree, walking children in sorted
// signature order so the enumeration — and therefore hypothesis state
// numbering — is identical run to run (children is a map; ranging over it
// directly would randomise state names between otherwise-equal runs).
func (d *DTLearner) leaves() []*dtNode {
	var out []*dtNode
	var walk func(*dtNode)
	walk = func(n *dtNode) {
		if n.leaf() {
			out = append(out, n)
			return
		}
		sigs := make([]string, 0, len(n.children))
		for sig := range n.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			walk(n.children[sig])
		}
	}
	walk(d.root)
	return out
}

// hypothesis constructs the Mealy machine induced by the current tree.
// Sifting transition targets can create new leaves; construction loops
// until the state set is stable. Each round is a discriminator-refinement
// batch point: the transition-output queries for every leaf×input
// extension go out as one batch, and the extensions are then sifted in
// lock step (siftAll), so a pooled oracle keeps all shards busy.
func (d *DTLearner) hypothesis(ctx context.Context) (*automata.Mealy, error) {
	for {
		ls := d.leaves()
		// The initial leaf is where the empty word sifts to.
		init, created, err := d.sift(ctx, nil)
		if err != nil {
			return nil, err
		}
		if created {
			continue
		}
		m := automata.NewMealy(d.inputs)
		d.access = make(map[automata.State][]string, len(ls))
		init.state = m.Initial()
		d.access[init.state] = init.access
		for _, l := range ls {
			if l != init {
				l.state = m.AddState()
				d.access[l.state] = l.access
			}
		}
		exts := make([][]string, 0, len(ls)*len(d.inputs))
		for _, l := range ls {
			for _, in := range d.inputs {
				exts = append(exts, append(append([]string(nil), l.access...), in))
			}
		}
		targets, grew, err := d.siftAll(ctx, exts)
		if err != nil {
			return nil, err
		}
		if grew {
			continue // new states discovered; rebuild over the larger tree
		}
		// Only a stable round pays for the transition outputs, so growth
		// rounds never waste live queries on results that would be
		// discarded.
		outs, err := queryAll(ctx, d.oracle, exts)
		if err != nil {
			return nil, err
		}
		j := 0
		for _, l := range ls {
			for _, in := range d.inputs {
				m.SetTransition(l.state, in, targets[j].state, outs[j][len(exts[j])-1])
				j++
			}
		}
		return m, nil
	}
}

// processCounterexample applies Rivest–Schapire decomposition repeatedly
// until the hypothesis agrees with the system on ce.
func (d *DTLearner) processCounterexample(ctx context.Context, hyp *automata.Mealy, ce []string) error {
	for {
		sysOut, err := query(ctx, d.oracle, ce)
		if err != nil {
			return err
		}
		hypOut, ok := hyp.Run(ce)
		if ok && strings.Join(sysOut, ",") == strings.Join(hypOut, ",") {
			return nil // fully incorporated
		}
		if err := d.splitOnce(ctx, hyp, ce); err != nil {
			return err
		}
		hyp, err = d.hypothesis(ctx)
		if err != nil {
			return err
		}
	}
}

// splitOnce finds one split point in ce by binary search and splits the
// corresponding leaf with a new discriminator.
func (d *DTLearner) splitOnce(ctx context.Context, hyp *automata.Mealy, ce []string) error {
	// asked records every query this analysis issued, so a contradiction
	// can report exactly the words whose cached answers are suspect.
	var asked [][]string
	inconsistent := func(reason string, extra ...[]string) error {
		words := append([][]string{ce}, asked...)
		words = append(words, extra...)
		return &InconsistencyError{CE: ce, Words: words, Reason: reason}
	}

	// alpha(i) returns the canonical (tree-leaf) access word of the
	// hypothesis state reached after ce[:i].
	alpha := func(i int) ([]string, error) {
		s, ok := hyp.StateAfter(ce[:i])
		if !ok {
			return nil, fmt.Errorf("learn: hypothesis stuck on %v", ce[:i])
		}
		a, ok := d.access[s]
		if !ok {
			return nil, fmt.Errorf("learn: no access sequence for state %d", s)
		}
		return a, nil
	}

	// agrees reports whether the system's outputs on ce[i:] after alpha(i)
	// match the hypothesis outputs on ce[i:] from the state after ce[:i].
	agrees := func(i int) (bool, error) {
		a, err := alpha(i)
		if err != nil {
			return false, err
		}
		word := append(append([]string(nil), a...), ce[i:]...)
		asked = append(asked, word)
		out, err := query(ctx, d.oracle, word)
		if err != nil {
			return false, err
		}
		s, _ := hyp.StateAfter(ce[:i])
		hout, ok := hyp.RunFrom(s, ce[i:])
		if !ok {
			return false, fmt.Errorf("learn: hypothesis stuck from state %d on %v", s, ce[i:])
		}
		return strings.Join(out[len(a):], ",") == strings.Join(hout, ","), nil
	}

	// Invariant for the binary search: agrees(lo) == false, agrees(hi) == true.
	lo, hi := 0, len(ce)
	if a0, err := agrees(0); err != nil {
		return err
	} else if a0 {
		return inconsistent("counterexample is spurious: the system agrees with the hypothesis on it")
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		am, err := agrees(mid)
		if err != nil {
			return err
		}
		if am {
			hi = mid
		} else {
			lo = mid
		}
	}
	i := lo
	// The discriminator v = ce[i+1:] separates the system state reached by
	// alpha(i)·ce[i] from the one reached by alpha(i+1).
	ai, err := alpha(i)
	if err != nil {
		return err
	}
	newAccess := append(append([]string(nil), ai...), ce[i])
	v := append([]string(nil), ce[i+1:]...)
	if len(v) == 0 {
		return inconsistent(fmt.Sprintf("empty discriminator at %d: a transition output contradicts itself", i))
	}

	// Locate the leaf the new access currently sifts to and split it.
	leaf, created, err := d.sift(ctx, newAccess)
	if err != nil {
		return err
	}
	if created {
		return nil // sifting alone discovered a new state; good enough
	}
	// The two signature probes of the split are independent; emit them as
	// one batch.
	pairOuts, err := queryAll(ctx, d.oracle, [][]string{
		concat(leaf.access, v, nil), concat(newAccess, v, nil),
	})
	if err != nil {
		return err
	}
	sigOld := strings.Join(pairOuts[0][len(leaf.access):], "\x1f")
	sigNew := strings.Join(pairOuts[1][len(newAccess):], "\x1f")
	if sigOld == sigNew {
		return inconsistent(
			fmt.Sprintf("discriminator %v fails to split %v from %v", v, leaf.access, newAccess),
			concat(leaf.access, v, nil), concat(newAccess, v, nil))
	}
	oldLeaf := &dtNode{access: leaf.access}
	newLeaf := &dtNode{access: newAccess}
	// Convert leaf into an inner node in place so parent pointers stay valid.
	leaf.suffix = v
	leaf.access = nil
	leaf.children = map[string]*dtNode{sigOld: oldLeaf, sigNew: newLeaf}
	return nil
}
