package learn

import (
	"context"
	"errors"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
)

// cacheNode is one node of the prefix tree. The output on the edge from the
// parent is stored in the child.
type cacheNode struct {
	children map[string]*cacheNode
	output   string
}

// cacheShards is the number of independently locked prefix subtrees. Words
// are sharded by their first input symbol, which preserves prefix closure
// inside each shard (every prefix of a word starts with the same symbol).
const cacheShards = 16

// cacheShard is one independently locked prefix subtree.
type cacheShard struct {
	mu   sync.Mutex
	root cacheNode
}

// Cache is a prefix-tree membership-query cache. Because Mealy queries are
// prefix-closed (the outputs for a prefix of w are a prefix of the outputs
// for w), caching a long query answers all of its prefixes for free. The
// learning algorithms re-ask heavily overlapping queries, so the cache cuts
// live traffic to the system under learning dramatically (ablated in the
// benchmark suite).
//
// Cache is safe for concurrent use: the tree is split into cacheShards
// subtrees keyed by a word's first symbol, each behind its own lock, so
// pool workers touching different regions of the alphabet do not contend.
type Cache struct {
	shards [cacheShards]cacheShard
	stats  *Stats
	nodes  int64 // total prefix-tree nodes, kept O(1)-readable for snapshots
}

func (c *Cache) shard(word []string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(word[0]))
	return &c.shards[h.Sum32()%cacheShards]
}

// NewCache wraps o with a prefix-tree cache. If st is non-nil, cache hits
// are counted in st.Hits.
func NewCache(o Oracle, st *Stats) *CachedOracle {
	return &CachedOracle{inner: o, cache: &Cache{stats: st}}
}

// CachedOracle is an Oracle that consults a Cache before its inner oracle.
// Concurrent duplicate queries are deduplicated: while a word is in flight
// to the inner oracle, later askers of the same word wait for the first
// answer instead of issuing their own — or give up with ctx.Err() when
// their context is cancelled first, so cancellation is never stuck behind
// another goroutine's slow query. It implements BatchOracle, fanning cache
// misses to the inner oracle's batch path when available.
type CachedOracle struct {
	inner Oracle
	cache *Cache
	// store, when attached with UseStore, persists every accepted answer so
	// the next run of the same experiment starts with this run's cache.
	store *Store

	mu       sync.Mutex
	inflight map[string]*inflightQuery
}

// inflightQuery is one query currently being asked of the inner oracle.
type inflightQuery struct {
	done chan struct{}
	out  []string
	err  error
}

func (c *CachedOracle) hit() {
	if c.cache.stats != nil {
		atomic.AddInt64(&c.cache.stats.Hits, 1)
	}
	metricCacheHits.Inc()
}

// isCtxErr reports whether err is a context cancellation or deadline —
// a failure of the asking goroutine's context, not of the query itself.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Query implements Oracle.
func (c *CachedOracle) Query(ctx context.Context, word []string) ([]string, error) {
	for {
		if out, ok := c.cache.lookup(word); ok {
			c.hit()
			return out, nil
		}
		k := strings.Join(word, "\x1f")
		c.mu.Lock()
		if fl, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err != nil {
				// A leader that died of its *own* context must not poison
				// waiters whose contexts are still live: retry the word
				// ourselves (becoming the new leader).
				if isCtxErr(fl.err) && ctx.Err() == nil {
					continue
				}
				return nil, fl.err
			}
			c.hit()
			return fl.out, nil
		}
		fl := &inflightQuery{done: make(chan struct{})}
		if c.inflight == nil {
			c.inflight = make(map[string]*inflightQuery)
		}
		c.inflight[k] = fl
		c.mu.Unlock()

		out, err := query(ctx, c.inner, word)
		if err == nil {
			c.cache.store(word, out)
			c.persist(word, out)
		}
		fl.out, fl.err = out, err
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		close(fl.done)
		return out, err
	}
}

// QueryBatch implements BatchOracle: answers what it can from the cache,
// deduplicates the misses (both inside the batch and against queries other
// goroutines already have in flight), and forwards the remaining distinct
// words to the inner oracle — as one batch when the inner oracle supports
// it.
func (c *CachedOracle) QueryBatch(ctx context.Context, words [][]string) ([][]string, error) {
	outs := make([][]string, len(words))
	type missGroup struct {
		word    []string
		key     string
		indices []int
	}
	var misses []missGroup         // distinct words this call must ask itself
	missAt := make(map[string]int) // word key -> index in misses
	var waits []*inflightQuery     // queries another goroutine is already asking
	var waitIdx []int              // the batch position each wait fills

	c.mu.Lock()
	for i, w := range words {
		if out, ok := c.cache.lookup(w); ok {
			c.hit()
			outs[i] = out
			continue
		}
		k := strings.Join(w, "\x1f")
		if j, ok := missAt[k]; ok {
			misses[j].indices = append(misses[j].indices, i)
			continue
		}
		if fl, ok := c.inflight[k]; ok {
			waits = append(waits, fl)
			waitIdx = append(waitIdx, i)
			continue
		}
		fl := &inflightQuery{done: make(chan struct{})}
		if c.inflight == nil {
			c.inflight = make(map[string]*inflightQuery)
		}
		c.inflight[k] = fl
		missAt[k] = len(misses)
		misses = append(misses, missGroup{word: w, key: k, indices: []int{i}})
	}
	c.mu.Unlock()

	// Ask the distinct misses, preferring the inner batch path.
	var innerOuts [][]string
	var innerErr error
	if len(misses) > 0 {
		missWords := make([][]string, len(misses))
		for i, m := range misses {
			missWords[i] = m.word
		}
		if bo, ok := c.inner.(BatchOracle); ok {
			innerOuts, innerErr = bo.QueryBatch(ctx, missWords)
			if innerErr == nil {
				for i, out := range innerOuts {
					if innerOuts[i], innerErr = conform(missWords[i], out); innerErr != nil {
						break
					}
				}
			}
		} else {
			innerOuts = make([][]string, len(missWords))
			for i, w := range missWords {
				if innerOuts[i], innerErr = query(ctx, c.inner, w); innerErr != nil {
					break
				}
			}
		}
	}

	// Publish results (or the failure) to cache and any waiting goroutines.
	c.mu.Lock()
	for i, m := range misses {
		fl := c.inflight[m.key]
		if innerErr != nil {
			fl.err = innerErr
		} else {
			fl.out = innerOuts[i]
			c.cache.store(m.word, innerOuts[i])
			c.persist(m.word, innerOuts[i])
			for j, at := range m.indices {
				outs[at] = innerOuts[i]
				if j > 0 {
					c.hit() // intra-batch duplicate answered by the leader
				}
			}
		}
		delete(c.inflight, m.key)
		close(fl.done)
	}
	c.mu.Unlock()
	if innerErr != nil {
		return nil, innerErr
	}

	// Collect answers another goroutine was already computing.
	for i, fl := range waits {
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			// As in Query: a leader cancelled by its own context must not
			// fail live waiters — re-ask the word under our context.
			if isCtxErr(fl.err) && ctx.Err() == nil {
				out, err := c.Query(ctx, words[waitIdx[i]])
				if err != nil {
					return nil, err
				}
				outs[waitIdx[i]] = out
				continue
			}
			return nil, fl.err
		}
		c.hit()
		outs[waitIdx[i]] = fl.out
	}
	return outs, nil
}

// Size returns the number of cached input words (prefix-tree nodes minus
// the roots), which equals the number of distinct non-empty prefixes
// stored. It is an O(1) atomic read, so per-round snapshots never stall
// pool workers on the shard locks.
func (c *CachedOracle) Size() int {
	return int(atomic.LoadInt64(&c.cache.nodes))
}

// Clear drops every cached answer (in-flight queries are unaffected: the
// leaders publish into the emptied tree). It is the repair of last resort
// when the target's observable behaviour has shifted mid-run — e.g. an
// implementation whose state leaks across resets — and per-word refreshes
// cannot catch every stale entry. An attached persistent store is reset
// with the cache: entries that survived the drop would resurrect exactly
// the answers the drop was repairing on the next warm run.
func (c *CachedOracle) Clear() {
	for i := range c.cache.shards {
		sh := &c.cache.shards[i]
		sh.mu.Lock()
		sh.root = cacheNode{}
		sh.mu.Unlock()
	}
	atomic.StoreInt64(&c.cache.nodes, 0)
	if c.store != nil {
		_ = c.store.Reset()
	}
}

// Refresh re-asks word of the inner oracle — bypassing any cached answer —
// and overwrites the stored outputs along the word's whole path, prefixes
// included. The voting guard makes a wrongly accepted answer extremely
// unlikely, but a cache makes any such answer permanent; when the
// experiment driver suspects one (a counterexample that stops making
// progress), Refresh lets a fresh consensus repair the poisoned entries
// instead of trusting them forever. With a store attached the corrected
// answer is appended to the log too — entries replay in order with
// last-write-wins, so the repair shadows the poisoned entry on every
// future warm start instead of dying with this process.
func (c *CachedOracle) Refresh(ctx context.Context, word []string) ([]string, error) {
	out, err := query(ctx, c.inner, word)
	if err != nil {
		return nil, err
	}
	c.cache.refresh(word, out)
	c.persist(word, out)
	return out, nil
}

func (c *Cache) lookup(word []string) ([]string, bool) {
	if len(word) == 0 {
		return []string{}, true
	}
	sh := c.shard(word)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := &sh.root
	out := make([]string, 0, len(word))
	for _, in := range word {
		ch, ok := n.children[in]
		if !ok {
			return nil, false
		}
		out = append(out, ch.output)
		n = ch
	}
	return out, true
}

// refresh is store with clobber semantics: existing outputs along the
// path are overwritten rather than kept.
func (c *Cache) refresh(word, out []string) {
	if len(word) == 0 {
		return
	}
	sh := c.shard(word)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := &sh.root
	for i, in := range word {
		if n.children == nil {
			n.children = make(map[string]*cacheNode)
		}
		ch, ok := n.children[in]
		if !ok {
			ch = &cacheNode{}
			n.children[in] = ch
			atomic.AddInt64(&c.nodes, 1)
		}
		ch.output = out[i]
		n = ch
	}
}

func (c *Cache) store(word, out []string) {
	if len(word) == 0 {
		return
	}
	sh := c.shard(word)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := &sh.root
	for i, in := range word {
		if n.children == nil {
			n.children = make(map[string]*cacheNode)
		}
		ch, ok := n.children[in]
		if !ok {
			ch = &cacheNode{output: out[i]}
			n.children[in] = ch
			atomic.AddInt64(&c.nodes, 1)
		}
		n = ch
	}
}
