package learn

import "sync"

// cacheNode is one node of the prefix tree. The output on the edge from the
// parent is stored in the child.
type cacheNode struct {
	children map[string]*cacheNode
	output   string
}

// Cache is a prefix-tree membership-query cache. Because Mealy queries are
// prefix-closed (the outputs for a prefix of w are a prefix of the outputs
// for w), caching a long query answers all of its prefixes for free. The
// learning algorithms re-ask heavily overlapping queries, so the cache cuts
// live traffic to the system under learning dramatically (ablated in the
// benchmark suite).
//
// Cache is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	root  cacheNode
	stats *Stats
}

// NewCache wraps o with a prefix-tree cache. If st is non-nil, cache hits
// are counted in st.Hits.
func NewCache(o Oracle, st *Stats) *CachedOracle {
	return &CachedOracle{inner: o, cache: &Cache{stats: st}}
}

// CachedOracle is an Oracle that consults a Cache before its inner oracle.
type CachedOracle struct {
	inner Oracle
	cache *Cache
}

// Query implements Oracle.
func (c *CachedOracle) Query(word []string) ([]string, error) {
	if out, ok := c.cache.lookup(word); ok {
		if c.cache.stats != nil {
			c.cache.mu.Lock()
			c.cache.stats.Hits++
			c.cache.mu.Unlock()
		}
		return out, nil
	}
	out, err := query(c.inner, word)
	if err != nil {
		return nil, err
	}
	c.cache.store(word, out)
	return out, nil
}

// Size returns the number of cached input words (prefix-tree nodes minus
// the root), which equals the number of distinct non-empty prefixes stored.
func (c *CachedOracle) Size() int {
	c.cache.mu.Lock()
	defer c.cache.mu.Unlock()
	var count func(*cacheNode) int
	count = func(n *cacheNode) int {
		total := 0
		for _, ch := range n.children {
			total += 1 + count(ch)
		}
		return total
	}
	return count(&c.cache.root)
}

func (c *Cache) lookup(word []string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &c.root
	out := make([]string, 0, len(word))
	for _, in := range word {
		ch, ok := n.children[in]
		if !ok {
			return nil, false
		}
		out = append(out, ch.output)
		n = ch
	}
	return out, true
}

func (c *Cache) store(word, out []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &c.root
	for i, in := range word {
		if n.children == nil {
			n.children = make(map[string]*cacheNode)
		}
		ch, ok := n.children[in]
		if !ok {
			ch = &cacheNode{output: out[i]}
			n.children[in] = ch
		}
		n = ch
	}
}
