package learn

import (
	"testing"

	"repro/internal/automata"
)

func TestPassiveLearnFromCharacteristicLogs(t *testing.T) {
	truth := tcpModel()
	// Characteristic sample: every access sequence extended by every input
	// and every distinguishing suffix — what good logs would contain.
	oracle := MealyOracle(truth)
	var logs []IOTracePair
	access := truth.AccessSequences()
	wset := truth.CharacterizingSet()
	for _, acc := range access {
		for _, in := range truth.Inputs() {
			for _, suf := range wset {
				word := append(append(append([]string(nil), acc...), in), suf...)
				// Lengthen with one more round of inputs for fold evidence.
				for _, in2 := range truth.Inputs() {
					w2 := append(append([]string(nil), word...), in2)
					out, err := oracle.Query(bg, w2)
					if err != nil {
						t.Fatal(err)
					}
					logs = append(logs, IOTracePair{Inputs: w2, Outputs: out})
				}
			}
		}
	}
	m, err := PassiveLearn(logs, truth.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	// Passive learning must be consistent with every log.
	for _, lg := range logs {
		out, ok := m.Run(lg.Inputs)
		if !ok {
			t.Fatalf("learned machine rejects logged word %v", lg.Inputs)
		}
		for i := range out {
			if out[i] != lg.Outputs[i] {
				t.Fatalf("learned machine contradicts log at %v step %d", lg.Inputs, i)
			}
		}
	}
	// With a characteristic sample it should recover the target exactly.
	min := m.Minimize()
	if min.NumStates() != truth.NumStates() {
		t.Fatalf("passive learner found %d states, want %d", min.NumStates(), truth.NumStates())
	}
}

func TestPassiveLearnConsistentWithSparseLogs(t *testing.T) {
	truth := tcpModel()
	logs, err := TracesFromWalks(bg, MealyOracle(truth), truth.Inputs(), 40, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := PassiveLearn(logs, truth.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	for _, lg := range logs {
		out, ok := m.Run(lg.Inputs)
		if !ok {
			t.Fatalf("model rejects logged word %v", lg.Inputs)
		}
		for i := range out {
			if out[i] != lg.Outputs[i] {
				t.Fatalf("model contradicts log %v at %d: %q vs %q", lg.Inputs, i, out[i], lg.Outputs[i])
			}
		}
	}
	// Sparse logs over-generalize; the model must still be no larger than
	// the prefix tree and at least one state.
	if m.NumStates() < 1 {
		t.Fatal("empty model")
	}
}

func TestPassiveLearnRejectsInconsistentLogs(t *testing.T) {
	logs := []IOTracePair{
		{Inputs: []string{"a"}, Outputs: []string{"x"}},
		{Inputs: []string{"a"}, Outputs: []string{"y"}},
	}
	if _, err := PassiveLearn(logs, []string{"a"}); err == nil {
		t.Fatal("inconsistent logs accepted")
	}
	short := []IOTracePair{{Inputs: []string{"a", "b"}, Outputs: []string{"x"}}}
	if _, err := PassiveLearn(short, []string{"a", "b"}); err == nil {
		t.Fatal("short outputs accepted")
	}
}

// TestHybridPreloadReducesLiveQueries is the §8 hybrid: seeding the cache
// from logs cuts live traffic for the subsequent active learning session.
func TestHybridPreloadReducesLiveQueries(t *testing.T) {
	truth := tcpModel()

	var coldStats Stats
	cold := NewCache(Counting(MealyOracle(truth), &coldStats), &coldStats)
	if _, err := NewDTLearner(cold, truth.Inputs()).Learn(bg, &ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}

	logs, err := TracesFromWalks(bg, MealyOracle(truth), truth.Inputs(), 200, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	var warmStats Stats
	warm := NewCache(Counting(MealyOracle(truth), &warmStats), &warmStats)
	for _, lg := range logs {
		if err := warm.Preload(lg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewDTLearner(warm, truth.Inputs()).Learn(bg, &ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}
	if warmStats.Queries >= coldStats.Queries {
		t.Fatalf("preloading did not reduce live queries: %d (warm) vs %d (cold)",
			warmStats.Queries, coldStats.Queries)
	}
	t.Logf("live queries: cold=%d warm=%d (with %d logged walks)",
		coldStats.Queries, warmStats.Queries, len(logs))
}

func TestPreloadValidation(t *testing.T) {
	c := NewCache(MealyOracle(tcpModel()), nil)
	if err := c.Preload(IOTracePair{Inputs: []string{"a", "b"}, Outputs: []string{"x"}}); err == nil {
		t.Fatal("short preload accepted")
	}
}

// TestPassiveThenActive: use the passively-learned model as the first
// hypothesis check — if logs already determine the machine, the active
// phase only needs the equivalence confirmation.
func TestPassiveModelAgainstActive(t *testing.T) {
	truth := automata.NewMealy([]string{"a", "b"})
	s1 := truth.AddState()
	truth.SetTransition(0, "a", s1, "x")
	truth.SetTransition(0, "b", 0, "y")
	truth.SetTransition(s1, "a", 0, "z")
	truth.SetTransition(s1, "b", s1, "w")

	logs, err := TracesFromWalks(bg, MealyOracle(truth), truth.Inputs(), 60, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	passive, err := PassiveLearn(logs, truth.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := truth.Equivalent(passive.Minimize()); !eq {
		t.Fatalf("rich logs should determine this 2-state machine; differs on %v", ce)
	}
}
