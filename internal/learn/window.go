package learn

import (
	"context"
	"math"
	"sync"
	"time"
)

// WindowConfig parameterises the adaptive in-flight window.
type WindowConfig struct {
	// Min is the floor: the window never admits fewer than Min queries,
	// so progress is always possible. Values below 1 are raised to 1.
	Min int
	// Max is the cap, normally the number of pool shards — admitting
	// more than that would only queue. Values below Min are raised to
	// Min.
	Max int
	// Initial is the starting window. Zero means start at Min (slow
	// start from the floor); otherwise it is clamped into [Min, Max].
	Initial int
	// Increase is the additive-increase step credited per clean
	// completion, spread across one window's worth of completions
	// (cwnd += Increase/cwnd, the classic AIMD shape). Zero means 1.
	Increase float64
	// Decrease is the multiplicative-decrease factor applied on a loss
	// signal. Zero means 0.5; values are clamped into (0, 1).
	Decrease float64
}

func (c WindowConfig) normalized() WindowConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial == 0 {
		c.Initial = c.Min
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Increase == 0 {
		c.Increase = 1
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.5
	}
	return c
}

// WindowStats is a snapshot of a window's lifetime counters, surfaced in
// lab.Result.
type WindowStats struct {
	// Size is the current window size (admitted concurrency).
	Size int `json:"size"`
	// Min and Max echo the configured bounds.
	Min int `json:"min"`
	Max int `json:"max"`
	// Acquired counts queries admitted through the window.
	Acquired int64 `json:"acquired"`
	// Clean counts completions that fed additive increase.
	Clean int64 `json:"clean"`
	// Losses counts loss signals (guard escalations, timeouts) that fed
	// multiplicative decrease, whether or not a decrease resulted.
	Losses int64 `json:"losses"`
	// Decreases counts the multiplicative decreases actually applied
	// (loss signals inside an absorption epoch do not cut twice).
	Decreases int64 `json:"decreases"`
	// Resizes counts integer window-size changes in either direction.
	Resizes int64 `json:"resizes"`
	// SRTT is the smoothed per-query round-trip estimate.
	SRTT time.Duration `json:"srtt"`
}

// Window is a congestion-window-style limiter on in-flight membership
// queries: additive increase on clean completions, multiplicative decrease
// on loss signals (guard escalations, timeouts). It replaces the pool's
// fixed worker-count in-flight limit, so the in-flight budget follows the
// observed health of the link instead of a static flag.
//
// Decreases are epoch-guarded the way TCP reacts per-RTT rather than
// per-segment: after a cut, further loss signals are absorbed until a full
// window's worth of completions has passed, so one burst of losses costs
// one multiplicative step. The epoch is measured in completions — not wall
// time — which keeps the window's trajectory a pure function of the
// completion/loss sequence and makes property tests deterministic.
type Window struct {
	cfg WindowConfig

	mu   sync.Mutex
	cwnd float64 // fractional window; admitted size is floor(cwnd)
	used int     // queries currently admitted

	// completion-epoch guard for multiplicative decrease
	sinceCut  int64 // completions since the last cut
	epochSpan int64 // completions a cut absorbs (window size at cut time)

	srtt  time.Duration
	stats WindowStats

	// wake is closed and replaced whenever capacity may have appeared,
	// broadcasting to all blocked Acquire calls.
	wake chan struct{}

	obs Observer
}

// NewWindow builds a Window from cfg (see WindowConfig for defaulting).
// The observer, if non-nil, receives a WindowResized event whenever the
// integer window size changes.
func NewWindow(cfg WindowConfig, obs Observer) *Window {
	cfg = cfg.normalized()
	metricWindowSize.Set(float64(cfg.Initial))
	return &Window{
		cfg:  cfg,
		cwnd: float64(cfg.Initial),
		wake: make(chan struct{}),
		obs:  obs,
	}
}

// Size returns the current admitted window size.
func (w *Window) Size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size()
}

func (w *Window) size() int {
	s := int(w.cwnd)
	if s < w.cfg.Min {
		s = w.cfg.Min
	}
	if s > w.cfg.Max {
		s = w.cfg.Max
	}
	return s
}

// Acquire blocks until the window admits another in-flight query or ctx is
// done. Every successful Acquire must be paired with exactly one Release.
func (w *Window) Acquire(ctx context.Context) error {
	for {
		w.mu.Lock()
		if w.used < w.size() {
			w.used++
			w.stats.Acquired++
			w.mu.Unlock()
			return nil
		}
		wake := w.wake
		w.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Release returns an in-flight slot. A clean completion (clean == true)
// feeds additive increase and, with rtt > 0, the smoothed RTT estimate; a
// dirty completion only frees the slot — the loss itself is reported
// separately through OnLoss, typically by the guard observer.
func (w *Window) Release(clean bool, rtt time.Duration) {
	w.mu.Lock()
	before := w.size()
	if w.used > 0 {
		w.used--
	}
	if clean {
		w.stats.Clean++
		w.sinceCut++
		w.cwnd += w.cfg.Increase / math.Max(w.cwnd, 1)
		if w.cwnd > float64(w.cfg.Max) {
			w.cwnd = float64(w.cfg.Max)
		}
	}
	if rtt > 0 {
		if w.srtt == 0 {
			w.srtt = rtt
		} else {
			w.srtt += (rtt - w.srtt) / 8
		}
		w.stats.SRTT = w.srtt
	}
	w.finishLocked(before)
}

// OnLoss reports a loss signal: a guard escalation, a query timeout, or
// any other sign the link is struggling. Inside a decrease epoch the
// signal is absorbed; otherwise the window is cut multiplicatively.
func (w *Window) OnLoss() {
	w.mu.Lock()
	before := w.size()
	w.stats.Losses++
	if w.sinceCut >= w.epochSpan {
		w.cwnd *= w.cfg.Decrease
		if w.cwnd < float64(w.cfg.Min) {
			w.cwnd = float64(w.cfg.Min)
		}
		w.stats.Decreases++
		metricWindowDecreases.Inc()
		w.sinceCut = 0
		w.epochSpan = int64(w.size())
	}
	w.finishLocked(before)
}

// finishLocked wakes waiters, emits a resize event when the integer size
// moved, and unlocks. Events are delivered outside the lock so observers
// may call back into the window.
func (w *Window) finishLocked(before int) {
	after := w.size()
	var ev *WindowResized
	if after != before {
		w.stats.Resizes++
		metricWindowSize.Set(float64(after))
		ev = &WindowResized{From: before, To: after, SRTT: w.srtt}
	}
	w.stats.Size = after
	w.stats.Min, w.stats.Max = w.cfg.Min, w.cfg.Max
	// Broadcast: capacity may have appeared (slot freed or window grown).
	close(w.wake)
	w.wake = make(chan struct{})
	obs := w.obs
	w.mu.Unlock()
	if ev != nil && obs != nil {
		obs.OnEvent(*ev)
	}
}

// Stats returns a snapshot of the window counters.
func (w *Window) Stats() WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Size = w.size()
	st.Min, st.Max = w.cfg.Min, w.cfg.Max
	st.SRTT = w.srtt
	return st
}
