package learn

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/automata"
)

// bg is the default context for tests that never cancel.
var bg = context.Background()

// tcpModel is the 6-state-style fragment used as ground truth in tests.
func tcpModel() *automata.Mealy {
	m := automata.NewMealy([]string{"SYN", "ACK", "FIN"})
	s0 := m.Initial()
	s1 := m.AddState()
	s2 := m.AddState()
	s3 := m.AddState()
	m.SetTransition(s0, "SYN", s1, "SYN+ACK")
	m.SetTransition(s0, "ACK", s0, "RST")
	m.SetTransition(s0, "FIN", s0, "RST")
	m.SetTransition(s1, "SYN", s1, "NIL")
	m.SetTransition(s1, "ACK", s2, "NIL")
	m.SetTransition(s1, "FIN", s0, "RST")
	m.SetTransition(s2, "SYN", s2, "ACK")
	m.SetTransition(s2, "ACK", s2, "NIL")
	m.SetTransition(s2, "FIN", s3, "ACK+FIN")
	m.SetTransition(s3, "SYN", s3, "NIL")
	m.SetTransition(s3, "ACK", s3, "NIL")
	m.SetTransition(s3, "FIN", s3, "NIL")
	return m
}

type learner interface {
	Learn(context.Context, EquivalenceOracle) (*automata.Mealy, error)
}

func learners(o Oracle, inputs []string) map[string]learner {
	return map[string]learner{
		"lstar": NewLStar(o, inputs),
		"dtree": NewDTLearner(o, inputs),
	}
}

func TestLearnersRecoverTCPModel(t *testing.T) {
	truth := tcpModel()
	for name, l := range learners(MealyOracle(truth), truth.Inputs()) {
		t.Run(name, func(t *testing.T) {
			hyp, err := l.Learn(bg, &ModelOracle{Model: truth})
			if err != nil {
				t.Fatal(err)
			}
			if hyp.NumStates() != truth.NumStates() {
				t.Fatalf("learned %d states, want %d", hyp.NumStates(), truth.NumStates())
			}
			if eq, ce := truth.Equivalent(hyp); !eq {
				t.Fatalf("learned model differs on %v", ce)
			}
		})
	}
}

func TestLearnersWithRandomEquivalence(t *testing.T) {
	truth := tcpModel()
	for name, mk := range map[string]func(Oracle) learner{
		"lstar": func(o Oracle) learner { return NewLStar(o, truth.Inputs()) },
		"dtree": func(o Oracle) learner { return NewDTLearner(o, truth.Inputs()) },
	} {
		t.Run(name, func(t *testing.T) {
			o := MealyOracle(truth)
			hyp, err := mk(o).Learn(bg, NewRandomWordsOracle(o, truth.Inputs(), 7))
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := truth.Equivalent(hyp); !eq {
				t.Fatalf("learned model differs on %v", ce)
			}
		})
	}
}

func TestLearnersWithWMethod(t *testing.T) {
	truth := tcpModel()
	o := MealyOracle(truth)
	eqo := &WMethodOracle{Oracle: o, Inputs: truth.Inputs(), Depth: 2}
	for name, l := range learners(o, truth.Inputs()) {
		t.Run(name, func(t *testing.T) {
			hyp, err := l.Learn(bg, eqo)
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := truth.Equivalent(hyp); !eq {
				t.Fatalf("learned model differs on %v", ce)
			}
		})
	}
}

func randomTotalMealy(r *rand.Rand, states int, inputs, outputs []string) *automata.Mealy {
	m := automata.NewMealy(inputs)
	for m.NumStates() < states {
		m.AddState()
	}
	for s := 0; s < states; s++ {
		for _, in := range inputs {
			m.SetTransition(automata.State(s), in, automata.State(r.Intn(states)), outputs[r.Intn(len(outputs))])
		}
	}
	return m
}

// Property: both learners recover any random machine exactly (up to
// minimality) when driven by a perfect equivalence oracle.
func TestPropertyLearnersExact(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 2
		truth := randomTotalMealy(r, n, []string{"a", "b"}, []string{"0", "1"}).Minimize()
		for _, mk := range []func(Oracle) learner{
			func(o Oracle) learner { return NewLStar(o, truth.Inputs()) },
			func(o Oracle) learner { return NewDTLearner(o, truth.Inputs()) },
		} {
			hyp, err := mk(MealyOracle(truth)).Learn(bg, &ModelOracle{Model: truth})
			if err != nil {
				return false
			}
			if hyp.NumStates() != truth.NumStates() {
				return false
			}
			if eq, _ := truth.Equivalent(hyp); !eq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheAvoidsRepeatQueries(t *testing.T) {
	truth := tcpModel()
	var st Stats
	counted := Counting(MealyOracle(truth), &st)
	cached := NewCache(counted, &st)

	w := []string{"SYN", "ACK", "FIN"}
	first, err := cached.Query(bg, w)
	if err != nil {
		t.Fatal(err)
	}
	live := st.Queries
	second, err := cached.Query(bg, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != live {
		t.Fatalf("second identical query hit the oracle (%d -> %d)", live, st.Queries)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache returned different answer: %v vs %v", first, second)
	}
	// A prefix of a cached word is also served from cache.
	if _, err := cached.Query(bg, w[:2]); err != nil {
		t.Fatal(err)
	}
	if st.Queries != live {
		t.Fatal("prefix query hit the oracle")
	}
	if cached.Size() != 3 {
		t.Fatalf("cache size = %d, want 3", cached.Size())
	}
}

func TestCachedLearningReducesLiveQueries(t *testing.T) {
	truth := tcpModel()
	var raw, cachedStats Stats

	_, err := NewLStar(Counting(MealyOracle(truth), &raw), truth.Inputs()).
		Learn(bg, &ModelOracle{Model: truth})
	if err != nil {
		t.Fatal(err)
	}

	cached := NewCache(Counting(MealyOracle(truth), &cachedStats), &cachedStats)
	_, err = NewLStar(cached, truth.Inputs()).Learn(bg, &ModelOracle{Model: truth})
	if err != nil {
		t.Fatal(err)
	}
	if cachedStats.Queries >= raw.Queries {
		t.Fatalf("cache did not reduce live queries: %d (cached) vs %d (raw)", cachedStats.Queries, raw.Queries)
	}
}

func TestShortOutputRejected(t *testing.T) {
	bad := OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
		return []string{"only-one"}, nil
	})
	_, err := query(bg, bad, []string{"a", "b"})
	if err == nil {
		t.Fatal("short output word must be rejected")
	}
}

func TestRandomOracleFindsInjectedDifference(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(2, "FIN", 3, "WRONG")
	eqo := NewRandomWordsOracle(MealyOracle(truth), truth.Inputs(), 3)
	ce, err := eqo.FindCounterexample(bg, hyp)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("random oracle missed a reachable difference")
	}
	sys, _ := truth.Run(ce)
	hout, _ := hyp.Run(ce)
	if reflect.DeepEqual(sys, hout) {
		t.Fatalf("returned word %v is not a counterexample", ce)
	}
}

func TestWMethodProvesEquivalence(t *testing.T) {
	truth := tcpModel()
	eqo := &WMethodOracle{Oracle: MealyOracle(truth), Inputs: truth.Inputs(), Depth: 1}
	ce, err := eqo.FindCounterexample(bg, truth.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("W-method found a counterexample between identical machines: %v", ce)
	}
}

func TestChainOracleOrder(t *testing.T) {
	truth := tcpModel()
	hyp := truth.Clone()
	hyp.SetTransition(0, "SYN", 1, "WRONG")
	calls := 0
	probe := eqFunc(func(h *automata.Mealy) ([]string, error) {
		calls++
		return nil, nil
	})
	model := &ModelOracle{Model: truth}
	ce, err := ChainOracle{probe, model}.FindCounterexample(bg, hyp)
	if err != nil || ce == nil {
		t.Fatalf("chain failed: ce=%v err=%v", ce, err)
	}
	if calls != 1 {
		t.Fatalf("first oracle called %d times, want 1", calls)
	}
}

type eqFunc func(*automata.Mealy) ([]string, error)

func (f eqFunc) FindCounterexample(ctx context.Context, h *automata.Mealy) ([]string, error) {
	return f(h)
}

// Ablation-relevant check: with the query cache in front (the deployment
// configuration), the discrimination-tree learner needs no more live
// queries than L* on the same target.
func TestDTreeNotWorseThanLStarCached(t *testing.T) {
	truth := tcpModel()
	var lsStats, dtStats Stats
	lsOracle := NewCache(Counting(MealyOracle(truth), &lsStats), &lsStats)
	if _, err := NewLStar(lsOracle, truth.Inputs()).
		Learn(bg, &ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}
	dtOracle := NewCache(Counting(MealyOracle(truth), &dtStats), &dtStats)
	if _, err := NewDTLearner(dtOracle, truth.Inputs()).
		Learn(bg, &ModelOracle{Model: truth}); err != nil {
		t.Fatal(err)
	}
	if dtStats.Queries > lsStats.Queries {
		t.Fatalf("cached dtree used more live queries than cached lstar: %d vs %d", dtStats.Queries, lsStats.Queries)
	}
	t.Logf("live queries: lstar=%d dtree=%d", lsStats.Queries, dtStats.Queries)
}
