package learn

import (
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T, dir, key string) *Store {
	t.Helper()
	st, err := OpenStore(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestMergeStoresLastWriteWins: conflicting answers across sources
// resolve to the latest source's answer — the same clobber rule the
// cache preload applies within one log.
func TestMergeStoresLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	dst := openTestStore(t, dir, "merged")
	src1 := openTestStore(t, dir, "w1")
	src2 := openTestStore(t, dir, "w2")

	word := []string{"initial", "handshake"}
	if err := src1.Append(word, []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	if err := src1.Append([]string{"only-w1"}, []string{"X"}); err != nil {
		t.Fatal(err)
	}
	if err := src2.Append(word, []string{"A", "B2"}); err != nil {
		t.Fatal(err)
	}

	n, err := MergeStores(dst, src1, src2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("merged %d entries, want 3", n)
	}
	if out, ok := dst.Answer(word); !ok || out[1] != "B2" {
		t.Fatalf("conflicting word resolved to %v ok=%v, want later source's [A B2]", out, ok)
	}
	if out, ok := dst.Answer([]string{"only-w1"}); !ok || out[0] != "X" {
		t.Fatalf("unconflicted word lost: %v ok=%v", out, ok)
	}

	// The merge is durable: a fresh open of the merged log replays the
	// same winners. (The explicit Close drops the only reference; the
	// Cleanup-registered close on a fully-closed store is a no-op.)
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := openTestStore(t, dir, "merged")
	if out, ok := reopened.Answer(word); !ok || out[1] != "B2" {
		t.Fatalf("reopened merged store answered %v ok=%v", out, ok)
	}
}

// TestMergeStoresCorruptTailSource: a source whose log was truncated
// mid-append contributes its valid prefix and nothing else.
func TestMergeStoresCorruptTailSource(t *testing.T) {
	dir := t.TempDir()
	src := openTestStore(t, dir, "crashy")
	if err := src.Append([]string{"good"}, []string{"ok"}); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append by gluing a torn line onto the closed
	// log file directly.
	path := filepath.Join(dir, "crashy.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"in":["torn"],"out":["tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened := openTestStore(t, dir, "crashy")
	dst := openTestStore(t, dir, "merged")
	n, err := MergeStores(dst, reopened)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("merged %d entries from corrupt-tailed source, want 1", n)
	}
	if _, ok := dst.Answer([]string{"torn"}); ok {
		t.Fatal("torn entry survived the merge")
	}
	if out, ok := dst.Answer([]string{"good"}); !ok || out[0] != "ok" {
		t.Fatalf("valid prefix lost: %v ok=%v", out, ok)
	}
}

// TestMergeStoresSelfAndNil: degenerate arguments are ignored rather
// than deadlocking (dst == src would self-append forever) or panicking.
func TestMergeStoresSelfAndNil(t *testing.T) {
	dir := t.TempDir()
	dst := openTestStore(t, dir, "dst")
	if err := dst.Append([]string{"a"}, []string{"1"}); err != nil {
		t.Fatal(err)
	}
	n, err := MergeStores(dst, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("self/nil merge appended %d entries", n)
	}
	if dst.Entries() != 1 {
		t.Fatalf("dst grew to %d entries", dst.Entries())
	}
}
