package learn

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// drive applies a seeded clean/loss sequence to a fresh window and returns
// the size trajectory (one entry per event).
func drive(cfg WindowConfig, seed int64, events int, lossRate float64) []int {
	w := NewWindow(cfg, nil)
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, 0, events)
	for i := 0; i < events; i++ {
		if rng.Float64() < lossRate {
			w.OnLoss()
		} else {
			w.Release(true, 0)
		}
		sizes = append(sizes, w.Size())
	}
	return sizes
}

// TestWindowProperties is the table-driven property check of the AIMD
// window: the cap and the floor are respected on every trajectory, clean
// completions never shrink the window, and losses never grow it.
func TestWindowProperties(t *testing.T) {
	cases := []struct {
		name     string
		cfg      WindowConfig
		seed     int64
		lossRate float64
	}{
		{"clean-link", WindowConfig{Min: 1, Max: 8}, 1, 0},
		{"light-loss", WindowConfig{Min: 1, Max: 8}, 2, 0.05},
		{"heavy-loss", WindowConfig{Min: 2, Max: 16, Initial: 16}, 3, 0.5},
		{"loss-only", WindowConfig{Min: 1, Max: 4, Initial: 4}, 4, 1},
		{"tight-bounds", WindowConfig{Min: 3, Max: 3}, 5, 0.2},
		{"aggressive-cut", WindowConfig{Min: 1, Max: 32, Initial: 32, Decrease: 0.1}, 6, 0.1},
		{"gentle-growth", WindowConfig{Min: 1, Max: 32, Increase: 0.25}, 7, 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.normalized()
			w := NewWindow(tc.cfg, nil)
			rng := rand.New(rand.NewSource(tc.seed))
			prev := w.Size()
			if prev < cfg.Min || prev > cfg.Max {
				t.Fatalf("initial size %d outside [%d, %d]", prev, cfg.Min, cfg.Max)
			}
			for i := 0; i < 5000; i++ {
				loss := rng.Float64() < tc.lossRate
				if loss {
					w.OnLoss()
				} else {
					w.Release(true, 0)
				}
				s := w.Size()
				if s < cfg.Min {
					t.Fatalf("event %d: size %d below floor %d", i, s, cfg.Min)
				}
				if s > cfg.Max {
					t.Fatalf("event %d: size %d above cap %d", i, s, cfg.Max)
				}
				// AIMD monotonicity per event kind.
				if loss && s > prev {
					t.Fatalf("event %d: loss grew the window %d -> %d", i, prev, s)
				}
				if !loss && s < prev {
					t.Fatalf("event %d: clean completion shrank the window %d -> %d", i, prev, s)
				}
				prev = s
			}
		})
	}
}

// TestWindowDeterministicUnderSeededLoss pins that the window trajectory
// is a pure function of the completion/loss sequence: same seed, same
// trajectory; different seeds, (almost surely) different ones.
func TestWindowDeterministicUnderSeededLoss(t *testing.T) {
	cfg := WindowConfig{Min: 1, Max: 12}
	a := drive(cfg, 42, 2000, 0.07)
	b := drive(cfg, 42, 2000, 0.07)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: same seed diverged, %d vs %d", i, a[i], b[i])
		}
	}
}

// TestWindowGrowsToCapWhenClean pins additive increase: a clean link
// saturates the cap.
func TestWindowGrowsToCapWhenClean(t *testing.T) {
	w := NewWindow(WindowConfig{Min: 1, Max: 8}, nil)
	for i := 0; i < 200; i++ {
		w.Release(true, 0)
	}
	if got := w.Size(); got != 8 {
		t.Fatalf("clean window stuck at %d, want cap 8", got)
	}
}

// TestWindowDecreaseEpoch pins that a burst of losses costs one
// multiplicative cut: further signals are absorbed until a window's worth
// of completions has passed.
func TestWindowDecreaseEpoch(t *testing.T) {
	w := NewWindow(WindowConfig{Min: 1, Max: 16, Initial: 16}, nil)
	for i := 0; i < 10; i++ {
		w.OnLoss()
	}
	if got := w.Size(); got != 8 {
		t.Fatalf("loss burst cut window to %d, want one halving to 8", got)
	}
	st := w.Stats()
	if st.Decreases != 1 || st.Losses != 10 {
		t.Fatalf("stats after burst = %d decreases / %d losses, want 1 / 10", st.Decreases, st.Losses)
	}
	// A window's worth of completions ends the epoch; the next loss cuts.
	for i := 0; i < 8; i++ {
		w.Release(true, 0)
	}
	w.OnLoss()
	if got := w.Stats().Decreases; got != 2 {
		t.Fatalf("post-epoch loss did not cut (decreases = %d)", got)
	}
}

// TestWindowNeverDeadlocksAtMinimum floods a Min-sized window with more
// concurrent askers than slots: every Acquire must eventually succeed.
func TestWindowNeverDeadlocksAtMinimum(t *testing.T) {
	w := NewWindow(WindowConfig{Min: 1, Max: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := w.Acquire(ctx); err != nil {
					errs <- err
					return
				}
				w.OnLoss() // keep pressure on the floor
				w.Release(i%3 != 0, 0)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("Acquire failed under pressure at the floor: %v", err)
	}
}

// TestWindowConcurrentUpdates is the race test: window updates arriving
// concurrently from many pool shards, with resize events observed, while
// sizes stay inside bounds. Run under -race in CI.
func TestWindowConcurrentUpdates(t *testing.T) {
	var mu sync.Mutex
	resizes := 0
	obs := ObserverFunc(func(ev Event) {
		if r, ok := ev.(WindowResized); ok {
			mu.Lock()
			resizes++
			mu.Unlock()
			if r.To < 2 || r.To > 8 {
				t.Errorf("resize to %d outside [2, 8]", r.To)
			}
		}
	})
	w := NewWindow(WindowConfig{Min: 2, Max: 8}, obs)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				if err := w.Acquire(ctx); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if rng.Float64() < 0.1 {
					w.OnLoss()
				}
				w.Release(true, time.Duration(rng.Intn(1000))*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Acquired != 8*300 {
		t.Fatalf("acquired %d, want %d", st.Acquired, 8*300)
	}
	if st.Size < 2 || st.Size > 8 {
		t.Fatalf("final size %d outside [2, 8]", st.Size)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(resizes) != st.Resizes {
		t.Fatalf("observed %d resize events, stats say %d", resizes, st.Resizes)
	}
}

// TestPoolWithWindowLimitsConcurrency checks the pool integration: with a
// window pinned at 2, no more than 2 of the 4 shards are ever in flight.
func TestPoolWithWindowLimitsConcurrency(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	mk := func() Oracle {
		return OracleFunc(func(ctx context.Context, word []string) ([]string, error) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return make([]string, len(word)), nil
		})
	}
	p := NewPool(mk(), mk(), mk(), mk())
	p.UseWindow(NewWindow(WindowConfig{Min: 2, Max: 2}, nil))
	words := make([][]string, 40)
	for i := range words {
		words[i] = []string{"a"}
	}
	if _, err := p.QueryBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Fatalf("peak in-flight %d exceeds pinned window 2", peak)
	}
	if st := p.Window().Stats(); st.Acquired != 40 {
		t.Fatalf("window admitted %d queries, want 40", st.Acquired)
	}
}
