package learn

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one typed progress notification from a learning run. Events are
// emitted by the learners at their MAT-loop synchronisation points and by
// the experiment driver (cache snapshots, nondeterminism reports), so a
// long-running run is observable while it is still in flight instead of
// only reporting when it finishes.
type Event interface {
	// Kind returns the stable machine-readable event name used in logs
	// and JSONL streams.
	Kind() string
}

// RoundStarted marks the beginning of one MAT round (hypothesis
// construction followed by an equivalence query).
type RoundStarted struct {
	Round int `json:"round"`
}

// Kind implements Event.
func (RoundStarted) Kind() string { return "round_started" }

// HypothesisReady reports a freshly constructed hypothesis.
type HypothesisReady struct {
	Round       int `json:"round"`
	States      int `json:"states"`
	Transitions int `json:"transitions"`
}

// Kind implements Event.
func (HypothesisReady) Kind() string { return "hypothesis_ready" }

// CounterexampleFound reports that the equivalence search refuted the
// current hypothesis with the given word.
type CounterexampleFound struct {
	Round int      `json:"round"`
	Word  []string `json:"word"`
}

// Kind implements Event.
func (CounterexampleFound) Kind() string { return "counterexample_found" }

// CacheSnapshot reports the query cache and live-traffic counters, emitted
// once per round by the experiment driver after each hypothesis.
type CacheSnapshot struct {
	Round       int   `json:"round"`
	Entries     int   `json:"entries"`
	LiveQueries int64 `json:"live_queries"`
	Symbols     int64 `json:"symbols"`
	Hits        int64 `json:"hits"`
}

// Kind implements Event.
func (CacheSnapshot) Kind() string { return "cache_snapshot" }

// NondeterminismDetected reports that the §5 voting guard halted the run:
// repeated executions of Word disagreed beyond the certainty threshold.
type NondeterminismDetected struct {
	Word         []string `json:"word"`
	Alternatives int      `json:"alternatives"`
	Votes        int      `json:"votes"`
}

// Kind implements Event.
func (NondeterminismDetected) Kind() string { return "nondeterminism_detected" }

// GuardEscalated reports that the adaptive voting guard raised the vote
// budget of one query: the votes cast so far disagreed without reaching a
// verdict, so the guard keeps voting up to Budget. EWMA is the observed
// disagreement rate driving the starting budget of future queries — on a
// flaky link it climbs, pre-provisioning votes where they will be needed;
// on a clean streak it decays back and the guard returns to MinVotes.
type GuardEscalated struct {
	Word   []string `json:"word"`
	Votes  int      `json:"votes"`
	Budget int      `json:"budget"`
	EWMA   float64  `json:"ewma"`
}

// Kind implements Event.
func (GuardEscalated) Kind() string { return "guard_escalated" }

// WindowResized reports that the adaptive in-flight window changed size:
// additive increase grew it past the next integer, or a loss signal cut it
// multiplicatively. SRTT is the smoothed per-query round-trip estimate at
// the moment of the resize (zero before the first timed completion).
type WindowResized struct {
	From int           `json:"from"`
	To   int           `json:"to"`
	SRTT time.Duration `json:"srtt"`
}

// Kind implements Event.
func (WindowResized) Kind() string { return "window_resized" }

// AdapterRestarted reports that one worker's external adapter
// subprocess was restarted (crash, query deadline, or protocol desync)
// and its in-flight word replayed. Restarts is the worker's lifetime
// restart count; Reason is the failure that triggered this one.
type AdapterRestarted struct {
	Worker   int    `json:"worker"`
	Restarts int    `json:"restarts"`
	Reason   string `json:"reason"`
}

// Kind implements Event.
func (AdapterRestarted) Kind() string { return "adapter_restarted" }

// Observer receives learning events. OnEvent may be called from the
// learner's goroutine while queries are in flight, and — in a campaign —
// from several runs at once; implementations shared across runs must be
// safe for concurrent use.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// MultiObserver fans every event out to all given observers (nils are
// skipped).
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	return ObserverFunc(func(e Event) {
		for _, o := range live {
			o.OnEvent(e)
		}
	})
}

// notify delivers e to obs if an observer is installed.
func notify(obs Observer, e Event) {
	if obs != nil {
		obs.OnEvent(e)
	}
}

// JSONLObserver streams events as JSON lines — one object per event with
// an "event" tag and the event payload under "data". It is safe for
// concurrent use, so one stream can serve a whole campaign.
type JSONLObserver struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLObserver returns an observer writing JSON lines to w.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{enc: json.NewEncoder(w)}
}

// OnEvent implements Observer. Encoding errors are dropped: the event
// stream is diagnostics, never control flow.
func (o *JSONLObserver) OnEvent(e Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	_ = o.enc.Encode(struct {
		Event string `json:"event"`
		Data  Event  `json:"data"`
	}{e.Kind(), e})
}
