package learn

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/automata"
)

// This file implements the future-work direction of the paper's §8: "in
// cases where access to logs is possible ... the learning process could be
// sped up using a combination of passive and active learning". Two pieces:
//
//   - PassiveLearn: an RPNI-style state-merging learner that infers a Mealy
//     machine from logged I/O traces alone (no queries).
//   - (*CachedOracle).Preload: seeds the active learner's query cache from
//     logs, so logged behaviour is never re-queried live.

// IOTracePair is one logged run: inputs and the outputs they produced.
type IOTracePair struct {
	Inputs  []string
	Outputs []string
}

// ptaNode is a node of the prefix tree acceptor.
type ptaNode struct {
	children map[string]*ptaNode
	outputs  map[string]string
}

// BuildPTA folds traces into a prefix tree acceptor, failing on
// inconsistent logs (same input prefix, different outputs).
func buildPTA(traces []IOTracePair) (*ptaNode, error) {
	root := newPTANode()
	for _, tr := range traces {
		if len(tr.Outputs) < len(tr.Inputs) {
			return nil, fmt.Errorf("learn: trace with %d inputs but %d outputs", len(tr.Inputs), len(tr.Outputs))
		}
		n := root
		for i, in := range tr.Inputs {
			if out, ok := n.outputs[in]; ok && out != tr.Outputs[i] {
				return nil, fmt.Errorf("learn: inconsistent logs at %v: %q vs %q",
					tr.Inputs[:i+1], out, tr.Outputs[i])
			}
			n.outputs[in] = tr.Outputs[i]
			child, ok := n.children[in]
			if !ok {
				child = newPTANode()
				n.children[in] = child
			}
			n = child
		}
	}
	return root, nil
}

func newPTANode() *ptaNode {
	return &ptaNode{children: map[string]*ptaNode{}, outputs: map[string]string{}}
}

// PassiveLearn infers a Mealy machine from logged traces by state merging:
// it builds the prefix tree acceptor and folds each state into the earliest
// compatible established state (RPNI's red-blue strategy adapted to Mealy
// semantics: two states are compatible when no common suffix disagrees on
// outputs). The result is consistent with every log; with characteristic
// logs it is the target machine. inputs fixes the alphabet (and its order).
func PassiveLearn(traces []IOTracePair, inputs []string) (*automata.Mealy, error) {
	root, err := buildPTA(traces)
	if err != nil {
		return nil, err
	}

	var red []*ptaNode // established (merged-into) states, in BFS order
	merged := map[*ptaNode]*ptaNode{}
	resolve := func(n *ptaNode) *ptaNode {
		for {
			m, ok := merged[n]
			if !ok {
				return n
			}
			n = m
		}
	}

	red = append(red, root)
	queue := []*ptaNode{root}
	for len(queue) > 0 {
		n := resolve(queue[0])
		queue = queue[1:]
		// Visit children in alphabet order for determinism.
		for _, in := range inputs {
			child, ok := n.children[in]
			if !ok {
				continue
			}
			child = resolve(child)
			if isRed(red, child) {
				continue
			}
			target := (*ptaNode)(nil)
			for _, r := range red {
				if compatible(r, child, resolve) {
					target = r
					break
				}
			}
			if target != nil {
				fold(target, child, merged, resolve)
			} else {
				red = append(red, child)
				queue = append(queue, child)
			}
		}
	}

	// Emit the quotient machine over red states.
	m := automata.NewMealy(inputs)
	index := map[*ptaNode]automata.State{red[0]: m.Initial()}
	for _, r := range red[1:] {
		index[r] = m.AddState()
	}
	for _, r := range red {
		// Sort for deterministic emission.
		ins := make([]string, 0, len(r.outputs))
		for in := range r.outputs {
			ins = append(ins, in)
		}
		sort.Strings(ins)
		for _, in := range ins {
			child, ok := r.children[in]
			if !ok {
				continue
			}
			to, ok := index[resolve(child)]
			if !ok {
				// The child folded into a red state transitively.
				to = index[resolve(resolve(child))]
			}
			m.SetTransition(index[r], in, to, r.outputs[in])
		}
	}
	return m, nil
}

func isRed(red []*ptaNode, n *ptaNode) bool {
	for _, r := range red {
		if r == n {
			return true
		}
	}
	return false
}

// compatible reports whether merging b into a would contradict any logged
// output.
func compatible(a, b *ptaNode, resolve func(*ptaNode) *ptaNode) bool {
	a, b = resolve(a), resolve(b)
	if a == b {
		return true
	}
	for in, out := range b.outputs {
		if aout, ok := a.outputs[in]; ok && aout != out {
			return false
		}
	}
	for in, bc := range b.children {
		if ac, ok := a.children[in]; ok {
			if !compatible(ac, bc, resolve) {
				return false
			}
		}
	}
	return true
}

// fold merges b (and its subtree) into a.
func fold(a, b *ptaNode, merged map[*ptaNode]*ptaNode, resolve func(*ptaNode) *ptaNode) {
	a, b = resolve(a), resolve(b)
	if a == b {
		return
	}
	merged[b] = a
	for in, out := range b.outputs {
		if _, ok := a.outputs[in]; !ok {
			a.outputs[in] = out
		}
	}
	for in, bc := range b.children {
		if ac, ok := a.children[in]; ok {
			fold(ac, bc, merged, resolve)
		} else {
			a.children[in] = resolve(bc)
		}
	}
}

// Preload stores a logged run in the cache so the live system is never
// asked about logged behaviour again — the passive/active hybrid of §8.
func (c *CachedOracle) Preload(tr IOTracePair) error {
	if len(tr.Outputs) < len(tr.Inputs) {
		return fmt.Errorf("learn: preload trace with %d inputs but %d outputs", len(tr.Inputs), len(tr.Outputs))
	}
	c.cache.store(tr.Inputs, tr.Outputs[:len(tr.Inputs)])
	return nil
}

// TracesFromWalks generates logged runs by random-walking an oracle; used
// by tests and benchmarks to simulate captured traffic logs.
func TracesFromWalks(ctx context.Context, o Oracle, inputs []string, walks, length int, seed int64) ([]IOTracePair, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []IOTracePair
	for i := 0; i < walks; i++ {
		word := make([]string, length)
		for j := range word {
			word[j] = inputs[rng.Intn(len(inputs))]
		}
		outputs, err := o.Query(ctx, word)
		if err != nil {
			return nil, err
		}
		out = append(out, IOTracePair{Inputs: word, Outputs: outputs})
	}
	return out, nil
}
