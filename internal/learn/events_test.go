package learn

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// collector is a thread-safe event sink for tests.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) OnEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) byKind(kind string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestLearnerEmitsEventStream: a full learning run emits RoundStarted and
// HypothesisReady every round, CounterexampleFound for every refinement,
// and the final HypothesisReady matches the returned model.
func TestLearnerEmitsEventStream(t *testing.T) {
	truth := tcpModel()
	for name, mk := range map[string]func(Oracle, *collector) learner{
		"lstar": func(o Oracle, c *collector) learner {
			l := NewLStar(o, truth.Inputs())
			l.Observer = c
			return l
		},
		"dtree": func(o Oracle, c *collector) learner {
			d := NewDTLearner(o, truth.Inputs())
			d.Observer = c
			return d
		},
	} {
		t.Run(name, func(t *testing.T) {
			c := &collector{}
			model, err := mk(MealyOracle(truth), c).Learn(bg, &ModelOracle{Model: truth})
			if err != nil {
				t.Fatal(err)
			}
			rounds := c.byKind("round_started")
			hyps := c.byKind("hypothesis_ready")
			ces := c.byKind("counterexample_found")
			if len(rounds) == 0 || len(hyps) == 0 {
				t.Fatalf("missing round events: %d rounds, %d hypotheses", len(rounds), len(hyps))
			}
			if len(rounds) != len(hyps) {
				t.Fatalf("rounds (%d) and hypotheses (%d) out of step", len(rounds), len(hyps))
			}
			// Every round but the last was refuted. (L* may close the whole
			// table in round one — zero counterexamples is legal there; the
			// discrimination tree starts from one state and always needs
			// refinement on this 4-state target.)
			if name == "dtree" && len(ces) == 0 {
				t.Fatal("dtree run emitted no CounterexampleFound events")
			}
			if len(ces) != len(rounds)-1 {
				t.Fatalf("%d counterexamples for %d rounds, want rounds-1", len(ces), len(rounds))
			}
			final := hyps[len(hyps)-1].(HypothesisReady)
			if final.States != model.NumStates() || final.Transitions != model.NumTransitions() {
				t.Fatalf("final HypothesisReady %d/%d does not match model %d/%d",
					final.States, final.Transitions, model.NumStates(), model.NumTransitions())
			}
			for i, e := range rounds {
				if e.(RoundStarted).Round != i+1 {
					t.Fatalf("round %d numbered %d", i+1, e.(RoundStarted).Round)
				}
			}
		})
	}
}

// TestJSONLObserver: events stream as one JSON object per line with the
// kind tag and payload.
func TestJSONLObserver(t *testing.T) {
	var buf bytes.Buffer
	obs := NewJSONLObserver(&buf)
	obs.OnEvent(RoundStarted{Round: 1})
	obs.OnEvent(HypothesisReady{Round: 1, States: 4, Transitions: 12})
	obs.OnEvent(CounterexampleFound{Round: 1, Word: []string{"SYN", "FIN"}})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var first struct {
		Event string `json:"event"`
		Data  struct {
			Round int `json:"round"`
		} `json:"data"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Event != "round_started" || first.Data.Round != 1 {
		t.Fatalf("first line decoded as %+v", first)
	}
	var third struct {
		Event string `json:"event"`
		Data  struct {
			Word []string `json:"word"`
		} `json:"data"`
	}
	if err := json.Unmarshal(lines[2], &third); err != nil {
		t.Fatal(err)
	}
	if third.Event != "counterexample_found" || len(third.Data.Word) != 2 {
		t.Fatalf("third line decoded as %+v", third)
	}
}

// TestMultiObserverFansOut: every event reaches every sink; nils are
// tolerated.
func TestMultiObserverFansOut(t *testing.T) {
	a, b := &collector{}, &collector{}
	m := MultiObserver(a, nil, b)
	m.OnEvent(RoundStarted{Round: 7})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", len(a.events), len(b.events))
	}
}
