package learn

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/automata"
)

// LStar is Angluin's L* adapted to Mealy machines (Shahbaz–Groz style
// counterexample handling: all suffixes of a counterexample are added to
// the distinguishing set E, which keeps the observation table consistent by
// construction and avoids the consistency check of the classic algorithm).
type LStar struct {
	oracle Oracle
	inputs []string

	// Observer, when set, receives RoundStarted / HypothesisReady /
	// CounterexampleFound events as the MAT loop progresses.
	Observer Observer

	// Warm, when set, seeds the observation table from a previously
	// learned hypothesis (access words as S, its characterizing set in E)
	// instead of the one-row cold table — see warm.go. Ignored when the
	// hypothesis speaks a different alphabet.
	Warm *automata.Mealy

	// prefixes S: prefix-closed set of access words; rows for S ∪ S·Σ.
	prefixes [][]string
	suffixes [][]string // distinguishing suffixes E, each non-empty

	rows map[string][]string // key(prefix) -> concatenated outputs per suffix
}

// NewLStar returns an L* learner over the given input alphabet.
func NewLStar(o Oracle, inputs []string) *LStar {
	return &LStar{oracle: o, inputs: inputs}
}

func key(word []string) string { return strings.Join(word, "\x1f") }

// Learn runs the full MAT loop: build a closed table, form a hypothesis,
// ask eq for a counterexample, refine, repeat. It returns the final
// hypothesis when eq finds no counterexample, or ctx.Err() as soon as the
// context is cancelled mid-round.
func (l *LStar) Learn(ctx context.Context, eq EquivalenceOracle) (*automata.Mealy, error) {
	l.prefixes = [][]string{{}}
	l.suffixes = nil
	for _, in := range l.inputs {
		l.suffixes = append(l.suffixes, []string{in})
	}
	l.rows = make(map[string][]string)
	l.seedWarm(l.Warm)

	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		notify(l.Observer, RoundStarted{Round: round})
		if err := l.close(ctx); err != nil {
			return nil, err
		}
		hyp, err := l.hypothesis(ctx)
		if err != nil {
			return nil, err
		}
		notify(l.Observer, HypothesisReady{
			Round: round, States: hyp.NumStates(), Transitions: hyp.NumTransitions(),
		})
		ce, err := eq.FindCounterexample(ctx, hyp)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			return hyp, nil
		}
		notify(l.Observer, CounterexampleFound{Round: round, Word: ce})
		if err := l.refine(ctx, hyp, ce); err != nil {
			return nil, err
		}
	}
}

// row computes (and caches) the observation row of a prefix.
func (l *LStar) row(ctx context.Context, prefix []string) ([]string, error) {
	k := key(prefix)
	if r, ok := l.rows[k]; ok && len(r) == len(l.suffixes) {
		return r, nil
	}
	r := make([]string, len(l.suffixes))
	for i, suf := range l.suffixes {
		word := append(append([]string(nil), prefix...), suf...)
		out, err := query(ctx, l.oracle, word)
		if err != nil {
			return nil, fmt.Errorf("learn: membership query %v: %w", word, err)
		}
		r[i] = strings.Join(out[len(prefix):], "\x1f")
	}
	l.rows[k] = r
	return r, nil
}

// ensureRows materialises the observation rows of the given prefixes,
// emitting every missing table cell as one membership-query batch. With a
// BatchOracle underneath, this is where the observation table's work fans
// out across the SUL pool.
func (l *LStar) ensureRows(ctx context.Context, prefixes [][]string) error {
	type cell struct {
		key  string
		idx  int // suffix index within the row
		plen int // prefix length, to slice the suffix outputs
	}
	var words [][]string
	var cells []cell
	scheduled := make(map[string]bool)
	for _, p := range prefixes {
		k := key(p)
		if scheduled[k] {
			continue
		}
		if r, ok := l.rows[k]; ok && len(r) == len(l.suffixes) {
			continue
		}
		scheduled[k] = true
		for i, suf := range l.suffixes {
			words = append(words, concat(p, suf, nil))
			cells = append(cells, cell{key: k, idx: i, plen: len(p)})
		}
	}
	if len(words) == 0 {
		return nil
	}
	outs, err := queryAll(ctx, l.oracle, words)
	if err != nil {
		return fmt.Errorf("learn: membership batch: %w", err)
	}
	for j, c := range cells {
		r, ok := l.rows[c.key]
		if !ok || len(r) != len(l.suffixes) {
			r = make([]string, len(l.suffixes))
			l.rows[c.key] = r
		}
		r[c.idx] = strings.Join(outs[j][c.plen:], "\x1f")
	}
	return nil
}

// close extends S until every one-step extension row appears among S rows.
// Each round batches all missing cells of the S ∪ S·Σ rows before the
// closedness check, so a pooled oracle sees the table's whole frontier at
// once instead of one cell at a time.
func (l *LStar) close(ctx context.Context) error {
	for {
		want := make([][]string, 0, len(l.prefixes)*(len(l.inputs)+1))
		want = append(want, l.prefixes...)
		for _, p := range l.prefixes {
			for _, in := range l.inputs {
				want = append(want, append(append([]string(nil), p...), in))
			}
		}
		if err := l.ensureRows(ctx, want); err != nil {
			return err
		}
		index := make(map[string]bool)
		for _, p := range l.prefixes {
			r, err := l.row(ctx, p)
			if err != nil {
				return err
			}
			index[strings.Join(r, "\x1e")] = true
		}
		extended := false
		for _, p := range l.prefixes {
			for _, in := range l.inputs {
				ext := append(append([]string(nil), p...), in)
				r, err := l.row(ctx, ext)
				if err != nil {
					return err
				}
				if !index[strings.Join(r, "\x1e")] {
					l.prefixes = append(l.prefixes, ext)
					index[strings.Join(r, "\x1e")] = true
					extended = true
				}
			}
		}
		if !extended {
			return nil
		}
	}
}

// hypothesis builds the Mealy machine encoded by the closed table.
func (l *LStar) hypothesis(ctx context.Context) (*automata.Mealy, error) {
	// Map distinct rows to states; first occurrence in S order names the state.
	stateOf := make(map[string]automata.State)
	reps := make([][]string, 0)
	m := automata.NewMealy(l.inputs)
	for _, p := range l.prefixes {
		r, err := l.row(ctx, p)
		if err != nil {
			return nil, err
		}
		rk := strings.Join(r, "\x1e")
		if _, ok := stateOf[rk]; !ok {
			var s automata.State
			if len(reps) == 0 {
				s = m.Initial()
			} else {
				s = m.AddState()
			}
			stateOf[rk] = s
			reps = append(reps, p)
		}
	}
	// Batch the transition-output queries for every (prefix, input) pair.
	// Each word equals the p·[in] table cell, so with the cache on these
	// are all hits; with a raw pool they fan out in one round.
	exts := make([][]string, 0, len(l.prefixes)*len(l.inputs))
	for _, p := range l.prefixes {
		for _, in := range l.inputs {
			exts = append(exts, append(append([]string(nil), p...), in))
		}
	}
	extOuts, err := queryAll(ctx, l.oracle, exts)
	if err != nil {
		return nil, err
	}
	j := 0
	for _, p := range l.prefixes {
		r, _ := l.row(ctx, p)
		from := stateOf[strings.Join(r, "\x1e")]
		for _, in := range l.inputs {
			ext := exts[j]
			out := extOuts[j]
			j++
			extRow, err := l.row(ctx, ext)
			if err != nil {
				return nil, err
			}
			to, ok := stateOf[strings.Join(extRow, "\x1e")]
			if !ok {
				return nil, fmt.Errorf("learn: table not closed at %v", ext)
			}
			m.SetTransition(from, in, to, out[len(ext)-1])
		}
	}
	return m, nil
}

// refine incorporates a counterexample by adding all of its suffixes to E.
func (l *LStar) refine(ctx context.Context, hyp *automata.Mealy, ce []string) error {
	// Sanity: the counterexample must actually distinguish.
	sysOut, err := query(ctx, l.oracle, ce)
	if err != nil {
		return err
	}
	hypOut, _ := hyp.Run(ce)
	if strings.Join(sysOut, ",") == strings.Join(hypOut, ",") {
		return fmt.Errorf("learn: spurious counterexample %v", ce)
	}
	have := make(map[string]bool, len(l.suffixes))
	for _, s := range l.suffixes {
		have[key(s)] = true
	}
	added := false
	for i := 0; i < len(ce); i++ {
		suf := ce[i:]
		if !have[key(suf)] {
			l.suffixes = append(l.suffixes, append([]string(nil), suf...))
			have[key(suf)] = true
			added = true
		}
	}
	if !added {
		return fmt.Errorf("learn: counterexample %v added no new suffixes", ce)
	}
	// Invalidate cached rows; they are stale now that E grew.
	l.rows = make(map[string][]string)
	return nil
}
