package learn

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/automata"
)

// RandomWordsOracle is a heuristic equivalence oracle that tests the
// hypothesis against the system on randomly generated input words. As §4.1
// notes, a returned counterexample is always genuine, but finding none only
// gives probabilistic confidence.
type RandomWordsOracle struct {
	Oracle Oracle
	Inputs []string
	Words  int // number of random words to try per call
	MinLen int
	MaxLen int
	// Seed is the base of the per-hypothesis word streams: each
	// FindCounterexample call draws its suite from a fresh RNG seeded by
	// Seed ⊕ fingerprint(hypothesis), so the words that vet a given
	// hypothesis are identical across calls, rounds, and processes. That
	// determinism is what lets a store-backed relearn of an unchanged
	// target reach zero live queries: its final hypothesis is re-verified
	// with exactly the words the previous run already asked and logged.
	Seed     int64
	Attempts int64 // cumulative words tested, for statistics
	// Workers > 1 partitions the word suite across that many goroutines,
	// cancelling the rest once a counterexample is found. The result is
	// deterministic and identical to the sequential search: each call
	// draws the full round of Words words up front and the earliest
	// failing word of the round wins.
	Workers int
}

// NewRandomWordsOracle returns an oracle with sensible defaults
// (300 words of length 3..12, deterministic seed for reproducibility).
func NewRandomWordsOracle(o Oracle, inputs []string, seed int64) *RandomWordsOracle {
	return &RandomWordsOracle{
		Oracle: o,
		Inputs: inputs,
		Words:  300,
		MinLen: 3,
		MaxLen: 12,
		Seed:   seed,
	}
}

// draw generates the next random test word from rng.
func (r *RandomWordsOracle) draw(rng *rand.Rand) []string {
	n := r.MinLen
	if r.MaxLen > r.MinLen {
		n += rng.Intn(r.MaxLen - r.MinLen + 1)
	}
	word := make([]string, n)
	for j := range word {
		word[j] = r.Inputs[rng.Intn(len(r.Inputs))]
	}
	return word
}

// fingerprint hashes a hypothesis up to isomorphism: states are
// renumbered in BFS order over the sorted alphabet, so the same machine
// fingerprints identically regardless of construction order or process —
// a freshly learned hypothesis and its reloaded snapshot agree.
func fingerprint(m *automata.Mealy) int64 {
	h := fnv.New64a()
	inputs := append([]string(nil), m.Inputs()...)
	sort.Strings(inputs)
	idx := map[automata.State]int{m.Initial(): 0}
	queue := []automata.State{m.Initial()}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for _, in := range inputs {
			to, out, ok := m.Step(s, in)
			if !ok {
				continue
			}
			j, seen := idx[to]
			if !seen {
				j = len(idx)
				idx[to] = j
				queue = append(queue, to)
			}
			fmt.Fprintf(h, "%d,%s,%d,%s;", idx[s], in, j, out)
		}
	}
	return int64(h.Sum64())
}

// FindCounterexample implements EquivalenceOracle.
func (r *RandomWordsOracle) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	rng := rand.New(rand.NewSource(r.Seed ^ fingerprint(hyp)))
	words := make([][]string, r.Words)
	for i := range words {
		words[i] = r.draw(rng)
	}
	if r.Workers > 1 {
		return findFirstCE(ctx, r.Oracle, hyp, words, r.Workers, &r.Attempts)
	}
	for _, word := range words {
		r.Attempts++
		ce, err := checkWord(ctx, r.Oracle, hyp, word)
		if err != nil {
			return nil, err
		}
		if ce != nil {
			return ce, nil
		}
	}
	return nil, nil
}

// WMethodOracle implements Chow's W-method: it tests every word of the form
// access(q) · middle · w where middle ranges over all input words up to
// Depth and w over the hypothesis' characterizing set. If the system has at
// most NumStates(hyp)+Depth states, passing the suite proves equivalence —
// the strongest guarantee available in a closed-box setting.
type WMethodOracle struct {
	Oracle Oracle
	Inputs []string
	Depth  int
}

// FindCounterexample implements EquivalenceOracle.
func (w *WMethodOracle) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	access := hyp.AccessSequences()
	wset := hyp.CharacterizingSet()
	if len(wset) == 0 {
		wset = [][]string{{}}
	}
	middles := [][]string{{}}
	for d := 0; d < w.Depth; d++ {
		var next [][]string
		for _, mdl := range middles {
			if len(mdl) == d {
				for _, in := range w.Inputs {
					next = append(next, append(append([]string(nil), mdl...), in))
				}
			}
		}
		middles = append(middles, next...)
	}
	// Walk states in numeric order so the suite — and therefore the
	// counterexample this search returns — is reproducible run to run
	// (access is a map; ranging over it would randomise the order).
	states := make([]automata.State, 0, len(access))
	for s := range access {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, s := range states {
		acc := access[s]
		for _, mid := range middles {
			for _, suf := range wset {
				word := make([]string, 0, len(acc)+len(mid)+len(suf))
				word = append(word, acc...)
				word = append(word, mid...)
				word = append(word, suf...)
				if len(word) == 0 {
					continue
				}
				ce, err := checkWord(ctx, w.Oracle, hyp, word)
				if err != nil {
					return nil, err
				}
				if ce != nil {
					return ce, nil
				}
			}
		}
	}
	return nil, nil
}

// ModelOracle is a perfect equivalence oracle backed by a known Mealy
// machine — the "omniscient oracle" of §4.1 that exists only when the true
// model is already known. It is used in tests and to validate that learners
// recover simulator ground truth exactly.
type ModelOracle struct {
	Model *automata.Mealy
}

// FindCounterexample implements EquivalenceOracle via the product
// construction, returning a shortest distinguishing word.
func (m *ModelOracle) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eq, ce := m.Model.Equivalent(hyp)
	if eq {
		return nil, nil
	}
	return ce, nil
}

// ChainOracle tries several equivalence oracles in order, returning the
// first counterexample found. Typical use: cheap random testing first, then
// the exhaustive W-method.
type ChainOracle []EquivalenceOracle

// FindCounterexample implements EquivalenceOracle.
func (c ChainOracle) FindCounterexample(ctx context.Context, hyp *automata.Mealy) ([]string, error) {
	for _, o := range c {
		ce, err := o.FindCounterexample(ctx, hyp)
		if err != nil {
			return nil, err
		}
		if ce != nil {
			return ce, nil
		}
	}
	return nil, nil
}

// checkWord queries the system on word and compares against the hypothesis,
// returning the shortest failing prefix as a counterexample (trimming makes
// later counterexample analysis cheaper).
func checkWord(ctx context.Context, o Oracle, hyp *automata.Mealy, word []string) ([]string, error) {
	sys, err := query(ctx, o, word)
	if err != nil {
		return nil, err
	}
	hout, ok := hyp.Run(word)
	if !ok {
		// The hypothesis is partial where the system is not: the defined
		// prefix plus one symbol already distinguishes.
		return word[:len(hout)+1], nil
	}
	for i := range word {
		if sys[i] != hout[i] {
			return word[:i+1], nil
		}
	}
	return nil, nil
}
