package learn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/automata"
)

// BatchOracle is an Oracle that can answer many membership queries in one
// call, typically by fanning them out across independent replicas of the
// system under learning. Answers are positionally aligned with the input
// words. Implementations must behave as if each word were asked with Query:
// the i-th output word is the system's response to words[i] from its reset
// state. A batch fails as a whole: on error the output slice is nil and the
// first error encountered is returned.
type BatchOracle interface {
	Oracle
	QueryBatch(ctx context.Context, words [][]string) ([][]string, error)
}

// queryAll answers a set of words through o, batching when o supports it
// and falling back to one-at-a-time queries otherwise. Like query, it
// enforces the Mealy output-length contract on every answer.
func queryAll(ctx context.Context, o Oracle, words [][]string) ([][]string, error) {
	if len(words) == 0 {
		return nil, nil
	}
	if bo, ok := o.(BatchOracle); ok {
		outs, err := bo.QueryBatch(ctx, words)
		if err != nil {
			return nil, err
		}
		for i, out := range outs {
			conformed, err := conform(words[i], out)
			if err != nil {
				return nil, err
			}
			outs[i] = conformed
		}
		return outs, nil
	}
	outs := make([][]string, len(words))
	for i, w := range words {
		out, err := query(ctx, o, w)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Pool fans membership queries across a fixed set of shard oracles, each
// typically backed by its own system-under-learning instance with
// independent reset state. Query borrows a free shard; QueryBatch keeps up
// to len(shards) queries in flight at once. Pool itself holds no query
// state, so it is safe for concurrent use as long as each shard oracle is
// only ever driven by one goroutine at a time — which the free-list
// guarantees.
type Pool struct {
	shards []Oracle
	free   chan Oracle
	win    *Window
}

// NewPool builds a pool over the given shard oracles. Every shard must be a
// behaviourally identical replica of the same system: the pool assumes any
// shard can answer any query.
func NewPool(shards ...Oracle) *Pool {
	if len(shards) == 0 {
		panic("learn: NewPool needs at least one shard")
	}
	free := make(chan Oracle, len(shards))
	for _, s := range shards {
		free <- s
	}
	return &Pool{shards: shards, free: free}
}

// Size returns the number of shards (the maximum query concurrency).
func (p *Pool) Size() int { return len(p.shards) }

// UseWindow places an adaptive in-flight window in front of the free list:
// every Query must be admitted by win before it may borrow a shard, so the
// effective concurrency follows the window instead of the raw shard count.
// Completion timing feeds the window's RTT estimate; loss signals (guard
// escalations, timeouts) are reported to the window by its other feeders.
// Must be called before the pool is shared across goroutines.
func (p *Pool) UseWindow(win *Window) { p.win = win }

// Window returns the installed adaptive window, or nil.
func (p *Pool) Window() *Window { return p.win }

// Query implements Oracle by borrowing a free shard. Waiting for a free
// shard is interruptible: a cancelled caller stops queueing instead of
// blocking behind other askers. With an adaptive window installed, the
// query first acquires a window slot and reports its completion back.
func (p *Pool) Query(ctx context.Context, word []string) ([]string, error) {
	if p.win != nil {
		if err := p.win.Acquire(ctx); err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := p.query(ctx, word)
		p.win.Release(err == nil, time.Since(start))
		if errors.Is(err, context.DeadlineExceeded) {
			p.win.OnLoss()
		}
		return out, err
	}
	return p.query(ctx, word)
}

func (p *Pool) query(ctx context.Context, word []string) ([]string, error) {
	var shard Oracle
	select {
	case shard = <-p.free:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	out, err := shard.Query(ctx, word)
	p.free <- shard
	return out, err
}

// QueryBatch implements BatchOracle. Words are dispatched to worker
// goroutines, one per shard; the batch stops early on the first error or
// when ctx is cancelled.
func (p *Pool) QueryBatch(ctx context.Context, words [][]string) ([][]string, error) {
	if len(words) == 0 {
		return nil, nil
	}
	workers := len(p.shards)
	if workers > len(words) {
		workers = len(words)
	}
	if workers == 1 {
		outs := make([][]string, len(words))
		for i, w := range words {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := p.Query(ctx, w)
			if err != nil {
				return nil, err
			}
			outs[i] = out
		}
		return outs, nil
	}

	outs := make([][]string, len(words))
	next := make(chan int)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out, err := p.Query(ctx, words[i])
				if err != nil {
					fail(err)
					return
				}
				outs[i] = out
			}
		}()
	}
dispatch:
	for i := range words {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outs, nil
}

// findFirstCE tests words against hyp across workers and returns the
// counterexample derived from the earliest failing word, making the result
// deterministic regardless of worker scheduling: workers walk interleaved
// index stripes in increasing order and prune everything at or above the
// best failing index seen so far, so every index below the winner is fully
// checked. The derived context cancels in-flight work on error, and
// cancelling the caller's ctx aborts the whole search with ctx.Err().
func findFirstCE(ctx context.Context, o Oracle, hyp *automata.Mealy, words [][]string, workers int, attempts *int64) ([]string, error) {
	if workers > len(words) {
		workers = len(words)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	best := int64(len(words)) // lowest failing index found so far
	ces := make([][]string, len(words))
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < len(words); i += workers {
				if int64(i) >= atomic.LoadInt64(&best) {
					return // stripe indices only increase; nothing left to win
				}
				if ctx.Err() != nil {
					return
				}
				if attempts != nil {
					atomic.AddInt64(attempts, 1)
				}
				ce, err := checkWord(ctx, o, hyp, words[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				if ce != nil {
					ces[i] = ce
					// Lower best monotonically to i.
					for {
						cur := atomic.LoadInt64(&best)
						if int64(i) >= cur || atomic.CompareAndSwapInt64(&best, cur, int64(i)) {
							break
						}
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if b := atomic.LoadInt64(&best); int(b) < len(words) {
		return ces[b], nil
	}
	// A cancelled search proved nothing: report the cancellation rather
	// than an (unverified) "no counterexample".
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, nil
}
