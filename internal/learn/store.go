package learn

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/automata"
	"repro/internal/jsonlog"
)

// This file implements the persistent half of incremental learning: an
// on-disk, versioned membership-query log plus a model snapshot, shared by
// every run that names the same store key. A CachedOracle attached to a
// Store (UseStore) starts with every logged answer pre-seeded in its prefix
// tree and appends every new live answer, so relearning a target that has
// not changed costs only the queries the equivalence search insists on
// asking live — and a target that has changed is re-queried only where the
// repair machinery proves the log stale. See docs/REGRESSION.md.

// storeFormat and storeVersion identify the query-log format. A log whose
// header names a different format or a newer version is not read (the
// entries are dropped and the file is rewritten), so a downgraded binary
// can never misinterpret a future log as answers.
const (
	storeFormat  = "prognosis-query-log"
	storeVersion = 1
)

// storeEntry is one logged membership query. Entries replay in file order
// with clobber semantics (a later entry for the same word wins), which is
// how CachedOracle.Refresh repairs persist: the corrected answer is simply
// appended and shadows the poisoned one on every future load.
type storeEntry struct {
	In  []string `json:"in"`
	Out []string `json:"out"`
}

// stores deduplicates open Stores by log path: concurrent opens of the
// same key — e.g. a campaign fanning one target across worker counts,
// which deliberately share a store key — get one refcounted instance, so
// two file handles can never write at overlapping offsets or truncate a
// sibling's live appends during load.
var (
	storesMu sync.Mutex
	stores   = map[string]*Store{}
)

// Store is the on-disk query log + model snapshot of one (target,
// configuration) pair: `<key>.log` holds the JSONL membership-query log,
// `<key>.model.json` the last successfully learned hypothesis in the
// unified automata JSON codec. Append and Reset are safe for concurrent
// use; a load tolerates a truncated or corrupted tail (the valid prefix
// survives, the tail is discarded), so a run killed mid-append never
// poisons the next one. The log file is opened in append mode, so even an
// unrelated process sharing the file interleaves whole lines rather than
// overwriting; in-process sharers go further and share one instance (see
// stores).
type Store struct {
	mu      sync.Mutex
	f       *os.File
	id      string // registry key (absolute log path)
	refs    int
	model   string
	entries []storeEntry // every logged entry: read at open, grown by Append
	appendE error        // first append failure, reported by Close
}

// OpenStore opens (or creates) the store for key inside dir, creating dir
// as needed. Opening a key that is already open in this process returns
// the same instance (closed when every opener has closed it). The
// existing query log is loaded and validated: a missing or foreign header
// discards the file, and a corrupted, truncated, or unterminated tail is
// truncated away while every complete entry before it is kept.
func OpenStore(dir, key string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("learn: store dir: %w", err)
	}
	path := filepath.Join(dir, key+".log")
	id, err := filepath.Abs(path)
	if err != nil {
		id = path
	}
	storesMu.Lock()
	defer storesMu.Unlock()
	if s, ok := stores[id]; ok {
		s.mu.Lock()
		s.refs++
		s.mu.Unlock()
		return s, nil
	}
	s := &Store{
		id:    id,
		refs:  1,
		model: filepath.Join(dir, key+".model.json"),
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("learn: open store: %w", err)
	}
	s.f = f
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	stores[id] = s
	return s, nil
}

// load recovers the log's valid prefix (jsonlog.Recover), resetting a
// file whose header is missing, foreign, or from a future version.
func (s *Store) load() error {
	ok, err := jsonlog.Recover(s.f, storeFormat, storeVersion, func(line []byte) bool {
		var e storeEntry
		if json.Unmarshal(line, &e) != nil || len(e.Out) < len(e.In) {
			return false
		}
		s.entries = append(s.entries, e)
		return true
	})
	if err != nil {
		return fmt.Errorf("learn: recover store: %w", err)
	}
	if !ok {
		return jsonlog.Reset(s.f, storeFormat, storeVersion)
	}
	return nil
}

// Entries returns the number of logged queries (loaded plus appended).
func (s *Store) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Append logs one answered query. Each entry is written as a single Write
// of one complete line in append mode, so concurrent appenders interleave
// at line granularity and a crash loses at most the final partial line.
func (s *Store) Append(word, out []string) error {
	if len(out) < len(word) {
		return fmt.Errorf("%w: %d inputs, %d outputs", ErrIncompleteOutput, len(word), len(out))
	}
	line, err := jsonlog.Marshal(storeEntry{In: word, Out: out[:len(word)]})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		if s.appendE == nil {
			s.appendE = err
		}
		return err
	}
	s.entries = append(s.entries, storeEntry{In: word, Out: out[:len(word)]})
	return nil
}

// Reset discards every logged query (the model snapshot is untouched). It
// is the persistent half of CachedOracle.Clear: entries that survived a
// cache drop would resurrect exactly the answers the drop was repairing.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = nil
	return jsonlog.Reset(s.f, storeFormat, storeVersion)
}

// SaveModel snapshots the learned hypothesis atomically (write to a
// temporary file, then rename), so a reader never observes a half-written
// model.
func (s *Store) SaveModel(m *automata.Mealy) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.model + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.model)
}

// LoadModel reads the model snapshot; (nil, nil) when none has been saved
// yet. A snapshot that fails to decode is treated as absent rather than
// fatal: the warm start degrades to a cold one.
func (s *Store) LoadModel() (*automata.Mealy, error) {
	data, err := os.ReadFile(s.model)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var m automata.Mealy
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil
	}
	return &m, nil
}

// Close releases one reference to the store; the log file closes when the
// last opener is done. It reports the first append failure the store
// swallowed mid-run (appends are best-effort during learning: a full disk
// must not abort a run whose answers are still good).
func (s *Store) Close() error {
	storesMu.Lock()
	s.mu.Lock()
	s.refs--
	last := s.refs == 0
	if last {
		delete(stores, s.id)
	}
	appendE := s.appendE
	s.mu.Unlock()
	storesMu.Unlock()
	var err error
	if last {
		err = s.f.Close()
	}
	if appendE != nil {
		return appendE
	}
	return err
}

// UseStore attaches st to the cached oracle: every entry logged in the
// store is pre-seeded into the prefix-tree cache (in log order, later
// entries shadowing earlier ones — see storeEntry), and from now on every
// answer the cache accepts from the live oracle is appended to the log.
// Refresh overwrites the logged path by appending the corrected answer;
// Clear resets the log alongside the cache. Attach before the first query.
func (c *CachedOracle) UseStore(st *Store) {
	st.mu.Lock()
	entries := st.entries
	st.mu.Unlock()
	for _, e := range entries {
		c.cache.refresh(e.In, e.Out)
	}
	c.store = st
}

// persist logs one accepted answer to the attached store, if any. Append
// failures are swallowed here (and surfaced by Store.Close): persistence
// is an accelerator, never a reason to fail a live query that succeeded.
func (c *CachedOracle) persist(word, out []string) {
	if c.store != nil && len(word) > 0 {
		_ = c.store.Append(word, out)
	}
}
