package learn

// MergeStores folds the logged membership queries of srcs into dst, in
// source order: every src entry is appended to dst's log, so on the next
// load a later source's answer to a word shadows an earlier source's (and
// anything dst already held) under the store's last-write-wins replay
// semantics — the same rule CachedOracle.UseStore applies within one log.
// This is the fleet result-merge primitive: per-worker stores for one
// cell key fold into the coordinator's merged store without inventing a
// new conflict rule. Sources recovered from corrupt-tailed files
// contribute exactly their valid prefix (OpenStore already truncated the
// rest). Returns the number of entries appended; an append failure stops
// the merge with the count so far.
func MergeStores(dst *Store, srcs ...*Store) (int, error) {
	merged := 0
	for _, src := range srcs {
		if src == nil || src == dst {
			continue
		}
		src.mu.Lock()
		entries := append([]storeEntry(nil), src.entries...)
		src.mu.Unlock()
		for _, e := range entries {
			if err := dst.Append(e.In, e.Out); err != nil {
				return merged, err
			}
			merged++
		}
	}
	return merged, nil
}

// Answer replays the store's log for one input word, honouring
// last-write-wins: the final logged entry for the word decides. ok is
// false when the word was never logged. Exported for merge verification
// and tooling; learning itself reads the log through the prefix-tree
// cache preload.
func (s *Store) Answer(word []string) (out []string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if wordsEqual(e.In, word) {
			out, ok = e.Out, true
		}
	}
	return out, ok
}

func wordsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
