package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/pkg/client"
)

// ErrUnknownWorker is returned for heartbeats (and lookups) naming a
// worker the coordinator has no registration for — the signal that makes
// a worker's JoinLoop rejoin after a coordinator restart.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// Config shapes a Coordinator.
type Config struct {
	// Dir is the coordinator's workspace: merged stores and checkpoints
	// land under Dir/campaigns/<id>/.
	Dir string
	// Lease is how long a worker stays live without a heartbeat
	// (default 10s). Workers heartbeat at a fraction of this.
	Lease time.Duration
	// Poll is the campaign loop's cadence: assignment sweeps and job
	// status polls (default 500ms).
	Poll time.Duration
	// Logf receives coordinator lifecycle logging (default: discard).
	Logf func(string, ...any)
	// HTTPClient, when set, underlies every per-worker client (tests
	// inject httptest transports; the default has a 15s timeout so a
	// dead worker cannot wedge a poll).
	HTTPClient *http.Client
}

// worker is the coordinator's registration record for one daemon.
type worker struct {
	info client.WorkerInfo
	cli  *client.Client
	last time.Time // last join or heartbeat
	dead bool
	// fails counts consecutive job-API transport failures; three in a
	// row declare the worker dead without waiting for the lease (an
	// APIError means the daemon answered, so it resets the count).
	fails    int
	assigned int // cells currently submitted and not terminal
	done     int // cells completed here
	requeued int // cells taken back from here
}

// cellRun tracks one cell through the campaign lifecycle:
//
//	pending → submitted → done
//	                    ↘ failed
//	submitted → pending            (worker died/drained: requeued)
type cellRun struct {
	cell     Cell
	state    string // "pending", "submitted", "done", "failed"
	worker   string // worker currently running it ("" while pending)
	jobID    string
	summary  *client.Summary
	model    []byte // model artifact (nil for nondeterminism verdicts)
	doneBy   string
	errMsg   string
	requeues int
}

// campaign is one sharded campaign in flight.
type campaign struct {
	id      string
	name    string
	created time.Time
	state   string
	cells   []*cellRun
	byKey   map[string]*cellRun
	// perWorker maps worker name → cells completed there.
	perWorker map[string]int
	requeued  int
	errMsg    string

	mergedStore      string
	mergedCheckpoint string
	summary          string
}

// Coordinator owns the fleet: the consistent-hash ring of live workers,
// worker leases, campaign expansion/assignment/requeue, and the
// result-merge stage. One coordinator drives any number of campaigns;
// each campaign runs on its own goroutine, with all shared state under
// one mutex and every HTTP call made outside it.
type Coordinator struct {
	cfg  Config
	ring *Ring

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	workers   map[string]*worker
	campaigns map[string]*campaign
	order     []string
	requeued  int
	nextID    int
}

// NewCoordinator returns a running coordinator (its lease sweeper is
// live). Close it to stop campaign loops.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a workspace dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 10 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 15 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:       cfg,
		ring:      NewRing(DefaultVirtualNodes),
		ctx:       ctx,
		cancel:    cancel,
		workers:   map[string]*worker{},
		campaigns: map[string]*campaign{},
	}
	co.wg.Add(1)
	go co.sweep()
	return co, nil
}

// Close stops the sweeper and campaign loops and waits for them.
func (co *Coordinator) Close() {
	co.cancel()
	co.wg.Wait()
}

// Join registers (or re-registers) a worker. Rejoining under a known
// name refreshes the lease, updates the URL/weight, and revives a dead
// worker — which puts it back on the ring.
func (co *Coordinator) Join(info client.WorkerInfo) error {
	if info.Name == "" || info.URL == "" {
		return fmt.Errorf("fleet: join needs a worker name and url")
	}
	if info.Weight <= 0 {
		info.Weight = 1
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[info.Name]
	if !ok {
		w = &worker{}
		co.workers[info.Name] = w
		co.cfg.Logf("fleet: worker %q joined (%s, weight %d)", info.Name, info.URL, info.Weight)
	} else if w.dead {
		co.cfg.Logf("fleet: worker %q rejoined", info.Name)
	}
	w.info = info
	w.cli = client.New(info.URL, client.WithHTTPClient(co.cfg.HTTPClient))
	w.last = time.Now()
	w.dead = false
	w.fails = 0
	co.ring.Add(info.Name, info.Weight)
	co.workerGaugesLocked()
	return nil
}

// Heartbeat refreshes a worker's lease, reviving it if the lease had
// expired. Unknown names get ErrUnknownWorker (HTTP 404), telling the
// worker to rejoin.
func (co *Coordinator) Heartbeat(name string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[name]
	if !ok {
		return ErrUnknownWorker
	}
	now := time.Now()
	heartbeatAge(name).Observe(now.Sub(w.last).Seconds())
	w.last = now
	if w.dead {
		co.cfg.Logf("fleet: worker %q revived by heartbeat", name)
		w.dead = false
		w.fails = 0
		co.ring.Add(w.info.Name, w.info.Weight)
		co.workerGaugesLocked()
	}
	return nil
}

// sweep expires worker leases.
func (co *Coordinator) sweep() {
	defer co.wg.Done()
	tick := co.cfg.Lease / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-t.C:
		}
		co.mu.Lock()
		for name, w := range co.workers {
			if !w.dead && time.Since(w.last) > co.cfg.Lease {
				co.cfg.Logf("fleet: worker %q lease expired", name)
				co.markDeadLocked(name)
			}
		}
		co.mu.Unlock()
	}
}

// markDeadLocked declares a worker dead: off the ring, and every cell
// submitted to it goes back to pending for re-assignment. Requeueing is
// safe because cells are idempotent by run key — if the dead worker's
// job is in fact still running, both executions answer the same queries
// and the merge stage's last-write-wins fold makes the duplicate
// harmless.
func (co *Coordinator) markDeadLocked(name string) {
	w, ok := co.workers[name]
	if !ok || w.dead {
		return
	}
	w.dead = true
	co.ring.Remove(name)
	for _, c := range co.campaigns {
		for _, cr := range c.cells {
			if cr.state == "submitted" && cr.worker == name {
				cr.state = "pending"
				cr.worker = ""
				cr.jobID = ""
				cr.requeues++
				c.requeued++
				co.requeued++
				w.requeued++
				w.assigned--
				mCellsRequeued.Inc()
				co.cfg.Logf("fleet: requeued cell %s from dead worker %q", cr.cell.Key, name)
			}
		}
	}
	co.workerGaugesLocked()
}

// workerGaugesLocked refreshes the live/dead gauges.
func (co *Coordinator) workerGaugesLocked() {
	live, dead := 0, 0
	for _, w := range co.workers {
		if w.dead {
			dead++
		} else {
			live++
		}
	}
	mWorkersLive.Set(float64(live))
	mWorkersDead.Set(float64(dead))
}

// SubmitCampaign expands the spec into cells and starts the campaign
// loop. The returned status is the accepted snapshot (state running).
func (co *Coordinator) SubmitCampaign(spec client.FleetCampaignSpec) (client.FleetCampaignStatus, error) {
	cells, err := ExpandCampaign(spec)
	if err != nil {
		return client.FleetCampaignStatus{}, err
	}
	co.mu.Lock()
	co.nextID++
	id := fmt.Sprintf("c%04d", co.nextID)
	name := spec.Name
	if name == "" {
		name = id
	}
	c := &campaign{
		id:        id,
		name:      name,
		created:   time.Now(),
		state:     client.CampaignRunning,
		byKey:     map[string]*cellRun{},
		perWorker: map[string]int{},
	}
	for _, cell := range cells {
		cr := &cellRun{cell: cell, state: "pending"}
		c.cells = append(c.cells, cr)
		c.byKey[cell.Key] = cr
	}
	co.campaigns[id] = c
	co.order = append(co.order, id)
	st := co.campaignStatusLocked(c)
	co.mu.Unlock()
	co.cfg.Logf("fleet: campaign %s (%s): %d cells", id, name, len(cells))
	co.wg.Add(1)
	go co.runCampaign(c)
	return st, nil
}

// Campaign returns one campaign's status.
func (co *Coordinator) Campaign(id string) (client.FleetCampaignStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, ok := co.campaigns[id]
	if !ok {
		return client.FleetCampaignStatus{}, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	return co.campaignStatusLocked(c), nil
}

// Status returns the whole-fleet snapshot.
func (co *Coordinator) Status() client.FleetStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := client.FleetStatus{Requeued: co.requeued}
	names := make([]string, 0, len(co.workers))
	for name := range co.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := co.workers[name]
		state := client.WorkerLive
		if w.dead {
			state = client.WorkerDead
		}
		st.Workers = append(st.Workers, client.WorkerStatus{
			WorkerInfo:    w.info,
			State:         state,
			HeartbeatAge:  time.Since(w.last).Seconds(),
			CellsAssigned: w.assigned,
			CellsDone:     w.done,
			Requeued:      w.requeued,
		})
	}
	for _, id := range co.order {
		st.Campaigns = append(st.Campaigns, co.campaignStatusLocked(co.campaigns[id]))
	}
	return st
}

func (co *Coordinator) campaignStatusLocked(c *campaign) client.FleetCampaignStatus {
	st := client.FleetCampaignStatus{
		ID:               c.id,
		Name:             c.name,
		State:            c.state,
		Cells:            len(c.cells),
		Requeued:         c.requeued,
		Error:            c.errMsg,
		MergedStore:      c.mergedStore,
		MergedCheckpoint: c.mergedCheckpoint,
		Created:          c.created,
		Summary:          c.summary,
	}
	if len(c.perWorker) > 0 {
		st.PerWorker = make(map[string]int, len(c.perWorker))
		for k, v := range c.perWorker {
			st.PerWorker[k] = v
		}
	}
	for _, cr := range c.cells {
		switch cr.state {
		case "done":
			st.Done++
			if cr.summary != nil && cr.summary.Nondet {
				st.Nondet++
			} else {
				st.Learned++
			}
		case "failed":
			st.Failed++
		}
	}
	return st
}

// runCampaign drives one campaign to completion: assignment and job
// polling at the configured cadence, then the merge stage.
func (co *Coordinator) runCampaign(c *campaign) {
	defer co.wg.Done()
	for {
		if co.stepCampaign(c) {
			break
		}
		select {
		case <-co.ctx.Done():
			co.mu.Lock()
			c.state = client.CampaignFailed
			c.errMsg = "coordinator shut down mid-campaign"
			co.mu.Unlock()
			return
		case <-time.After(co.cfg.Poll):
		}
	}
	co.mergeCampaign(c)
}

// submission/pollAction snapshot work to do outside the lock.
type submission struct {
	cr     *cellRun
	worker string
	cli    *client.Client
	spec   client.Spec
}

type pollAction struct {
	cr     *cellRun
	worker string
	cli    *client.Client
	jobID  string
}

// stepCampaign makes one assignment+poll pass and reports whether every
// cell is terminal. HTTP happens outside the lock; results are applied
// back under it, each guarded against a state change (a sweeper requeue)
// that happened in between.
func (co *Coordinator) stepCampaign(c *campaign) bool {
	co.mu.Lock()
	var subs []submission
	var polls []pollAction
	for _, cr := range c.cells {
		switch cr.state {
		case "pending":
			owner := co.ring.Owner(cr.cell.Key)
			if owner == "" {
				continue // no live workers; stay pending
			}
			w := co.workers[owner]
			if w == nil || w.dead {
				continue
			}
			subs = append(subs, submission{
				cr:     cr,
				worker: owner,
				cli:    w.cli,
				spec: client.Spec{
					Kind:   client.KindLearn,
					Target: cr.cell.Target,
					Config: cr.cell.Config,
				},
			})
		case "submitted":
			if w := co.workers[cr.worker]; w != nil && !w.dead {
				polls = append(polls, pollAction{cr: cr, worker: cr.worker, cli: w.cli, jobID: cr.jobID})
			}
		}
	}
	co.mu.Unlock()

	for _, s := range subs {
		st, err := s.cli.Submit(co.ctx, s.spec)
		co.mu.Lock()
		switch {
		case err == nil:
			// Apply only if the cell is still pending and the worker still
			// live: a submit that raced a death just becomes a duplicate
			// execution, which idempotent cells absorb.
			if w := co.workers[s.worker]; w != nil && !w.dead && s.cr.state == "pending" {
				s.cr.state = "submitted"
				s.cr.worker = s.worker
				s.cr.jobID = st.ID
				w.assigned++
				mCellsAssigned.Inc()
			}
		case isTransportError(err):
			co.workerFailedLocked(s.worker)
		default:
			// The daemon answered with an error (draining, bad spec). Keep
			// the cell pending; a draining worker will shortly miss its
			// lease and the ring will re-place the cell.
			co.cfg.Logf("fleet: submit %s to %q: %v", s.cr.cell.Key, s.worker, err)
		}
		co.mu.Unlock()
	}

	for _, p := range polls {
		st, err := p.cli.Job(co.ctx, p.jobID)
		var model []byte
		if err == nil && st.State == client.StateDone && st.Summary != nil && !st.Summary.Nondet {
			model, err = p.cli.Model(co.ctx, p.jobID, "", "json")
		}
		co.mu.Lock()
		// The sweeper may have requeued this cell while we were on the
		// wire; apply only if it is still ours.
		if p.cr.state != "submitted" || p.cr.worker != p.worker || p.cr.jobID != p.jobID {
			co.mu.Unlock()
			continue
		}
		w := co.workers[p.worker]
		switch {
		case err != nil && isTransportError(err):
			co.workerFailedLocked(p.worker)
		case err != nil && isNotFound(err):
			// The worker answered but does not know the job (restarted
			// with a fresh journal dir): requeue.
			co.requeueLocked(c, p.cr, w)
		case err != nil:
			co.cfg.Logf("fleet: poll %s on %q: %v", p.cr.cell.Key, p.worker, err)
		case st.State == client.StateDone:
			p.cr.state = "done"
			p.cr.summary = st.Summary
			p.cr.model = model
			p.cr.doneBy = p.worker
			if w != nil {
				w.assigned--
				w.done++
			}
			c.perWorker[p.worker]++
		case st.State == client.StateFailed:
			p.cr.state = "failed"
			p.cr.errMsg = st.Error
			if w != nil {
				w.assigned--
			}
		case st.State == client.StateCancelled:
			// Cancelled on the worker (drain): take it back.
			co.requeueLocked(c, p.cr, w)
		}
		co.mu.Unlock()
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	for _, cr := range c.cells {
		if cr.state != "done" && cr.state != "failed" {
			return false
		}
	}
	return true
}

// requeueLocked returns a submitted cell to the pending pool.
func (co *Coordinator) requeueLocked(c *campaign, cr *cellRun, w *worker) {
	cr.state = "pending"
	cr.worker = ""
	cr.jobID = ""
	cr.requeues++
	c.requeued++
	co.requeued++
	if w != nil {
		w.assigned--
		w.requeued++
	}
	mCellsRequeued.Inc()
}

// workerFailedLocked counts one job-API transport failure; three in a
// row kill the worker without waiting for the lease.
func (co *Coordinator) workerFailedLocked(name string) {
	w, ok := co.workers[name]
	if !ok || w.dead {
		return
	}
	w.fails++
	if w.fails >= 3 {
		co.cfg.Logf("fleet: worker %q unreachable (%d consecutive failures)", name, w.fails)
		co.markDeadLocked(name)
	}
}

// mergeCampaign pulls every worker's store logs for the campaign's
// cells into one merged store, reconstructs per-cell results, and writes
// the merged checkpoint — after which the campaign reads exactly like a
// single-process `prognosis learn` campaign.
func (co *Coordinator) mergeCampaign(c *campaign) {
	co.mu.Lock()
	c.state = client.CampaignMerging
	keys := map[string]bool{}
	for _, cr := range c.cells {
		keys[cr.cell.Key] = true
	}
	type puller struct {
		name string
		cli  *client.Client
	}
	var pullers []puller
	for name, w := range co.workers {
		if !w.dead {
			pullers = append(pullers, puller{name: name, cli: w.cli})
		}
	}
	// Sorted worker order makes the merge's last-write-wins outcome
	// deterministic run to run.
	sort.Slice(pullers, func(i, j int) bool { return pullers[i].name < pullers[j].name })
	co.mu.Unlock()

	dir := filepath.Join(co.cfg.Dir, "campaigns", c.id)
	storeDir := filepath.Join(dir, "store")
	fail := func(err error) {
		co.mu.Lock()
		c.state = client.CampaignFailed
		c.errMsg = err.Error()
		co.mu.Unlock()
		co.cfg.Logf("fleet: campaign %s merge failed: %v", c.id, err)
	}
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		fail(err)
		return
	}
	for _, p := range pullers {
		workerKeys, err := p.cli.StoreKeys(co.ctx)
		if err != nil {
			// A worker dying during merge costs its unmerged log lines,
			// not the campaign: the checkpoint's models came through the
			// job API already.
			co.cfg.Logf("fleet: merge: list store of %q: %v", p.name, err)
			continue
		}
		pullDir := filepath.Join(dir, "pull", p.name)
		if err := os.MkdirAll(pullDir, 0o755); err != nil {
			fail(err)
			return
		}
		for _, key := range workerKeys {
			if !keys[key] {
				continue
			}
			raw, err := p.cli.StoreLog(co.ctx, key)
			if err != nil {
				co.cfg.Logf("fleet: merge: pull %s from %q: %v", key, p.name, err)
				continue
			}
			if err := os.WriteFile(filepath.Join(pullDir, key+".log"), raw, 0o644); err != nil {
				fail(err)
				return
			}
			if err := mergeOne(storeDir, pullDir, key); err != nil {
				fail(err)
				return
			}
		}
	}

	co.mu.Lock()
	var results []lab.RunResult
	for _, cr := range c.cells {
		rr := lab.RunResult{Name: cr.cell.Key, Target: cr.cell.Target}
		switch cr.state {
		case "done":
			res := &lab.Result{
				Target:      cr.cell.Target,
				LearnerKind: core.LearnerKind(cr.cell.Config.Learner),
			}
			if sum := cr.summary; sum != nil {
				res.Stats = learn.Stats{Queries: sum.Queries, Symbols: sum.Symbols, Hits: sum.Hits}
				res.Guard = core.GuardStats{Escalations: sum.GuardEscalations}
				res.Duration = sum.Duration
				if sum.Nondet {
					res.Nondet = &core.NondeterminismError{Word: sum.NondetWord}
				}
			}
			if len(cr.model) > 0 {
				m, err := automata.Decode(cr.model)
				if err != nil {
					co.mu.Unlock()
					fail(fmt.Errorf("decode model of cell %s: %w", cr.cell.Key, err))
					return
				}
				res.Machine = m
			}
			rr.Result = res
			mCellsMerged.Inc()
		case "failed":
			rr.Err = errors.New(cr.errMsg)
		default:
			rr.Err = fmt.Errorf("cell never completed (state %s)", cr.state)
		}
		results = append(results, rr)
	}
	co.mu.Unlock()

	ckpt := filepath.Join(dir, "checkpoint.jsonl")
	if err := lab.WriteCheckpoint(ckpt, results); err != nil {
		fail(err)
		return
	}
	sum := lab.Summarize(results)
	co.mu.Lock()
	c.state = client.CampaignDone
	c.mergedStore = storeDir
	c.mergedCheckpoint = ckpt
	c.summary = fmt.Sprintf("learned %d, nondet %d, failed %d of %d cells (requeued %d)",
		sum.Learned, sum.Nondet, sum.Failed, len(c.cells), c.requeued)
	co.mu.Unlock()
	co.cfg.Logf("fleet: campaign %s done: %s", c.id, c.summary)
}

// mergeOne folds one pulled per-worker log into the merged store via
// learn.MergeStores (last-write-wins on conflicting words).
func mergeOne(storeDir, pullDir, key string) error {
	src, err := learn.OpenStore(pullDir, key)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := learn.OpenStore(storeDir, key)
	if err != nil {
		return err
	}
	defer dst.Close()
	_, err = learn.MergeStores(dst, src)
	return err
}

// isTransportError reports whether err is a failure to reach the daemon
// at all (connection refused/reset, timeout), as opposed to an HTTP
// error answered by a live daemon.
func isTransportError(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *client.APIError
	return !errors.As(err, &apiErr)
}

func isNotFound(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound
}
