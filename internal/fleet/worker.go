package fleet

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/pkg/client"
)

// JoinLoop registers a worker daemon with the coordinator at
// coordinatorURL and keeps its lease fresh with periodic heartbeats
// until ctx ends. It is the worker side of the fleet lifecycle
// (docs/FLEET.md): join is retried until it lands (the coordinator may
// start after the workers), and a heartbeat answered with 404 — a
// coordinator that restarted and lost its membership — triggers an
// immediate rejoin under the same name, which also revives a worker the
// coordinator had declared dead. Every transition is reported through
// logf.
func JoinLoop(ctx context.Context, coordinatorURL string, info client.WorkerInfo, every time.Duration, logf func(string, ...any)) {
	if every <= 0 {
		every = 2 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	co := client.New(coordinatorURL, client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}))

	join := func() bool {
		for {
			err := co.FleetJoin(ctx, info)
			if err == nil {
				logf("fleet: joined coordinator %s as %q (weight %d)", coordinatorURL, info.Name, info.Weight)
				return true
			}
			if ctx.Err() != nil {
				return false
			}
			logf("fleet: join %s: %v (retrying)", coordinatorURL, err)
			select {
			case <-ctx.Done():
				return false
			case <-time.After(every):
			}
		}
	}
	if !join() {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		err := co.FleetHeartbeat(ctx, info.Name)
		if err == nil {
			continue
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound {
			// The coordinator does not know us (restart, or it declared us
			// dead and a rejoin is the revival path).
			logf("fleet: coordinator lost our registration, rejoining")
			if !join() {
				return
			}
			continue
		}
		if ctx.Err() != nil {
			return
		}
		logf("fleet: heartbeat: %v", err)
	}
}
