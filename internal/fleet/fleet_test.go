// Package fleet_test holds the fleet plane's integration tests: a real
// coordinator and real worker daemons wired over httptest, driven
// exclusively through pkg/client — the same path prognosisctl and CI's
// fleet-smoke job use.
package fleet_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/lab"
	"repro/internal/learncfg"
	"repro/internal/server"
	"repro/pkg/client"
)

// testWorker is one worker daemon: a job manager with its own data dir
// behind an httptest server, heartbeating to the coordinator.
type testWorker struct {
	name string
	mgr  *server.Manager
	ts   *httptest.Server
	stop context.CancelFunc
}

// kill simulates a crash: the HTTP listener dies and heartbeats stop.
// The manager keeps running (an abruptly killed process's in-flight work
// simply never surfaces; here it just becomes unreachable), and is shut
// down at test cleanup.
func (w *testWorker) kill() {
	w.stop()
	w.ts.Close()
}

// startFleet brings up a coordinator (with its own manager) and n
// workers named w1..wn, all joined and heartbeating.
func startFleet(t *testing.T, n int, lease time.Duration) (*client.Client, []*testWorker) {
	t.Helper()
	coMgr, err := server.NewManager(server.ManagerConfig{Dir: t.TempDir(), DrainTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coMgr.Shutdown(context.Background()) })
	co, err := fleet.NewCoordinator(fleet.Config{
		Dir:   t.TempDir(),
		Lease: lease,
		Poll:  50 * time.Millisecond,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	coTS := httptest.NewServer(server.NewServer(coMgr, server.WithCoordinator(co)))
	t.Cleanup(coTS.Close)

	var workers []*testWorker
	for i := 0; i < n; i++ {
		name := "w" + string(rune('1'+i))
		mgr, err := server.NewManager(server.ManagerConfig{Dir: t.TempDir(), Parallel: 2, DrainTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mgr.Shutdown(context.Background()) })
		ts := httptest.NewServer(server.NewServer(mgr))
		t.Cleanup(ts.Close)
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		go fleet.JoinLoop(ctx, coTS.URL, client.WorkerInfo{Name: name, URL: ts.URL, Weight: 1}, 100*time.Millisecond, t.Logf)
		workers = append(workers, &testWorker{name: name, mgr: mgr, ts: ts, stop: cancel})
	}

	// Wait until every worker is registered and live.
	c := client.New(coTS.URL)
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.FleetStatus(context.Background())
		if err == nil {
			live := 0
			for _, w := range st.Workers {
				if w.State == client.WorkerLive {
					live++
				}
			}
			if live == n {
				return c, workers
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never assembled %d live workers", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetCampaignMatchesSingleProcess is the acceptance path: a
// campaign sharded across two workers produces a merged checkpoint whose
// per-cell models are byte-identical to learning the same cells in this
// process, and a merged store answering from every worker's log.
func TestFleetCampaignMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet round trip")
	}
	ctx := context.Background()
	c, _ := startFleet(t, 2, 5*time.Second)

	spec := client.FleetCampaignSpec{
		Name:    "grid",
		Targets: []string{"google", "tcp"},
		Losses:  []float64{0.02},
		Seeds:   []int64{13},
		Config:  learncfg.Default(learncfg.Defaults{}),
	}
	// One lab worker per cell keeps the query schedule deterministic, so
	// the byte-identical comparison below is exact, not probabilistic.
	spec.Config.Workers = 1

	cells, err := fleet.ExpandCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 2 targets × (clean + loss 0.02)
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}

	st, err := c.SubmitFleetCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 180*time.Second)
	defer cancel()
	if st, err = c.WaitFleetCampaign(wctx, st.ID, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st.State != client.CampaignDone || st.Failed != 0 || st.Done != len(cells) {
		t.Fatalf("campaign finished %s (done %d, failed %d): %s", st.State, st.Done, st.Failed, st.Error)
	}

	// Both workers carried cells: the ring spread the campaign.
	if len(st.PerWorker) < 2 {
		t.Fatalf("campaign not sharded: per-worker %v", st.PerWorker)
	}

	merged, err := lab.ReadCheckpoint(st.MergedCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		res, ok := merged[cell.Key]
		if !ok {
			t.Fatalf("cell %s missing from merged checkpoint (have %d records)", cell.Key, len(merged))
		}
		opts, err := cell.Config.Options()
		if err != nil {
			t.Fatal(err)
		}
		exp, err := lab.NewExperiment(cell.Target, opts...)
		if err != nil {
			t.Fatal(err)
		}
		local, err := exp.Learn(ctx)
		exp.Close()
		if err != nil {
			t.Fatal(err)
		}
		if local.Nondet != nil || res.Nondet != nil {
			t.Fatalf("cell %s: unexpected nondeterminism verdict (local %v, fleet %v)", cell.Key, local.Nondet, res.Nondet)
		}
		want, err := json.Marshal(local.Machine)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("cell %s: fleet-merged model differs from single-process model\nfleet: %s\nlocal: %s", cell.Key, got, want)
		}
	}

	// The fleet metric families are on the coordinator's scrape surface.
	raw, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"prognosis_fleet_workers_live",
		"prognosis_fleet_cells_assigned_total",
		"prognosis_fleet_cells_merged_total",
		"prognosis_fleet_heartbeat_age_seconds_bucket",
	} {
		if !strings.Contains(string(raw), family) {
			t.Errorf("coordinator /metrics missing %s", family)
		}
	}
}

// TestFleetSurvivesWorkerDeath kills a worker mid-campaign and checks
// the coordinator re-queues its cells onto the survivor: the campaign
// completes with every cell present and at least one re-queue.
func TestFleetSurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet failure drill")
	}
	ctx := context.Background()
	c, workers := startFleet(t, 2, time.Second)

	spec := client.FleetCampaignSpec{
		Name:    "drill",
		Targets: []string{"google"},
		Losses:  []float64{0.01, 0.02},
		Seeds:   []int64{13, 17},
		Config:  learncfg.Default(learncfg.Defaults{}),
	}
	spec.Config.Workers = 1
	spec.Config.Warmup = 20
	// Slow every query down so no cell can finish before the kill lands.
	spec.Config.RTT = learncfg.Duration(time.Millisecond)

	cells, err := fleet.ExpandCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 2 seeds × (clean + 2 loss levels)
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}

	st, err := c.SubmitFleetCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for a worker with in-flight cells, then crash it. Picking the
	// busier worker guarantees a requeue.
	var victim *testWorker
	deadline := time.Now().Add(30 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever had cells in flight")
		}
		fs, err := c.FleetStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		best, bestN := "", 0
		for _, w := range fs.Workers {
			if w.CellsAssigned > bestN {
				best, bestN = w.Name, w.CellsAssigned
			}
		}
		for _, w := range workers {
			if w.name == best {
				victim = w
			}
		}
		if victim == nil {
			time.Sleep(20 * time.Millisecond)
		}
	}
	t.Logf("killing worker %s", victim.name)
	victim.kill()

	wctx, cancel := context.WithTimeout(ctx, 300*time.Second)
	defer cancel()
	if st, err = c.WaitFleetCampaign(wctx, st.ID, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st.State != client.CampaignDone {
		t.Fatalf("campaign finished %s: %s", st.State, st.Error)
	}
	if st.Done != len(cells) || st.Failed != 0 {
		t.Fatalf("lost cells: done %d failed %d of %d", st.Done, st.Failed, len(cells))
	}
	if st.Requeued < 1 {
		t.Fatalf("worker death caused no re-queues (requeued %d)", st.Requeued)
	}

	// Every cell made it into the merged checkpoint despite the crash.
	merged, err := lab.ReadCheckpoint(st.MergedCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if _, ok := merged[cell.Key]; !ok {
			t.Fatalf("cell %s lost in the crash", cell.Key)
		}
	}

	// The fleet saw the death: one worker dead, and the survivor did
	// work. (The victim may have completed cells before dying, so only
	// the survivor's count is asserted.)
	fs, err := c.FleetStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadSeen := false
	for _, w := range fs.Workers {
		if w.Name == victim.name && w.State == client.WorkerDead {
			deadSeen = true
			if w.Requeued < 1 {
				t.Errorf("dead worker %s shows no requeued cells", w.Name)
			}
		}
	}
	if !deadSeen {
		t.Fatalf("victim %s never marked dead: %+v", victim.name, fs.Workers)
	}
}

// TestExpandCampaign covers the expansion invariants the coordinator
// relies on: key = lab.RunKey, dedup of colliding cells, validation.
func TestExpandCampaign(t *testing.T) {
	spec := client.FleetCampaignSpec{
		Targets: []string{"google"},
		Losses:  []float64{0.02},
		Config:  learncfg.Default(learncfg.Defaults{}),
	}
	cells, err := fleet.ExpandCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2 (clean + loss)", len(cells))
	}
	for _, cell := range cells {
		opts, err := cell.Config.Options()
		if err != nil {
			t.Fatal(err)
		}
		if key := lab.RunKey(cell.Target, opts...); key != cell.Key {
			t.Fatalf("cell key %q is not its RunKey %q", cell.Key, key)
		}
		if cell.Config.Store != "" {
			t.Fatalf("cell config leaked a store path %q", cell.Config.Store)
		}
	}

	// Cells whose configs collapse to one run key deduplicate: the run
	// key ignores workers, so two worker counts are one cell.
	a := spec
	a.Seeds = []int64{13, 13}
	cells, err = fleet.ExpandCampaign(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("duplicate seeds expanded to %d cells, want 2", len(cells))
	}

	if _, err := fleet.ExpandCampaign(client.FleetCampaignSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	bad := spec
	bad.Targets = []string{"no-such-target"}
	if _, err := fleet.ExpandCampaign(bad); err == nil {
		t.Fatal("unknown target accepted")
	}
}
