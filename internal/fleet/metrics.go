package fleet

import "repro/internal/metrics"

// The fleet plane's scrapeable counters, published into the unified
// metrics registry and served by the coordinator's GET /metrics
// (docs/MONITORING.md conventions: prognosis_<subsystem>_<name>).
var (
	mWorkersLive = metrics.Default().Gauge("prognosis_fleet_workers_live",
		"registered workers with a fresh heartbeat lease")
	mWorkersDead = metrics.Default().Gauge("prognosis_fleet_workers_dead",
		"registered workers whose lease expired or whose job API stopped answering")
	mCellsAssigned = metrics.Default().Counter("prognosis_fleet_cells_assigned_total",
		"campaign cells submitted to workers (re-submissions after a requeue count again)")
	mCellsRequeued = metrics.Default().Counter("prognosis_fleet_cells_requeued_total",
		"campaign cells taken back from dead or drained workers and re-assigned")
	mCellsMerged = metrics.Default().Counter("prognosis_fleet_cells_merged_total",
		"campaign cells folded into a merged checkpoint")
)

// heartbeatAge returns the per-worker heartbeat-age histogram child.
// Buckets are sized for sub-second to tens-of-seconds leases.
func heartbeatAge(worker string) *metrics.Histogram {
	return metrics.Default().HistogramWith("prognosis_fleet_heartbeat_age_seconds",
		"seconds between consecutive heartbeats of one worker",
		[]string{"worker"}, []string{worker},
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
}
