package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("google_s%d_l0.0%d", i, i%7)
	}
	return keys
}

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — two rings built by different join/leave histories that end
// with the same members agree on every key, and repeated lookups agree
// with themselves.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(0)
	a.Add("w1", 1)
	a.Add("w2", 2)
	a.Add("w3", 1)

	b := NewRing(0)
	b.Add("w3", 1)
	b.Add("ghost", 5)
	b.Add("w2", 2)
	b.Add("w1", 1)
	b.Remove("ghost")

	for _, key := range ringKeys(500) {
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: ring a placed on %q, ring b on %q", key, oa, ob)
		}
		if again := a.Owner(key); again != oa {
			t.Fatalf("key %q: repeated lookup moved %q -> %q", key, oa, again)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if owner := r.Owner("anything"); owner != "" {
		t.Fatalf("empty ring owned %q", owner)
	}
	r.Add("solo", 3)
	for _, key := range ringKeys(50) {
		if owner := r.Owner(key); owner != "solo" {
			t.Fatalf("single-member ring placed %q on %q", key, owner)
		}
	}
	r.Remove("solo")
	if owner := r.Owner("anything"); owner != "" {
		t.Fatalf("emptied ring owned %q", owner)
	}
}

// TestRingWeightedDistribution: a member with twice the weight owns
// roughly twice the keys.
func TestRingWeightedDistribution(t *testing.T) {
	r := NewRing(0)
	r.Add("light", 1)
	r.Add("heavy", 2)
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("heavy/light ownership ratio %.2f (counts %v), want ~2", ratio, counts)
	}
}

// TestRingRebalanceBound: adding or removing one member moves at most
// cells/members + slack cells — the minimal-movement property that makes
// re-queues on churn cheap. The slack absorbs virtual-node variance.
func TestRingRebalanceBound(t *testing.T) {
	const members = 4
	keys := ringKeys(2000)
	slack := len(keys) / 10

	r := NewRing(0)
	for i := 1; i <= members; i++ {
		r.Add(fmt.Sprintf("w%d", i), 1)
	}
	before := map[string]string{}
	for _, key := range keys {
		before[key] = r.Owner(key)
	}

	// One join: only keys that now belong to the newcomer may move.
	r.Add("w-new", 1)
	moved := 0
	for _, key := range keys {
		owner := r.Owner(key)
		if owner != before[key] {
			moved++
			if owner != "w-new" {
				t.Fatalf("join moved key %q to survivor %q (was %q)", key, owner, before[key])
			}
		}
	}
	if bound := len(keys)/members + slack; moved > bound {
		t.Fatalf("join moved %d keys, bound %d", moved, bound)
	}
	if moved == 0 {
		t.Fatal("join moved no keys — newcomer owns nothing")
	}

	// One leave: exactly the leaver's keys move, nothing else.
	after := map[string]string{}
	for _, key := range keys {
		after[key] = r.Owner(key)
	}
	r.Remove("w-new")
	moved = 0
	for _, key := range keys {
		owner := r.Owner(key)
		if owner != after[key] {
			moved++
			if after[key] != "w-new" {
				t.Fatalf("leave moved key %q owned by survivor %q", key, after[key])
			}
		}
		// Removing the newcomer must restore the original placement.
		if owner != before[key] {
			t.Fatalf("leave did not restore key %q to %q (got %q)", key, before[key], owner)
		}
	}
	if bound := len(keys)/(members+1) + slack; moved > bound {
		t.Fatalf("leave moved %d keys, bound %d", moved, bound)
	}
}
