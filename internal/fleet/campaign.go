package fleet

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/learncfg"
	"repro/pkg/client"
)

// Cell is one expanded unit of a sharded campaign: a (target × seed ×
// impairment) learning run, named by its run key. The key is
// lab.RunKey — the same identity the experiment uses for its query-store
// log — so the cell's name, its ring placement, its store log on
// whichever worker runs it, and its record in the merged checkpoint are
// all one string. That identity is what makes re-execution idempotent:
// a cell re-run after a worker death appends to the same logical store
// entry set and overwrites the same checkpoint record.
type Cell struct {
	// Key is the cell's run key (checkpoint record name, store log key,
	// and consistent-hash placement key).
	Key string
	// Target is the registry target the cell learns.
	Target string
	// Config is the fully resolved per-cell configuration (seed and
	// impairment burned in, Store cleared so the worker daemon uses its
	// own shared store).
	Config learncfg.Config
}

// ExpandCampaign expands a campaign spec into its cells: the impairment
// grid of the spec's Losses/Dups/Reorders axes (clean baseline first,
// exactly as `prognosis learn` builds it), crossed with every target and
// seed. Cells sharing a run key (e.g. two seeds that differ only in
// fields the key ignores) collapse into one — learning them twice would
// produce the same answer set.
func ExpandCampaign(spec client.FleetCampaignSpec) ([]Cell, error) {
	if len(spec.Targets) == 0 {
		return nil, fmt.Errorf("fleet: campaign needs at least one target")
	}
	for _, t := range spec.Targets {
		if _, err := learncfg.ParseTargets(t); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seed := spec.Config.Seed
		if seed == 0 {
			seed = learncfg.Default(learncfg.Defaults{}).Seed
		}
		seeds = []int64{seed}
	}
	grid := lab.ImpairmentGrid(spec.Losses, spec.Dups, spec.Reorders)
	var cells []Cell
	seen := map[string]bool{}
	for _, target := range spec.Targets {
		for _, seed := range seeds {
			for _, gc := range grid {
				cfg := spec.Config
				cfg.Seed = seed
				cfg.ImpairSeed = 0 // per-cell faults reseed from the cell's seed
				cfg.Loss = gc.Loss
				cfg.Duplicate = gc.Duplicate
				cfg.Reorder = gc.Reorder
				// The worker daemon supplies its own shared store; a
				// coordinator-local path would be meaningless there.
				cfg.Store = ""
				if cfg.Workers == 0 {
					cfg.Workers = 1
				}
				if cfg.Learner == "" {
					cfg.Learner = "ttt"
				}
				opts, err := cfg.Options()
				if err != nil {
					return nil, fmt.Errorf("fleet: cell %s/%s: %w", target, gc.Name(), err)
				}
				key := lab.RunKey(target, opts...)
				if seen[key] {
					continue
				}
				seen[key] = true
				cells = append(cells, Cell{Key: key, Target: target, Config: cfg})
			}
		}
	}
	return cells, nil
}
