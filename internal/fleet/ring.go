// Package fleet distributes campaign workloads across a fleet of
// prognosisd worker daemons. A weighted consistent-hash ring (Ring) maps
// campaign cell keys to workers with minimal movement under membership
// churn; a Coordinator expands a campaign spec into named cells, submits
// each cell to its ring owner through the ordinary pkg/client job API,
// tracks worker liveness with heartbeat leases, re-queues cells from dead
// or drained workers (safe, because cells are idempotent by key: the
// persistent query store and the campaign checkpoint both speak
// last-write-wins), and finally folds the per-worker query logs and
// learned models into one merged store and checkpoint. See docs/FLEET.md.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the ring's default virtual-node count per unit
// of worker weight. More virtual nodes smooth the key distribution (and
// tighten the minimal-movement bound on churn) at the cost of a larger
// sorted point array; 160 is the classic Ketama-family compromise.
const DefaultVirtualNodes = 160

// Ring is a weighted consistent-hash ring: each member contributes
// weight × vnodes points (hashes of "name#i") on a 64-bit circle, and a
// key is owned by the member whose point is the first at or clockwise
// after the key's hash. Placement is a pure function of the member set —
// insertion order never matters, because every mutation rebuilds the
// point array from the sorted member list — and removing or adding one
// member only moves the keys whose owning arc that member's points
// cover, which is what lets a coordinator re-queue a dead worker's cells
// without reshuffling the survivors'. Methods are safe for concurrent
// use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	weights map[string]int
	points  []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// weight unit (<= 0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, weights: map[string]int{}}
}

// Add inserts (or re-weights) a member. Weight <= 0 counts as 1. Keys
// not owned by the member's new points keep their previous owners.
func (r *Ring) Add(node string, weight int) {
	if node == "" {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.weights[node] = weight
	r.rebuild()
}

// Remove deletes a member; its keys flow to the clockwise survivors.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[node]; !ok {
		return
	}
	delete(r.weights, node)
	r.rebuild()
}

// rebuild regenerates the sorted point array from the member map. Called
// with the lock held. Rebuilding from scratch keeps placement a pure
// function of the member set: two rings holding the same members agree
// on every key regardless of the joins and leaves that got them there.
func (r *Ring) rebuild() {
	names := make([]string, 0, len(r.weights))
	for n := range r.weights {
		names = append(names, n)
	}
	sort.Strings(names)
	points := make([]ringPoint, 0, len(names)*r.vnodes)
	for _, name := range names {
		for i := 0; i < r.weights[name]*r.vnodes; i++ {
			points = append(points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(i)), node: name})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash collisions between members are broken by name so the
		// winner does not depend on point-array construction order.
		return points[i].node < points[j].node
	})
	r.points = points
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0 // wrap: the first point clockwise from the top of the circle
	}
	return r.points[idx].node
}

// Nodes lists the members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.weights))
	for n := range r.weights {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.weights)
}

// Weight returns a member's weight (0 when absent).
func (r *Ring) Weight(node string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.weights[node]
}

// hash64 is FNV-1a over s: deterministic across processes and platforms,
// which the fleet depends on — a coordinator restart must re-derive the
// same placement from the same member set.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
