package quicsim_test

import (
	"testing"

	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/testutil"
)

// droppingTransport drops the nth client→server datagram (0-based), once.
type droppingTransport struct {
	inner reference.Transport
	n     int
	seen  int
}

func (d *droppingTransport) Send(src string, datagram []byte) [][]byte {
	d.seen++
	if d.seen-1 == d.n {
		return nil
	}
	return d.inner.Send(src, datagram)
}

func drive(t *testing.T, p *testutil.QUICPair, word ...string) []string {
	t.Helper()
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(word))
	for _, sym := range word {
		o, err := p.Step(sym)
		if err != nil {
			t.Fatalf("step %q: %v", sym, err)
		}
		out = append(out, o)
	}
	return out
}

// TestLossyRetransmitCleanIdenticalToGoogle: with no losses the profile is
// observationally the Google profile — same ground truth, same wire
// behaviour.
func TestLossyRetransmitCleanIdenticalToGoogle(t *testing.T) {
	gt := quicsim.GroundTruth(quicsim.ProfileLossyRetransmit)
	gg := quicsim.GroundTruth(quicsim.ProfileGoogle)
	if eq, ce := gt.Equivalent(gg); !eq {
		t.Fatalf("ground truths differ, witness %v", ce)
	}
	lossy := testutil.NewQUICPair(quicsim.ProfileLossyRetransmit, nil)
	google := testutil.NewQUICPair(quicsim.ProfileGoogle, nil)
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto},
		{quicsim.SymShortStream, quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortFC},
	}
	for _, w := range words {
		a, b := drive(t, lossy, w...), drive(t, google, w...)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("clean-link divergence on %v step %d: %q vs %q", w, i, a[i], b[i])
			}
		}
	}
}

// TestLossyRetransmitDegradesAfterGap: one lost client datagram flips the
// server into permanent double-send — visible on every later connection,
// because the buggy loss statistics leak across resets. The drop must hit
// a non-first packet of its number space: the server adopts the first
// packet it processes per space (clients legitimately burn numbers on
// pre-handshake packets), so only a mid-space gap reveals a loss.
func TestLossyRetransmitDegradesAfterGap(t *testing.T) {
	pair := testutil.NewQUICPair(quicsim.ProfileLossyRetransmit, func(tr reference.Transport) reference.Transport {
		// Datagrams: #0 INITIAL, #1 HANDSHAKE, #2 SHORT (app pn 0),
		// #3 SHORT (app pn 1) — dropped, #4 SHORT (app pn 2) → gap.
		return &droppingTransport{inner: tr, n: 3}
	})
	out := drive(t, pair,
		quicsim.SymInitialCrypto, quicsim.SymHandshakeC,
		quicsim.SymShortStream, quicsim.SymShortStream, quicsim.SymShortFC)
	if out[3] != "{}" {
		t.Fatalf("dropped datagram still answered: %q", out[3])
	}
	// The next app-space packet exposes the gap; from then on every
	// flight is doubled.
	want := "{SHORT(?,?)[ACK,STREAM],SHORT(?,?)[ACK,STREAM]}"
	if out[4] != want {
		t.Fatalf("degraded flight = %q, want doubled %q", out[4], want)
	}
	// A fresh connection after Reset still shows the doubled handshake
	// flight: the degradation survives resets (the Issue-style leak).
	next := drive(t, pair, quicsim.SymInitialCrypto)
	if next[0] == "{INITIAL(?,?)[ACK,CRYPTO],HANDSHAKE(?,?)[CRYPTO],HANDSHAKE(?,?)[CRYPTO],SHORT(?,?)[STREAM]}" {
		t.Fatalf("degradation did not survive reset: %q", next[0])
	}
}

// TestLossyRetransmitToleratesPreHandshakePackets: packet numbers burned
// on packets the server discards for lack of keys are not losses; the
// profile must stay clean through them.
func TestLossyRetransmitToleratesPreHandshakePackets(t *testing.T) {
	pair := testutil.NewQUICPair(quicsim.ProfileLossyRetransmit, nil)
	out := drive(t, pair,
		quicsim.SymShortStream, quicsim.SymHandshakeC, // dropped: no keys yet
		quicsim.SymInitialCrypto, quicsim.SymHandshakeC)
	if out[3] != "{SHORT(?,?)[CRYPTO],SHORT(?,?)[HANDSHAKE_DONE]}" {
		t.Fatalf("pre-handshake packets misread as losses: %q", out[3])
	}
}

// TestLossyRetransmitProfileString pins the registry name.
func TestLossyRetransmitProfileString(t *testing.T) {
	if got := quicsim.ProfileLossyRetransmit.String(); got != "lossy-retransmit" {
		t.Fatalf("String() = %q", got)
	}
}
