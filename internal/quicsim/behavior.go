// Package quicsim implements the QUIC systems under learning: a mini-QUIC
// server processing real protected packets (header parsing, HKDF/AES-GCM
// packet protection, frame parsing) whose connection-level behaviour is
// driven by per-implementation profiles.
//
// Profiles reproduce the observable behaviour of the closed-source targets
// the paper analyzed (see DESIGN.md, substitutions): ProfileGoogle yields
// the 12-state / 84-transition abstract model of Appendix A.2, including
// the constant-zero Maximum Stream Data bug of Issue 4 (§6.2.6);
// ProfileQuiche yields the 8-state / 56-transition model of Appendix A.3;
// ProfileMvfst reproduces Issue 2 (§6.2.4), the nondeterministic stateless
// RESET after connection closure; and the Retry-required option reproduces
// the setting of Issue 3 (§6.2.5).
package quicsim

import (
	"fmt"
	"strings"

	"repro/internal/automata"
	"repro/internal/quicwire"
)

// Profile selects which implementation's behaviour the server reproduces.
type Profile int

// Implementation profiles.
const (
	// ProfileGoogle models Google QUIC: aborts on packet-number-space reset
	// (Issue 1), announces stream blocking with STREAM_DATA_BLOCKED whose
	// Maximum Stream Data field is stuck at 0 (Issue 4).
	ProfileGoogle Profile = iota
	// ProfileGoogleFixed is ProfileGoogle with the Issue 4 bug repaired:
	// STREAM_DATA_BLOCKED carries the real blocked offset. Used as the
	// synthesis experiment's control.
	ProfileGoogleFixed
	// ProfileQuiche models Cloudflare Quiche: drops malformed initials
	// outright, never announces blocking, sends its greeting streams with
	// the handshake flight.
	ProfileQuiche
	// ProfileMvfst models Facebook mvfst: closes the connection on a
	// client HANDSHAKE_DONE and thereafter answers probes with a stateless
	// RESET only ~82% of the time (Issue 2).
	ProfileMvfst
	// ProfileLossyRetransmit is a deliberately retransmission-buggy
	// variant of the Google profile: on a clean link it is behaviourally
	// identical (its ground truth is the same 12-state machine), but its
	// loss-recovery statistics are kept server-globally — they leak
	// across connections and resets, mvfst-style — and once enough
	// client packet-number gaps reveal lost datagrams, the server
	// permanently "recovers" by sending every output packet twice. The
	// bug is invisible to clean-link learning and surfaces under
	// impairment as a genuinely different learned model (doubled
	// flights), not as noise — the scenario target for the
	// adverse-network campaign and modeldiff.
	ProfileLossyRetransmit
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileGoogle:
		return "google"
	case ProfileGoogleFixed:
		return "google-fixed"
	case ProfileQuiche:
		return "quiche"
	case ProfileMvfst:
		return "mvfst"
	case ProfileLossyRetransmit:
		return "lossy-retransmit"
	}
	return fmt.Sprintf("profile-%d", int(p))
}

// The paper's seven-symbol abstract input alphabet (§6.2.2).
const (
	SymInitialCrypto = "INITIAL(?,?)[CRYPTO]"
	SymInitialHD     = "INITIAL(?,?)[ACK,HANDSHAKE_DONE]"
	SymHandshakeC    = "HANDSHAKE(?,?)[ACK,CRYPTO]"
	SymHandshakeHD   = "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"
	SymShortFC       = "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]"
	SymShortStream   = "SHORT(?,?)[ACK,STREAM]"
	SymShortHD       = "SHORT(?,?)[ACK,HANDSHAKE_DONE]"
)

// SymInitialBadVer is an Initial carried in a long header with a grease
// (unknown) version. It is not part of the paper's seven-symbol alphabet;
// the quic-vn target adds it to probe version-negotiation handling. The
// behaviour tables never see it — a bad-version header fails wire parsing
// before abstraction, and the response (Version Negotiation or silence)
// comes from the admission layer.
const SymInitialBadVer = "INITIAL_BADVER(?,?)[CRYPTO]"

// InputAlphabet returns the seven abstract input symbols in the paper's
// order.
func InputAlphabet() []string {
	return []string{
		SymInitialCrypto, SymInitialHD,
		SymHandshakeC, SymHandshakeHD,
		SymShortFC, SymShortStream, SymShortHD,
	}
}

// VNInputAlphabet is the quic-vn target's alphabet: the paper's seven
// symbols plus the bad-version Initial probe.
func VNInputAlphabet() []string {
	return append(InputAlphabet(), SymInitialBadVer)
}

// PacketSpec describes one abstract output packet: its type and the frame
// types it carries, in canonical label order (ACK first, then alphabetical,
// matching quicwire.FrameNames).
type PacketSpec struct {
	Type   quicwire.PacketType
	Frames []quicwire.FrameType
	// Greeting marks STREAM frames that carry the server's own greeting
	// streams (sent with the handshake flights) rather than the response
	// to client data on stream 0.
	Greeting bool
}

// Label renders the spec in the paper's abstract notation.
func (p PacketSpec) Label() string {
	names := make([]string, len(p.Frames))
	for i, f := range p.Frames {
		names[i] = f.String()
	}
	return fmt.Sprintf("%s(?,?)[%s]", p.Type, strings.Join(names, ","))
}

// OutputLabel renders a list of output packets as one abstract output
// symbol, e.g. "{HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}". The
// empty output is "{}".
func OutputLabel(specs []PacketSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.Label()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// transition is one behaviour-table entry.
type transition struct {
	next int
	out  []PacketSpec
}

// behavior is a profile's connection-level specification: a deterministic
// transition table over the abstract alphabet.
type behavior struct {
	numStates int
	table     map[int]map[string]transition
	// closedState marks the state in which ProfileMvfst responds
	// nondeterministically with stateless RESETs; -1 when unused.
	closedState int
}

// Frame list shorthands.
var (
	fCrypto   = []quicwire.FrameType{quicwire.FrameCrypto}
	fAckC     = []quicwire.FrameType{quicwire.FrameAck, quicwire.FrameCrypto}
	fStream   = []quicwire.FrameType{quicwire.FrameStream}
	fHD       = []quicwire.FrameType{quicwire.FrameHandshakeDone}
	fAck      = []quicwire.FrameType{quicwire.FrameAck}
	fAckSt    = []quicwire.FrameType{quicwire.FrameAck, quicwire.FrameStream}
	fAckStSDB = []quicwire.FrameType{quicwire.FrameAck, quicwire.FrameStream, quicwire.FrameStreamDataBlocked}
	fCC       = []quicwire.FrameType{quicwire.FrameConnectionClose}
	fAckCC    = []quicwire.FrameType{quicwire.FrameAck, quicwire.FrameConnectionClose}
	fAckCCSt  = []quicwire.FrameType{quicwire.FrameAck, quicwire.FrameConnectionClose, quicwire.FrameStream}
	fCCSt     = []quicwire.FrameType{quicwire.FrameConnectionClose, quicwire.FrameStream}
	fHAck     = []quicwire.FrameType{quicwire.FrameAck}
	fTicketHD = []quicwire.FrameType{quicwire.FrameCrypto, quicwire.FrameHandshakeDone, quicwire.FrameStream}
)

func pkt(t quicwire.PacketType, frames []quicwire.FrameType) PacketSpec {
	return PacketSpec{Type: t, Frames: frames}
}

// gpkt is pkt for packets whose STREAM frames are server greetings.
func gpkt(t quicwire.PacketType, frames []quicwire.FrameType) PacketSpec {
	return PacketSpec{Type: t, Frames: frames, Greeting: true}
}

// Google QUIC output flights.
var (
	googleServerFlight = []PacketSpec{
		pkt(quicwire.PacketInitial, fAckC),
		pkt(quicwire.PacketHandshake, fCrypto),
		pkt(quicwire.PacketHandshake, fCrypto),
		gpkt(quicwire.PacketShort, fStream),
	}
	googleDoneFlight = []PacketSpec{
		pkt(quicwire.PacketShort, fCrypto),
		pkt(quicwire.PacketShort, fHD),
	}
	googleDoneFlightBuffered = []PacketSpec{
		pkt(quicwire.PacketShort, fCrypto),
		pkt(quicwire.PacketShort, fHD),
		pkt(quicwire.PacketShort, fAckSt),
	}
	googleCloseHS = []PacketSpec{
		pkt(quicwire.PacketHandshake, fAckCC),
		pkt(quicwire.PacketShort, fCCSt),
	}
	googleCloseInitial = []PacketSpec{
		pkt(quicwire.PacketHandshake, fCC),
		pkt(quicwire.PacketInitial, fAckCC),
		pkt(quicwire.PacketShort, fCCSt),
	}
	googleCloseApp = []PacketSpec{pkt(quicwire.PacketShort, fAckCCSt)}
	sAck           = []PacketSpec{pkt(quicwire.PacketShort, fAck)}
	sAckStream     = []PacketSpec{pkt(quicwire.PacketShort, fAckSt)}
	sAckStSDB      = []PacketSpec{pkt(quicwire.PacketShort, fAckStSDB)}
	sCC            = []PacketSpec{pkt(quicwire.PacketShort, fCC)}
	hCC            = []PacketSpec{pkt(quicwire.PacketHandshake, fCC)}
)

// googleBehavior builds the 12-state Google QUIC profile. State roles:
//
//	0 start; 1 handshake in progress; 2 established (one chunk of stream
//	credit); 3 dead-on-arrival sink (connection created by a violating
//	Initial, never answered); 4 closed during handshake (retransmits
//	CONNECTION_CLOSE at handshake level); 5 closed after establishment
//	(retransmits at 1-RTT level); 6 handshake in progress with buffered
//	early 1-RTT data; 7 response blocked, two chunks pending (emits
//	STREAM_DATA_BLOCKED — the Issue 4 frame); 8 response fully flushed;
//	9 two chunks of credit, no data yet; 10 blocked, one chunk pending;
//	11 three chunks of credit, no data yet.
func googleBehavior() behavior {
	t := map[int]map[string]transition{
		0: {
			SymInitialCrypto: {1, googleServerFlight},
			SymInitialHD:     {3, nil},
			SymHandshakeC:    {0, nil}, SymHandshakeHD: {0, nil},
			SymShortFC: {0, nil}, SymShortStream: {0, nil}, SymShortHD: {0, nil},
		},
		1: {
			SymHandshakeC:    {2, googleDoneFlight},
			SymHandshakeHD:   {4, googleCloseHS},
			SymInitialCrypto: {4, googleCloseInitial}, // Issue 1: abort on PN-space reset
			SymInitialHD:     {4, googleCloseInitial},
			SymShortStream:   {6, nil},
			SymShortFC:       {1, nil}, SymShortHD: {1, nil},
		},
		2: {
			SymShortStream:   {7, sAckStream},
			SymShortFC:       {9, sAck},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {2, nil}, SymInitialHD: {2, nil},
			SymHandshakeC: {2, nil}, SymHandshakeHD: {2, nil},
		},
		3: allSelf(3, nil),
		4: {
			SymInitialCrypto: {4, hCC}, SymInitialHD: {4, hCC},
			SymHandshakeC: {4, hCC}, SymHandshakeHD: {4, hCC},
			SymShortFC: {4, nil}, SymShortStream: {4, nil}, SymShortHD: {4, nil},
		},
		5: {
			SymShortFC: {5, sCC}, SymShortStream: {5, sCC}, SymShortHD: {5, sCC},
			SymInitialCrypto: {5, nil}, SymInitialHD: {5, nil},
			SymHandshakeC: {5, nil}, SymHandshakeHD: {5, nil},
		},
		6: {
			SymHandshakeC:    {7, googleDoneFlightBuffered},
			SymHandshakeHD:   {4, googleCloseHS},
			SymInitialCrypto: {4, googleCloseInitial},
			SymInitialHD:     {4, googleCloseInitial},
			SymShortStream:   {6, nil},
			SymShortFC:       {6, nil}, SymShortHD: {6, nil},
		},
		7: {
			SymShortStream:   {7, sAckStSDB},
			SymShortFC:       {10, sAckStream},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {7, nil}, SymInitialHD: {7, nil},
			SymHandshakeC: {7, nil}, SymHandshakeHD: {7, nil},
		},
		8: {
			SymShortStream:   {8, sAck},
			SymShortFC:       {8, sAck},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {8, nil}, SymInitialHD: {8, nil},
			SymHandshakeC: {8, nil}, SymHandshakeHD: {8, nil},
		},
		9: {
			SymShortStream:   {10, sAckStream},
			SymShortFC:       {11, sAck},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {9, nil}, SymInitialHD: {9, nil},
			SymHandshakeC: {9, nil}, SymHandshakeHD: {9, nil},
		},
		10: {
			SymShortStream:   {10, sAckStSDB},
			SymShortFC:       {8, sAckStream},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {10, nil}, SymInitialHD: {10, nil},
			SymHandshakeC: {10, nil}, SymHandshakeHD: {10, nil},
		},
		11: {
			SymShortStream:   {8, sAckStream},
			SymShortFC:       {11, sAck},
			SymShortHD:       {5, googleCloseApp},
			SymInitialCrypto: {11, nil}, SymInitialHD: {11, nil},
			SymHandshakeC: {11, nil}, SymHandshakeHD: {11, nil},
		},
	}
	return behavior{numStates: 12, table: t, closedState: -1}
}

// Quiche output flights.
var (
	quicheServerFlight = []PacketSpec{
		pkt(quicwire.PacketInitial, fAckC),
		pkt(quicwire.PacketHandshake, fCrypto),
		pkt(quicwire.PacketHandshake, fCrypto),
	}
	quicheDoneFlight = []PacketSpec{
		pkt(quicwire.PacketHandshake, fHAck),
		gpkt(quicwire.PacketShort, fTicketHD),
		gpkt(quicwire.PacketShort, fStream),
		gpkt(quicwire.PacketShort, fStream),
	}
)

// quicheBehavior builds the 8-state Quiche profile. State roles:
//
//	0 start (violating initials are dropped outright — the design
//	difference behind Issue 1); 1 handshake in progress; 2 established,
//	no send credit; 3 closed during handshake; 4 established, credit
//	raised; 5 established, response pending but silently withheld (Quiche
//	never sends STREAM_DATA_BLOCKED — contrast with Google in Issue 4);
//	6 handshake with buffered early data; 7 closed after establishment.
func quicheBehavior() behavior {
	t := map[int]map[string]transition{
		0: {
			SymInitialCrypto: {1, quicheServerFlight},
			SymInitialHD:     {0, nil},
			SymHandshakeC:    {0, nil}, SymHandshakeHD: {0, nil},
			SymShortFC: {0, nil}, SymShortStream: {0, nil}, SymShortHD: {0, nil},
		},
		1: {
			SymHandshakeC:    {2, quicheDoneFlight},
			SymHandshakeHD:   {3, hCC},
			SymInitialCrypto: {3, hCC},
			SymInitialHD:     {3, hCC},
			SymShortStream:   {6, nil},
			SymShortFC:       {1, nil}, SymShortHD: {1, nil},
		},
		2: {
			SymShortStream:   {5, sAck},
			SymShortFC:       {4, sAck},
			SymShortHD:       {7, sCC},
			SymInitialCrypto: {2, nil}, SymInitialHD: {2, nil},
			SymHandshakeC: {2, nil}, SymHandshakeHD: {2, nil},
		},
		3: {
			SymHandshakeC: {3, hCC}, SymHandshakeHD: {3, hCC},
			SymInitialCrypto: {3, nil}, SymInitialHD: {3, nil},
			SymShortFC: {3, nil}, SymShortStream: {3, nil}, SymShortHD: {3, nil},
		},
		4: {
			SymShortStream:   {4, sAckStream},
			SymShortFC:       {4, sAck},
			SymShortHD:       {7, sCC},
			SymInitialCrypto: {4, nil}, SymInitialHD: {4, nil},
			SymHandshakeC: {4, nil}, SymHandshakeHD: {4, nil},
		},
		5: {
			SymShortStream:   {5, sAck},
			SymShortFC:       {4, sAckStream},
			SymShortHD:       {7, sCC},
			SymInitialCrypto: {5, nil}, SymInitialHD: {5, nil},
			SymHandshakeC: {5, nil}, SymHandshakeHD: {5, nil},
		},
		6: {
			SymHandshakeC:    {5, quicheDoneFlight},
			SymHandshakeHD:   {3, hCC},
			SymInitialCrypto: {3, hCC},
			SymInitialHD:     {3, hCC},
			SymShortStream:   {6, nil},
			SymShortFC:       {6, nil}, SymShortHD: {6, nil},
		},
		7: {
			SymShortFC: {7, sCC}, SymShortStream: {7, sCC}, SymShortHD: {7, sCC},
			SymInitialCrypto: {7, nil}, SymInitialHD: {7, nil},
			SymHandshakeC: {7, nil}, SymHandshakeHD: {7, nil},
		},
	}
	return behavior{numStates: 8, table: t, closedState: -1}
}

// mvfstBehavior builds the mvfst profile. State 3 is the closed state in
// which the server answers probes with a stateless RESET nondeterministically
// (Issue 2); the table records the deterministic skeleton and the server
// overrides state 3's outputs at runtime.
func mvfstBehavior() behavior {
	flight := []PacketSpec{
		pkt(quicwire.PacketInitial, fAckC),
		pkt(quicwire.PacketHandshake, fCrypto),
		pkt(quicwire.PacketHandshake, fCrypto),
	}
	done := []PacketSpec{
		pkt(quicwire.PacketShort, fCrypto),
		pkt(quicwire.PacketShort, fHD),
	}
	t := map[int]map[string]transition{
		0: {
			SymInitialCrypto: {1, flight},
			SymInitialHD:     {0, nil},
			SymHandshakeC:    {0, nil}, SymHandshakeHD: {0, nil},
			SymShortFC: {0, nil}, SymShortStream: {0, nil}, SymShortHD: {0, nil},
		},
		1: {
			SymHandshakeC:    {2, done},
			SymHandshakeHD:   {3, hCC}, // the Issue 2 trigger sequence
			SymInitialCrypto: {3, hCC},
			SymInitialHD:     {3, hCC},
			SymShortFC:       {1, nil}, SymShortStream: {1, nil}, SymShortHD: {1, nil},
		},
		2: {
			SymShortStream:   {2, sAck},
			SymShortFC:       {2, sAck},
			SymShortHD:       {3, sCC},
			SymInitialCrypto: {2, nil}, SymInitialHD: {2, nil},
			SymHandshakeC: {2, nil}, SymHandshakeHD: {2, nil},
		},
		3: allSelf(3, nil), // outputs overridden nondeterministically
	}
	return behavior{numStates: 4, table: t, closedState: 3}
}

// allSelf builds a row where every symbol self-loops with the same output.
func allSelf(state int, out []PacketSpec) map[string]transition {
	row := make(map[string]transition, 7)
	for _, sym := range InputAlphabet() {
		row[sym] = transition{state, out}
	}
	return row
}

// behaviorFor returns the profile's behaviour table.
func behaviorFor(p Profile) behavior {
	switch p {
	case ProfileGoogle, ProfileGoogleFixed, ProfileLossyRetransmit:
		// The lossy-retransmit profile shares Google's clean-link
		// behaviour table; its retransmission bug lives in the server's
		// packet-number gap handling, outside the table.
		return googleBehavior()
	case ProfileQuiche:
		return quicheBehavior()
	case ProfileMvfst:
		return mvfstBehavior()
	}
	panic(fmt.Sprintf("quicsim: unknown profile %d", int(p)))
}

// GroundTruth returns the profile's abstract specification as a Mealy
// machine over the paper's alphabet. For ProfileMvfst the machine encodes
// only the deterministic skeleton (closed-state probes answered silently);
// the live server deviates nondeterministically, which is precisely what
// the nondeterminism check detects. For ProfileLossyRetransmit it is the
// clean-link specification (identical to ProfileGoogle's): the doubled
// flights of the degraded mode are, by design, observable only after the
// link has actually lost datagrams.
func GroundTruth(p Profile) *automata.Mealy {
	b := behaviorFor(p)
	m := automata.NewMealy(InputAlphabet())
	for m.NumStates() < b.numStates {
		m.AddState()
	}
	for s, row := range b.table {
		for sym, tr := range row {
			m.SetTransition(automata.State(s), sym, automata.State(tr.next), OutputLabel(tr.out))
		}
	}
	return m
}
