package quicsim

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/quiccrypto"
	"repro/internal/quicwire"
)

// Packet number spaces.
const (
	spaceInitial = iota
	spaceHandshake
	spaceApp
	numSpaces
)

// Tunables shared with the reference client. Chunk is the response stream
// chunk size; RespTotal is the total response the Google profile wants to
// send (three chunks, so two flow-control raises are needed to flush it).
const (
	Chunk     = 100
	RespTotal = 3 * Chunk
	// CIDLen is the connection-ID length all endpoints in this repo use.
	CIDLen = 8
)

// Config parameterizes a Server.
type Config struct {
	Profile Profile
	// Seed drives all server randomness (CIDs, hello randoms). The same
	// seed yields identical behaviour across resets, keeping learning
	// deterministic (except for profile-intended nondeterminism).
	Seed int64
	// RetryRequired makes the server validate client addresses with a
	// Retry exchange before accepting a connection (the Issue 3 setting).
	RetryRequired bool
	// VersionNegotiation makes the server answer long headers carrying an
	// unknown version with a Version Negotiation packet — but only before
	// a connection is established; afterwards such packets are dropped
	// silently (RFC 9000 §6.1: VN is sent only in response to packets
	// that might create a new connection).
	VersionNegotiation bool
}

// Server is a mini-QUIC server endpoint. It processes one connection at a
// time (the learning setup resets between queries) and is safe for
// concurrent use.
type Server struct {
	mu     sync.Mutex
	cfg    Config
	beh    behavior
	static []byte // static key for reset tokens and retry tags

	// resetRNG survives Reset: it drives the mvfst profile's
	// nondeterministic stateless RESETs across queries (Issue 2).
	resetRNG *rand.Rand

	// Per-connection state, cleared by Reset.
	est          bool
	state        int
	scid         []byte
	clientCID    []byte // client's SCID: the DCID we send to
	keys         [numSpaces]struct{ client, server *quiccrypto.Keys }
	sendPN       [numSpaces]uint64
	largestRecv  [numSpaces]uint64
	serverRandom []byte
	clientRandom []byte
	cryptoSent   [numSpaces]uint64

	clientStreamRecv uint64
	respOffset       uint64
	respLimit        uint64
	greetingsSent    int

	// ProfileLossyRetransmit state: nextPN tracks the expected client
	// packet number per space, and a gap means a datagram was lost in
	// flight. pnSeen makes tracking start at the first packet the server
	// actually processes in a space — clients legitimately burn packet
	// numbers on pre-handshake packets the server discards for lack of
	// keys, and those must not look like losses. gapCount and degraded
	// model the bug itself: the loss-recovery statistics are kept
	// server-globally (they deliberately survive Reset, like mvfst's
	// reset coin), and once enough gaps accumulate the server permanently
	// switches to aggressive double-send "retransmission" of every
	// output packet.
	nextPN [numSpaces]uint64
	pnSeen [numSpaces]bool

	// gapCount and degraded survive Reset: Issue-style cross-connection
	// leakage, observable only on links that actually lose datagrams.
	gapCount int
	degraded bool

	// frameScratch is the reused frame slice for the decode hot path. It
	// is only touched under mu, and the parsed frames never outlive the
	// packet being processed (applyFrameEffects copies what it keeps).
	frameScratch []quicwire.Frame
}

// lossyRetransGapLimit is how many observed packet-number gaps flip the
// lossy-retransmit profile into its degraded double-send mode. The first
// gap suffices: on an impaired link the flip then happens within the
// first few queries, so essentially the whole learning run observes the
// (consistent) degraded behaviour.
const lossyRetransGapLimit = 1

// NewServer returns a server in its initial state.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		beh:      behaviorFor(cfg.Profile),
		static:   seedBytes(cfg.Seed, "static-key", 32),
		resetRNG: rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
	}
	s.resetLocked()
	return s
}

// seedBytes derives deterministic pseudo-random bytes from a seed and label.
func seedBytes(seed int64, label string, n int) []byte {
	mac := hmac.New(sha256.New, []byte(label))
	fmt.Fprintf(mac, "%d", seed)
	out := mac.Sum(nil)
	for len(out) < n {
		mac.Reset()
		mac.Write(out)
		out = mac.Sum(out)
	}
	return out[:n]
}

// Reset implements Adapter property (3): it returns the server to its
// initial state, dropping all connection state. Profile-intended
// nondeterminism (the mvfst RESET coin) deliberately survives resets.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetLocked()
}

func (s *Server) resetLocked() {
	s.est = false
	s.state = 0
	s.scid = seedBytes(s.cfg.Seed, "scid", CIDLen)
	s.clientCID = nil
	s.keys = [numSpaces]struct{ client, server *quiccrypto.Keys }{}
	s.sendPN = [numSpaces]uint64{}
	s.largestRecv = [numSpaces]uint64{}
	s.serverRandom = seedBytes(s.cfg.Seed, "server-random", 32)
	s.clientRandom = nil
	s.cryptoSent = [numSpaces]uint64{}
	s.clientStreamRecv = 0
	s.respOffset = 0
	s.greetingsSent = 0
	s.nextPN = [numSpaces]uint64{}
	s.pnSeen = [numSpaces]bool{}
	if s.cfg.Profile == ProfileQuiche {
		s.respLimit = 0
	} else {
		s.respLimit = Chunk
	}
}

// BehaviorState returns the current abstract state (for tests).
func (s *Server) BehaviorState() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// HandleDatagram processes one incoming UDP datagram from the given source
// address (opaque string, e.g. "10.0.0.2:4433") and returns the datagrams
// the server sends in response, one packet per datagram.
func (s *Server) HandleDatagram(src string, datagram []byte) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()

	var out [][]byte
	rest := datagram
	for len(rest) > 0 {
		hdr, err := quicwire.ParseHeader(rest, CIDLen)
		if err != nil {
			if err == quicwire.ErrBadVersion {
				if vn := s.versionNegotiate(rest); vn != nil {
					out = append(out, vn)
				}
			}
			break // undecodable datagram tail: drop silently
		}
		pkt := rest[:hdr.PayloadEnd]
		rest = rest[hdr.PayloadEnd:]
		out = append(out, s.processPacket(src, pkt, hdr)...)
	}
	return out
}

// versionNegotiate answers an unknown-version long header with a Version
// Negotiation packet advertising v1, echoing the client's connection IDs
// (our DCID is the client's SCID and vice versa). Returns nil when the
// feature is off, a connection is already established, or the invariant
// header prefix itself is malformed.
func (s *Server) versionNegotiate(data []byte) []byte {
	if !s.cfg.VersionNegotiation || s.est {
		return nil
	}
	_, dcid, scid, err := quicwire.LongHeaderCIDs(data)
	if err != nil {
		return nil
	}
	return quicwire.AppendVersionNegotiation(nil, scid, dcid, []uint32{quicwire.Version1})
}

// processPacket handles a single (possibly coalesced-out) packet.
func (s *Server) processPacket(src string, pkt []byte, hdr quicwire.Header) [][]byte {
	// Connection admission on Initials.
	if hdr.Type == quicwire.PacketInitial && !s.est {
		if s.cfg.RetryRequired {
			if len(hdr.Token) == 0 {
				return [][]byte{s.buildRetry(src, hdr)}
			}
			if !s.validToken(src, hdr.DCID, hdr.Token) {
				return nil
			}
		}
		s.acceptConnection(hdr)
	}
	if !s.est {
		return nil // no connection: nothing can be decrypted
	}

	space, ok := spaceForType(hdr.Type)
	if !ok {
		return nil // Retry/VN from a client is meaningless; drop
	}
	keys := s.keys[space].client
	if keys == nil {
		return nil // keys not derivable yet: drop (realistic behaviour)
	}

	// Remove header protection and packet protection.
	buf := append([]byte(nil), pkt...)
	if err := keys.UnprotectHeader(buf, hdr.PNOffset); err != nil {
		return nil
	}
	pn, err := quicwire.DecodePacketNumber(buf, hdr.PNOffset)
	if err != nil {
		return nil
	}
	ad := buf[:hdr.PNOffset+4]
	payload, err := keys.Open(buf[hdr.PNOffset+4:hdr.PayloadEnd], pn, ad)
	if err != nil {
		return nil
	}
	frames, err := quicwire.ParseFramesAppend(s.frameScratch[:0], payload)
	s.frameScratch = frames[:0]
	if err != nil {
		return nil
	}
	if pn > s.largestRecv[space] {
		s.largestRecv[space] = pn
	}
	s.applyFrameEffects(space, frames)

	if s.cfg.Profile == ProfileLossyRetransmit {
		// The retransmission bug: a packet-number gap means a client
		// datagram was lost. The broken loss-recovery logic accumulates
		// gaps in a server-global counter, and past the limit it
		// permanently "recovers" by sending every output packet twice.
		// Invisible on a clean link (client packet numbers are contiguous
		// per space); on a lossy one the flip is deterministic and the
		// doubled flights become the behaviour learning observes.
		if s.pnSeen[space] && pn > s.nextPN[space] {
			s.gapCount++
			if s.gapCount >= lossyRetransGapLimit {
				s.degraded = true
			}
		}
		if !s.pnSeen[space] || pn >= s.nextPN[space] {
			s.pnSeen[space] = true
			s.nextPN[space] = pn + 1
		}
	}

	// Abstract the packet and step the behaviour machine.
	sym := fmt.Sprintf("%s(?,?)[%s]", hdr.Type, quicwire.FrameNames(frames))
	if s.beh.closedState >= 0 && s.state == s.beh.closedState {
		// Issue 2: the mvfst closed state answers probes with a stateless
		// RESET only ~82% of the time, with no back-off.
		if s.resetRNG.Float64() < 0.82 {
			return [][]byte{s.buildStatelessReset()}
		}
		return nil
	}
	tr, ok := s.beh.table[s.state][sym]
	if !ok {
		return nil // symbol outside the modelled alphabet: drop
	}
	s.state = tr.next
	var out [][]byte
	for _, spec := range tr.out {
		out = append(out, s.buildPacket(spec))
		if s.degraded {
			// The "retransmission": a second copy of the packet, freshly
			// numbered and sealed, doubling every flight the profile
			// emits from now on.
			out = append(out, s.buildPacket(spec))
		}
	}
	return out
}

// acceptConnection creates connection state from a client Initial.
func (s *Server) acceptConnection(hdr quicwire.Header) {
	s.est = true
	s.clientCID = append([]byte(nil), hdr.SCID...)
	clientSecret, serverSecret := quiccrypto.InitialSecrets(hdr.DCID)
	s.keys[spaceInitial].client = mustKeys(clientSecret)
	s.keys[spaceInitial].server = mustKeys(serverSecret)
}

// applyFrameEffects updates transport state from client frames.
func (s *Server) applyFrameEffects(space int, frames []quicwire.Frame) {
	for _, f := range frames {
		switch f.Type {
		case quicwire.FrameCrypto:
			if space == spaceInitial && s.clientRandom == nil && len(f.Data) > 0 {
				s.clientRandom = append([]byte(nil), f.Data...)
				s.deriveSessionKeys()
			}
		case quicwire.FrameStream:
			if end := f.Offset + uint64(len(f.Data)); end > s.clientStreamRecv {
				s.clientStreamRecv = end
			}
		case quicwire.FrameMaxStreamData:
			if f.Limit > s.respLimit {
				s.respLimit = f.Limit
			}
		}
	}
}

// deriveSessionKeys derives handshake and 1-RTT keys once both hello
// randoms are known.
func (s *Server) deriveSessionKeys() {
	hc, hs := quiccrypto.HandshakeSecrets(s.clientRandom, s.serverRandom)
	ac, as := quiccrypto.AppSecrets(s.clientRandom, s.serverRandom)
	s.keys[spaceHandshake].client = mustKeys(hc)
	s.keys[spaceHandshake].server = mustKeys(hs)
	s.keys[spaceApp].client = mustKeys(ac)
	s.keys[spaceApp].server = mustKeys(as)
}

func mustKeys(secret []byte) *quiccrypto.Keys {
	k, err := quiccrypto.NewKeys(secret)
	if err != nil {
		panic(fmt.Sprintf("quicsim: key derivation failed: %v", err))
	}
	return k
}

func spaceForType(t quicwire.PacketType) (int, bool) {
	switch t {
	case quicwire.PacketInitial:
		return spaceInitial, true
	case quicwire.PacketHandshake:
		return spaceHandshake, true
	case quicwire.PacketShort:
		return spaceApp, true
	}
	return 0, false
}

// serverCryptoStream returns the full server crypto byte stream for a
// packet-number space: the simplified TLS messages of this repo's toy
// handshake layer.
func (s *Server) serverCryptoStream(space int) []byte {
	switch space {
	case spaceInitial:
		return append([]byte("SERVER_HELLO:"), s.serverRandom...)
	case spaceHandshake:
		return []byte("ENCRYPTED_EXTENSIONS;CERTIFICATE;CERT_VERIFY;FINISHED-------------")
	default:
		return []byte("NEW_SESSION_TICKET:ticket-0001")
	}
}

// buildPacket constructs, seals, and header-protects one output packet.
func (s *Server) buildPacket(spec PacketSpec) []byte {
	space, _ := spaceForType(spec.Type)
	pn := s.sendPN[space]
	s.sendPN[space]++

	var payload []byte
	for _, ft := range spec.Frames {
		payload = quicwire.AppendFrame(payload, s.buildFrame(space, spec, ft))
	}
	// Pad so the sealed payload always covers the header-protection sample.
	for len(payload) < 20 {
		payload = append(payload, 0) // PADDING
	}

	keys := s.keys[space].server
	var buf []byte
	var pnOffset int
	sealedLen := len(payload) + keys.Overhead()
	if spec.Type == quicwire.PacketShort {
		buf, pnOffset = quicwire.AppendShortHeader(nil, s.clientCID, pn)
	} else {
		buf, pnOffset = quicwire.AppendLongHeader(nil, spec.Type, s.clientCID, s.scid, nil, pn, sealedLen)
	}
	ad := append([]byte(nil), buf...)
	buf = append(buf, keys.Seal(payload, pn, ad)...)
	if err := keys.ProtectHeader(buf, pnOffset); err != nil {
		panic(fmt.Sprintf("quicsim: header protection: %v", err))
	}
	return buf
}

// buildFrame constructs the concrete frame for an abstract frame type.
func (s *Server) buildFrame(space int, spec PacketSpec, ft quicwire.FrameType) quicwire.Frame {
	switch ft {
	case quicwire.FrameAck:
		largest := s.largestRecv[space]
		return quicwire.Frame{Type: quicwire.FrameAck, AckLargest: largest, AckRange: largest}
	case quicwire.FrameCrypto:
		stream := s.serverCryptoStream(space)
		off := s.cryptoSent[space]
		if off >= uint64(len(stream)) {
			return quicwire.Frame{Type: quicwire.FrameCrypto, Offset: off}
		}
		n := uint64(48)
		if off+n > uint64(len(stream)) {
			n = uint64(len(stream)) - off
		}
		s.cryptoSent[space] = off + n
		return quicwire.Frame{Type: quicwire.FrameCrypto, Offset: off, Data: stream[off : off+n]}
	case quicwire.FrameHandshakeDone:
		return quicwire.Frame{Type: quicwire.FrameHandshakeDone}
	case quicwire.FrameStream:
		if spec.Greeting {
			id := uint64(3 + 4*s.greetingsSent) // server-initiated unidirectional
			s.greetingsSent++
			return quicwire.Frame{Type: quicwire.FrameStream, StreamID: id,
				Data: []byte(fmt.Sprintf("greeting-%d", id))}
		}
		return s.buildResponseStream()
	case quicwire.FrameStreamDataBlocked:
		limit := s.respLimit
		if s.cfg.Profile == ProfileGoogle {
			limit = 0 // Issue 4: placeholder never updated
		}
		return quicwire.Frame{Type: quicwire.FrameStreamDataBlocked, StreamID: 0, Limit: limit}
	case quicwire.FrameConnectionClose:
		return quicwire.Frame{Type: quicwire.FrameConnectionClose,
			ErrorCode:    0x0a, // PROTOCOL_VIOLATION
			CloseFrame:   uint64(quicwire.FrameHandshakeDone),
			ReasonPhrase: "protocol violation"}
	default:
		panic(fmt.Sprintf("quicsim: no constructor for output frame %v", ft))
	}
}

// buildResponseStream emits the next slice of the server's application
// response on stream 0, respecting the client-granted flow-control limit.
// When blocked the frame carries zero bytes at the current offset.
func (s *Server) buildResponseStream() quicwire.Frame {
	total := uint64(RespTotal)
	if s.cfg.Profile == ProfileQuiche {
		// Quiche echoes indefinitely: always one more chunk wanted.
		total = s.respOffset + Chunk
	}
	n := uint64(0)
	if s.respLimit > s.respOffset {
		n = s.respLimit - s.respOffset
	}
	if remaining := total - s.respOffset; n > remaining {
		n = remaining
	}
	data := bytes.Repeat([]byte{'r'}, int(n))
	f := quicwire.Frame{Type: quicwire.FrameStream, StreamID: 0, Offset: s.respOffset, Data: data}
	s.respOffset += n
	f.Fin = s.cfg.Profile != ProfileQuiche && s.respOffset == total
	return f
}

// buildRetry constructs a Retry packet whose token binds the client source
// address (Issue 3's address validation).
func (s *Server) buildRetry(src string, hdr quicwire.Header) []byte {
	token := s.tokenFor(src)
	tag := quiccrypto.RetryTag(s.static, hdr.DCID, token)
	return quicwire.AppendRetry(nil, hdr.SCID, s.scid, append(token, tag[:]...))
}

// tokenFor derives the retry token for a source address.
func (s *Server) tokenFor(src string) []byte {
	mac := hmac.New(sha256.New, s.static)
	mac.Write([]byte("retry-token"))
	mac.Write([]byte(src))
	return mac.Sum(nil)[:16]
}

// validToken checks a retry token against the claimed source address.
func (s *Server) validToken(src string, dcid, token []byte) bool {
	want := s.tokenFor(src)
	if len(token) < len(want) {
		return false
	}
	return hmac.Equal(token[:len(want)], want)
}

// buildStatelessReset constructs a stateless reset datagram: unpredictable
// bytes shaped like a short-header packet, ending with the reset token for
// the connection ID the server handed out (RFC 9000 §10.3).
func (s *Server) buildStatelessReset() []byte {
	buf := make([]byte, 24)
	copy(buf, seedBytes(s.cfg.Seed, "reset-noise", 24))
	buf[0] = 0x40 | (buf[0] & 0x3F)
	token := quiccrypto.ResetToken(s.static, s.scid)
	return append(buf, token[:]...)
}

// ResetTokenForTests exposes the server's stateless reset token so clients
// and tests can recognize reset datagrams.
func (s *Server) ResetTokenForTests() [16]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return quiccrypto.ResetToken(s.static, s.scid)
}
