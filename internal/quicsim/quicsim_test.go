package quicsim

import (
	"testing"

	"repro/internal/automata"
)

// TestGroundTruthSizes checks the profile specifications against the model
// sizes the paper reports in §6.2.2: Google QUIC 12 states / 84 transitions,
// Quiche 8 states / 56 transitions.
func TestGroundTruthSizes(t *testing.T) {
	cases := []struct {
		profile     Profile
		states, trs int
	}{
		{ProfileGoogle, 12, 84},
		{ProfileGoogleFixed, 12, 84},
		{ProfileQuiche, 8, 56},
		{ProfileMvfst, 4, 28},
	}
	for _, c := range cases {
		m := GroundTruth(c.profile)
		if m.NumStates() != c.states {
			t.Errorf("%v: %d states, want %d", c.profile, m.NumStates(), c.states)
		}
		if m.NumTransitions() != c.trs {
			t.Errorf("%v: %d transitions, want %d", c.profile, m.NumTransitions(), c.trs)
		}
		if !m.Total() {
			t.Errorf("%v: machine not total", c.profile)
		}
	}
}

// TestGroundTruthMinimal verifies every profile machine is minimal: the
// paper's learned models are minimal by construction (TTT learns the
// canonical machine), so a non-minimal spec would make the state counts
// unreachable for the learner.
func TestGroundTruthMinimal(t *testing.T) {
	for _, p := range []Profile{ProfileGoogle, ProfileQuiche, ProfileMvfst} {
		m := GroundTruth(p)
		min := m.Minimize()
		if min.NumStates() != m.NumStates() {
			t.Errorf("%v: spec has %d states but minimizes to %d", p, m.NumStates(), min.NumStates())
		}
	}
}

// TestGroundTruthReachable ensures every spec state is reachable, otherwise
// the learner could never discover it.
func TestGroundTruthReachable(t *testing.T) {
	for _, p := range []Profile{ProfileGoogle, ProfileQuiche, ProfileMvfst} {
		m := GroundTruth(p)
		if got := len(m.Reachable()); got != m.NumStates() {
			t.Errorf("%v: %d of %d states reachable", p, got, m.NumStates())
		}
	}
}

// TestGoogleVsQuicheDiffer reproduces the Issue 1 signal: the two
// implementations' models are inequivalent, and a distinguishing trace
// exists (the paper's RFC-imprecision finding started from exactly this
// observation).
func TestGoogleVsQuicheDiffer(t *testing.T) {
	g := GroundTruth(ProfileGoogle)
	q := GroundTruth(ProfileQuiche)
	eq, ce := g.Equivalent(q)
	if eq {
		t.Fatal("Google and Quiche specs must differ")
	}
	if len(ce) == 0 {
		t.Fatal("no distinguishing trace returned")
	}
	// The shortest difference is already at the first symbol: the flights
	// differ (Google sends an early stream, Quiche does not).
	og, _ := g.Run(ce)
	oq, _ := q.Run(ce)
	if og[len(og)-1] == oq[len(oq)-1] {
		t.Fatalf("trace %v does not distinguish: %v vs %v", ce, og, oq)
	}
}

// TestIssue1PacketNumberSpaceReset checks the behaviour divergence behind
// Issue 1 (§6.2.3): after INITIAL[CRYPTO] at the handshake stage, Google
// aborts the connection while Quiche closes with a plain handshake-level
// CONNECTION_CLOSE — and, critically, on a *fresh* connection's violating
// initial, Google creates a dead connection while Quiche ignores it.
func TestIssue1PacketNumberSpaceReset(t *testing.T) {
	g := GroundTruth(ProfileGoogle)
	q := GroundTruth(ProfileQuiche)
	word := []string{SymInitialHD, SymInitialCrypto}
	og, _ := g.Run(word)
	oq, _ := q.Run(word)
	// Google: the violating initial created a dead connection, so the
	// follow-up INITIAL[CRYPTO] is swallowed. Quiche: the violating initial
	// was dropped, so the follow-up opens a connection normally.
	if og[1] == oq[1] {
		t.Fatalf("expected divergence, both produced %q", og[1])
	}
	if og[1] != "{}" {
		t.Fatalf("Google should swallow the retried initial, got %q", og[1])
	}
	if oq[1] == "{}" {
		t.Fatal("Quiche should answer the retried initial with its flight")
	}
}

func TestBehaviorTablesComplete(t *testing.T) {
	for _, p := range []Profile{ProfileGoogle, ProfileQuiche, ProfileMvfst} {
		b := behaviorFor(p)
		if len(b.table) != b.numStates {
			t.Fatalf("%v: table has %d states, want %d", p, len(b.table), b.numStates)
		}
		for s, row := range b.table {
			if len(row) != 7 {
				t.Errorf("%v state %d: %d symbols, want 7", p, s, len(row))
			}
			for sym, tr := range row {
				if tr.next < 0 || tr.next >= b.numStates {
					t.Errorf("%v state %d on %s: next state %d out of range", p, s, sym, tr.next)
				}
			}
		}
	}
}

func TestOutputLabelFormat(t *testing.T) {
	if got := OutputLabel(nil); got != "{}" {
		t.Fatalf("empty output label = %q", got)
	}
	got := OutputLabel(googleDoneFlight)
	want := "{SHORT(?,?)[CRYPTO],SHORT(?,?)[HANDSHAKE_DONE]}"
	if got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
}

func TestProfileStrings(t *testing.T) {
	for p, want := range map[Profile]string{
		ProfileGoogle: "google", ProfileGoogleFixed: "google-fixed",
		ProfileQuiche: "quiche", ProfileMvfst: "mvfst",
	} {
		if p.String() != want {
			t.Errorf("Profile(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestGroundTruthMvfstSkeletonStates(t *testing.T) {
	m := GroundTruth(ProfileMvfst)
	// The Issue 2 trigger: INITIAL[CRYPTO] then HANDSHAKE[ACK,HANDSHAKE_DONE]
	// must land in the closed state with a CONNECTION_CLOSE output.
	out, ok := m.Run([]string{SymInitialCrypto, SymHandshakeHD})
	if !ok {
		t.Fatal("run incomplete")
	}
	if out[1] != "{HANDSHAKE(?,?)[CONNECTION_CLOSE]}" {
		t.Fatalf("close output = %q", out[1])
	}
	s, _ := m.StateAfter([]string{SymInitialCrypto, SymHandshakeHD})
	if int(s) != behaviorFor(ProfileMvfst).closedState {
		t.Fatalf("state after trigger = %d, want closed state", s)
	}
}

func TestSeedBytesDeterministic(t *testing.T) {
	a := seedBytes(42, "x", 64)
	b := seedBytes(42, "x", 64)
	c := seedBytes(43, "x", 64)
	if string(a) != string(b) {
		t.Fatal("seedBytes not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("seedBytes ignores seed")
	}
	if len(a) != 64 {
		t.Fatalf("len = %d", len(a))
	}
}

func TestGroundTruthStateRolesGoogle(t *testing.T) {
	m := GroundTruth(ProfileGoogle)
	// Happy path: connect, finish handshake, send data until blocked,
	// raise limits twice, observe the flush.
	word := []string{SymInitialCrypto, SymHandshakeC, SymShortStream, SymShortStream, SymShortFC, SymShortFC, SymShortStream}
	out, ok := m.Run(word)
	if !ok {
		t.Fatal("happy path has undefined transitions")
	}
	// After the first data packet the server is blocked; the second data
	// packet must surface STREAM_DATA_BLOCKED (Issue 4's carrier frame).
	if out[3] != "{SHORT(?,?)[ACK,STREAM,STREAM_DATA_BLOCKED]}" {
		t.Fatalf("blocked response = %q", out[3])
	}
	// After two raises the response is flushed; further data is just acked.
	if out[6] != "{SHORT(?,?)[ACK]}" {
		t.Fatalf("post-flush response = %q", out[6])
	}
	if st, _ := m.StateAfter(word); st == automata.Invalid {
		t.Fatal("state tracking failed")
	}
}
