package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/jsonlog"
	"repro/internal/learn"
	"repro/internal/netem"
)

// checkpointFormat / checkpointVersion identify the campaign-checkpoint
// file format (first line of every file). A checkpoint written by a future
// version is ignored rather than half-understood.
const (
	checkpointFormat  = "prognosis-campaign-checkpoint"
	checkpointVersion = 1
)

// checkpointRecord is one completed campaign run, with everything needed
// to restore its RunResult without relearning. Machine is nil for runs
// that halted on nondeterminism (Nondet carries the §5 verdict instead).
type checkpointRecord struct {
	Name     string                    `json:"name"`
	Target   string                    `json:"target"`
	Learner  core.LearnerKind          `json:"learner,omitempty"`
	Machine  *automata.Mealy           `json:"machine,omitempty"`
	Nondet   *core.NondeterminismError `json:"nondet,omitempty"`
	Stats    learn.Stats               `json:"stats"`
	Guard    core.GuardStats           `json:"guard"`
	Faults   netem.Stats               `json:"faults"`
	Duration time.Duration             `json:"duration"`
}

// result converts the record back into the Result the run produced.
func (r *checkpointRecord) result() *Result {
	return &Result{
		Target:      r.Target,
		Machine:     r.Machine,
		Stats:       r.Stats,
		Nondet:      r.Nondet,
		Duration:    r.Duration,
		LearnerKind: r.Learner,
		Guard:       r.Guard,
		Faults:      r.Faults,
	}
}

// checkpointFile appends completed runs to a campaign checkpoint. Append
// is safe for concurrent use (campaign runs finish on separate
// goroutines); each record is one complete JSON line per Write, so a crash
// loses at most the line in flight.
type checkpointFile struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint loads the completed runs recorded in path (creating the
// file if needed) and returns them keyed by run name alongside the
// appender for this campaign's own completions. Like the query store
// (both speak the jsonlog format), a corrupted, truncated, or
// unterminated tail is discarded and overwritten by the next append; a
// file with a foreign or future header is reset.
func openCheckpoint(path string) (map[string]*Result, *checkpointFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lab: checkpoint: %w", err)
	}
	done := make(map[string]*Result)
	ok, err := jsonlog.Recover(f, checkpointFormat, checkpointVersion, func(line []byte) bool {
		var rec checkpointRecord
		if json.Unmarshal(line, &rec) != nil || rec.Name == "" {
			return false
		}
		done[rec.Name] = rec.result()
		return true
	})
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("lab: recover checkpoint: %w", err)
	}
	if !ok {
		if err := jsonlog.Reset(f, checkpointFormat, checkpointVersion); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return done, &checkpointFile{f: f}, nil
}

// append records one completed run. Failures are returned but the
// campaign treats them as non-fatal: a checkpoint that cannot grow costs
// resumability, not results.
func (c *checkpointFile) append(name string, res *Result) error {
	line, err := jsonlog.Marshal(checkpointRecord{
		Name:     name,
		Target:   res.Target,
		Learner:  res.LearnerKind,
		Machine:  res.Machine,
		Nondet:   res.Nondet,
		Stats:    res.Stats,
		Guard:    res.Guard,
		Faults:   res.Faults,
		Duration: res.Duration,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = c.f.Write(line)
	return err
}

func (c *checkpointFile) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// WriteCheckpoint writes a fresh campaign checkpoint at path holding the
// given results, keyed by RunResult.Name (results without a Result —
// errored or never-started runs — are skipped, exactly as Campaign.Run
// skips journaling them). Any existing file at path is replaced. This is
// the export half of the fleet merge stage: a coordinator reconstructs
// per-cell Results from worker artifacts and files them under the same
// checkpoint format a single-process campaign writes, so `Campaign`
// resume, `SummarizeMatrix`, and every other checkpoint consumer read
// fleet-merged campaigns unchanged.
func WriteCheckpoint(path string, results []RunResult) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("lab: checkpoint: %w", err)
	}
	if err := jsonlog.Reset(f, checkpointFormat, checkpointVersion); err != nil {
		f.Close()
		return err
	}
	ckpt := &checkpointFile{f: f}
	for _, r := range results {
		if r.Result == nil {
			continue
		}
		name := r.Name
		if name == "" {
			name = r.Target
		}
		if err := ckpt.append(name, r.Result); err != nil {
			ckpt.close()
			return err
		}
	}
	return ckpt.close()
}

// ReadCheckpoint loads the completed runs recorded in a campaign
// checkpoint, keyed by run name — the import half of WriteCheckpoint.
// Corrupt or truncated tails are tolerated exactly as on campaign
// resume: the valid prefix is returned. The file is not modified beyond
// that recovery truncation.
func ReadCheckpoint(path string) (map[string]*Result, error) {
	done, ckpt, err := openCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if err := ckpt.close(); err != nil {
		return nil, err
	}
	return done, nil
}
