package lab

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/learn"
	"repro/internal/netem"
	"repro/internal/quicsim"
)

var refadapterOnce struct {
	sync.Once
	bin string
	err error
}

// refadapterBin builds cmd/refadapter once per test binary and returns
// its path. The Go build cache makes repeat builds cheap, but sharing
// one artifact keeps the suite snappy.
func refadapterBin(t *testing.T) string {
	t.Helper()
	refadapterOnce.Do(func() {
		dir, err := os.MkdirTemp("", "refadapter")
		if err != nil {
			refadapterOnce.err = err
			return
		}
		bin := filepath.Join(dir, "refadapter")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/refadapter").CombinedOutput()
		if err != nil {
			refadapterOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			os.RemoveAll(dir)
			return
		}
		refadapterOnce.bin = bin
	})
	if refadapterOnce.err != nil {
		t.Fatalf("building refadapter: %v", refadapterOnce.err)
	}
	return refadapterOnce.bin
}

// TestAdapterLearnsGoogleByteIdentical is the tentpole acceptance test:
// learning the refadapter subprocess over the stdio protocol must
// produce a model byte-identical to the in-process google target's
// checked-in golden — the adapter boundary adds no behaviour.
func TestAdapterLearnsGoogleByteIdentical(t *testing.T) {
	res := learnT(t, TargetAdapter,
		WithSeed(13), WithConformance(2), WithAdapterCommand(refadapterBin(t)))
	if res.Nondet != nil {
		t.Fatalf("nondeterminism over the adapter protocol: %v", res.Nondet)
	}
	got, err := res.Model().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "analysis", "testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("adapter-learned model differs from the in-process google golden (%d vs %d bytes)",
			len(got), len(golden))
	}
}

// TestAdapterCrashMidLearnRecovers: a subprocess that exits every 200
// queries must be revived by restart-and-replay, surface typed
// AdapterRestarted events, and still converge to the exact golden — the
// crash-recovery path may cost time, never correctness.
func TestAdapterCrashMidLearnRecovers(t *testing.T) {
	var restarts atomic.Int64
	res := learnT(t, TargetAdapter,
		WithSeed(13), WithConformance(2),
		WithAdapterCommand(refadapterBin(t)+" -crash-after 200"),
		WithObserver(learn.ObserverFunc(func(e learn.Event) {
			if r, ok := e.(learn.AdapterRestarted); ok {
				restarts.Add(1)
				if r.Reason == "" {
					t.Error("AdapterRestarted event with empty reason")
				}
			}
		})))
	if res.Nondet != nil {
		t.Fatalf("nondeterminism across crashes: %v", res.Nondet)
	}
	if restarts.Load() == 0 {
		t.Fatal("the adapter never crashed: -crash-after did not bite, the test is vacuous")
	}
	got, err := res.Model().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "analysis", "testdata", "google.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("crash-riddled learn diverged from the golden (%d restarts)", restarts.Load())
	}
}

// TestAdapterCrashUnderGuardDoesNotPoisonCache drives the full adverse
// stack at once — lossy impaired link, §5 voting guard, a crashing
// subprocess, and a persistent store — and then relearns warm from the
// same store: a crash landing mid-guard-vote must never leave a
// poisoned answer behind, so both the cold and the warm model must
// match the clean ground truth.
func TestAdapterCrashUnderGuardDoesNotPoisonCache(t *testing.T) {
	truth := quicsim.GroundTruth(quicsim.ProfileGoogle)
	dir := t.TempDir()
	opts := []Option{
		WithSeed(13), WithWorkers(4),
		WithAdapterCommand(refadapterBin(t) + " -crash-after 200"),
		WithImpairment(netem.Config{LossClient: 0.02, LossServer: 0.02, Seed: 7}),
		WithEquivalence(&learn.ModelOracle{Model: truth}),
		WithStore(dir),
	}
	var restarts atomic.Int64
	cold := learnT(t, TargetAdapter, append(opts,
		WithObserver(learn.ObserverFunc(func(e learn.Event) {
			if _, ok := e.(learn.AdapterRestarted); ok {
				restarts.Add(1)
			}
		})))...)
	if cold.Nondet != nil {
		t.Fatalf("guard gave up: %v", cold.Nondet)
	}
	if restarts.Load() == 0 {
		t.Fatal("no crashes under guard: the test is vacuous")
	}
	if eq, ce := truth.Equivalent(cold.Machine); !eq {
		t.Fatalf("cold crash-and-loss learn diverged from ground truth, witness %v", ce)
	}
	// Warm relearn from the store the crashes wrote through: any answer
	// poisoned by a mid-vote crash would resurface here.
	warm := learnT(t, TargetAdapter, opts...)
	if warm.Nondet != nil {
		t.Fatalf("warm relearn flagged nondeterminism: %v", warm.Nondet)
	}
	if eq, ce := truth.Equivalent(warm.Machine); !eq {
		t.Fatalf("warm relearn from the crash-written store diverged, witness %v", ce)
	}
}
