package lab

import (
	"context"
	"fmt"

	"repro/internal/netem"
)

// ImpairmentCell is one point of a fault grid: symmetric datagram loss
// plus response duplication and reordering rates.
type ImpairmentCell struct {
	Loss      float64
	Duplicate float64
	Reorder   float64
}

// Clean reports whether the cell injects no faults (the baseline cell).
func (c ImpairmentCell) Clean() bool { return c.Loss == 0 && c.Duplicate == 0 && c.Reorder == 0 }

// Config expands the cell into a netem config with the given fault seed.
func (c ImpairmentCell) Config(seed int64) netem.Config {
	return netem.Config{
		LossClient: c.Loss, LossServer: c.Loss,
		Duplicate: c.Duplicate, Reorder: c.Reorder,
		Seed: seed,
	}
}

// Name labels the cell for campaign runs and reports.
func (c ImpairmentCell) Name() string {
	if c.Clean() {
		return "clean"
	}
	return c.Config(0).Label()
}

// ImpairmentGrid crosses the given per-axis levels into cells (an empty
// axis means "only zero"), with the clean baseline cell first.
func ImpairmentGrid(losses, dups, reorders []float64) []ImpairmentCell {
	axis := func(levels []float64) []float64 {
		if len(levels) == 0 {
			return []float64{0}
		}
		return levels
	}
	cells := []ImpairmentCell{{}}
	for _, l := range axis(losses) {
		for _, d := range axis(dups) {
			for _, r := range axis(reorders) {
				c := ImpairmentCell{Loss: l, Duplicate: d, Reorder: r}
				if !c.Clean() {
					cells = append(cells, c)
				}
			}
		}
	}
	return cells
}

// CellVerdict is one grid cell's outcome, summarized against the clean
// baseline: did learning converge, to the same model, and at what voting
// cost?
type CellVerdict struct {
	Cell ImpairmentCell
	Run  RunResult

	// Learned is true when the run produced a model (false on error or a
	// §5 nondeterminism halt).
	Learned bool
	// Nondet is true when the guard gave up on a query — at high fault
	// rates the honest verdict for an implementation whose behaviour the
	// link makes unrecoverable (e.g. the lossy-retransmit target).
	Nondet bool
	// MatchesBaseline is true when the learned model is equivalent to the
	// clean baseline's — impairment was outvoted, not learned into the
	// model.
	MatchesBaseline bool
	// QueryInflation is this cell's live queries (including votes)
	// divided by the baseline's: what the link's flakiness cost.
	QueryInflation float64
	// Escalations and WastedVotes surface the guard's adaptive effort.
	Escalations int64
	WastedVotes int64
}

// MatrixResult is a finished impairment matrix: the clean baseline run and
// one verdict per impaired cell.
type MatrixResult struct {
	Baseline RunResult
	Cells    []CellVerdict
}

// ImpairmentMatrix builds the campaign that fans one target across a
// fault grid with per-cell isolation: every cell is an independent run
// (own replicas, own links, own guard state) so one cell's faults never
// leak into another. Cell 0 must be the clean baseline (as ImpairmentGrid
// returns); SummarizeMatrix interprets the results.
func ImpairmentMatrix(target string, base []Option, cells []ImpairmentCell, impairSeed int64) *Campaign {
	runs := make([]RunSpec, 0, len(cells))
	for _, cell := range cells {
		opts := append([]Option(nil), base...)
		if !cell.Clean() {
			opts = append(opts, WithImpairment(cell.Config(impairSeed)))
		}
		runs = append(runs, RunSpec{Name: cell.Name(), Target: target, Options: opts})
	}
	return &Campaign{Runs: runs}
}

// SummarizeMatrix folds positionally aligned campaign results back into
// per-cell verdicts against the baseline (cell 0).
func SummarizeMatrix(cells []ImpairmentCell, results []RunResult) (*MatrixResult, error) {
	if len(cells) != len(results) {
		return nil, fmt.Errorf("lab: %d cells but %d results", len(cells), len(results))
	}
	if len(cells) == 0 || !cells[0].Clean() {
		return nil, fmt.Errorf("lab: matrix needs the clean baseline as cell 0")
	}
	baseline := results[0]
	m := &MatrixResult{Baseline: baseline}
	for i := 1; i < len(cells); i++ {
		v := CellVerdict{Cell: cells[i], Run: results[i]}
		if res := results[i].Result; res != nil {
			v.Nondet = res.Nondet != nil
			v.Learned = res.Machine != nil
			rm := res.Metrics()
			v.Escalations = rm.Guard.Escalations
			v.WastedVotes = rm.Guard.WastedVotes
			if baseline.Result != nil && baseline.Result.Stats.Queries > 0 {
				v.QueryInflation = float64(res.Stats.Queries) / float64(baseline.Result.Stats.Queries)
			}
			if v.Learned && baseline.Result != nil && baseline.Result.Machine != nil {
				eq, _ := baseline.Result.Machine.Equivalent(res.Machine)
				v.MatchesBaseline = eq
			}
		}
		m.Cells = append(m.Cells, v)
	}
	return m, nil
}

// RunImpairmentMatrix is the one-shot helper: build the grid campaign,
// run it with the given parallelism, and summarize. The impairSeed drives
// every cell's fault streams (each cell further derives per-worker
// streams).
func RunImpairmentMatrix(ctx context.Context, target string, base []Option,
	cells []ImpairmentCell, parallelism int, impairSeed int64) (*MatrixResult, error) {
	camp := ImpairmentMatrix(target, base, cells, impairSeed)
	camp.Parallelism = parallelism
	results, err := camp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return SummarizeMatrix(cells, results)
}
