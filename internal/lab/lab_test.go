package lab

import (
	"context"
	"testing"

	"repro/internal/quicsim"
	"repro/internal/synth"
)

// bg is the default context for tests that never cancel.
var bg = context.Background()

// learnT builds, runs, and closes one experiment, failing the test on any
// error (nondeterminism is not an error; it lands in Result.Nondet).
func learnT(t *testing.T, target string, opts ...Option) *Result {
	t.Helper()
	res, err := Run(bg, target, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLearnAllDeterministicTargets(t *testing.T) {
	want := map[string]int{
		TargetTCP:         6,
		TargetGoogle:      12,
		TargetGoogleFixed: 12,
		TargetQuiche:      8,
	}
	for target, states := range want {
		opts := []Option{WithSeed(13)}
		if target != TargetTCP {
			opts = append(opts, WithPerfectEquivalence())
		}
		res := learnT(t, target, opts...)
		if res.Nondet != nil {
			t.Fatalf("%s: unexpected nondeterminism: %v", target, res.Nondet)
		}
		if res.Machine.NumStates() != states {
			t.Fatalf("%s: %d states, want %d", target, res.Machine.NumStates(), states)
		}
		if res.Stats.Queries == 0 {
			t.Fatalf("%s: no live queries recorded", target)
		}
	}
}

func TestLearnMvfstReportsNondeterminism(t *testing.T) {
	res := learnT(t, TargetMvfst, WithSeed(13))
	if res.Nondet == nil {
		t.Fatal("mvfst should be flagged nondeterministic")
	}
	if res.Machine != nil {
		t.Fatal("no model should be produced")
	}
}

// TestLearnRepeatablePerRunStats: Learn is documented as repeatable, and
// every call's Result.Stats must count only that run's traffic.
func TestLearnRepeatablePerRunStats(t *testing.T) {
	exp, err := NewExperiment(TargetQuiche, WithSeed(13), WithPerfectEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	r1, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := r1.Machine.Equivalent(r2.Machine); !eq {
		t.Fatalf("repeated Learn diverged on %v", ce)
	}
	if r1.Stats.Queries != r2.Stats.Queries {
		t.Fatalf("per-run stats accumulate: first %d queries, second %d", r1.Stats.Queries, r2.Stats.Queries)
	}
}

func TestNewExperimentUnknownTarget(t *testing.T) {
	if _, err := NewExperiment("nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestNewExperimentPerfectNeedsTruth(t *testing.T) {
	if _, err := NewExperiment(TargetTCP, WithPerfectEquivalence()); err == nil {
		t.Fatal("perfect equivalence accepted for a target without ground truth")
	}
}

// TestIssue4SynthesisEndToEnd is the full §6.2.6 pipeline: learn the
// model, collect Oracle-Table traces, synthesize the extended machine, and
// observe that Google's Maximum Stream Data is the constant 0 while the
// fixed profile's tracks the granted limit.
func TestIssue4SynthesisEndToEnd(t *testing.T) {
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortFC,
			quicsim.SymShortStream, quicsim.SymShortStream, quicsim.SymShortStream},
	}
	for _, tc := range []struct {
		target    string
		wantConst bool
	}{
		{TargetGoogle, true},
		{TargetGoogleFixed, false},
	} {
		res := learnT(t, tc.target, WithSeed(29), WithPerfectEquivalence())
		profile, _ := QUICProfile(tc.target)
		setup := NewQUIC(profile, QUICOptions{Seed: 29})
		var traces []synth.Trace
		for _, w := range words {
			tr, err := CollectSDBTrace(setup, w, BlockedOutputLabel)
			if err != nil {
				t.Fatal(err)
			}
			traces = append(traces, tr)
		}
		em, err := synth.Synthesize(SDBProblem(res.Machine, traces))
		if err != nil {
			t.Fatalf("%s: %v", tc.target, err)
		}
		// Probe the synthesized machine: raise the limit to 5000, then
		// trigger a blocked response. Constant-zero machines predict 0.
		probe := synth.Trace{
			{Input: quicsim.SymInitialCrypto, InVals: []int64{0}},
			{Input: quicsim.SymHandshakeC, InVals: []int64{0}},
			{Input: quicsim.SymShortStream, InVals: []int64{0}},
			{Input: quicsim.SymShortFC, InVals: []int64{5000}},
			{Input: quicsim.SymShortStream, InVals: []int64{0}},
		}
		pred, _ := em.Run(probe)
		final := pred[len(pred)-1]
		if len(final) != 1 {
			// The probe's last step must hit the blocked output... if the
			// model path diverges the experiment setup is wrong.
			t.Fatalf("%s: probe did not reach a blocked output: %v", tc.target, pred)
		}
		if tc.wantConst && final[0] != 0 {
			t.Fatalf("%s: expected constant-zero field, predicted %d", tc.target, final[0])
		}
		if !tc.wantConst && final[0] == 0 {
			t.Fatalf("%s: field should track the limit, predicted 0", tc.target)
		}
	}
}

// TestTCPSynthEndToEnd recovers Fig. 3(c)'s register relationship from live
// traces: the SYN-ACK acks the client's sequence number plus one.
func TestTCPSynthEndToEnd(t *testing.T) {
	setup := NewTCP(31)
	collect := func(word []string) synth.Trace {
		if err := setup.Reset(); err != nil {
			t.Fatal(err)
		}
		setup.Client.ClearTrace()
		for _, sym := range word {
			if _, err := setup.Client.Step(sym); err != nil {
				t.Fatal(err)
			}
		}
		return TCPSynthTraces(setup.Client.Trace())
	}
	res := learnT(t, TargetTCP, WithSeed(31))
	traces := []synth.Trace{
		collect([]string{"SYN(?,?,0)", "ACK(?,?,0)"}),
		collect([]string{"SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"}),
		collect([]string{"ACK(?,?,0)", "SYN(?,?,0)"}),
	}
	p := &synth.Problem{
		Machine:        res.Machine,
		NumRegisters:   1,
		NumInputParams: 2,
		OutputParams:   map[string]int{"SYN+ACK(?,?,0)": 1},
		Consts:         []int64{0},
		Positive:       traces,
	}
	em, err := synth.Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out check: SYN with seq 900 must be acked with 901.
	probe := collect([]string{"SYN(?,?,0)"})
	if mm := synth.Verify(em, []synth.Trace{probe}); mm != nil {
		t.Fatalf("synthesized TCP machine wrong: %+v\n%s", mm, em)
	}
}

func TestSDBTraceExtraction(t *testing.T) {
	setup := NewQUIC(quicsim.ProfileGoogle, QUICOptions{Seed: 3})
	tr, err := CollectSDBTrace(setup, []string{
		quicsim.SymInitialCrypto, quicsim.SymHandshakeC,
		quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream,
	}, BlockedOutputLabel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[3].InVals[0] != 2*quicsim.Chunk {
		t.Fatalf("FC input param = %d, want %d", tr[3].InVals[0], 2*quicsim.Chunk)
	}
	// Step 4 (second data while blocked at the new limit) carries the SDB
	// output value 0 (the bug).
	if len(tr[4].OutVals) != 1 || tr[4].OutVals[0] != 0 {
		t.Fatalf("blocked output vals = %v, want [0]", tr[4].OutVals)
	}
}
