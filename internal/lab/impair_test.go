package lab

import (
	"context"
	"sync"
	"testing"

	"repro/internal/netem"
	"repro/internal/quicsim"
	"repro/internal/reference"
)

// TestCampaignLearnsGoogleUnderLoss is the headline adverse-network
// scenario: a pooled Google-profile learn through a 5%-loss link (both
// directions) must converge to the clean ground-truth model, with the
// adaptive guard paying votes only where the link bites.
func TestCampaignLearnsGoogleUnderLoss(t *testing.T) {
	camp := &Campaign{Runs: []RunSpec{{
		Name:   "google@5%loss",
		Target: TargetGoogle,
		Options: []Option{
			WithSeed(13), WithWorkers(4), WithPerfectEquivalence(),
			WithImpairment(netem.Config{LossClient: 0.05, LossServer: 0.05, Seed: 7}),
		},
	}}}
	results, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Result.Nondet != nil {
		t.Fatalf("guard gave up under 5%% loss: %v", res.Result.Nondet)
	}
	truth := quicsim.GroundTruth(quicsim.ProfileGoogle)
	if eq, ce := truth.Equivalent(res.Result.Machine); !eq {
		t.Fatalf("lossy learn diverged from clean ground truth, witness %v", ce)
	}
	if res.Result.Faults.DroppedClient+res.Result.Faults.DroppedServer == 0 {
		t.Fatal("no datagrams dropped: the link was not impaired")
	}
	if res.Result.Guard.RetriedQueries == 0 || res.Result.Guard.WastedVotes == 0 {
		t.Fatalf("no guard effort recorded over a 5%%-loss link: %+v", res.Result.Guard)
	}
}

// TestImpairedLearnIsReproducible: identical seeds (experiment and fault
// streams) must reproduce the run. With one worker the whole trace is
// deterministic — identical model *and* identical fault counters. With a
// pool, scheduling decides which queries land on which shard, so the
// per-link coin consumption varies; what the per-worker derived streams
// guarantee is that each worker's fault pattern depends only on (seed,
// worker index) — and the learned model stays identical run to run.
func TestImpairedLearnIsReproducible(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(context.Background(), TargetQuiche,
			WithSeed(13), WithWorkers(workers), WithPerfectEquivalence(),
			WithImpairment(netem.Config{LossServer: 0.02, Seed: 21}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Nondet != nil {
			t.Fatalf("nondet: %v", res.Nondet)
		}
		return res
	}
	a, b := run(1), run(1)
	if eq, _ := a.Machine.Equivalent(b.Machine); !eq {
		t.Fatal("same seeds learned different models")
	}
	if a.Faults != b.Faults {
		t.Fatalf("same seeds, different fault patterns: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Stats.Queries != b.Stats.Queries || a.Guard != b.Guard {
		t.Fatalf("same seeds, different costs: %+v/%+v vs %+v/%+v", a.Stats, a.Guard, b.Stats, b.Guard)
	}
	p, q := run(4), run(4)
	if eq, _ := p.Machine.Equivalent(q.Machine); !eq {
		t.Fatal("pooled runs with the same seeds learned different models")
	}
}

// TestWithLinkMiddleware: the middleware must see every worker's live
// traffic, outside the impairment link, with the right worker indices.
func TestWithLinkMiddleware(t *testing.T) {
	var mu sync.Mutex
	sends := map[int]int{}
	mw := func(worker int, tr reference.Transport) reference.Transport {
		return reference.TransportFunc(func(src string, d []byte) [][]byte {
			mu.Lock()
			sends[worker]++
			mu.Unlock()
			return tr.Send(src, d)
		})
	}
	res, err := Run(context.Background(), TargetQuiche,
		WithSeed(13), WithWorkers(2), WithPerfectEquivalence(), WithLinkMiddleware(mw))
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates() != 8 {
		t.Fatalf("middleware perturbed learning: %d states", res.Machine.NumStates())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sends) != 2 || sends[0] == 0 || sends[1] == 0 {
		t.Fatalf("middleware missed workers: %v", sends)
	}
}

// TestImpairmentAppliesToTCP: the TCP target's segment path rides the same
// fault-injection interface; a lossy link must show dropped segments while
// the guard still recovers the model.
func TestImpairmentAppliesToTCP(t *testing.T) {
	res, err := Run(context.Background(), TargetTCP,
		WithSeed(13),
		WithImpairment(netem.Config{LossServer: 0.01, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nondet != nil {
		t.Fatalf("nondet: %v", res.Nondet)
	}
	if res.Machine.NumStates() != 6 {
		t.Fatalf("lossy TCP learn: %d states, want 6", res.Machine.NumStates())
	}
	if res.Faults.SentClient == 0 {
		t.Fatal("no segments flowed through the link")
	}
}

// TestImpairmentGridShape: the grid helper crosses levels with the clean
// baseline first and no duplicate clean cells.
func TestImpairmentGridShape(t *testing.T) {
	cells := ImpairmentGrid([]float64{0, 0.01}, []float64{0, 0.02}, nil)
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4 (clean + 3 impaired)", len(cells))
	}
	if !cells[0].Clean() {
		t.Fatalf("cell 0 not clean: %+v", cells[0])
	}
	for _, c := range cells[1:] {
		if c.Clean() {
			t.Fatalf("duplicate clean cell: %+v", c)
		}
	}
	if got := cells[len(cells)-1].Name(); got != "loss=1%,dup=2%,reorder=0%" {
		t.Fatalf("cell name = %q", got)
	}
}

// TestImpairmentMatrixSummarizes runs a two-cell matrix end to end on the
// quiche target and checks the verdict wiring (model comparison, query
// inflation, fault accounting).
func TestImpairmentMatrixSummarizes(t *testing.T) {
	cells := []ImpairmentCell{{}, {Loss: 0.02}}
	m, err := RunImpairmentMatrix(context.Background(), TargetQuiche,
		[]Option{WithSeed(13), WithPerfectEquivalence()}, cells, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if m.Baseline.Err != nil || m.Baseline.Result.Machine == nil {
		t.Fatalf("baseline broken: %+v", m.Baseline)
	}
	if len(m.Cells) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(m.Cells))
	}
	v := m.Cells[0]
	if !v.Learned || v.Nondet {
		t.Fatalf("2%% loss should learn: %+v", v)
	}
	if !v.MatchesBaseline {
		t.Fatal("2% loss diverged from the clean baseline")
	}
	if v.QueryInflation <= 1 {
		t.Fatalf("loss cost nothing? inflation %f", v.QueryInflation)
	}
}

// TestSummarizeMatrixValidation covers the error paths.
func TestSummarizeMatrixValidation(t *testing.T) {
	if _, err := SummarizeMatrix([]ImpairmentCell{{}}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SummarizeMatrix([]ImpairmentCell{{Loss: 0.1}}, []RunResult{{}}); err == nil {
		t.Fatal("missing clean baseline accepted")
	}
}
