package lab

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/transport"
)

// TransportKind selects how an experiment's SUL replicas are wired to
// their reference clients.
type TransportKind string

// Available transports.
const (
	// TransportInMemory wires client and server through an in-process
	// function call — the fastest path, used by default.
	TransportInMemory TransportKind = "in-memory"
	// TransportUDP hosts each replica's server on a loopback UDP socket
	// and drives it through a real client socket — one independent socket
	// pair per replica, as the paper's containerised deployment would.
	TransportUDP TransportKind = "udp"
)

// BuildSpec is the declarative request a Builder receives: everything a
// target needs to construct Replicas behaviourally identical systems under
// learning. All replicas share the Seed, which is what makes them
// interchangeable shards for the concurrent query engine.
type BuildSpec struct {
	Target    string
	Replicas  int
	Seed      int64
	Transport TransportKind
	// AdapterCmd is the external adapter command line (WithAdapterCommand);
	// only external targets read it.
	AdapterCmd string
	// Observer receives the experiment's typed learn events; builders that
	// emit their own events (adapter restarts) forward through it.
	Observer learn.Observer
	// WrapTransport, when non-nil, must be applied by the builder to each
	// replica's client transport (passing the replica index) before the
	// reference client attaches. NewExperiment uses it to thread netem
	// links (WithImpairment) and custom middleware (WithLinkMiddleware)
	// around every worker's traffic, whatever the transport kind.
	WrapTransport func(worker int, tr reference.Transport) reference.Transport
}

// wrapFor resolves WrapTransport for one replica (identity when unset).
func (s BuildSpec) wrapFor(worker int) func(reference.Transport) reference.Transport {
	if s.WrapTransport == nil {
		return func(tr reference.Transport) reference.Transport { return tr }
	}
	return func(tr reference.Transport) reference.Transport { return s.WrapTransport(worker, tr) }
}

// System is a built target: the SUL replicas, their input alphabet, the
// ground-truth model when the target has one (nil otherwise), and any
// resources (sockets, listeners) that must be released with Close.
type System struct {
	SULs     []core.SUL
	Alphabet []string
	Truth    *automata.Mealy

	closers []func() error
}

// AddCloser registers a resource released by Close. Builders call it for
// every socket or listener a replica owns.
func (s *System) AddCloser(fn func() error) { s.closers = append(s.closers, fn) }

// Close releases every registered resource in reverse order, joining
// errors.
func (s *System) Close() error {
	var errs []error
	for i := len(s.closers) - 1; i >= 0; i-- {
		if err := s.closers[i](); err != nil {
			errs = append(errs, err)
		}
	}
	s.closers = nil
	return errors.Join(errs...)
}

// Builder constructs a System for a BuildSpec. Builders must honour
// spec.Replicas (every replica independently resettable, all seeded
// identically) and either support spec.Transport or return an error naming
// the unsupported combination.
type Builder func(spec BuildSpec) (*System, error)

// entry is one registry record: the builder plus whether the target is
// external (its behaviour lives outside this repository, so it has no
// self-contained golden and the regression manifest does not cover it).
type entry struct {
	builder  Builder
	external bool
}

var (
	registryMu sync.RWMutex
	registry   = map[string]entry{}
)

// Register makes a target available to NewExperiment, Campaign, and the
// command-line tools under the given name. It panics on an empty name or a
// duplicate registration — both are programmer errors at init time.
func Register(name string, b Builder) { register(name, b, false) }

// RegisterExternal registers a target whose behaviour is supplied at run
// time (the subprocess adapter): it participates in every engine surface
// but is exempt from self-contained gates such as the regression
// manifest's registry-coverage guard.
func RegisterExternal(name string, b Builder) { register(name, b, true) }

func register(name string, b Builder, external bool) {
	if name == "" || b == nil {
		panic("lab: Register needs a target name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("lab: target %q registered twice", name))
	}
	registry[name] = entry{builder: b, external: external}
}

// Targets lists all registered target names, sorted.
func Targets() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// External reports whether name is a registered external target (see
// RegisterExternal). Unknown names are not external.
func External(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name].external
}

// build resolves a target name and runs its builder.
func build(spec BuildSpec) (*System, error) {
	registryMu.RLock()
	e, ok := registry[spec.Target]
	registryMu.RUnlock()
	b := e.builder
	if !ok {
		return nil, fmt.Errorf("lab: unknown target %q (registered: %v)", spec.Target, Targets())
	}
	if spec.Replicas < 1 {
		spec.Replicas = 1
	}
	if spec.Transport == "" {
		spec.Transport = TransportInMemory
	}
	sys, err := b(spec)
	if err != nil {
		return nil, err
	}
	if len(sys.SULs) != spec.Replicas {
		sys.Close()
		return nil, fmt.Errorf("lab: builder for %q produced %d replicas, want %d",
			spec.Target, len(sys.SULs), spec.Replicas)
	}
	return sys, nil
}

func init() {
	Register(TargetTCP, buildTCP)
	Register(TargetTCPSACK, buildTCPSACK)
	registerQUIC(TargetGoogle, quicsim.ProfileGoogle)
	registerQUIC(TargetGoogleFixed, quicsim.ProfileGoogleFixed)
	registerQUIC(TargetQuiche, quicsim.ProfileQuiche)
	registerQUIC(TargetMvfst, quicsim.ProfileMvfst)
	registerQUIC(TargetLossyRetransmit, quicsim.ProfileLossyRetransmit)
	Register(TargetQUICVN, buildQUICVN)
	RegisterExternal(TargetAdapter, buildAdapter)
}

// buildTCP is the Builder for the userspace TCP stack. It only speaks the
// in-memory transport: the stack's Scapy-style client exchanges raw
// segments with the server function directly.
func buildTCP(spec BuildSpec) (*System, error) {
	return buildTCPVariant(spec, false)
}

// buildTCPSACK is the Builder for the SACK-enabled stack: the same
// segment path with tcpsim.Config.SACK on and the extended alphabet
// (SACK-permitted SYN, out-of-order push).
func buildTCPSACK(spec BuildSpec) (*System, error) {
	return buildTCPVariant(spec, true)
}

func buildTCPVariant(spec BuildSpec, sack bool) (*System, error) {
	if spec.Transport != TransportInMemory {
		return nil, fmt.Errorf("lab: target %q supports only the in-memory transport, not %q",
			spec.Target, spec.Transport)
	}
	alphabet := reference.TCPAlphabet()
	if sack {
		alphabet = reference.TCPSACKAlphabet()
	}
	sys := &System{Alphabet: alphabet}
	for i := 0; i < spec.Replicas; i++ {
		var wrap func(reference.Transport) reference.Transport
		if spec.WrapTransport != nil {
			wrap = spec.wrapFor(i)
		}
		sys.SULs = append(sys.SULs, newTCPVariant(spec.Seed, wrap, sack))
	}
	return sys, nil
}

// buildQUICVN is the Builder for the version-negotiation + stateless-retry
// target: the Google behaviour profile with both admission layers enabled,
// learned over the extended alphabet carrying a grease-versioned Initial.
// In-memory only — the VN datagram path needs no sockets to be faithful.
func buildQUICVN(spec BuildSpec) (*System, error) {
	if spec.Transport != TransportInMemory {
		return nil, fmt.Errorf("lab: target %q supports only the in-memory transport, not %q",
			spec.Target, spec.Transport)
	}
	sys := &System{Alphabet: quicsim.VNInputAlphabet()}
	seed := spec.Seed
	if seed == 0 {
		seed = 7
	}
	for i := 0; i < spec.Replicas; i++ {
		srv := quicsim.NewServer(quicsim.Config{
			Profile: quicsim.ProfileGoogle, Seed: seed,
			RetryRequired: true, VersionNegotiation: true,
		})
		tr := spec.wrapFor(i)(reference.ServerTransport(srv))
		cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: seed + 4}, tr)
		sys.SULs = append(sys.SULs, &QUICSetup{Server: srv, Client: cli})
	}
	return sys, nil
}

// registerQUIC registers one QUIC profile as a target supporting both
// transports.
func registerQUIC(name string, profile quicsim.Profile) {
	Register(name, func(spec BuildSpec) (*System, error) {
		sys := &System{
			Alphabet: quicsim.InputAlphabet(),
			Truth:    quicsim.GroundTruth(profile),
		}
		// Both transports must drive identically-seeded systems (the
		// documented transport-equivalence guarantee), so the UDP path
		// applies NewQUIC's zero-seed default too.
		seed := spec.Seed
		if seed == 0 {
			seed = 7
		}
		for i := 0; i < spec.Replicas; i++ {
			switch spec.Transport {
			case TransportInMemory:
				srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: seed})
				tr := spec.wrapFor(i)(reference.ServerTransport(srv))
				cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: seed + 4}, tr)
				sys.SULs = append(sys.SULs, &QUICSetup{Server: srv, Client: cli})
			case TransportUDP:
				// One real socket pair per replica: a loopback-hosted server
				// and a dedicated client socket, so pooled workers drive
				// genuinely independent network endpoints.
				srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: seed})
				hosted, err := transport.ListenQUIC(transport.Loopback(), srv)
				if err != nil {
					sys.Close()
					return nil, fmt.Errorf("lab: hosting %q replica %d: %w", name, i, err)
				}
				sys.AddCloser(hosted.Close)
				sock := transport.NewQUICClientTransport(hosted.Addr())
				sys.AddCloser(sock.Close)
				tr := spec.wrapFor(i)(sock)
				cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: seed + 4}, tr)
				sys.SULs = append(sys.SULs, &QUICSetup{Server: srv, Client: cli})
			default:
				sys.Close()
				return nil, fmt.Errorf("lab: target %q does not support transport %q", name, spec.Transport)
			}
		}
		return sys, nil
	})
}
