package lab

import (
	"fmt"

	"repro/internal/adapter"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/reference"
)

// buildAdapter is the Builder for the external-adapter target: each
// replica owns one subprocess running spec.AdapterCmd and speaking the
// symbol-over-stdio protocol (docs/ADAPTER.md). The first replica's
// HELLO advertises the alphabet; every other replica must advertise the
// same one, since pooled replicas answer interchangeably. Restarts
// surface as learn.AdapterRestarted events through spec.Observer.
func buildAdapter(spec BuildSpec) (*System, error) {
	if spec.AdapterCmd == "" {
		return nil, fmt.Errorf("lab: target %q needs an adapter command (-adapter-cmd / WithAdapterCommand)",
			spec.Target)
	}
	if spec.Transport != TransportInMemory {
		return nil, fmt.Errorf("lab: target %q supports only the in-memory transport, not %q (the subprocess owns its own wire)",
			spec.Target, spec.Transport)
	}
	sys := &System{}
	for i := 0; i < spec.Replicas; i++ {
		worker, obs := i, spec.Observer
		s, err := adapter.New(adapter.Config{
			Command: spec.AdapterCmd,
			OnRestart: func(restarts int, reason string) {
				if obs != nil {
					obs.OnEvent(learn.AdapterRestarted{Worker: worker, Restarts: restarts, Reason: reason})
				}
			},
		})
		if err != nil {
			sys.Close()
			return nil, err
		}
		sys.AddCloser(s.Close)
		if i == 0 {
			sys.Alphabet = s.Alphabet()
		} else if !equalAlphabets(sys.Alphabet, s.Alphabet()) {
			sys.Close()
			return nil, fmt.Errorf("lab: adapter replica %d advertised a different alphabet than replica 0", i)
		}
		var sul core.SUL = s
		if spec.WrapTransport != nil {
			sul = newAdapterLink(s, spec.wrapFor(i))
		}
		sys.SULs = append(sys.SULs, sul)
	}
	return sys, nil
}

// adapterLink threads one adapter SUL's symbol exchanges through the
// experiment's transport wrapper, so WithImpairment's netem links and
// WithLinkMiddleware decorate external targets exactly as they do
// in-process ones: the input symbol rides as the client datagram and
// the output symbol as the response. A dropped query or response is
// silence ("{}"); a duplicated response joins with '|'.
type adapterLink struct {
	sul *adapter.SUL
	tr  reference.Transport
	// stepErr carries the inner Step error across the Transport
	// boundary (Transport.Send has no error return).
	stepErr error
}

func newAdapterLink(s *adapter.SUL, wrap func(reference.Transport) reference.Transport) *adapterLink {
	l := &adapterLink{sul: s}
	l.tr = wrap(reference.TransportFunc(func(_ string, sym []byte) [][]byte {
		out, err := s.Step(string(sym))
		if err != nil {
			l.stepErr = err
			return nil
		}
		return [][]byte{[]byte(out)}
	}))
	return l
}

// Reset implements core.SUL. Resets bypass the impairment link: the
// engine's reset is control plane, not target traffic.
func (l *adapterLink) Reset() error { return l.sul.Reset() }

// Step implements core.SUL.
func (l *adapterLink) Step(in string) (string, error) {
	l.stepErr = nil
	outs := l.tr.Send("adapter", []byte(in))
	if l.stepErr != nil {
		return "", l.stepErr
	}
	switch len(outs) {
	case 0:
		return "{}", nil
	case 1:
		return string(outs[0]), nil
	}
	joined := make([]byte, 0, 2*len(outs[0]))
	for i, o := range outs {
		if i > 0 {
			joined = append(joined, '|')
		}
		joined = append(joined, o...)
	}
	return string(joined), nil
}

func equalAlphabets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
