package lab

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/netem"
	"repro/internal/quicsim"
)

// TestBuiltinPropertiesAcrossTargets checks every builtin analysis.Property
// against all six registry targets. The five well-behaved targets (their
// models learned live, or — for mvfst, whose live behaviour halts learning
// on nondeterminism — the specification skeleton) satisfy the whole set;
// the lossy-retransmit target learned through a lossy link violates the
// close discipline and the duplicate-HANDSHAKE_DONE check, and both
// witnesses replay against the live degraded target.
func TestBuiltinPropertiesAcrossTargets(t *testing.T) {
	clean := map[string][]Option{
		TargetTCP:         {WithSeed(13)},
		TargetGoogle:      {WithSeed(13), WithPerfectEquivalence()},
		TargetGoogleFixed: {WithSeed(13), WithPerfectEquivalence()},
		TargetQuiche:      {WithSeed(13), WithPerfectEquivalence()},
	}
	for target, opts := range clean {
		res := learnT(t, target, opts...)
		for _, r := range analysis.CheckAll(res.Model()) {
			if !r.OK() {
				t.Errorf("%s: %s violated: %v", target, r.Property.Name(), r.Violation)
			}
		}
	}
	// mvfst: the live target is nondeterministic (that detection is the §5
	// analysis), so its deterministic specification skeleton is checked.
	mvfst := analysis.NewModel(TargetMvfst, quicsim.GroundTruth(quicsim.ProfileMvfst))
	for _, r := range analysis.CheckAll(mvfst) {
		if !r.OK() {
			t.Errorf("mvfst skeleton: %s violated: %v", r.Property.Name(), r.Violation)
		}
	}

	// lossy-retransmit through a 2%-loss link: the degradation is learned
	// into the model and flagged from the model alone.
	exp, err := NewExperiment(TargetLossyRetransmit,
		WithSeed(13),
		WithImpairment(netem.Config{LossClient: 0.02, LossServer: 0.02, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	res, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nondet != nil {
		t.Fatalf("lossy learn halted: %v", res.Nondet)
	}
	violations := analysis.Violations(analysis.CheckAll(res.Model()))
	if len(violations) != 2 {
		t.Fatalf("lossy-retransmit: %d violations, want 2 (close discipline + duplicate HANDSHAKE_DONE)", len(violations))
	}
	names := []string{violations[0].Property, violations[1].Property}
	if !strings.Contains(strings.Join(names, " "), "close-is-terminal") {
		t.Fatalf("close violation missing from %v", names)
	}
	// Confirm each model-level witness on the wire: the live (degraded)
	// replicas must reproduce the violating outputs.
	for _, v := range violations {
		live, err := exp.Replay(bg, v.Witness.Word, 5)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(live, ",") != strings.Join(v.Witness.Outputs, ",") {
			t.Errorf("%s: live replay %v != model witness %v", v.Property, live, v.Witness.Outputs)
		}
	}
}

// TestCampaignAnalyze: the cross-run diff matrix over a finished campaign.
func TestCampaignAnalyze(t *testing.T) {
	camp := &Campaign{Runs: []RunSpec{
		{Name: "google", Target: TargetGoogle, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
		{Name: "google-again", Target: TargetGoogle, Options: []Option{WithSeed(17), WithPerfectEquivalence()}},
		{Name: "quiche", Target: TargetQuiche, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
		{Name: "mvfst", Target: TargetMvfst, Options: []Option{WithSeed(13)}},
	}}
	a, err := camp.Analyze(bg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// mvfst halts on nondeterminism and therefore contributes no model.
	if len(a.Models) != 3 {
		t.Fatalf("%d models, want 3 (mvfst halts)", len(a.Models))
	}
	if a.Models[1].Name != "google-again" {
		t.Fatalf("model names not taken from runs: %v", a.Models[1].Name)
	}
	if r := a.Matrix.Report(0, 1); r == nil || !r.Equivalent {
		t.Fatalf("two google learns must agree: %+v", r)
	}
	if r := a.Matrix.Report(0, 2); r == nil || r.Equivalent {
		t.Fatal("google vs quiche must differ")
	}
	if len(a.Results) != 4 {
		t.Fatalf("results not carried through: %d", len(a.Results))
	}
}

// TestResultModel: the lab-to-analysis bridge.
func TestResultModel(t *testing.T) {
	res := learnT(t, TargetQuiche, WithSeed(13), WithPerfectEquivalence())
	m := res.Model()
	if m == nil || m.Name != TargetQuiche || m.States() != 8 {
		t.Fatalf("Result.Model broken: %+v", m)
	}
	if m.Mealy() != res.Machine {
		t.Fatal("Model must wrap the learned machine, not a copy")
	}
	nores := &Result{Target: "x"}
	if nores.Model() != nil {
		t.Fatal("nondet result must have a nil model")
	}
}

// TestExperimentReplay: live replay over the oracle plane agrees with the
// learned model on a clean link.
func TestExperimentReplay(t *testing.T) {
	exp, err := NewExperiment(TargetQuiche, WithSeed(13), WithPerfectEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	res, err := exp.Learn(bg)
	if err != nil {
		t.Fatal(err)
	}
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream}
	want, _ := res.Machine.Run(word)
	got, err := exp.Replay(bg, word, 3)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("replay %v, model %v", got, want)
	}
}

// TestWithConformance: the Wp-method pass recovers the full model without
// a ground-truth oracle — the guarantee `prognosis diff` builds on. The
// plain random-words search alone misses google's deep flow-control
// states.
func TestWithConformance(t *testing.T) {
	res := learnT(t, TargetGoogle, WithSeed(13), WithConformance(2))
	truth := quicsim.GroundTruth(quicsim.ProfileGoogle)
	if eq, ce := truth.Equivalent(res.Machine); !eq {
		t.Fatalf("conformance learn missed behaviour, witness %v", ce)
	}
}
