// Package lab wires complete Prognosis experiments. Targets — the TCP
// stack and the four QUIC implementation profiles this repository
// reproduces — live in a registry (Register/Targets): each target name
// maps to a Builder that constructs any number of independent SUL replicas
// from a declarative BuildSpec, over the in-memory transport or real UDP
// loopback sockets. Experiments are configured with functional options
// (WithWorkers, WithTransport, WithRTT, WithLearner, WithGuard, ...),
// learned with a context (cancellable mid-round), observed through a typed
// event stream, and batched into concurrent Campaigns. The command-line
// tools, examples, and the benchmark harness all drive experiments through
// this package.
package lab

import (
	"fmt"
	"time"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/quicsim"
	"repro/internal/quicwire"
	"repro/internal/reference"
	"repro/internal/synth"
	"repro/internal/tcpsim"
	"repro/internal/tcpwire"
)

// Target names registered by this package.
const (
	TargetTCP         = "tcp"
	TargetGoogle      = "google"
	TargetGoogleFixed = "google-fixed"
	TargetQuiche      = "quiche"
	TargetMvfst       = "mvfst"
	// TargetLossyRetransmit is the retransmission-buggy Google variant:
	// clean-link-identical to TargetGoogle, but enough lost datagrams
	// flip its (connection-leaking) loss recovery into permanent
	// double-send — the scenario target for learning under impairment
	// (WithImpairment, docs/IMPAIRMENT.md).
	TargetLossyRetransmit = "lossy-retransmit"
	// TargetQUICVN is the Google profile with version negotiation and
	// stateless-retry admission enabled: the upgrade/compatibility
	// machine (RFC 9000 §6 + §8.1) over the extended alphabet carrying
	// a grease-versioned Initial.
	TargetQUICVN = "quic-vn"
	// TargetTCPSACK is the TCP stack with SACK blocks and window
	// scaling negotiated on the SYN — out-of-order data is buffered and
	// advertised in SACK options instead of blindly absorbed.
	TargetTCPSACK = "tcp-sack"
	// TargetAdapter is the external-adapter target: a subprocess named
	// by WithAdapterCommand, driven over the symbol-over-stdio protocol
	// of internal/adapter (docs/ADAPTER.md).
	TargetAdapter = "adapter"
)

// QUICProfile resolves a QUIC target name.
func QUICProfile(name string) (quicsim.Profile, error) {
	switch name {
	case TargetGoogle:
		return quicsim.ProfileGoogle, nil
	case TargetGoogleFixed:
		return quicsim.ProfileGoogleFixed, nil
	case TargetQuiche:
		return quicsim.ProfileQuiche, nil
	case TargetMvfst:
		return quicsim.ProfileMvfst, nil
	case TargetLossyRetransmit:
		return quicsim.ProfileLossyRetransmit, nil
	}
	return 0, fmt.Errorf("lab: unknown QUIC target %q", name)
}

// QUICSetup is a wired QUIC system under learning: the simulated server
// behind the instrumented reference client, over any transport.
type QUICSetup struct {
	Server *quicsim.Server
	Client *reference.QUICClient
}

// Reset implements core.SUL.
func (s *QUICSetup) Reset() error {
	s.Server.Reset()
	return s.Client.Reset()
}

// Step implements core.SUL.
func (s *QUICSetup) Step(in string) (string, error) { return s.Client.Step(in) }

// QUICOptions tune NewQUIC.
type QUICOptions struct {
	Seed          int64
	RetryRequired bool
	BuggyRetry    bool // client retries from a new port (Issue 3)
	// VersionNegotiation answers unknown-version long headers with a
	// Version Negotiation packet (the quic-vn target).
	VersionNegotiation bool
	// Transport overrides the in-memory transport (e.g. a UDP transport).
	Transport reference.Transport
}

// NewQUIC builds a QUIC system under learning for a profile.
func NewQUIC(profile quicsim.Profile, opts QUICOptions) *QUICSetup {
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	srv := quicsim.NewServer(quicsim.Config{
		Profile: profile, Seed: opts.Seed, RetryRequired: opts.RetryRequired,
		VersionNegotiation: opts.VersionNegotiation,
	})
	tr := opts.Transport
	if tr == nil {
		tr = reference.ServerTransport(srv)
	}
	cli := reference.NewQUICClient(reference.QUICClientConfig{
		Seed: opts.Seed + 4, RetryFromNewPort: opts.BuggyRetry,
	}, tr)
	return &QUICSetup{Server: srv, Client: cli}
}

// TCPSetup is a wired TCP system under learning.
type TCPSetup struct {
	Server *tcpsim.Server
	Client *reference.TCPClient
}

// Reset implements core.SUL.
func (s *TCPSetup) Reset() error {
	s.Server.Reset()
	return s.Client.Reset()
}

// Step implements core.SUL.
func (s *TCPSetup) Step(in string) (string, error) { return s.Client.Step(in) }

// NewTCP builds the TCP system under learning: the userspace stack behind
// the instrumented Scapy-style client, exchanging checksummed binary
// segments.
func NewTCP(seed int64) *TCPSetup { return newTCP(seed, nil) }

// NewTCPSACK builds the SACK-enabled TCP system under learning: the
// same stack with tcpsim.Config.SACK on, driven over the extended
// alphabet carrying a SACK-permitted SYN and an out-of-order push.
func NewTCPSACK(seed int64) *TCPSetup { return newTCPVariant(seed, nil, true) }

// newTCP builds the TCP setup, optionally threading the segment path
// through a datagram-transport wrapper (how WithImpairment reaches the
// TCP target: segments ride the same fault-injection interface as QUIC
// datagrams).
func newTCP(seed int64, wrap func(reference.Transport) reference.Transport) *TCPSetup {
	return newTCPVariant(seed, wrap, false)
}

func newTCPVariant(seed int64, wrap func(reference.Transport) reference.Transport, sack bool) *TCPSetup {
	if seed == 0 {
		seed = 5
	}
	srv := tcpsim.NewServer(tcpsim.Config{Port: 44344, Seed: seed, StrictAckCheck: true, SACK: sack})
	src := [4]byte{10, 0, 0, 2}
	dst := [4]byte{10, 0, 0, 1}
	var tr reference.TCPTransport = reference.TCPTransportFunc(func(raw []byte) [][]byte {
		seg, err := tcpwire.Decode(raw, src, dst)
		if err != nil {
			return nil
		}
		var out [][]byte
		for _, resp := range srv.Handle(seg) {
			out = append(out, resp.Encode(dst, src))
		}
		return out
	})
	if wrap != nil {
		inner := tr
		wrapped := wrap(reference.TransportFunc(func(_ string, raw []byte) [][]byte {
			return inner.Send(raw)
		}))
		tr = reference.TCPTransportFunc(func(raw []byte) [][]byte {
			return wrapped.Send("10.0.0.2:0", raw)
		})
	}
	cli := reference.NewTCPClient(reference.TCPClientConfig{
		Seed: seed + 2, DstPort: 44344, SrcAddr: src, DstAddr: dst,
	}, tr)
	return &TCPSetup{Server: srv, Client: cli}
}

// Remote wraps an SUL so that every reset and every step costs one
// emulated network round-trip, turning an in-process simulator into a
// latency-faithful stand-in for a containerised implementation.
func Remote(sul core.SUL, rtt time.Duration) core.SUL {
	return &remoteSUL{inner: sul, rtt: rtt}
}

type remoteSUL struct {
	inner core.SUL
	rtt   time.Duration
}

func (r *remoteSUL) Reset() error {
	time.Sleep(r.rtt)
	return r.inner.Reset()
}

func (r *remoteSUL) Step(in string) (string, error) {
	time.Sleep(r.rtt)
	return r.inner.Step(in)
}

// SDBTraces converts recorded QUIC exchanges into synthesis traces for the
// Issue 4 experiment: the input parameter is the MAX_STREAM_DATA limit the
// client granted (0 when the symbol carries none), the output parameter is
// the Maximum Stream Data field of any STREAM_DATA_BLOCKED frame in the
// response.
func SDBTraces(exchanges []reference.Exchange, blockedLabel string) synth.Trace {
	var tr synth.Trace
	for _, ex := range exchanges {
		step := synth.Step{Input: ex.AbstractIn, InVals: []int64{0}}
		for _, cp := range ex.ConcreteIn {
			for _, f := range cp.Frames {
				if f.Type == quicwire.FrameMaxStreamData {
					step.InVals[0] = int64(f.Limit)
				}
			}
		}
		if ex.AbstractOut == blockedLabel {
			for _, cp := range ex.ConcreteOut {
				for _, f := range cp.Frames {
					if f.Type == quicwire.FrameStreamDataBlocked {
						step.OutVals = []int64{int64(f.Limit)}
					}
				}
			}
		}
		tr = append(tr, step)
	}
	return tr
}

// CollectSDBTrace runs one concrete word against a fresh connection and
// returns its synthesis trace (used by the Issue 4 experiment and the
// refinement loop).
func CollectSDBTrace(setup *QUICSetup, word []string, blockedLabel string) (synth.Trace, error) {
	if err := setup.Reset(); err != nil {
		return nil, err
	}
	setup.Client.ClearTrace()
	for _, sym := range word {
		if _, err := setup.Client.Step(sym); err != nil {
			return nil, err
		}
	}
	return SDBTraces(setup.Client.Trace(), blockedLabel), nil
}

// BlockedOutputLabel is the abstract output symbol carrying the
// STREAM_DATA_BLOCKED frame in the Google profiles.
const BlockedOutputLabel = "{SHORT(?,?)[ACK,STREAM,STREAM_DATA_BLOCKED]}"

// SDBProblem assembles the Issue 4 synthesis problem over a learned Google
// model: one register (tracking the granted limit) and the blocked output's
// Maximum Stream Data parameter.
func SDBProblem(model *automata.Mealy, traces []synth.Trace) *synth.Problem {
	return &synth.Problem{
		Machine:        model,
		NumRegisters:   1,
		NumInputParams: 1,
		OutputParams:   map[string]int{BlockedOutputLabel: 1},
		InitRegs:       []int64{quicsim.Chunk},
		Consts:         []int64{0},
		Positive:       traces,
	}
}

// TCPSynthTraces converts TCP exchanges into synthesis traces over
// (sequence, acknowledgement) numbers. The SYN-ACK's acknowledgement field
// is the output parameter — the register relationship of Fig. 3(c).
func TCPSynthTraces(exchanges []reference.TCPExchange) synth.Trace {
	var tr synth.Trace
	for _, ex := range exchanges {
		step := synth.Step{
			Input:  ex.AbstractIn,
			InVals: []int64{int64(ex.ConcreteIn.SeqNumber), int64(ex.ConcreteIn.AckNumber)},
		}
		if len(ex.ConcreteOut) > 0 && ex.AbstractOut == "SYN+ACK(?,?,0)" {
			step.OutVals = []int64{int64(ex.ConcreteOut[0].AckNumber)}
		}
		tr = append(tr, step)
	}
	return tr
}
