package lab

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWithStoreWarmRelearn is the end-to-end incremental-learning
// contract: the first (cold) run of a target populates the store; a second
// run of the unchanged target warm-starts from it, issues zero live
// membership queries (the perfect equivalence oracle adds none), and
// reproduces the model byte for byte in canonical form — including the
// on-disk snapshot, which must not change when nothing changed.
func TestWithStoreWarmRelearn(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithSeed(13), WithPerfectEquivalence(), WithStore(dir)}

	cold, err := Run(context.Background(), TargetQuiche, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Queries == 0 {
		t.Fatal("cold run issued no live queries")
	}
	snapshots, err := filepath.Glob(filepath.Join(dir, "*.model.json"))
	if err != nil || len(snapshots) != 1 {
		t.Fatalf("snapshots after cold run: %v (%v)", snapshots, err)
	}
	snapBefore, err := os.ReadFile(snapshots[0])
	if err != nil {
		t.Fatal(err)
	}

	warm, err := Run(context.Background(), TargetQuiche, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Queries != 0 {
		t.Fatalf("warm relearn of an unchanged target issued %d live queries, want 0", warm.Stats.Queries)
	}
	if warm.Stats.Hits == 0 {
		t.Fatal("warm run reports no cache hits; the store did not preload")
	}
	if eq, ce := cold.Machine.Equivalent(warm.Machine); !eq {
		t.Fatalf("warm relearn diverged on %v", ce)
	}
	a, _ := json.Marshal(cold.Machine.Minimize())
	b, _ := json.Marshal(warm.Machine.Minimize())
	if string(a) != string(b) {
		t.Fatal("warm relearn not byte-identical in canonical form")
	}
	snapAfter, err := os.ReadFile(snapshots[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(snapBefore) != string(snapAfter) {
		t.Fatal("snapshot rewritten differently by a run that learned nothing new")
	}
}

// TestWithStoreKeysSeparateConfigurations: answer-affecting configuration
// must split store files — a lossy-link run of a state-leaking target and
// a clean run of the same target must not share a log.
func TestWithStoreKeysSeparateConfigurations(t *testing.T) {
	clean := runKey(TargetLossyRetransmit, config{seed: 13})
	impaired := runKey(TargetLossyRetransmit, config{seed: 13,
		impair: ImpairmentCell{Loss: 0.02}.Config(13), warmup: 100})
	if clean == impaired {
		t.Fatalf("clean and impaired runs share store key %q", clean)
	}
	otherSeed := runKey(TargetLossyRetransmit, config{seed: 14})
	if clean == otherSeed {
		t.Fatal("different seeds share a store key")
	}
	// Workers/RTT/transport do not change answers; they must share the log.
	if runKey(TargetGoogle, config{seed: 13, workers: 4}) != runKey(TargetGoogle, config{seed: 13}) {
		t.Fatal("worker count split the store key")
	}
	for _, r := range impaired {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			t.Fatalf("store key %q contains unsafe rune %q", impaired, r)
		}
	}
}

// TestRunKeyIsTheStoreKey is the fleet-identity regression test: the
// exported RunKey — the name the coordinator assigns a cell, files its
// merged checkpoint record under, and asks workers for store logs by —
// must be exactly the key WithStore files the query log under. If the two
// derivations ever diverged, a fleet-merged checkpoint and store could
// disagree about a cell's identity.
func TestRunKeyIsTheStoreKey(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{
		WithSeed(17),
		WithImpairment(ImpairmentCell{Loss: 0.05, Duplicate: 0.01}.Config(17)),
		WithWarmup(50),
		WithWorkers(2), // must NOT affect the key
		WithStore(dir),
	}
	exp, err := NewExperiment(TargetLossyRetransmit, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	key := RunKey(TargetLossyRetransmit, opts...)
	if key == "" {
		t.Fatal("empty run key")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".log")); err != nil {
		entries, _ := filepath.Glob(filepath.Join(dir, "*.log"))
		t.Fatalf("experiment's store log is not named by RunKey %q (store dir holds %v)", key, entries)
	}
	// And the one-worker variant derives the identical identity.
	if solo := RunKey(TargetLossyRetransmit, opts[:3]...); solo != key {
		t.Fatalf("worker count split the run key: %q vs %q", solo, key)
	}
}

// sentinelQueries is an impossible live-query count planted into
// checkpoint records by tamperCheckpoint: a result carrying it can only
// have come from the checkpoint, never from a real relearn.
const sentinelQueries = 987654321

// tamperCheckpoint rewrites every record's stats.Queries to
// sentinelQueries, so tests can distinguish restored results from
// relearned ones.
func tamperCheckpoint(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	for i := 1; i < len(lines); i++ { // line 0 is the header
		var rec map[string]json.RawMessage
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatal(err)
		}
		var stats map[string]int64
		if err := json.Unmarshal(rec["stats"], &stats); err != nil {
			t.Fatal(err)
		}
		stats["Queries"] = sentinelQueries
		rec["stats"], _ = json.Marshal(stats)
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(b)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignCheckpointResume: a campaign with a checkpoint records
// completed runs; rerunning the campaign restores them without relearning
// — proven by planting a sentinel query count in the records, which a
// real relearn could never produce.
func TestCampaignCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	camp := &Campaign{
		Checkpoint: ckpt,
		Runs: []RunSpec{
			{Name: "tcp", Target: TargetTCP, Options: []Option{WithSeed(13)}},
			{Name: "quiche", Target: TargetQuiche, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
		},
	}
	first, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.Err != nil || r.Result == nil || r.Result.Machine == nil {
			t.Fatalf("run %s failed: %+v", r.Name, r.Err)
		}
	}
	tamperCheckpoint(t, ckpt)

	second, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Err != nil || r.Result == nil || r.Result.Machine == nil {
			t.Fatalf("resumed run %s failed: %+v", r.Name, r.Err)
		}
		if r.Result.Stats.Queries != sentinelQueries {
			t.Fatalf("run %s was relearned instead of restored (queries=%d)", r.Name, r.Result.Stats.Queries)
		}
		if eq, ce := first[i].Result.Machine.Equivalent(r.Result.Machine); !eq {
			t.Fatalf("restored model for %s diverged on %v", r.Name, ce)
		}
	}
}

// TestCampaignCheckpointIgnoresRetargetedName: a record whose target no
// longer matches the spec (the campaign was edited but kept the run name)
// must be relearned, not restored — restoring would attribute the old
// target's model to the new one.
func TestCampaignCheckpointIgnoresRetargetedName(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	camp := &Campaign{
		Checkpoint: ckpt,
		Runs:       []RunSpec{{Name: "run", Target: TargetTCP, Options: []Option{WithSeed(13)}}},
	}
	if _, err := camp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tamperCheckpoint(t, ckpt)
	retargeted := &Campaign{
		Checkpoint: ckpt,
		Runs: []RunSpec{{Name: "run", Target: TargetQuiche,
			Options: []Option{WithSeed(13), WithPerfectEquivalence()}}},
	}
	results, err := retargeted.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil || r.Result == nil || r.Result.Machine == nil {
		t.Fatalf("retargeted run failed: %+v", r.Err)
	}
	if r.Result.Stats.Queries == sentinelQueries {
		t.Fatal("stale tcp record restored for the retargeted quiche run")
	}
	if r.Result.Machine.NumStates() != 8 {
		t.Fatalf("retargeted run learned %d states, want quiche's 8", r.Result.Machine.NumStates())
	}
}

// TestCampaignCheckpointPartialResume: only the missing runs of an
// interrupted campaign execute on resume, and a corrupted checkpoint tail
// costs exactly the run it recorded.
func TestCampaignCheckpointPartialResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	firstHalf := &Campaign{
		Checkpoint: ckpt,
		Runs:       []RunSpec{{Name: "tcp", Target: TargetTCP, Options: []Option{WithSeed(13)}}},
	}
	if _, err := firstHalf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tamperCheckpoint(t, ckpt)
	// Simulate a crash mid-append of a second record: a truncated tail.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, append(raw, []byte(`{"name":"qui`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	full := &Campaign{
		Checkpoint: ckpt,
		Runs: []RunSpec{
			{Name: "tcp", Target: TargetTCP, Options: []Option{WithSeed(13)}},
			{Name: "quiche", Target: TargetQuiche, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
		},
	}
	results, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Result == nil ||
		results[0].Result.Stats.Queries != sentinelQueries {
		t.Fatalf("checkpointed tcp run not restored: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Result == nil || results[1].Result.Machine == nil {
		t.Fatalf("missing quiche run not executed: %+v", results[1].Err)
	}
	if results[1].Result.Machine.NumStates() != 8 {
		t.Fatalf("resumed quiche learned %d states, want 8", results[1].Result.Machine.NumStates())
	}
}

// TestCampaignCheckpointRecordsNondet: a §5 nondeterminism halt is a
// completed analysis and must be checkpointed (not retried on resume).
func TestCampaignCheckpointRecordsNondet(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	camp := &Campaign{
		Checkpoint: ckpt,
		Runs:       []RunSpec{{Name: "mvfst", Target: TargetMvfst, Options: []Option{WithSeed(13)}}},
	}
	first, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err != nil || first[0].Result == nil || first[0].Result.Nondet == nil {
		t.Fatalf("mvfst did not halt on nondeterminism: %+v", first[0])
	}
	tamperCheckpoint(t, ckpt)
	second, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Err != nil || second[0].Result == nil || second[0].Result.Nondet == nil {
		t.Fatalf("nondeterminism verdict not restored: %+v", second[0])
	}
	if second[0].Result.Stats.Queries != sentinelQueries {
		t.Fatal("mvfst verdict was re-derived instead of restored")
	}
	if second[0].Result.Nondet.Votes != first[0].Result.Nondet.Votes {
		t.Fatal("restored nondeterminism verdict differs")
	}
}
