package lab

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/netem"
	"repro/internal/reference"
)

// Result is the outcome of one learning run.
type Result struct {
	Target string
	// Machine is the learned Mealy machine (nil when the run halted on
	// nondeterminism). Model() wraps it for the analysis plane.
	Machine     *automata.Mealy
	Stats       learn.Stats
	Nondet      *core.NondeterminismError
	Duration    time.Duration
	LearnerKind core.LearnerKind
	// Guard reports the voting guard's cost counters for this run.
	//
	// Deprecated: read Metrics().Guard — the per-field stats accessors
	// are shims kept for one release; the unified Metrics snapshot is
	// the supported view.
	Guard core.GuardStats
	// Faults aggregates the netem fault counters across all worker links
	// for this run (zero without WithImpairment).
	//
	// Deprecated: read Metrics().Faults.
	Faults netem.Stats
	// Window reports the adaptive in-flight window's counters when
	// WithWindow was configured (nil otherwise).
	//
	// Deprecated: read Metrics().Window.
	Window *learn.WindowStats
}

// Metrics is the unified observability snapshot of one learning run: the
// live-traffic counters, the §5 guard's voting cost, the fault-injection
// totals, the adaptive window's trajectory, and the wall time — one view
// over what used to be five scattered per-field structs. The same
// subsystems also publish process-wide scrapeable totals into
// metrics.Default() (served by prognosisd's GET /metrics); this snapshot
// is the per-run slice of that story.
type Metrics struct {
	// Learner counts live oracle traffic: queries, symbols, cache hits.
	Learner learn.Stats `json:"learner"`
	// Guard is the voting guard's cost — escalations and wasted votes
	// quantify how hard the link fought the learner.
	Guard core.GuardStats `json:"guard"`
	// Faults aggregates netem fault counters across all worker links
	// (zero without WithImpairment).
	Faults netem.Stats `json:"faults"`
	// Window is the adaptive in-flight window's counters, nil unless
	// WithWindow was configured.
	Window *learn.WindowStats `json:"window,omitempty"`
	// Duration is the run's wall time.
	Duration time.Duration `json:"duration"`
}

// CacheHitRate returns the fraction of membership queries answered from
// cache, 0 when nothing was asked.
func (m Metrics) CacheHitRate() float64 {
	if denom := m.Learner.Queries + m.Learner.Hits; denom > 0 {
		return float64(m.Learner.Hits) / float64(denom)
	}
	return 0
}

// QueriesPerSec returns the live-query rate over the run's wall time.
func (m Metrics) QueriesPerSec() float64 {
	if m.Duration > 0 {
		return float64(m.Learner.Queries) / m.Duration.Seconds()
	}
	return 0
}

// Metrics returns the run's unified observability snapshot.
func (r *Result) Metrics() Metrics {
	return Metrics{
		Learner:  r.Stats,
		Guard:    r.Guard,
		Faults:   r.Faults,
		Window:   r.Window,
		Duration: r.Duration,
	}
}

// Model returns the learned model wrapped for the analysis plane — named
// after the target, ready for Diff/Minimize/CheckAll/Save. It is nil when
// the run produced no machine (nondeterminism halt).
func (r *Result) Model() *analysis.Model {
	return analysis.NewModel(r.Target, r.Machine)
}

// Experiment is one configured learning run against a registered target:
// the built SUL replicas, the assembled oracle chain, and the resolved
// options. Build it with NewExperiment, run it with Learn (repeatably —
// replicas reset per query), and release any transport resources with
// Close.
type Experiment struct {
	target string
	cfg    config
	sys    *System
	exp    *core.Experiment
	links  []*netem.Link
	store  *learn.Store
}

// NewExperiment resolves target in the registry, builds one SUL replica
// per worker, and assembles the experiment from the given options.
func NewExperiment(target string, opts ...Option) (*Experiment, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.impair.Enabled() && !cfg.guardSet {
		// A fixed certainty threshold cannot be met on a link that
		// corrupts a large fraction of executions; impaired runs default
		// to the adaptive guard unless the caller chose one explicitly.
		cfg.guard = core.DefaultAdaptiveGuard()
	}
	var links []*netem.Link
	var wrap func(worker int, tr reference.Transport) reference.Transport
	if cfg.impair.Enabled() || len(cfg.middleware) > 0 {
		impair := cfg.impair
		middleware := cfg.middleware
		wrap = func(worker int, tr reference.Transport) reference.Transport {
			if impair.Enabled() {
				l := netem.New(tr, impair.ForWorker(worker))
				links = append(links, l)
				tr = l
			}
			for _, mw := range middleware {
				tr = mw(worker, tr)
			}
			return tr
		}
	}
	if cfg.adapterCmd != "" && !External(target) {
		return nil, fmt.Errorf("lab: target %q is in-process and takes no adapter command", target)
	}
	sys, err := build(BuildSpec{
		Target:        target,
		Replicas:      cfg.workers,
		Seed:          cfg.seed,
		Transport:     cfg.transport,
		AdapterCmd:    cfg.adapterCmd,
		Observer:      cfg.observer,
		WrapTransport: wrap,
	})
	if err != nil {
		return nil, err
	}
	if cfg.warmup > 0 {
		if err := warmup(sys, cfg.warmup, cfg.seed); err != nil {
			sys.Close()
			return nil, fmt.Errorf("lab: warmup: %w", err)
		}
	}
	suls := sys.SULs
	if cfg.rtt > 0 {
		wrapped := make([]core.SUL, len(suls))
		for i, s := range suls {
			wrapped[i] = Remote(s, cfg.rtt)
		}
		suls = wrapped
	}
	exp := &core.Experiment{
		Alphabet:     sys.Alphabet,
		SUL:          suls[0],
		SULs:         suls[1:],
		Workers:      cfg.workers,
		Learner:      cfg.learner,
		Seed:         cfg.seed,
		DisableCache: cfg.disableCache,
		Guard:        cfg.guard,
		Conformance:  cfg.conformance,
		Equivalence:  cfg.equivalence,
		Observer:     cfg.observer,
		Window:       cfg.window,
	}
	if cfg.perfect && exp.Equivalence == nil {
		if sys.Truth == nil {
			sys.Close()
			return nil, fmt.Errorf("lab: no ground truth available for %q", target)
		}
		exp.Equivalence = &learn.ModelOracle{Model: sys.Truth}
	}
	e := &Experiment{target: target, cfg: cfg, sys: sys, exp: exp, links: links}
	if cfg.storeDir != "" && !cfg.disableCache {
		st, err := learn.OpenStore(cfg.storeDir, runKey(target, cfg))
		if err != nil {
			sys.Close()
			return nil, err
		}
		e.store = st
		exp.Store = st
		// A saved hypothesis warm-starts the learner. Load failures (or a
		// snapshot over a different alphabet, rejected by the learner) just
		// degrade to a cold start.
		if warm, err := st.LoadModel(); err == nil {
			exp.Warm = warm
		}
	}
	return e, nil
}

// RunKey derives the canonical cell key of one (target, options) pair —
// the single identity under which every persistence plane files the run:
// the learn.Store query log and model snapshot (WithStore), the fleet
// coordinator's cell assignment and merged campaign checkpoint, and the
// per-worker logs the merge stage pulls. Deriving the key in exactly one
// place is what guarantees a fleet-merged checkpoint and store can never
// disagree about which cell an entry belongs to (regression-tested in
// store_test.go). Two option sets that cannot change a target's answers
// (workers, RTT, transport, learner) produce the same key by design.
func RunKey(target string, opts ...Option) string {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return runKey(target, cfg)
}

// runKey names the store file of one (target, configuration) pair. Only
// parameters that can change the *answers* a target gives are part of the
// key: the seed (drives the simulated implementations), the impairment
// profile and warmup (targets with cross-connection state, such as
// lossy-retransmit, answer differently once a link has bitten them).
// Transport, workers, RTT, and learner choice are excluded — replicas are
// behaviourally identical across all of them, so their answers are
// interchangeable and sharing the log is the point.
func runKey(target string, cfg config) string {
	key := fmt.Sprintf("%s_s%d", target, cfg.seed)
	if cfg.adapterCmd != "" {
		// Different adapter binaries answer differently; key them by a
		// short content hash of the command line (the basename keeps the
		// key human-readable).
		argv := strings.Fields(cfg.adapterCmd)
		base := ""
		if len(argv) > 0 {
			base = filepath.Base(argv[0])
		}
		sum := sha256.Sum256([]byte(cfg.adapterCmd))
		key += fmt.Sprintf("_a%s-%x", base, sum[:4])
	}
	if cfg.impair.Enabled() {
		key += "_" + cfg.impair.Label()
		if cfg.warmup > 0 {
			key += fmt.Sprintf("_w%d", cfg.warmup)
		}
	}
	// Keep the key filename-safe across platforms.
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, key)
}

// warmup runs the WithWarmup word sequence through every replica: words
// seeded random input words of length 10, the same sequence for each
// replica so identically-seeded replicas stay behaviourally aligned.
func warmup(sys *System, words int, seed int64) error {
	rng := rand.New(rand.NewSource(seed*31 + 17))
	seq := make([][]string, words)
	for i := range seq {
		w := make([]string, 10)
		for j := range w {
			w[j] = sys.Alphabet[rng.Intn(len(sys.Alphabet))]
		}
		seq[i] = w
	}
	for _, sul := range sys.SULs {
		for _, w := range seq {
			if err := sul.Reset(); err != nil {
				return err
			}
			for _, in := range w {
				if _, err := sul.Step(in); err != nil {
					return err
				}
			}
		}
		// Leave the replica reset so the first learning query starts from
		// a fresh connection.
		if err := sul.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// Target returns the experiment's registered target name.
func (e *Experiment) Target() string { return e.target }

// Alphabet returns the target's input alphabet.
func (e *Experiment) Alphabet() []string { return e.sys.Alphabet }

// GroundTruth returns the target's specification model, nil when the
// target has none.
func (e *Experiment) GroundTruth() *automata.Mealy { return e.sys.Truth }

// Stats returns a snapshot of the live-traffic counters (valid after — or,
// from an observer, during — Learn). The counters are read atomically, so
// snapshots taken while pool workers are updating them are safe.
func (e *Experiment) Stats() learn.Stats { return statsSnapshot(&e.exp.Stats) }

// GuardStats returns a snapshot of the voting guard's cumulative cost
// counters (safe to read mid-run).
func (e *Experiment) GuardStats() core.GuardStats { return e.exp.GuardStats.Snapshot() }

// Faults aggregates the fault counters of every worker's netem link.
// Without WithImpairment there are no links and the result is zero.
func (e *Experiment) Faults() netem.Stats {
	var total netem.Stats
	for _, l := range e.links {
		total.Add(l.Stats())
	}
	return total
}

// faultsDelta subtracts the pre-run fault snapshot from the post-run one.
func faultsDelta(before, after netem.Stats) netem.Stats {
	return netem.Stats{
		SentClient:    after.SentClient - before.SentClient,
		DroppedClient: after.DroppedClient - before.DroppedClient,
		SentServer:    after.SentServer - before.SentServer,
		DroppedServer: after.DroppedServer - before.DroppedServer,
		Duplicated:    after.Duplicated - before.Duplicated,
		Reordered:     after.Reordered - before.Reordered,
	}
}

// statsSnapshot reads the atomically-updated counters without racing
// concurrent pool workers.
func statsSnapshot(st *learn.Stats) learn.Stats {
	return learn.Stats{
		Queries: atomic.LoadInt64(&st.Queries),
		Symbols: atomic.LoadInt64(&st.Symbols),
		Hits:    atomic.LoadInt64(&st.Hits),
	}
}

// Learn runs the full Prognosis pipeline. Cancelling ctx aborts the run
// within one query round and returns ctx.Err(); a nondeterministic target
// (the §5 analysis) is not an error — it is reported in Result.Nondet.
// Learn is repeatable (replicas reset per query); each call's Result.Stats
// counts only that run's traffic.
func (e *Experiment) Learn(ctx context.Context) (*Result, error) {
	// Zero the counters so repeated Learns report per-run traffic rather
	// than an accumulating total. (Learn itself is not safe for concurrent
	// use on one Experiment; campaign runs each own their Experiment.)
	atomic.StoreInt64(&e.exp.Stats.Queries, 0)
	atomic.StoreInt64(&e.exp.Stats.Symbols, 0)
	atomic.StoreInt64(&e.exp.Stats.Hits, 0)
	atomic.StoreInt64(&e.exp.GuardStats.Votes, 0)
	atomic.StoreInt64(&e.exp.GuardStats.Escalations, 0)
	atomic.StoreInt64(&e.exp.GuardStats.RetriedQueries, 0)
	atomic.StoreInt64(&e.exp.GuardStats.WastedVotes, 0)
	// Link counters cannot be zeroed (the links keep their fault streams),
	// so per-run fault totals are deltas against the pre-run snapshot.
	faultsBefore := e.Faults()
	res := &Result{Target: e.target, LearnerKind: e.cfg.learner}
	start := time.Now()
	model, err := e.exp.Learn(ctx)
	res.Duration = time.Since(start)
	res.Stats = statsSnapshot(&e.exp.Stats)
	res.Guard = e.exp.GuardStats.Snapshot()
	res.Faults = faultsDelta(faultsBefore, e.Faults())
	if e.cfg.window != nil && e.cfg.workers > 1 {
		ws := e.exp.WindowStats
		res.Window = &ws
	}
	if err != nil {
		if nd, ok := core.IsNondeterminism(err); ok {
			res.Nondet = nd
			return res, nil
		}
		return nil, err
	}
	res.Machine = model
	return res, nil
}

// Oracle returns a live membership oracle over the experiment's first
// replica: every query resets the replica and replays the word over its
// real transport — through any impairment link the experiment configured.
// This is how witness words from the analysis plane replay against the
// wire (analysis.Replay / analysis.ConfirmWitness). The oracle shares the
// replica with Learn, so do not query it while a Learn is in flight.
func (e *Experiment) Oracle() learn.Oracle { return core.Oracle(e.exp.SUL) }

// StoreEntries returns the persistent query store's logged-query count
// — the query-log version the monitor's lineage records tie model
// snapshots to. Zero without WithStore.
func (e *Experiment) StoreEntries() int {
	if e.store == nil {
		return 0
	}
	return e.store.Entries()
}

// Replay runs one input word against the live target votes times and
// returns the per-position majority outputs (analysis.Replay over
// Oracle()).
func (e *Experiment) Replay(ctx context.Context, word []string, votes int) ([]string, error) {
	return analysis.Replay(ctx, e.Oracle(), word, votes)
}

// Close releases the transport resources (UDP sockets, listeners) the
// experiment's replicas hold, and the persistent store when WithStore
// opened one. In-memory experiments hold none; calling Close is still
// always safe.
func (e *Experiment) Close() error {
	err := e.sys.Close()
	if e.store != nil {
		if serr := e.store.Close(); err == nil {
			err = serr
		}
		e.store = nil
	}
	return err
}

// Run is the one-shot convenience: build the experiment, learn it, and
// release its resources. Use NewExperiment directly to learn repeatedly
// or to interrogate the experiment (alphabet, ground truth) around a run.
func Run(ctx context.Context, target string, opts ...Option) (*Result, error) {
	exp, err := NewExperiment(target, opts...)
	if err != nil {
		return nil, err
	}
	defer exp.Close()
	return exp.Learn(ctx)
}

// The PR-1 compatibility shims (Learn/Options/NewSUL/NewSULPool) lived
// here for one release after the context-first redesign; they are gone.
// See the migration table in README.md.
