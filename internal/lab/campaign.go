package lab

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/analysis"
)

// RunSpec names one experiment of a campaign: a registered target plus its
// options. Name labels the run in results (defaults to the target name);
// give explicit names when the same target appears with different
// configurations.
type RunSpec struct {
	Name    string
	Target  string
	Options []Option
}

// RunResult is the outcome of one campaign run. Exactly one of Result/Err
// is meaningful: a run that failed to build or errored mid-learn carries
// Err; a run that completed — including one halted by the §5
// nondeterminism analysis (Result.Nondet) — carries Result.
type RunResult struct {
	Name   string
	Target string
	Result *Result
	Err    error
}

// Campaign executes a set of (target × configuration) learning runs
// concurrently with bounded parallelism. Failures are isolated per run: a
// target that errors — or halts on nondeterminism — never aborts its
// siblings. Cancelling the context stops in-flight runs within one query
// round and marks not-yet-started runs with ctx.Err().
type Campaign struct {
	Runs []RunSpec
	// Parallelism bounds how many runs learn at once (GOMAXPROCS when
	// zero). Each run may additionally use WithWorkers internally; total
	// SUL concurrency is the product.
	Parallelism int
	// Checkpoint, when set, makes the campaign resumable: every run that
	// completes (learned a model or halted on nondeterminism — errors are
	// retried) is appended to this JSONL file, and a later Run of a
	// campaign naming the same file skips the recorded runs, restoring
	// their results instead of relearning. An interrupted impairment
	// matrix therefore continues from where it stopped. Records are keyed
	// by run name, so resumed campaigns must keep their RunSpec names
	// stable; a truncated final line (a crash mid-append) is discarded on
	// load, costing only that one run.
	Checkpoint string
}

// Run executes the campaign and returns one RunResult per RunSpec,
// positionally aligned. The returned error is only the context's: per-run
// failures live in the results.
func (c *Campaign) Run(ctx context.Context) ([]RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]RunResult, len(c.Runs))
	done := map[string]*Result{}
	var ckpt *checkpointFile
	if c.Checkpoint != "" {
		var err error
		if done, ckpt, err = openCheckpoint(c.Checkpoint); err != nil {
			return nil, err
		}
		defer ckpt.close()
	}
	par := c.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(c.Runs) {
		par = len(c.Runs)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range c.Runs {
		spec := c.Runs[i]
		name := spec.Name
		if name == "" {
			name = spec.Target
		}
		results[i] = RunResult{Name: name, Target: spec.Target}
		if res, ok := done[name]; ok && res.Target == spec.Target {
			// Recorded by a previous (interrupted) campaign naming the same
			// checkpoint: restore instead of relearning. A record whose
			// target no longer matches the spec (the campaign was edited
			// but kept the run name) is ignored — relearning under the new
			// spec beats silently attributing the old result to it.
			results[i].Result = res
			continue
		}
		// Check cancellation before contending for a slot: once ctx is done
		// no further run may start, even if the semaphore has capacity (a
		// two-way select would pick between the ready channels at random).
		if err := ctx.Err(); err != nil {
			results[i].Err = err
			continue
		}
		select {
		case sem <- struct{}{}:
			// Both select cases can be ready at once (cancellation racing a
			// free slot); re-check so a cancelled campaign never launches a
			// fresh run.
			if err := ctx.Err(); err != nil {
				<-sem
				results[i].Err = err
				continue
			}
		case <-ctx.Done():
			results[i].Err = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int, spec RunSpec, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i].Result, results[i].Err = runSpec(ctx, spec)
			if ckpt != nil && results[i].Err == nil && results[i].Result != nil {
				// Best-effort: a checkpoint that cannot grow costs only
				// resumability. Errored runs are not recorded — they retry
				// on resume.
				_ = ckpt.append(name, results[i].Result)
			}
		}(i, spec, name)
	}
	wg.Wait()
	return results, ctx.Err()
}

// runSpec builds, learns, and tears down one campaign run.
func runSpec(ctx context.Context, spec RunSpec) (*Result, error) {
	exp, err := NewExperiment(spec.Target, spec.Options...)
	if err != nil {
		return nil, err
	}
	defer exp.Close()
	return exp.Learn(ctx)
}

// CampaignAnalysis is a finished campaign pushed through the analysis
// plane: the per-run results, one analysis model per run that learned, and
// the cross-run diff matrix over those models.
type CampaignAnalysis struct {
	Results []RunResult
	Models  []*analysis.Model
	Matrix  *analysis.Matrix
}

// Models extracts the analysis models of the runs that learned one, named
// after the run (runs that errored or halted on nondeterminism are
// skipped).
func Models(results []RunResult) []*analysis.Model {
	var out []*analysis.Model
	for _, r := range results {
		if r.Err == nil && r.Result != nil && r.Result.Machine != nil {
			m := r.Result.Model()
			m.Name = r.Name
			out = append(out, m)
		}
	}
	return out
}

// AnalyzeResults builds the cross-run diff matrix over a finished
// campaign's models, with up to maxWitnesses distinguishing traces per
// pair.
func AnalyzeResults(results []RunResult, maxWitnesses int) *CampaignAnalysis {
	models := Models(results)
	return &CampaignAnalysis{
		Results: results,
		Models:  models,
		Matrix:  analysis.NewMatrix(models, maxWitnesses),
	}
}

// Analyze runs the campaign and cross-diffs every learned model — the
// one-call form of Run + AnalyzeResults. Per-run failures stay isolated in
// Results; the returned error is only the context's.
func (c *Campaign) Analyze(ctx context.Context, maxWitnesses int) (*CampaignAnalysis, error) {
	results, err := c.Run(ctx)
	if err != nil {
		return nil, err
	}
	return AnalyzeResults(results, maxWitnesses), nil
}

// Summary aggregates a finished campaign: learned / nondeterministic /
// failed counts and the first error, for tools that only need a verdict.
type Summary struct {
	Learned  int
	Nondet   int
	Failed   int
	FirstErr error
}

// Summarize folds results into a Summary.
func Summarize(results []RunResult) Summary {
	var s Summary
	for _, r := range results {
		switch {
		case r.Err != nil:
			s.Failed++
			if s.FirstErr == nil {
				s.FirstErr = fmt.Errorf("run %s: %w", r.Name, r.Err)
			}
		case r.Result != nil && r.Result.Nondet != nil:
			s.Nondet++
		default:
			s.Learned++
		}
	}
	return s
}
