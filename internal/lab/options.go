package lab

import (
	"time"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/netem"
	"repro/internal/reference"
)

// LinkMiddleware decorates one replica's client transport before the
// reference client attaches — fault injectors, tracers, rate limiters.
// worker is the replica index; middlewares run in registration order,
// innermost first.
type LinkMiddleware func(worker int, tr reference.Transport) reference.Transport

// config is the resolved option set of one experiment.
type config struct {
	seed         int64
	learner      core.LearnerKind
	workers      int
	rtt          time.Duration
	transport    TransportKind
	perfect      bool
	conformance  int
	warmup       int
	disableCache bool
	storeDir     string
	guard        core.GuardConfig
	guardSet     bool
	impair       netem.Config
	middleware   []LinkMiddleware
	equivalence  learn.EquivalenceOracle
	observer     learn.Observer
	window       *learn.WindowConfig
	adapterCmd   string
}

func defaultConfig() config {
	return config{workers: 1, transport: TransportInMemory}
}

// Option is one declarative experiment setting, applied by NewExperiment.
type Option func(*config)

// WithSeed fixes the seed for all pseudo-randomness in the run (SUL
// construction and the heuristic equivalence search).
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithLearner selects the learning algorithm (core.LearnerTTT by default).
func WithLearner(kind core.LearnerKind) Option {
	return func(c *config) { c.learner = kind }
}

// WithWorkers runs the concurrent query engine: membership queries fan out
// across n independent replicas of the target (each with its own reset
// state), and the equivalence search is partitioned across the same number
// of goroutines.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithRTT emulates a remote target by adding one network round-trip of
// this duration to every reset and every symbol exchange, which is how the
// paper's deployment behaves (implementations live in containers behind
// real sockets). Query latency — not CPU — then dominates learning time,
// and the sharded pool hides it by keeping WithWorkers queries in flight.
func WithRTT(rtt time.Duration) Option {
	return func(c *config) { c.rtt = rtt }
}

// WithTransport selects how replicas are wired (in-memory by default; UDP
// builds one loopback socket pair per worker for QUIC targets).
func WithTransport(t TransportKind) Option {
	return func(c *config) { c.transport = t }
}

// WithGuard tunes the §5 nondeterminism voting check. Without it,
// experiments use core.DefaultGuard — or core.DefaultAdaptiveGuard when
// WithImpairment injects faults, since a fixed certainty threshold cannot
// be met on a link that corrupts a large fraction of executions.
func WithGuard(cfg core.GuardConfig) Option {
	return func(c *config) { c.guard, c.guardSet = cfg, true }
}

// WithImpairment wraps every replica's transport — in-memory or the
// per-worker UDP socket pair — in a netem.Link injecting the configured
// datagram faults. Each worker's link draws from its own fault stream
// derived from cfg.Seed (netem.Config.ForWorker), so impaired pooled runs
// are reproducible regardless of goroutine interleaving.
func WithImpairment(cfg netem.Config) Option {
	return func(c *config) { c.impair = cfg }
}

// WithLinkMiddleware installs a custom transport decorator on every
// replica, outside any WithImpairment link (the middleware sees the
// already-impaired traffic). Repeated options stack in order.
func WithLinkMiddleware(mw LinkMiddleware) Option {
	return func(c *config) { c.middleware = append(c.middleware, mw) }
}

// WithPerfectEquivalence uses the target's ground-truth specification as
// the equivalence oracle (exact recovery, used to validate state counts);
// NewExperiment fails for targets without one. Without it the heuristic
// random-words oracle is used, as in the paper.
func WithPerfectEquivalence() Option {
	return func(c *config) { c.perfect = true }
}

// WithConformance strengthens the default equivalence search with a
// Wp-method conformance pass of the given depth over the live (guarded)
// target: any residual fault adding at most depth extra states is found.
// Unlike WithPerfectEquivalence it needs no ground truth, so it works for
// closed-box targets and under impairment — `prognosis diff` relies on it
// to recover full models of both sides. Ignored when WithEquivalence or
// WithPerfectEquivalence installs an explicit oracle.
func WithConformance(depth int) Option {
	return func(c *config) { c.conformance = depth }
}

// WithWarmup drives every replica with this many seeded random input words
// (through its full transport chain, impairment links included) while the
// experiment is being built, before any learning query. Targets whose
// behaviour depends on state that leaks across connections — the
// lossy-retransmit profile's server-global loss statistics, for example —
// settle into their steady state during warmup, so the learner observes
// one consistent behaviour instead of the flip mid-run (which the §5 guard
// would otherwise report as nondeterminism, honestly but unhelpfully, when
// the goal is to learn the degraded mode itself). Warmup is deterministic
// in the experiment seed, and every replica sees the same word sequence,
// keeping pooled replicas behaviourally aligned.
func WithWarmup(words int) Option {
	return func(c *config) { c.warmup = words }
}

// WithEquivalence installs a custom equivalence oracle (overrides both the
// default random-words search and WithPerfectEquivalence).
func WithEquivalence(eq learn.EquivalenceOracle) Option {
	return func(c *config) { c.equivalence = eq }
}

// WithoutCache disables the prefix-tree membership-query cache (for
// ablation).
func WithoutCache() Option {
	return func(c *config) { c.disableCache = true }
}

// WithStore persists learning state under dir for incremental relearning:
// the experiment opens (or creates) a learn.Store keyed by the target and
// the answer-affecting parts of its configuration (seed, impairment,
// warmup), pre-seeds the membership cache from the stored query log,
// appends every new live answer during the run, and — after a successful
// learn — snapshots the model so the next run with the same key warm-starts
// from it. Relearning an unchanged target then costs only the equivalence
// pass; see docs/REGRESSION.md for the exact semantics on changed targets.
// Ignored when WithoutCache disables the cache the store feeds.
func WithStore(dir string) Option {
	return func(c *config) { c.storeDir = dir }
}

// WithWindow replaces the pool's fixed in-flight limit with a congestion-
// window-style adaptive one (learn.Window): additive increase on clean
// completions, multiplicative decrease on guard escalations and timeouts,
// RTT-tracked from per-query timing. The worker count remains the hard
// cap — cfg.Max is clamped to it (zero means "the worker count"). Only
// meaningful with WithWorkers > 1; resize events surface as
// learn.WindowResized through WithObserver, and the final counters in
// Result.Window.
func WithWindow(cfg learn.WindowConfig) Option {
	return func(c *config) { c.window = &cfg }
}

// WithAdapterCommand names the external adapter command line for the
// "adapter" target: each pool worker spawns one subprocess running it
// and drives it over the symbol-over-stdio protocol (docs/ADAPTER.md).
// The command is part of the run key — stores and fleet cells for two
// different adapter binaries never collide. Only external targets
// accept it; NewExperiment rejects the option on in-process targets.
func WithAdapterCommand(cmd string) Option {
	return func(c *config) { c.adapterCmd = cmd }
}

// WithObserver streams the run's typed events (RoundStarted,
// HypothesisReady, CounterexampleFound, CacheSnapshot,
// NondeterminismDetected) to obs. Observers shared across campaign runs
// must be safe for concurrent use.
func WithObserver(obs learn.Observer) Option {
	return func(c *config) { c.observer = obs }
}
