package lab

import "testing"

// TestPooledLearnMatchesSequential checks the concurrent query engine end
// to end on real targets: a 4-shard SUL pool must produce exactly the
// model (and, thanks to deterministic batching and counterexample
// selection, exactly the query counts) of the sequential path.
func TestPooledLearnMatchesSequential(t *testing.T) {
	for _, target := range []string{TargetTCP, TargetQuiche} {
		t.Run(target, func(t *testing.T) {
			perfect := target != TargetTCP
			opts := []Option{WithSeed(13)}
			if perfect {
				opts = append(opts, WithPerfectEquivalence())
			}
			seq := learnT(t, target, opts...)
			pooled := learnT(t, target, append(opts, WithWorkers(4))...)
			if eq, ce := seq.Machine.Equivalent(pooled.Machine); !eq {
				t.Fatalf("pooled model differs from sequential on %v", ce)
			}
			// With a deterministic equivalence oracle the pooled run asks
			// exactly the sequential run's queries. (Under the heuristic
			// random-words oracle the parallel search may check a few more
			// words per round before pruning, so counts can differ there.)
			if perfect && seq.Stats.Queries != pooled.Stats.Queries {
				t.Errorf("live queries: pooled %d vs sequential %d",
					pooled.Stats.Queries, seq.Stats.Queries)
			}
		})
	}
}

// TestPooledLearnMvfstStillFlagsNondeterminism: the voting guard must keep
// working per shard — pooling may not mask the mvfst Issue 2 behaviour.
func TestPooledLearnMvfstStillFlagsNondeterminism(t *testing.T) {
	res := learnT(t, TargetMvfst, WithSeed(13), WithWorkers(4))
	if res.Nondet == nil {
		t.Fatal("pooled mvfst learn should be flagged nondeterministic")
	}
}

// TestReplicasAgree: replicas constructed by a registered builder must be
// behaviourally identical — the property the pool dispatcher assumes.
func TestReplicasAgree(t *testing.T) {
	sys, err := build(BuildSpec{Target: TargetGoogle, Replicas: 3, Seed: 13, Transport: TransportInMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	word := []string{sys.Alphabet[0], sys.Alphabet[1], sys.Alphabet[2]}
	var first []string
	for i, s := range sys.SULs {
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, sym := range word {
			o, err := s.Step(sym)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o)
		}
		if i == 0 {
			first = out
			continue
		}
		for j := range out {
			if out[j] != first[j] {
				t.Fatalf("replica %d diverges at step %d: %q vs %q", i, j, out[j], first[j])
			}
		}
	}
}

// TestUDPLearnMatchesInMemory encodes the redesign's compatibility
// guarantee: learning a QUIC profile over per-worker UDP socket pairs
// yields the identical model and identical live query counts as the
// in-memory transport with the same seed and worker count.
func TestUDPLearnMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP learning session is slow in -short mode")
	}
	opts := []Option{WithSeed(13), WithWorkers(4), WithPerfectEquivalence()}
	mem := learnT(t, TargetGoogle, opts...)
	// The model must match on every attempt. The query counts match only
	// when no datagram times out: on a starved machine scheduling jitter
	// can push responses past the quiet wait, and each such timeout adds
	// a retry query. Give the count equality a few runs so one noisy
	// scheduling window doesn't fail the deterministic-batching guarantee.
	for attempt := 1; ; attempt++ {
		udp := learnT(t, TargetGoogle, append(opts, WithTransport(TransportUDP))...)
		if eq, ce := mem.Machine.Equivalent(udp.Machine); !eq {
			t.Fatalf("UDP model differs from in-memory on %v", ce)
		}
		if mem.Stats.Queries == udp.Stats.Queries {
			return
		}
		if attempt == 3 {
			t.Fatalf("live queries: udp %d vs in-memory %d (after %d attempts)",
				udp.Stats.Queries, mem.Stats.Queries, attempt)
		}
		t.Logf("live queries: udp %d vs in-memory %d (scheduling jitter, retrying)",
			udp.Stats.Queries, mem.Stats.Queries)
	}
}

// TestTCPRejectsUDPTransport: the TCP stack only speaks the in-memory
// transport and must say so instead of silently ignoring the option.
func TestTCPRejectsUDPTransport(t *testing.T) {
	if _, err := NewExperiment(TargetTCP, WithTransport(TransportUDP)); err == nil {
		t.Fatal("tcp + UDP transport accepted")
	}
}
