package lab

import "testing"

// TestPooledLearnMatchesSequential checks the concurrent query engine end
// to end on real targets: a 4-shard SUL pool must produce exactly the
// model (and, thanks to deterministic batching and counterexample
// selection, exactly the query counts) of the sequential path.
func TestPooledLearnMatchesSequential(t *testing.T) {
	for _, target := range []string{TargetTCP, TargetQuiche} {
		t.Run(target, func(t *testing.T) {
			opts := Options{Seed: 13}
			if target != TargetTCP {
				opts.Perfect = true
			}
			seq, err := Learn(target, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 4
			pooled, err := Learn(target, opts)
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := seq.Model.Equivalent(pooled.Model); !eq {
				t.Fatalf("pooled model differs from sequential on %v", ce)
			}
			// With a deterministic equivalence oracle the pooled run asks
			// exactly the sequential run's queries. (Under the heuristic
			// random-words oracle the parallel search may check a few more
			// words per round before pruning, so counts can differ there.)
			if opts.Perfect && seq.Stats.Queries != pooled.Stats.Queries {
				t.Errorf("live queries: pooled %d vs sequential %d",
					pooled.Stats.Queries, seq.Stats.Queries)
			}
		})
	}
}

// TestPooledLearnMvfstStillFlagsNondeterminism: the voting guard must keep
// working per shard — pooling may not mask the mvfst Issue 2 behaviour.
func TestPooledLearnMvfstStillFlagsNondeterminism(t *testing.T) {
	res, err := Learn(TargetMvfst, Options{Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nondet == nil {
		t.Fatal("pooled mvfst learn should be flagged nondeterministic")
	}
}

// TestNewSULPoolReplicasAgree: replicas constructed by NewSULPool must be
// behaviourally identical — the property the pool dispatcher assumes.
func TestNewSULPoolReplicasAgree(t *testing.T) {
	suls, err := NewSULPool(TargetGoogle, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	_, alphabet, _, err := NewSUL(TargetGoogle, 13)
	if err != nil {
		t.Fatal(err)
	}
	word := []string{alphabet[0], alphabet[1], alphabet[2]}
	var first []string
	for i, s := range suls {
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, sym := range word {
			o, err := s.Step(sym)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o)
		}
		if i == 0 {
			first = out
			continue
		}
		for j := range out {
			if out[j] != first[j] {
				t.Fatalf("replica %d diverges at step %d: %q vs %q", i, j, out[j], first[j])
			}
		}
	}
}
