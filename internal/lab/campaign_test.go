package lab

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/automata"
	"repro/internal/learn"
	"repro/internal/testutil"
)

// gauge tracks concurrent SUL activity across campaign runs so tests can
// assert the parallelism bound.
type gauge struct {
	cur, max  int64
	stepDelay time.Duration
}

func (g *gauge) reset() {
	atomic.StoreInt64(&g.cur, 0)
	atomic.StoreInt64(&g.max, 0)
}

// gaugeSUL is a deterministic 1-state system ("a"->"A", "b"->"B") whose
// steps record how many queries are in flight across the whole process.
type gaugeSUL struct{ g *gauge }

func (s *gaugeSUL) Reset() error { return nil }

func (s *gaugeSUL) Step(in string) (string, error) {
	c := atomic.AddInt64(&s.g.cur, 1)
	for {
		m := atomic.LoadInt64(&s.g.max)
		if c <= m || atomic.CompareAndSwapInt64(&s.g.max, m, c) {
			break
		}
	}
	if s.g.stepDelay > 0 {
		time.Sleep(s.g.stepDelay)
	}
	atomic.AddInt64(&s.g.cur, -1)
	switch in {
	case "a":
		return "A", nil
	case "b":
		return "B", nil
	}
	return "", fmt.Errorf("gauge: unknown symbol %q", in)
}

func gaugeTruth() *automata.Mealy {
	m := automata.NewMealy([]string{"a", "b"})
	m.SetTransition(m.Initial(), "a", m.Initial(), "A")
	m.SetTransition(m.Initial(), "b", m.Initial(), "B")
	return m
}

// campaignGauge is the shared instrument behind the registered test
// target; builders read it at build time.
var campaignGauge = &gauge{}

func init() {
	Register("campaign-gauge", func(spec BuildSpec) (*System, error) {
		sys := &System{Alphabet: []string{"a", "b"}, Truth: gaugeTruth()}
		for i := 0; i < spec.Replicas; i++ {
			sys.SULs = append(sys.SULs, &gaugeSUL{g: campaignGauge})
		}
		return sys, nil
	})
}

// TestCampaignRunsAllTargets drives a mixed campaign — deterministic
// targets, the nondeterministic mvfst, and a registered custom target —
// and checks per-run results are isolated and positionally aligned.
func TestCampaignRunsAllTargets(t *testing.T) {
	campaignGauge.reset()
	camp := &Campaign{
		Runs: []RunSpec{
			{Target: TargetTCP, Options: []Option{WithSeed(13)}},
			{Target: TargetQuiche, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
			{Target: TargetMvfst, Options: []Option{WithSeed(13)}},
			{Name: "custom", Target: "campaign-gauge", Options: []Option{WithSeed(1), WithPerfectEquivalence()}},
		},
		Parallelism: 4,
	}
	results, err := camp.Run(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results for 4 runs", len(results))
	}
	byName := map[string]RunResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if r := byName["tcp"]; r.Err != nil || r.Result.Machine.NumStates() != 6 {
		t.Fatalf("tcp run: %+v (err=%v)", r.Result, r.Err)
	}
	if r := byName["quiche"]; r.Err != nil || r.Result.Machine.NumStates() != 8 {
		t.Fatalf("quiche run: %+v (err=%v)", r.Result, r.Err)
	}
	// mvfst halts on nondeterminism — an isolated, first-class outcome,
	// not a campaign failure.
	if r := byName["mvfst"]; r.Err != nil || r.Result.Nondet == nil {
		t.Fatalf("mvfst run: %+v (err=%v)", r.Result, r.Err)
	}
	if r := byName["custom"]; r.Err != nil || r.Result.Machine.NumStates() != 1 {
		t.Fatalf("custom run: %+v (err=%v)", r.Result, r.Err)
	}
	s := Summarize(results)
	if s.Learned != 3 || s.Nondet != 1 || s.Failed != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestCampaignIsolatesFailures: a run that cannot even build (unknown
// target) fails alone; its siblings complete.
func TestCampaignIsolatesFailures(t *testing.T) {
	camp := &Campaign{
		Runs: []RunSpec{
			{Target: "no-such-target"},
			{Target: TargetQuiche, Options: []Option{WithSeed(13), WithPerfectEquivalence()}},
		},
		Parallelism: 2,
	}
	results, err := camp.Run(bg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("unknown target did not error")
	}
	if results[1].Err != nil || results[1].Result.Machine == nil {
		t.Fatalf("sibling run damaged: %+v (err=%v)", results[1].Result, results[1].Err)
	}
	s := Summarize(results)
	if s.Failed != 1 || s.FirstErr == nil {
		t.Fatalf("summary = %+v", s)
	}
}

// TestCampaignBoundedParallelism: with Parallelism=1, queries from
// different runs never overlap; the campaign semaphore is the only thing
// enforcing that, since every run is eager.
func TestCampaignBoundedParallelism(t *testing.T) {
	campaignGauge.reset()
	campaignGauge.stepDelay = 100 * time.Microsecond
	defer func() { campaignGauge.stepDelay = 0 }()
	runs := make([]RunSpec, 4)
	for i := range runs {
		runs[i] = RunSpec{
			Name:   fmt.Sprintf("run-%d", i),
			Target: "campaign-gauge",
			Options: []Option{
				WithSeed(int64(i)), WithPerfectEquivalence(),
			},
		}
	}
	camp := &Campaign{Runs: runs, Parallelism: 1}
	if _, err := camp.Run(bg); err != nil {
		t.Fatal(err)
	}
	if max := atomic.LoadInt64(&campaignGauge.max); max > 1 {
		t.Fatalf("Parallelism=1 campaign had %d queries in flight", max)
	}
}

// TestCampaignCancelledPromptly is the redesign's headline guarantee: a
// cancelled campaign returns within one query round, every pending run is
// marked with ctx.Err(), and no goroutines are left behind.
func TestCampaignCancelledPromptly(t *testing.T) {
	campaignGauge.reset()
	campaignGauge.stepDelay = time.Millisecond
	defer func() { campaignGauge.stepDelay = 0 }()
	base := runtime.NumGoroutine()

	// Random-words equivalence (no perfect oracle) keeps each run busy for
	// seconds — far longer than the cancellation deadline below.
	runs := make([]RunSpec, 4)
	for i := range runs {
		runs[i] = RunSpec{
			Name:    fmt.Sprintf("slow-%d", i),
			Target:  "campaign-gauge",
			Options: []Option{WithSeed(int64(i)), WithWorkers(2)},
		}
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := (&Campaign{Runs: runs, Parallelism: 2}).Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v, want context.Canceled", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancelled campaign took %v to return", elapsed)
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatalf("no run reported the cancellation: %+v", results)
	}
	// goleak-style check: every pool worker and equivalence goroutine of
	// the aborted runs must have exited.
	testutil.WaitForGoroutines(t, base)
}

// TestCampaignObserverSharedStream: one JSONL-style observer can serve a
// whole campaign; events from concurrent runs interleave but never race.
func TestCampaignObserverSharedStream(t *testing.T) {
	var events int64
	obs := WithObserver(learn.ObserverFunc(func(learn.Event) { atomic.AddInt64(&events, 1) }))
	camp := &Campaign{
		Runs: []RunSpec{
			{Name: "g1", Target: "campaign-gauge", Options: []Option{WithSeed(1), WithPerfectEquivalence(), obs}},
			{Name: "g2", Target: "campaign-gauge", Options: []Option{WithSeed(2), WithPerfectEquivalence(), obs}},
		},
		Parallelism: 2,
	}
	results, err := camp.Run(bg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if atomic.LoadInt64(&events) == 0 {
		t.Fatal("shared observer saw no events")
	}
}
