package learncfg

import (
	"encoding/json"
	"flag"
	"io"
	"reflect"
	"testing"
	"time"
)

// TestDefaultReproducesClassicFlagDefaults: Default + Register + parsing
// no arguments must yield exactly the config the pre-extraction flag set
// produced (learner ttt, seed 13, warmup 100, per-surface knobs applied).
func TestDefaultReproducesClassicFlagDefaults(t *testing.T) {
	cfg := Default(Defaults{Conformance: 2, Loss: 0.02, Workers: 4})
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	want := Config{
		Learner: "ttt", Seed: 13, Conformance: 2, Loss: 0.02,
		Workers: 4, Warmup: 100,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("defaults drifted:\n got  %+v\n want %+v", cfg, want)
	}
}

// TestFlagAndJSONAgree is the no-drift guarantee: the same configuration
// expressed as CLI flags and as a prognosisd job body must resolve to an
// identical Config — one struct, one builder.
func TestFlagAndJSONAgree(t *testing.T) {
	fromFlags := Default(Defaults{})
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fromFlags.Register(fs)
	err := fs.Parse([]string{
		"-learner", "lstar", "-seed", "7", "-workers", "4", "-window", "2",
		"-rtt", "200us", "-loss", "0.05", "-dup", "0.01", "-reorder", "0.02",
		"-impair-seed", "99", "-warmup", "50", "-conformance", "3",
		"-udp", "-no-cache", "-perfect", "-store", "/tmp/q",
	})
	if err != nil {
		t.Fatal(err)
	}

	fromJSON := Default(Defaults{})
	body := `{
		"learner": "lstar", "seed": 7, "workers": 4, "window": 2,
		"rtt": "200us", "loss": 0.05, "dup": 0.01, "reorder": 0.02,
		"impair_seed": 99, "warmup": 50, "conformance": 3,
		"udp": true, "no_cache": true, "perfect": true, "store": "/tmp/q"
	}`
	if err := json.Unmarshal([]byte(body), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFlags, fromJSON) {
		t.Fatalf("flag and JSON surfaces diverged:\n flags %+v\n json  %+v", fromFlags, fromJSON)
	}
}

// TestJSONOverDefaultKeepsAbsentFields: unmarshalling a sparse job body
// over the default config overrides only the named fields.
func TestJSONOverDefaultKeepsAbsentFields(t *testing.T) {
	cfg := Default(Defaults{Conformance: 2})
	if err := json.Unmarshal([]byte(`{"workers": 8}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 8 {
		t.Fatalf("workers = %d, want 8", cfg.Workers)
	}
	if cfg.Seed != 13 || cfg.Learner != "ttt" || cfg.Conformance != 2 || cfg.Warmup != 100 {
		t.Fatalf("absent fields lost their defaults: %+v", cfg)
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	for in, want := range map[string]time.Duration{
		`"200us"`: 200 * time.Microsecond,
		`"1.5ms"`: 1500 * time.Microsecond,
		`250000`:  250 * time.Microsecond, // plain nanosecond count
	} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if time.Duration(d) != want {
			t.Fatalf("%s = %v, want %v", in, time.Duration(d), want)
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := json.Unmarshal(b, &back); err != nil || back != d {
			t.Fatalf("round trip %s -> %s -> %v (err %v)", in, b, back, err)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"unknown-learner":   func(c *Config) { c.Learner = "magic" },
		"loss-over-one":     func(c *Config) { c.Loss = 1.5 },
		"negative-dup":      func(c *Config) { c.Duplicate = -0.1 },
		"reorder-over-one":  func(c *Config) { c.Reorder = 2 },
		"zero-workers":      func(c *Config) { c.Workers = 0 },
		"negative-window":   func(c *Config) { c.Window = -1 },
		"window-gt-workers": func(c *Config) { c.Workers = 2; c.Window = 4 },
		"negative-conf":     func(c *Config) { c.Conformance = -1 },
		"negative-warmup":   func(c *Config) { c.Warmup = -1 },
		"negative-rtt":      func(c *Config) { c.RTT = Duration(-time.Second) },
	} {
		cfg := Default(Defaults{})
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := cfg.Options(); err == nil {
			t.Errorf("%s: Options did not validate", name)
		}
	}
	cfg := Default(Defaults{})
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cfg.Learner = "" // empty learner falls through to core's default
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty learner rejected: %v", err)
	}
}

// TestImpairmentSeedDefaultsToSeed: the fault streams key off the
// experiment seed unless -impair-seed overrides it.
func TestImpairmentSeedDefaultsToSeed(t *testing.T) {
	cfg := Default(Defaults{})
	cfg.Seed = 42
	cfg.Loss = 0.05
	if im := cfg.Impairment(); im.Seed != 42 || im.LossClient != 0.05 || im.LossServer != 0.05 {
		t.Fatalf("impairment = %+v", im)
	}
	cfg.ImpairSeed = 7
	if im := cfg.Impairment(); im.Seed != 7 {
		t.Fatalf("impair seed override lost: %+v", cfg.Impairment())
	}
	clean := Default(Defaults{})
	if clean.Impairment().Enabled() {
		t.Fatal("clean config reports an enabled impairment")
	}
}

// TestOptionsConditionalKnobs: option construction adds the conditional
// options (window, impairment+warmup, store, udp, no-cache, perfect)
// exactly when their fields are set.
func TestOptionsConditionalKnobs(t *testing.T) {
	base := Default(Defaults{})
	baseOpts, err := base.Options()
	if err != nil {
		t.Fatal(err)
	}

	full := Default(Defaults{})
	full.Workers = 4
	full.Window = 2
	full.Loss = 0.05
	full.Perfect = true
	full.NoCache = true
	full.UDP = true
	full.Store = t.TempDir()
	fullOpts, err := full.Options()
	if err != nil {
		t.Fatal(err)
	}
	// base: seed+learner+workers+rtt+conformance. full adds window,
	// perfect, no-cache, udp, impairment, warmup, store = +7.
	if len(fullOpts) != len(baseOpts)+7 {
		t.Fatalf("conditional options: base %d, full %d (want +7)", len(baseOpts), len(fullOpts))
	}

	noWarm := full
	noWarm.Warmup = 0
	opts, err := noWarm.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != len(fullOpts)-1 {
		t.Fatalf("warmup option emitted without warmup words (%d vs %d)", len(opts), len(fullOpts))
	}

	// Warmup rides only with impairment: a clean-link config keeps the
	// default 100 words but must not emit the option.
	clean := Default(Defaults{})
	clean.Warmup = 500
	opts, err = clean.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != len(baseOpts) {
		t.Fatalf("clean config grew options: %d vs %d", len(opts), len(baseOpts))
	}
}

func TestParseTargets(t *testing.T) {
	got, err := ParseTargets(" google , tcp ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"google", "tcp"}) {
		t.Fatalf("targets = %v", got)
	}
	if _, err := ParseTargets("google,unknown-impl"); err == nil {
		t.Fatal("unknown target accepted")
	}
	if got, err := ParseTargets(""); err != nil || got != nil {
		t.Fatalf("empty csv: %v %v", got, err)
	}
}
