// Package learncfg is the one declarative description of a learning
// configuration — the knobs of `prognosis learn` — and the single code
// path that resolves it into lab functional options. The CLI flag sets
// (internal/cli) and the prognosisd job bodies (internal/server) both
// build experiments through a Config, so the two surfaces cannot drift:
// a flag and its JSON field are the same struct member, registered once
// and resolved once.
package learncfg

import (
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/netem"
)

// Duration is a time.Duration that speaks both surfaces: it registers as
// a flag.Value parsing "200us"-style strings, and (un)marshals JSON as
// either a duration string or a plain nanosecond count.
type Duration time.Duration

// String implements flag.Value.
func (d *Duration) String() string {
	if d == nil {
		return "0s"
	}
	return time.Duration(*d).String()
}

// Set implements flag.Value.
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as its canonical string ("200µs").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		return d.Set(s)
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string like \"200us\" or a nanosecond count: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Config is one learning configuration. The zero value is NOT the
// default — build one with Default (per-surface defaults differ only in
// the Defaults knobs) and override fields from flags (Register) or a
// JSON body (json.Unmarshal over the default, so absent fields keep
// their defaults). Marshalling is deliberately explicit (no omitempty):
// a Config rendered by the typed client carries every field, so an
// explicit zero — loss 0 on a diff job whose default impairs the link —
// survives the wire instead of collapsing into "absent, apply default".
type Config struct {
	Learner     string   `json:"learner"`
	Seed        int64    `json:"seed"`
	Perfect     bool     `json:"perfect"`
	Conformance int      `json:"conformance"`
	UDP         bool     `json:"udp"`
	NoCache     bool     `json:"no_cache"`
	Workers     int      `json:"workers"`
	Window      int      `json:"window"`
	RTT         Duration `json:"rtt"`
	Loss        float64  `json:"loss"`
	Duplicate   float64  `json:"dup"`
	Reorder     float64  `json:"reorder"`
	ImpairSeed  int64    `json:"impair_seed"`
	Warmup      int      `json:"warmup"`
	Store       string   `json:"store"`
	AdapterCmd  string   `json:"adapter_cmd"`
}

// Defaults are the per-surface default knobs: `prognosis diff` mildly
// impairs its links and fans out by default, `learn` does not, and the
// daemon picks per-kind defaults the same way.
type Defaults struct {
	Conformance int
	Loss        float64
	Workers     int
}

// Default returns the baseline configuration every surface starts from.
func Default(d Defaults) Config {
	workers := d.Workers
	if workers == 0 {
		workers = 1
	}
	return Config{
		Learner:     "ttt",
		Seed:        13,
		Conformance: d.Conformance,
		Loss:        d.Loss,
		Workers:     workers,
		Warmup:      100,
	}
}

// Register declares one flag per Config field on fs, bound to the
// receiver; the current field values become the flag defaults, so
// Register(fs) on a Default(...) config reproduces the classic
// subcommand defaults exactly.
func (c *Config) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Learner, "learner", c.Learner, "learning algorithm: ttt or lstar")
	fs.Int64Var(&c.Seed, "seed", c.Seed, "seed for all pseudo-randomness")
	fs.BoolVar(&c.Perfect, "perfect", c.Perfect, "use the ground-truth equivalence oracle (QUIC targets only)")
	fs.IntVar(&c.Conformance, "conformance", c.Conformance,
		"strengthen the equivalence search with a Wp-method pass of this depth over the live target (0 disables)")
	fs.BoolVar(&c.UDP, "udp", c.UDP, "run the session over UDP loopback socket pairs (one per worker)")
	fs.BoolVar(&c.NoCache, "no-cache", c.NoCache, "disable the membership-query cache")
	fs.IntVar(&c.Workers, "workers", c.Workers, "membership-query concurrency: fan queries across this many independent SUL instances")
	fs.IntVar(&c.Window, "window", c.Window,
		"start the adaptive in-flight window at this size (AIMD between 1 and -workers; 0 keeps the fixed worker-count limit)")
	fs.Var(&c.RTT, "rtt", "emulate a remote target by adding this round-trip to every exchange (e.g. 200us)")
	fs.Float64Var(&c.Loss, "loss", c.Loss, "per-datagram loss probability injected in each direction of every worker's link")
	fs.Float64Var(&c.Duplicate, "dup", c.Duplicate, "per-datagram probability of duplicating a response")
	fs.Float64Var(&c.Reorder, "reorder", c.Reorder, "per-exchange probability of reordering adjacent response datagrams")
	fs.Int64Var(&c.ImpairSeed, "impair-seed", c.ImpairSeed, "seed for the fault streams (defaults to -seed)")
	fs.IntVar(&c.Warmup, "warmup", c.Warmup,
		"random words driven through each replica before an impaired learn, letting cross-connection state (loss statistics, degraded modes) settle; applied only when a fault flag is set")
	fs.StringVar(&c.Store, "store", c.Store,
		"persistent query-store directory: warm-start the learn from it and keep it fresh (empty = none)")
	fs.StringVar(&c.AdapterCmd, "adapter-cmd", c.AdapterCmd,
		"external adapter command line for -target adapter: each worker spawns one subprocess speaking the symbol-over-stdio protocol (docs/ADAPTER.md)")
}

// Validate rejects configurations no experiment can run: out-of-range
// fault rates, an unknown learner, negative counts. Options calls it, so
// both surfaces fail before an experiment is half-built.
func (c *Config) Validate() error {
	switch core.LearnerKind(c.Learner) {
	case core.LearnerTTT, core.LearnerLStar, "": // "" falls through to core's default (ttt)
	default:
		return fmt.Errorf("unknown learner %q (want ttt or lstar)", c.Learner)
	}
	for _, rate := range []struct {
		name string
		v    float64
	}{{"loss", c.Loss}, {"dup", c.Duplicate}, {"reorder", c.Reorder}} {
		if rate.v < 0 || rate.v > 1 {
			return fmt.Errorf("%s rate %v outside [0, 1]", rate.name, rate.v)
		}
	}
	if c.Workers < 1 {
		return fmt.Errorf("workers %d < 1", c.Workers)
	}
	if c.Window < 0 {
		return fmt.Errorf("window %d < 0", c.Window)
	}
	if c.Window > c.Workers {
		return fmt.Errorf("window %d exceeds workers %d (the worker count is the hard cap)", c.Window, c.Workers)
	}
	if c.Conformance < 0 {
		return fmt.Errorf("conformance depth %d < 0", c.Conformance)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("warmup %d < 0", c.Warmup)
	}
	if c.RTT < 0 {
		return fmt.Errorf("rtt %v < 0", time.Duration(c.RTT))
	}
	return nil
}

// Impairment assembles the netem config of the fault fields (zero when
// no fault rate is set). The fault seed defaults to the experiment seed.
func (c *Config) Impairment() netem.Config {
	seed := c.ImpairSeed
	if seed == 0 {
		seed = c.Seed
	}
	return netem.Config{
		LossClient: c.Loss, LossServer: c.Loss,
		Duplicate: c.Duplicate, Reorder: c.Reorder,
		Seed: seed,
	}
}

// Options resolves the configuration into lab functional options — the
// single flag→option (and job-body→option) construction path. Observers
// are a per-surface concern (live progress, JSONL files, SSE hubs):
// append lab.WithObserver to the returned slice.
func (c *Config) Options() ([]lab.Option, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts := []lab.Option{
		lab.WithSeed(c.Seed),
		lab.WithLearner(core.LearnerKind(c.Learner)),
		lab.WithWorkers(c.Workers),
		lab.WithRTT(time.Duration(c.RTT)),
		lab.WithConformance(c.Conformance),
	}
	if c.Window > 0 {
		opts = append(opts, lab.WithWindow(learn.WindowConfig{Initial: c.Window}))
	}
	if c.Perfect {
		opts = append(opts, lab.WithPerfectEquivalence())
	}
	if c.NoCache {
		opts = append(opts, lab.WithoutCache())
	}
	if c.UDP {
		// Unsupported combinations (e.g. tcp) are rejected by the target's
		// builder with a clear error rather than silently ignored here.
		opts = append(opts, lab.WithTransport(lab.TransportUDP))
	}
	if impair := c.Impairment(); impair.Enabled() {
		opts = append(opts, lab.WithImpairment(impair))
		if c.Warmup > 0 {
			opts = append(opts, lab.WithWarmup(c.Warmup))
		}
	}
	if c.Store != "" {
		opts = append(opts, lab.WithStore(c.Store))
	}
	if c.AdapterCmd != "" {
		opts = append(opts, lab.WithAdapterCommand(c.AdapterCmd))
	}
	return opts, nil
}

// ParseTargets validates a comma-separated target list against the lab
// registry, shared by flag parsing and job validation.
func ParseTargets(csv string) ([]string, error) {
	known := map[string]bool{}
	for _, t := range lab.Targets() {
		known[t] = true
	}
	var out []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown target %q (have: %s)", name, strings.Join(lab.Targets(), ", "))
		}
		out = append(out, name)
	}
	return out, nil
}
