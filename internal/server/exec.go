package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/lab"
	"repro/internal/learn"
)

// defaultManifest mirrors `prognosis regress -manifest`'s default,
// resolved against the daemon's working directory.
const defaultManifest = "internal/analysis/testdata/regress.json"

// NewRunner builds the production Runner: jobs execute through the same
// learncfg option path as the CLI, write artifacts into the job's
// directory, and — unless the spec names its own store — share a
// persistent query store under dataDir, which is what lets a re-queued
// job resume: the interrupted attempt's answered queries are already
// journaled there, so the retry replays them from disk instead of the
// wire.
func NewRunner(dataDir string) Runner {
	sharedStore := filepath.Join(dataDir, "store")
	return func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error) {
		spec := job.Spec
		if spec.Config.Store == "" && spec.Kind != KindRegress && spec.Kind != KindMonitor {
			spec.Config.Store = sharedStore
		}
		switch spec.Kind {
		case KindLearn:
			return runLearn(ctx, &spec, job.Dir, obs)
		case KindDiff:
			return runDiff(ctx, &spec, job.Dir, obs)
		case KindCheck:
			return runCheck(ctx, &spec, job.Dir, obs)
		case KindRegress:
			return runRegress(ctx, &spec, job.Dir, sharedStore, obs)
		case KindMonitor:
			return runMonitor(ctx, &spec, job.Dir, dataDir, obs)
		default:
			return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
		}
	}
}

// learnOne is the shared learn step: experiment from the spec's config,
// observer installed, summary counters filled from the result.
func learnOne(ctx context.Context, spec *Spec, target string, obs learn.Observer) (*lab.Experiment, *lab.Result, error) {
	opts, err := spec.Config.Options()
	if err != nil {
		return nil, nil, err
	}
	if obs != nil {
		opts = append(opts, lab.WithObserver(obs))
	}
	exp, err := lab.NewExperiment(target, opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := exp.Learn(ctx)
	if err != nil {
		exp.Close()
		return nil, nil, err
	}
	return exp, res, nil
}

// addResult folds one run's unified metrics snapshot into the summary.
// (Summary is an alias of client.Summary, so this cannot be a method.)
func addResult(s *Summary, res *lab.Result) {
	rm := res.Metrics()
	s.Queries += rm.Learner.Queries
	s.Symbols += rm.Learner.Symbols
	s.Hits += rm.Learner.Hits
	s.GuardEscalations += rm.Guard.Escalations
	s.Duration += rm.Duration
}

func runLearn(ctx context.Context, spec *Spec, dir string, obs learn.Observer) (*Summary, error) {
	exp, res, err := learnOne(ctx, spec, spec.Target, obs)
	if err != nil {
		return nil, err
	}
	defer exp.Close()
	sum := &Summary{}
	addResult(sum, res)
	if res.Nondet != nil {
		// The §5 halt is a reported outcome, exactly as in the CLI.
		sum.Nondet = true
		sum.NondetWord = res.Nondet.Word
		return sum, nil
	}
	sum.States = res.Machine.NumStates()
	sum.Transitions = res.Machine.NumTransitions()
	if err := res.Model().Save(filepath.Join(dir, "model.json")); err != nil {
		return sum, err
	}
	return sum, nil
}

func runDiff(ctx context.Context, spec *Spec, dir string, obs learn.Observer) (*Summary, error) {
	// Learn both sides concurrently into one event stream (events carry
	// no target attribution at the stream level, like `prognosis diff`'s
	// interleaved progress), keeping both experiments open so witness
	// replay drives the live replicas the models were learned from.
	type side struct {
		exp *lab.Experiment
		res *lab.Result
		err error
	}
	targets := []string{spec.TargetA, spec.TargetB}
	sides := make([]side, 2)
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			exp, res, err := learnOne(ctx, spec, target, obs)
			if err != nil {
				err = fmt.Errorf("target %s: %w", target, err)
			}
			sides[i] = side{exp: exp, res: res, err: err}
		}(i, target)
	}
	wg.Wait()
	for _, s := range sides {
		if s.exp != nil {
			defer s.exp.Close()
		}
	}
	sum := &Summary{}
	for _, s := range sides {
		if s.err != nil {
			return sum, s.err
		}
		addResult(sum, s.res)
	}
	for i, s := range sides {
		if s.res.Nondet != nil {
			sum.Nondet = true
			sum.NondetWord = s.res.Nondet.Word
			return sum, fmt.Errorf("target %s: nondeterministic — nothing to diff", targets[i])
		}
	}

	modelA, modelB := sides[0].res.Model(), sides[1].res.Model()
	if spec.TargetA == spec.TargetB {
		modelA.Name, modelB.Name = spec.TargetA+"#1", spec.TargetB+"#2"
	}
	witnesses := spec.Witnesses
	if witnesses == 0 {
		witnesses = 5
	}
	report := analysis.Diff(modelA, modelB, witnesses)
	eq := report.Equivalent
	sum.Equivalent = &eq
	sum.Witnesses = len(report.Witnesses)
	sum.States = modelA.States()
	sum.Transitions = modelA.Transitions()
	if err := modelA.Save(filepath.Join(dir, "model_a.json")); err != nil {
		return sum, err
	}
	if err := modelB.Save(filepath.Join(dir, "model_b.json")); err != nil {
		return sum, err
	}

	var buf strings.Builder
	buf.WriteString(report.String())
	if !report.Equivalent && spec.ReplayWitness() && len(report.Witnesses) > 0 {
		confirmed, err := analysis.ConfirmWitness(ctx, report.Witnesses[0],
			sides[0].exp.Oracle(), sides[1].exp.Oracle(), 5)
		if err != nil {
			return sum, err
		}
		diverged := confirmed.Diverged
		sum.Confirmed = &diverged
		fmt.Fprintf(&buf, "\nwitness %v replayed live: diverged=%v (models predicted=%v)\n",
			report.Witnesses[0].Word, confirmed.Diverged, confirmed.MatchesModels)
	}
	if err := os.WriteFile(filepath.Join(dir, "witness.txt"), []byte(buf.String()), 0o644); err != nil {
		return sum, err
	}
	return sum, nil
}

func runCheck(ctx context.Context, spec *Spec, dir string, obs learn.Observer) (*Summary, error) {
	exp, res, err := learnOne(ctx, spec, spec.Target, obs)
	if err != nil {
		return nil, err
	}
	defer exp.Close()
	sum := &Summary{}
	addResult(sum, res)
	if res.Nondet != nil {
		sum.Nondet = true
		sum.NondetWord = res.Nondet.Word
		return sum, fmt.Errorf("target %s: nondeterministic — nothing to check", spec.Target)
	}
	model := res.Model()
	sum.States = model.States()
	sum.Transitions = model.Transitions()
	if err := model.Save(filepath.Join(dir, "model.json")); err != nil {
		return sum, err
	}

	var buf strings.Builder
	for _, r := range analysis.CheckAll(model) {
		if r.OK() {
			fmt.Fprintf(&buf, "PASS %s — %s\n", r.Property.Name(), r.Property.Describe())
			continue
		}
		sum.Violations++
		fmt.Fprintf(&buf, "FAIL %s — %s\n%s", r.Property.Name(), r.Violation.Detail, r.Violation.Witness.String())
	}
	if spec.Property != "" {
		f, err := analysis.ParseFormula(spec.Property)
		if err != nil {
			return sum, err
		}
		depth := spec.Depth
		if depth == 0 {
			depth = 4
		}
		if bad := analysis.CheckLTL(model.Mealy(), f, depth); bad != nil {
			sum.Violations++
			w := analysis.Witness{Word: bad.Inputs, Outputs: bad.Outputs}
			fmt.Fprintf(&buf, "FAIL %s\n%s", spec.Property, w.String())
		} else {
			fmt.Fprintf(&buf, "PASS %s (all traces of length %d)\n", spec.Property, depth)
		}
	}
	// Violations are the job's *result*, not a job failure: the job is
	// done, the report is the artifact, and the summary carries the count.
	return sum, os.WriteFile(filepath.Join(dir, "witness.txt"), []byte(buf.String()), 0o644)
}

func runRegress(ctx context.Context, spec *Spec, dir, storeDir string, obs learn.Observer) (*Summary, error) {
	path := spec.Manifest
	if path == "" {
		path = defaultManifest
	}
	m, err := cli.LoadRegressManifest(path)
	if err != nil {
		return nil, err
	}
	selected, err := m.Filter(spec.Targets)
	if err != nil {
		return nil, err
	}
	if spec.Config.Store != "" {
		storeDir = spec.Config.Store
	}
	witnesses := spec.Witnesses
	if witnesses == 0 {
		witnesses = 3
	}
	sum := &Summary{RegressTargets: len(selected)}
	var buf strings.Builder
	for _, rt := range selected {
		out, err := cli.RegressOne(ctx, rt, m.Dir, storeDir, spec.Config.Workers, witnesses, obs)
		sum.Queries += out.LiveQueries
		if err != nil {
			return sum, fmt.Errorf("target %s: %w", rt.Name, err)
		}
		if out.Drift == "" {
			fmt.Fprintf(&buf, "regress %s: OK — %d live queries\n", rt.Name, out.LiveQueries)
			continue
		}
		sum.Drifted = append(sum.Drifted, rt.Name)
		fmt.Fprintf(&buf, "regress %s: DRIFT — %d live queries\n%s", rt.Name, out.LiveQueries, out.Drift)
		if out.Learned != nil {
			if err := out.Learned.Save(filepath.Join(dir, rt.Name+".learned.json")); err != nil {
				return sum, err
			}
		}
	}
	// Like check: drift is the reported result, served as the witness
	// artifact; the job itself completed.
	return sum, os.WriteFile(filepath.Join(dir, "witness.txt"), []byte(buf.String()), 0o644)
}

// runMonitor executes one monitor cycle as a job. Monitor state —
// lineage journal and model snapshots — lives under the daemon data
// directory (not the job's artifact directory), so consecutive monitor
// jobs share baselines; the cycle report is the job's witness artifact.
func runMonitor(ctx context.Context, spec *Spec, dir, dataDir string, obs learn.Observer) (*Summary, error) {
	sum, report, err := RunMonitorCycle(ctx, MonitorOptions{
		Manifest:  spec.Manifest,
		Targets:   spec.Targets,
		DataDir:   dataDir,
		Workers:   spec.Config.Workers,
		Witnesses: spec.Witnesses,
	}, obs)
	if report != "" {
		if werr := os.WriteFile(filepath.Join(dir, "witness.txt"), []byte(report), 0o644); werr != nil && err == nil {
			err = werr
		}
	}
	return sum, err
}
